package server

import (
	"fmt"
	"net/http"
	"strings"
)

// Authenticator authorizes a request's bearer token for a tenant
// namespace. It is consulted once, at session creation; the session ID
// the server hands back is the capability every later request rides on.
//
// Implementations decide what a token means: the default AllowAll admits
// any token (including none) to any tenant, StaticTokens maps fixed
// tokens to tenants, and integrators plug in anything else — an OIDC
// validator, an API-key database — behind this one method.
type Authenticator interface {
	// Authenticate returns nil when token may open sessions in tenant.
	// A non-nil error is reported to the client as 401 Unauthorized.
	Authenticate(token, tenant string) error
}

// AllowAll is the default authenticator: every token (even an empty one)
// opens any tenant. It is the right default for trusted-network and
// development deployments; production deployments substitute their own.
type AllowAll struct{}

// Authenticate always succeeds.
func (AllowAll) Authenticate(token, tenant string) error { return nil }

// StaticTokens authorizes from a fixed token→tenant table: a token opens
// exactly the tenants listed for it, and the wildcard tenant "*" opens
// every tenant.
type StaticTokens map[string][]string

// Authenticate checks the token's tenant list.
func (s StaticTokens) Authenticate(token, tenant string) error {
	for _, t := range s[token] {
		if t == tenant || t == "*" {
			return nil
		}
	}
	return fmt.Errorf("token not authorized for tenant %q", tenant)
}

// bearerToken extracts the Authorization bearer token, or "".
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if strings.HasPrefix(h, prefix) {
		return strings.TrimSpace(h[len(prefix):])
	}
	return ""
}
