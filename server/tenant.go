package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"regexp"
	"sync"
	"time"

	"exlengine/internal/engine"
	"exlengine/internal/obs"
	"exlengine/internal/store/durable"
)

// tenantNameRE bounds tenant names to filesystem- and URL-safe tokens:
// the name becomes a directory under the server's data dir.
var tenantNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

// tenant is one fully isolated namespace: its own engine (with its own
// governor), its own store (durable under <data-dir>/<name> when the
// server is persistent, in-memory otherwise), its own compile cache and
// its own metrics registry. Nothing here is shared with any other
// tenant — the process-global state the library grew up with (default
// compile cache, default metrics registry) is deliberately not used.
type tenant struct {
	name    string
	eng     *engine.Engine
	metrics *obs.Registry
	clock   runClock
	refs    int // sessions holding this tenant open
}

// runClock stamps unstamped runs with a per-tenant version timestamp.
// The store accepts equal timestamps (last write wins) but rejects
// regressions, and concurrent runs commit in arbitrary order — so every
// run that overlaps an in-flight run shares its stamp, and the stamp
// only advances to the wall clock when the tenant is briefly quiet.
// Overlapping full runs over the same inputs produce identical results,
// so last-write-wins at a shared instant is exactly right.
type runClock struct {
	mu       sync.Mutex
	inflight int
	stamp    time.Time
}

// begin takes a stamp for one run; pair with end.
func (rc *runClock) begin(now time.Time) time.Time {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.inflight == 0 && now.After(rc.stamp) {
		rc.stamp = now
	}
	rc.inflight++
	return rc.stamp
}

// end releases the run's hold on the stamp.
func (rc *runClock) end() {
	rc.mu.Lock()
	rc.inflight--
	rc.mu.Unlock()
}

// errServerClosed rejects tenant opens once shutdown has begun. The
// handler maps it to 503 + Retry-After.
var errServerClosed = errors.New("server shutting down")

// tenantSet opens tenants on first use and closes them when the last
// session referencing them goes away.
type tenantSet struct {
	cfg *Config

	mu   sync.Mutex
	live map[string]*tenant
	// closing tracks tenants whose engines are still draining after the
	// last reference went away: the channel closes when the drain (WAL
	// flush, snapshot write, store close) completes. A durable tenant's
	// directory must never be reopened while its old store is still
	// writing, so acquire blocks on this channel before reopening.
	closing map[string]chan struct{}
	// closed is set by shutdownAll: no tenant may open after shutdown
	// begins, however the handler is being served.
	closed bool
}

func newTenantSet(cfg *Config) *tenantSet {
	return &tenantSet{
		cfg:     cfg,
		live:    make(map[string]*tenant),
		closing: make(map[string]chan struct{}),
	}
}

// acquire returns the live tenant with the name, opening it if needed,
// and takes a reference. Opening a durable tenant replays its WAL, so a
// tenant resurrected after an idle period comes back with every cube
// version it ever committed. When a prior instance of the tenant is
// still draining (the idle reaper expired its last session just as the
// client reconnects), acquire waits for that drain to finish before
// reopening — the two store instances must never touch the directory
// concurrently.
func (ts *tenantSet) acquire(name string) (*tenant, error) {
	if !tenantNameRE.MatchString(name) {
		return nil, fmt.Errorf("invalid tenant name %q", name)
	}
	for {
		ts.mu.Lock()
		if ts.closed {
			ts.mu.Unlock()
			return nil, errServerClosed
		}
		if t, ok := ts.live[name]; ok {
			t.refs++
			ts.mu.Unlock()
			return t, nil
		}
		if done, ok := ts.closing[name]; ok {
			ts.mu.Unlock()
			<-done
			continue
		}
		t, err := ts.open(name)
		if err != nil {
			ts.mu.Unlock()
			return nil, err
		}
		t.refs = 1
		ts.live[name] = t
		ts.cfg.Metrics.Gauge(MetricTenantsActive).Set(int64(len(ts.live)))
		ts.mu.Unlock()
		return t, nil
	}
}

// testEngineOptions is appended to every tenant engine when non-nil.
// Tests use it to perturb dispatch (e.g. gate fragment execution so
// overload paths trigger deterministically regardless of how fast the
// backends run); it is never set in production.
var testEngineOptions []engine.Option

// open builds the tenant's isolated engine stack; ts.mu held.
func (ts *tenantSet) open(name string) (*tenant, error) {
	reg := obs.NewRegistry()
	opts := []engine.Option{
		engine.WithParallelDispatch(),
		engine.WithMetrics(reg),
		// A private compile cache: tenants compiling identical program
		// text still never share mappings (or cache-hit metrics).
		engine.WithCompileCache(engine.NewCompileCache(tenantCompileCacheCap)),
	}
	opts = append(opts, testEngineOptions...)
	if ts.cfg.MaxConcurrent > 0 {
		opts = append(opts, engine.MaxConcurrentRuns(ts.cfg.MaxConcurrent))
	}
	if ts.cfg.MemBudget > 0 {
		opts = append(opts, engine.MemoryBudget(ts.cfg.MemBudget))
	}
	if ts.cfg.DataDir != "" {
		st, err := durable.Open(filepath.Join(ts.cfg.DataDir, name), durable.WithMetrics(reg))
		if err != nil {
			return nil, fmt.Errorf("tenant %s: %w", name, err)
		}
		opts = append(opts, engine.WithStore(st))
	}
	return &tenant{name: name, eng: engine.New(opts...), metrics: reg}, nil
}

// tenantCompileCacheCap bounds each tenant's private compile cache.
const tenantCompileCacheCap = 64

// release drops one reference. When the last session lets go, the
// tenant's engine shuts down gracefully — admission stops, in-flight
// runs drain, and the durable store flushes and closes — bounded by
// closeTimeout. The tenant stays visible in the closing map for the
// whole drain, so a concurrent acquire of the same name waits instead
// of reopening the directory under the still-writing store.
func (ts *tenantSet) release(t *tenant, closeTimeout time.Duration) error {
	ts.mu.Lock()
	t.refs--
	if t.refs > 0 {
		ts.mu.Unlock()
		return nil
	}
	if ts.live[t.name] != t {
		// shutdownAll (or an already-signaled drain) owns this tenant's
		// engine now; shutting it down twice is at best redundant.
		ts.mu.Unlock()
		return nil
	}
	delete(ts.live, t.name)
	done := make(chan struct{})
	ts.closing[t.name] = done
	ts.cfg.Metrics.Gauge(MetricTenantsActive).Set(int64(len(ts.live)))
	ts.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
	err := t.eng.Shutdown(ctx)
	cancel()

	ts.mu.Lock()
	delete(ts.closing, t.name)
	ts.mu.Unlock()
	close(done)
	return err
}

// count returns the number of live tenants.
func (ts *tenantSet) count() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.live)
}

// shutdownAll gracefully shuts down every live tenant, draining their
// engines and closing their stores. Sessions referencing them are
// already closed (or abandoned) by the time the server calls this. It
// first flips the set closed — from here on acquire refuses with
// errServerClosed, so no tenant can open after shutdown begins even
// when the handler is embedded behind an outer server that
// Server.Shutdown cannot quiesce — and it also waits out drains started
// by concurrent releases, so every store is flushed and closed when it
// returns.
func (ts *tenantSet) shutdownAll(ctx context.Context) error {
	ts.mu.Lock()
	ts.closed = true
	all := make([]*tenant, 0, len(ts.live))
	for _, t := range ts.live {
		all = append(all, t)
	}
	ts.live = make(map[string]*tenant)
	draining := make([]chan struct{}, 0, len(ts.closing))
	for _, done := range ts.closing {
		draining = append(draining, done)
	}
	ts.cfg.Metrics.Gauge(MetricTenantsActive).Set(0)
	ts.mu.Unlock()

	var first error
	for _, t := range all {
		if err := t.eng.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
	}
	for _, done := range draining {
		select {
		case <-done:
		case <-ctx.Done():
			if first == nil {
				first = ctx.Err()
			}
			return first
		}
	}
	return first
}
