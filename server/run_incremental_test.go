package server

import (
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"exlengine/internal/model"
)

// TestRunIncrementalHTTP drives the "incremental": true run option end
// to end: an incremental tenant must serve byte-identical derived CSV to
// a full-recomputation tenant across a data update.
func TestRunIncrementalHTTP(t *testing.T) {
	_, base := newTestServer(t, Config{})
	fullSid := setupTenant(t, base, "full", 1, 6)
	incrSid := setupTenant(t, base, "incr", 1, 6)

	runOK := func(sid string, body map[string]any) {
		t.Helper()
		if status, out := postJSON(t, base+"/v1/run", sid, body); status != http.StatusOK {
			t.Fatalf("run: status %d (%v)", status, out)
		}
	}
	getOut := func(sid string) string {
		t.Helper()
		status, b := doReq(t, http.MethodGet, base+"/v1/cubes/OUT", sid, "", nil)
		if status != http.StatusOK {
			t.Fatalf("get OUT: status %d (%s)", status, b)
		}
		return string(b)
	}

	at0 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC).Format(time.RFC3339)
	runOK(fullSid, map[string]any{"as_of": at0})
	runOK(incrSid, map[string]any{"as_of": at0, "incremental": true})
	if w, g := getOut(fullSid), getOut(incrSid); w != g {
		t.Fatalf("initial incremental OUT differs from full:\n%s\nvs\n%s", w, g)
	}

	// Update SRC (every value changes, two rows appended) and re-run.
	next := testCSV(t, 3, 8)
	for _, sid := range []string{fullSid, incrSid} {
		if status, b := doReq(t, http.MethodPut, base+"/v1/cubes/SRC", sid, "text/csv", next); status != http.StatusOK {
			t.Fatalf("put SRC v2: status %d (%s)", status, b)
		}
	}
	at1 := time.Date(2024, 1, 2, 0, 0, 0, 0, time.UTC).Format(time.RFC3339)
	runOK(fullSid, map[string]any{"as_of": at1})
	runOK(incrSid, map[string]any{"as_of": at1, "incremental": true})
	if w, g := getOut(fullSid), getOut(incrSid); w != g {
		t.Fatalf("post-update incremental OUT differs from full:\n%s\nvs\n%s", w, g)
	}
}

// TestGetCubeNonFiniteNoTorn200 pins the store/CSV boundary fix: a cube
// version holding a non-finite measure must produce a clean error
// response, never a 200 whose CSV body breaks off mid-stream.
func TestGetCubeNonFiniteNoTorn200(t *testing.T) {
	srv, base := newTestServer(t, Config{})
	sid := setupTenant(t, base, "t1", 1, 4)

	// Poison SRC with a NaN version through the engine, below the HTTP
	// surface — exactly what a buggy producer or a NaN-yielding
	// computation would do.
	tnt, err := srv.tenants.acquire("t1")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.tenants.release(tnt, 10*time.Second); err != nil {
			t.Errorf("release: %v", err)
		}
	}()
	sch := model.NewSchema("SRC", []model.Dim{{Name: "t", Type: model.TMonth}}, "v")
	bad := model.NewCube(sch)
	for i := 0; i < 4; i++ {
		v := float64(i)
		if i == 2 {
			v = math.NaN()
		}
		p := model.NewMonthly(2020, time.January).Shift(int64(i))
		if err := bad.Put([]model.Value{model.Per(p)}, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := tnt.eng.PutCube(bad, time.Now()); err != nil {
		t.Fatal(err)
	}

	status, body := doReq(t, http.MethodGet, base+"/v1/cubes/SRC", sid, "", nil)
	if status == http.StatusOK {
		t.Fatalf("non-finite cube served with status 200; body:\n%s", body)
	}
	if !strings.Contains(string(body), "non-finite") {
		t.Errorf("error body does not name the non-finite measure: %s", body)
	}
}
