package server

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"exlengine/internal/obs"
)

// TestTenantIsolation is the proving test for multi-tenancy: two tenants
// register the SAME program under the SAME name, load the SAME cube
// names with different data, and run concurrently. Each must see only
// its own results, its own metrics, and its own compile cache.
func TestTenantIsolation(t *testing.T) {
	srv, base := newTestServer(t, Config{})

	// scaleA=1 → OUT values 2,4,... ; scaleB=100 → OUT values 200,400,...
	sidA := setupTenant(t, base, "tenant-a", 1, 12)
	sidB := setupTenant(t, base, "tenant-b", 100, 12)

	// The tenants are backed by distinct engines and registries.
	sessA, _ := srv.sessions.get(sidA)
	sessB, _ := srv.sessions.get(sidB)
	if sessA.tenant == sessB.tenant || sessA.tenant.eng == sessB.tenant.eng {
		t.Fatalf("tenants share an engine")
	}
	if sessA.tenant.metrics == sessB.tenant.metrics {
		t.Fatalf("tenants share a metrics registry")
	}

	// Run both tenants concurrently, several times each.
	const runs = 4
	var wg sync.WaitGroup
	errs := make(chan error, 2*runs)
	for _, sid := range []string{sidA, sidB} {
		for i := 0; i < runs; i++ {
			wg.Add(1)
			go func(sid string) {
				defer wg.Done()
				b, _ := json.Marshal(map[string]any{})
				req, _ := http.NewRequest(http.MethodPost, base+"/v1/run", bytes.NewReader(b))
				req.Header.Set(SessionHeader, sid)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("run status %d", resp.StatusCode)
				}
			}(sid)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Each tenant reads back its own derived data, not the other's.
	firstOut := func(sid string) string {
		status, body := doReq(t, http.MethodGet, base+"/v1/cubes/OUT", sid, "", nil)
		if status != http.StatusOK {
			t.Fatalf("get OUT: status %d (%s)", status, body)
		}
		recs, err := csv.NewReader(bytes.NewReader(body)).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		return recs[1][1]
	}
	if got := firstOut(sidA); got != "2" {
		t.Fatalf("tenant-a OUT[0] = %q, want 2", got)
	}
	if got := firstOut(sidB); got != "200" {
		t.Fatalf("tenant-b OUT[0] = %q, want 200", got)
	}

	// Metrics isolate: each tenant registry saw exactly its own runs.
	for _, sess := range []*session{sessA, sessB} {
		if got := sess.tenant.metrics.Counter(obs.MetricRuns).Value(); got != runs {
			t.Errorf("tenant %s engine_runs_total = %d, want %d", sess.tenant.name, got, runs)
		}
	}

	// Compile caches isolate: both tenants compiled identical program
	// text, yet each paid its own cache miss — a shared cache would give
	// the second tenant a hit.
	for _, sess := range []*session{sessA, sessB} {
		reg := sess.tenant.metrics
		if miss := reg.Counter(obs.MetricCompileCacheMisses).Value(); miss < 1 {
			t.Errorf("tenant %s compile misses = %d, want >=1", sess.tenant.name, miss)
		}
		if hit := reg.Counter(obs.MetricCompileCacheHits).Value(); hit != 0 {
			t.Errorf("tenant %s compile hits = %d, want 0 (private cache)", sess.tenant.name, hit)
		}
	}

	// Run lists are tenant-scoped: A sees its runs plus nothing of B's.
	status, out := getJSON(t, base+"/v1/runs", sidA)
	if status != http.StatusOK {
		t.Fatalf("run list: status %d", status)
	}
	list, _ := out["runs"].([]any)
	if len(list) != runs {
		t.Fatalf("tenant-a sees %d runs, want %d", len(list), runs)
	}
	for _, e := range list {
		if tn := e.(map[string]any)["tenant"]; tn != "tenant-a" {
			t.Fatalf("tenant-a run list leaked a run of %v", tn)
		}
	}
}

// TestSessionExpiryDurable: an idle session is reaped, which shuts the
// tenant down and closes its durable store cleanly; a new session in the
// same tenant resurrects every committed cube version from the WAL.
func TestSessionExpiryDurable(t *testing.T) {
	dir := t.TempDir()
	srv, base := newTestServer(t, Config{
		DataDir:            dir,
		SessionIdleTimeout: 100 * time.Millisecond,
	})

	sid := setupTenant(t, base, "dur", 1, 12)
	if status, out := postJSON(t, base+"/v1/run", sid, map[string]any{}); status != http.StatusOK {
		t.Fatalf("run: status %d (%v)", status, out)
	}

	// Go idle; the reaper must close the session AND the tenant.
	deadline := time.Now().Add(10 * time.Second)
	for srv.sessions.count() != 0 || srv.tenants.count() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper left sessions=%d tenants=%d", srv.sessions.count(), srv.tenants.count())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.cfg.Metrics.Counter(MetricSessionsExpired).Value(); got < 1 {
		t.Fatalf("sessions_expired = %d, want >=1", got)
	}
	if status, _ := doReq(t, http.MethodGet, base+"/v1/programs", sid, "", nil); status != http.StatusUnauthorized {
		t.Fatalf("reaped session: status %d, want 401", status)
	}

	// Resurrect: a fresh session reopens the tenant from disk with both
	// the elementary and the derived cube intact.
	sid2 := openSession(t, base, "dur")
	for _, cube := range []string{"SRC", "OUT"} {
		status, body := doReq(t, http.MethodGet, base+"/v1/cubes/"+cube, sid2, "", nil)
		if status != http.StatusOK {
			t.Fatalf("get %s after resurrection: status %d (%s)", cube, status, body)
		}
		recs, err := csv.NewReader(bytes.NewReader(body)).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 13 {
			t.Fatalf("%s has %d rows after resurrection, want 13", cube, len(recs))
		}
	}
	// Programs are process state, not store state: re-registration against
	// the persisted catalog is idempotent and running works again.
	if status, out := postJSON(t, base+"/v1/programs", sid2,
		map[string]string{"name": "prog", "source": testProgram}); status != http.StatusCreated {
		t.Fatalf("re-register after resurrection: status %d (%v)", status, out)
	}
	if status, out := postJSON(t, base+"/v1/run", sid2, map[string]any{}); status != http.StatusOK {
		t.Fatalf("run after resurrection: status %d (%v)", status, out)
	}
}

// TestGracefulShutdownDurable: every commit acked before Shutdown is on
// disk afterward, even with runs in flight when shutdown starts.
func TestGracefulShutdownDurable(t *testing.T) {
	dir := t.TempDir()
	srv := New(Config{DataDir: dir})
	ts := httptest.NewServer(srv.Handler())
	base := ts.URL

	sid := setupTenant(t, base, "dur", 1, 12)

	// Commit five more acked versions of SRC at distinct instants (the
	// store only accepts versions newer than the latest, so they step
	// forward from now).
	base0 := time.Now().UTC().Truncate(time.Second)
	asOfs := make([]string, 0, 5)
	for i := 1; i <= 5; i++ {
		at := base0.Add(time.Duration(i) * time.Minute).Format(time.RFC3339)
		url := base + "/v1/cubes/SRC?as_of=" + at
		if status, body := doReq(t, http.MethodPut, url, sid, "text/csv",
			testCSV(t, float64(i), 12)); status != http.StatusOK {
			t.Fatalf("put version %d: status %d (%s)", i, status, body)
		}
		asOfs = append(asOfs, at)
	}
	// Leave runs in flight while shutdown begins.
	for i := 0; i < 3; i++ {
		if status, _ := postJSON(t, base+"/v1/run", sid, map[string]any{"async": true}); status != http.StatusAccepted {
			t.Fatalf("async run: status %d", status)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()

	// A brand-new server over the same data dir must see every acked
	// version.
	srv2, base2 := newTestServer(t, Config{DataDir: dir})
	_ = srv2
	sid2 := openSession(t, base2, "dur")
	for i, at := range asOfs {
		status, body := doReq(t, http.MethodGet, base2+"/v1/cubes/SRC?as_of="+at, sid2, "", nil)
		if status != http.StatusOK {
			t.Fatalf("version %d (%s) lost after shutdown: status %d (%s)", i+1, at, status, body)
		}
		recs, err := csv.NewReader(bytes.NewReader(body)).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		// Version i+1 was written with scale i+1: first value is i+1.
		if want := fmt.Sprintf("%d", i+1); recs[1][1] != want {
			t.Fatalf("version %s first value = %q, want %s", at, recs[1][1], want)
		}
	}
}
