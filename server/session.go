package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// session is one client's lease on a tenant namespace. A session pins
// its tenant open (refcounted), carries the idle clock the reaper
// watches, and scopes the process list: clients see and cancel runs
// through their session.
type session struct {
	id      string
	tenant  *tenant
	created time.Time

	mu       sync.Mutex
	lastUsed time.Time
	inflight int // requests and async runs pinning the session live
	closed   bool
}

// beginWork bumps the idle clock and pins the session against the idle
// reaper for the duration of a request or async run — a session is only
// idle when nothing is executing on its behalf, not merely when its last
// request started long ago. Reports false when the session is already
// closed (a racing reaper or explicit close won). Pair with endWork.
func (s *session) beginWork(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.inflight++
	if now.After(s.lastUsed) {
		s.lastUsed = now
	}
	return true
}

// endWork releases one pin and restarts the idle clock, so the idle
// timeout counts from completion of the work, not from its start.
func (s *session) endWork(now time.Time) {
	s.mu.Lock()
	s.inflight--
	if now.After(s.lastUsed) {
		s.lastUsed = now
	}
	s.mu.Unlock()
}

// idleSince returns the last-use instant and whether the session is
// reapable at all: closed sessions and sessions with in-flight work are
// never idle.
func (s *session) idleSince() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUsed, !s.closed && s.inflight == 0
}

// markClosed flips the session closed exactly once.
func (s *session) markClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.closed = true
	return true
}

// sessionSet owns the session table and the idle reaper.
type sessionSet struct {
	cfg *Config

	mu sync.Mutex
	m  map[string]*session
}

func newSessionSet(cfg *Config) *sessionSet {
	return &sessionSet{cfg: cfg, m: make(map[string]*session)}
}

// newID returns a 128-bit random session ID.
func newID(prefix string) string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: crypto/rand failed: %v", err))
	}
	return prefix + hex.EncodeToString(b[:])
}

// add registers a freshly created session.
func (ss *sessionSet) add(s *session) {
	ss.mu.Lock()
	ss.m[s.id] = s
	n := len(ss.m)
	ss.mu.Unlock()
	ss.cfg.Metrics.Gauge(MetricSessionsActive).Set(int64(n))
	ss.cfg.Metrics.Counter(MetricSessionsOpened).Inc()
}

// get looks a session up without touching it.
func (ss *sessionSet) get(id string) (*session, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s, ok := ss.m[id]
	return s, ok
}

// remove unlinks the session from the table (close/reap path).
func (ss *sessionSet) remove(id string) {
	ss.mu.Lock()
	delete(ss.m, id)
	n := len(ss.m)
	ss.mu.Unlock()
	ss.cfg.Metrics.Gauge(MetricSessionsActive).Set(int64(n))
}

// count returns the number of live sessions.
func (ss *sessionSet) count() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.m)
}

// all snapshots the live sessions.
func (ss *sessionSet) all() []*session {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]*session, 0, len(ss.m))
	for _, s := range ss.m {
		out = append(out, s)
	}
	return out
}

// expired returns the sessions idle longer than the timeout at instant
// now.
func (ss *sessionSet) expired(now time.Time, timeout time.Duration) []*session {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var out []*session
	for _, s := range ss.m {
		if last, live := s.idleSince(); live && now.Sub(last) > timeout {
			out = append(out, s)
		}
	}
	return out
}
