package server

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exlengine/internal/dispatch"
	"exlengine/internal/engine"
	"exlengine/internal/model"
	"exlengine/internal/store"
)

// testProgram is a minimal two-cube catalog: the derived OUT doubles the
// elementary SRC.
const testProgram = `
cube SRC(t: month) measure v
OUT := SRC * 2
`

// testCSV serializes a SRC cube with n monthly values scale*1..scale*n.
func testCSV(t *testing.T, scale float64, n int) []byte {
	t.Helper()
	sch := model.NewSchema("SRC",
		[]model.Dim{{Name: "t", Type: model.TMonth}}, "v")
	c := model.NewCube(sch)
	for i := 0; i < n; i++ {
		p := model.NewMonthly(2020, time.January).Shift(int64(i))
		if err := c.Put([]model.Value{model.Per(p)}, scale*float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := store.WriteCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer starts a Server over httptest and wires cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts.URL
}

// doReq issues one request and returns status + body.
func doReq(t *testing.T, method, url, sid, ctype string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ctype != "" {
		req.Header.Set("Content-Type", ctype)
	}
	if sid != "" {
		req.Header.Set(SessionHeader, sid)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// postJSON posts v as JSON and decodes the response into a generic map.
func postJSON(t *testing.T, url, sid string, v any) (int, map[string]any) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	status, body := doReq(t, http.MethodPost, url, sid, "application/json", b)
	out := map[string]any{}
	_ = json.Unmarshal(body, &out)
	return status, out
}

// openSession creates a session in the tenant and returns its ID.
func openSession(t *testing.T, base, tenant string) string {
	t.Helper()
	status, out := postJSON(t, base+"/v1/sessions", "", map[string]string{"tenant": tenant})
	if status != http.StatusCreated {
		t.Fatalf("session create: status %d (%v)", status, out)
	}
	sid, _ := out["session"].(string)
	if sid == "" {
		t.Fatalf("session create: no session in %v", out)
	}
	return sid
}

// setupTenant opens a session, registers the test program and loads SRC.
func setupTenant(t *testing.T, base, tenant string, scale float64, n int) string {
	t.Helper()
	sid := openSession(t, base, tenant)
	if status, out := postJSON(t, base+"/v1/programs", sid,
		map[string]string{"name": "prog", "source": testProgram}); status != http.StatusCreated {
		t.Fatalf("register: status %d (%v)", status, out)
	}
	if status, body := doReq(t, http.MethodPut, base+"/v1/cubes/SRC", sid,
		"text/csv", testCSV(t, scale, n)); status != http.StatusOK {
		t.Fatalf("put SRC: status %d (%s)", status, body)
	}
	return sid
}

func TestSessionLifecycle(t *testing.T) {
	srv, base := newTestServer(t, Config{})

	sid := openSession(t, base, "alpha")
	if srv.tenants.count() != 1 || srv.sessions.count() != 1 {
		t.Fatalf("tenants=%d sessions=%d, want 1/1", srv.tenants.count(), srv.sessions.count())
	}
	if status, _ := doReq(t, http.MethodGet, base+"/v1/sessions/"+sid, "", "", nil); status != http.StatusOK {
		t.Fatalf("session get: status %d", status)
	}
	// A bogus session capability is rejected.
	if status, _ := doReq(t, http.MethodGet, base+"/v1/programs", "s-bogus", "", nil); status != http.StatusUnauthorized {
		t.Fatalf("bogus session: status %d, want 401", status)
	}
	if status, _ := doReq(t, http.MethodGet, base+"/v1/programs", "", "", nil); status != http.StatusUnauthorized {
		t.Fatalf("missing session header: status %d, want 401", status)
	}
	// Close: the session disappears and with it the last tenant ref.
	if status, _ := doReq(t, http.MethodDelete, base+"/v1/sessions/"+sid, "", "", nil); status != http.StatusOK {
		t.Fatalf("session close: status %d", status)
	}
	if status, _ := doReq(t, http.MethodGet, base+"/v1/sessions/"+sid, "", "", nil); status != http.StatusNotFound {
		t.Fatalf("closed session get: status %d, want 404", status)
	}
	if status, _ := doReq(t, http.MethodGet, base+"/v1/programs", sid, "", nil); status != http.StatusUnauthorized {
		t.Fatalf("closed session use: status %d, want 401", status)
	}
	if srv.tenants.count() != 0 || srv.sessions.count() != 0 {
		t.Fatalf("after close: tenants=%d sessions=%d, want 0/0", srv.tenants.count(), srv.sessions.count())
	}
}

func TestBadRequests(t *testing.T) {
	_, base := newTestServer(t, Config{})

	// Tenant names are constrained to path-safe tokens.
	if status, _ := postJSON(t, base+"/v1/sessions", "", map[string]string{"tenant": "../evil"}); status != http.StatusBadRequest {
		t.Fatalf("bad tenant name: status %d, want 400", status)
	}
	if status, _ := postJSON(t, base+"/v1/sessions", "", map[string]string{}); status != http.StatusBadRequest {
		t.Fatalf("missing tenant: status %d, want 400", status)
	}
	sid := openSession(t, base, "alpha")
	if status, _ := doReq(t, http.MethodGet, base+"/v1/cubes/NOPE", sid, "", nil); status != http.StatusNotFound {
		t.Fatalf("missing cube: status %d, want 404", status)
	}
	if status, _ := doReq(t, http.MethodPut, base+"/v1/cubes/NOPE", sid, "text/csv", []byte("x\n1\n")); status != http.StatusNotFound {
		t.Fatalf("put undeclared cube: status %d, want 404", status)
	}
	if status, _ := doReq(t, http.MethodGet, base+"/v1/runs/r-bogus", sid, "", nil); status != http.StatusNotFound {
		t.Fatalf("unknown run: status %d, want 404", status)
	}
}

func TestProgramCubeRunFlow(t *testing.T) {
	_, base := newTestServer(t, Config{})
	sid := setupTenant(t, base, "alpha", 1, 12)

	// Duplicate registration is a conflict, not a server error.
	if status, _ := postJSON(t, base+"/v1/programs", sid,
		map[string]string{"name": "prog", "source": testProgram}); status != http.StatusConflict {
		t.Fatalf("re-register: status %d, want 409", status)
	}

	// Sync run: 200 with a done RunInfo carrying the engine report.
	status, out := postJSON(t, base+"/v1/run", sid, map[string]any{})
	if status != http.StatusOK {
		t.Fatalf("run: status %d (%v)", status, out)
	}
	if out["state"] != string(RunDone) {
		t.Fatalf("run state = %v, want done", out["state"])
	}
	if out["report"] == nil {
		t.Fatalf("run response missing report")
	}

	// The derived cube came out right: OUT = 2*SRC.
	status, body := doReq(t, http.MethodGet, base+"/v1/cubes/OUT", sid, "", nil)
	if status != http.StatusOK {
		t.Fatalf("get OUT: status %d (%s)", status, body)
	}
	recs, err := csv.NewReader(bytes.NewReader(body)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 13 { // header + 12 months
		t.Fatalf("OUT has %d CSV rows, want 13", len(recs))
	}
	if recs[1][1] != "2" {
		t.Fatalf("OUT first value = %q, want 2", recs[1][1])
	}

	// The process list remembers the finished run.
	status, out = getJSON(t, base+"/v1/runs", sid)
	if status != http.StatusOK {
		t.Fatalf("run list: status %d", status)
	}
	runs, _ := out["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("run list has %d entries, want 1", len(runs))
	}

	// Tenant metrics are exposed and scoped.
	status, body = doReq(t, http.MethodGet, base+"/v1/metrics", sid, "", nil)
	if status != http.StatusOK || !strings.Contains(string(body), "engine_runs_total") {
		t.Fatalf("tenant metrics: status %d, body %.80s", status, body)
	}
	// Server metrics live on the unauthenticated /metrics endpoint.
	status, body = doReq(t, http.MethodGet, base+"/metrics", "", "", nil)
	if status != http.StatusOK || !strings.Contains(string(body), MetricSessionsActive) {
		t.Fatalf("server metrics: status %d, body %.80s", status, body)
	}
}

// getJSON fetches url and decodes the JSON body.
func getJSON(t *testing.T, url, sid string) (int, map[string]any) {
	t.Helper()
	status, body := doReq(t, http.MethodGet, url, sid, "", nil)
	out := map[string]any{}
	_ = json.Unmarshal(body, &out)
	return status, out
}

func TestAsyncRun(t *testing.T) {
	_, base := newTestServer(t, Config{})
	sid := setupTenant(t, base, "alpha", 1, 12)

	status, out := postJSON(t, base+"/v1/run", sid, map[string]any{"async": true})
	if status != http.StatusAccepted {
		t.Fatalf("async run: status %d (%v)", status, out)
	}
	runID, _ := out["run"].(string)
	if runID == "" {
		t.Fatalf("async run: no run ID in %v", out)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		status, out = getJSON(t, base+"/v1/runs/"+runID, sid)
		if status != http.StatusOK {
			t.Fatalf("run poll: status %d", status)
		}
		if st, _ := out["state"].(string); st != string(RunRunning) {
			if st != string(RunDone) {
				t.Fatalf("async run ended %q (%v)", st, out["error"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async run did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if out["report"] == nil {
		t.Fatalf("finished async run has no report")
	}
}

func TestStaticTokenAuth(t *testing.T) {
	_, base := newTestServer(t, Config{
		Auth: StaticTokens{"tok1": {"alpha"}, "admin": {"*"}},
	})
	create := func(token, tenant string) int {
		b, _ := json.Marshal(map[string]string{"tenant": tenant})
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/sessions", bytes.NewReader(b))
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := create("", "alpha"); got != http.StatusUnauthorized {
		t.Errorf("no token: status %d, want 401", got)
	}
	if got := create("tok1", "alpha"); got != http.StatusCreated {
		t.Errorf("tok1→alpha: status %d, want 201", got)
	}
	if got := create("tok1", "beta"); got != http.StatusUnauthorized {
		t.Errorf("tok1→beta: status %d, want 401", got)
	}
	if got := create("admin", "beta"); got != http.StatusCreated {
		t.Errorf("admin wildcard: status %d, want 201", got)
	}
}

// TestOverloadSheds429 floods a capacity-1 tenant with concurrent sync
// runs: the governor admits one, queues four, and rejects the rest with
// typed overload errors the server maps to 429 + Retry-After. No request
// sees a 500.
func TestOverloadSheds429(t *testing.T) {
	// Gate fragment execution so the single slot stays provably occupied
	// while the flood arrives: without the gate the test races run
	// duration against request arrival, and a fast executor can drain
	// capacity-1 quickly enough to absorb the whole flood.
	gate := make(chan struct{})
	testEngineOptions = []engine.Option{engine.WithDispatchMiddleware(
		func(next dispatch.Runner) dispatch.Runner {
			return func(ctx context.Context, fr dispatch.Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return next(ctx, fr, snap)
			}
		})}
	t.Cleanup(func() { testEngineOptions = nil })

	srv, base := newTestServer(t, Config{MaxConcurrent: 1})
	sid := setupTenant(t, base, "alpha", 1, 2000)

	const flood = 24
	var ok, shed, other atomic.Int64
	var sawRetryAfter atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{})
			req, _ := http.NewRequest(http.MethodPost, base+"/v1/run", bytes.NewReader(b))
			req.Header.Set(SessionHeader, sid)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				other.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
				if resp.Header.Get("Retry-After") != "" {
					sawRetryAfter.Store(true)
				}
			default:
				other.Add(1)
			}
		}()
	}
	// Open the gate once shedding has been observed (or give up and let
	// the assertions report): the blocked run and any queued one then
	// complete normally.
	for i := 0; shed.Load() == 0 && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("saw %d non-200/429 responses under overload", other.Load())
	}
	if ok.Load() == 0 {
		t.Fatalf("no run succeeded under overload")
	}
	if shed.Load() == 0 {
		t.Fatalf("no run was shed: capacity-1 tenant absorbed %d concurrent runs", flood)
	}
	if !sawRetryAfter.Load() {
		t.Errorf("429 responses missing Retry-After")
	}
	if got := srv.cfg.Metrics.Counter(MetricHTTPOverload).Value(); got != shed.Load() {
		t.Errorf("overload counter = %d, shed = %d", got, shed.Load())
	}
}

// TestShutdownRejectsNewSessions: after Shutdown, session creation gets
// 503 and the reaper goroutine is gone.
func TestShutdownRejectsNewSessions(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := New(Config{})
	openHandler := srv.Handler()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	b, _ := json.Marshal(map[string]string{"tenant": "alpha"})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader(b))
	openHandler.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("session create after shutdown: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Errorf("503 missing Retry-After")
	}
	waitNoLeak(t, before)
}

// waitNoLeak polls until the goroutine count returns to the baseline.
func waitNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestRunCancel: an async run can be killed through the process list;
// it reaches a terminal state either way the race falls.
func TestRunCancel(t *testing.T) {
	_, base := newTestServer(t, Config{})
	sid := setupTenant(t, base, "alpha", 1, 5000)

	status, out := postJSON(t, base+"/v1/run", sid, map[string]any{"async": true})
	if status != http.StatusAccepted {
		t.Fatalf("async run: status %d", status)
	}
	runID, _ := out["run"].(string)
	if status, _ := doReq(t, http.MethodDelete, base+"/v1/runs/"+runID, sid, "", nil); status != http.StatusAccepted {
		t.Fatalf("cancel: status %d, want 202", status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, out = getJSON(t, base+"/v1/runs/"+runID, sid)
		st, _ := out["state"].(string)
		if st != string(RunRunning) {
			if st != string(RunCanceled) && st != string(RunDone) && st != string(RunFailed) {
				t.Fatalf("canceled run in state %q", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
