package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"exlengine/internal/engine"
	"exlengine/internal/exlerr"
	"exlengine/internal/governor"
	"exlengine/internal/obs"
	"exlengine/internal/store"
)

// SessionHeader carries the session capability on every request after
// session creation.
const SessionHeader = "X-EXL-Session"

// retryAfterSeconds is the hint sent with 429/503 overload rejections.
const retryAfterSeconds = "1"

// apiError is the uniform JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeEngineError maps an engine error onto HTTP: shutdown → 503,
// any other typed overload → 429 (both with Retry-After), cancellation
// → 499-style 400, everything else → 500.
func writeEngineError(w http.ResponseWriter, reg *obs.Registry, err error) {
	switch {
	case errors.Is(err, governor.ErrShuttingDown):
		reg.Counter(MetricHTTPOverload).Inc()
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case exlerr.IsOverload(err):
		reg.Counter(MetricHTTPOverload).Inc()
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case exlerr.IsCancellation(err):
		reg.Counter(MetricHTTPErrors).Inc()
		writeError(w, http.StatusBadRequest, "run canceled: %v", err)
	case errors.Is(err, store.ErrStaleVersion):
		// Optimistic-concurrency loss: a client-stamped write raced a
		// newer version. Retryable by the client with a fresher stamp.
		reg.Counter(MetricHTTPErrors).Inc()
		writeError(w, http.StatusConflict, "%v", err)
	default:
		reg.Counter(MetricHTTPErrors).Inc()
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// statusWriter records the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with server-level request metrics.
func (s *Server) instrument(h http.Handler) http.Handler {
	reg := s.cfg.Metrics
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		reg.Counter(MetricHTTPRequests).Inc()
		reg.Histogram(MetricHTTPLatency).ObserveDuration(time.Since(start))
		if sw.status >= 400 && sw.status != http.StatusTooManyRequests &&
			sw.status != http.StatusServiceUnavailable {
			// Overload statuses are counted at the rejection site with
			// MetricHTTPOverload; everything else 4xx/5xx lands here.
			reg.Counter(MetricHTTPErrors).Inc()
		}
	})
}

// routes builds the v1 API mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleServerMetrics)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionClose)
	mux.HandleFunc("POST /v1/programs", s.withSession(s.handleProgramRegister))
	mux.HandleFunc("GET /v1/programs", s.withSession(s.handleProgramList))
	mux.HandleFunc("GET /v1/cubes", s.withSession(s.handleCubeList))
	mux.HandleFunc("PUT /v1/cubes/{name}", s.withSession(s.handleCubePut))
	mux.HandleFunc("GET /v1/cubes/{name}", s.withSession(s.handleCubeGet))
	mux.HandleFunc("POST /v1/run", s.withSession(s.handleRun))
	mux.HandleFunc("GET /v1/runs", s.withSession(s.handleRunList))
	mux.HandleFunc("GET /v1/runs/{id}", s.withSession(s.handleRunGet))
	mux.HandleFunc("DELETE /v1/runs/{id}", s.withSession(s.handleRunCancel))
	mux.HandleFunc("GET /v1/metrics", s.withSession(s.handleTenantMetrics))

	outer := http.NewServeMux()
	outer.Handle("/", s.instrument(mux))
	return outer
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       true,
		"tenants":  s.tenants.count(),
		"sessions": s.sessions.count(),
	})
}

func (s *Server) handleServerMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = s.cfg.Metrics.WriteText(w)
}

// --- sessions ---

type sessionCreateRequest struct {
	Tenant string `json:"tenant"`
}

type sessionInfo struct {
	Session string    `json:"session"`
	Tenant  string    `json:"tenant"`
	Created time.Time `json:"created"`
	Durable bool      `json:"durable"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, "tenant is required")
		return
	}
	if err := s.cfg.Auth.Authenticate(bearerToken(r), req.Tenant); err != nil {
		writeError(w, http.StatusUnauthorized, "%v", err)
		return
	}
	s.mu.Lock()
	down := s.shutdown
	s.mu.Unlock()
	if down {
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	t, err := s.tenants.acquire(req.Tenant)
	if err != nil {
		// acquire re-checks shutdown under the tenant-set lock: the early
		// s.shutdown check above cannot exclude a Shutdown that lands
		// between it and the open (e.g. when the handler is embedded and
		// httpSrv.Shutdown never quiesces this request).
		if errors.Is(err, errServerClosed) {
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	now := time.Now()
	sess := &session{id: newID("s-"), tenant: t, created: now, lastUsed: now}
	s.sessions.add(sess)
	writeJSON(w, http.StatusCreated, sessionInfo{
		Session: sess.id,
		Tenant:  t.name,
		Created: sess.created,
		Durable: s.cfg.DataDir != "",
	})
}

func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	writeJSON(w, http.StatusOK, sessionInfo{
		Session: sess.id,
		Tenant:  sess.tenant.name,
		Created: sess.created,
		Durable: s.cfg.DataDir != "",
	})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	s.closeSession(sess)
	writeJSON(w, http.StatusOK, map[string]bool{"closed": true})
}

// withSession resolves the X-EXL-Session header, pins the session for
// the duration of the request (a session with a request in flight is
// never idle, however long the request runs), and passes it through.
// Unknown or expired sessions get 401 — the client must create a new
// session (and with it, possibly resurrect its durable tenant).
func (s *Server) withSession(h func(http.ResponseWriter, *http.Request, *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(SessionHeader)
		if id == "" {
			writeError(w, http.StatusUnauthorized, "missing %s header", SessionHeader)
			return
		}
		sess, ok := s.sessions.get(id)
		if !ok || !sess.beginWork(time.Now()) {
			writeError(w, http.StatusUnauthorized, "unknown or expired session")
			return
		}
		defer func() { sess.endWork(time.Now()) }()
		h(w, r, sess)
	}
}

// --- programs ---

type programRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

func (s *Server) handleProgramRegister(w http.ResponseWriter, r *http.Request, sess *session) {
	var req programRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Name == "" || req.Source == "" {
		writeError(w, http.StatusBadRequest, "name and source are required")
		return
	}
	if err := sess.tenant.eng.RegisterProgram(req.Name, req.Source); err != nil {
		if errors.Is(err, engine.ErrProgramRegistered) {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"program": req.Name,
		"cubes":   sess.tenant.eng.CubeNames(),
	})
}

func (s *Server) handleProgramList(w http.ResponseWriter, r *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, map[string]any{"programs": sess.tenant.eng.Programs()})
}

// --- cubes ---

func (s *Server) handleCubeList(w http.ResponseWriter, r *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, map[string]any{"cubes": sess.tenant.eng.CubeNames()})
}

// handleCubePut loads a cube version from a CSV request body under the
// cube's declared schema. Optional ?as_of=RFC3339 backdates the version.
func (s *Server) handleCubePut(w http.ResponseWriter, r *http.Request, sess *session) {
	name := r.PathValue("name")
	asOf, err := parseAsOf(r, time.Now())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := sess.tenant.eng.LoadCSV(name, r.Body, asOf); err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case errors.Is(err, engine.ErrCubeNotDeclared):
			status = http.StatusNotFound
		case errors.Is(err, store.ErrStaleVersion):
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cube": name, "as_of": asOf})
}

// handleCubeGet streams the current (or ?as_of historical) version of a
// cube as CSV.
func (s *Server) handleCubeGet(w http.ResponseWriter, r *http.Request, sess *session) {
	name := r.PathValue("name")
	eng := sess.tenant.eng
	if q := r.URL.Query().Get("as_of"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad as_of: %v", err)
			return
		}
		c, ok := eng.CubeAsOf(name, t)
		if !ok {
			writeError(w, http.StatusNotFound, "cube %s has no version at %s", name, q)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		if err := store.WriteCSV(w, c); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if _, ok := eng.Cube(name); !ok {
		writeError(w, http.StatusNotFound, "cube %s has no data", name)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	if err := eng.WriteCSV(name, w); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// --- runs ---

type runRequest struct {
	// Changed limits recomputation to cubes downstream of these sources
	// (incremental run). Empty means recompute everything.
	Changed []string `json:"changed,omitempty"`
	// AsOf stamps derived versions (RFC3339); zero means now.
	AsOf string `json:"as_of,omitempty"`
	// Async returns 202 + run ID immediately; poll GET /v1/runs/{id}.
	Async bool `json:"async,omitempty"`
	// Incremental asks for delta-driven recomputation: only cubes whose
	// memoized input generations are stale are recomputed, from store
	// deltas where possible. Byte-identical to a full run; ignored when
	// the tenant store cannot serve deltas.
	Incremental bool `json:"incremental,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, sess *session) {
	var req runRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
	}
	var opts []engine.RunOption
	if len(req.Changed) > 0 {
		opts = append(opts, engine.RunChanged(req.Changed...))
	}
	if req.Incremental || s.cfg.Incremental {
		opts = append(opts, engine.WithIncremental())
	}
	release := func() {}
	if req.AsOf != "" {
		t, err := time.Parse(time.RFC3339, req.AsOf)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad as_of: %v", err)
			return
		}
		opts = append(opts, engine.RunAt(t))
	} else {
		// Unstamped runs take the tenant's run clock: overlapping runs
		// share one stamp so out-of-order commits never regress the
		// version history.
		clock := &sess.tenant.clock
		opts = append(opts, engine.RunAt(clock.begin(time.Now())))
		release = clock.end
	}

	eng := sess.tenant.eng
	if req.Async {
		// Pin the session for the run's lifetime: an async run that
		// outlives its submitting request must not let the idle reaper
		// tear the session (and with it the tenant engine) down while the
		// run executes. The pin also restarts the idle clock when the run
		// finishes, giving the client time to poll the result.
		if !sess.beginWork(time.Now()) {
			writeError(w, http.StatusUnauthorized, "unknown or expired session")
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		entry := s.runs.start(sess.tenant.name, sess.id, true, time.Now(), cancel)
		go func() {
			rep, err := eng.Run(ctx, opts...)
			release()
			s.runs.finish(entry, rep, err, time.Now())
			cancel()
			sess.endWork(time.Now())
		}()
		writeJSON(w, http.StatusAccepted, map[string]string{"run": entry.id})
		return
	}

	ctx, cancel := context.WithCancel(r.Context())
	entry := s.runs.start(sess.tenant.name, sess.id, false, time.Now(), cancel)
	rep, err := eng.Run(ctx, opts...)
	release()
	s.runs.finish(entry, rep, err, time.Now())
	cancel()
	if err != nil {
		writeEngineError(w, s.cfg.Metrics, err)
		return
	}
	writeJSON(w, http.StatusOK, entry.info(time.Now()))
}

func (s *Server) handleRunList(w http.ResponseWriter, r *http.Request, sess *session) {
	writeJSON(w, http.StatusOK, map[string]any{
		"runs": s.runs.list(sess.tenant.name, time.Now()),
	})
}

func (s *Server) handleRunGet(w http.ResponseWriter, r *http.Request, sess *session) {
	entry, ok := s.runs.get(r.PathValue("id"), sess.tenant.name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run")
		return
	}
	writeJSON(w, http.StatusOK, entry.info(time.Now()))
}

func (s *Server) handleRunCancel(w http.ResponseWriter, r *http.Request, sess *session) {
	entry, ok := s.runs.get(r.PathValue("id"), sess.tenant.name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run")
		return
	}
	entry.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"run": entry.id, "state": "canceling"})
}

// --- metrics ---

// handleTenantMetrics renders the session's tenant registry — engine,
// governor, store and compile-cache metrics scoped to that tenant only.
func (s *Server) handleTenantMetrics(w http.ResponseWriter, r *http.Request, sess *session) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = sess.tenant.metrics.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = sess.tenant.metrics.WriteText(w)
}

// parseAsOf reads the optional ?as_of=RFC3339 query parameter.
func parseAsOf(r *http.Request, fallback time.Time) (time.Time, error) {
	q := r.URL.Query().Get("as_of")
	if q == "" {
		return fallback, nil
	}
	t, err := time.Parse(time.RFC3339, q)
	if err != nil {
		return time.Time{}, fmt.Errorf("bad as_of: %w", err)
	}
	return t, nil
}
