package server

import (
	"context"
	"net"
	"net/http"
	"sync"
	"time"

	"exlengine/internal/obs"
)

// Server-level metric names, recorded in the server's own registry
// (Config.Metrics) — distinct from the per-tenant engine registries.
const (
	// MetricTenantsActive gauges the number of open tenant namespaces.
	MetricTenantsActive = "server_tenants_active"
	// MetricSessionsActive gauges the number of live sessions.
	MetricSessionsActive = "server_sessions_active"
	// MetricSessionsOpened counts sessions ever created.
	MetricSessionsOpened = "server_sessions_opened_total"
	// MetricSessionsExpired counts sessions closed by the idle reaper.
	MetricSessionsExpired = "server_sessions_expired_total"
	// MetricHTTPRequests counts requests served (any status).
	MetricHTTPRequests = "server_http_requests_total"
	// MetricHTTPErrors counts 4xx/5xx responses other than overload.
	MetricHTTPErrors = "server_http_errors_total"
	// MetricHTTPOverload counts 429/503 overload rejections.
	MetricHTTPOverload = "server_http_overload_total"
	// MetricHTTPLatency is per-request wall time in milliseconds.
	MetricHTTPLatency = "server_http_latency_ms"
)

// Config shapes a Server. The zero value is usable: in-memory stores,
// allow-all auth, default limits.
type Config struct {
	// Addr is the listen address for ListenAndServe ("":8080"-style).
	// Defaults to ":8080".
	Addr string
	// DataDir, when set, makes every tenant durable: tenant state lives
	// under DataDir/<tenant> (WAL + snapshots) and survives both idle
	// eviction and process restarts. Empty means in-memory tenants.
	DataDir string
	// MaxConcurrent caps concurrently executing runs per tenant (each
	// tenant has its own governor). 0 means the engine default.
	MaxConcurrent int
	// MemBudget caps estimated materialization bytes per tenant. 0 means
	// unlimited.
	MemBudget int64
	// SessionIdleTimeout evicts sessions idle this long; the last session
	// of a tenant shuts the tenant's engine down (draining runs, closing
	// the durable store). Defaults to 5 minutes.
	SessionIdleTimeout time.Duration
	// CloseTimeout bounds the graceful drain when a tenant closes.
	// Defaults to 30 seconds.
	CloseTimeout time.Duration
	// MaxFinishedRuns bounds the completed tail of the run list kept for
	// GET /v1/runs/{id}. Defaults to 512.
	MaxFinishedRuns int
	// Incremental makes every run delta-driven by default (as if each
	// request set "incremental": true): only stale cubes recompute, from
	// store deltas where possible, byte-identical to a full run.
	Incremental bool
	// Auth authorizes session creation. Defaults to AllowAll.
	Auth Authenticator
	// Metrics receives server-level metrics (sessions, tenants, HTTP).
	// Defaults to a fresh private registry.
	Metrics *obs.Registry
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.SessionIdleTimeout <= 0 {
		c.SessionIdleTimeout = 5 * time.Minute
	}
	if c.CloseTimeout <= 0 {
		c.CloseTimeout = 30 * time.Second
	}
	if c.Auth == nil {
		c.Auth = AllowAll{}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// Server exposes EXLEngine over HTTP/JSON: sessions lease per-tenant
// engines, programs compile per tenant, cubes load and read back as CSV,
// and runs execute sync or async under the tenant's governor. See
// DESIGN.md "Network service & multi-tenancy".
type Server struct {
	cfg      Config
	tenants  *tenantSet
	sessions *sessionSet
	runs     *processList
	mux      *http.ServeMux
	httpSrv  *http.Server

	reapStop chan struct{}
	reapDone chan struct{}

	mu       sync.Mutex
	shutdown bool
}

// New builds a Server from cfg (zero value OK).
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		runs:     newProcessList(cfg.MaxFinishedRuns),
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	s.tenants = newTenantSet(&s.cfg)
	s.sessions = newSessionSet(&s.cfg)
	s.mux = s.routes()
	s.httpSrv = &http.Server{Addr: cfg.Addr, Handler: s.mux}
	go s.reapLoop()
	return s
}

// Handler returns the HTTP handler — for tests and embedding behind an
// outer mux or middleware stack.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the server-level registry.
func (s *Server) Metrics() *obs.Registry { return s.cfg.Metrics }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.httpSrv.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// ListenAndServe listens on Config.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	err := s.httpSrv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the server: stop the reaper, stop accepting HTTP,
// then shut every tenant engine down gracefully — admission closes,
// in-flight runs drain, durable stores flush and close. Every commit
// acked before Shutdown returns is on disk.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	s.mu.Unlock()

	close(s.reapStop)
	<-s.reapDone

	httpErr := s.httpSrv.Shutdown(ctx)

	// Sessions no longer matter — their tenants are about to close.
	for _, sess := range s.sessions.all() {
		if sess.markClosed() {
			s.sessions.remove(sess.id)
			s.runs.cancelSession(sess.id)
		}
	}
	tErr := s.tenants.shutdownAll(ctx)
	if httpErr != nil {
		return httpErr
	}
	return tErr
}

// reapLoop periodically evicts idle sessions. The interval tracks the
// timeout so short test timeouts reap promptly without a hot loop.
func (s *Server) reapLoop() {
	defer close(s.reapDone)
	interval := s.cfg.SessionIdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case now := <-t.C:
			for _, sess := range s.sessions.expired(now, s.cfg.SessionIdleTimeout) {
				if s.closeSession(sess) {
					s.cfg.Metrics.Counter(MetricSessionsExpired).Inc()
				}
			}
		}
	}
}

// closeSession tears one session down: mark closed, unlink, cancel its
// runs, release its tenant (possibly shutting the tenant down). Reports
// whether this call won the close race.
func (s *Server) closeSession(sess *session) bool {
	if !sess.markClosed() {
		return false
	}
	s.sessions.remove(sess.id)
	s.runs.cancelSession(sess.id)
	// Release may drain the tenant's engine; never under a lock.
	_ = s.tenants.release(sess.tenant, s.cfg.CloseTimeout)
	return true
}
