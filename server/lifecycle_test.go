package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestTenantCloseReopenRace drives the reaper-vs-reconnect race: the
// last reference to a durable tenant is released (starting a drain that
// flushes the WAL and closes the store) while the same tenant name is
// concurrently re-acquired. acquire must wait for the drain — reopening
// the directory under the still-writing store loses acked commits.
func TestTenantCloseReopenRace(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir}
	cfg.fill()
	ts := newTenantSet(&cfg)

	base := time.Now().UTC().Truncate(time.Second)
	const rounds = 8
	for i := 0; i < rounds; i++ {
		tnt, err := ts.acquire("dur")
		if err != nil {
			t.Fatalf("round %d: acquire: %v", i, err)
		}
		if err := tnt.eng.RegisterProgram("prog", testProgram); err != nil {
			t.Fatalf("round %d: register: %v", i, err)
		}
		asOf := base.Add(time.Duration(i) * time.Minute)
		if err := tnt.eng.LoadCSV("SRC", bytes.NewReader(testCSV(t, float64(i+1), 3)), asOf); err != nil {
			t.Fatalf("round %d: load: %v", i, err)
		}

		// Drop the last reference (drain begins) while re-acquiring.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ts.release(tnt, 10*time.Second); err != nil {
				t.Errorf("round %d: release: %v", i, err)
			}
		}()
		tnt2, err := ts.acquire("dur")
		if err != nil {
			t.Fatalf("round %d: re-acquire: %v", i, err)
		}
		wg.Wait()

		// Whichever way the race fell, every commit acked so far must be
		// visible in the (possibly reopened) store.
		for j := 0; j <= i; j++ {
			at := base.Add(time.Duration(j) * time.Minute)
			if _, ok := tnt2.eng.CubeAsOf("SRC", at); !ok {
				t.Fatalf("round %d: SRC version %d lost across close/reopen", i, j)
			}
		}
		if err := ts.release(tnt2, 10*time.Second); err != nil {
			t.Fatalf("round %d: final release: %v", i, err)
		}
	}
	if n := ts.count(); n != 0 {
		t.Fatalf("%d tenants live after all releases", n)
	}
}

// TestSessionInflightPinning: a session with work in flight is never
// idle, and the idle clock restarts when the work completes.
func TestSessionInflightPinning(t *testing.T) {
	cfg := Config{}
	cfg.fill()
	ss := newSessionSet(&cfg)
	start := time.Now()
	sess := &session{id: "s-test", created: start, lastUsed: start}
	ss.add(sess)

	if !sess.beginWork(start) {
		t.Fatal("beginWork failed on a fresh session")
	}
	// Far past the timeout, the pinned session must not be reapable.
	later := start.Add(time.Hour)
	if got := ss.expired(later, time.Minute); len(got) != 0 {
		t.Fatalf("session with in-flight work reported expired")
	}
	sess.endWork(later)
	// The idle clock counts from completion, not from request start.
	if got := ss.expired(later.Add(30*time.Second), time.Minute); len(got) != 0 {
		t.Fatalf("session expired 30s after work ended with a 1m timeout")
	}
	if got := ss.expired(later.Add(2*time.Minute), time.Minute); len(got) != 1 {
		t.Fatalf("idle session not reported expired")
	}
	if !sess.markClosed() {
		t.Fatal("markClosed failed")
	}
	if sess.beginWork(time.Now()) {
		t.Fatal("beginWork succeeded on a closed session")
	}
}

// TestInflightRequestSurvivesIdleTimeout: a request that takes longer
// than the idle timeout (here: a slowly streamed CSV upload into a
// durable tenant) must not have its session reaped and its tenant store
// closed underneath it.
func TestInflightRequestSurvivesIdleTimeout(t *testing.T) {
	dir := t.TempDir()
	_, base := newTestServer(t, Config{
		DataDir:            dir,
		SessionIdleTimeout: 100 * time.Millisecond,
	})
	sid := openSession(t, base, "slow")
	if status, out := postJSON(t, base+"/v1/programs", sid,
		map[string]string{"name": "prog", "source": testProgram}); status != http.StatusCreated {
		t.Fatalf("register: status %d (%v)", status, out)
	}

	body := testCSV(t, 1, 12)
	pr, pw := io.Pipe()
	go func() {
		_, _ = pw.Write(body[:len(body)/2])
		time.Sleep(500 * time.Millisecond) // several reap intervals past the timeout
		_, _ = pw.Write(body[len(body)/2:])
		pw.Close()
	}()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/cubes/SRC", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(SessionHeader, sid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slow PUT: status %d (%s) — session reaped mid-request?", resp.StatusCode, b)
	}
	// The session survived its long request and the data landed.
	if status, body := doReq(t, http.MethodGet, base+"/v1/cubes/SRC", sid, "", nil); status != http.StatusOK {
		t.Fatalf("after slow PUT: get SRC status %d (%s)", status, body)
	}
}

// TestAcquireRefusedAfterShutdown: the tenant set itself refuses opens
// once shutdown began, so even a handler served by an outer server (one
// Server.Shutdown cannot quiesce) can never open a store nobody will
// close.
func TestAcquireRefusedAfterShutdown(t *testing.T) {
	srv := New(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.tenants.acquire("alpha"); !errors.Is(err, errServerClosed) {
		t.Fatalf("acquire after shutdown: err = %v, want errServerClosed", err)
	}
}

// TestStaleVersionConflict: an optimistic-concurrency loss surfaces as
// 409 through the durable store wrapper — classified by errors.Is on
// store.ErrStaleVersion, not by matching message text.
func TestStaleVersionConflict(t *testing.T) {
	dir := t.TempDir()
	_, base := newTestServer(t, Config{DataDir: dir})
	sid := setupTenant(t, base, "alpha", 1, 3)

	past := time.Now().Add(-time.Hour).UTC().Format(time.RFC3339)
	status, body := doReq(t, http.MethodPut, base+"/v1/cubes/SRC?as_of="+past, sid,
		"text/csv", testCSV(t, 2, 3))
	if status != http.StatusConflict {
		t.Fatalf("stale put: status %d (%s), want 409", status, body)
	}
}
