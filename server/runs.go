package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"exlengine/internal/engine"
	"exlengine/internal/exlerr"
)

// RunState is the lifecycle of one dispatched run.
type RunState string

// Run lifecycle states.
const (
	// RunRunning: admitted or waiting for admission inside Engine.Run.
	RunRunning RunState = "running"
	// RunDone: completed; the report is available.
	RunDone RunState = "done"
	// RunFailed: the run returned a non-overload error.
	RunFailed RunState = "failed"
	// RunShed: the governor rejected the run with a typed overload error.
	RunShed RunState = "shed"
	// RunCanceled: the client (or a session close) canceled the run.
	RunCanceled RunState = "canceled"
)

// RunInfo is the wire view of one run — the server's ProcessList entry.
type RunInfo struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant"`
	Session string    `json:"session"`
	State   RunState  `json:"state"`
	Async   bool      `json:"async"`
	Started time.Time `json:"started"`
	// ElapsedMS is wall time so far (running) or total (finished).
	ElapsedMS int64          `json:"elapsed_ms"`
	Error     string         `json:"error,omitempty"`
	Report    *engine.Report `json:"report,omitempty"`
}

// runEntry is the mutable server-side record behind a RunInfo.
type runEntry struct {
	id      string
	tenant  string
	session string
	async   bool
	started time.Time
	cancel  context.CancelFunc
	done    chan struct{}

	mu       sync.Mutex
	state    RunState
	report   *engine.Report
	err      error
	finished time.Time
}

// info renders the entry at instant now.
func (e *runEntry) info(now time.Time) RunInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	ri := RunInfo{
		ID:      e.id,
		Tenant:  e.tenant,
		Session: e.session,
		State:   e.state,
		Async:   e.async,
		Started: e.started,
		Report:  e.report,
	}
	end := e.finished
	if e.state == RunRunning {
		end = now
	}
	ri.ElapsedMS = end.Sub(e.started).Milliseconds()
	if e.err != nil {
		ri.Error = e.err.Error()
	}
	return ri
}

// processList is the server's view of every in-flight run plus a bounded
// tail of finished ones, modeled on go-mysql-server's ProcessList: list
// what is running, inspect status by ID, kill by ID.
type processList struct {
	mu           sync.Mutex
	m            map[string]*runEntry
	finishedFIFO []string // finished entry IDs, oldest first, for eviction
	maxFinished  int
}

func newProcessList(maxFinished int) *processList {
	if maxFinished <= 0 {
		maxFinished = 512
	}
	return &processList{m: make(map[string]*runEntry), maxFinished: maxFinished}
}

// start registers a new running entry.
func (pl *processList) start(tenant, session string, async bool, started time.Time, cancel context.CancelFunc) *runEntry {
	e := &runEntry{
		id:      newID("r-"),
		tenant:  tenant,
		session: session,
		async:   async,
		started: started,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   RunRunning,
	}
	pl.mu.Lock()
	pl.m[e.id] = e
	pl.mu.Unlock()
	return e
}

// finish records the run's outcome, classifies it (done / failed / shed /
// canceled), and schedules the entry for eviction once the finished tail
// outgrows its bound.
func (pl *processList) finish(e *runEntry, rep *engine.Report, err error, now time.Time) {
	e.mu.Lock()
	e.report = rep
	e.err = err
	e.finished = now
	switch {
	case err == nil:
		e.state = RunDone
	case exlerr.IsOverload(err):
		e.state = RunShed
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.state = RunCanceled
	default:
		e.state = RunFailed
	}
	e.mu.Unlock()
	close(e.done)

	pl.mu.Lock()
	pl.finishedFIFO = append(pl.finishedFIFO, e.id)
	for len(pl.finishedFIFO) > pl.maxFinished {
		delete(pl.m, pl.finishedFIFO[0])
		pl.finishedFIFO = pl.finishedFIFO[1:]
	}
	pl.mu.Unlock()
}

// get returns the entry by ID, tenant-scoped: a session only sees its
// own tenant's runs.
func (pl *processList) get(id, tenant string) (*runEntry, bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	e, ok := pl.m[id]
	if !ok || e.tenant != tenant {
		return nil, false
	}
	return e, true
}

// list renders every visible entry of the tenant, running first, newest
// first within each group.
func (pl *processList) list(tenant string, now time.Time) []RunInfo {
	pl.mu.Lock()
	entries := make([]*runEntry, 0, len(pl.m))
	for _, e := range pl.m {
		if e.tenant == tenant {
			entries = append(entries, e)
		}
	}
	pl.mu.Unlock()

	infos := make([]RunInfo, 0, len(entries))
	for _, e := range entries {
		infos = append(infos, e.info(now))
	}
	// Running before finished, then newest starts first.
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && less(infos[j], infos[j-1]); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
	return infos
}

func less(a, b RunInfo) bool {
	ar, br := a.State == RunRunning, b.State == RunRunning
	if ar != br {
		return ar
	}
	return a.Started.After(b.Started)
}

// cancelSession cancels every in-flight run owned by the session — the
// resource-release half of closing or reaping a session.
func (pl *processList) cancelSession(session string) {
	pl.mu.Lock()
	var cancels []context.CancelFunc
	for _, e := range pl.m {
		e.mu.Lock()
		if e.session == session && e.state == RunRunning {
			cancels = append(cancels, e.cancel)
		}
		e.mu.Unlock()
	}
	pl.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}
