package exlengine

// Integration tests for the command-line tools: each binary is built once
// into a temporary directory and driven the way a user would drive it.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildTools compiles the CLIs once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "exlengine-cli")
		if err != nil {
			buildErr = err
			return
		}
		buildDir = dir
		for _, tool := range []string{"exlc", "exlrun", "exlbench", "exlsh"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return buildDir
}

const cliProgram = `
cube PDR(d: day, r: string) measure p
cube RGDPPC(q: quarter, r: string) measure g

PQR    := avg(PDR, group by quarter(d) as q, r)
RGDP   := RGDPPC * PQR
GDP    := sum(RGDP, group by q)
`

func TestExlcEmitsArtifacts(t *testing.T) {
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.exl")
	if err := os.WriteFile(src, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := map[string]string{
		"tgds":    "RGDP(q, r, g) → GDP(q, sum(g))",
		"sql":     "GROUP BY QUARTER(C1.d), C1.r",
		"r":       "merge(",
		"matlab":  "join(",
		"etl":     `"merge_join"`,
		"summary": "table_input(PDR)",
	}
	for emit, frag := range cases {
		out, err := exec.Command(filepath.Join(bin, "exlc"), "-emit", emit, src).CombinedOutput()
		if err != nil {
			t.Fatalf("exlc -emit %s: %v\n%s", emit, err, out)
		}
		if !strings.Contains(string(out), frag) {
			t.Errorf("exlc -emit %s missing %q:\n%s", emit, frag, out)
		}
	}

	// Normalized mode keeps the auxiliary tgds of multi-operator
	// statements.
	cmdN := exec.Command(filepath.Join(bin, "exlc"), "-emit", "tgds", "-normalized")
	cmdN.Stdin = strings.NewReader("cube A(t: year) measure v\nB := (A - shift(A, 1)) / A\n")
	out, err := cmdN.CombinedOutput()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "_B_") {
		t.Errorf("normalized output has no auxiliary cubes:\n%s", out)
	}

	// Views mode renders normalized auxiliaries as CREATE VIEW.
	cmdV := exec.Command(filepath.Join(bin, "exlc"), "-emit", "sql", "-normalized", "-views")
	cmdV.Stdin = strings.NewReader("cube A(t: year) measure v\nB := (A - shift(A, 1)) / A\n")
	outV, err := cmdV.CombinedOutput()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(outV), "CREATE VIEW _B_") {
		t.Errorf("views mode missing CREATE VIEW:\n%s", outV)
	}

	// Stdin input.
	cmd := exec.Command(filepath.Join(bin, "exlc"), "-emit", "tgds")
	cmd.Stdin = strings.NewReader("cube A(t: year) measure v\nB := A * 2\n")
	out, err = cmd.CombinedOutput()
	if err != nil || !strings.Contains(string(out), "B(t, (v * 2))") {
		t.Errorf("exlc stdin: %v\n%s", err, out)
	}

	// Errors are reported with a non-zero exit.
	cmd = exec.Command(filepath.Join(bin, "exlc"), "-emit", "tgds")
	cmd.Stdin = strings.NewReader("A := ")
	if err := cmd.Run(); err == nil {
		t.Error("exlc with a bad program must fail")
	}
	cmd = exec.Command(filepath.Join(bin, "exlc"), "-emit", "cobol", src)
	if err := cmd.Run(); err == nil {
		t.Error("exlc with an unknown artifact must fail")
	}
}

func TestExlrunEndToEnd(t *testing.T) {
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.exl")
	if err := os.WriteFile(src, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	pdr := `d,r,p
2001-03-30,north,10
2001-03-31,north,20
2001-04-01,north,30
2001-04-02,north,40
`
	rgdppc := `q,r,g
2001-Q1,north,2
2001-Q2,north,4
`
	if err := os.WriteFile(filepath.Join(dir, "PDR.csv"), []byte(pdr), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "RGDPPC.csv"), []byte(rgdppc), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, target := range []string{"auto", "chase", "sql", "etl", "frame"} {
		outDir := filepath.Join(dir, "out-"+target)
		out, err := exec.Command(filepath.Join(bin, "exlrun"),
			"-program", src, "-data", dir, "-target", target, "-out", outDir, "-v").CombinedOutput()
		if err != nil {
			t.Fatalf("exlrun -target %s: %v\n%s", target, err, out)
		}
		raw, err := os.ReadFile(filepath.Join(outDir, "GDP.csv"))
		if err != nil {
			t.Fatal(err)
		}
		// GDP(2001-Q1) = avg(10,20)*2 = 30; GDP(2001-Q2) = avg(30,40)*4 = 140.
		for _, frag := range []string{"2001-Q1,30", "2001-Q2,140"} {
			if !strings.Contains(string(raw), frag) {
				t.Errorf("GDP.csv (%s) missing %q:\n%s", target, frag, raw)
			}
		}
	}

	// Missing input file.
	if err := exec.Command(filepath.Join(bin, "exlrun"),
		"-program", src, "-data", t.TempDir()).Run(); err == nil {
		t.Error("exlrun without data must fail")
	}
}

func TestExlshSession(t *testing.T) {
	bin := buildTools(t)
	dir := t.TempDir()
	csv := "t,v\n2000,1\n2001,2\n2002,4\n"
	csvPath := filepath.Join(dir, "a.csv")
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	session := strings.Join([]string{
		"cube A(t: year) measure v",
		"\\load A " + csvPath,
		"B := cumsum(A)",
		"C := B - A",
		"\\show C 5",
		"\\cubes",
		"\\programs",
		"\\run sql",
		"\\sql",
		"\\tgds repl_002",
		"\\trace",
		"\\metrics",
		"\\help",
		"\\nosuch",
		"\\quit",
	}, "\n") + "\n"
	cmd := exec.Command(filepath.Join(bin, "exlsh"))
	cmd.Stdin = strings.NewReader(session)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("exlsh: %v\n%s", err, out)
	}
	text := string(out)
	for _, frag := range []string{
		"A: 3 tuples loaded",
		"B: 3 tuples",
		"C: 3 tuples",
		"2002\t3", // C(2002) = cumsum 7 - 4 = 3
		"repl_001",
		"recalculated 2 cubes",
		"INSERT INTO C", // \sql shows the latest program (repl_003)
		"A → B(cumsum(A))",
		"dispatch",                  // \trace shows the last run's span tree
		"counter engine_runs_total", // \metrics accumulates over the session
		"unknown command",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("exlsh output missing %q:\n%s", frag, text)
		}
	}
}

func TestExlbenchQuickArtifacts(t *testing.T) {
	bin := buildTools(t)
	out, err := exec.Command(filepath.Join(bin, "exlbench"), "-quick", "-run", "e4").CombinedOutput()
	if err != nil {
		t.Fatalf("exlbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "table_input(RGDPPC), table_input(PQR) | merge_join | calculator | table_output(RGDP)") {
		t.Errorf("exlbench e4 output:\n%s", out)
	}
	if err := exec.Command(filepath.Join(bin, "exlbench"), "-run", "e99").Run(); err == nil {
		t.Error("unknown experiment must fail")
	}
}

// TestExlrunObservability drives -trace, -metrics, -report and -v on a
// real run and checks the stdout/stderr contract: all diagnostics go to
// stderr, stdout stays clean for data.
func TestExlrunObservability(t *testing.T) {
	bin := buildTools(t)
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.exl")
	if err := os.WriteFile(src, []byte(cliProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	pdr := "d,r,p\n2001-03-30,north,10\n2001-03-31,north,20\n"
	rgdppc := "q,r,g\n2001-Q1,north,2\n"
	if err := os.WriteFile(filepath.Join(dir, "PDR.csv"), []byte(pdr), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "RGDPPC.csv"), []byte(rgdppc), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(args ...string) (stdout, stderr string) {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, "exlrun"),
			append([]string{"-program", src, "-data", dir, "-out", filepath.Join(dir, "out")}, args...)...)
		var so, se strings.Builder
		cmd.Stdout, cmd.Stderr = &so, &se
		if err := cmd.Run(); err != nil {
			t.Fatalf("exlrun %v: %v\nstderr:\n%s", args, err, se.String())
		}
		return so.String(), se.String()
	}

	// Tree trace: the nested pipeline spans appear on stderr.
	stdout, stderr := run("-trace", "-metrics", "-report", "-v")
	if stdout != "" {
		t.Errorf("stdout must stay clean for data, got:\n%s", stdout)
	}
	for _, frag := range []string{
		"compile", "run", "determine", "dispatch", "fragment", "attempt", "persist",
		"counter engine_runs_total 1",
		"fault tolerance:",
		"plan:",
	} {
		if !strings.Contains(stderr, frag) {
			t.Errorf("stderr missing %q:\n%s", frag, stderr)
		}
	}

	// JSON trace: every non-metric stderr line before the report is a
	// JSON object with a span name.
	_, stderr = run("-trace=json")
	if !strings.Contains(stderr, `"name":"run"`) || !strings.Contains(stderr, `"name":"dispatch"`) {
		t.Errorf("-trace=json stderr:\n%s", stderr)
	}
	for _, line := range strings.Split(strings.TrimSpace(stderr), "\n") {
		var span map[string]any
		if err := json.Unmarshal([]byte(line), &span); err != nil {
			t.Errorf("trace line is not JSON: %q (%v)", line, err)
		}
	}
}
