// Package exlengine is a Go implementation of EXLEngine (Atzeni,
// Bellomarini, Bugiotti — EDBT 2013): executable schema mappings for
// statistical data processing.
//
// Statistical programs are written in EXL, a declarative expression
// language over dimensional cubes. Each program is translated into a
// schema mapping — extended tuple-generating dependencies plus
// functionality egds forming a data-exchange setting — and the mapping is
// translated into executables for several target systems: an in-memory
// SQL database, a data-frame engine standing in for R/Matlab (with R and
// Matlab source printers), and a streaming ETL engine. A stratified chase
// provides the reference data-exchange semantics every target is validated
// against.
//
// The top-level entry point is the Engine, which mirrors the paper's
// architecture: a metadata catalog of cubes and programs, a determination
// engine that decides what to recalculate when elementary cubes change, a
// translation engine producing the mappings and their executables offline,
// and a dispatcher running each subgraph on its preferred target.
//
//	eng := exlengine.New()
//	_ = eng.RegisterProgram("gdp", gdpSource)
//	_ = eng.PutCube(pdr, time.Now())
//	_ = eng.PutCube(rgdppc, time.Now())
//	report, _ := eng.Run(context.Background())
//	gdp, _ := eng.Cube("GDP")
//
// Runs are observable: attach a Tracer and a Metrics registry and every
// phase — compile, determination, per-fragment dispatch with retries and
// fallbacks, target execution — records spans and counters.
//
//	tr, mx := exlengine.NewTracer(), exlengine.NewMetrics()
//	eng := exlengine.New(exlengine.WithTracer(tr), exlengine.WithMetrics(mx))
//	// ... register, load, run ...
//	exlengine.WriteTraceTree(os.Stderr, tr)
//	mx.WriteText(os.Stderr)
package exlengine

import (
	"context"
	"io"

	"exlengine/internal/dispatch"
	"exlengine/internal/engine"
	"exlengine/internal/exl"
	"exlengine/internal/exlerr"
	"exlengine/internal/governor"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// Core engine types.
type (
	// Engine is a complete EXLEngine instance: catalog, determination,
	// translation and dispatch over a versioned cube store.
	Engine = engine.Engine
	// Option configures an Engine.
	Option = engine.Option
	// RunOption configures one Engine.Run call.
	RunOption = engine.RunOption
	// Report describes what a run recalculated and where, including the
	// fault-tolerance record (attempts, retries, fallbacks).
	Report = engine.Report
	// SubgraphInfo is one dispatched fragment of a run.
	SubgraphInfo = engine.SubgraphInfo
)

// Observability types.
type (
	// Tracer collects span trees from traced compilations and runs.
	Tracer = obs.Tracer
	// Span is one node of a trace: a named, timed pipeline step.
	Span = obs.Span
	// Metrics is a registry of counters, gauges and latency histograms.
	Metrics = obs.Registry
	// Attr is one key/value span attribute.
	Attr = obs.Attr
)

// NewTracer returns an empty tracer, ready to pass to WithTracer,
// RunTraced or CompileTraced.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an empty metrics registry, ready to pass to
// WithMetrics or RunMetered.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// WriteTraceTree renders the tracer's spans as an indented tree, one
// line per span with duration, attributes and error class.
func WriteTraceTree(w io.Writer, t *Tracer) error { return obs.WriteTree(w, t) }

// WriteTraceJSONL writes the tracer's spans as JSON Lines, one span
// object per line in pre-order.
func WriteTraceJSONL(w io.Writer, t *Tracer) error { return obs.WriteJSONL(w, t) }

// Observability options.
var (
	// WithTracer attaches a tracer to every compile and run of an engine.
	WithTracer = engine.WithTracer
	// WithMetrics attaches a metrics registry to every run of an engine.
	WithMetrics = engine.WithMetrics
)

// Run options for Engine.Run.
var (
	// RunChanged restricts the run to the consequences of changed cubes.
	RunChanged = engine.RunChanged
	// RunAt stamps the run's results with an explicit version timestamp.
	RunAt = engine.RunAt
	// RunOn forces the whole run onto one fixed target system.
	RunOn = engine.RunOn
	// RunTraced records this run's spans into a per-call tracer.
	RunTraced = engine.RunTraced
	// RunMetered accumulates this run's metrics into a per-call registry.
	RunMetered = engine.RunMetered
)

// Fault-tolerance types.
type (
	// RetryPolicy governs retries of transient fragment failures.
	RetryPolicy = dispatch.RetryPolicy
	// FragmentReport records every attempt and fallback of one fragment.
	FragmentReport = dispatch.FragmentReport
	// Attempt is one execution attempt of a fragment on a target.
	Attempt = dispatch.Attempt
	// ErrorClass partitions failures: Transient, Fatal, EgdViolation.
	ErrorClass = exlerr.Class
)

// Failure classes of the error taxonomy.
const (
	Transient    = exlerr.Transient
	Fatal        = exlerr.Fatal
	EgdViolation = exlerr.EgdViolation
	// Overload marks runs rejected by the resource governor (queue full,
	// deadline unmeetable, memory budget exceeded, or shutting down).
	Overload = exlerr.Overload
)

// IsOverload reports whether err is an overload rejection — the typed
// shed an engine under admission control or a memory budget returns
// instead of degrading unpredictably.
func IsOverload(err error) bool { return exlerr.IsOverload(err) }

// Fault-tolerance options.
var (
	// WithRetryPolicy overrides the transient-failure retry policy.
	WithRetryPolicy = engine.WithRetryPolicy
	// WithoutDegradation disables fallback re-routing of failed fragments.
	WithoutDegradation = engine.WithoutDegradation
	// WithFragmentTimeout bounds each fragment attempt.
	WithFragmentTimeout = engine.WithFragmentTimeout
)

// Resource-governance types. The governor is the engine's overload
// armor: admission control with a bounded queue, memory budgets charged
// at cube materialization, per-backend circuit breakers, and graceful
// shutdown (Engine.Shutdown stops admission, drains in-flight runs and
// closes the store).
type (
	// Governor arbitrates run admission, memory budgets and breakers.
	Governor = governor.Governor
	// GovernorConfig configures a Governor.
	GovernorConfig = governor.Config
	// BreakerConfig configures the per-backend circuit breakers.
	BreakerConfig = governor.BreakerConfig
)

// Resource-governance options.
var (
	// MaxConcurrentRuns caps how many runs execute at once; excess
	// admission requests queue, then shed with typed overload errors.
	MaxConcurrentRuns = engine.MaxConcurrentRuns
	// MemoryBudget bounds the bytes concurrent runs may reserve for cube
	// materialization; a run that does not fit degrades to sequential
	// dispatch before being rejected.
	MemoryBudget = engine.MemoryBudget
	// PerRunMemoryBudget bounds a single run's reservation.
	PerRunMemoryBudget = engine.PerRunMemoryBudget
	// WithBreakers enables per-backend circuit breakers.
	WithBreakers = engine.WithBreakers
	// WithGovernor installs a fully configured governor (shared across
	// engines for a process-wide budget, or tuned beyond the shorthand
	// options above).
	WithGovernor = engine.WithGovernor
	// NewGovernor builds a standalone governor from a config.
	NewGovernor = governor.New
)

// Typed overload rejections returned by governed runs.
var (
	// ErrQueueFull: the admission queue was at capacity.
	ErrQueueFull = governor.ErrQueueFull
	// ErrDeadline: the caller's deadline could not be met.
	ErrDeadline = governor.ErrDeadline
	// ErrShuttingDown: the engine is draining for shutdown.
	ErrShuttingDown = governor.ErrShuttingDown
	// ErrMemoryBudget: the run did not fit the memory budget.
	ErrMemoryBudget = governor.ErrMemoryBudget
)

// Data model types.
type (
	// Schema describes a cube: identifier, typed dimensions, measure.
	Schema = model.Schema
	// Dim is a named, typed cube dimension.
	Dim = model.Dim
	// DimType is a dimension type (string, int, or a time frequency).
	DimType = model.DimType
	// Cube is an in-memory cube instance (a partial function from
	// dimension tuples to a numeric measure).
	Cube = model.Cube
	// Tuple is one cube tuple.
	Tuple = model.Tuple
	// Value is a dynamically typed dimension value.
	Value = model.Value
	// Period is a typed time period (day, month, quarter, year).
	Period = model.Period
	// Frequency is a time-period frequency.
	Frequency = model.Frequency
)

// Mapping types.
type (
	// Mapping is a generated schema mapping M = (S, T, Σst, Σt).
	Mapping = mapping.Mapping
	// Tgd is an extended tuple-generating dependency.
	Tgd = mapping.Tgd
	// Egd is a functionality equality-generating dependency.
	Egd = mapping.Egd
)

// Target identifies an execution target system.
type Target = ops.Target

// Execution targets.
const (
	TargetChase = ops.TargetChase
	TargetSQL   = ops.TargetSQL
	TargetETL   = ops.TargetETL
	TargetFrame = ops.TargetFrame
)

// Artifact kinds accepted by Engine.Translate.
const (
	ArtifactTgds   = engine.ArtifactTgds
	ArtifactSQL    = engine.ArtifactSQL
	ArtifactR      = engine.ArtifactR
	ArtifactMatlab = engine.ArtifactMatlab
	ArtifactETL    = engine.ArtifactETL
)

// Dimension type constructors.
var (
	TString  = model.TString
	TInt     = model.TInt
	TDay     = model.TDay
	TMonth   = model.TMonth
	TQuarter = model.TQuarter
	TYear    = model.TYear
)

// New returns an empty engine.
func New(opts ...Option) *Engine { return engine.New(opts...) }

// WithParallelDispatch enables concurrent execution of independent
// subgraphs during runs.
func WithParallelDispatch() Option { return engine.WithParallelDispatch() }

// NewSchema builds a cube schema; an empty measure name defaults to
// "value".
func NewSchema(name string, dims []Dim, measure string) Schema {
	return model.NewSchema(name, dims, measure)
}

// NewCube returns an empty cube instance for the schema.
func NewCube(sch Schema) *Cube { return model.NewCube(sch) }

// Value constructors.
var (
	Num  = model.Num
	Str  = model.Str
	Int  = model.Int
	Per  = model.Per
	Bool = model.Bool
)

// Period constructors.
var (
	NewDaily     = model.NewDaily
	NewMonthly   = model.NewMonthly
	NewQuarterly = model.NewQuarterly
	NewAnnual    = model.NewAnnual
	ParsePeriod  = model.ParsePeriod
)

// compileConfig collects the settings of one Compile call.
type compileConfig struct {
	fusion bool
	tracer *Tracer
}

// CompileOption configures one Compile call.
type CompileOption func(*compileConfig)

// WithoutFusion disables the fusion pass: every statement is decomposed
// into single-operator tgds over auxiliary cubes (the paper's normalized
// translation).
func WithoutFusion() CompileOption {
	return func(c *compileConfig) { c.fusion = false }
}

// CompileTraced records the compilation's span tree (compile →
// parse/analyze/generate) into t.
func CompileTraced(t *Tracer) CompileOption {
	return func(c *compileConfig) { c.tracer = t }
}

// Compile parses and analyzes an EXL program (with optional external cube
// schemas) and generates its schema mapping — the paper's Section 4
// pipeline without execution, fused unless WithoutFusion is given. Use it
// to inspect tgds or feed the translators directly.
//
// Results are cached process-wide, keyed by (program text, external-schema
// fingerprint, fusion): recompiling an unchanged program is a map lookup,
// and the returned mapping is shared — treat it as read-only.
func Compile(src string, external map[string]Schema, opts ...CompileOption) (*Mapping, error) {
	cfg := compileConfig{fusion: true}
	for _, o := range opts {
		o(&cfg)
	}
	ctx := context.Background()
	if cfg.tracer != nil {
		ctx = obs.ContextWithTracer(ctx, cfg.tracer)
	}
	ctx, span := obs.StartSpan(ctx, "compile", obs.Bool("fusion", cfg.fusion))
	c, err := engine.CompileCached(ctx, src, external, cfg.fusion)
	span.EndErr(err)
	if err != nil {
		return nil, err
	}
	return c.Mapping, nil
}

// Validate parses and type-checks an EXL program without generating a
// mapping — the check the paper's IDE tools run while statisticians type.
// It returns nil when the program is well-formed against the external
// schemas.
func Validate(src string, external map[string]Schema) error {
	prog, err := exl.Parse(src)
	if err != nil {
		return err
	}
	_, err = exl.Analyze(prog, external)
	return err
}
