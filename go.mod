module exlengine

go 1.22
