package exlengine_test

import (
	"context"
	"fmt"
	"time"

	"exlengine"
)

// ExampleCompile shows the paper's Section 2 pipeline: an EXL program is
// translated into a schema mapping whose tgds can be inspected directly.
func ExampleCompile() {
	m, err := exlengine.Compile(`
cube PDR(d: day, r: string) measure p
cube RGDPPC(q: quarter, r: string) measure g

PQR    := avg(PDR, group by quarter(d) as q, r)
RGDP   := RGDPPC * PQR
GDP    := sum(RGDP, group by q)
GDPT   := stl_t(GDP)
PCHNG  := (GDPT - shift(GDPT, 1)) * 100 / GDPT
`, nil)
	if err != nil {
		panic(err)
	}
	for i, t := range m.Tgds {
		fmt.Printf("(%d) %s\n", i+1, t)
	}
	// Output:
	// (1) PDR(d, r, p) → PQR(quarter(d), r, avg(p))
	// (2) RGDPPC(q, r, g) ∧ PQR(q, r, p) → RGDP(q, r, (g * p))
	// (3) RGDP(q, r, g) → GDP(q, sum(g))
	// (4) GDP → GDPT(stl_t(GDP))
	// (5) GDPT(q, y1) ∧ GDPT(q-1, y2) → PCHNG(q, (((y1 - y2) * 100) / y1))
}

// ExampleEngine runs a small program end to end: register, load, run,
// read the derived cube back.
func ExampleEngine() {
	eng := exlengine.New()
	if err := eng.RegisterProgram("demo", `
cube SALES(m: month) measure s

CUM := cumsum(SALES)
`); err != nil {
		panic(err)
	}

	sales := exlengine.NewCube(exlengine.NewSchema("SALES",
		[]exlengine.Dim{{Name: "m", Type: exlengine.TMonth}}, "s"))
	for i, v := range []float64{10, 20, 30} {
		m := exlengine.Per(exlengine.NewMonthly(2024, time.January).Shift(int64(i)))
		if err := sales.Put([]exlengine.Value{m}, v); err != nil {
			panic(err)
		}
	}
	if err := eng.PutCube(sales, time.Unix(0, 0)); err != nil {
		panic(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		panic(err)
	}

	cum, _ := eng.Cube("CUM")
	for _, tu := range cum.Tuples() {
		fmt.Printf("%s %g\n", tu.Dims[0], tu.Measure)
	}
	// Output:
	// 2024-01 10
	// 2024-02 30
	// 2024-03 60
}

// ExampleEngine_Translate prints the SQL generated for a program, the
// executable form delegated to a DBMS target (Section 5.1).
func ExampleEngine_Translate() {
	eng := exlengine.New()
	if err := eng.RegisterProgram("p", `
cube A(q: quarter, r: string) measure v

TOT := sum(A, group by q)
`); err != nil {
		panic(err)
	}
	sql, err := eng.Translate("p", exlengine.ArtifactSQL)
	if err != nil {
		panic(err)
	}
	fmt.Println(sql)
	// Output:
	// CREATE TABLE TOT (q QUARTER, v DOUBLE);
	// -- t1 -> TOT
	// INSERT INTO TOT(q, v)
	// SELECT C1.q AS q, SUM(C1.v) AS v
	// FROM A C1
	// GROUP BY C1.q;
}

// ExampleValidate shows the IDE-style validation of a malformed program.
func ExampleValidate() {
	err := exlengine.Validate("B := NOPE * 2", nil)
	fmt.Println(err)
	// Output:
	// exl: 1:6: unknown cube NOPE (not elementary, not derived by an earlier statement)
}
