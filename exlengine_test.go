package exlengine

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the public API end to end, exactly as the
// README quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	eng := New(WithParallelDispatch())
	src := `
cube SALES(m: month, shop: string) measure s

TOTAL := sum(SALES, group by m)
MA    := movavg(TOTAL, 3)
GROWTH := (TOTAL - shift(TOTAL, 1)) * 100 / shift(TOTAL, 1)
`
	if err := eng.RegisterProgram("sales", src); err != nil {
		t.Fatal(err)
	}

	sales := NewCube(NewSchema("SALES",
		[]Dim{{Name: "m", Type: TMonth}, {Name: "shop", Type: TString}}, "s"))
	for i := 0; i < 12; i++ {
		m := Per(NewMonthly(2024, time.January).Shift(int64(i)))
		if err := sales.Put([]Value{m, Str("rome")}, 100+float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := sales.Put([]Value{m, Str("milan")}, 200+float64(2*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.PutCube(sales, time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}

	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Plan) != 3 {
		t.Errorf("plan = %v", rep.Plan)
	}

	total, ok := eng.Cube("TOTAL")
	if !ok || total.Len() != 12 {
		t.Fatalf("TOTAL = %v, %v", total, ok)
	}
	jan := []Value{Per(NewMonthly(2024, time.January))}
	if got, _ := total.Get(jan); got != 300 {
		t.Errorf("TOTAL(jan) = %v", got)
	}
	growth, _ := eng.Cube("GROWTH")
	if growth.Len() != 11 {
		t.Errorf("GROWTH len = %d", growth.Len())
	}
	feb := []Value{Per(NewMonthly(2024, time.February))}
	want := (303.0 - 300.0) * 100 / 300.0
	if got, _ := growth.Get(feb); !almost(got, want) {
		t.Errorf("GROWTH(feb) = %v, want %v", got, want)
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9*(1+b)
}

func TestFacadeCompile(t *testing.T) {
	m, err := Compile("cube A(t: year) measure v\nB := A * 2\nC := (B - shift(B,1)) / shift(B,1)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tgds) != 2 {
		t.Errorf("tgds:\n%s", m)
	}
	if !strings.Contains(m.String(), "t-1") {
		t.Errorf("fused shift missing:\n%s", m)
	}
	n, err := Compile("cube A(t: year) measure v\nC := (A - shift(A,1)) / shift(A,1)", nil, WithoutFusion())
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Tgds) <= 1 {
		t.Errorf("normalized should have aux tgds:\n%s", n)
	}
	if _, err := Compile("garbage :=", nil); err == nil {
		t.Error("bad program must fail")
	}
	if _, err := Compile("garbage :=", nil, WithoutFusion()); err == nil {
		t.Error("bad program must fail")
	}
}

func TestFacadeValidate(t *testing.T) {
	if err := Validate("cube A(t: year)\nB := A * 2", nil); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	if err := Validate("B := NOPE * 2", nil); err == nil {
		t.Error("invalid program accepted")
	}
	if err := Validate("B := ", nil); err == nil {
		t.Error("syntax error accepted")
	}
}

func TestFacadeExternalSchemas(t *testing.T) {
	ext := map[string]Schema{
		"X": NewSchema("X", []Dim{{Name: "q", Type: TQuarter}}, "v"),
	}
	m, err := Compile("Y := ln(X)", ext)
	if err != nil {
		t.Fatal(err)
	}
	if m.Schemas["Y"].Dims[0].Name != "q" {
		t.Errorf("schema propagation: %v", m.Schemas["Y"])
	}
}

func TestCompileOptions(t *testing.T) {
	const src = "cube A(t: year) measure v\nC := (A - shift(A,1)) / shift(A,1)"

	// CompileTraced records the compile pipeline's span tree. This must be
	// the first fused compile of src in the process, or the cache serves it
	// without the parse/analyze/generate children.
	tr := NewTracer()
	fused, err := Compile(src, nil, CompileTraced(tr))
	if err != nil {
		t.Fatal(err)
	}

	// WithoutFusion decomposes the statement into single-operator tgds
	// over auxiliary cubes, so the normalized mapping has strictly more
	// tgds than the fused one.
	viaOpt, err := Compile(src, nil, WithoutFusion())
	if err != nil {
		t.Fatal(err)
	}
	if len(viaOpt.Tgds) <= len(fused.Tgds) {
		t.Errorf("WithoutFusion: %d tgds, fused: %d — want strictly more when normalized",
			len(viaOpt.Tgds), len(fused.Tgds))
	}
	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "compile" {
		t.Fatalf("roots = %v, want one compile span", roots)
	}
	for _, phase := range []string{"parse", "analyze", "generate"} {
		if roots[0].Find(phase) == nil {
			t.Errorf("compile trace missing %s child", phase)
		}
	}

	// The exported writers render the same tracer.
	var tree, jsonl strings.Builder
	if err := WriteTraceTree(&tree, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tree.String(), "compile") {
		t.Errorf("tree output: %q", tree.String())
	}
	if err := WriteTraceJSONL(&jsonl, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"name":"compile"`) {
		t.Errorf("jsonl output: %q", jsonl.String())
	}

	// A failing compile still ends its spans.
	tr.Reset()
	if _, err := Compile("garbage :=", nil, CompileTraced(tr)); err == nil {
		t.Error("bad program must fail")
	}
	if len(tr.Roots()) == 0 || tr.Roots()[0].Err == "" {
		t.Error("failed compile span records no error")
	}
}
