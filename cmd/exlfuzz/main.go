// Command exlfuzz is the differential cross-engine fuzzer: it generates
// seeded random EXL programs and source instances, executes each on the
// sqlengine, frame and etl backends, diffs every derived cube against
// the chase reference, and minimizes failures. A second pass fuzzes the
// SQL dialect's three-valued NULL semantics with random boolean and
// arithmetic expressions against an independent reference evaluator.
//
// Usage:
//
//	exlfuzz [-seed 1] [-n 200] [-stmts 6] [-budget 0] [-shrink] [-tol 1e-6]
//	        [-legacy-sql] [-incremental]
//
// With -incremental, each case additionally churns its data with a
// seed-derived perturbation and requires the incremental chase to
// reproduce the full solution byte for byte (zero tolerance).
//
// Exit status: 0 when every case agrees, 1 on any divergence, 2 on an
// internal failure (a generated case that does not compile, or a chase
// error — generator defects, not engine bugs).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"exlengine/internal/difftest"
	"exlengine/internal/sqlengine"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "base seed; case i uses seed+i")
		n      = flag.Int("n", 200, "number of random programs (and NULL-semantics expressions) to run")
		stmts  = flag.Int("stmts", 6, "statements per generated program")
		budget = flag.Duration("budget", 0, "wall-clock budget; 0 means unlimited")
		shrink = flag.Bool("shrink", true, "minimize failing cases before reporting")
		tol    = flag.Float64("tol", difftest.DefaultTol, "relative measure comparison tolerance")
		legacy = flag.Bool("legacy-sql", false, "run the sqlengine leg on the legacy tree-walking executor instead of the vectorized one")
		incr   = flag.Bool("incremental", false, "also diff the incremental chase against the full chase on churned data")
	)
	flag.Parse()

	if *legacy {
		sqlengine.SetDefaultExecMode(sqlengine.ExecLegacy)
	}

	start := time.Now()
	deadline := time.Time{}
	if *budget > 0 {
		deadline = start.Add(*budget)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	divergent := 0
	ran := 0
	sqlSkipped := 0
	incrRan := 0
	for i := 0; i < *n && !expired(); i++ {
		caseSeed := *seed + int64(i)
		c := difftest.GenerateCase(caseSeed, *stmts)
		res, err := difftest.Run(c, *tol)
		if err != nil {
			fmt.Fprintf(os.Stderr, "exlfuzz: seed %d: internal failure: %v\nprogram:\n%s", caseSeed, err, c.Source())
			os.Exit(2)
		}
		ran++
		if res.SQLSkipped {
			sqlSkipped++
		}
		if len(res.Divergences) == 0 {
			continue
		}
		divergent++
		fmt.Printf("DIVERGENCE at seed %d (%d finding(s)):\n", caseSeed, len(res.Divergences))
		for _, d := range res.Divergences {
			fmt.Printf("  %s\n", d)
		}
		if *shrink {
			min := difftest.Shrink(c, difftest.Diverges(*tol))
			fmt.Printf("minimized reproduction (commit under internal/difftest/testdata/known/ if not fixing now):\n%s\n",
				difftest.FormatKnownCase(fmt.Sprintf("found by exlfuzz -seed %d -stmts %d", caseSeed, *stmts), min))
		} else {
			fmt.Printf("reproduction:\n%s%s\n", c.Source(), c.DataCSV())
		}
	}

	if *incr {
		for i := 0; i < *n && !expired(); i++ {
			caseSeed := *seed + int64(i)
			churnSeed := caseSeed*1000003 + 1
			c := difftest.GenerateCase(caseSeed, *stmts)
			res, err := difftest.RunIncremental(c, churnSeed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "exlfuzz: seed %d: incremental internal failure: %v\nprogram:\n%s", caseSeed, err, c.Source())
				os.Exit(2)
			}
			incrRan++
			if len(res.Divergences) == 0 {
				continue
			}
			divergent++
			fmt.Printf("INCREMENTAL DIVERGENCE at seed %d churn %d (%d finding(s)):\n", caseSeed, churnSeed, len(res.Divergences))
			for _, d := range res.Divergences {
				fmt.Printf("  %s\n", d)
			}
			if *shrink {
				min := difftest.Shrink(c, difftest.IncrDiverges(churnSeed))
				fmt.Printf("minimized reproduction (commit under internal/difftest/testdata/known/ if not fixing now):\n%s\n",
					difftest.FormatKnownCase(fmt.Sprintf("found by exlfuzz -incremental -seed %d -stmts %d (churn %d)", caseSeed, *stmts, churnSeed), min))
			} else {
				fmt.Printf("reproduction:\n%s%s\n", c.Source(), c.DataCSV())
			}
		}
	}

	exprDivs, err := difftest.FuzzNullExprs(*seed, *n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "exlfuzz: NULL-semantics fuzz: %v\n", err)
		os.Exit(2)
	}
	for _, d := range exprDivs {
		fmt.Printf("NULL-SEMANTICS DIVERGENCE: %s\n", d)
	}
	divergent += len(exprDivs)

	fmt.Printf("exlfuzz: %d programs (sql skipped on %d pad-operator cases), %d incremental parity runs, %d NULL-semantics expressions, %d divergence(s), %s\n",
		ran, sqlSkipped, incrRan, *n, divergent, time.Since(start).Round(time.Millisecond))
	if divergent > 0 {
		os.Exit(1)
	}
}
