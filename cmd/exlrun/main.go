// Command exlrun executes an EXL program over CSV data on a chosen target
// engine and writes every derived cube back as CSV.
//
// Usage:
//
//	exlrun -program program.exl -data dir [-target auto|chase|sql|etl|frame] [-out dir]
//
// The data directory must contain one <CUBE>.csv file per elementary cube,
// with a header naming the dimensions (in declaration order) followed by
// the measure. Results are written to the output directory (default: the
// data directory) as <CUBE>.csv.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"exlengine/internal/engine"
	"exlengine/internal/exl"
	"exlengine/internal/ops"
)

func main() {
	programPath := flag.String("program", "", "EXL program file")
	dataDir := flag.String("data", "", "directory with <CUBE>.csv inputs")
	target := flag.String("target", "auto", "execution target: auto, chase, sql, etl, frame")
	outDir := flag.String("out", "", "output directory (default: the data directory)")
	verbose := flag.Bool("v", false, "print the run report")
	flag.Parse()

	if *programPath == "" || *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *outDir == "" {
		*outDir = *dataDir
	}

	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	eng := engine.New(engine.WithParallelDispatch())
	if err := eng.RegisterProgram("main", string(src)); err != nil {
		fatal(err)
	}

	// Load every elementary cube the program declares.
	prog, err := exl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		fatal(err)
	}
	now := time.Now()
	for _, name := range a.Elementary {
		path := filepath.Join(*dataDir, name+".csv")
		f, err := os.Open(path)
		if err != nil {
			fatal(fmt.Errorf("input for cube %s: %w", name, err))
		}
		err = eng.LoadCSV(name, f, now)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	var report *engine.Report
	if *target == "auto" {
		report, err = eng.RunAll()
	} else {
		report, err = eng.RunAllOn(ops.Target(*target))
	}
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Printf("plan: %v\n", report.Plan)
		for _, s := range report.Subgraphs {
			fmt.Printf("  %-6s %v\n", s.Target, s.Cubes)
		}
		fmt.Printf("elapsed: %v\n", report.Elapsed)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range a.Derived {
		path := filepath.Join(*outDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		err = eng.WriteCSV(name, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Printf("wrote %s\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exlrun:", err)
	os.Exit(1)
}
