// Command exlrun executes an EXL program over CSV data on a chosen target
// engine and writes every derived cube back as CSV.
//
// Usage:
//
//	exlrun -program program.exl -data dir [-target auto|chase|sql|etl|frame]
//	       [-out dir] [-store dir] [-report] [-trace[=json]] [-metrics]
//	       [-timeout d] [-fragment-timeout d] [-retries n] [-no-fallback]
//	       [-max-concurrent n] [-mem-budget bytes] [-incremental]
//
// Runs can be delta-driven: with -incremental, a cube whose inputs have
// not changed since it was last computed (same engine process, e.g. with
// -store across invocations within one process embedding) is skipped
// outright, and a changed input propagates through the mappings as a
// tuple-level delta wherever the operators allow, recomputing only the
// affected output points. Results are byte-identical to a full run.
//
// The data directory must contain one <CUBE>.csv file per elementary cube,
// with a header naming the dimensions (in declaration order) followed by
// the measure. Results are written to the output directory (default: the
// data directory) as <CUBE>.csv.
//
// Runs are fault-tolerant by default: transient engine failures retry
// with capped exponential backoff and a target that keeps failing is
// degraded to a fallback target permitted by the operator-support matrix
// (chase last). -report prints the per-fragment record of every attempt,
// retry and fallback; -no-fallback fails fast instead. Ctrl-C cancels the
// run cleanly without writing partial results.
//
// Runs are observable: -trace prints the span tree of the whole pipeline
// (compile → determine → dispatch → fragments → attempts → target
// internals) as an indented tree, or as JSON Lines with -trace=json;
// -metrics prints the run's counters and latency histograms. All
// diagnostics (-v, -report, -trace, -metrics) go to stderr, leaving
// stdout for data.
//
// Runs are overload-safe: -max-concurrent caps how many runs execute at
// once (excess admission requests queue, then shed with typed overload
// errors) and -mem-budget bounds the bytes runs may reserve for cube
// materialization — a run that does not fit degrades to sequential
// dispatch before being rejected. A single exlrun invocation performs one
// run, so these flags matter mostly when the process is embedded or
// scripted against a shared store; they are accepted here so the same
// governor configuration can be exercised end to end from the CLI.
//
// With -store, cubes persist in a crash-safe durable store (write-ahead
// log + segment snapshots) in the given directory: every version from
// every prior run survives restarts, a crash mid-commit recovers to the
// last consistent state, and -metrics includes the durability counters
// (store_wal_bytes_total, store_fsyncs_total, store_recovery_ms, …).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"exlengine/internal/cli"
	"exlengine/internal/dispatch"
	"exlengine/internal/engine"
	"exlengine/internal/exl"
	"exlengine/internal/ops"
)

func main() {
	programPath := flag.String("program", "", "EXL program file")
	dataDir := flag.String("data", "", "directory with <CUBE>.csv inputs")
	target := flag.String("target", "auto", "execution target: auto, chase, sql, etl, frame")
	outDir := flag.String("out", "", "output directory (default: the data directory)")
	verbose := flag.Bool("v", false, "print the run report")
	report := flag.Bool("report", false, "print the fault-tolerance report (attempts, retries, fallbacks)")
	timeout := flag.Duration("timeout", 0, "overall run timeout (0 = none)")
	fragTimeout := flag.Duration("fragment-timeout", 0, "per-fragment attempt timeout (0 = none)")
	retries := flag.Int("retries", dispatch.DefaultRetry.MaxAttempts, "attempts per target for transient failures")
	noFallback := flag.Bool("no-fallback", false, "disable degradation to fallback targets")
	incremental := flag.Bool("incremental", false, "delta-driven recomputation: skip current cubes, maintain the rest from input deltas")
	shared := cli.Register(flag.CommandLine)
	flag.Parse()

	if *programPath == "" || *dataDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *outDir == "" {
		*outDir = *dataDir
	}

	src, err := os.ReadFile(*programPath)
	if err != nil {
		fatal(err)
	}
	retry := dispatch.DefaultRetry
	retry.MaxAttempts = *retries
	opts := []engine.Option{
		engine.WithParallelDispatch(),
		engine.WithRetryPolicy(retry),
	}
	if *noFallback {
		opts = append(opts, engine.WithoutDegradation())
	}
	if *fragTimeout > 0 {
		opts = append(opts, engine.WithFragmentTimeout(*fragTimeout))
	}
	sinks := shared.Sinks()
	sharedOpts, closeStore, rec, err := shared.EngineOptions(sinks)
	if err != nil {
		fatal(err)
	}
	defer closeStore()
	if rec != nil && *verbose {
		fmt.Fprintf(os.Stderr, "store: recovered generation %d (snapshot %d, %d replayed, %d truncated) in %v\n",
			rec.Generation, rec.SnapshotGen, rec.ReplayedRecords, rec.TruncatedRecords, rec.Elapsed)
	}
	opts = append(opts, sharedOpts...)
	eng := engine.New(opts...)
	if err := eng.RegisterProgram("main", string(src)); err != nil {
		fatal(err)
	}

	// Load every elementary cube the program declares.
	prog, err := exl.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		fatal(err)
	}
	now := time.Now()
	for _, name := range a.Elementary {
		path := filepath.Join(*dataDir, name+".csv")
		f, err := os.Open(path)
		if err != nil {
			fatal(fmt.Errorf("input for cube %s: %w", name, err))
		}
		err = eng.LoadCSV(name, f, now)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var runOpts []engine.RunOption
	if *target != "auto" {
		runOpts = append(runOpts, engine.RunOn(ops.Target(*target)))
	}
	if *incremental {
		runOpts = append(runOpts, engine.WithIncremental())
	}
	rep, err := eng.Run(ctx, runOpts...)

	// Diagnostics go out even when the run failed: the trace and the
	// metrics of a failed run are exactly what one wants to look at.
	shared.Dump(os.Stderr, sinks)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "plan: %v\n", rep.Plan)
		if rep.Incremental {
			fmt.Fprintf(os.Stderr, "incremental: %d cube(s) skipped as current: %v\n", len(rep.Skipped), rep.Skipped)
		}
		for _, s := range rep.Subgraphs {
			fmt.Fprintf(os.Stderr, "  %-6s %v\n", s.Target, s.Cubes)
		}
		fmt.Fprintf(os.Stderr, "elapsed: %v\n", rep.Elapsed)
	}
	if *report {
		printReport(rep)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range a.Derived {
		path := filepath.Join(*outDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		err = eng.WriteCSV(name, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

// printReport renders the fault-tolerance record of the run to stderr:
// one line per fragment plus one per attempt that did not succeed first
// try.
func printReport(rep *engine.Report) {
	fmt.Fprintf(os.Stderr, "fault tolerance: %d fragment(s), %d retry(s), %d fallback(s)\n",
		len(rep.Fragments), rep.Retries, rep.Fallbacks)
	for i := range rep.Fragments {
		fr := &rep.Fragments[i]
		status := string(fr.Final)
		if fr.Final == "" {
			status = "FAILED"
		} else if fr.Degraded() {
			status = fmt.Sprintf("%s (degraded from %s)", fr.Final, fr.Primary)
		}
		fmt.Fprintf(os.Stderr, "  fragment %d %v: %s, %d attempt(s), %v\n",
			fr.Index, fr.Cubes, status, len(fr.Attempts), fr.Elapsed)
		for _, at := range fr.Attempts {
			if at.Err == "" {
				continue
			}
			line := fmt.Sprintf("    %s attempt %d: %s (%s)", at.Target, at.Attempt, at.Err, at.Class)
			if at.Panic {
				line += " [panic recovered]"
			}
			if at.Backoff > 0 {
				line += fmt.Sprintf(" [backoff %v]", at.Backoff)
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exlrun:", err)
	os.Exit(1)
}
