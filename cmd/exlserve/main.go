// Command exlserve runs the EXLEngine multi-tenant HTTP server.
//
// Usage:
//
//	exlserve [-addr :8080] [-data-dir DIR] [-max-concurrent N]
//	         [-mem-budget BYTES] [-session-idle-timeout DUR] [-incremental]
//
// -incremental makes every run delta-driven by default: only cubes whose
// inputs changed since their last computation are recomputed, from store
// deltas where the mappings allow it, with byte-identical results.
// Individual requests can also opt in per run with "incremental": true.
//
// With -data-dir every tenant is durable: its cube store lives under
// DIR/<tenant> (write-ahead log + segment snapshots) and survives idle
// eviction and process restarts. Without it tenants are in-memory.
//
// -max-concurrent and -mem-budget configure each tenant's admission
// governor; overloaded tenants shed work with typed 429/503 responses
// rather than degrading everyone.
//
// SIGINT/SIGTERM trigger a graceful shutdown: HTTP stops accepting,
// in-flight runs drain, and durable stores flush and close — every
// acked commit is on disk when the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"exlengine/internal/cli"
	"exlengine/server"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		// -data-dir, not the shared -store: the one-shot tools open one
		// store at the directory, the server opens one per tenant under it.
		dataDir     = flag.String("data-dir", "", "durable tenant root (state lives under DIR/<tenant>); empty = in-memory tenants")
		idleTimeout = flag.Duration("session-idle-timeout", 5*time.Minute, "evict sessions idle this long")
		authTokens  = flag.String("auth-tokens", "", "comma-separated token=tenant pairs (tenant * = any); empty allows all")
		incremental = flag.Bool("incremental", false, "delta-driven recomputation by default: runs recompute only stale cubes, byte-identical to full runs")
	)
	shared := &cli.Flags{}
	shared.RegisterGovernor(flag.CommandLine, 0, 0)
	flag.Parse()

	cfg := server.Config{
		Addr:               *addr,
		DataDir:            *dataDir,
		MaxConcurrent:      shared.MaxConcurrent,
		MemBudget:          shared.MemBudget,
		SessionIdleTimeout: *idleTimeout,
		Incremental:        *incremental,
	}
	if *authTokens != "" {
		auth, err := parseTokens(*authTokens)
		if err != nil {
			log.Fatalf("exlserve: %v", err)
		}
		cfg.Auth = auth
	}

	srv := server.New(cfg)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() {
		log.Printf("exlserve: listening on %s (data-dir=%q)", cfg.Addr, cfg.DataDir)
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("exlserve: %v", err)
		}
	case s := <-sig:
		log.Printf("exlserve: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("exlserve: shutdown: %v", err)
		}
	}
}

// parseTokens builds a StaticTokens table from "tok1=tenantA,tok2=*".
func parseTokens(s string) (server.StaticTokens, error) {
	auth := server.StaticTokens{}
	for _, pair := range strings.Split(s, ",") {
		if pair == "" {
			continue
		}
		tok, tenant, ok := strings.Cut(pair, "=")
		if !ok || tok == "" || tenant == "" {
			return nil, fmt.Errorf("bad -auth-tokens entry %q (want token=tenant)", pair)
		}
		auth[tok] = append(auth[tok], tenant)
	}
	return auth, nil
}
