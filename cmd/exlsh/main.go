// Command exlsh is an interactive EXL console, standing in for the IDE
// tools of the paper's Section 6 with which statisticians write and
// validate programs. Cube declarations and statements are validated and
// registered as they are typed; derived cubes are recalculated immediately
// through the engine's determination and dispatch machinery.
//
//	$ exlsh
//	exl> cube A(t: year) measure v
//	exl> \loadcsv A data/a.csv
//	exl> B := cumsum(A)
//	B: 6 tuples
//	exl> \show B
//	exl> \sql
//	exl> \quit
//
// Commands: \load, \show, \cubes, \programs, \run, \tgds, \sql, \r,
// \matlab, \etl, \help, \quit.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"exlengine/internal/engine"
	"exlengine/internal/exl"
	"exlengine/internal/model"
	"exlengine/internal/ops"
)

func main() {
	sh := newShell(os.Stdin, os.Stdout)
	sh.run()
}

type shell struct {
	in       *bufio.Scanner
	out      io.Writer
	eng      *engine.Engine
	counter  int
	lastProg string
}

func newShell(in io.Reader, out io.Writer) *shell {
	return &shell{
		in:  bufio.NewScanner(in),
		out: out,
		eng: engine.New(engine.WithParallelDispatch()),
	}
}

func (sh *shell) printf(format string, args ...interface{}) {
	fmt.Fprintf(sh.out, format, args...)
}

func (sh *shell) run() {
	sh.printf("exlengine interactive console — \\help for commands\n")
	for {
		sh.printf("exl> ")
		if !sh.in.Scan() {
			sh.printf("\n")
			return
		}
		line := strings.TrimSpace(sh.in.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "\\"):
			if sh.command(line) {
				return
			}
		default:
			sh.statement(line)
		}
	}
}

// statement handles a cube declaration or an assignment.
func (sh *shell) statement(line string) {
	prog, err := exl.Parse(line)
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	sh.counter++
	name := fmt.Sprintf("repl_%03d", sh.counter)
	if err := sh.eng.RegisterProgram(name, line); err != nil {
		sh.counter--
		sh.printf("error: %v\n", err)
		return
	}
	sh.lastProg = name
	for _, d := range prog.Decls {
		sh.printf("declared %s\n", d.Name)
	}
	// Recalculate the newly derived cubes right away.
	for _, s := range prog.Stmts {
		if _, err := sh.eng.Recalculate(s.Lhs); err != nil {
			sh.printf("error computing %s: %v\n", s.Lhs, err)
			continue
		}
		if c, ok := sh.eng.Cube(s.Lhs); ok {
			sh.printf("%s: %d tuples\n", s.Lhs, c.Len())
		}
	}
}

// command handles a backslash command; it reports whether to exit.
func (sh *shell) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q", "\\exit":
		return true
	case "\\help":
		sh.printf(`statements:
  cube NAME(dim: type, ...) [measure NAME]   declare an elementary cube
  NAME := expression                         derive (and compute) a cube
commands:
  \load CUBE FILE.csv     load a cube version from CSV
  \show CUBE [N]          print up to N tuples (default 10)
  \cubes                  list declared cubes
  \programs               list registered programs
  \run [target]           recalculate everything (chase|sql|etl|frame|auto)
  \tgds | \sql | \r | \matlab | \etl [PROG]  show the artifact of a program
  \quit
`)
	case "\\load":
		if len(fields) != 3 {
			sh.printf("usage: \\load CUBE FILE.csv\n")
			return false
		}
		f, err := os.Open(fields[2])
		if err != nil {
			sh.printf("error: %v\n", err)
			return false
		}
		defer f.Close()
		if err := sh.eng.LoadCSV(fields[1], f, time.Now()); err != nil {
			sh.printf("error: %v\n", err)
			return false
		}
		c, _ := sh.eng.Cube(fields[1])
		sh.printf("%s: %d tuples loaded\n", fields[1], c.Len())
	case "\\show":
		if len(fields) < 2 {
			sh.printf("usage: \\show CUBE [N]\n")
			return false
		}
		c, ok := sh.eng.Cube(fields[1])
		if !ok {
			sh.printf("error: cube %s has no data\n", fields[1])
			return false
		}
		n := 10
		if len(fields) > 2 {
			fmt.Sscanf(fields[2], "%d", &n)
		}
		sh.showCube(c, n)
	case "\\cubes":
		for _, name := range sh.eng.CubeNames() {
			sch, _ := sh.eng.Schema(name)
			marker := " "
			if c, ok := sh.eng.Cube(name); ok {
				marker = fmt.Sprintf("%d tuples", c.Len())
			}
			sh.printf("  %-30s %s\n", sch, marker)
		}
	case "\\programs":
		for _, p := range sh.eng.Programs() {
			sh.printf("  %s\n", p)
		}
	case "\\run":
		target := "auto"
		if len(fields) > 1 {
			target = fields[1]
		}
		var rep *engine.Report
		var err error
		if target == "auto" {
			rep, err = sh.eng.RunAll()
		} else {
			rep, err = sh.eng.RunAllOn(ops.Target(target))
		}
		if err != nil {
			sh.printf("error: %v\n", err)
			return false
		}
		for _, s := range rep.Subgraphs {
			sh.printf("  %-6s %v\n", s.Target, s.Cubes)
		}
		sh.printf("recalculated %d cubes in %v\n", len(rep.Plan), rep.Elapsed.Round(time.Millisecond))
	case "\\tgds", "\\sql", "\\r", "\\matlab", "\\etl":
		prog := sh.lastProg
		if len(fields) > 1 {
			prog = fields[1]
		}
		if prog == "" {
			sh.printf("error: no program yet\n")
			return false
		}
		kind := strings.TrimPrefix(fields[0], "\\")
		out, err := sh.eng.Translate(prog, kind)
		if err != nil {
			sh.printf("error: %v\n", err)
			return false
		}
		sh.printf("%s\n", out)
	default:
		sh.printf("unknown command %s (try \\help)\n", fields[0])
	}
	return false
}

func (sh *shell) showCube(c *model.Cube, n int) {
	sch := c.Schema()
	header := append(append([]string(nil), sch.DimNames()...), sch.Measure)
	sh.printf("%s\n", strings.Join(header, "\t"))
	for i, tu := range c.Tuples() {
		if i >= n {
			sh.printf("... (%d more)\n", c.Len()-n)
			return
		}
		parts := make([]string, 0, len(header))
		for _, d := range tu.Dims {
			parts = append(parts, d.String())
		}
		parts = append(parts, fmt.Sprintf("%g", tu.Measure))
		sh.printf("%s\n", strings.Join(parts, "\t"))
	}
}
