// Command exlsh is an interactive EXL console, standing in for the IDE
// tools of the paper's Section 6 with which statisticians write and
// validate programs. Cube declarations and statements are validated and
// registered as they are typed; derived cubes are recalculated immediately
// through the engine's determination and dispatch machinery.
//
//	$ exlsh
//	exl> cube A(t: year) measure v
//	exl> \loadcsv A data/a.csv
//	exl> B := cumsum(A)
//	B: 6 tuples
//	exl> \show B
//	exl> \sql
//	exl> \quit
//
// Commands: \load, \show, \cubes, \programs, \run, \trace, \metrics,
// \tgds, \sql, \r, \matlab, \etl, \help, \quit.
//
// With -store, the session's cubes live in a crash-safe durable store
// (write-ahead log + segment snapshots) in the given directory and
// survive across sessions.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"exlengine/internal/cli"
	"exlengine/internal/engine"
	"exlengine/internal/exl"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

func main() {
	shared := &cli.Flags{}
	shared.RegisterStore(flag.CommandLine)
	shared.RegisterGovernor(flag.CommandLine, 0, 0)
	flag.Parse()
	// The shell owns its tracer and metrics (\trace and \metrics show
	// them interactively), so only the store and governor flags apply.
	opts, closeStore, rec, err := shared.EngineOptions(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exlsh:", err)
		os.Exit(1)
	}
	defer closeStore()
	if rec != nil {
		fmt.Printf("store: recovered generation %d from %s in %v\n",
			rec.Generation, shared.StoreDir, rec.Elapsed.Round(time.Millisecond))
	}
	sh := newShell(os.Stdin, os.Stdout, opts...)
	sh.run()
}

type shell struct {
	in       *bufio.Scanner
	out      io.Writer
	eng      *engine.Engine
	counter  int
	lastProg string
	// tracer holds the span tree of the most recent compilation or run
	// (\trace shows it); metrics accumulates over the whole session.
	tracer  *obs.Tracer
	metrics *obs.Registry
}

func newShell(in io.Reader, out io.Writer, extra ...engine.Option) *shell {
	tracer := obs.NewTracer()
	metrics := obs.NewRegistry()
	opts := append([]engine.Option{engine.WithParallelDispatch(),
		engine.WithTracer(tracer), engine.WithMetrics(metrics)}, extra...)
	return &shell{
		in:      bufio.NewScanner(in),
		out:     out,
		eng:     engine.New(opts...),
		tracer:  tracer,
		metrics: metrics,
	}
}

func (sh *shell) printf(format string, args ...interface{}) {
	fmt.Fprintf(sh.out, format, args...)
}

func (sh *shell) run() {
	sh.printf("exlengine interactive console — \\help for commands\n")
	for {
		sh.printf("exl> ")
		if !sh.in.Scan() {
			sh.printf("\n")
			return
		}
		line := strings.TrimSpace(sh.in.Text())
		switch {
		case line == "":
		case strings.HasPrefix(line, "\\"):
			if sh.command(line) {
				return
			}
		default:
			sh.statement(line)
		}
	}
}

// statement handles a cube declaration or an assignment.
func (sh *shell) statement(line string) {
	prog, err := exl.Parse(line)
	if err != nil {
		sh.printf("error: %v\n", err)
		return
	}
	sh.tracer.Reset() // \trace shows this statement's compile + run
	sh.counter++
	name := fmt.Sprintf("repl_%03d", sh.counter)
	if err := sh.eng.RegisterProgram(name, line); err != nil {
		sh.counter--
		sh.printf("error: %v\n", err)
		return
	}
	sh.lastProg = name
	for _, d := range prog.Decls {
		sh.printf("declared %s\n", d.Name)
	}
	// Recalculate the newly derived cubes right away.
	for _, s := range prog.Stmts {
		if _, err := sh.eng.Run(context.Background(), engine.RunChanged(s.Lhs)); err != nil {
			sh.printf("error computing %s: %v\n", s.Lhs, err)
			continue
		}
		if c, ok := sh.eng.Cube(s.Lhs); ok {
			sh.printf("%s: %d tuples\n", s.Lhs, c.Len())
		}
	}
}

// command handles a backslash command; it reports whether to exit.
func (sh *shell) command(line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q", "\\exit":
		return true
	case "\\help":
		sh.printf(`statements:
  cube NAME(dim: type, ...) [measure NAME]   declare an elementary cube
  NAME := expression                         derive (and compute) a cube
commands:
  \load CUBE FILE.csv     load a cube version from CSV
  \show CUBE [N]          print up to N tuples (default 10)
  \cubes                  list declared cubes
  \programs               list registered programs
  \run [target]           recalculate everything (chase|sql|etl|frame|auto)
  \trace [json]           show the span tree of the last statement or run
  \metrics                show the session's accumulated metrics
  \tgds | \sql | \r | \matlab | \etl [PROG]  show the artifact of a program
  \quit
`)
	case "\\load":
		if len(fields) != 3 {
			sh.printf("usage: \\load CUBE FILE.csv\n")
			return false
		}
		f, err := os.Open(fields[2])
		if err != nil {
			sh.printf("error: %v\n", err)
			return false
		}
		defer f.Close()
		if err := sh.eng.LoadCSV(fields[1], f, time.Now()); err != nil {
			sh.printf("error: %v\n", err)
			return false
		}
		c, _ := sh.eng.Cube(fields[1])
		sh.printf("%s: %d tuples loaded\n", fields[1], c.Len())
	case "\\show":
		if len(fields) < 2 {
			sh.printf("usage: \\show CUBE [N]\n")
			return false
		}
		c, ok := sh.eng.Cube(fields[1])
		if !ok {
			sh.printf("error: cube %s has no data\n", fields[1])
			return false
		}
		n := 10
		if len(fields) > 2 {
			fmt.Sscanf(fields[2], "%d", &n)
		}
		sh.showCube(c, n)
	case "\\cubes":
		for _, name := range sh.eng.CubeNames() {
			sch, _ := sh.eng.Schema(name)
			marker := " "
			if c, ok := sh.eng.Cube(name); ok {
				marker = fmt.Sprintf("%d tuples", c.Len())
			}
			sh.printf("  %-30s %s\n", sch, marker)
		}
	case "\\programs":
		for _, p := range sh.eng.Programs() {
			sh.printf("  %s\n", p)
		}
	case "\\run":
		target := "auto"
		if len(fields) > 1 {
			target = fields[1]
		}
		var runOpts []engine.RunOption
		if target != "auto" {
			runOpts = append(runOpts, engine.RunOn(ops.Target(target)))
		}
		sh.tracer.Reset() // \trace shows this run
		rep, err := sh.eng.Run(context.Background(), runOpts...)
		if err != nil {
			sh.printf("error: %v\n", err)
			return false
		}
		for _, s := range rep.Subgraphs {
			sh.printf("  %-6s %v\n", s.Target, s.Cubes)
		}
		sh.printf("recalculated %d cubes in %v\n", len(rep.Plan), rep.Elapsed.Round(time.Millisecond))
	case "\\trace":
		if len(sh.tracer.Roots()) == 0 {
			sh.printf("no trace yet (run a statement or \\run first)\n")
			return false
		}
		if len(fields) > 1 && fields[1] == "json" {
			obs.WriteJSONL(sh.out, sh.tracer)
		} else {
			obs.WriteTree(sh.out, sh.tracer)
		}
	case "\\metrics":
		sh.metrics.WriteText(sh.out)
	case "\\tgds", "\\sql", "\\r", "\\matlab", "\\etl":
		prog := sh.lastProg
		if len(fields) > 1 {
			prog = fields[1]
		}
		if prog == "" {
			sh.printf("error: no program yet\n")
			return false
		}
		kind := strings.TrimPrefix(fields[0], "\\")
		out, err := sh.eng.Translate(prog, kind)
		if err != nil {
			sh.printf("error: %v\n", err)
			return false
		}
		sh.printf("%s\n", out)
	default:
		sh.printf("unknown command %s (try \\help)\n", fields[0])
	}
	return false
}

func (sh *shell) showCube(c *model.Cube, n int) {
	sch := c.Schema()
	header := append(append([]string(nil), sch.DimNames()...), sch.Measure)
	sh.printf("%s\n", strings.Join(header, "\t"))
	for i, tu := range c.Tuples() {
		if i >= n {
			sh.printf("... (%d more)\n", c.Len()-n)
			return
		}
		parts := make([]string, 0, len(header))
		for _, d := range tu.Dims {
			parts = append(parts, d.String())
		}
		parts = append(parts, fmt.Sprintf("%g", tu.Measure))
		sh.printf("%s\n", strings.Join(parts, "\t"))
	}
}
