// Command exlbench regenerates every experiment of EXPERIMENTS.md: the
// paper's artifacts (tgds, SQL, R, Matlab, ETL flows; experiments E1-E5)
// and the performance tables the paper's claims imply (E6-E10). Output is
// plain text, one section per experiment.
//
// Usage:
//
//	exlbench [-run all|e1|e2|...|e13|sqlbench|incremental] [-quick] [-workers N]
//	         [-iters N] [-store dir] [-max-concurrent N] [-mem-budget bytes]
//	         [-bench-out file] [-incr-bench-out file]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"exlengine/internal/chase"
	"exlengine/internal/cli"
	"exlengine/internal/engine"
	"exlengine/internal/etl"
	"exlengine/internal/exl"
	"exlengine/internal/exlerr"
	"exlengine/internal/faults"
	"exlengine/internal/frame"
	"exlengine/internal/governor"
	"exlengine/internal/mapping"
	"exlengine/internal/matlabgen"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
	"exlengine/internal/rgen"
	"exlengine/internal/sqlengine"
	"exlengine/internal/sqlgen"
	"exlengine/internal/store/durable"
	"exlengine/internal/workload"
)

var (
	quick    bool
	workers  int
	iters    int
	benchOut string
	incrOut  string
	// shared holds the store (-store, used by e12) and governor
	// (-max-concurrent/-mem-budget, used by e13) flags every EXLEngine
	// tool exposes through internal/cli.
	shared = &cli.Flags{}
)

func main() {
	run := flag.String("run", "all", "experiment to run (e1..e12 or all)")
	flag.BoolVar(&quick, "quick", false, "smaller sweeps for fast runs")
	flag.IntVar(&workers, "workers", 8, "e11: max concurrent run loops (sweep is 1..workers, doubling)")
	flag.IntVar(&iters, "iters", 4, "e11: runs per worker")
	flag.StringVar(&benchOut, "bench-out", "BENCH_sql.json", "sqlbench: output file for the JSON record")
	flag.StringVar(&incrOut, "incr-bench-out", "BENCH_incremental.json", "incremental: output file for the JSON record")
	shared.RegisterStore(flag.CommandLine)
	shared.RegisterGovernor(flag.CommandLine, 4, 256<<20)
	flag.Parse()

	experiments := []struct {
		id   string
		name string
		fn   func()
	}{
		{"e1", "E1: EXL program -> schema mapping (paper Section 2, tgds 1-5)", e1},
		{"e2", "E2: SQL translation (paper Section 5.1)", e2},
		{"e3", "E3: R and Matlab translations (paper Section 5.2)", e3},
		{"e4", "E4: ETL flows (paper Figure 1)", e4},
		{"e5", "E5: end-to-end architecture run (paper Figure 2)", e5},
		{"e6", "E6: chase solution = program output on every target", e6},
		{"e7", "E7: translation (offline) vs calculation time", e7},
		{"e8", "E8: incremental determination vs full recalculation", e8},
		{"e9", "E9: fused vs normalized mappings (ablation)", e9},
		{"e10", "E10: chase scaling", e10},
		{"e11", "E11: concurrent re-runs over a shared store (zero-copy reads + compile cache)", e11},
		{"e12", "E12: durable store — WAL commit throughput, group commit, recovery time", e12},
		{"e13", "E13: overload — admission control, shedding and breakers at 2x capacity", e13},
		{"sqlbench", "E14: SQL executor — vectorized batches vs legacy tree-walker (writes BENCH_sql.json)", e14},
		{"incremental", "E15: delta-driven incremental recomputation — 1% churn vs full recompute (writes BENCH_incremental.json)", e15},
	}
	ran := false
	for _, e := range experiments {
		if *run != "all" && *run != e.id {
			continue
		}
		fmt.Printf("==== %s ====\n", e.name)
		e.fn()
		fmt.Println()
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "exlbench: unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

func compileGDP() *mapping.Mapping {
	m, err := compile(workload.GDPProgram)
	if err != nil {
		panic(err)
	}
	return m
}

func compile(src string) (*mapping.Mapping, error) {
	prog, err := exl.Parse(src)
	if err != nil {
		return nil, err
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		return nil, err
	}
	return mapping.Generate(a)
}

func e1() {
	fmt.Print(compileGDP().String())
}

func e2() {
	script, err := sqlgen.Translate(compileGDP())
	if err != nil {
		panic(err)
	}
	fmt.Print(script.String())
}

func e3() {
	m := compileGDP()
	r, err := rgen.Translate(m)
	if err != nil {
		panic(err)
	}
	ml, err := matlabgen.Translate(m)
	if err != nil {
		panic(err)
	}
	fmt.Println("-- R --")
	fmt.Print(r)
	fmt.Println("-- Matlab --")
	fmt.Print(ml)
}

func e4() {
	job, err := etl.Translate(compileGDP(), "gdp")
	if err != nil {
		panic(err)
	}
	fmt.Print(job.Summary())
}

func e5() {
	tracer := obs.NewTracer()
	metrics := obs.NewRegistry()
	eng := engine.New(engine.WithParallelDispatch(),
		engine.WithTracer(tracer), engine.WithMetrics(metrics))
	if err := eng.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		panic(err)
	}
	days := 2000
	if quick {
		days = 200
	}
	data := workload.GDPSource(workload.GDPConfig{Days: days, Regions: 10})
	t0 := time.Unix(0, 0)
	for _, name := range []string{"PDR", "RGDPPC"} {
		if err := eng.PutCube(data[name], t0); err != nil {
			panic(err)
		}
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("plan: %s\n", strings.Join(rep.Plan, " -> "))
	for _, s := range rep.Subgraphs {
		fmt.Printf("  dispatched to %-6s: %v\n", s.Target, s.Cubes)
	}
	fmt.Printf("elapsed: %v\n", rep.Elapsed.Round(time.Millisecond))

	// Per-phase timings, read off the span tree the run recorded.
	fmt.Println("per-phase timings (from the trace):")
	for _, phase := range []string{"compile", "determine", "dispatch", "persist"} {
		var total time.Duration
		var n int
		for _, root := range tracer.Roots() {
			for _, s := range root.FindAll(phase) {
				total += s.Dur
				n++
			}
		}
		if n > 0 {
			fmt.Printf("  %-10s %10.3f ms\n", phase, float64(total.Microseconds())/1000)
		}
	}
	fmt.Println("metrics:")
	metrics.WriteText(os.Stdout)
}

// timeIt reports the best of three runs.
func timeIt(fn func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	return best
}

func e6() {
	sizes := []int{100, 1000, 10000}
	if quick {
		sizes = []int{100, 1000}
	}
	m := compileGDP()
	fmt.Printf("%-8s %-8s %-10s %-10s\n", "days", "target", "ms", "PCHNG-len")
	for _, days := range sizes {
		data := workload.GDPSource(workload.GDPConfig{Days: days, Regions: 20})
		ref, err := chase.New(m).Solve(chase.Instance(data))
		if err != nil {
			panic(err)
		}
		for _, target := range ops.AllTargets {
			var result map[string]*model.Cube
			d := timeIt(func() {
				var err error
				result, err = runOn(target, m, data)
				if err != nil {
					panic(err)
				}
			})
			for _, rel := range m.Derived {
				if !result[rel].Equal(ref[rel], 1e-6) {
					panic(fmt.Sprintf("%s differs on %s", rel, target))
				}
			}
			fmt.Printf("%-8d %-8s %-10.2f %-10d\n", days, target, float64(d.Microseconds())/1000, result["PCHNG"].Len())
		}
	}
	fmt.Println("all targets produced identical derived cubes (checked against the chase)")
}

func runOn(target ops.Target, m *mapping.Mapping, data workload.Data) (map[string]*model.Cube, error) {
	switch target {
	case ops.TargetChase:
		sol, err := chase.New(m).Solve(chase.Instance(data))
		if err != nil {
			return nil, err
		}
		return sol, nil
	case ops.TargetSQL:
		db := sqlengine.NewDB()
		for _, name := range m.Elementary {
			if err := db.LoadCube(data[name]); err != nil {
				return nil, err
			}
		}
		script, err := sqlgen.Translate(m)
		if err != nil {
			return nil, err
		}
		if err := sqlgen.Execute(script, db); err != nil {
			return nil, err
		}
		out := make(map[string]*model.Cube)
		for _, rel := range m.Derived {
			c, err := db.ExtractCube(m.Schemas[rel])
			if err != nil {
				return nil, err
			}
			out[rel] = c
		}
		return out, nil
	case ops.TargetETL:
		job, err := etl.Translate(m, "bench")
		if err != nil {
			return nil, err
		}
		return etl.Run(job, m, data)
	case ops.TargetFrame:
		script, err := frame.Translate(m)
		if err != nil {
			return nil, err
		}
		return frame.Execute(script, m, data)
	}
	return nil, fmt.Errorf("unknown target %s", target)
}

func e7() {
	days := 10000
	if quick {
		days = 1000
	}
	data := workload.GDPSource(workload.GDPConfig{Days: days, Regions: 20})

	translate := timeIt(func() {
		m := compileGDP()
		if _, err := sqlgen.Translate(m); err != nil {
			panic(err)
		}
		if _, err := rgen.Translate(m); err != nil {
			panic(err)
		}
		if _, err := matlabgen.Translate(m); err != nil {
			panic(err)
		}
		if _, err := etl.Translate(m, "bench"); err != nil {
			panic(err)
		}
	})
	m := compileGDP()
	execute := timeIt(func() {
		if _, err := runOn(ops.TargetSQL, m, data); err != nil {
			panic(err)
		}
	})
	fmt.Printf("translation (all 4 targets): %10.3f ms\n", float64(translate.Microseconds())/1000)
	fmt.Printf("execution   (SQL, %6d d): %10.3f ms\n", days, float64(execute.Microseconds())/1000)
	fmt.Printf("translation / execution    : %10.4f\n", float64(translate)/float64(execute))
	fmt.Println("translation is performed offline; its cost is negligible and independent of data size (Section 6)")
}

// syntheticCatalog builds n independent three-statement programs over
// monthly series.
func syntheticCatalog(n, months int) (map[string]string, workload.Data) {
	programs := make(map[string]string, n)
	data := workload.Data{}
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`
cube S%02d(t: month) measure v
A%02d := S%02d * 2
B%02d := movavg(A%02d, 3)
C%02d := (B%02d - shift(B%02d, 1)) * 100 / shift(B%02d, 1)
`, i, i, i, i, i, i, i, i, i)
		programs[fmt.Sprintf("p%02d", i)] = src
		data[fmt.Sprintf("S%02d", i)] = workload.Series(workload.SeriesConfig{
			Name: fmt.Sprintf("S%02d", i), Freq: model.Monthly, N: months,
			Seed: int64(i + 1), Level: 100, Trend: 0.5, SeasonAmp: 5, NoiseAmp: 1,
		})
	}
	return programs, data
}

func e8() {
	nProg, months := 32, 240
	if quick {
		nProg, months = 8, 120
	}
	programs, data := syntheticCatalog(nProg, months)

	build := func() *engine.Engine {
		eng := engine.New()
		names := make([]string, 0, len(programs))
		for n := range programs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if err := eng.RegisterProgram(n, programs[n]); err != nil {
				panic(err)
			}
		}
		t0 := time.Unix(0, 0)
		for _, c := range data {
			if err := eng.PutCube(c, t0); err != nil {
				panic(err)
			}
		}
		return eng
	}

	eng := build()
	full := timeIt(func() {
		if _, err := eng.Run(context.Background(), engine.RunAt(time.Unix(1, 0))); err != nil {
			panic(err)
		}
	})
	var plan []string
	incr := timeIt(func() {
		rep, err := eng.Run(context.Background(), engine.RunChanged("S00"), engine.RunAt(time.Unix(2, 0)))
		if err != nil {
			panic(err)
		}
		plan = rep.Plan
	})
	fmt.Printf("catalog: %d programs, %d derived cubes, %d-month series\n", nProg, 3*nProg, months)
	fmt.Printf("full recalculation:        %10.3f ms (%d cubes)\n", float64(full.Microseconds())/1000, 3*nProg)
	fmt.Printf("incremental (S00 changed): %10.3f ms (%d cubes: %v)\n", float64(incr.Microseconds())/1000, len(plan), plan)
	fmt.Printf("speedup: %.1fx\n", float64(full)/float64(incr))
}

func e9() {
	n := 100000
	if quick {
		n = 10000
	}
	const chainProgram = `
cube A(t: day) measure v
B := ((((A * 2) + A) / 3 - A) * 100) / (A + 1)
`
	data := workload.Data{"A": workload.Series(workload.SeriesConfig{
		Name: "A", Freq: model.Daily, N: n, Level: 50, Trend: 0.01, NoiseAmp: 1, Seed: 9,
	})}

	prog, err := exl.Parse(chainProgram)
	if err != nil {
		panic(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		panic(err)
	}
	fused, err := mapping.Generate(a)
	if err != nil {
		panic(err)
	}
	norm, err := mapping.GenerateNormalized(a)
	if err != nil {
		panic(err)
	}

	dFused := timeIt(func() {
		if _, err := chase.New(fused).Solve(chase.Instance(data)); err != nil {
			panic(err)
		}
	})
	dNorm := timeIt(func() {
		if _, err := chase.New(norm).Solve(chase.Instance(data)); err != nil {
			panic(err)
		}
	})
	// Third variant: auxiliaries as relational views on the SQL target
	// (Section 6), compared against materialized tables.
	runSQL := func(m *mapping.Mapping, opts sqlgen.Options) time.Duration {
		return timeIt(func() {
			db := sqlengine.NewDB()
			for _, name := range m.Elementary {
				if err := db.LoadCube(data[name]); err != nil {
					panic(err)
				}
			}
			script, err := sqlgen.TranslateWith(m, opts)
			if err != nil {
				panic(err)
			}
			if err := sqlgen.Execute(script, db); err != nil {
				panic(err)
			}
			if _, err := db.ExtractCube(m.Schemas["B"]); err != nil {
				panic(err)
			}
		})
	}
	dSQLTables := runSQL(norm, sqlgen.Options{})
	dSQLViews := runSQL(norm, sqlgen.Options{AuxAsViews: true})
	fmt.Printf("%-22s %8s %12s\n", "mapping", "tgds", "ms")
	fmt.Printf("%-22s %8d %12.2f  (chase)\n", "fused", len(fused.Tgds), float64(dFused.Microseconds())/1000)
	fmt.Printf("%-22s %8d %12.2f  (chase)\n", "normalized", len(norm.Tgds), float64(dNorm.Microseconds())/1000)
	fmt.Printf("%-22s %8d %12.2f  (sql)\n", "normalized, tables", len(norm.Tgds), float64(dSQLTables.Microseconds())/1000)
	fmt.Printf("%-22s %8d %12.2f  (sql)\n", "normalized, views", len(norm.Tgds), float64(dSQLViews.Microseconds())/1000)
	fmt.Printf("fusion speedup (chase): %.2fx; views vs tables (sql): %.2fx\n",
		float64(dNorm)/float64(dFused), float64(dSQLTables)/float64(dSQLViews))
}

// e11 drives N goroutines re-running the GDP program against one shared
// engine (the production shape: many consumers, one store) and reports
// throughput per worker count plus the compile-cache counters. With
// zero-copy reads, runs/s should grow with workers; before, every
// snapshot deep-cloned the store and the workers serialized on clone
// traffic.
func e11() {
	days := 1000
	if quick {
		days = 200
	}
	data := workload.GDPSource(workload.GDPConfig{Days: days, Regions: 10})
	metrics := obs.NewRegistry()
	engine.ResetCompileCache()

	fmt.Printf("%-9s %-7s %-12s %-12s\n", "workers", "runs", "elapsed ms", "runs/s")
	for w := 1; w <= workers; w *= 2 {
		eng := engine.New(engine.WithParallelDispatch(), engine.WithMetrics(metrics))
		if err := eng.RegisterProgram("gdp", workload.GDPProgram); err != nil {
			panic(err)
		}
		for _, name := range []string{"PDR", "RGDPPC"} {
			if err := eng.PutCube(data[name], time.Unix(0, 0)); err != nil {
				panic(err)
			}
		}
		asOf := time.Unix(1, 0)
		start := time.Now()
		runs, err := workload.RunConcurrently(context.Background(),
			workload.ConcurrentConfig{Workers: w, Iters: iters},
			func(ctx context.Context) error {
				if _, err := eng.Run(ctx, engine.RunAt(asOf)); err != nil {
					return err
				}
				for _, name := range eng.CubeNames() {
					eng.Cube(name)
				}
				return nil
			})
		if err != nil {
			panic(err)
		}
		d := time.Since(start)
		fmt.Printf("%-9d %-7d %-12.2f %-12.1f\n", w, runs,
			float64(d.Microseconds())/1000, float64(runs)/d.Seconds())
	}
	fmt.Printf("compile cache: %d misses, %d hits across %d engines (one parse/analyze/generate total)\n",
		metrics.Counter(obs.MetricCompileCacheMisses).Value(),
		metrics.Counter(obs.MetricCompileCacheHits).Value(),
		countEngines(workers))
}

// countEngines reports how many engines the e11 sweep constructs.
func countEngines(maxWorkers int) int {
	n := 0
	for w := 1; w <= maxWorkers; w *= 2 {
		n++
	}
	return n
}

// e12 measures the durable store: WAL commit throughput with per-commit
// fsync vs group commit under concurrent writers, and recovery time on
// reopen — once replaying the whole WAL record by record, once from the
// snapshot that the first reopen itself wrote.
func e12() {
	commits := 512
	if quick {
		commits = 64
	}
	dir := shared.StoreDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "exlbench-e12-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
	}

	series := func(name string) *model.Cube {
		return workload.Series(workload.SeriesConfig{
			Name: name, Freq: model.Monthly, N: 60,
			Seed: 1, Level: 100, Trend: 0.5, SeasonAmp: 5, NoiseAmp: 1,
		})
	}

	fmt.Printf("%-28s %-9s %-12s %-12s %-8s\n", "configuration", "commits", "ms", "commits/s", "fsyncs")
	for _, cfg := range []struct {
		name    string
		sub     string
		window  time.Duration
		writers int
	}{
		{"fsync per commit", "solo", 0, 1},
		{fmt.Sprintf("group commit 2ms, %d writers", workers), "group", 2 * time.Millisecond, workers},
	} {
		st, err := durable.Open(filepath.Join(dir, cfg.sub), durable.WithGroupCommit(cfg.window))
		if err != nil {
			panic(err)
		}
		cubes := make([]*model.Cube, cfg.writers)
		for i := range cubes {
			cubes[i] = series(fmt.Sprintf("S%02d", i))
			if err := st.Declare(cubes[i].Schema()); err != nil {
				panic(err)
			}
		}
		per := commits / cfg.writers
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < cfg.writers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for k := 0; k < per; k++ {
					if err := st.Put(cubes[i], time.Unix(int64(k), 0)); err != nil {
						panic(err)
					}
				}
			}(i)
		}
		wg.Wait()
		d := time.Since(start)
		_, fsyncs := st.WALStats()
		total := per * cfg.writers
		fmt.Printf("%-28s %-9d %-12.2f %-12.1f %-8d\n", cfg.name, total,
			float64(d.Microseconds())/1000, float64(total)/d.Seconds(), fsyncs)
		if err := st.Close(); err != nil {
			panic(err)
		}
	}

	// Recovery: reopen the solo store twice. The first reopen replays the
	// whole WAL; it also writes a fresh snapshot, so the second reopen
	// recovers from the snapshot alone.
	for _, pass := range []string{"replaying WAL", "from snapshot"} {
		st, err := durable.Open(filepath.Join(dir, "solo"))
		if err != nil {
			panic(err)
		}
		rec := st.Recovery()
		fmt.Printf("recovery %-14s: generation %d, %d record(s) replayed, %.2f ms\n",
			pass, rec.Generation, rec.ReplayedRecords, float64(rec.Elapsed.Microseconds())/1000)
		if err := st.Close(); err != nil {
			panic(err)
		}
	}
}

// e13 is the overload benchmark: a worker fleet at twice the admitted
// capacity, with scripted transient backend faults, against a governed
// engine. It reports the governor's ledger — completed vs shed runs,
// memory peak vs budget, breaker activity — and finishes with a graceful
// shutdown drain, timing how long the engine takes to go quiet.
func e13() {
	days := 500
	if quick {
		days = 100
	}
	data := workload.GDPSource(workload.GDPConfig{Days: days, Regions: 5})

	var fs []faults.Fault
	for i := 0; i < 2*shared.MaxConcurrent; i++ {
		fs = append(fs,
			faults.Fault{Fragment: faults.AnyFragment, Attempt: 1, Target: ops.TargetSQL, Kind: faults.Error, Class: exlerr.Transient},
			faults.Fault{Fragment: faults.AnyFragment, Attempt: 1, Target: ops.TargetETL, Kind: faults.Error, Class: exlerr.Transient},
		)
	}
	inj := faults.NewInjector(fs...)

	mx := obs.NewRegistry()
	gov := governor.New(governor.Config{
		MaxConcurrent: shared.MaxConcurrent,
		MaxQueue:      shared.MaxConcurrent,
		MemoryBudget:  shared.MemBudget,
		Breaker:       governor.BreakerConfig{FailureThreshold: 4, Cooldown: 50 * time.Millisecond},
	})
	eng := engine.New(engine.WithGovernor(gov), engine.WithParallelDispatch(),
		engine.WithMetrics(mx), engine.WithDispatchMiddleware(inj.Middleware()),
		engine.WithSleeper(func(ctx context.Context, _ time.Duration) error { return ctx.Err() }))
	if err := eng.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		panic(err)
	}
	for _, name := range []string{"PDR", "RGDPPC"} {
		if err := eng.PutCube(data[name], time.Unix(0, 0)); err != nil {
			panic(err)
		}
	}

	var ok, shed, failed int64
	var mu sync.Mutex
	asOf := time.Unix(1, 0)
	start := time.Now()
	_, err := workload.RunConcurrently(context.Background(),
		workload.ConcurrentConfig{Workers: 2 * shared.MaxConcurrent, Iters: iters},
		func(ctx context.Context) error {
			_, err := eng.Run(ctx, engine.RunAt(asOf))
			mu.Lock()
			switch {
			case err == nil:
				ok++
			case exlerr.IsOverload(err):
				shed++
			default:
				failed++
			}
			mu.Unlock()
			return nil
		})
	if err != nil {
		panic(err)
	}
	d := time.Since(start)

	total := ok + shed + failed
	fmt.Printf("load: %d workers x %d runs against %d slot(s), queue %d, budget %d MiB\n",
		2*shared.MaxConcurrent, iters, shared.MaxConcurrent, shared.MaxConcurrent, shared.MemBudget>>20)
	fmt.Printf("%-26s %8d\n", "runs completed", ok)
	fmt.Printf("%-26s %8d\n", "runs shed (typed overload)", shed)
	fmt.Printf("%-26s %8d\n", "runs failed", failed)
	fmt.Printf("%-26s %8.1f\n", "completed runs/s", float64(ok)/d.Seconds())
	fmt.Printf("%-26s %8d of %d\n", "accounted", total, 2*shared.MaxConcurrent*iters)
	fmt.Printf("%-26s %8.2f MiB (budget %d MiB)\n", "memory peak",
		float64(gov.MemPeak())/(1<<20), shared.MemBudget>>20)
	var trips int64
	for _, tgt := range ops.AllTargets {
		trips += mx.Counter(obs.Label(obs.MetricBreakerTrips, "target", string(tgt))).Value()
	}
	fmt.Printf("%-26s %8d\n", "breaker trips", trips)
	fmt.Printf("%-26s %8d\n", "faults fired", len(inj.Fired()))

	drainStart := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Shutdown(ctx); err != nil {
		panic(err)
	}
	fmt.Printf("%-26s %8.2f ms (in-flight drained, store closed)\n",
		"graceful shutdown", float64(time.Since(drainStart).Microseconds())/1000)
}

// e14 (sqlbench) compares the vectorized SQL executor against the
// legacy tuple-at-a-time tree-walker on the e5/e11-class workload: the
// full GDP pipeline (daily panels joined with quarterly deflators,
// aggregated ~90:1 to quarters) translated to SQL and executed on the
// embedded engine. Translation is offline (e7) and is hoisted out of
// the timed region; loading elementary cubes and extracting derived
// ones is identical under both executors and is timed separately so
// the executor ratio is not diluted by shared materialization. The
// derived cubes from both executors are compared for equality before
// any number is reported. Results go to stdout and -bench-out
// (BENCH_sql.json).
func e14() {
	sizes := []int{2000, 10000}
	if quick {
		sizes = []int{200, 1000}
	}
	m := compileGDP()
	script, err := sqlgen.Translate(m)
	if err != nil {
		panic(err)
	}

	type entry struct {
		Workload   string  `json:"workload"`
		Days       int     `json:"days"`
		Rows       int     `json:"rows"`
		LegacyMS   float64 `json:"legacy_ms"`
		VectorMS   float64 `json:"vector_ms"`
		Speedup    float64 `json:"speedup"`
		PipelineMS float64 `json:"pipeline_ms"`
	}
	var entries []entry

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	fmt.Printf("%-10s %-10s %-12s %-12s %-8s\n", "PDR rows", "days", "legacy ms", "vector ms", "speedup")
	for _, days := range sizes {
		const regions = 20
		data := workload.GDPSource(workload.GDPConfig{Days: days, Regions: regions})

		// run executes the translated script on a fresh DB in the given
		// mode three times and reports the best execution-only duration,
		// the best whole-pipeline duration (load + execute + extract),
		// and the derived cubes of the last run.
		run := func(mode sqlengine.ExecMode) (exec, pipeline time.Duration, out map[string]*model.Cube) {
			for i := 0; i < 3; i++ {
				pipeStart := time.Now()
				db := sqlengine.NewDB()
				db.SetExecMode(mode)
				for _, name := range m.Elementary {
					if err := db.LoadCube(data[name]); err != nil {
						panic(err)
					}
				}
				execStart := time.Now()
				if err := sqlgen.Execute(script, db); err != nil {
					panic(err)
				}
				d := time.Since(execStart)
				out = make(map[string]*model.Cube, len(m.Derived))
				for _, rel := range m.Derived {
					c, err := db.ExtractCube(m.Schemas[rel])
					if err != nil {
						panic(err)
					}
					out[rel] = c
				}
				p := time.Since(pipeStart)
				if exec == 0 || d < exec {
					exec = d
				}
				if pipeline == 0 || p < pipeline {
					pipeline = p
				}
			}
			return exec, pipeline, out
		}

		legacy, _, refOut := run(sqlengine.ExecLegacy)
		vector, pipe, vecOut := run(sqlengine.ExecVector)
		for _, rel := range m.Derived {
			if !vecOut[rel].Equal(refOut[rel], 1e-6) {
				panic(fmt.Sprintf("sqlbench: %s differs between executors at days=%d", rel, days))
			}
		}
		speedup := float64(legacy) / float64(vector)
		fmt.Printf("%-10d %-10d %-12.2f %-12.2f %-8.2f\n",
			days*regions, days, ms(legacy), ms(vector), speedup)
		entries = append(entries, entry{
			Workload: "gdp-pipeline", Days: days, Rows: days * regions,
			LegacyMS: ms(legacy), VectorMS: ms(vector), Speedup: speedup,
			PipelineMS: ms(pipe),
		})
	}
	fmt.Println("derived cubes identical under both executors (tolerance 1e-6)")

	record := struct {
		GeneratedBy string  `json:"generated_by"`
		Quick       bool    `json:"quick"`
		Entries     []entry `json:"entries"`
	}{GeneratedBy: "exlbench -run sqlbench", Quick: quick, Entries: entries}
	buf, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(benchOut, buf, 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s\n", benchOut)
}

// e15 (incremental) measures delta-driven recomputation against a full
// recompute on a tuple-level pipeline (no black-box operators, so every
// fragment is maintainable): a quarterly panel feeds a four-statement
// chain, 1% of the panel's points are perturbed per step, and both
// engines re-run. The derived cubes must match exactly — byte-identical,
// zero tolerance — before any number is reported; incremental times
// include everything a caller sees (staleness walk, store deltas,
// dispatch, persist). Results go to stdout and -incr-bench-out
// (BENCH_incremental.json).
func e15() {
	sizes := []int{20000, 200000}
	if quick {
		sizes = []int{5000, 20000}
	}
	const prog = `
cube S(q: quarter, r: string) measure v

A := S * 2
B := A + S
C := B - A
D := C * 0.5
`
	derived := []string{"A", "B", "C", "D"}
	const regions = 100
	const steps = 5

	// churn perturbs ~1% of the cube's points, at step-dependent
	// positions so successive deltas do not hit identical keys.
	churn := func(c *model.Cube, step int) *model.Cube {
		out := c.Clone()
		for i, tu := range c.Tuples() {
			if (i+step*37)%100 == 7 {
				if err := out.Replace(tu.Dims, tu.Measure*1.01+0.01); err != nil {
					panic(err)
				}
			}
		}
		return out
	}
	newEng := func(seed *model.Cube, t0 time.Time) *engine.Engine {
		e := engine.New()
		if err := e.RegisterProgram("incrbench", prog); err != nil {
			panic(err)
		}
		if err := e.PutCube(seed, t0); err != nil {
			panic(err)
		}
		return e
	}

	type entry struct {
		Workload string  `json:"workload"`
		Rows     int     `json:"rows"`
		Steps    int     `json:"steps"`
		ChurnPct float64 `json:"churn_pct"`
		FullMS   float64 `json:"full_ms"`
		IncrMS   float64 `json:"incr_ms"`
		Speedup  float64 `json:"speedup"`
	}
	var entries []entry
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

	ctx := context.Background()
	fmt.Printf("%-10s %-8s %-12s %-12s %-8s\n", "rows", "steps", "full ms", "incr ms", "speedup")
	for _, rows := range sizes {
		quarters := rows / regions
		sch := model.NewSchema("S",
			[]model.Dim{{Name: "q", Type: model.TQuarter}, {Name: "r", Type: model.TString}}, "v")
		seed := model.NewCube(sch)
		start := model.NewQuarterly(1990, 1)
		for q := 0; q < quarters; q++ {
			for r := 0; r < regions; r++ {
				dims := []model.Value{model.Per(start.Shift(int64(q))), model.Str(fmt.Sprintf("r%02d", r))}
				if err := seed.Put(dims, float64(q*regions+r)*0.25+1); err != nil {
					panic(err)
				}
			}
		}

		t0 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
		full := newEng(seed, t0)
		incr := newEng(seed.Clone(), t0)
		// Both engines run the chase: it is the target whose fragments are
		// maintainable tuple-by-tuple, so the comparison isolates
		// semi-naive maintenance from full recomputation on the same
		// executor.
		if _, err := full.Run(ctx, engine.RunOn(ops.TargetChase), engine.RunAt(t0)); err != nil {
			panic(err)
		}
		if _, err := incr.Run(ctx, engine.RunOn(ops.TargetChase), engine.RunAt(t0), engine.WithIncremental()); err != nil {
			panic(err)
		}

		cur := seed
		var fullTotal, incrTotal time.Duration
		for step := 1; step <= steps; step++ {
			cur = churn(cur, step)
			at := t0.Add(time.Duration(step) * 24 * time.Hour)
			if err := full.PutCube(cur, at); err != nil {
				panic(err)
			}
			if err := incr.PutCube(cur.Clone(), at); err != nil {
				panic(err)
			}
			fullStart := time.Now()
			if _, err := full.Run(ctx, engine.RunOn(ops.TargetChase), engine.RunAt(at)); err != nil {
				panic(err)
			}
			fullTotal += time.Since(fullStart)
			incrStart := time.Now()
			rep, err := incr.Run(ctx, engine.RunOn(ops.TargetChase), engine.RunAt(at), engine.WithIncremental())
			if err != nil {
				panic(err)
			}
			incrTotal += time.Since(incrStart)
			if !rep.Incremental {
				panic("incremental: run did not take the incremental path")
			}
			for _, rel := range derived {
				w, _ := full.Cube(rel)
				g, _ := incr.Cube(rel)
				if d := model.DiffCubes(rel, w, g); !d.Empty() {
					panic(fmt.Sprintf("incremental: %s diverges from full at rows=%d step=%d (%d diffs)",
						rel, rows, step, d.Size()))
				}
			}
		}
		speedup := float64(fullTotal) / float64(incrTotal)
		fmt.Printf("%-10d %-8d %-12.2f %-12.2f %-8.2f\n", rows, steps, ms(fullTotal), ms(incrTotal), speedup)
		entries = append(entries, entry{
			Workload: "quarterly-panel-chain", Rows: rows, Steps: steps, ChurnPct: 1,
			FullMS: ms(fullTotal), IncrMS: ms(incrTotal), Speedup: speedup,
		})
	}
	fmt.Println("derived cubes byte-identical between full and incremental (zero tolerance)")

	record := struct {
		GeneratedBy string  `json:"generated_by"`
		Quick       bool    `json:"quick"`
		Entries     []entry `json:"entries"`
	}{GeneratedBy: "exlbench -run incremental", Quick: quick, Entries: entries}
	buf, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		panic(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(incrOut, buf, 0o644); err != nil {
		panic(err)
	}
	fmt.Printf("wrote %s\n", incrOut)
}

func e10() {
	sizes := []int{1000, 10000, 100000}
	if quick {
		sizes = []int{1000, 10000}
	}
	m := compileGDP()
	fmt.Printf("%-10s %-12s %-12s %-14s\n", "PDR rows", "chase ms", "bindings", "tuples out")
	for _, rows := range sizes {
		days := rows / 20
		data := workload.GDPSource(workload.GDPConfig{Days: days, Regions: 20})
		var stats *chase.Stats
		d := timeIt(func() {
			var err error
			_, stats, err = chase.New(m).SolveWithStats(chase.Instance(data))
			if err != nil {
				panic(err)
			}
		})
		fmt.Printf("%-10d %-12.2f %-12d %-14d\n", days*20, float64(d.Microseconds())/1000, stats.Bindings, stats.TuplesGenerated)
	}
}
