// Command exlc is the EXL compiler: it parses an EXL program, generates
// its schema mapping and emits a chosen artifact — the tgds in logic
// notation, an executable SQL script, R or Matlab source, or the ETL job
// metadata as JSON.
//
// Usage:
//
//	exlc -emit tgds|sql|r|matlab|etl|summary [-normalized] [-trace] program.exl
//
// With no file argument the program is read from standard input. -trace
// prints the compilation's span tree (parse → analyze → generate) to
// stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"exlengine"
	"exlengine/internal/etl"
	"exlengine/internal/mapping"
	"exlengine/internal/matlabgen"
	"exlengine/internal/rgen"
	"exlengine/internal/sqlgen"
)

func main() {
	emit := flag.String("emit", "tgds", "artifact to emit: tgds, sql, r, matlab, etl, summary")
	normalized := flag.Bool("normalized", false, "skip the fusion pass (one tgd per operator)")
	views := flag.Bool("views", false, "emit auxiliary relations as SQL views (with -emit sql)")
	trace := flag.Bool("trace", false, "print the compilation's span tree to stderr")
	flag.Parse()

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var copts []exlengine.CompileOption
	if *normalized {
		copts = append(copts, exlengine.WithoutFusion())
	}
	var tracer *exlengine.Tracer
	if *trace {
		tracer = exlengine.NewTracer()
		copts = append(copts, exlengine.CompileTraced(tracer))
	}
	m, err := exlengine.Compile(src, nil, copts...)
	if *trace {
		exlengine.WriteTraceTree(os.Stderr, tracer)
	}
	if err != nil {
		fatal(err)
	}

	out, err := render(m, *emit, *views)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
	if len(out) > 0 && out[len(out)-1] != '\n' {
		fmt.Println()
	}
}

func render(m *mapping.Mapping, kind string, views bool) (string, error) {
	switch kind {
	case "tgds":
		return m.String(), nil
	case "sql":
		script, err := sqlgen.TranslateWith(m, sqlgen.Options{AuxAsViews: views})
		if err != nil {
			return "", err
		}
		return script.String(), nil
	case "r":
		return rgen.Translate(m)
	case "matlab":
		return matlabgen.Translate(m)
	case "etl":
		job, err := etl.Translate(m, "exlc")
		if err != nil {
			return "", err
		}
		raw, err := job.MarshalMetadata()
		return string(raw), err
	case "summary":
		job, err := etl.Translate(m, "exlc")
		if err != nil {
			return "", err
		}
		return job.Summary(), nil
	default:
		return "", fmt.Errorf("unknown artifact kind %q", kind)
	}
}

func readSource(path string) (string, error) {
	if path == "" || path == "-" {
		raw, err := io.ReadAll(os.Stdin)
		return string(raw), err
	}
	raw, err := os.ReadFile(path)
	return string(raw), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exlc:", err)
	os.Exit(1)
}
