// Inflation computes a consumer price index from item prices and basket
// weights, demonstrating CSV data loading, multi-frequency aggregation
// (monthly index, yearly average) and the incremental recalculation of
// Section 6: when one elementary cube changes, only the affected cubes are
// recomputed.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"exlengine"
)

const cpiProgram = `
cube PRICE(m: month, i: string) measure p
cube WEIGHT(i: string) measure w

WP   := PRICE * WEIGHT
CPI  := sum(WP, group by m)
CPIY := avg(CPI, group by year(m) as y)
INFL := (CPI - shift(CPI, 12)) * 100 / shift(CPI, 12)
`

func main() {
	eng := exlengine.New()
	if err := eng.RegisterProgram("cpi", cpiProgram); err != nil {
		log.Fatal(err)
	}

	// Basket weights arrive as CSV (for example from a survey system).
	weights := `i,w
food,0.35
energy,0.15
services,0.30
goods,0.20
`
	t0 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := eng.LoadCSV("WEIGHT", strings.NewReader(weights), t0); err != nil {
		log.Fatal(err)
	}

	// Three years of monthly prices with item-specific trends.
	price := exlengine.NewCube(exlengine.NewSchema("PRICE",
		[]exlengine.Dim{{Name: "m", Type: exlengine.TMonth}, {Name: "i", Type: exlengine.TString}}, "p"))
	trends := map[string]float64{"food": 0.004, "energy": 0.009, "services": 0.003, "goods": 0.002}
	start := exlengine.NewMonthly(2021, time.January)
	for k := 0; k < 36; k++ {
		m := exlengine.Per(start.Shift(int64(k)))
		for item, tr := range trends {
			p := 100 * math.Pow(1+tr, float64(k)) * (1 + 0.01*math.Sin(2*math.Pi*float64(k)/12))
			if err := price.Put([]exlengine.Value{m, exlengine.Str(item)}, p); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := eng.PutCube(price, t0); err != nil {
		log.Fatal(err)
	}

	if _, err := eng.Run(context.Background(), exlengine.RunAt(t0)); err != nil {
		log.Fatal(err)
	}

	cpiy, _ := eng.Cube("CPIY")
	fmt.Println("yearly average CPI:")
	for _, tu := range cpiy.Tuples() {
		fmt.Printf("  %s  %8.2f\n", tu.Dims[0], tu.Measure)
	}
	infl, _ := eng.Cube("INFL")
	fmt.Println("\nyear-over-year inflation, last 6 months:")
	ts := infl.Tuples()
	for _, tu := range ts[len(ts)-6:] {
		fmt.Printf("  %s  %6.2f%%\n", tu.Dims[0], tu.Measure)
	}

	// The basket is revised: energy weighs more. Only the cubes downstream
	// of WEIGHT are recalculated; the determination engine finds them.
	revised := `i,w
food,0.30
energy,0.25
services,0.28
goods,0.17
`
	t1 := t0.AddDate(0, 6, 0)
	if err := eng.LoadCSV("WEIGHT", strings.NewReader(revised), t1); err != nil {
		log.Fatal(err)
	}
	report, err := eng.Run(context.Background(), exlengine.RunChanged("WEIGHT"), exlengine.RunAt(t1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbasket revision recalculated %d cubes: %v\n", len(report.Plan), report.Plan)

	// Historicity: both index versions remain addressable.
	before, _ := eng.CubeAsOf("CPI", t0)
	after, _ := eng.CubeAsOf("CPI", t1)
	lastMonth := []exlengine.Value{exlengine.Per(start.Shift(35))}
	b, _ := before.Get(lastMonth)
	a, _ := after.Get(lastMonth)
	fmt.Printf("CPI %s: %.2f with the old basket, %.2f with the revised one\n", start.Shift(35), b, a)
}
