// Multitarget compiles one EXL program and prints every executable
// translation EXLEngine generates from its schema mapping — the tgds in
// logic notation, the SQL script, the R and Matlab sources and the ETL
// flow structure — then verifies that all four execution targets compute
// identical results, the paper's Section 4.2 correctness property.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"exlengine"
)

const program = `
cube SALES(m: month, shop: string) measure s

TOTAL  := sum(SALES, group by m)
TREND  := stl_t(TOTAL)
DETR   := TOTAL - TREND
GROWTH := (TOTAL - shift(TOTAL, 1)) * 100 / shift(TOTAL, 1)
`

func main() {
	// Compile once, inspect the mapping.
	m, err := exlengine.Compile(program, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== schema mapping ==")
	fmt.Println(m)

	// Build an engine per target and compare the results.
	data := salesCube()
	results := map[exlengine.Target]*exlengine.Cube{}
	for _, target := range []exlengine.Target{
		exlengine.TargetChase, exlengine.TargetSQL, exlengine.TargetETL, exlengine.TargetFrame,
	} {
		eng := exlengine.New()
		if err := eng.RegisterProgram("sales", program); err != nil {
			log.Fatal(err)
		}
		if err := eng.PutCube(data, time.Unix(0, 0)); err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Run(context.Background(), exlengine.RunOn(target)); err != nil {
			log.Fatalf("%s: %v", target, err)
		}
		growth, _ := eng.Cube("GROWTH")
		results[target] = growth

		if target == exlengine.TargetChase {
			continue
		}
		if !growth.Equal(results[exlengine.TargetChase], 1e-9) {
			log.Fatalf("GROWTH differs between chase and %s", target)
		}
	}
	fmt.Println("== all four targets computed identical GROWTH cubes ==")

	// Print each artifact.
	eng := exlengine.New()
	if err := eng.RegisterProgram("sales", program); err != nil {
		log.Fatal(err)
	}
	for _, kind := range []string{
		exlengine.ArtifactSQL, exlengine.ArtifactR, exlengine.ArtifactMatlab,
	} {
		out, err := eng.Translate("sales", kind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n%s", kind, out)
	}
}

func salesCube() *exlengine.Cube {
	c := exlengine.NewCube(exlengine.NewSchema("SALES",
		[]exlengine.Dim{{Name: "m", Type: exlengine.TMonth}, {Name: "shop", Type: exlengine.TString}}, "s"))
	start := exlengine.NewMonthly(2022, time.January)
	for k := 0; k < 24; k++ {
		m := exlengine.Per(start.Shift(int64(k)))
		for i, shop := range []string{"rome", "milan", "naples"} {
			v := 100*float64(i+1) + 3*float64(k) + 10*float64((k+i)%12)
			if err := c.Put([]exlengine.Value{m, exlengine.Str(shop)}, v); err != nil {
				log.Fatal(err)
			}
		}
	}
	return c
}
