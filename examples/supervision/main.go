// Supervision is a banking-supervision style workload: total system assets
// by quarter, a four-quarter moving average, each bank's market share
// (a broadcast division by the system total) and the gap between system
// assets and their fitted linear trend. It demonstrates black-box series
// operators, broadcasting, and exporting generated artifacts for external
// target systems (R and SQL).
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"exlengine"
)

const supervisionProgram = `
cube ASSETS(q: quarter, b: string) measure a

SYS      := sum(ASSETS, group by q)
SYSMA    := movavg(SYS, 4)
SHARE    := ASSETS / SYS * 100
SYSTREND := lintrend(SYS)
GAP      := SYS - SYSTREND
`

func main() {
	eng := exlengine.New()
	if err := eng.RegisterProgram("supervision", supervisionProgram); err != nil {
		log.Fatal(err)
	}

	assets := exlengine.NewCube(exlengine.NewSchema("ASSETS",
		[]exlengine.Dim{{Name: "q", Type: exlengine.TQuarter}, {Name: "b", Type: exlengine.TString}}, "a"))
	banks := []struct {
		name   string
		size   float64
		growth float64
	}{
		{"intesa", 880e9, 1.012},
		{"unicredit", 790e9, 1.008},
		{"bpm", 190e9, 1.015},
		{"mps", 120e9, 0.996},
		{"bper", 130e9, 1.018},
	}
	start := exlengine.NewQuarterly(2019, 1)
	for _, b := range banks {
		v := b.size
		for q := 0; q < 20; q++ {
			v *= b.growth * (1 + 0.004*math.Sin(float64(q)))
			if err := assets.Put([]exlengine.Value{exlengine.Per(start.Shift(int64(q))), exlengine.Str(b.name)}, v); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := eng.PutCube(assets, time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		log.Fatal(err)
	}

	report, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dispatch:")
	for _, s := range report.Subgraphs {
		fmt.Printf("  %-6s %v\n", s.Target, s.Cubes)
	}

	sys, _ := eng.Cube("SYS")
	sysma, _ := eng.Cube("SYSMA")
	gap, _ := eng.Cube("GAP")
	fmt.Printf("\n%-10s %14s %14s %13s\n", "quarter", "system (bn)", "4q MA (bn)", "trend gap(bn)")
	for _, tu := range sys.Tuples() {
		ma, _ := sysma.Get(tu.Dims)
		g, _ := gap.Get(tu.Dims)
		fmt.Printf("%-10s %14.1f %14.1f %13.1f\n", tu.Dims[0], tu.Measure/1e9, ma/1e9, g/1e9)
	}

	share, _ := eng.Cube("SHARE")
	last := exlengine.Per(start.Shift(19))
	fmt.Println("\nmarket shares, last quarter:")
	for _, b := range banks {
		s, _ := share.Get([]exlengine.Value{last, exlengine.Str(b.name)})
		fmt.Printf("  %-10s %6.2f%%\n", b.name, s)
	}

	// Export the generated R translation for the statistics department.
	r, err := eng.Translate("supervision", exlengine.ArtifactR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated R for the SYSMA flow (excerpt):")
	for _, line := range strings.Split(r, "\n") {
		if strings.Contains(line, "SYSMA") || strings.Contains(line, "filter") {
			fmt.Println("  " + line)
		}
	}
}
