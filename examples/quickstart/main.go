// Quickstart runs the paper's Section 2 example end to end: the GDP
// statistical program — quarterly average population, regional GDP,
// national GDP, its seasonal-decomposition trend and the percentage change
// of the trend — registered with the engine, executed over synthetic data,
// and printed.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"exlengine"
)

// gdpProgram is the paper's running example in EXL concrete syntax.
const gdpProgram = `
cube PDR(d: day, r: string) measure p
cube RGDPPC(q: quarter, r: string) measure g

PQR    := avg(PDR, group by quarter(d) as q, r)
RGDP   := RGDPPC * PQR
GDP    := sum(RGDP, group by q)
GDPT   := stl_t(GDP)
PCHNG  := (GDPT - shift(GDPT, 1)) * 100 / GDPT
`

func main() {
	eng := exlengine.New(exlengine.WithParallelDispatch())
	if err := eng.RegisterProgram("gdp", gdpProgram); err != nil {
		log.Fatal(err)
	}

	// Elementary data: two years of daily population for three regions,
	// plus per-capita GDP by quarter.
	pdr := exlengine.NewCube(exlengine.NewSchema("PDR",
		[]exlengine.Dim{{Name: "d", Type: exlengine.TDay}, {Name: "r", Type: exlengine.TString}}, "p"))
	rgdppc := exlengine.NewCube(exlengine.NewSchema("RGDPPC",
		[]exlengine.Dim{{Name: "q", Type: exlengine.TQuarter}, {Name: "r", Type: exlengine.TString}}, "g"))

	regions := map[string]float64{"north": 27.8e6, "centre": 11.9e6, "south": 19.8e6}
	start := exlengine.NewDaily(2010, time.January, 1)
	for i := 0; i < 730; i++ {
		day := start.Shift(int64(i))
		for r, base := range regions {
			pop := base * (1 + 0.00002*float64(i))
			if err := pdr.Put([]exlengine.Value{exlengine.Per(day), exlengine.Str(r)}, pop); err != nil {
				log.Fatal(err)
			}
		}
	}
	for q := 0; q < 8; q++ {
		quarter := exlengine.NewQuarterly(2010, 1).Shift(int64(q))
		for r := range regions {
			gpc := 6500.0 + 120*float64(q) + 400*float64(q%4) // trend + seasonality
			if err := rgdppc.Put([]exlengine.Value{exlengine.Per(quarter), exlengine.Str(r)}, gpc); err != nil {
				log.Fatal(err)
			}
		}
	}
	t0 := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := eng.PutCube(pdr, t0); err != nil {
		log.Fatal(err)
	}
	if err := eng.PutCube(rgdppc, t0); err != nil {
		log.Fatal(err)
	}

	// The generated schema mapping (the paper's tgds (1)-(5)).
	tgds, err := eng.Translate("gdp", exlengine.ArtifactTgds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated schema mapping:")
	fmt.Println(tgds)

	// Run: determination -> translation -> dispatch to target engines.
	report, err := eng.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("execution plan and dispatch:")
	for _, s := range report.Subgraphs {
		fmt.Printf("  %-6s %v\n", s.Target, s.Cubes)
	}
	fmt.Println()

	gdp, _ := eng.Cube("GDP")
	gdpt, _ := eng.Cube("GDPT")
	pchng, _ := eng.Cube("PCHNG")
	fmt.Printf("%-10s %16s %16s %10s\n", "quarter", "GDP", "trend", "pchng %")
	for _, tu := range gdp.Tuples() {
		trend, _ := gdpt.Get(tu.Dims)
		change, ok := pchng.Get(tu.Dims)
		changeStr := "-"
		if ok {
			changeStr = fmt.Sprintf("%.2f", change)
		}
		fmt.Printf("%-10s %16.0f %16.0f %10s\n", tu.Dims[0], tu.Measure, trend, changeStr)
	}
}
