package ops

import (
	"fmt"

	"exlengine/internal/model"
)

// SeriesFunc is a multi-tuple black-box operator over a whole time series:
// it receives the measures in chronological order (plus the season length
// implied by the series' frequency and any scalar parameters) and returns a
// series of the same length, aligned on the same periods. This is the
// paper's black-box subclass: "they receive one cube in input and transform
// it by producing another cube".
type SeriesFunc func(vals []float64, seasonLen int, params []float64) ([]float64, error)

// SeasonLength returns the number of periods per seasonal cycle for a
// frequency: 4 for quarterly, 12 for monthly, 7 (weekly cycle) for daily
// and 1 (no seasonality) for annual series.
func SeasonLength(f model.Frequency) int {
	switch f {
	case model.Quarterly:
		return 4
	case model.Monthly:
		return 12
	case model.Daily:
		return 7
	default:
		return 1
	}
}

// Series returns the named black-box series operator ("stl_t", "stl_s",
// "stl_i", "movavg", "cumsum", "lintrend").
func Series(name string) (SeriesFunc, error) {
	f, ok := seriesFuncs[name]
	if !ok {
		return nil, errUnknown("series", name)
	}
	return f, nil
}

// IsBlackBox reports whether name is a registered black-box series
// operator.
func IsBlackBox(name string) bool {
	i, ok := infos[name]
	return ok && i.Class == ClassBlackBox
}

var seriesFuncs = map[string]SeriesFunc{
	"stl_t": func(vals []float64, seasonLen int, _ []float64) ([]float64, error) {
		t, _, _ := Decompose(vals, seasonLen)
		return t, nil
	},
	"stl_s": func(vals []float64, seasonLen int, _ []float64) ([]float64, error) {
		_, s, _ := Decompose(vals, seasonLen)
		return s, nil
	},
	"stl_i": func(vals []float64, seasonLen int, _ []float64) ([]float64, error) {
		_, _, r := Decompose(vals, seasonLen)
		return r, nil
	},
	"movavg": func(vals []float64, _ int, params []float64) ([]float64, error) {
		if len(params) != 1 {
			return nil, fmt.Errorf("ops: movavg needs a window parameter")
		}
		w := int(params[0])
		if w < 1 {
			return nil, fmt.Errorf("ops: movavg window must be >= 1, got %d", w)
		}
		return MovingAverage(vals, w), nil
	},
	"cumsum": func(vals []float64, _ int, _ []float64) ([]float64, error) {
		out := make([]float64, len(vals))
		s := 0.0
		for i, v := range vals {
			s += v
			out[i] = s
		}
		return out, nil
	},
	"lintrend": func(vals []float64, _ int, _ []float64) ([]float64, error) {
		return LinearTrend(vals), nil
	},
}

// MovingAverage returns the trailing moving average with window w: each
// output point is the mean of the last min(w, i+1) values. The shrinking
// start keeps the operator total, so result cubes stay functional.
func MovingAverage(vals []float64, w int) []float64 {
	out := make([]float64, len(vals))
	sum := 0.0
	for i, v := range vals {
		sum += v
		if i >= w {
			sum -= vals[i-w]
		}
		n := w
		if i+1 < w {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// LinearTrend fits y = a + b·i by ordinary least squares over the series
// index and returns the fitted values.
func LinearTrend(vals []float64) []float64 {
	n := float64(len(vals))
	out := make([]float64, len(vals))
	if len(vals) == 0 {
		return out
	}
	if len(vals) == 1 {
		out[0] = vals[0]
		return out
	}
	var sx, sy, sxx, sxy float64
	for i, v := range vals {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	den := n*sxx - sx*sx
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	for i := range vals {
		out[i] = a + b*float64(i)
	}
	return out
}

// Decompose performs a classical additive seasonal decomposition by moving
// averages, standing in for R's stl(): trend by centered moving average of
// one seasonal cycle (with shrinking windows at the boundaries so the
// operator stays total), seasonal as the mean detrended value per season
// position re-centred to zero mean, remainder as the residual. The three
// components always satisfy trend + seasonal + remainder = series.
func Decompose(vals []float64, seasonLen int) (trend, seasonal, remainder []float64) {
	n := len(vals)
	trend = make([]float64, n)
	seasonal = make([]float64, n)
	remainder = make([]float64, n)
	if n == 0 {
		return trend, seasonal, remainder
	}
	if seasonLen < 1 {
		seasonLen = 1
	}

	// Trend: centered moving average with half-window h = seasonLen/2; at
	// the boundaries the window shrinks symmetrically.
	h := seasonLen / 2
	if h < 1 {
		h = 1
	}
	for i := 0; i < n; i++ {
		lo, hi := i-h, i+h
		if lo < 0 {
			lo = 0
		}
		if hi > n-1 {
			hi = n - 1
		}
		w := min(i-lo, hi-i) // symmetric shrink
		sum := 0.0
		for j := i - w; j <= i+w; j++ {
			sum += vals[j]
		}
		trend[i] = sum / float64(2*w+1)
	}

	if seasonLen > 1 && n >= seasonLen {
		// Seasonal: mean detrended value by position in the cycle,
		// re-centred so the seasonal component sums to zero over a cycle.
		means := make([]float64, seasonLen)
		counts := make([]int, seasonLen)
		for i := 0; i < n; i++ {
			means[i%seasonLen] += vals[i] - trend[i]
			counts[i%seasonLen]++
		}
		var grand float64
		for k := range means {
			if counts[k] > 0 {
				means[k] /= float64(counts[k])
			}
			grand += means[k]
		}
		grand /= float64(seasonLen)
		for k := range means {
			means[k] -= grand
		}
		for i := 0; i < n; i++ {
			seasonal[i] = means[i%seasonLen]
		}
	}

	for i := 0; i < n; i++ {
		remainder[i] = vals[i] - trend[i] - seasonal[i]
	}
	return trend, seasonal, remainder
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
