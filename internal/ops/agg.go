package ops

import (
	"math"
	"sort"
)

// Aggregator consumes a bag of measures and produces one value. Bags have
// multiset semantics: repeated elements count (the paper's footnote 9).
// A fresh Aggregator must be obtained per group via NewAggregator.
type Aggregator interface {
	// Add feeds one measure into the bag.
	Add(v float64)
	// Result returns the aggregate of the bag fed so far. It is only
	// called on non-empty bags: per the paper, "the cube tuple exists
	// only if the bag V is non-empty".
	Result() float64
}

// NewAggregator returns a fresh aggregator for the named aggregation
// operator ("sum", "avg", "min", "max", "count", "median", "stddev",
// "prod").
func NewAggregator(name string) (Aggregator, error) {
	switch name {
	case "sum":
		return &sumAgg{}, nil
	case "avg":
		return &avgAgg{}, nil
	case "min":
		return &minAgg{first: true}, nil
	case "max":
		return &maxAgg{first: true}, nil
	case "count":
		return &countAgg{}, nil
	case "median":
		return &medianAgg{}, nil
	case "stddev":
		return &stddevAgg{}, nil
	case "prod":
		return &prodAgg{p: 1}, nil
	default:
		return nil, errUnknown("aggregation", name)
	}
}

// IsAggregation reports whether name is a registered aggregation operator.
func IsAggregation(name string) bool {
	i, ok := infos[name]
	return ok && i.Class == ClassAggregation
}

type sumAgg struct{ s float64 }

func (a *sumAgg) Add(v float64)   { a.s += v }
func (a *sumAgg) Result() float64 { return a.s }

type avgAgg struct {
	s float64
	n int
}

func (a *avgAgg) Add(v float64)   { a.s += v; a.n++ }
func (a *avgAgg) Result() float64 { return a.s / float64(a.n) }

type minAgg struct {
	m     float64
	first bool
}

func (a *minAgg) Add(v float64) {
	if a.first || v < a.m {
		a.m = v
		a.first = false
	}
}
func (a *minAgg) Result() float64 { return a.m }

type maxAgg struct {
	m     float64
	first bool
}

func (a *maxAgg) Add(v float64) {
	if a.first || v > a.m {
		a.m = v
		a.first = false
	}
}
func (a *maxAgg) Result() float64 { return a.m }

type countAgg struct{ n int }

func (a *countAgg) Add(float64)     { a.n++ }
func (a *countAgg) Result() float64 { return float64(a.n) }

type medianAgg struct{ vs []float64 }

func (a *medianAgg) Add(v float64) { a.vs = append(a.vs, v) }
func (a *medianAgg) Result() float64 {
	vs := append([]float64(nil), a.vs...)
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// stddevAgg computes the population standard deviation with Welford's
// online algorithm for numerical stability.
type stddevAgg struct {
	n    int
	mean float64
	m2   float64
}

func (a *stddevAgg) Add(v float64) {
	a.n++
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}
func (a *stddevAgg) Result() float64 {
	if a.n == 0 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n))
}

type prodAgg struct{ p float64 }

func (a *prodAgg) Add(v float64)   { a.p *= v }
func (a *prodAgg) Result() float64 { return a.p }

// Aggregate applies the named aggregation to a complete bag. It is a
// convenience for engines that materialize groups before aggregating.
func Aggregate(name string, bag []float64) (float64, error) {
	agg, err := NewAggregator(name)
	if err != nil {
		return 0, err
	}
	for _, v := range bag {
		agg.Add(v)
	}
	return agg.Result(), nil
}
