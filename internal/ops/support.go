package ops

// Target identifies an execution target system. The paper's EXLEngine
// translates schema mappings for relational databases (SQL), statistical
// tools (R, Matlab — here the frame engine) and ETL tools; the chase is the
// reference executor used to validate the others.
type Target string

// Known execution targets.
const (
	TargetChase Target = "chase"
	TargetSQL   Target = "sql"
	TargetETL   Target = "etl"
	TargetFrame Target = "frame" // the R/Matlab-style data-frame engine
)

// AllTargets lists every execution target, reference chase included.
var AllTargets = []Target{TargetChase, TargetSQL, TargetETL, TargetFrame}

// Supports reports whether the target system natively supports the
// operator, mirroring the paper's technical metadata ("it is not the case
// that all operators are natively supported by all systems"). The chase
// supports everything; SQL supports black boxes through tabular functions;
// the frame engine maps every operator to data-frame primitives; the ETL
// engine has no native whole-series steps, so black-box operators must be
// dispatched elsewhere.
func Supports(t Target, opName string) bool {
	info, ok := infos[opName]
	if !ok {
		// Algebraic operators (add, sub, mul, div, neg) reach here; every
		// target supports tuple-level arithmetic.
		if _, err := ScalarArity(opName); err == nil {
			return true
		}
		return false
	}
	if t == TargetETL && info.Class == ClassBlackBox {
		return false
	}
	// The emitted SQL dialect has no outer joins, so padded vectorial
	// operators cannot be translated for the DBMS target ("depending on
	// the specific operators used in the rhs, the translation may be
	// actually feasible or not", Section 5).
	if t == TargetSQL && info.Class == ClassVector {
		return false
	}
	return true
}

// Preference returns the execution targets for the operator in decreasing
// order of suitability. The determination engine uses it to assign each
// derived cube to "the most suitable target system according to the
// specificity of the involved operators" (Section 6): statistical black
// boxes prefer the matrix-oriented frame engine, aggregations and joins
// prefer the DBMS, plain arithmetic prefers the ETL streamer.
func Preference(opName string) []Target {
	info, ok := infos[opName]
	if !ok {
		return []Target{TargetETL, TargetSQL, TargetFrame, TargetChase}
	}
	switch info.Class {
	case ClassBlackBox:
		return []Target{TargetFrame, TargetSQL, TargetChase}
	case ClassVector:
		return []Target{TargetFrame, TargetETL, TargetChase}
	case ClassAggregation:
		return []Target{TargetSQL, TargetFrame, TargetETL, TargetChase}
	case ClassShift:
		return []Target{TargetSQL, TargetFrame, TargetETL, TargetChase}
	default:
		return []Target{TargetETL, TargetSQL, TargetFrame, TargetChase}
	}
}
