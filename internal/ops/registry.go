// Package ops implements the EXL operator library: tuple-level scalar
// functions, dimension functions (quarter, month, year), multi-tuple
// aggregation operators, and multi-tuple black-box operators over time
// series (seasonal decomposition, moving averages, linear trend).
//
// The package is a pure function registry: it knows nothing about cubes or
// tgds. The chase engine and every target engine evaluate operators through
// it, which is what makes the cross-engine equivalence tests meaningful.
package ops

import (
	"fmt"
	"sort"
)

// Class partitions operators as in the paper's Section 3: tuple-level
// operators compute each result value from at most one tuple per operand;
// multi-tuple operators (aggregations and black boxes) compute result
// values from sets of tuples.
type Class uint8

// Operator classes.
const (
	ClassInvalid     Class = iota
	ClassScalar            // tuple-level, one cube operand + scalar params
	ClassVector            // tuple-level, two cube operands, matched on dimensions
	ClassShift             // tuple-level, transforms a time dimension
	ClassAggregation       // multi-tuple, group by + aggregation function
	ClassBlackBox          // multi-tuple, whole-series transformation
	ClassDimension         // scalar function on dimension values (group-by lists)
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassScalar:
		return "scalar"
	case ClassVector:
		return "vectorial"
	case ClassShift:
		return "shift"
	case ClassAggregation:
		return "aggregation"
	case ClassBlackBox:
		return "blackbox"
	case ClassDimension:
		return "dimension"
	default:
		return "invalid"
	}
}

// Info describes an operator for the EXL analyzer and the translators.
type Info struct {
	Name        string
	Class       Class
	CubeArgs    int // number of cube operands
	Params      int // number of scalar parameters (-1: variable)
	Description string
}

// Lookup returns the operator description for a name used in EXL function
// notation. The algebraic operators +, -, *, / are not listed here; the
// parser handles their syntax and the analyzer resolves them to scalar or
// vectorial applications depending on operand types.
func Lookup(name string) (Info, bool) {
	i, ok := infos[name]
	return i, ok
}

// Names returns all registered operator names, sorted.
func Names() []string {
	out := make([]string, 0, len(infos))
	for n := range infos {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var infos = map[string]Info{
	// Tuple-level scalar functions (measure -> measure).
	"log":   {Name: "log", Class: ClassScalar, CubeArgs: 1, Params: 1, Description: "logarithm with explicit base: log(base, e)"},
	"ln":    {Name: "ln", Class: ClassScalar, CubeArgs: 1, Description: "natural logarithm"},
	"exp":   {Name: "exp", Class: ClassScalar, CubeArgs: 1, Description: "exponential"},
	"sqrt":  {Name: "sqrt", Class: ClassScalar, CubeArgs: 1, Description: "square root"},
	"abs":   {Name: "abs", Class: ClassScalar, CubeArgs: 1, Description: "absolute value"},
	"round": {Name: "round", Class: ClassScalar, CubeArgs: 1, Description: "round to nearest integer"},
	"pow":   {Name: "pow", Class: ClassScalar, CubeArgs: 1, Params: 1, Description: "power: pow(e, exponent)"},
	"sin":   {Name: "sin", Class: ClassScalar, CubeArgs: 1, Description: "sine"},
	"cos":   {Name: "cos", Class: ClassScalar, CubeArgs: 1, Description: "cosine"},

	// Tuple-level vectorial variants with default padding: the result is
	// defined on the union of the operands' dimension tuples, missing
	// values defaulting to zero (Section 3's "others assuming a default
	// value for the missing tuples").
	"vsum0": {Name: "vsum0", Class: ClassVector, CubeArgs: 2, Description: "vectorial sum, missing tuples default to 0"},
	"vsub0": {Name: "vsub0", Class: ClassVector, CubeArgs: 2, Description: "vectorial difference, missing tuples default to 0"},

	// Tuple-level dimension transform.
	"shift": {Name: "shift", Class: ClassShift, CubeArgs: 1, Params: 1, Description: "time shift: shift(e, s)(t) = e(t-s)"},

	// Multi-tuple aggregations (used with group by).
	"sum":    {Name: "sum", Class: ClassAggregation, CubeArgs: 1, Description: "sum of the bag of measures"},
	"avg":    {Name: "avg", Class: ClassAggregation, CubeArgs: 1, Description: "arithmetic mean"},
	"min":    {Name: "min", Class: ClassAggregation, CubeArgs: 1, Description: "minimum"},
	"max":    {Name: "max", Class: ClassAggregation, CubeArgs: 1, Description: "maximum"},
	"count":  {Name: "count", Class: ClassAggregation, CubeArgs: 1, Description: "number of tuples"},
	"median": {Name: "median", Class: ClassAggregation, CubeArgs: 1, Description: "median"},
	"stddev": {Name: "stddev", Class: ClassAggregation, CubeArgs: 1, Description: "population standard deviation"},
	"prod":   {Name: "prod", Class: ClassAggregation, CubeArgs: 1, Description: "product"},

	// Multi-tuple black boxes over time series.
	"stl_t":    {Name: "stl_t", Class: ClassBlackBox, CubeArgs: 1, Description: "seasonal decomposition: trend component"},
	"stl_s":    {Name: "stl_s", Class: ClassBlackBox, CubeArgs: 1, Description: "seasonal decomposition: seasonal component"},
	"stl_i":    {Name: "stl_i", Class: ClassBlackBox, CubeArgs: 1, Description: "seasonal decomposition: irregular component"},
	"movavg":   {Name: "movavg", Class: ClassBlackBox, CubeArgs: 1, Params: 1, Description: "trailing moving average: movavg(e, window)"},
	"cumsum":   {Name: "cumsum", Class: ClassBlackBox, CubeArgs: 1, Description: "cumulative sum along time"},
	"lintrend": {Name: "lintrend", Class: ClassBlackBox, CubeArgs: 1, Description: "OLS fitted linear trend"},

	// Dimension functions (usable in group-by lists and on dimension terms).
	"quarter": {Name: "quarter", Class: ClassDimension, Description: "quarter of a daily or monthly period"},
	"month":   {Name: "month", Class: ClassDimension, Description: "month of a daily period"},
	"year":    {Name: "year", Class: ClassDimension, Description: "year of any period"},
}

// ErrUnknown is the error template for unregistered operators.
func errUnknown(kind, name string) error {
	return fmt.Errorf("ops: unknown %s operator %q", kind, name)
}
