package ops

import (
	"fmt"
	"math"

	"exlengine/internal/model"
)

// ScalarFunc is a tuple-level function on measures. args[0] is the measure;
// any scalar parameters follow (e.g. the base for log). A scalar function
// is undefined (ok=false semantics expressed as an error) on inputs where
// the mathematical operator is meaningless, per the paper: the result cube
// simply has no tuple there.
type ScalarFunc func(args ...float64) (float64, error)

// ErrUndefined marks points where a scalar operator is undefined (division
// by zero, log of a non-positive number). Engines drop the corresponding
// result tuple rather than failing the whole program.
type ErrUndefinedT struct{ Op string }

// Error implements error.
func (e ErrUndefinedT) Error() string { return "ops: " + e.Op + " undefined on input" }

// ErrUndefined reports whether err marks an undefined-point condition.
func ErrUndefined(err error) bool {
	_, ok := err.(ErrUndefinedT)
	return ok
}

var scalarFuncs = map[string]ScalarFunc{
	"add": func(a ...float64) (float64, error) { return a[0] + a[1], nil },
	"sub": func(a ...float64) (float64, error) { return a[0] - a[1], nil },
	"mul": func(a ...float64) (float64, error) { return a[0] * a[1], nil },
	"div": func(a ...float64) (float64, error) {
		if a[1] == 0 {
			return 0, ErrUndefinedT{Op: "div"}
		}
		return a[0] / a[1], nil
	},
	"neg": func(a ...float64) (float64, error) { return -a[0], nil },
	"log": func(a ...float64) (float64, error) {
		base, x := a[1], a[0]
		if x <= 0 || base <= 0 || base == 1 {
			return 0, ErrUndefinedT{Op: "log"}
		}
		return math.Log(x) / math.Log(base), nil
	},
	"ln": func(a ...float64) (float64, error) {
		if a[0] <= 0 {
			return 0, ErrUndefinedT{Op: "ln"}
		}
		return math.Log(a[0]), nil
	},
	"exp": func(a ...float64) (float64, error) { return math.Exp(a[0]), nil },
	"sqrt": func(a ...float64) (float64, error) {
		if a[0] < 0 {
			return 0, ErrUndefinedT{Op: "sqrt"}
		}
		return math.Sqrt(a[0]), nil
	},
	"abs":   func(a ...float64) (float64, error) { return math.Abs(a[0]), nil },
	"round": func(a ...float64) (float64, error) { return math.Round(a[0]), nil },
	"pow":   func(a ...float64) (float64, error) { return math.Pow(a[0], a[1]), nil },
	"sin":   func(a ...float64) (float64, error) { return math.Sin(a[0]), nil },
	"cos":   func(a ...float64) (float64, error) { return math.Cos(a[0]), nil },
}

// Scalar returns the named scalar function ("add", "sub", "mul", "div",
// "neg", "log", "ln", …).
func Scalar(name string) (ScalarFunc, error) {
	f, ok := scalarFuncs[name]
	if !ok {
		return nil, errUnknown("scalar", name)
	}
	return f, nil
}

// ScalarArity returns the number of arguments of a scalar function
// (measure included).
func ScalarArity(name string) (int, error) {
	switch name {
	case "add", "sub", "mul", "div", "pow", "log":
		return 2, nil
	case "neg", "ln", "exp", "sqrt", "abs", "round", "sin", "cos":
		return 1, nil
	default:
		return 0, errUnknown("scalar", name)
	}
}

// DimFunc is a scalar function on dimension values, usable in group-by
// lists and on lhs dimension terms (the quarter(t) of tgd (1)).
type DimFunc struct {
	// Apply maps a dimension value to the transformed value.
	Apply func(model.Value) (model.Value, error)
	// ResultType gives the dimension type of the result given the input
	// dimension type.
	ResultType func(model.DimType) (model.DimType, error)
}

var dimFuncs = map[string]DimFunc{
	"quarter": {
		Apply:      periodConvert(model.Quarterly),
		ResultType: periodResultType(model.Quarterly),
	},
	"month": {
		Apply:      periodConvert(model.Monthly),
		ResultType: periodResultType(model.Monthly),
	},
	"year": {
		Apply:      periodConvert(model.Annual),
		ResultType: periodResultType(model.Annual),
	},
}

// Dimension returns the named dimension function.
func Dimension(name string) (DimFunc, error) {
	f, ok := dimFuncs[name]
	if !ok {
		return DimFunc{}, errUnknown("dimension", name)
	}
	return f, nil
}

func periodConvert(to model.Frequency) func(model.Value) (model.Value, error) {
	return func(v model.Value) (model.Value, error) {
		p, ok := v.AsPeriod()
		if !ok {
			return model.Value{}, fmt.Errorf("ops: %s applied to non-period value %v", to, v)
		}
		q, err := p.Convert(to)
		if err != nil {
			return model.Value{}, err
		}
		return model.Per(q), nil
	}
}

func periodResultType(to model.Frequency) func(model.DimType) (model.DimType, error) {
	return func(t model.DimType) (model.DimType, error) {
		if !t.IsTime() {
			return model.DimType{}, fmt.Errorf("ops: frequency conversion needs a time dimension, got %s", t)
		}
		if t.Freq != model.FreqInvalid && t.Freq > to {
			return model.DimType{}, fmt.Errorf("ops: cannot convert %s dimension to finer frequency %s", t, to)
		}
		return model.DimType{Kind: model.DimPeriod, Freq: to}, nil
	}
}

// ShiftValue shifts a time dimension value by s steps; it is the dimension
// arithmetic behind the EXL shift operator and behind fused lhs terms such
// as q-1.
func ShiftValue(v model.Value, s int64) (model.Value, error) {
	switch v.Kind() {
	case model.KindPeriod:
		p, _ := v.AsPeriod()
		return model.Per(p.Shift(s)), nil
	case model.KindInt:
		i, _ := v.AsInt()
		return model.Int(i + s), nil
	case model.KindNumber:
		f, _ := v.AsNumber()
		return model.Num(f + float64(s)), nil
	default:
		return model.Value{}, fmt.Errorf("ops: shift applied to non-shiftable value %v", v)
	}
}
