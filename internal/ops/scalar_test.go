package ops

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"exlengine/internal/model"
)

func mustScalar(t *testing.T, name string) ScalarFunc {
	t.Helper()
	f, err := Scalar(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestScalarArith(t *testing.T) {
	tests := []struct {
		name string
		args []float64
		want float64
	}{
		{"add", []float64{2, 3}, 5},
		{"sub", []float64{2, 3}, -1},
		{"mul", []float64{2, 3}, 6},
		{"div", []float64{6, 3}, 2},
		{"neg", []float64{2}, -2},
		{"abs", []float64{-2}, 2},
		{"round", []float64{2.6}, 3},
		{"sqrt", []float64{9}, 3},
		{"exp", []float64{0}, 1},
		{"ln", []float64{math.E}, 1},
		{"log", []float64{8, 2}, 3},
		{"pow", []float64{2, 10}, 1024},
		{"sin", []float64{0}, 0},
		{"cos", []float64{0}, 1},
	}
	for _, tt := range tests {
		got, err := mustScalar(t, tt.name)(tt.args...)
		if err != nil {
			t.Errorf("%s%v: %v", tt.name, tt.args, err)
			continue
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s%v = %v, want %v", tt.name, tt.args, got, tt.want)
		}
	}
}

func TestScalarUndefinedPoints(t *testing.T) {
	cases := []struct {
		name string
		args []float64
	}{
		{"div", []float64{1, 0}},
		{"ln", []float64{0}},
		{"ln", []float64{-1}},
		{"log", []float64{-1, 2}},
		{"log", []float64{8, 1}},  // base 1
		{"log", []float64{8, -2}}, // negative base
		{"sqrt", []float64{-1}},
	}
	for _, c := range cases {
		_, err := mustScalar(t, c.name)(c.args...)
		if err == nil || !ErrUndefined(err) {
			t.Errorf("%s%v: want undefined-point error, got %v", c.name, c.args, err)
		}
	}
}

func TestScalarUnknown(t *testing.T) {
	if _, err := Scalar("frobnicate"); err == nil {
		t.Error("unknown scalar must fail")
	}
	if _, err := ScalarArity("frobnicate"); err == nil {
		t.Error("unknown arity must fail")
	}
}

func TestScalarArity(t *testing.T) {
	for name, want := range map[string]int{
		"add": 2, "sub": 2, "mul": 2, "div": 2, "pow": 2, "log": 2,
		"neg": 1, "ln": 1, "exp": 1, "sqrt": 1, "abs": 1, "round": 1, "sin": 1, "cos": 1,
	} {
		got, err := ScalarArity(name)
		if err != nil || got != want {
			t.Errorf("ScalarArity(%s) = %d, %v", name, got, err)
		}
	}
}

func TestDimensionFunctions(t *testing.T) {
	day := model.Per(model.NewDaily(2001, time.August, 15))
	q, err := dimApply(t, "quarter", day)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "2001-Q3" {
		t.Errorf("quarter = %v", q)
	}
	m, err := dimApply(t, "month", day)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "2001-08" {
		t.Errorf("month = %v", m)
	}
	y, err := dimApply(t, "year", day)
	if err != nil {
		t.Fatal(err)
	}
	if y.String() != "2001" {
		t.Errorf("year = %v", y)
	}
	// quarter of a non-period is an error.
	if _, err := dimApply(t, "quarter", model.Str("x")); err == nil {
		t.Error("quarter of string must fail")
	}
	// quarter of an annual period is an error (finer conversion).
	if _, err := dimApply(t, "quarter", model.Per(model.NewAnnual(2001))); err == nil {
		t.Error("quarter of annual must fail")
	}
	if _, err := Dimension("nope"); err == nil {
		t.Error("unknown dimension function must fail")
	}
}

func dimApply(t *testing.T, name string, v model.Value) (model.Value, error) {
	t.Helper()
	f, err := Dimension(name)
	if err != nil {
		t.Fatal(err)
	}
	return f.Apply(v)
}

func TestDimensionResultTypes(t *testing.T) {
	f, _ := Dimension("quarter")
	got, err := f.ResultType(model.TDay)
	if err != nil || got != model.TQuarter {
		t.Errorf("quarter(day) type = %v, %v", got, err)
	}
	if _, err := f.ResultType(model.TString); err == nil {
		t.Error("quarter of string dimension must fail at type level")
	}
	if _, err := f.ResultType(model.TYear); err == nil {
		t.Error("quarter of year dimension must fail at type level")
	}
	y, _ := Dimension("year")
	if gt, err := y.ResultType(model.TQuarter); err != nil || gt != model.TYear {
		t.Errorf("year(quarter) type = %v, %v", gt, err)
	}
}

func TestShiftValue(t *testing.T) {
	p := model.Per(model.NewQuarterly(2001, 1))
	got, err := ShiftValue(p, -1)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "2000-Q4" {
		t.Errorf("ShiftValue period = %v", got)
	}
	if got, _ := ShiftValue(model.Int(5), 2); got.String() != "7" {
		t.Errorf("ShiftValue int = %v", got)
	}
	if got, _ := ShiftValue(model.Num(5.5), 2); got.String() != "7.5" {
		t.Errorf("ShiftValue num = %v", got)
	}
	if _, err := ShiftValue(model.Str("x"), 1); err == nil {
		t.Error("shift of string must fail")
	}
}

func TestDivMulInverseQuick(t *testing.T) {
	div := mustScalar(t, "div")
	mul := mustScalar(t, "mul")
	f := func(a, b float64) bool {
		if b == 0 || math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		q, err := div(a, b)
		if err != nil {
			return false
		}
		p, err := mul(q, b)
		if err != nil {
			return false
		}
		return math.Abs(p-a) <= 1e-9*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
