package ops

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestAggregate(t *testing.T) {
	bag := []float64{4, 1, 3, 2}
	tests := []struct {
		name string
		want float64
	}{
		{"sum", 10},
		{"avg", 2.5},
		{"min", 1},
		{"max", 4},
		{"count", 4},
		{"median", 2.5},
		{"prod", 24},
		{"stddev", math.Sqrt(1.25)},
	}
	for _, tt := range tests {
		got, err := Aggregate(tt.name, bag)
		if err != nil {
			t.Errorf("%s: %v", tt.name, err)
			continue
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", tt.name, bag, got, tt.want)
		}
	}
}

func TestMedianOddEven(t *testing.T) {
	if m, _ := Aggregate("median", []float64{5, 1, 9}); m != 5 {
		t.Errorf("odd median = %v", m)
	}
	if m, _ := Aggregate("median", []float64{5, 1, 9, 7}); m != 6 {
		t.Errorf("even median = %v", m)
	}
	if m, _ := Aggregate("median", []float64{42}); m != 42 {
		t.Errorf("singleton median = %v", m)
	}
}

func TestMedianDoesNotMutateBag(t *testing.T) {
	agg, _ := NewAggregator("median")
	for _, v := range []float64{3, 1, 2} {
		agg.Add(v)
	}
	_ = agg.Result()
	agg.Add(0)
	if got := agg.Result(); got != 1.5 {
		t.Errorf("median after further Add = %v, want 1.5", got)
	}
}

func TestBagSemantics(t *testing.T) {
	// Repeated elements are meaningful (multiset): avg of {2,2,8} is 4.
	if got, _ := Aggregate("avg", []float64{2, 2, 8}); got != 4 {
		t.Errorf("bag avg = %v", got)
	}
	if got, _ := Aggregate("count", []float64{2, 2, 8}); got != 3 {
		t.Errorf("bag count = %v", got)
	}
}

func TestUnknownAggregator(t *testing.T) {
	if _, err := NewAggregator("mode"); err == nil {
		t.Error("unknown aggregator must fail")
	}
	if _, err := Aggregate("mode", []float64{1}); err == nil {
		t.Error("unknown Aggregate must fail")
	}
}

func TestIsAggregation(t *testing.T) {
	for _, n := range []string{"sum", "avg", "min", "max", "count", "median", "stddev", "prod"} {
		if !IsAggregation(n) {
			t.Errorf("IsAggregation(%s) = false", n)
		}
	}
	for _, n := range []string{"stl_t", "shift", "ln", "nosuch"} {
		if IsAggregation(n) {
			t.Errorf("IsAggregation(%s) = true", n)
		}
	}
}

func TestStddevStability(t *testing.T) {
	// Welford vs naive on values with a large common offset.
	base := 1e9
	vals := []float64{base + 1, base + 2, base + 3, base + 4}
	got, _ := Aggregate("stddev", vals)
	want := math.Sqrt(1.25)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("stddev with offset = %v, want %v", got, want)
	}
}

func TestAggregatorsQuick(t *testing.T) {
	// Properties on random bags: min <= median <= max, min <= avg <= max,
	// sum = avg*count, stddev >= 0.
	f := func(raw []float64) bool {
		var bag []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				bag = append(bag, v)
			}
		}
		if len(bag) == 0 {
			return true
		}
		mn, _ := Aggregate("min", bag)
		mx, _ := Aggregate("max", bag)
		md, _ := Aggregate("median", bag)
		av, _ := Aggregate("avg", bag)
		sm, _ := Aggregate("sum", bag)
		ct, _ := Aggregate("count", bag)
		sd, _ := Aggregate("stddev", bag)
		tol := 1e-6 * (1 + math.Abs(sm))
		return mn <= md && md <= mx && mn <= av && av <= mx &&
			math.Abs(sm-av*ct) <= tol && sd >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianEqualsSortMiddleQuick(t *testing.T) {
	f := func(raw []float64) bool {
		var bag []float64
		for _, v := range raw {
			if !math.IsNaN(v) {
				bag = append(bag, v)
			}
		}
		if len(bag) == 0 {
			return true
		}
		got, _ := Aggregate("median", bag)
		s := append([]float64(nil), bag...)
		sort.Float64s(s)
		var want float64
		if len(s)%2 == 1 {
			want = s[len(s)/2]
		} else {
			want = (s[len(s)/2-1] + s[len(s)/2]) / 2
		}
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
