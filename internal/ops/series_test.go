package ops

import (
	"math"
	"testing"
	"testing/quick"

	"exlengine/internal/model"
)

func TestSeasonLength(t *testing.T) {
	for f, want := range map[model.Frequency]int{
		model.Quarterly: 4, model.Monthly: 12, model.Daily: 7, model.Annual: 1,
	} {
		if got := SeasonLength(f); got != want {
			t.Errorf("SeasonLength(%s) = %d, want %d", f, got, want)
		}
	}
}

func TestDecomposeAdditivity(t *testing.T) {
	// trend + seasonal + remainder must reconstruct the series exactly.
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 100 + 2*float64(i) + 10*math.Sin(2*math.Pi*float64(i)/4) + math.Cos(float64(i))
	}
	tr, se, re := Decompose(vals, 4)
	for i := range vals {
		if math.Abs(tr[i]+se[i]+re[i]-vals[i]) > 1e-9 {
			t.Fatalf("additivity broken at %d", i)
		}
	}
}

func TestDecomposeRecoversTrend(t *testing.T) {
	// A pure linear series with additive period-4 seasonality: the interior
	// trend points must be close to the true line, and the seasonal
	// component must approximate the injected pattern.
	season := []float64{5, -2, -4, 1}
	n := 48
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 10 + 3*float64(i) + season[i%4]
	}
	tr, se, _ := Decompose(vals, 4)
	for i := 4; i < n-4; i++ {
		want := 10 + 3*float64(i)
		if math.Abs(tr[i]-want) > 3.5 {
			t.Errorf("trend[%d] = %v, want about %v", i, tr[i], want)
		}
	}
	// Seasonal pattern: same shape up to a constant; compare differences.
	for k := 1; k < 4; k++ {
		gotDiff := se[k] - se[0]
		wantDiff := season[k] - season[0]
		if math.Abs(gotDiff-wantDiff) > 1.5 {
			t.Errorf("seasonal diff at pos %d = %v, want about %v", k, gotDiff, wantDiff)
		}
	}
}

func TestDecomposeSeasonalZeroMean(t *testing.T) {
	vals := make([]float64, 24)
	for i := range vals {
		vals[i] = float64(i%4)*3 + float64(i)
	}
	_, se, _ := Decompose(vals, 4)
	sum := 0.0
	for i := 0; i < 4; i++ {
		sum += se[i]
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("seasonal component not zero-mean over a cycle: %v", sum)
	}
}

func TestDecomposeEdgeCases(t *testing.T) {
	tr, se, re := Decompose(nil, 4)
	if len(tr) != 0 || len(se) != 0 || len(re) != 0 {
		t.Error("empty series must give empty components")
	}
	tr, se, re = Decompose([]float64{7}, 4)
	if tr[0] != 7 || se[0] != 0 || re[0] != 0 {
		t.Errorf("singleton: %v %v %v", tr, se, re)
	}
	// season length 1: no seasonal component.
	vals := []float64{1, 2, 3, 4}
	_, se, _ = Decompose(vals, 1)
	for _, s := range se {
		if s != 0 {
			t.Error("seasonLen 1 must have zero seasonal")
		}
	}
	// season length 0 is treated as 1.
	_, se, _ = Decompose(vals, 0)
	for _, s := range se {
		if s != 0 {
			t.Error("seasonLen 0 must behave like 1")
		}
	}
	// series shorter than a cycle: no seasonal estimation.
	_, se, _ = Decompose([]float64{1, 2}, 4)
	for _, s := range se {
		if s != 0 {
			t.Error("short series must have zero seasonal")
		}
	}
}

func TestDecomposeAdditivityQuick(t *testing.T) {
	f := func(raw []float64, sl uint8) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				vals = append(vals, v)
			}
		}
		seasonLen := int(sl%13) + 1
		tr, se, re := Decompose(vals, seasonLen)
		if len(tr) != len(vals) || len(se) != len(vals) || len(re) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Abs(tr[i]+se[i]+re[i]-vals[i]) > 1e-6*(1+math.Abs(vals[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMovingAverage(t *testing.T) {
	got := MovingAverage([]float64{2, 4, 6, 8}, 2)
	want := []float64{2, 3, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MovingAverage = %v, want %v", got, want)
		}
	}
	// Window 1 is the identity.
	id := MovingAverage([]float64{3, 1, 4}, 1)
	for i, v := range []float64{3, 1, 4} {
		if id[i] != v {
			t.Fatal("window 1 must be identity")
		}
	}
	// Window larger than series: running mean.
	rm := MovingAverage([]float64{2, 4}, 10)
	if rm[0] != 2 || rm[1] != 3 {
		t.Errorf("oversized window = %v", rm)
	}
}

func TestLinearTrend(t *testing.T) {
	// An exact line is reproduced exactly.
	vals := []float64{1, 3, 5, 7, 9}
	got := LinearTrend(vals)
	for i := range vals {
		if math.Abs(got[i]-vals[i]) > 1e-9 {
			t.Fatalf("LinearTrend on a line: %v", got)
		}
	}
	if out := LinearTrend(nil); len(out) != 0 {
		t.Error("empty input")
	}
	if out := LinearTrend([]float64{5}); out[0] != 5 {
		t.Error("singleton input")
	}
	// Constant series: flat fit.
	got = LinearTrend([]float64{4, 4, 4})
	for _, v := range got {
		if math.Abs(v-4) > 1e-9 {
			t.Errorf("constant series fit = %v", got)
		}
	}
}

func TestSeriesFuncs(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8}

	cs, err := apply(t, "cumsum", vals, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cs[7] != 36 || cs[0] != 1 {
		t.Errorf("cumsum = %v", cs)
	}

	ma, err := apply(t, "movavg", vals, 4, []float64{4})
	if err != nil {
		t.Fatal(err)
	}
	if ma[7] != 6.5 {
		t.Errorf("movavg = %v", ma)
	}
	if _, err := apply(t, "movavg", vals, 4, nil); err == nil {
		t.Error("movavg without window must fail")
	}
	if _, err := apply(t, "movavg", vals, 4, []float64{0}); err == nil {
		t.Error("movavg window 0 must fail")
	}

	lt, err := apply(t, "lintrend", vals, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lt[0]-1) > 1e-9 || math.Abs(lt[7]-8) > 1e-9 {
		t.Errorf("lintrend = %v", lt)
	}

	trend, err := apply(t, "stl_t", vals, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	seas, err := apply(t, "stl_s", vals, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	irr, err := apply(t, "stl_i", vals, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(trend[i]+seas[i]+irr[i]-vals[i]) > 1e-9 {
			t.Fatal("stl components must sum to the series")
		}
	}

	if _, err := Series("nosuch"); err == nil {
		t.Error("unknown series op must fail")
	}
}

func apply(t *testing.T, name string, vals []float64, sl int, params []float64) ([]float64, error) {
	t.Helper()
	f, err := Series(name)
	if err != nil {
		t.Fatal(err)
	}
	return f(vals, sl, params)
}

func TestIsBlackBox(t *testing.T) {
	for _, n := range []string{"stl_t", "stl_s", "stl_i", "movavg", "cumsum", "lintrend"} {
		if !IsBlackBox(n) {
			t.Errorf("IsBlackBox(%s) = false", n)
		}
	}
	if IsBlackBox("sum") || IsBlackBox("nosuch") {
		t.Error("sum is not a black box")
	}
}

func TestRegistry(t *testing.T) {
	info, ok := Lookup("stl_t")
	if !ok || info.Class != ClassBlackBox || info.CubeArgs != 1 {
		t.Errorf("Lookup(stl_t) = %+v, %v", info, ok)
	}
	info, ok = Lookup("shift")
	if !ok || info.Class != ClassShift || info.Params != 1 {
		t.Errorf("Lookup(shift) = %+v, %v", info, ok)
	}
	if _, ok := Lookup("frobnicate"); ok {
		t.Error("Lookup of unknown must fail")
	}
	names := Names()
	if len(names) != len(infos) {
		t.Errorf("Names() = %d entries, want %d", len(names), len(infos))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names() must be sorted")
		}
	}
	for _, c := range []Class{ClassScalar, ClassVector, ClassShift, ClassAggregation, ClassBlackBox, ClassDimension, ClassInvalid} {
		if c.String() == "" {
			t.Error("Class.String empty")
		}
	}
}

func TestSupportMatrix(t *testing.T) {
	// The chase supports everything.
	for _, n := range Names() {
		if !Supports(TargetChase, n) {
			t.Errorf("chase must support %s", n)
		}
	}
	// ETL has no native whole-series step.
	if Supports(TargetETL, "stl_t") {
		t.Error("ETL must not support stl_t natively")
	}
	if !Supports(TargetETL, "sum") || !Supports(TargetETL, "add") {
		t.Error("ETL must support aggregations and arithmetic")
	}
	if !Supports(TargetSQL, "stl_t") {
		t.Error("SQL supports stl_t via tabular functions")
	}
	if Supports(TargetSQL, "vsum0") {
		t.Error("SQL must not support padded vectorial operators (no outer joins)")
	}
	if !Supports(TargetETL, "vsum0") || !Supports(TargetFrame, "vsub0") || !Supports(TargetChase, "vsum0") {
		t.Error("ETL, frame and chase must support padded vectorial operators")
	}
	if p := Preference("vsum0"); p[0] != TargetFrame {
		t.Errorf("vsum0 preference = %v", p)
	}
	if Supports(TargetSQL, "frobnicate") {
		t.Error("unknown operator is unsupported")
	}
	// Preferences put frame first for black boxes, SQL first for aggregations.
	if p := Preference("stl_t"); p[0] != TargetFrame {
		t.Errorf("stl_t preference = %v", p)
	}
	if p := Preference("sum"); p[0] != TargetSQL {
		t.Errorf("sum preference = %v", p)
	}
	if p := Preference("add"); p[0] != TargetETL {
		t.Errorf("add preference = %v", p)
	}
	if p := Preference("shift"); p[0] != TargetSQL {
		t.Errorf("shift preference = %v", p)
	}
}
