package engine

import (
	"context"
	"testing"
	"time"

	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/workload"
)

// TestCompileCacheHitSkipsPipeline: registering the same program text
// against the same external schemas on a second engine must be served
// from the cache — no parse/analyze/generate spans, a hit counter
// instead of a miss, and the shared mapping identical by pointer.
func TestCompileCacheHitSkipsPipeline(t *testing.T) {
	ResetCompileCache()

	newEngine := func() (*Engine, *obs.Tracer, *obs.Registry) {
		tr, mx := obs.NewTracer(), obs.NewRegistry()
		e := New(WithTracer(tr), WithMetrics(mx))
		// Metrics flow through the compile span's context only when the
		// registry rides on it; RegisterProgram wires the tracer, so route
		// metrics through a per-call run later. Here we read counters off
		// the registry attached via context below.
		return e, tr, mx
	}

	e1, tr1, _ := newEngine()
	if err := e1.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	compile1 := findRoot(tr1, "compile")
	if compile1 == nil {
		t.Fatal("no compile span on first registration")
	}
	if compile1.Find("parse") == nil || compile1.Find("generate") == nil {
		t.Fatal("cold-cache compile skipped the pipeline")
	}

	e2, tr2, _ := newEngine()
	if err := e2.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	compile2 := findRoot(tr2, "compile")
	if compile2 == nil {
		t.Fatal("no compile span on second registration")
	}
	for _, phase := range []string{"parse", "analyze", "generate"} {
		if compile2.Find(phase) != nil {
			t.Errorf("cache hit still ran %s", phase)
		}
	}
	m1, _ := e1.Mapping("gdp")
	m2, _ := e2.Mapping("gdp")
	if m1 != m2 {
		t.Errorf("cache hit did not share the mapping instance")
	}

	// Both engines must still run correctly off the shared mapping, and
	// dispatch restratification must not corrupt it for the other engine.
	data := workload.GDPSource(workload.GDPConfig{Days: 60, Regions: 2})
	for _, e := range []*Engine{e1, e2} {
		for _, name := range []string{"PDR", "RGDPPC"} {
			if err := e.PutCube(data[name], time.Unix(0, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	g1, _ := e1.Cube("GDP")
	g2, _ := e2.Cube("GDP")
	if g1 == nil || g2 == nil || !g1.Equal(g2, model.Eps) {
		t.Errorf("engines sharing a cached mapping computed different GDP cubes")
	}
}

// TestCompileCacheMetrics: hit/miss counters accumulate in the metrics
// registry carried by the compile context.
func TestCompileCacheMetrics(t *testing.T) {
	ResetCompileCache()
	mx := obs.NewRegistry()
	ctx := obs.ContextWithMetrics(context.Background(), mx)

	src := "cube Z9(t: year) measure v\nZD := Z9 * 2\n"
	if _, err := CompileCached(ctx, src, nil, true); err != nil {
		t.Fatal(err)
	}
	if _, err := CompileCached(ctx, src, nil, true); err != nil {
		t.Fatal(err)
	}
	if hits := mx.Counter(obs.MetricCompileCacheHits).Value(); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
	if misses := mx.Counter(obs.MetricCompileCacheMisses).Value(); misses != 1 {
		t.Errorf("misses = %d, want 1", misses)
	}
	// A different fusion setting is a different compilation.
	if _, err := CompileCached(ctx, src, nil, false); err != nil {
		t.Fatal(err)
	}
	if misses := mx.Counter(obs.MetricCompileCacheMisses).Value(); misses != 2 {
		t.Errorf("misses after fusion flip = %d, want 2", misses)
	}
}

// TestSchemaFingerprint: the fingerprint must separate environments that
// compile differently and agree on identical ones.
func TestSchemaFingerprint(t *testing.T) {
	a := map[string]model.Schema{
		"A": model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
	}
	b := map[string]model.Schema{
		"A": model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TQuarter}}, "v"),
	}
	c := map[string]model.Schema{
		"A": model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "w"),
	}
	if SchemaFingerprint(a) != SchemaFingerprint(map[string]model.Schema{"A": a["A"]}) {
		t.Error("identical environments fingerprint differently")
	}
	if SchemaFingerprint(a) == SchemaFingerprint(b) {
		t.Error("dimension type change not reflected in fingerprint")
	}
	if SchemaFingerprint(a) == SchemaFingerprint(c) {
		t.Error("measure change not reflected in fingerprint")
	}
	if SchemaFingerprint(nil) == SchemaFingerprint(a) {
		t.Error("empty environment collides with non-empty one")
	}
}

func findRoot(tr *obs.Tracer, name string) *obs.Span {
	for _, r := range tr.Roots() {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// TestCompileCacheIsolation: an engine with a private compile cache (or
// none) shares nothing with the process-wide default — the isolation
// knob for multi-tenant deployments.
func TestCompileCacheIsolation(t *testing.T) {
	ResetCompileCache()

	// Tenant A warms the default cache.
	a := New()
	if err := a.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	if n := DefaultCompileCache().Len(); n != 1 {
		t.Fatalf("default cache holds %d entries, want 1", n)
	}

	// Tenant B uses a private cache: its registration must miss (full
	// pipeline) and land in its own cache, not the default.
	priv := NewCompileCache(16)
	mx := obs.NewRegistry()
	b := New(WithCompileCache(priv), WithMetrics(mx))
	if err := b.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	if got := mx.Counter(obs.MetricCompileCacheMisses).Value(); got != 1 {
		t.Errorf("private-cache engine misses = %d, want 1 (no sharing with default)", got)
	}
	if got := mx.Counter(obs.MetricCompileCacheHits).Value(); got != 0 {
		t.Errorf("private-cache engine hits = %d, want 0", got)
	}
	if priv.Len() != 1 || DefaultCompileCache().Len() != 1 {
		t.Errorf("cache sizes: private=%d default=%d, want 1 and 1", priv.Len(), DefaultCompileCache().Len())
	}

	// A second private-cache engine sharing tenant B's cache hits it.
	mx2 := obs.NewRegistry()
	b2 := New(WithCompileCache(priv), WithMetrics(mx2))
	if err := b2.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	if got := mx2.Counter(obs.MetricCompileCacheHits).Value(); got != 1 {
		t.Errorf("shared private cache hits = %d, want 1", got)
	}

	// WithCompileCache(nil) disables caching entirely.
	mx3 := obs.NewRegistry()
	c := New(WithCompileCache(nil), WithMetrics(mx3))
	if err := c.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	if got := mx3.Counter(obs.MetricCompileCacheMisses).Value(); got != 1 {
		t.Errorf("nil-cache engine misses = %d, want 1", got)
	}
	if DefaultCompileCache().Len() != 1 || priv.Len() != 1 {
		t.Errorf("nil-cache registration polluted a cache: default=%d priv=%d",
			DefaultCompileCache().Len(), priv.Len())
	}
}
