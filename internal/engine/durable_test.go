package engine

import (
	"context"
	"testing"
	"time"

	"exlengine/internal/store/durable"
	"exlengine/internal/workload"
)

// TestRunOverDurableStore drives the whole engine pipeline against the
// crash-safe store: register, load, run, then reopen the directory in a
// fresh process-equivalent (new engine, new store) and check that the
// results, the program re-registration and the write generation all
// carry across the restart.
func TestRunOverDurableStore(t *testing.T) {
	dir := t.TempDir()
	data := workload.GDPSource(workload.GDPConfig{Days: 100, Regions: 2})

	st, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := newGDPEngine(t, data, WithParallelDispatch(), WithStore(st))
	rep, err := e.Run(context.Background(), RunAt(time.Unix(100, 0)))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for _, name := range []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"} {
		c, ok := e.Cube(name)
		if !ok {
			t.Fatalf("derived cube %s missing after run", name)
		}
		want[name] = float64(c.Len())
	}
	genAfterRun := st.Generation()
	if len(rep.Plan) != 5 {
		t.Fatalf("plan = %v", rep.Plan)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a new store over the same directory, a new engine.
	st2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if g := st2.Generation(); g != genAfterRun {
		t.Fatalf("generation after reopen = %d, want %d", g, genAfterRun)
	}
	e2 := New(WithStore(st2))
	// Re-registering the same program against the persisted catalog must
	// succeed: the store already holds the program's own cubes.
	if err := e2.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatalf("re-registration against persisted catalog: %v", err)
	}
	// The previous run's results are readable without running anything.
	for name, n := range want {
		c, ok := e2.Cube(name)
		if !ok {
			t.Fatalf("derived cube %s lost across restart", name)
		}
		if float64(c.Len()) != n {
			t.Fatalf("cube %s has %d tuples after restart, want %v", name, c.Len(), n)
		}
	}
	// And a new run persists on top, atomically, bumping the generation
	// by exactly one PutAll.
	if _, err := e2.Run(context.Background(), RunAt(time.Unix(200, 0))); err != nil {
		t.Fatal(err)
	}
	if g := st2.Generation(); g != genAfterRun+1 {
		t.Fatalf("generation after second run = %d, want %d", g, genAfterRun+1)
	}
	// Historicity: the first run's results are still addressable as-of.
	old, ok := e2.CubeAsOf("GDP", time.Unix(150, 0))
	if !ok {
		t.Fatal("as-of read of first run's GDP lost")
	}
	if float64(old.Len()) != want["GDP"] {
		t.Fatal("as-of read returned the wrong version")
	}
}

// TestRegisterConflictStillRejected checks the re-registration fix did
// not open the door to genuine conflicts: a second program redefining
// another program's cube, or a persisted cube re-registered with
// different dimensions, must still fail.
func TestRegisterConflictStillRejected(t *testing.T) {
	e := New()
	if err := e.RegisterProgram("p1", "cube A(t: year) measure v\nB := A * 2\n"); err != nil {
		t.Fatal(err)
	}
	// Another program may not redefine p1's cubes.
	if err := e.RegisterProgram("p2", "cube A(t: year) measure v\n"); err == nil {
		t.Fatal("redeclaring another program's elementary cube must fail")
	}
	if err := e.RegisterProgram("p3", "cube C(t: year) measure v\nB := C * 3\n"); err == nil {
		t.Fatal("rederiving another program's derived cube must fail")
	}

	// Against a persisted catalog, same name with different dimensions
	// must fail even though idempotent re-registration is allowed.
	dir := t.TempDir()
	st, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(WithStore(st))
	if err := e2.RegisterProgram("p", "cube A(t: year) measure v\nB := A * 2\n"); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := durable.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e3 := New(WithStore(st2))
	err = e3.RegisterProgram("p", "cube A(t: year, r: string) measure v\nB := A * 2\n")
	if err == nil {
		t.Fatal("re-registration with different dimensions must fail")
	}
}
