package engine

import (
	"context"
	"testing"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/faults"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

// counterSum adds up a per-target labelled counter across all targets.
func counterSum(m *obs.Registry, name string) int64 {
	var total int64
	for _, t := range ops.AllTargets {
		total += m.Counter(obs.Label(name, "target", string(t))).Value()
	}
	return total
}

// TestTracedRunSpanTree asserts the span nesting the observability layer
// promises: run → determine/dispatch/persist, dispatch → fragment →
// attempt, and target-engine internals under the attempt that ran them.
func TestTracedRunSpanTree(t *testing.T) {
	// A compile-cache hit would skip the parse/analyze/generate children
	// asserted below; start from a cold cache to pin the miss-path shape.
	ResetCompileCache()
	data := workload.GDPSource(workload.GDPConfig{Days: 100, Regions: 2})
	tracer := obs.NewTracer()
	e := newGDPEngine(t, data, WithTracer(tracer))

	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	roots := tracer.Roots()
	// RegisterProgram traced a compile root before the run root.
	var compile, run *obs.Span
	for _, r := range roots {
		switch r.Name {
		case "compile":
			compile = r
		case "run":
			run = r
		}
	}
	if compile == nil {
		t.Fatalf("no compile root; roots: %v", names(roots))
	}
	for _, phase := range []string{"parse", "analyze", "generate", "graph"} {
		if compile.Find(phase) == nil {
			t.Errorf("compile has no %s child", phase)
		}
	}
	if run == nil {
		t.Fatalf("no run root; roots: %v", names(roots))
	}
	for _, phase := range []string{"determine", "dispatch", "persist"} {
		if run.Find(phase) == nil {
			t.Errorf("run has no %s span", phase)
		}
	}

	dispatchSpan := run.Find("dispatch")
	fragments := dispatchSpan.FindAll("fragment")
	if len(fragments) == 0 {
		t.Fatal("dispatch has no fragment spans")
	}
	sawTargetInternal := false
	for _, fr := range fragments {
		if fr.Parent() != dispatchSpan {
			t.Errorf("fragment %d not nested under dispatch", fr.ID)
		}
		cubes, _ := fr.Attr("cubes")
		attempts := fr.FindAll("attempt")
		if len(attempts) == 0 {
			t.Errorf("fragment %s has no attempt spans", cubes)
			continue
		}
		for _, a := range attempts {
			for _, inner := range []string{"chase.tgd", "sql.stmt", "etl.flow", "frame.program"} {
				if a.Find(inner) != nil {
					sawTargetInternal = true
				}
			}
		}
		if _, ok := fr.Attr("final"); !ok {
			t.Errorf("successful fragment %s has no final attr", cubes)
		}
	}
	if !sawTargetInternal {
		t.Error("no target-engine span nests under any attempt")
	}

	// Every span ended: durations are set, and the traced run left no
	// span open.
	for _, r := range roots {
		assertEnded(t, r)
	}
}

func names(spans []*obs.Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

func assertEnded(t *testing.T, s *obs.Span) {
	t.Helper()
	if s.Dur < 0 {
		t.Errorf("span %s has negative duration", s.Name)
	}
	for _, c := range s.Children() {
		assertEnded(t, c)
	}
}

// TestMetricsAgreeWithReport injects the acceptance faults (a transient
// SQL error and an ETL panic) and checks that the metrics registry and
// the run's FragmentReport tell the same story: same retry count, same
// fallback count, same panic count, one fragment counter per completed
// fragment.
func TestMetricsAgreeWithReport(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 200, Regions: 2})

	restore := faults.PanicETLStep("")
	defer restore()
	inj := faults.NewInjector(faults.Fault{
		Fragment: faults.AnyFragment, Attempt: 1, Target: ops.TargetSQL,
		Kind: faults.Error, Class: exlerr.Transient,
	})

	metrics := obs.NewRegistry()
	tracer := obs.NewTracer()
	e := newGDPEngine(t, data,
		WithMetrics(metrics),
		WithTracer(tracer),
		WithSleeper(func(ctx context.Context, d time.Duration) error { return nil }),
		WithDispatchMiddleware(inj.Middleware()))

	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("run must survive both faults: %v", err)
	}

	if got := metrics.Counter(obs.MetricRuns).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricRuns, got)
	}
	if got := metrics.Counter(obs.MetricRunErrors).Value(); got != 0 {
		t.Errorf("%s = %d, want 0", obs.MetricRunErrors, got)
	}
	if got := counterSum(metrics, obs.MetricRetries); got != int64(rep.Retries) {
		t.Errorf("retry counter = %d, report says %d", got, rep.Retries)
	}
	if got := counterSum(metrics, obs.MetricFallbacks); got != int64(rep.Fallbacks) {
		t.Errorf("fallback counter = %d, report says %d", got, rep.Fallbacks)
	}
	if got := counterSum(metrics, obs.MetricFragments); got != int64(len(rep.Fragments)) {
		t.Errorf("fragment counter = %d, report has %d fragments", got, len(rep.Fragments))
	}
	var panics int
	for _, fr := range rep.Fragments {
		for _, at := range fr.Attempts {
			if at.Panic {
				panics++
			}
		}
	}
	if got := metrics.Counter(obs.MetricPanics).Value(); got != int64(panics) {
		t.Errorf("panic counter = %d, report records %d panics", got, panics)
	}

	// Per-fragment success counters split by final target.
	perTarget := make(map[ops.Target]int64)
	for _, fr := range rep.Fragments {
		perTarget[fr.Final]++
	}
	for target, want := range perTarget {
		got := metrics.Counter(obs.Label(obs.MetricFragments, "target", string(target))).Value()
		if got != want {
			t.Errorf("fragment counter for %s = %d, report says %d", target, got, want)
		}
	}

	// The trace shows the fault handling too: a backoff span for the
	// retry and a failed ETL attempt before the fallback one.
	var run *obs.Span
	for _, r := range tracer.Roots() {
		if r.Name == "run" {
			run = r
		}
	}
	if run == nil {
		t.Fatal("no run root")
	}
	if len(run.FindAll("backoff")) != rep.Retries {
		t.Errorf("backoff spans = %d, want %d", len(run.FindAll("backoff")), rep.Retries)
	}
	sawFailedAttempt := false
	for _, a := range run.FindAll("attempt") {
		if a.Err != "" {
			sawFailedAttempt = true
		}
	}
	if !sawFailedAttempt {
		t.Error("no attempt span records an error under fault injection")
	}
}

// TestTracedParallelDispatchRace exercises the tracer and the metrics
// registry under wave-parallel dispatch; meaningful under -race.
func TestTracedParallelDispatchRace(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 120, Regions: 2})
	tracer := obs.NewTracer()
	metrics := obs.NewRegistry()
	e := newGDPEngine(t, data,
		WithParallelDispatch(), WithTracer(tracer), WithMetrics(metrics))

	for i := 0; i < 3; i++ {
		if _, err := e.Run(context.Background(), RunAt(time.Unix(int64(i+1), 0))); err != nil {
			t.Fatal(err)
		}
	}
	if got := metrics.Counter(obs.MetricRuns).Value(); got != 3 {
		t.Errorf("runs counter = %d, want 3", got)
	}
}

// TestRunOptionEquivalence checks that the unified Run API is
// deterministic across engines and that its options compose.
func TestRunOptionEquivalence(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 100, Regions: 2})
	t0 := time.Unix(10, 0)

	oldE := newGDPEngine(t, data)
	if _, err := oldE.Run(context.Background(), RunAt(t0)); err != nil {
		t.Fatal(err)
	}
	newE := newGDPEngine(t, data)
	if _, err := newE.Run(context.Background(), RunAt(t0)); err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"} {
		a, ok := oldE.Cube(rel)
		if !ok {
			t.Fatalf("first engine: cube %s missing", rel)
		}
		b, ok := newE.Cube(rel)
		if !ok {
			t.Fatalf("second engine: cube %s missing", rel)
		}
		if !a.Equal(b, 0) {
			t.Errorf("%s differs between two identical Run(RunAt) calls", rel)
		}
	}

	// RunOn pins the target the way RunAllOn did.
	onE := newGDPEngine(t, data)
	rep, err := onE.Run(context.Background(), RunOn(ops.TargetChase))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Subgraphs {
		if s.Target != ops.TargetChase {
			t.Errorf("RunOn(chase) dispatched to %s", s.Target)
		}
	}

	// RunChanged narrows the plan the way Recalculate did.
	chE := newGDPEngine(t, data)
	if _, err := chE.Run(context.Background(), RunAt(time.Unix(19, 0))); err != nil {
		t.Fatal(err)
	}
	rep, err = chE.Run(context.Background(), RunChanged("RGDPPC"), RunAt(time.Unix(20, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Plan) == 0 || len(rep.Plan) >= 5 {
		t.Errorf("RunChanged(RGDPPC) plan = %v, want a proper subset", rep.Plan)
	}
}

// TestRunTracedAndMetered checks the per-call observability overrides.
func TestRunTracedAndMetered(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 50, Regions: 1})
	engTracer := obs.NewTracer()
	e := newGDPEngine(t, data, WithTracer(engTracer))

	callTracer := obs.NewTracer()
	callMetrics := obs.NewRegistry()
	if _, err := e.Run(context.Background(),
		RunTraced(callTracer), RunMetered(callMetrics)); err != nil {
		t.Fatal(err)
	}
	var runRoots int
	for _, r := range callTracer.Roots() {
		if r.Name == "run" {
			runRoots++
		}
	}
	if runRoots != 1 {
		t.Errorf("per-call tracer has %d run roots, want 1", runRoots)
	}
	for _, r := range engTracer.Roots() {
		if r.Name == "run" {
			t.Error("engine tracer recorded the run despite RunTraced override")
		}
	}
	if got := callMetrics.Counter(obs.MetricRuns).Value(); got != 1 {
		t.Errorf("per-call metrics runs = %d, want 1", got)
	}
}
