// Package engine implements the EXLEngine orchestrator of Section 6: a
// metadata-driven system in which cube definitions and EXL programs guide
// the runtime behaviour. Statisticians' programs are registered and
// validated; the determination engine decides what must be calculated when
// elementary cubes change; the translation engine turns the affected
// statements into schema mappings (offline, so metadata handling does not
// affect calculation time); and the dispatcher executes each subgraph on
// its target engine, with results flowing back into the versioned store.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"exlengine/internal/determine"
	"exlengine/internal/dispatch"
	"exlengine/internal/etl"
	"exlengine/internal/exl"
	"exlengine/internal/governor"
	"exlengine/internal/mapping"
	"exlengine/internal/matlabgen"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
	"exlengine/internal/rgen"
	"exlengine/internal/sqlgen"
	"exlengine/internal/store"
)

// CubeStore is the storage contract the engine runs against: a
// versioned cube repository with zero-copy snapshot reads and atomic
// multi-cube writes. The in-memory store.Store is the default; the
// durable store (internal/store/durable) implements the same contract
// with a write-ahead log and segment snapshots, so persistence is
// swappable behind this one interface.
type CubeStore interface {
	// Declare registers a cube schema; re-declaring identical
	// dimensions is a no-op.
	Declare(sch model.Schema) error
	// Schema returns the declared schema of a cube.
	Schema(name string) (model.Schema, bool)
	// Names returns the declared cube names, sorted.
	Names() []string
	// Put stores a new version of the cube, valid from asOf.
	Put(c *model.Cube, asOf time.Time) error
	// PutAll stores a version of every cube atomically: all visible or
	// none, the guarantee Run's persist step relies on.
	PutAll(cubes map[string]*model.Cube, asOf time.Time) error
	// Get returns the current version of the cube, frozen and shared.
	Get(name string) (*model.Cube, bool)
	// GetAsOf returns the version valid at instant t.
	GetAsOf(name string, t time.Time) (*model.Cube, bool)
	// SnapshotVersioned returns the current version of every cube plus
	// the write generation the snapshot was taken at, atomically.
	SnapshotVersioned() (map[string]*model.Cube, uint64)
	// Generation returns the store's write generation.
	Generation() uint64
}

// Engine is a complete EXLEngine instance.
type Engine struct {
	// mu guards the metadata catalog (programs, mappings, graph) and the
	// engine configuration. Runs snapshot that state under the lock and
	// then dispatch outside it, so admitted runs execute concurrently —
	// the governor, not this mutex, bounds run concurrency.
	mu       sync.Mutex
	store    CubeStore
	programs map[string]*exl.Analyzed
	mappings map[string]*mapping.Mapping
	graph    *determine.Graph
	disp     dispatch.Dispatcher
	tracer   *obs.Tracer
	metrics  *obs.Registry
	gov      *governor.Governor
	govCfg   *governor.Config // accumulated by governor options until New builds gov
	cache    *CompileCache
	cacheSet bool // WithCompileCache was used (nil means "disable caching")

	// memoMu guards memo, the per-derived-cube record of the input
	// generations it was last computed at (incremental runs).
	memoMu sync.Mutex
	memo   map[string]*cubeMemo

	storeClosed bool // Shutdown closed the store already
}

// Option configures an Engine.
type Option func(*Engine)

// WithStore substitutes the engine's cube store — e.g. a crash-safe
// durable store opened with durable.Open. The default is a fresh
// in-memory store.Store. The engine takes ownership of writes: every
// run's results are persisted through the store's atomic PutAll.
func WithStore(s CubeStore) Option {
	return func(e *Engine) {
		if s != nil {
			e.store = s
		}
	}
}

// WithParallelDispatch enables concurrent execution of independent
// subgraphs.
func WithParallelDispatch() Option {
	return func(e *Engine) { e.disp.Parallel = true }
}

// WithRetryPolicy overrides the dispatcher's retry policy for transient
// fragment failures (default: dispatch.DefaultRetry).
func WithRetryPolicy(p dispatch.RetryPolicy) Option {
	return func(e *Engine) { e.disp.Retry = p }
}

// WithoutDegradation disables fallback re-routing: a fragment whose
// target fails (after retries) fails the run instead of being re-run on
// another permitted target.
func WithoutDegradation() Option {
	return func(e *Engine) { e.disp.Degrade = false }
}

// WithFragmentTimeout bounds each fragment attempt.
func WithFragmentTimeout(d time.Duration) Option {
	return func(e *Engine) { e.disp.FragmentTimeout = d }
}

// WithSleeper injects the backoff sleeper (tests use a fake clock).
func WithSleeper(s dispatch.Sleeper) Option {
	return func(e *Engine) { e.disp.Sleep = s }
}

// WithDispatchMiddleware wraps fragment execution, outermost first —
// the hook the fault-injection harness (internal/faults) uses.
func WithDispatchMiddleware(mw ...dispatch.Middleware) Option {
	return func(e *Engine) { e.disp.Middleware = append(e.disp.Middleware, mw...) }
}

// WithTracer attaches a tracer: every compilation and run records a span
// tree (compile → parse/analyze/generate, run → determine → dispatch →
// fragments → attempts → target internals). A nil tracer is ignored.
func WithTracer(t *obs.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// WithMetrics attaches a metrics registry: runs, fragments per target,
// retries, fallbacks, tuples moved and per-target latency histograms
// accumulate there. A nil registry is ignored.
func WithMetrics(m *obs.Registry) Option {
	return func(e *Engine) { e.metrics = m }
}

// WithCompileCache substitutes the engine's compile cache: a private
// cache isolates this engine's compilations from every other engine in
// the process (per-tenant isolation), and nil disables caching entirely.
// The default is the shared process-wide cache.
func WithCompileCache(c *CompileCache) Option {
	return func(e *Engine) {
		e.cache = c
		e.cacheSet = true
	}
}

// WithGovernor substitutes a fully built resource governor (admission
// control, memory budgets, circuit breakers). It overrides the
// piecewise governor options below. A nil governor is ignored.
func WithGovernor(g *governor.Governor) Option {
	return func(e *Engine) {
		if g != nil {
			e.gov = g
		}
	}
}

// ensureGovCfg lazily allocates the option-accumulated governor config.
func (e *Engine) ensureGovCfg() *governor.Config {
	if e.govCfg == nil {
		e.govCfg = &governor.Config{}
	}
	return e.govCfg
}

// MaxConcurrentRuns bounds how many runs execute at once; further runs
// queue for admission (bounded queue, deadline-aware) and are shed with
// typed exlerr.Overload errors past that. Zero or negative: unlimited.
func MaxConcurrentRuns(n int) Option {
	return func(e *Engine) { e.ensureGovCfg().MaxConcurrent = n }
}

// MemoryBudget bounds the process-wide bytes of cube materialization
// reserved by concurrent runs; a run that cannot fit is first degraded
// to sequential dispatch and then, if still too large, rejected with a
// typed overload error. Zero or negative: unlimited.
func MemoryBudget(bytes int64) Option {
	return func(e *Engine) { e.ensureGovCfg().MemoryBudget = bytes }
}

// PerRunMemoryBudget bounds a single run's reservation below the
// process-wide budget.
func PerRunMemoryBudget(bytes int64) Option {
	return func(e *Engine) { e.ensureGovCfg().PerRunBudget = bytes }
}

// WithBreakers configures the per-backend circuit breakers the
// dispatcher consults: a backend that keeps failing is skipped by every
// run until a probe succeeds.
func WithBreakers(cfg governor.BreakerConfig) Option {
	return func(e *Engine) { e.ensureGovCfg().Breaker = cfg }
}

// New returns an empty engine. Fault tolerance is on by default:
// transient fragment failures retry under dispatch.DefaultRetry, and a
// target that keeps failing degrades to a fallback target permitted by
// the operator-support matrix.
func New(opts ...Option) *Engine {
	e := &Engine{
		store:    store.New(),
		programs: make(map[string]*exl.Analyzed),
		mappings: make(map[string]*mapping.Mapping),
	}
	e.disp.Retry = dispatch.DefaultRetry
	e.disp.Degrade = true
	for _, o := range opts {
		o(e)
	}
	if !e.cacheSet {
		e.cache = defaultCompileCache
	}
	if e.gov == nil {
		if e.govCfg != nil {
			e.gov = governor.New(*e.govCfg)
		} else {
			// Unconfigured engines still get a zero-bound governor so
			// Shutdown can drain in-flight runs, but with breakers off to
			// preserve the historical retry/fallback behaviour.
			e.gov = governor.New(governor.Config{Breaker: governor.BreakerConfig{FailureThreshold: -1}})
		}
	}
	e.gov.SetMetrics(e.metrics)
	e.disp.Breakers = e.gov.Breakers()
	return e
}

// Governor returns the engine's resource governor (never nil).
func (e *Engine) Governor() *governor.Governor {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gov
}

// Metrics returns the registry attached with WithMetrics, or nil. Every
// instrument of this engine — runs, dispatch, governor, store — lands
// there, so a per-tenant engine's registry is that tenant's whole
// metrics scope.
func (e *Engine) Metrics() *obs.Registry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.metrics
}

// Tracer returns the tracer attached with WithTracer, or nil.
func (e *Engine) Tracer() *obs.Tracer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tracer
}

// DeclareCube registers an elementary cube schema in the metadata catalog.
func (e *Engine) DeclareCube(sch model.Schema) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.Declare(sch)
}

// ErrProgramRegistered reports a RegisterProgram under a name that is
// already taken. The returned error wraps it with the program name, so
// callers classify with errors.Is rather than matching message text.
var ErrProgramRegistered = errors.New("already registered")

// ErrCubeNotDeclared reports a reference to a cube name absent from the
// catalog: no declaration and no registered program derives it. Wrapped
// with the cube name; classify with errors.Is.
var ErrCubeNotDeclared = errors.New("not declared")

// RegisterProgram parses, analyzes and translates an EXL program, adding
// its cubes to the global dependency graph. A program may reference cubes
// declared in the catalog or derived by previously registered programs.
// Translation to schema mappings happens here, offline — "the system
// decouples their computational time from the one of the actual
// statistical calculation".
func (e *Engine) RegisterProgram(name, src string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ctx := context.Background()
	if e.tracer != nil {
		ctx = obs.ContextWithTracer(ctx, e.tracer)
	}
	if e.metrics != nil {
		ctx = obs.ContextWithMetrics(ctx, e.metrics)
	}
	ctx, span := obs.StartSpan(ctx, "compile", obs.String("program", name))
	err := e.registerLocked(ctx, name, src)
	span.EndErr(err)
	return err
}

// registerLocked is RegisterProgram behind the compile span; e.mu held.
func (e *Engine) registerLocked(ctx context.Context, name, src string) error {
	if _, dup := e.programs[name]; dup {
		return fmt.Errorf("engine: program %s %w", name, ErrProgramRegistered)
	}
	external := make(map[string]model.Schema)
	for _, n := range e.store.Names() {
		sch, _ := e.store.Schema(n)
		external[n] = sch
	}
	graphOwned := make(map[string]bool)
	if e.graph != nil {
		for n, sch := range e.graph.Schemas() {
			external[n] = sch
			graphOwned[n] = true
		}
	}
	// A durable store can already hold this program's own cubes from a
	// prior process run. Names the program defines itself — declarations
	// and statement left-hand sides — are removed from the external set
	// so re-registration against a persisted catalog is idempotent.
	// Cubes owned by another registered program stay external and still
	// conflict; schema agreement with the persisted catalog is enforced
	// by the Declare pass below. A parse error here is ignored: compile
	// reports it properly.
	if prog, perr := exl.Parse(src); perr == nil {
		for _, d := range prog.Decls {
			if !graphOwned[d.Name] {
				delete(external, d.Name)
			}
		}
		for _, s := range prog.Stmts {
			if !graphOwned[s.Lhs] {
				delete(external, s.Lhs)
			}
		}
	}
	// Parse/analyze/generate through the engine's compile cache (the
	// shared process-wide one unless WithCompileCache injected a private
	// or nil cache): an engine re-registering a catalog already compiled
	// elsewhere (same source, same external schemas) reuses the shared
	// mapping.
	c, err := e.cache.Compile(ctx, src, external, true)
	if err != nil {
		return err
	}
	a, m := c.Analyzed, c.Mapping
	// A program may not redeclare a cube that already exists in the
	// catalog: elementary cubes are owned by the metadata catalog, derived
	// ones by their defining program. (Analyze already rejects this; the
	// check keeps the engine-level error explicit.)
	for _, d := range a.Program.Decls {
		if _, exists := external[d.Name]; exists {
			return fmt.Errorf("engine: program %s redeclares existing cube %s", name, d.Name)
		}
	}

	candidate := make(map[string]*exl.Analyzed, len(e.programs)+1)
	for k, v := range e.programs {
		candidate[k] = v
	}
	candidate[name] = a
	_, dspan := obs.StartSpan(ctx, "graph")
	graph, err := determine.Build(candidate)
	dspan.EndErr(err)
	if err != nil {
		return err
	}

	// Commit: declare every cube schema in the store.
	for cubeName, sch := range a.Schemas {
		if err := e.store.Declare(sch.Rename(cubeName)); err != nil {
			return err
		}
	}
	e.programs[name] = a
	e.mappings[name] = m
	e.graph = graph
	return nil
}

// Programs returns the registered program names, sorted.
func (e *Engine) Programs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.programs))
	for n := range e.programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Mapping returns the schema mapping generated for a program.
func (e *Engine) Mapping(program string) (*mapping.Mapping, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.mappings[program]
	return m, ok
}

// PutCube stores a new version of a cube, valid from asOf.
func (e *Engine) PutCube(c *model.Cube, asOf time.Time) error {
	return e.store.Put(c, asOf)
}

// LoadCSV reads a cube from CSV under its declared schema and stores it as
// a new version valid from asOf.
func (e *Engine) LoadCSV(name string, r io.Reader, asOf time.Time) error {
	sch, ok := e.store.Schema(name)
	if !ok {
		return fmt.Errorf("engine: cube %s is %w", name, ErrCubeNotDeclared)
	}
	c, err := store.ReadCSV(r, sch)
	if err != nil {
		return err
	}
	return e.store.Put(c, asOf)
}

// Cube returns the current version of a cube.
func (e *Engine) Cube(name string) (*model.Cube, bool) { return e.store.Get(name) }

// CubeNames returns every declared cube name (elementary and derived),
// sorted.
func (e *Engine) CubeNames() []string { return e.store.Names() }

// Schema returns the declared schema of a cube.
func (e *Engine) Schema(name string) (model.Schema, bool) { return e.store.Schema(name) }

// CubeAsOf returns the cube version valid at instant t.
func (e *Engine) CubeAsOf(name string, t time.Time) (*model.Cube, bool) {
	return e.store.GetAsOf(name, t)
}

// SubgraphInfo describes one dispatched subgraph of a run.
type SubgraphInfo struct {
	Target ops.Target
	Cubes  []string
}

// Report describes what a run did, including the fault-tolerance record:
// per-fragment attempts, targets used, retries and fallback decisions.
type Report struct {
	Plan      []string // recalculated cubes, in execution order
	Subgraphs []SubgraphInfo
	// Fragments lists every dispatch attempt (one entry per subgraph),
	// including retries, panics and fallback targets.
	Fragments []dispatch.FragmentReport
	Retries   int // same-target retries across the run
	Fallbacks int // fallback targets tried across the run
	// Generation is the store write generation the run's snapshot was
	// taken at (see store.Store.Generation).
	Generation uint64
	// Queued is how long the run waited for an admission slot.
	Queued time.Duration
	// MemReserved is the bytes the run reserved against the memory
	// budget (inputs-derived estimate plus the materialized results).
	MemReserved int64
	// MemDegraded reports that parallel dispatch was turned off for this
	// run to fit the memory budget.
	MemDegraded bool
	// Incremental reports that the run was delta-driven (WithIncremental
	// on a delta-capable store); Skipped lists the derived cubes it did
	// not recompute because their memoized input generations were
	// current.
	Incremental bool
	Skipped     []string
	Elapsed     time.Duration
}

// runConfig collects the settings of one unified Run call.
type runConfig struct {
	changed     []string
	assign      determine.Assigner
	asOf        time.Time
	tracer      *obs.Tracer
	metrics     *obs.Registry
	incremental bool
}

// RunOption configures one Run call.
type RunOption func(*runConfig)

// RunChanged restricts the run to the consequences of the named changed
// elementary cubes: the determination engine recomputes exactly the
// affected derived cubes. Without it, Run recalculates everything.
func RunChanged(names ...string) RunOption {
	return func(c *runConfig) { c.changed = names }
}

// RunAt stamps the run's results with an explicit version timestamp
// (historicity control). Default: time.Now().
func RunAt(asOf time.Time) RunOption {
	return func(c *runConfig) { c.asOf = asOf }
}

// RunOn forces every statement onto a single fixed target system instead
// of per-statement preferred targets.
func RunOn(t ops.Target) RunOption {
	return func(c *runConfig) { c.assign = determine.FixedAssigner(t) }
}

// RunTraced records this run's span tree into t, overriding (for this
// call only) any engine-level WithTracer.
func RunTraced(t *obs.Tracer) RunOption {
	return func(c *runConfig) { c.tracer = t }
}

// RunMetered accumulates this run's metrics into m, overriding (for this
// call only) any engine-level WithMetrics.
func RunMetered(m *obs.Registry) RunOption {
	return func(c *runConfig) { c.metrics = m }
}

// WithIncremental makes the run delta-driven: derived cubes whose
// memoized input generations are still current are skipped outright,
// and the rest are recomputed from the deltas of their inputs where the
// mapping shape permits, falling back to per-fragment full recomputes
// where it does not. Results are byte-identical to a full run. Requires
// a store implementing DeltaStore (the in-memory and durable stores
// do); with any other store the option is ignored and the run is full.
func WithIncremental() RunOption {
	return func(c *runConfig) { c.incremental = true }
}

// Run executes a recalculation under the context: by default the full
// plan of every program at time.Now() on preferred targets; options
// narrow the plan (RunChanged), pin the version timestamp (RunAt), fix
// the target (RunOn) or attach per-run observability (RunTraced,
// RunMetered). Cancellation or deadline expiry aborts the dispatch
// mid-run without persisting any result.
func (e *Engine) Run(ctx context.Context, opts ...RunOption) (*Report, error) {
	cfg := runConfig{assign: determine.AssignByPreference, asOf: time.Now()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tracer == nil {
		cfg.tracer = e.tracer
	}
	if cfg.metrics == nil {
		cfg.metrics = e.metrics
	}
	if cfg.tracer != nil {
		ctx = obs.ContextWithTracer(ctx, cfg.tracer)
	}
	if cfg.metrics != nil {
		ctx = obs.ContextWithMetrics(ctx, cfg.metrics)
	}
	met := obs.MetricsFrom(ctx)

	// Admission control: the governor grants a slot, queues the run, or
	// sheds it with a typed overload error before any work happens.
	e.mu.Lock()
	gov := e.gov
	e.mu.Unlock()
	ticket, err := gov.Admit(ctx, 1)
	if err != nil {
		met.Counter(obs.MetricRuns).Add(1)
		met.Counter(obs.MetricRunErrors).Add(1)
		return nil, err
	}
	defer ticket.Release()

	ctx, span := obs.StartSpan(ctx, "run")
	if cfg.changed != nil {
		span.SetAttr(obs.Strings("changed", cfg.changed))
	}
	rep, err := e.run(ctx, &cfg, ticket)
	met.Counter(obs.MetricRuns).Add(1)
	if err != nil {
		met.Counter(obs.MetricRunErrors).Add(1)
	}
	span.EndErr(err)
	return rep, err
}

// Shutdown gracefully stops the engine: admission closes (new runs are
// shed with typed overload errors), in-flight runs drain, and a closable
// store — e.g. the durable store, which flushes its group-commit queue
// and closes its WAL — is closed. The context bounds the drain; on
// expiry the store is left open (in-flight runs still use it) and the
// context error is returned. Idempotent once it has returned nil.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	gov, st := e.gov, e.store
	e.mu.Unlock()
	if err := gov.Shutdown(ctx); err != nil {
		return err
	}
	e.mu.Lock()
	closed := e.storeClosed
	e.storeClosed = true
	e.mu.Unlock()
	if closed {
		return nil
	}
	if c, ok := st.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) run(ctx context.Context, cfg *runConfig, ticket *governor.Ticket) (*Report, error) {
	changed, assign, asOf := cfg.changed, cfg.assign, cfg.asOf
	// Snapshot the engine state under the lock, then dispatch and persist
	// outside it: the graph and mappings are immutable once built (a
	// registration swaps whole pointers), the store synchronizes itself,
	// and the dispatcher copy is used by value — so concurrent admitted
	// runs really do run concurrently.
	e.mu.Lock()
	if e.graph == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: no programs registered")
	}
	graph := e.graph
	disp := e.disp
	st := e.store
	schemas := e.allSchemasLocked()
	progNames := make([]string, 0, len(e.mappings))
	for n := range e.mappings {
		progNames = append(progNames, n)
	}
	sort.Strings(progNames)
	mappings := make([]*mapping.Mapping, len(progNames))
	for i, n := range progNames {
		mappings[i] = e.mappings[n]
	}
	e.mu.Unlock()

	tgds := func(cube string) []*mapping.Tgd { return tgdsIn(mappings, cube) }
	start := time.Now()

	_, detSpan := obs.StartSpan(ctx, "determine")
	var plan []determine.StmtRef
	var err error
	if changed == nil {
		plan = graph.FullPlan()
	} else {
		plan, err = graph.Affected(changed)
		if err != nil {
			detSpan.EndErr(err)
			return nil, err
		}
	}

	// The snapshot shares the store's frozen cube versions: taking it
	// costs O(#cubes), not O(tuples), and the generation stamps which
	// store state the run read. Incremental runs also read the per-cube
	// generations the staleness walk and the delta queries run against.
	ds, _ := st.(DeltaStore)
	var snap map[string]*model.Cube
	var gen uint64
	var cubeGens map[string]uint64
	if ds != nil {
		snap, gen, cubeGens = ds.SnapshotWithGenerations()
	} else {
		snap, gen = st.SnapshotVersioned()
	}

	// Incremental mode: walk the dependency graph in plan order, keep
	// only the stale cubes, and build the delta front the dispatcher
	// maintains them from.
	var incrPlan *dispatch.IncrPlan
	var skippedCubes []string
	incremental := cfg.incremental && ds != nil
	if incremental {
		plan, skippedCubes, incrPlan = e.pruneStale(graph, plan, snap, cubeGens, ds)
		obs.MetricsFrom(ctx).Counter(obs.MetricIncrSkippedCubes).Add(int64(len(skippedCubes)))
		detSpan.SetAttr(obs.Int("skipped", len(skippedCubes)))
		if len(plan) == 0 {
			// Everything is current: nothing to dispatch, nothing to persist.
			detSpan.SetAttr(obs.Int("plan", 0))
			detSpan.End()
			return &Report{
				Generation:  gen,
				Queued:      ticket.Queued(),
				Incremental: true,
				Skipped:     skippedCubes,
				Elapsed:     time.Since(start),
			}, nil
		}
	}

	var subs []determine.Subgraph
	if disp.Parallel {
		// Component-aware partitioning keeps independent programs in
		// separate subgraphs so the wave scheduler can overlap them.
		subs = determine.PartitionByComponent(plan, assign, graph)
	} else {
		subs = determine.Partition(plan, assign)
	}
	detSpan.SetAttr(obs.Int("plan", len(plan)))
	detSpan.SetAttr(obs.Int("subgraphs", len(subs)))
	detSpan.End()

	// Declared cubes without data yet behave as empty relations, so a
	// program can be validated and run before all inputs have arrived.
	// They are frozen like every other snapshot member: targets only read
	// the snapshot.
	for name, sch := range schemas {
		if _, ok := snap[name]; !ok {
			snap[name] = model.NewCube(sch).Freeze()
		}
	}

	// Charge the run's estimated materialization against the memory
	// budget before dispatching. Snapshot reads share the store's frozen
	// cubes, so the run's new memory is the intermediates and results the
	// targets materialize — estimated from the input working set. When
	// the full-parallel estimate (every wave's intermediates live at
	// once) does not fit, degrade to sequential dispatch at half the
	// estimate before rejecting the run outright.
	memDegraded := false
	if est := snapshotEstimate(snap); est > 0 {
		if rerr := ticket.Reserve(est); rerr != nil {
			if ticket.Reserve(est/2) != nil {
				return nil, rerr
			}
			disp.Parallel = false
			memDegraded = true
			obs.MetricsFrom(ctx).Counter(obs.MetricMemDegraded).Add(1)
		}
	}

	var results map[string]*model.Cube
	var drep *dispatch.Report
	if incrPlan != nil {
		results, drep, err = disp.RunContextIncr(ctx, subs, tgds, schemas, snap, incrPlan)
	} else {
		results, drep, err = disp.RunContext(ctx, subs, tgds, schemas, snap)
	}
	if err != nil {
		return nil, err
	}

	// Charge the materialized results before they are adopted by the
	// store: a run whose actual output overshoots the estimate is shed
	// here, typed, instead of persisting past the budget.
	var outEst int64
	for _, c := range results {
		outEst += c.MemEstimate()
	}
	if delta := outEst - ticket.Reserved(); delta > 0 {
		if rerr := ticket.Reserve(delta); rerr != nil {
			return nil, rerr
		}
	}

	// Persist results as new versions, atomically: either every derived
	// cube of the run becomes visible or none does, so a failed write
	// never leaves the store with a half-applied run. The result cubes
	// are owned exclusively by this run, so freezing them lets the store
	// adopt them without another deep copy. Incremental runs drop the
	// outputs that are the reused previous versions (same frozen cube):
	// re-storing them would only churn version history and invalidate
	// downstream memos for nothing.
	toPersist := results
	if incremental {
		toPersist = make(map[string]*model.Cube, len(results))
		for name, c := range results {
			if snap[name] != c {
				toPersist[name] = c
			}
		}
	}
	_, perSpan := obs.StartSpan(ctx, "persist", obs.Int("cubes", len(toPersist)))
	for _, c := range toPersist {
		c.Freeze()
	}
	commitGen := gen
	if ds != nil {
		g, err := ds.PutAllGen(toPersist, asOf)
		if err != nil {
			perSpan.EndErr(err)
			return nil, err
		}
		commitGen = g
	} else if err := st.PutAll(toPersist, asOf); err != nil {
		perSpan.EndErr(err)
		return nil, err
	}
	perSpan.End()

	// Memoize the input generations this run's outputs were computed at,
	// so the next incremental run knows what is stale. Full runs prime
	// the memos too — an incremental run right after one skips everything
	// untouched since.
	if ds != nil {
		persisted := make(map[string]bool, len(toPersist))
		for name := range toPersist {
			persisted[name] = true
		}
		e.updateMemos(graph, plan, cubeGens, commitGen, persisted)
	}

	rep := &Report{
		Generation:  gen,
		Incremental: incremental,
		Skipped:     skippedCubes,
		Fragments:   drep.Fragments,
		Retries:     drep.Retries(),
		Fallbacks:   drep.Fallbacks(),
		Queued:      ticket.Queued(),
		MemReserved: ticket.Reserved(),
		MemDegraded: memDegraded,
		Elapsed:     time.Since(start),
	}
	for _, ref := range plan {
		rep.Plan = append(rep.Plan, ref.Cube())
	}
	for _, s := range subs {
		info := SubgraphInfo{Target: s.Target}
		for _, ref := range s.Stmts {
			info.Cubes = append(info.Cubes, ref.Cube())
		}
		rep.Subgraphs = append(rep.Subgraphs, info)
	}
	return rep, nil
}

// allSchemasLocked merges the graph's cube schemas with the auxiliary
// relation schemas of every program mapping; e.mu held.
func (e *Engine) allSchemasLocked() map[string]model.Schema {
	out := make(map[string]model.Schema)
	if e.graph != nil {
		for n, sch := range e.graph.Schemas() {
			out[n] = sch
		}
	}
	for _, m := range e.mappings {
		for n, sch := range m.Schemas {
			if _, ok := out[n]; !ok {
				out[n] = sch
			}
		}
	}
	return out
}

// tgdsIn returns the tgds generated for a derived cube's statement,
// auxiliaries included, in stratification order, from the run's
// snapshotted mappings (a cube is defined by exactly one program).
func tgdsIn(mappings []*mapping.Mapping, cube string) []*mapping.Tgd {
	for _, m := range mappings {
		var out []*mapping.Tgd
		for _, t := range m.Tgds {
			if t.Stmt == cube {
				out = append(out, t)
			}
		}
		if len(out) > 0 {
			return out
		}
	}
	return nil
}

// snapshotEstimate sums the memory estimates of the snapshot's cubes —
// the working set the run's targets read and re-materialize from.
func snapshotEstimate(snap map[string]*model.Cube) int64 {
	var n int64
	for _, c := range snap {
		n += c.MemEstimate()
	}
	return n
}

// Artifact kinds for Translate.
const (
	ArtifactTgds   = "tgds"
	ArtifactSQL    = "sql"
	ArtifactR      = "r"
	ArtifactMatlab = "matlab"
	ArtifactETL    = "etl"
)

// Translate renders a registered program's schema mapping as an executable
// artifact for the given kind: the tgds in logic notation, a SQL script,
// R or Matlab source, or the ETL job metadata (JSON).
func (e *Engine) Translate(program, kind string) (string, error) {
	e.mu.Lock()
	m, ok := e.mappings[program]
	e.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("engine: unknown program %s", program)
	}
	switch kind {
	case ArtifactTgds:
		return m.String(), nil
	case ArtifactSQL:
		script, err := sqlgen.Translate(m)
		if err != nil {
			return "", err
		}
		return script.String(), nil
	case ArtifactR:
		return rgen.Translate(m)
	case ArtifactMatlab:
		return matlabgen.Translate(m)
	case ArtifactETL:
		job, err := etl.Translate(m, program)
		if err != nil {
			return "", err
		}
		raw, err := job.MarshalMetadata()
		if err != nil {
			return "", err
		}
		return string(raw), nil
	default:
		return "", fmt.Errorf("engine: unknown artifact kind %q", kind)
	}
}

// WriteCSV exports the current version of a cube as CSV.
func (e *Engine) WriteCSV(name string, w io.Writer) error {
	c, ok := e.store.Get(name)
	if !ok {
		return fmt.Errorf("engine: cube %s has no data", name)
	}
	return store.WriteCSV(w, c)
}
