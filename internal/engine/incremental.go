// Incremental recomputation: the engine memoizes, per derived cube, the
// store generation of every direct operand at the time the cube was last
// computed. A WithIncremental run walks the dependency graph in plan
// order, skips cubes whose memoized generations are still current, and
// hands the dispatcher the store deltas of the changed inputs plus the
// previous output versions to maintain against. Correctness does not
// depend on the memos being fresh — a missing, raced or poisoned memo
// only widens the recompute — because every reused base is checked
// against the generation of the stored version it claims to be.
package engine

import (
	"time"

	"exlengine/internal/determine"
	"exlengine/internal/dispatch"
	"exlengine/internal/model"
)

// DeltaStore is the optional store capability incremental runs need:
// per-cube generation stamps, diffs against historical generations, and
// writes that report the generation they committed at. The in-memory
// store and the durable store both implement it; a store that does not
// simply makes WithIncremental a no-op.
type DeltaStore interface {
	CubeStore
	// SnapshotWithGenerations is SnapshotVersioned plus the generation
	// each cube's current version was written at, atomically.
	SnapshotWithGenerations() (map[string]*model.Cube, uint64, map[string]uint64)
	// Delta diffs a cube's current version against the version that was
	// visible at sinceGen. It returns store.ErrDeltaUnavailable (wrapped)
	// when history no longer supports the reconstruction.
	Delta(name string, sinceGen uint64) (*model.CubeDelta, error)
	// PutAllGen is PutAll returning the write generation the commit
	// happened at.
	PutAllGen(cubes map[string]*model.Cube, asOf time.Time) (uint64, error)
}

// cubeMemo records what one derived cube was last computed from. A memo
// is immutable once stored; updates swap whole pointers under memoMu.
type cubeMemo struct {
	// self is the generation the cube's own version was written at. A
	// mismatch with the store means someone else wrote the cube since —
	// the stored version is not this memo's output, so it is neither
	// current nor a usable base.
	self uint64
	// inputs is the generation of each direct operand at compute time.
	inputs map[string]uint64
}

// memoSnapshot copies the memo map under the lock; the memos themselves
// are immutable.
func (e *Engine) memoSnapshot() map[string]*cubeMemo {
	e.memoMu.Lock()
	defer e.memoMu.Unlock()
	out := make(map[string]*cubeMemo, len(e.memo))
	for k, v := range e.memo {
		out[k] = v
	}
	return out
}

// pruneStale splits the plan into stale cubes (kept, to be recomputed)
// and current ones (skipped), and builds the dispatch plan: input
// deltas where the store can reconstruct them, previous outputs as
// maintenance bases where they are trustworthy, and FullOnly marks
// everywhere else.
func (e *Engine) pruneStale(graph *determine.Graph, plan []determine.StmtRef,
	snap map[string]*model.Cube, cubeGens map[string]uint64,
	ds DeltaStore) ([]determine.StmtRef, []string, *dispatch.IncrPlan) {

	memo := e.memoSnapshot()
	stale := make(map[string]bool)
	skipped := []string{}
	var keep []determine.StmtRef
	for _, ref := range plan {
		cube := ref.Cube()
		m := memo[cube]
		isStale := m == nil || m.self != cubeGens[cube]
		if !isStale {
			for _, dep := range graph.Deps(cube) {
				if stale[dep] || cubeGens[dep] != m.inputs[dep] {
					isStale = true
					break
				}
			}
		}
		if isStale {
			stale[cube] = true
			keep = append(keep, ref)
		} else {
			skipped = append(skipped, cube)
		}
	}

	ip := &dispatch.IncrPlan{
		Deltas:   make(map[string]*model.CubeDelta),
		FullOnly: make(map[string]bool),
		Bases:    make(map[string]*model.Cube),
	}
	// Bases: a stale cube's stored version is a usable maintenance base
	// only when it is the version its memo computed (self matches); a
	// foreign write in between means the stored cube is not F(memoized
	// inputs) and maintaining it from deltas would be unsound.
	for _, ref := range keep {
		cube := ref.Cube()
		m := memo[cube]
		if m == nil || m.self != cubeGens[cube] {
			continue
		}
		if b := snap[cube]; b != nil {
			ip.Bases[cube] = b
		}
	}

	// Deltas: for every input read by a stale cube and not itself being
	// recomputed this run, all maintaining consumers must have seen the
	// same generation of it — their bases then share one "before", and
	// one store delta describes the movement for all of them. Consumers
	// that disagree (possible when runs interleave oddly) poison the
	// input to FullOnly rather than risking a delta that skips changes
	// some base has never seen.
	sinceGen := make(map[string]uint64)
	conflict := make(map[string]bool)
	for _, ref := range keep {
		cube := ref.Cube()
		m := memo[cube]
		if m == nil || ip.Bases[cube] == nil {
			// No base: this consumer recomputes in full regardless of
			// deltas, so it imposes no "before" of its own.
			continue
		}
		for _, dep := range graph.Deps(cube) {
			if stale[dep] {
				continue // recomputed this run; the dispatcher publishes its delta
			}
			g, seen := sinceGen[dep]
			if !seen {
				sinceGen[dep] = m.inputs[dep]
			} else if g != m.inputs[dep] {
				conflict[dep] = true
			}
		}
	}
	for dep, g := range sinceGen {
		if conflict[dep] {
			ip.FullOnly[dep] = true
			continue
		}
		if cubeGens[dep] == g {
			continue // unchanged since every base saw it
		}
		d, err := ds.Delta(dep, g)
		if err != nil {
			// History cannot reconstruct the old version (equal-asOf
			// overwrite, durable reopen): recompute consumers in full.
			ip.FullOnly[dep] = true
			continue
		}
		if !d.Empty() {
			ip.Deltas[dep] = d
		}
	}
	return keep, skipped, ip
}

// updateMemos records, for every cube the run computed, the generations
// of its operands as the run saw them (commitGen for cubes persisted by
// this very run). A memo from a later commit is never overwritten by an
// earlier one, so concurrent runs converge on the newest state.
func (e *Engine) updateMemos(graph *determine.Graph, plan []determine.StmtRef,
	cubeGens map[string]uint64, commitGen uint64, persisted map[string]bool) {

	computed := make(map[string]bool, len(plan))
	for _, ref := range plan {
		computed[ref.Cube()] = true
	}
	genOf := func(name string) uint64 {
		if computed[name] && persisted[name] {
			return commitGen
		}
		return cubeGens[name]
	}
	e.memoMu.Lock()
	defer e.memoMu.Unlock()
	if e.memo == nil {
		e.memo = make(map[string]*cubeMemo)
	}
	for _, ref := range plan {
		cube := ref.Cube()
		m := &cubeMemo{self: genOf(cube), inputs: make(map[string]uint64)}
		for _, dep := range graph.Deps(cube) {
			m.inputs[dep] = genOf(dep)
		}
		if old := e.memo[cube]; old != nil && old.self > m.self {
			continue
		}
		e.memo[cube] = m
	}
}
