package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// benchProgram is a four-statement derivation chain over a quarterly
// regional panel — the same shape as exlbench's E15 incremental
// experiment, kept here so `go test -bench IncrementalStep -cpuprofile`
// can profile a single maintained step without the benchmark harness.
const benchProgram = `
cube S(q: quarter, r: string) measure v

A := S * 2
B := A + S
C := B - A
D := C * 0.5
`

// BenchmarkIncrementalStep measures one delta-driven recomputation step
// at 1% churn on a 200k-row panel: churn + PutCube happen off the clock,
// so the timed region is exactly Run(WithIncremental()).
func BenchmarkIncrementalStep(b *testing.B) {
	const regions = 100
	const quarters = 2000
	sch := model.NewSchema("S",
		[]model.Dim{{Name: "q", Type: model.TQuarter}, {Name: "r", Type: model.TString}}, "v")
	seed := model.NewCube(sch)
	start := model.NewQuarterly(1990, 1)
	for q := 0; q < quarters; q++ {
		for r := 0; r < regions; r++ {
			dims := []model.Value{model.Per(start.Shift(int64(q))), model.Str(fmt.Sprintf("r%02d", r))}
			if err := seed.Put(dims, float64(q*regions+r)*0.25+1); err != nil {
				b.Fatal(err)
			}
		}
	}
	e := New()
	if err := e.RegisterProgram("p", benchProgram); err != nil {
		b.Fatal(err)
	}
	t0 := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := e.PutCube(seed, t0); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := e.Run(ctx, RunOn(ops.TargetChase), RunAt(t0), WithIncremental()); err != nil {
		b.Fatal(err)
	}
	cur := seed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		next := cur.Clone()
		for j, tu := range cur.Tuples() {
			if (j+i*37)%100 == 7 {
				next.Replace(tu.Dims, tu.Measure*1.01+0.01)
			}
		}
		cur = next
		at := t0.Add(time.Duration(i+1) * 24 * time.Hour)
		if err := e.PutCube(cur, at); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := e.Run(ctx, RunOn(ops.TargetChase), RunAt(at), WithIncremental()); err != nil {
			b.Fatal(err)
		}
	}
}
