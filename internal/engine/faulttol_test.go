package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"exlengine/internal/dispatch"
	"exlengine/internal/exlerr"
	"exlengine/internal/faults"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestFaultToleranceEndToEnd is the acceptance scenario of the
// fault-tolerance work: a run with an injected panic in one ETL step and a
// transient SQL-engine error completes via retry + fallback, produces
// cubes identical to the chase solution, leaks no goroutines, and its
// Report lists every retry and fallback.
func TestFaultToleranceEndToEnd(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 370, Regions: 3})
	ref := chaseReference(t, data)

	// Fault 1: the first ETL step to run panics (a crashing step inside
	// the streaming runtime).
	restore := faults.PanicETLStep("")
	defer restore()
	// Fault 2: the first SQL-engine attempt fails with a transient error.
	inj := faults.NewInjector(faults.Fault{
		Fragment: faults.AnyFragment, Attempt: 1, Target: ops.TargetSQL,
		Kind: faults.Error, Class: exlerr.Transient,
	})

	var slept []time.Duration
	e := newGDPEngine(t, data,
		WithSleeper(func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		}),
		WithDispatchMiddleware(inj.Middleware()))

	before := runtime.NumGoroutine()
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("run must survive both faults: %v", err)
	}

	// Results match the reference chase solution exactly.
	for _, rel := range []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"} {
		got, ok := e.Cube(rel)
		if !ok {
			t.Fatalf("cube %s missing after degraded run", rel)
		}
		if !got.Equal(ref[rel], 1e-6) {
			t.Errorf("%s differs from chase:\n%s", rel, strings.Join(got.Diff(ref[rel], 1e-6, 5), "\n"))
		}
	}

	// The report records the transient retry...
	if rep.Retries != 1 {
		t.Errorf("Retries = %d, want 1\n%+v", rep.Retries, rep.Fragments)
	}
	var sawRetry bool
	for _, fr := range rep.Fragments {
		if len(fr.Attempts) >= 2 && fr.Attempts[0].Class == exlerr.Transient && fr.Attempts[0].Target == ops.TargetSQL {
			sawRetry = true
			if fr.Attempts[0].Backoff != dispatch.DefaultRetry.BaseDelay {
				t.Errorf("first backoff = %v, want %v", fr.Attempts[0].Backoff, dispatch.DefaultRetry.BaseDelay)
			}
			if fr.Attempts[1].Attempt != 2 || fr.Attempts[1].Err != "" {
				t.Errorf("retry attempt not recorded as success: %+v", fr.Attempts)
			}
		}
	}
	if !sawRetry {
		t.Errorf("no fragment records the transient SQL retry: %+v", rep.Fragments)
	}

	// ...and the panic-driven fallback of the ETL fragment.
	if rep.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1\n%+v", rep.Fallbacks, rep.Fragments)
	}
	var sawFallback bool
	for _, fr := range rep.Fragments {
		if fr.Primary != ops.TargetETL || !fr.Degraded() {
			continue
		}
		sawFallback = true
		if !fr.Attempts[0].Panic {
			t.Errorf("ETL attempt not recorded as panic: %+v", fr.Attempts[0])
		}
		if fr.Attempts[0].Class != exlerr.Fatal {
			t.Errorf("recovered panic class = %v, want Fatal", fr.Attempts[0].Class)
		}
		if fr.Final == ops.TargetETL || fr.Final == "" {
			t.Errorf("Final = %v after degradation", fr.Final)
		}
		if len(fr.Fallbacks) == 0 || fr.Fallbacks[0] != fr.Final {
			t.Errorf("fallback decision not recorded: %+v", fr)
		}
	}
	if !sawFallback {
		t.Errorf("no fragment records the ETL degradation: %+v", rep.Fragments)
	}

	// Backoff used the injected sleeper, never the wall clock.
	if len(slept) != 1 || slept[0] != dispatch.DefaultRetry.BaseDelay {
		t.Errorf("slept = %v, want exactly one base delay", slept)
	}
	if len(inj.Fired()) != 1 {
		t.Errorf("injector fired %d times, want 1", len(inj.Fired()))
	}

	waitNoGoroutineLeak(t, before)
}

// TestRunContextCancelled: a cancelled context aborts the run before
// any work and persists nothing.
func TestRunContextCancelled(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 100, Regions: 2})
	e := newGDPEngine(t, data)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, ok := e.Cube("GDP"); ok {
		t.Error("cancelled run persisted results")
	}
}

// TestWithoutDegradationFailsRun: with fallback disabled, a persistently
// failing fragment fails the whole run and nothing is stored.
func TestWithoutDegradationFailsRun(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 100, Regions: 2})
	inj := faults.NewInjector(faults.Fault{
		Fragment: 0, Kind: faults.Error, Class: exlerr.Fatal,
	})
	e := newGDPEngine(t, data, WithoutDegradation(), WithDispatchMiddleware(inj.Middleware()))
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("fatal fragment error with degradation off must fail the run")
	}
	for _, rel := range []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"} {
		if _, ok := e.Cube(rel); ok {
			t.Errorf("failed run persisted %s", rel)
		}
	}
}

// TestDegradedParallelRunMatchesChase: faults and degradation compose with
// the wave-parallel dispatcher.
func TestDegradedParallelRunMatchesChase(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 370, Regions: 3})
	ref := chaseReference(t, data)
	// Every fragment's first attempt fails with a transient error.
	var faultPlan []faults.Fault
	for i := 0; i < 8; i++ {
		faultPlan = append(faultPlan, faults.Fault{
			Fragment: i, Attempt: 1, Kind: faults.Error, Class: exlerr.Transient,
		})
	}
	e := newGDPEngine(t, data,
		WithParallelDispatch(),
		WithSleeper(func(context.Context, time.Duration) error { return nil }),
		WithDispatchMiddleware(faults.NewInjector(faultPlan...).Middleware()))
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Errorf("parallel run recorded no retries: %+v", rep.Fragments)
	}
	for _, rel := range []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"} {
		got, ok := e.Cube(rel)
		if !ok {
			t.Fatalf("cube %s missing", rel)
		}
		if !got.Equal(ref[rel], 1e-6) {
			t.Errorf("%s differs from chase:\n%s", rel, strings.Join(got.Diff(ref[rel], 1e-6, 5), "\n"))
		}
	}
}
