package engine

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"

	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/obs"
)

// Compiled is one cached compilation result: the analyzed program plus
// its generated schema mapping. Both are shared read-only between every
// engine that compiles the same source against the same external
// schemas, so cache hits skip parse, analyze and generate entirely.
type Compiled struct {
	Analyzed *exl.Analyzed
	Mapping  *mapping.Mapping
}

// compileCacheCap bounds the default cache. Statistical catalogs hold
// tens to hundreds of programs; beyond the cap, an arbitrary entry is
// evicted (recompiling is always correct, only slower).
const compileCacheCap = 256

// CompileCache is a bounded cache of compilation results keyed by
// (program text, external-schema fingerprint, fusion). Engines share the
// process-wide default unless WithCompileCache injects a private one —
// the isolation knob for multi-tenant deployments, where one tenant's
// registrations should not be observable through another's hit rates. A
// nil *CompileCache compiles without caching.
type CompileCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*Compiled
}

// NewCompileCache returns an empty cache bounded to capacity entries
// (<=0 means the default capacity).
func NewCompileCache(capacity int) *CompileCache {
	if capacity <= 0 {
		capacity = compileCacheCap
	}
	return &CompileCache{cap: capacity, m: make(map[string]*Compiled)}
}

// Len returns the number of cached compilations.
func (c *CompileCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Reset empties the cache.
func (c *CompileCache) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[string]*Compiled)
}

func (c *CompileCache) get(key string) *Compiled {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[key]
}

func (c *CompileCache) put(key string, v *Compiled) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = v
}

// defaultCompileCache is the process-wide cache engines use unless a
// private one is injected.
var defaultCompileCache = NewCompileCache(compileCacheCap)

// DefaultCompileCache returns the shared process-wide compile cache.
func DefaultCompileCache() *CompileCache { return defaultCompileCache }

// ResetCompileCache empties the process-wide compile cache (tests).
func ResetCompileCache() { defaultCompileCache.Reset() }

// SchemaFingerprint returns a deterministic digest of an external-schema
// environment. Two compilations of the same source text may share a
// cached result only when their fingerprints agree, because external
// schemas drive type checking and mapping generation.
func SchemaFingerprint(external map[string]model.Schema) string {
	names := make([]string, 0, len(external))
	for n := range external {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		sch := external[n]
		// Schema.String covers name and dimensions; the measure name is
		// part of the generated mapping too, so hash it explicitly.
		fmt.Fprintf(h, "%s\x00%s\x00%s\x00", n, sch.String(), sch.Measure)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheKey identifies one compilation: program text, external-schema
// fingerprint and the fusion setting (fused and normalized mappings of
// the same source differ).
func cacheKey(src, fingerprint string, fusion bool) string {
	return fmt.Sprintf("%s\x00%t\x00%s", fingerprint, fusion, src)
}

// CompileCached compiles through the process-wide default cache; see
// CompileCache.Compile.
func CompileCached(ctx context.Context, src string, external map[string]model.Schema, fusion bool) (*Compiled, error) {
	return defaultCompileCache.Compile(ctx, src, external, fusion)
}

// Compile compiles an EXL program against the external schemas,
// consulting the cache keyed by (program text, external-schema
// fingerprint, fusion). On a hit the parse/analyze/generate pipeline is
// skipped and the shared result returned; hits and misses are counted in
// the metrics registry carried by ctx, and the current span (if any) is
// annotated with the outcome. A nil cache always compiles.
func (cc *CompileCache) Compile(ctx context.Context, src string, external map[string]model.Schema, fusion bool) (*Compiled, error) {
	key := cacheKey(src, SchemaFingerprint(external), fusion)
	met := obs.MetricsFrom(ctx)

	if hit := cc.get(key); hit != nil {
		met.Counter(obs.MetricCompileCacheHits).Inc()
		if sp := obs.CurrentSpan(ctx); sp != nil {
			sp.SetAttr(obs.String("cache", "hit"))
		}
		return hit, nil
	}
	met.Counter(obs.MetricCompileCacheMisses).Inc()
	if sp := obs.CurrentSpan(ctx); sp != nil {
		sp.SetAttr(obs.String("cache", "miss"))
	}

	_, pspan := obs.StartSpan(ctx, "parse")
	prog, err := exl.Parse(src)
	pspan.EndErr(err)
	if err != nil {
		return nil, err
	}
	_, aspan := obs.StartSpan(ctx, "analyze")
	a, err := exl.Analyze(prog, external)
	aspan.EndErr(err)
	if err != nil {
		return nil, err
	}
	_, gspan := obs.StartSpan(ctx, "generate")
	var m *mapping.Mapping
	if fusion {
		m, err = mapping.Generate(a)
	} else {
		m, err = mapping.GenerateNormalized(a)
	}
	if err == nil {
		gspan.SetAttr(obs.Int("tgds", len(m.Tgds)))
	}
	gspan.EndErr(err)
	if err != nil {
		return nil, err
	}

	c := &Compiled{Analyzed: a, Mapping: m}
	cc.put(key, c)
	return c, nil
}
