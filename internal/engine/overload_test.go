package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exlengine/internal/dispatch"
	"exlengine/internal/exlerr"
	"exlengine/internal/faults"
	"exlengine/internal/governor"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
	"exlengine/internal/store/durable"
	"exlengine/internal/workload"
)

func smallGDP() workload.Data {
	return workload.GDPSource(workload.GDPConfig{Days: 60, Regions: 2})
}

// TestConcurrentRunsBoundedByAdmission verifies both halves of the
// concurrency work: runs dispatch outside the engine mutex (so two can
// be in flight at once), and the governor caps them at MaxConcurrentRuns
// (so a third cannot).
func TestConcurrentRunsBoundedByAdmission(t *testing.T) {
	inside := make(chan struct{}, 16)
	release := make(chan struct{})
	var releaseOnce sync.Once
	gate := func(next dispatch.Runner) dispatch.Runner {
		return func(ctx context.Context, fr dispatch.Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
			select {
			case inside <- struct{}{}:
			default:
			}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return next(ctx, fr, snap)
		}
	}
	e := newGDPEngine(t, smallGDP(), MaxConcurrentRuns(2), WithDispatchMiddleware(gate))

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = e.Run(context.Background(), RunAt(time.Unix(1, 0)))
		}()
	}
	// Two runs must reach dispatch concurrently: the engine mutex no
	// longer serializes execution.
	for i := 0; i < 2; i++ {
		select {
		case <-inside:
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d run(s) reached dispatch; runs are serialized", i)
		}
	}
	// And no third: admission caps in-flight runs at 2.
	select {
	case <-inside:
		t.Fatal("a third run reached dispatch past MaxConcurrentRuns(2)")
	case <-time.After(100 * time.Millisecond):
	}
	if got := e.Governor().InFlight(); got != 2 {
		t.Errorf("InFlight = %d, want 2", got)
	}
	releaseOnce.Do(func() { close(release) })
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("run %d: %v", i, err)
		}
	}
}

// runEstimates measures, on a pristine engine over the same data, the
// input-snapshot estimate a run reserves up front and the materialized
// size of its results — the two quantities the memory budget tests need
// to bracket.
func runEstimates(t *testing.T) (inEst, outEst int64) {
	t.Helper()
	e := newGDPEngine(t, smallGDP())
	e.mu.Lock()
	schemas := e.allSchemasLocked()
	st := e.store
	e.mu.Unlock()
	snap, _ := st.SnapshotVersioned()
	for name, sch := range schemas {
		if _, ok := snap[name]; !ok {
			snap[name] = model.NewCube(sch).Freeze()
		}
	}
	inEst = snapshotEstimate(snap)

	if _, err := e.Run(context.Background(), RunAt(time.Unix(1, 0))); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"} {
		c, ok := e.Cube(name)
		if !ok {
			t.Fatalf("derived cube %s missing", name)
		}
		outEst += c.MemEstimate()
	}
	return inEst, outEst
}

// TestMemoryBudgetRejectsRun: a budget below even the degraded (half)
// estimate sheds the run with a typed overload error before any dispatch
// work, leaving the store untouched.
func TestMemoryBudgetRejectsRun(t *testing.T) {
	inEst, _ := runEstimates(t)
	e := newGDPEngine(t, smallGDP(), WithParallelDispatch(), MemoryBudget(inEst/2-1))
	genBefore := e.store.Generation()
	_, err := e.Run(context.Background(), RunAt(time.Unix(1, 0)))
	if !errors.Is(err, governor.ErrMemoryBudget) {
		t.Fatalf("err = %v, want ErrMemoryBudget", err)
	}
	if !exlerr.IsOverload(err) {
		t.Errorf("rejection is not typed overload: %v", err)
	}
	if _, ok := e.Cube("GDP"); ok {
		t.Error("rejected run persisted results")
	}
	if e.store.Generation() != genBefore {
		t.Error("rejected run advanced the store generation")
	}
	if e.Governor().MemUsed() != 0 {
		t.Errorf("MemUsed = %d after rejected run, want 0", e.Governor().MemUsed())
	}
}

// TestMemoryBudgetDegradesToSequential: a budget that fits the
// sequential estimate but not the full-parallel one turns parallel
// dispatch off for the run instead of rejecting it; the run completes
// correctly and reports the degradation.
func TestMemoryBudgetDegradesToSequential(t *testing.T) {
	inEst, outEst := runEstimates(t)
	budget := inEst / 2
	if outEst > budget {
		budget = outEst
	}
	if budget >= inEst {
		t.Skipf("results (%d) as large as inputs (%d); no degradation window", outEst, inEst)
	}
	mx := obs.NewRegistry()
	e := newGDPEngine(t, smallGDP(), WithParallelDispatch(), MemoryBudget(budget), WithMetrics(mx))
	rep, err := e.Run(context.Background(), RunAt(time.Unix(1, 0)))
	if err != nil {
		t.Fatalf("degradable run rejected: %v", err)
	}
	if !rep.MemDegraded {
		t.Error("report does not mark the run memory-degraded")
	}
	if rep.MemReserved <= 0 || rep.MemReserved > budget {
		t.Errorf("MemReserved = %d, want within (0, %d]", rep.MemReserved, budget)
	}
	if got := mx.Counter(obs.MetricMemDegraded).Value(); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}
	if peak := e.Governor().MemPeak(); peak > budget {
		t.Errorf("MemPeak = %d exceeds budget %d", peak, budget)
	}
	if c, ok := e.Cube("GDP"); !ok || c.Len() == 0 {
		t.Error("degraded run lost its results")
	}
}

// TestBreakerSkipsFailingBackend: after a backend trips its breaker, the
// next run skips it without burning its retry budget on it.
func TestBreakerSkipsFailingBackend(t *testing.T) {
	sqlDown := func(next dispatch.Runner) dispatch.Runner {
		return func(ctx context.Context, fr dispatch.Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
			if fr.Target == ops.TargetSQL {
				return nil, exlerr.Fatalf("sql backend down")
			}
			return next(ctx, fr, snap)
		}
	}
	e := newGDPEngine(t, smallGDP(),
		WithBreakers(governor.BreakerConfig{FailureThreshold: 1, Cooldown: time.Hour}),
		WithDispatchMiddleware(sqlDown))

	rep1, err := e.Run(context.Background(), RunAt(time.Unix(1, 0)))
	if err != nil {
		t.Fatalf("first run must degrade around the sql failure: %v", err)
	}
	var sawSQLAttempt bool
	for _, fr := range rep1.Fragments {
		for _, a := range fr.Attempts {
			if a.Target == ops.TargetSQL {
				sawSQLAttempt = true
			}
		}
	}
	if !sawSQLAttempt {
		t.Skip("plan assigned no fragment to sql; nothing to trip")
	}
	if e.Governor().Breakers().State(ops.TargetSQL) != governor.BreakerOpen {
		t.Fatalf("sql breaker state = %v after fatal failure, want open", e.Governor().Breakers().State(ops.TargetSQL))
	}

	rep2, err := e.Run(context.Background(), RunAt(time.Unix(2, 0)))
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	var skipped, attempted bool
	for _, fr := range rep2.Fragments {
		for _, tgt := range fr.SkippedOpen {
			if tgt == ops.TargetSQL {
				skipped = true
			}
		}
		for _, a := range fr.Attempts {
			if a.Target == ops.TargetSQL {
				attempted = true
			}
		}
	}
	if !skipped {
		t.Error("second run never skipped the open sql breaker")
	}
	if attempted {
		t.Error("second run still attempted the tripped sql backend")
	}
}

// TestOverloadChaosHarness is the acceptance scenario: a worker fleet at
// twice the engine's admitted capacity, with injected backend faults,
// must leave every run either completed or failed with a typed error —
// while reserved memory stays under the budget, runs are shed with
// overload errors rather than queued to death, and the goroutine count
// returns to baseline.
func TestOverloadChaosHarness(t *testing.T) {
	before := runtime.NumGoroutine()
	data := smallGDP()

	var fs []faults.Fault
	for i := 0; i < 8; i++ {
		fs = append(fs,
			faults.Fault{Fragment: faults.AnyFragment, Attempt: 1, Target: ops.TargetSQL, Kind: faults.Error, Class: exlerr.Transient},
			faults.Fault{Fragment: faults.AnyFragment, Attempt: 1, Target: ops.TargetETL, Kind: faults.Error, Class: exlerr.Transient},
			faults.Fault{Fragment: faults.AnyFragment, Attempt: 1, Target: ops.TargetFrame, Kind: faults.Panic},
		)
	}
	inj := faults.NewInjector(fs...)

	mx := obs.NewRegistry()
	const budget = int64(64) << 20
	gov := governor.New(governor.Config{
		MaxConcurrent: 2,
		MaxQueue:      -1, // no queue: excess load sheds immediately
		MemoryBudget:  budget,
		Breaker:       governor.BreakerConfig{FailureThreshold: 4, Cooldown: 20 * time.Millisecond},
	})
	e := newGDPEngine(t, data,
		WithGovernor(gov), WithMetrics(mx), WithParallelDispatch(),
		WithSleeper(func(ctx context.Context, _ time.Duration) error { return ctx.Err() }),
		WithDispatchMiddleware(inj.Middleware()))

	var ok, shed, failed, untyped atomic.Int64
	cfg := workload.ConcurrentConfig{Workers: 8, Iters: 6} // 4x admitted capacity
	_, werr := workload.RunConcurrently(context.Background(), cfg, func(ctx context.Context) error {
		_, err := e.Run(ctx, RunAt(time.Unix(1, 0)))
		switch {
		case err == nil:
			ok.Add(1)
		case exlerr.IsOverload(err):
			shed.Add(1)
		case exlerr.ClassOf(err) == exlerr.Transient || exlerr.ClassOf(err) == exlerr.Fatal:
			// A classified dispatch failure (injected faults can exhaust
			// every fallback): typed, so acceptable under chaos.
			failed.Add(1)
		default:
			untyped.Add(1)
		}
		return nil // the harness itself never aborts
	})
	if werr != nil {
		t.Fatalf("harness error: %v", werr)
	}
	total := ok.Load() + shed.Load() + failed.Load() + untyped.Load()
	if total != int64(cfg.Workers*cfg.Iters) {
		t.Fatalf("accounted %d of %d runs", total, cfg.Workers*cfg.Iters)
	}
	t.Logf("chaos: %d ok, %d shed, %d failed typed, %d untyped", ok.Load(), shed.Load(), failed.Load(), untyped.Load())
	if untyped.Load() != 0 {
		t.Errorf("%d run(s) failed without a typed/classified error", untyped.Load())
	}
	if ok.Load() == 0 {
		t.Error("no run completed under chaos")
	}
	if shed.Load() == 0 {
		t.Error("no run was shed at 4x capacity with no queue")
	}
	if peak := gov.MemPeak(); peak <= 0 || peak > budget {
		t.Errorf("MemPeak = %d, want within (0, %d]", peak, budget)
	}
	if gov.MemUsed() != 0 || gov.InFlight() != 0 {
		t.Errorf("governor not drained: mem=%d inflight=%d", gov.MemUsed(), gov.InFlight())
	}
	if got := mx.Counter(obs.Label(obs.MetricShed, "reason", "queue_full")).Value(); got != shed.Load() {
		t.Errorf("shed counter = %d, harness saw %d", got, shed.Load())
	}
	waitNoGoroutineLeak(t, before)
}

// TestShutdownUnderLoadLosesNoAckedCommits: Engine.Shutdown during a
// concurrent workload stops admission with typed errors, drains
// in-flight runs, and closes the durable store such that every
// acknowledged run survives recovery.
func TestShutdownUnderLoadLosesNoAckedCommits(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	st, err := durable.Open(dir, durable.WithGroupCommit(200*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	e := newGDPEngine(t, smallGDP(), WithStore(st), MaxConcurrentRuns(3))
	genBase := st.Generation()

	var acked atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := e.Run(context.Background(), RunAt(time.Unix(1, 0)))
				if err != nil {
					if !exlerr.IsOverload(err) {
						t.Errorf("run failed untyped during shutdown: %v", err)
					}
					return
				}
				acked.Add(1)
			}
		}()
	}

	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()

	if _, err := e.Run(context.Background()); !errors.Is(err, governor.ErrShuttingDown) {
		t.Errorf("post-shutdown run err = %v, want ErrShuttingDown", err)
	}
	if err := e.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}

	// Every acked run persisted exactly one atomic PutAll; recovery must
	// see at least that many generations past the setup writes.
	re, err := durable.Open(dir)
	if err != nil {
		t.Fatalf("reopen after shutdown: %v", err)
	}
	defer re.Close()
	if got, want := re.Generation(), genBase+uint64(acked.Load()); got < want {
		t.Errorf("recovered generation %d < %d (setup %d + %d acked runs): acked commits lost",
			got, want, genBase, acked.Load())
	}
	if c, ok := re.Get("GDP"); acked.Load() > 0 && (!ok || c.Len() == 0) {
		t.Error("GDP cube missing after recovery despite acked runs")
	}
	waitNoGoroutineLeak(t, before)
}

// TestDeadlineShedBeforeQueueing: a run whose deadline cannot be met by
// the estimated queue wait is rejected immediately with a typed overload
// error instead of being queued to die.
func TestDeadlineShedBeforeQueueing(t *testing.T) {
	gov := governor.New(governor.Config{MaxConcurrent: 1, AvgRunHint: time.Hour})
	e := newGDPEngine(t, smallGDP(), WithGovernor(gov))

	// Occupy the only slot directly.
	ticket, err := gov.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ticket.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.Run(ctx, RunAt(time.Unix(1, 0)))
	if !errors.Is(err, governor.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Error("deadline shed waited instead of rejecting immediately")
	}
}
