package engine

import (
	"context"
	"testing"
	"time"

	"exlengine/internal/model"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

var gdpDerived = []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"}

// churn returns a new version of c with roughly 1% of its points
// value-changed, a few deleted, and (optionally) a few appended at the
// end of the series.
func churn(t *testing.T, c *model.Cube, deletes bool) *model.Cube {
	t.Helper()
	out := c.Clone()
	for i, tu := range c.Tuples() {
		switch {
		case i%97 == 13:
			if err := out.Replace(tu.Dims, tu.Measure*1.01+0.01); err != nil {
				t.Fatal(err)
			}
		case deletes && i%131 == 57:
			out.Delete(tu.Dims)
		}
	}
	return out
}

func exactEqual(t *testing.T, name string, want, got *model.Cube) {
	t.Helper()
	if d := model.DiffCubes(name, want, got); !d.Empty() {
		t.Errorf("cube %s: incremental diverges from full (%d added, %d changed, %d deleted)",
			name, len(d.Added), len(d.Changed), len(d.Deleted))
	}
}

// TestWithIncrementalParity runs the same data sequence through a
// full-recomputation engine and an incremental one and requires
// byte-identical derived cubes after every step.
func TestWithIncrementalParity(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 200, Regions: 3, Seed: 9})
	full := newGDPEngine(t, data)
	incr := newGDPEngine(t, data)
	ctx := context.Background()
	t0 := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)

	if _, err := full.Run(ctx, RunAt(t0)); err != nil {
		t.Fatal(err)
	}
	rep, err := incr.Run(ctx, RunAt(t0), WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incremental {
		t.Fatalf("in-memory store must support incremental runs: %+v", rep)
	}
	for _, rel := range gdpDerived {
		w, _ := full.Cube(rel)
		g, _ := incr.Cube(rel)
		exactEqual(t, rel, w, g)
	}

	// 1% churn on one leaf, including deletions.
	t1 := t0.Add(24 * time.Hour)
	next := churn(t, data["PDR"], true)
	if err := full.PutCube(next, t1); err != nil {
		t.Fatal(err)
	}
	if err := incr.PutCube(next.Clone(), t1); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(ctx, RunAt(t1)); err != nil {
		t.Fatal(err)
	}
	rep, err = incr.Run(ctx, RunAt(t1), WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Incremental {
		t.Fatalf("second run not incremental: %+v", rep)
	}
	for _, rel := range gdpDerived {
		w, _ := full.Cube(rel)
		g, _ := incr.Cube(rel)
		exactEqual(t, rel, w, g)
	}
}

// TestWithIncrementalSkipsCurrentCubes: a run with nothing changed
// recomputes nothing at all.
func TestWithIncrementalSkipsCurrentCubes(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 120, Regions: 2, Seed: 3})
	e := newGDPEngine(t, data)
	ctx := context.Background()
	if _, err := e.Run(ctx, WithIncremental()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(ctx, WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Plan) != 0 || len(rep.Skipped) != len(gdpDerived) {
		t.Errorf("no-change incremental run: plan=%v skipped=%v", rep.Plan, rep.Skipped)
	}
	if len(rep.Fragments) != 0 {
		t.Errorf("no-change run dispatched %d fragments", len(rep.Fragments))
	}
}

const chainProgram = `
cube A(q: quarter) measure v

B := A * 2
C := B + A
`

func quarterCube(t *testing.T, n int) *model.Cube {
	t.Helper()
	sch := model.NewSchema("A", []model.Dim{{Name: "q", Type: model.TQuarter}}, "v")
	c := model.NewCube(sch)
	start := model.NewQuarterly(2018, 1)
	for i := 0; i < n; i++ {
		if err := c.Put([]model.Value{model.Per(start.Shift(int64(i)))}, float64(i)*1.25+3); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func newChainEngine(t *testing.T, a *model.Cube) *Engine {
	t.Helper()
	e := New()
	if err := e.RegisterProgram("chain", chainProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.PutCube(a, time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestWithIncrementalFragmentFlags: a tuple-level chase fragment with a
// churned input is maintained incrementally, while a black-box fragment
// (GDP's stl_t) falls back full with a recorded reason.
func TestWithIncrementalFragmentFlags(t *testing.T) {
	ctx := context.Background()
	a := quarterCube(t, 40)
	e := newChainEngine(t, a)
	if _, err := e.Run(ctx, RunOn(ops.TargetChase)); err != nil {
		t.Fatal(err)
	}
	if err := e.PutCube(churn(t, a, false), time.Now()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(ctx, RunOn(ops.TargetChase), WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Fragments) == 0 {
		t.Fatalf("nothing dispatched: %+v", rep)
	}
	for _, fr := range rep.Fragments {
		if !fr.Incremental || fr.FellBackFull {
			t.Errorf("tuple-level fragment %v not maintained incrementally: %+v", fr.Cubes, fr)
		}
	}

	// The GDP program's stl_t black box cannot be maintained: its
	// fragment recomputes in full and says why.
	data := workload.GDPSource(workload.GDPConfig{Days: 200, Regions: 2, Seed: 5})
	g := newGDPEngine(t, data)
	if _, err := g.Run(ctx, RunOn(ops.TargetChase)); err != nil {
		t.Fatal(err)
	}
	if err := g.PutCube(churn(t, data["PDR"], false), time.Now()); err != nil {
		t.Fatal(err)
	}
	grep, err := g.Run(ctx, RunOn(ops.TargetChase), WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	fellBack := 0
	for _, fr := range grep.Fragments {
		if fr.FellBackFull {
			fellBack++
			if fr.FallbackReason == "" {
				t.Errorf("fragment %v fell back without a reason", fr.Cubes)
			}
		}
	}
	if fellBack == 0 {
		t.Errorf("the stl_t black box must force a full fragment: %+v", grep.Fragments)
	}
}

// TestWithIncrementalSQLInsertDelta: a pure-insert churn on a monotone
// mapping is maintained by INSERT-delta SQL, byte-identical to the full
// SQL refresh.
func TestWithIncrementalSQLInsertDelta(t *testing.T) {
	ctx := context.Background()
	a := quarterCube(t, 40)
	grown := quarterCube(t, 44) // strict superset: 4 appended quarters

	full := newChainEngine(t, a)
	incr := newChainEngine(t, a)
	t0 := time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC)
	if _, err := full.Run(ctx, RunOn(ops.TargetSQL), RunAt(t0)); err != nil {
		t.Fatal(err)
	}
	if _, err := incr.Run(ctx, RunOn(ops.TargetSQL), RunAt(t0), WithIncremental()); err != nil {
		t.Fatal(err)
	}

	t1 := t0.Add(24 * time.Hour)
	if err := full.PutCube(grown, t1); err != nil {
		t.Fatal(err)
	}
	if err := incr.PutCube(grown.Clone(), t1); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Run(ctx, RunOn(ops.TargetSQL), RunAt(t1)); err != nil {
		t.Fatal(err)
	}
	rep, err := incr.Run(ctx, RunOn(ops.TargetSQL), RunAt(t1), WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range rep.Fragments {
		if !fr.Incremental || fr.FellBackFull {
			t.Errorf("pure-insert SQL fragment %v not maintained by INSERT-delta: %+v", fr.Cubes, fr)
		}
	}
	for _, rel := range []string{"B", "C"} {
		w, _ := full.Cube(rel)
		g, _ := incr.Cube(rel)
		exactEqual(t, rel, w, g)
	}
}

// TestWithIncrementalExternalWriteInvalidatesMemo: a cube version
// written outside the run machinery is not trusted as a maintenance
// base — the next incremental run recomputes it and converges on the
// same values as a full run.
func TestWithIncrementalExternalWriteInvalidatesMemo(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 120, Regions: 2, Seed: 7})
	e := newGDPEngine(t, data)
	ctx := context.Background()
	if _, err := e.Run(ctx, WithIncremental()); err != nil {
		t.Fatal(err)
	}
	want, _ := e.Cube("GDP")

	// Clobber GDP with a foreign version.
	junk := churn(t, want, true)
	if err := e.PutCube(junk, time.Now()); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(ctx, WithIncremental())
	if err != nil {
		t.Fatal(err)
	}
	for _, skipped := range rep.Skipped {
		if skipped == "GDP" {
			t.Fatalf("externally written GDP must not be skipped: %+v", rep)
		}
	}
	got, _ := e.Cube("GDP")
	exactEqual(t, "GDP", want, got)
}
