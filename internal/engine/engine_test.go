package engine

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"exlengine/internal/chase"
	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

func newGDPEngine(t *testing.T, data workload.Data, opts ...Option) *Engine {
	t.Helper()
	e := New(opts...)
	if err := e.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, c := range data {
		if err := e.PutCube(c, t0); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func chaseReference(t *testing.T, data workload.Data) chase.Instance {
	t.Helper()
	prog, err := exl.Parse(workload.GDPProgram)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chase.New(m).Solve(chase.Instance(data))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestEndToEndArchitecture is the Figure 2 walk: programs registered,
// elementary data loaded, determination + translation + dispatch, results
// in the store, matching the chase solution.
func TestEndToEndArchitecture(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 370, Regions: 3})
	ref := chaseReference(t, data)
	e := newGDPEngine(t, data, WithParallelDispatch())

	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Plan) != 5 {
		t.Errorf("plan = %v", rep.Plan)
	}
	if len(rep.Subgraphs) < 2 {
		t.Errorf("expected a mixed-target run: %+v", rep.Subgraphs)
	}
	for _, rel := range []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"} {
		got, ok := e.Cube(rel)
		if !ok {
			t.Fatalf("cube %s missing after run", rel)
		}
		if !got.Equal(ref[rel], 1e-6) {
			t.Errorf("%s differs from chase:\n%s", rel, strings.Join(got.Diff(ref[rel], 1e-6, 5), "\n"))
		}
	}
}

func TestRunOnEachTarget(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 200, Regions: 2})
	ref := chaseReference(t, data)
	for _, target := range ops.AllTargets {
		t.Run(string(target), func(t *testing.T) {
			e := newGDPEngine(t, data)
			if _, err := e.Run(context.Background(), RunOn(target)); err != nil {
				t.Fatal(err)
			}
			got, _ := e.Cube("PCHNG")
			if !got.Equal(ref["PCHNG"], 1e-6) {
				t.Errorf("PCHNG differs on %s", target)
			}
		})
	}
}

// TestIncrementalRecalculation mirrors Section 6: after a leaf changes,
// only the affected cubes are recalculated, and the results match a full
// recomputation on the new data.
func TestIncrementalRecalculation(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 200, Regions: 2})
	e := newGDPEngine(t, data)
	if _, err := e.Run(context.Background(), RunAt(time.Date(2020, 2, 1, 0, 0, 0, 0, time.UTC))); err != nil {
		t.Fatal(err)
	}
	pqrBefore, _ := e.Cube("PQR")

	// New version of RGDPPC only.
	newData := workload.GDPSource(workload.GDPConfig{Days: 200, Regions: 2, Seed: 42})
	t1 := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := e.PutCube(newData["RGDPPC"], t1); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(context.Background(), RunChanged("RGDPPC"), RunAt(t1))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rep.Plan, ",") != "RGDP,GDP,GDPT,PCHNG" {
		t.Errorf("incremental plan = %v", rep.Plan)
	}

	// PQR untouched (same version), downstream recomputed correctly.
	pqrAfter, _ := e.Cube("PQR")
	if !pqrAfter.Equal(pqrBefore, model.Eps) {
		t.Error("PQR must not change when only RGDPPC changes")
	}
	mixed := workload.Data{"PDR": data["PDR"], "RGDPPC": newData["RGDPPC"]}
	ref := chaseReference(t, mixed)
	got, _ := e.Cube("PCHNG")
	if !got.Equal(ref["PCHNG"], 1e-6) {
		t.Error("incremental result differs from full recomputation")
	}

	// Historicity: the pre-change version is still readable as-of 2020.
	t0 := time.Date(2020, 6, 1, 0, 0, 0, 0, time.UTC)
	old, ok := e.CubeAsOf("RGDPPC", t0)
	if !ok || !old.Equal(data["RGDPPC"], model.Eps) {
		t.Error("as-of read of the old RGDPPC version failed")
	}
}

func TestTranslateArtifacts(t *testing.T) {
	e := newGDPEngine(t, workload.GDPSource(workload.GDPConfig{Days: 10, Regions: 1}))
	cases := map[string]string{
		ArtifactTgds:   "GDP → GDPT(stl_t(GDP))",
		ArtifactSQL:    "FROM STL_T(GDP)",
		ArtifactR:      "$time.series",
		ArtifactMatlab: "isolateTrend(",
		ArtifactETL:    `"type": "merge_join"`,
	}
	for kind, frag := range cases {
		out, err := e.Translate("gdp", kind)
		if err != nil {
			t.Errorf("Translate(%s): %v", kind, err)
			continue
		}
		if !strings.Contains(out, frag) {
			t.Errorf("artifact %s missing %q", kind, frag)
		}
	}
	if _, err := e.Translate("gdp", "cobol"); err == nil {
		t.Error("unknown artifact kind must fail")
	}
	if _, err := e.Translate("nope", ArtifactSQL); err == nil {
		t.Error("unknown program must fail")
	}
}

func TestMultiProgramEngine(t *testing.T) {
	e := New()
	if err := e.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	// A second program building on the first program's output.
	if err := e.RegisterProgram("derived", "GDPIDX := GDP / shift(GDP, 1) * 100"); err != nil {
		t.Fatal(err)
	}
	if got := e.Programs(); strings.Join(got, ",") != "derived,gdp" {
		t.Errorf("programs = %v", got)
	}
	data := workload.GDPSource(workload.GDPConfig{Days: 380, Regions: 2})
	t0 := time.Unix(0, 0)
	_ = e.PutCube(data["PDR"], t0)
	_ = e.PutCube(data["RGDPPC"], t0)
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Plan) != 6 {
		t.Errorf("plan = %v", rep.Plan)
	}
	idx, ok := e.Cube("GDPIDX")
	if !ok || idx.Len() == 0 {
		t.Fatalf("GDPIDX missing or empty")
	}
	// Cross-check one value: GDPIDX(q) = GDP(q)/GDP(q-1)*100.
	gdp, _ := e.Cube("GDP")
	ts := gdp.Tuples()
	q1 := ts[len(ts)-2]
	q2 := ts[len(ts)-1]
	want := q2.Measure / q1.Measure * 100
	got, okV := idx.Get(q2.Dims)
	if !okV || !approx(got, want) {
		t.Errorf("GDPIDX = %v, want %v", got, want)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

func TestRegisterProgramErrors(t *testing.T) {
	e := New()
	if err := e.RegisterProgram("bad", "A := "); err == nil {
		t.Error("syntax error must fail")
	}
	if err := e.RegisterProgram("bad2", "A := NOPE * 2"); err == nil {
		t.Error("unknown cube must fail")
	}
	if err := e.RegisterProgram("gdp", workload.GDPProgram); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProgram("gdp", workload.GDPProgram); !errors.Is(err, ErrProgramRegistered) {
		t.Errorf("duplicate program name = %v, want ErrProgramRegistered", err)
	}
	if err := e.RegisterProgram("dup", "cube PDR(d: day, r: string)\nX := PDR * 1"); err == nil {
		t.Error("redeclaring an existing cube with a program must fail")
	}
	// Re-deriving an existing derived cube fails at graph level.
	if err := e.RegisterProgram("clash", "GDP := RGDP * 1"); err == nil {
		t.Error("second derivation of GDP must fail")
	}
}

func TestRunWithoutPrograms(t *testing.T) {
	e := New()
	if _, err := e.Run(context.Background()); err == nil {
		t.Error("Run without programs must fail")
	}
}

func TestCSVLifecycle(t *testing.T) {
	e := New()
	if err := e.RegisterProgram("p", "cube A(t: year) measure v\nB := A * 2"); err != nil {
		t.Fatal(err)
	}
	csv := "t,v\n2019,1\n2020,2\n"
	if err := e.LoadCSV("A", strings.NewReader(csv), time.Unix(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadCSV("NOPE", strings.NewReader(csv), time.Unix(0, 0)); !errors.Is(err, ErrCubeNotDeclared) {
		t.Errorf("undeclared cube = %v, want ErrCubeNotDeclared", err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteCSV("B", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2020,4") {
		t.Errorf("exported CSV:\n%s", buf.String())
	}
	if err := e.WriteCSV("UNSET", &buf); err == nil {
		t.Error("export of missing cube must fail")
	}
}

func TestMappingAccessor(t *testing.T) {
	e := New()
	_ = e.RegisterProgram("gdp", workload.GDPProgram)
	m, ok := e.Mapping("gdp")
	if !ok || len(m.Tgds) != 5 {
		t.Errorf("Mapping = %v, %v", m, ok)
	}
	if _, ok := e.Mapping("nope"); ok {
		t.Error("unknown program mapping must miss")
	}
}

// TestEngineConcurrentUse: loading new cube versions while recalculating
// must be safe (the store is the only shared mutable state).
func TestEngineConcurrentUse(t *testing.T) {
	data := workload.GDPSource(workload.GDPConfig{Days: 120, Regions: 2})
	e := newGDPEngine(t, data)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			fresh := workload.GDPSource(workload.GDPConfig{Days: 120, Regions: 2, Seed: int64(i + 10)})
			if err := e.PutCube(fresh["RGDPPC"], time.Date(2021+i, 1, 1, 0, 0, 0, 0, time.UTC)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if _, err := e.Run(context.Background(), RunChanged("RGDPPC"), RunAt(time.Date(2030+i, 1, 1, 0, 0, 0, 0, time.UTC))); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if _, ok := e.Cube("PCHNG"); !ok {
		t.Fatal("PCHNG missing after concurrent runs")
	}
}
