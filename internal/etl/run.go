package etl

import (
	"context"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"exlengine/internal/exlerr"
	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// Row is one record flowing through an ETL stream.
type Row []model.Value

const chanCap = 128

// stepHook, when set, is invoked at the start of every step goroutine.
// It exists for deterministic fault injection (internal/faults): a hook
// that panics simulates a crashing step, exercising the runtime's panic
// isolation. Loaded atomically so concurrent flows race-free.
var stepHook atomic.Pointer[func(flowID, stepName string)]

// SetStepHook installs (or, with nil, removes) the step hook.
func SetStepHook(h func(flowID, stepName string)) {
	if h == nil {
		stepHook.Store(nil)
		return
	}
	stepHook.Store(&h)
}

// Run executes a job over the source cubes: flows run in tgd total order;
// within a flow every step is a goroutine and rows flow through channels,
// so "every tuple in the sources is fed into the stream and treated exactly
// once" (Section 5.3). It returns every relation computed by the job.
func Run(job *Job, m *mapping.Mapping, source map[string]*model.Cube) (map[string]*model.Cube, error) {
	return RunContext(context.Background(), job, m, source)
}

// RunContext is Run under a context: cancellation aborts the streaming
// goroutines of the active flow without leaking any of them. On error
// (or cancellation) no partially-computed cube is returned: the result
// map is nil and the shared store passed by the caller is untouched.
func RunContext(ctx context.Context, job *Job, m *mapping.Mapping, source map[string]*model.Cube) (map[string]*model.Cube, error) {
	store := make(map[string]*model.Cube, len(source))
	for _, name := range m.Elementary {
		if c, ok := source[name]; ok {
			store[name] = c
		} else {
			store[name] = model.NewCube(m.Schemas[name])
		}
	}
	out := make(map[string]*model.Cube)
	for _, f := range job.Flows {
		fctx, span := obs.StartSpan(ctx, "etl.flow",
			obs.String("tgd", f.TgdID), obs.String("cube", f.Target), obs.Int("steps", len(f.Steps)))
		c, err := runFlow(fctx, f, store, m.Schemas)
		if err != nil {
			span.EndErr(err)
			return nil, fmt.Errorf("etl: flow %s: %w", f.TgdID, err)
		}
		span.SetAttr(obs.Int("tuples", c.Len()))
		span.End()
		store[f.Target] = c
		out[f.Target] = c
	}
	return out, nil
}

// flowErr records the first error of a flow run.
type flowErr struct {
	mu  sync.Mutex
	err error
}

func (fe *flowErr) set(err error) {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.err == nil && err != nil {
		fe.err = err
	}
}

func (fe *flowErr) get() error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	return fe.err
}

func runFlow(ctx context.Context, f *Flow, store map[string]*model.Cube, schemas map[string]model.Schema) (*model.Cube, error) {
	// Column schema per step, derived statically.
	cols := make(map[string][]string)
	for i := range f.Steps {
		st := &f.Steps[i]
		switch st.Type {
		case TableInput:
			cols[st.Name] = st.As
		case MergeJoin:
			left, right := cols[st.Left], cols[st.Right]
			merged := append([]string(nil), left...)
			for _, c := range right {
				if !containsStr(st.Keys, c) {
					merged = append(merged, c)
				}
			}
			cols[st.Name] = merged
		case Calculator:
			in := f.Inputs(st.Name)
			base := append([]string(nil), cols[in[0]]...)
			for _, c := range st.Calcs {
				base = append(base, c.Field)
			}
			cols[st.Name] = base
		case Aggregator:
			cols[st.Name] = append(append([]string(nil), st.Keys...), st.OutField)
		case SeriesCalc:
			cols[st.Name] = []string{st.TimeField, st.ValueField}
		case PadJoin:
			cols[st.Name] = append(append([]string(nil), st.Keys...), st.OutField)
		case TableOutput:
			in := f.Inputs(st.Name)
			cols[st.Name] = cols[in[0]]
		}
	}

	// One channel per hop; generated flows are trees, so each step has one
	// consumer.
	chans := make(map[string]chan Row)
	for _, h := range f.Hops {
		if _, dup := chans[h.From]; dup {
			return nil, fmt.Errorf("step %s has more than one consumer", h.From)
		}
		chans[h.From] = make(chan Row, chanCap)
	}
	// Structural validation up front: a malformed flow must fail cleanly
	// instead of deadlocking goroutines on missing channels.
	outputs := 0
	for i := range f.Steps {
		st := &f.Steps[i]
		if st.Type == TableOutput {
			outputs++
			continue
		}
		if _, ok := chans[st.Name]; !ok {
			return nil, fmt.Errorf("step %s has no consumer", st.Name)
		}
	}
	if outputs != 1 {
		return nil, fmt.Errorf("flow must have exactly one output step, found %d", outputs)
	}

	// The flow context links every step: the first failing step cancels
	// it, which unblocks producers parked on full channels (their sends
	// select on ctx.Done), so no goroutine outlives the flow even when a
	// step dies mid-stream.
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	fe := &flowErr{}
	var wg sync.WaitGroup
	var result *model.Cube

	for i := range f.Steps {
		st := &f.Steps[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Step goroutines run concurrently, so each opens its own span
			// directly under the flow span (steps of one flow overlap; the
			// tracer tolerates concurrent children).
			sctx, span := obs.StartSpan(fctx, "etl.step",
				obs.String("step", st.Name), obs.String("type", string(st.Type)))
			// Panic isolation: a crashing step becomes a typed error and
			// cancels the flow instead of deadlocking it. runStep's own
			// deferred close has already run by the time we recover, so
			// downstream consumers still see end-of-stream.
			defer func() {
				if r := recover(); r != nil {
					err := exlerr.Recovered(r, debug.Stack())
					span.EndErr(err)
					fe.set(err)
					cancel()
				}
			}()
			err := runStep(sctx, f, st, cols, chans, store, schemas, &result)
			span.EndErr(err)
			if err != nil {
				fe.set(err)
				cancel()
			}
		}()
	}
	wg.Wait()
	if err := fe.get(); err != nil {
		return nil, err
	}
	if result == nil {
		return nil, fmt.Errorf("flow has no output step")
	}
	return result, nil
}

// send delivers a row downstream, aborting when the flow is cancelled so
// producers never block forever on a consumer that died.
func send(ctx context.Context, out chan<- Row, r Row) error {
	select {
	case out <- r:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func runStep(ctx context.Context, f *Flow, st *Step, cols map[string][]string, chans map[string]chan Row,
	store map[string]*model.Cube, schemas map[string]model.Schema, result **model.Cube) error {

	out := chans[st.Name] // nil for the output step
	// Closing the output channel unconditionally on exit — error, panic or
	// normal completion — guarantees downstream consumers always observe
	// end-of-stream and can never block on a dead producer.
	defer func() {
		if out != nil {
			close(out)
		}
	}()
	if hp := stepHook.Load(); hp != nil {
		(*hp)(f.TgdID, st.Name)
	}

	switch st.Type {
	case TableInput:
		cube, ok := store[st.Table]
		if !ok {
			return fmt.Errorf("table %s not available", st.Table)
		}
		sch := cube.Schema()
		idx := make([]int, len(st.Fields))
		for i, fld := range st.Fields {
			if j := sch.DimIndex(fld); j >= 0 {
				idx[i] = j
			} else if fld == sch.Measure {
				idx[i] = -1
			} else {
				return fmt.Errorf("table %s has no column %s", st.Table, fld)
			}
		}
		filterIdx := -2
		if st.FilterField != "" {
			filterIdx = sch.DimIndex(st.FilterField)
			if filterIdx < 0 {
				return fmt.Errorf("filter column %s not in %s", st.FilterField, st.Table)
			}
		}
		for _, tu := range cube.Tuples() {
			if filterIdx >= 0 && !tu.Dims[filterIdx].Equal(st.filterVal) {
				continue
			}
			row := make(Row, len(idx))
			bad := false
			for i, j := range idx {
				var v model.Value
				if j < 0 {
					v = model.Num(tu.Measure)
				} else {
					v = tu.Dims[j]
				}
				if st.Shifts != nil && st.Shifts[i] != 0 {
					sv, err := ops.ShiftValue(v, st.Shifts[i])
					if err != nil {
						return err
					}
					v = sv
				}
				if !v.IsValid() {
					bad = true
					break
				}
				row[i] = v
			}
			if !bad {
				if err := send(ctx, out, row); err != nil {
					return err
				}
			}
		}
		return nil

	case MergeJoin:
		leftCh, rightCh := chans[st.Left], chans[st.Right]
		leftCols, rightCols := cols[st.Left], cols[st.Right]
		lk := make([]int, len(st.Keys))
		rk := make([]int, len(st.Keys))
		for i, k := range st.Keys {
			lk[i] = indexOf(leftCols, k)
			rk[i] = indexOf(rightCols, k)
			if lk[i] < 0 || rk[i] < 0 {
				return fmt.Errorf("join key %s missing", k)
			}
		}
		var keep []int
		for j, c := range rightCols {
			if !containsStr(st.Keys, c) {
				keep = append(keep, j)
			}
		}
		// Build side: the right stream is buffered into a hash index.
		index := make(map[string][]Row)
		keyBuf := make([]model.Value, len(rk))
		for r := range rightCh {
			ok := true
			for i, j := range rk {
				if !r[j].IsValid() {
					ok = false
					break
				}
				keyBuf[i] = r[j]
			}
			if !ok {
				continue
			}
			k := model.EncodeKey(keyBuf)
			index[k] = append(index[k], r)
		}
		// Probe side: the left stream flows through.
		for l := range leftCh {
			ok := true
			for i, j := range lk {
				if !l[j].IsValid() {
					ok = false
					break
				}
				keyBuf[i] = l[j]
			}
			if !ok {
				continue
			}
			for _, r := range index[model.EncodeKey(keyBuf)] {
				nr := make(Row, 0, len(l)+len(keep))
				nr = append(nr, l...)
				for _, j := range keep {
					nr = append(nr, r[j])
				}
				if err := send(ctx, out, nr); err != nil {
					return err
				}
			}
		}
		return nil

	case Calculator:
		in := chans[f.Inputs(st.Name)[0]]
		myCols := cols[st.Name]
		for row := range in {
			nr := make(Row, 0, len(myCols))
			nr = append(nr, row...)
			failed := false
			for _, c := range st.Calcs {
				v, err := frame.Eval(c.Expr(), myCols[:len(nr)], nr)
				if err != nil {
					return err
				}
				if !v.IsValid() {
					// Undefined point: the row contributes nothing.
					failed = true
					break
				}
				nr = append(nr, v)
			}
			if !failed {
				if err := send(ctx, out, nr); err != nil {
					return err
				}
			}
		}
		return nil

	case Aggregator:
		in := chans[f.Inputs(st.Name)[0]]
		inCols := cols[f.Inputs(st.Name)[0]]
		ki := make([]int, len(st.Keys))
		for i, k := range st.Keys {
			ki[i] = indexOf(inCols, k)
			if ki[i] < 0 {
				return fmt.Errorf("group key %s missing", k)
			}
		}
		vi := indexOf(inCols, st.ValueField)
		if vi < 0 {
			return fmt.Errorf("value field %s missing", st.ValueField)
		}
		type group struct {
			key []model.Value
			agg ops.Aggregator
		}
		groups := make(map[string]*group)
		keyBuf := make([]model.Value, len(ki))
		for row := range in {
			for i, j := range ki {
				keyBuf[i] = row[j]
			}
			v, ok := row[vi].AsNumber()
			if !ok {
				return fmt.Errorf("non-numeric aggregation input %v", row[vi])
			}
			k := model.EncodeKey(keyBuf)
			g, okG := groups[k]
			if !okG {
				agg, err := ops.NewAggregator(st.Agg)
				if err != nil {
					return err
				}
				g = &group{key: append([]model.Value(nil), keyBuf...), agg: agg}
				groups[k] = g
			}
			g.agg.Add(v)
		}
		keys := make([]string, 0, len(groups))
		for k := range groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			g := groups[k]
			if err := send(ctx, out, append(append(Row(nil), g.key...), model.Num(g.agg.Result()))); err != nil {
				return err
			}
		}
		return nil

	case SeriesCalc:
		in := chans[f.Inputs(st.Name)[0]]
		inCols := cols[f.Inputs(st.Name)[0]]
		ti := indexOf(inCols, st.TimeField)
		vi := indexOf(inCols, st.ValueField)
		if ti < 0 || vi < 0 {
			return fmt.Errorf("series fields %s, %s missing", st.TimeField, st.ValueField)
		}
		type point struct {
			p model.Period
			v float64
		}
		var pts []point
		for row := range in {
			p, ok := row[ti].AsPeriod()
			if !ok {
				return fmt.Errorf("non-period time value %v", row[ti])
			}
			v, ok := row[vi].AsNumber()
			if !ok {
				return fmt.Errorf("non-numeric series value %v", row[vi])
			}
			pts = append(pts, point{p, v})
		}
		// Tie-break duplicate periods on value: sort.Slice is unstable
		// and a nondeterministic order would leak into the series output.
		sort.Slice(pts, func(i, j int) bool {
			if c := pts[i].p.Compare(pts[j].p); c != 0 {
				return c < 0
			}
			return pts[i].v < pts[j].v
		})
		vals := make([]float64, len(pts))
		for i, pt := range pts {
			vals[i] = pt.v
		}
		fn, err := ops.Series(st.Op)
		if err != nil {
			return err
		}
		seasonLen := 1
		if len(pts) > 0 {
			seasonLen = ops.SeasonLength(pts[0].p.Freq)
		}
		res, err := fn(vals, seasonLen, st.Params)
		if err != nil {
			return err
		}
		for i, pt := range pts {
			if err := send(ctx, out, Row{model.Per(pt.p), model.Num(res[i])}); err != nil {
				return err
			}
		}
		return nil

	case PadJoin:
		leftCh, rightCh := chans[st.Left], chans[st.Right]
		leftCols, rightCols := cols[st.Left], cols[st.Right]
		type entry struct {
			key []model.Value
			v   float64
		}
		collect := func(ch <-chan Row, colNames []string, valField string) (map[string]entry, error) {
			ki := make([]int, len(st.Keys))
			for i, k := range st.Keys {
				ki[i] = indexOf(colNames, k)
				if ki[i] < 0 {
					return nil, fmt.Errorf("pad join key %s missing", k)
				}
			}
			vi := indexOf(colNames, valField)
			if vi < 0 {
				return nil, fmt.Errorf("pad join value field %s missing", valField)
			}
			out := make(map[string]entry)
			keyBuf := make([]model.Value, len(ki))
			for row := range ch {
				ok := true
				for i, j := range ki {
					if !row[j].IsValid() {
						ok = false
						break
					}
					keyBuf[i] = row[j]
				}
				if !ok || !row[vi].IsValid() {
					continue
				}
				v, isNum := row[vi].AsNumber()
				if !isNum {
					return nil, fmt.Errorf("pad join: non-numeric value %v", row[vi])
				}
				out[model.EncodeKey(keyBuf)] = entry{key: append([]model.Value(nil), keyBuf...), v: v}
			}
			return out, nil
		}
		mr, err := collect(rightCh, rightCols, st.RightField)
		if err != nil {
			return err
		}
		ml, err := collect(leftCh, leftCols, st.ValueField)
		if err != nil {
			return err
		}
		fn, err := ops.Scalar(st.Op)
		if err != nil {
			return err
		}
		emit := func(key []model.Value, l, r float64) error {
			v, err := fn(l, r)
			if err != nil {
				if ops.ErrUndefined(err) {
					return nil
				}
				return err
			}
			return send(ctx, out, append(append(Row(nil), key...), model.Num(v)))
		}
		for k, e := range ml {
			r := st.Default
			if o, ok := mr[k]; ok {
				r = o.v
			}
			if err := emit(e.key, e.v, r); err != nil {
				return err
			}
		}
		for k, e := range mr {
			if _, ok := ml[k]; ok {
				continue
			}
			if err := emit(e.key, st.Default, e.v); err != nil {
				return err
			}
		}
		return nil

	case TableOutput:
		in := chans[f.Inputs(st.Name)[0]]
		inCols := cols[f.Inputs(st.Name)[0]]
		sch, ok := schemas[st.Table]
		if !ok {
			return fmt.Errorf("no schema for output %s", st.Table)
		}
		idx := make([]int, len(st.Fields))
		for i, fld := range st.Fields {
			idx[i] = indexOf(inCols, fld)
			if idx[i] < 0 {
				return fmt.Errorf("output field %s missing from stream", fld)
			}
		}
		cube := model.NewCube(sch)
		dims := make([]model.Value, len(sch.Dims))
		for row := range in {
			bad := false
			for i := 0; i < len(sch.Dims); i++ {
				v := row[idx[i]]
				if !v.IsValid() {
					bad = true
					break
				}
				dims[i] = v
			}
			mv := row[idx[len(idx)-1]]
			if bad || !mv.IsValid() {
				continue
			}
			m, ok := mv.AsNumber()
			if !ok {
				return fmt.Errorf("non-numeric measure %v", mv)
			}
			if err := cube.Put(dims, m); err != nil {
				return err
			}
		}
		// Publish the cube only after the stream completed: a flow that
		// errors never exposes a partially-written result.
		if err := ctx.Err(); err != nil {
			return err
		}
		*result = cube
		return nil

	default:
		return fmt.Errorf("unknown step type %s", st.Type)
	}
}

func indexOf(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}
