// Package etl implements the ETL execution target of Section 5.3: schema
// mappings are translated into metadata-driven ETL jobs — one flow per tgd,
// composed "according to tgds total order" — and executed by a streaming
// runtime in which each step is a goroutine and rows flow through channels.
//
// Flow shapes follow the paper's Figure 1: a data source step per lhs atom,
// merge steps joining the streams on dimensions, a calculation step
// implementing the rhs, an aggregation step when grouping is needed, and an
// output step writing the result back. Whole-series operators, which the
// target does not support natively (see ops.Supports), are provided as
// user-defined steps, matching "calculation steps can be easily replaced by
// user-defined steps in order to extend the statistical capabilities".
package etl

import (
	"encoding/json"
	"fmt"
	"strings"

	"exlengine/internal/frame"
	"exlengine/internal/model"
)

// StepType identifies the kind of an ETL step.
type StepType string

// Step types. TableInput folds the per-atom key preparation (renames, key
// shifts, constant filters) into the source step's metadata.
const (
	TableInput  StepType = "table_input"
	MergeJoin   StepType = "merge_join"
	Calculator  StepType = "calculator"
	Aggregator  StepType = "aggregator"
	SeriesCalc  StepType = "series_calc" // user-defined whole-stream step
	PadJoin     StepType = "pad_join"    // outer join with default padding (vsum0/vsub0)
	TableOutput StepType = "table_output"
)

// Calc is one calculated field of a Calculator step. The expression is
// carried in-memory for execution; Display is its textual form for the
// metadata catalog.
type Calc struct {
	Field   string `json:"field"`
	Display string `json:"expr"`

	expr frame.Expr
}

// Expr returns the executable expression of the calculated field.
func (c Calc) Expr() frame.Expr { return c.expr }

// Step is the metadata of one ETL step.
type Step struct {
	Name string   `json:"name"`
	Type StepType `json:"type"`

	// TableInput / TableOutput.
	Table  string   `json:"table,omitempty"`
	Fields []string `json:"fields,omitempty"` // source columns
	As     []string `json:"as,omitempty"`     // stream names for Fields
	Shifts []int64  `json:"shifts,omitempty"` // per-field key shift (inputs)

	// TableInput constant filter (from constant lhs dimension terms).
	FilterField string `json:"filter_field,omitempty"`
	FilterValue string `json:"filter_value,omitempty"`
	filterVal   model.Value

	// MergeJoin.
	Left  string   `json:"left,omitempty"`
	Right string   `json:"right,omitempty"`
	Keys  []string `json:"keys,omitempty"` // join or group keys

	// Calculator.
	Calcs []Calc `json:"calcs,omitempty"`

	// Aggregator.
	Agg        string `json:"agg,omitempty"`
	ValueField string `json:"value_field,omitempty"`
	OutField   string `json:"out_field,omitempty"`

	// SeriesCalc.
	Op        string    `json:"op,omitempty"`
	Params    []float64 `json:"params,omitempty"`
	TimeField string    `json:"time_field,omitempty"`

	// PadJoin: the right stream's value field and the default substituted
	// for missing tuples (Agg-style fields Left/Right/Keys/ValueField/
	// OutField are reused for the left stream and the output).
	RightField string  `json:"right_field,omitempty"`
	Default    float64 `json:"default,omitempty"`
}

// Hop is a directed edge between two steps of a flow.
type Hop struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// Flow is the translation of one tgd: a small DAG of steps.
type Flow struct {
	TgdID  string `json:"tgd"`
	Target string `json:"target"`
	Steps  []Step `json:"steps"`
	Hops   []Hop  `json:"hops"`
}

// Step returns the step with the given name, or nil.
func (f *Flow) Step(name string) *Step {
	for i := range f.Steps {
		if f.Steps[i].Name == name {
			return &f.Steps[i]
		}
	}
	return nil
}

// Inputs lists the names of the steps feeding the given step, preserving
// hop order.
func (f *Flow) Inputs(name string) []string {
	var out []string
	for _, h := range f.Hops {
		if h.To == name {
			out = append(out, h.From)
		}
	}
	return out
}

// Job is a complete ETL job: flows in tgd total order.
type Job struct {
	Name  string  `json:"name"`
	Flows []*Flow `json:"flows"`
}

// MarshalJSON is the metadata-catalog export of the job (the equivalent of
// feeding Kettle's repository).
func (j *Job) MarshalMetadata() ([]byte, error) {
	return json.MarshalIndent(j, "", "  ")
}

// Summary renders the flow structure compactly, one flow per line, e.g.
//
//	t2 -> RGDP: table_input(RGDPPC), table_input(PQR) | merge_join | calculator | table_output(RGDP)
func (j *Job) Summary() string {
	var b strings.Builder
	for _, f := range j.Flows {
		fmt.Fprintf(&b, "%s -> %s: %s\n", f.TgdID, f.Target, f.structure())
	}
	return b.String()
}

func (f *Flow) structure() string {
	var stages []string
	var inputs []string
	for _, s := range f.Steps {
		switch s.Type {
		case TableInput:
			inputs = append(inputs, fmt.Sprintf("table_input(%s)", s.Table))
		case MergeJoin:
			stages = append(stages, "merge_join")
		case Calculator:
			stages = append(stages, "calculator")
		case Aggregator:
			stages = append(stages, fmt.Sprintf("aggregator(%s)", s.Agg))
		case SeriesCalc:
			stages = append(stages, fmt.Sprintf("series_calc(%s)", s.Op))
		case PadJoin:
			stages = append(stages, fmt.Sprintf("pad_join(%s)", s.Op))
		case TableOutput:
			stages = append(stages, fmt.Sprintf("table_output(%s)", s.Table))
		}
	}
	all := append([]string{strings.Join(inputs, ", ")}, stages...)
	return strings.Join(all, " | ")
}
