package etl

import (
	"encoding/json"
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/workload"
)

func compile(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFigure1FlowShape reproduces the paper's Figure 1: the flow generated
// for tgd (2) has two data source steps, a merge step joining them on the
// dimensions, a calculation step and an output step.
func TestFigure1FlowShape(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	job, err := Translate(m, "gdp")
	if err != nil {
		t.Fatal(err)
	}
	var flow *Flow
	for _, f := range job.Flows {
		if f.Target == "RGDP" {
			flow = f
		}
	}
	if flow == nil {
		t.Fatal("no flow for RGDP")
	}

	var inputs, merges, calcs, outputs int
	for _, s := range flow.Steps {
		switch s.Type {
		case TableInput:
			inputs++
		case MergeJoin:
			merges++
			if len(s.Keys) != 2 {
				t.Errorf("merge keys = %v, want the two shared dimensions", s.Keys)
			}
		case Calculator:
			calcs++
		case TableOutput:
			outputs++
		}
	}
	if inputs != 2 || merges != 1 || calcs != 1 || outputs != 1 {
		t.Errorf("flow shape = %d inputs, %d merges, %d calcs, %d outputs:\n%s",
			inputs, merges, calcs, outputs, job.Summary())
	}
	// The hops wire input -> merge -> calc -> out.
	if len(flow.Hops) != 4 {
		t.Errorf("hops = %v", flow.Hops)
	}
	if got := flow.Inputs("merge1"); len(got) != 2 {
		t.Errorf("merge inputs = %v", got)
	}
}

func TestJobSummaryAndMetadata(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	job, err := Translate(m, "gdp")
	if err != nil {
		t.Fatal(err)
	}
	sum := job.Summary()
	for _, frag := range []string{
		"table_input(RGDPPC), table_input(PQR) | merge_join | calculator | table_output(RGDP)",
		"series_calc(stl_t)",
		"aggregator(sum)",
		"aggregator(avg)",
	} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary missing %q:\n%s", frag, sum)
		}
	}

	// The metadata export is valid JSON carrying the full flow structure.
	raw, err := job.MarshalMetadata()
	if err != nil {
		t.Fatal(err)
	}
	var back Job
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Flows) != 5 {
		t.Errorf("metadata flows = %d", len(back.Flows))
	}
	if back.Flows[1].Steps[0].Type != TableInput {
		t.Errorf("metadata step type = %v", back.Flows[1].Steps[0].Type)
	}
}

// TestETLMatchesChase validates the ETL target against the chase on all
// three example programs (black boxes run as user-defined steps).
func TestETLMatchesChase(t *testing.T) {
	cases := []struct {
		name string
		prog string
		data workload.Data
	}{
		{"gdp", workload.GDPProgram, workload.GDPSource(workload.GDPConfig{Days: 400, Regions: 4})},
		{"inflation", workload.InflationProgram, workload.InflationSource(6, 30, 2)},
		{"supervision", workload.SupervisionProgram, workload.SupervisionSource(8, 16, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := compile(t, tc.prog)
			ref, err := chase.New(m).Solve(chase.Instance(tc.data))
			if err != nil {
				t.Fatal(err)
			}
			job, err := Translate(m, tc.name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(job, m, tc.data)
			if err != nil {
				t.Fatal(err)
			}
			for _, rel := range m.Derived {
				if !got[rel].Equal(ref[rel], 1e-6) {
					t.Errorf("%s differs between ETL and chase:\n%s",
						rel, strings.Join(got[rel].Diff(ref[rel], 1e-6, 5), "\n"))
				}
			}
		})
	}
}

func TestETLShiftFoldedIntoInput(t *testing.T) {
	// The fused PCHNG tgd reads GDPT twice; the shifted atom's input step
	// carries the key shift in its metadata.
	m := compile(t, workload.GDPProgram)
	job, err := Translate(m, "gdp")
	if err != nil {
		t.Fatal(err)
	}
	var flow *Flow
	for _, f := range job.Flows {
		if f.Target == "PCHNG" {
			flow = f
		}
	}
	shifted := false
	for _, s := range flow.Steps {
		if s.Type != TableInput {
			continue
		}
		for _, sh := range s.Shifts {
			if sh != 0 {
				shifted = true
			}
		}
	}
	if !shifted {
		t.Errorf("PCHNG flow lost the q-1 key shift:\n%s", job.Summary())
	}
}

func TestETLEmptySource(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	job, err := Translate(m, "gdp")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(job, m, workload.Data{})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range m.Derived {
		if got[rel].Len() != 0 {
			t.Errorf("%s should be empty", rel)
		}
	}
}

func TestETLUndefinedPoints(t *testing.T) {
	m := compile(t, `
cube A(t: year) measure v
B := 1 / A
`)
	c := model.NewCube(model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	_ = c.Put([]model.Value{model.Per(model.NewAnnual(2000))}, 2)
	_ = c.Put([]model.Value{model.Per(model.NewAnnual(2001))}, 0)
	job, err := Translate(m, "t")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(job, m, workload.Data{"A": c})
	if err != nil {
		t.Fatal(err)
	}
	if got["B"].Len() != 1 {
		t.Errorf("B len = %d, want 1 (zero row dropped)", got["B"].Len())
	}
}
