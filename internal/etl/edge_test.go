package etl

import (
	"strings"
	"testing"

	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// TestETLConstantFilterInput exercises the TableInput filter metadata
// generated from constant lhs dimension terms.
func TestETLConstantFilterInput(t *testing.T) {
	north := model.Str("north")
	schemas := map[string]model.Schema{
		"A": model.NewSchema("A",
			[]model.Dim{{Name: "t", Type: model.TYear}, {Name: "r", Type: model.TString}}, "v"),
		"B": model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
	}
	tgd := &mapping.Tgd{
		ID:   "sel",
		Kind: mapping.TupleLevel,
		Lhs: []mapping.Atom{{Rel: "A",
			Dims: []mapping.DimTerm{mapping.V("t"), {Const: &north}}, MVar: "v"}},
		Rhs:     mapping.Atom{Rel: "B", Dims: []mapping.DimTerm{mapping.V("t")}},
		Measure: mapping.MV("v"),
	}
	flow, err := TranslateTgd(tgd, schemas)
	if err != nil {
		t.Fatal(err)
	}
	in := flow.Step("in1")
	if in == nil || in.FilterField != "r" || in.FilterValue != "north" {
		t.Fatalf("input step = %+v", in)
	}

	a := model.NewCube(schemas["A"])
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2000)), model.Str("north")}, 1)
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2000)), model.Str("south")}, 2)
	m := &mapping.Mapping{Schemas: schemas, Elementary: []string{"A"}, Tgds: []*mapping.Tgd{tgd}}
	job := &Job{Name: "t", Flows: []*Flow{flow}}
	out, err := Run(job, m, map[string]*model.Cube{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if out["B"].Len() != 1 {
		t.Errorf("B len = %d", out["B"].Len())
	}
	if got, _ := out["B"].Get([]model.Value{model.Per(model.NewAnnual(2000))}); got != 1 {
		t.Errorf("B(2000) = %v", got)
	}
}

// TestETLEgdViolationSurfaces: an output cube violating functionality (a
// hand-built projection without aggregation) fails the flow.
func TestETLEgdViolation(t *testing.T) {
	schemas := map[string]model.Schema{
		"A": model.NewSchema("A",
			[]model.Dim{{Name: "t", Type: model.TYear}, {Name: "r", Type: model.TString}}, "v"),
		"B": model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
	}
	tgd := &mapping.Tgd{
		ID:   "proj",
		Kind: mapping.TupleLevel,
		Lhs: []mapping.Atom{{Rel: "A",
			Dims: []mapping.DimTerm{mapping.V("t"), mapping.V("r")}, MVar: "v"}},
		Rhs:     mapping.Atom{Rel: "B", Dims: []mapping.DimTerm{mapping.V("t")}},
		Measure: mapping.MV("v"),
	}
	flow, err := TranslateTgd(tgd, schemas)
	if err != nil {
		t.Fatal(err)
	}
	a := model.NewCube(schemas["A"])
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2000)), model.Str("x")}, 1)
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2000)), model.Str("y")}, 2)
	m := &mapping.Mapping{Schemas: schemas, Elementary: []string{"A"}, Tgds: []*mapping.Tgd{tgd}}
	_, err = Run(&Job{Name: "t", Flows: []*Flow{flow}}, m, map[string]*model.Cube{"A": a})
	if err == nil || !strings.Contains(err.Error(), "functional dependency") {
		t.Fatalf("want egd violation, got %v", err)
	}
}

// TestETLMultiConsumerRejected: the runtime only supports tree-shaped
// flows; a hand-built flow with two consumers of one step is rejected.
func TestETLMultiConsumerRejected(t *testing.T) {
	schemas := map[string]model.Schema{
		"A": model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
		"B": model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
	}
	flow := &Flow{
		TgdID:  "x",
		Target: "B",
		Steps: []Step{
			{Name: "in", Type: TableInput, Table: "A", Fields: []string{"t", "v"}, As: []string{"t", "v"}, Shifts: []int64{0, 0}},
			{Name: "c1", Type: Calculator},
			{Name: "c2", Type: Calculator},
			{Name: "out", Type: TableOutput, Table: "B", Fields: []string{"t", "v"}},
		},
		Hops: []Hop{{From: "in", To: "c1"}, {From: "in", To: "c2"}, {From: "c1", To: "out"}},
	}
	m := &mapping.Mapping{Schemas: schemas, Elementary: []string{"A"}}
	_, err := Run(&Job{Flows: []*Flow{flow}}, m, map[string]*model.Cube{"A": model.NewCube(schemas["A"])})
	if err == nil || !strings.Contains(err.Error(), "more than one consumer") {
		t.Fatalf("want multi-consumer error, got %v", err)
	}
}

// TestETLNoOutputStep: a flow without an output step is rejected.
func TestETLNoOutputStep(t *testing.T) {
	schemas := map[string]model.Schema{
		"A": model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
	}
	flow := &Flow{
		TgdID: "x", Target: "B",
		Steps: []Step{{Name: "in", Type: TableInput, Table: "A",
			Fields: []string{"t", "v"}, As: []string{"t", "v"}, Shifts: []int64{0, 0}}},
	}
	m := &mapping.Mapping{Schemas: schemas, Elementary: []string{"A"}}
	// A non-empty cube: the malformed flow must fail cleanly rather than
	// deadlock writing to a missing channel.
	a := model.NewCube(schemas["A"])
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2000))}, 1)
	_, err := Run(&Job{Flows: []*Flow{flow}}, m, map[string]*model.Cube{"A": a})
	if err == nil || !strings.Contains(err.Error(), "no consumer") {
		t.Fatalf("want no-consumer error, got %v", err)
	}
}

// TestFlowStepHelpers covers the metadata accessors.
func TestFlowStepHelpers(t *testing.T) {
	f := &Flow{Steps: []Step{{Name: "a"}, {Name: "b"}}, Hops: []Hop{{From: "a", To: "b"}}}
	if f.Step("a") == nil || f.Step("zz") != nil {
		t.Error("Step lookup")
	}
	if got := f.Inputs("b"); len(got) != 1 || got[0] != "a" {
		t.Errorf("Inputs = %v", got)
	}
}
