package etl

import (
	"fmt"

	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// Translate renders a whole mapping as an ETL job: one flow per tgd,
// composed in the tgds' total order.
func Translate(m *mapping.Mapping, name string) (*Job, error) {
	job := &Job{Name: name}
	for _, t := range m.Tgds {
		f, err := TranslateTgd(t, m.Schemas)
		if err != nil {
			return nil, fmt.Errorf("etl: tgd %s: %w", t.ID, err)
		}
		job.Flows = append(job.Flows, f)
	}
	return job, nil
}

// TranslateTgd builds the flow for one tgd, with the Figure 1 shape: one
// data source step per lhs atom, a cascade of merge steps on shared
// variables, a calculation step for the rhs, an aggregation step when
// grouping is needed, and an output step.
func TranslateTgd(t *mapping.Tgd, schemas map[string]model.Schema) (*Flow, error) {
	out, ok := schemas[t.Rhs.Rel]
	if !ok {
		return nil, fmt.Errorf("no schema for %s", t.Rhs.Rel)
	}
	f := &Flow{TgdID: t.ID, Target: t.Target()}

	if t.Kind == mapping.BlackBox {
		in, ok := schemas[t.Lhs[0].Rel]
		if !ok {
			return nil, fmt.Errorf("no schema for %s", t.Lhs[0].Rel)
		}
		f.Steps = append(f.Steps,
			Step{Name: "in", Type: TableInput, Table: t.Lhs[0].Rel,
				Fields: []string{in.Dims[0].Name, in.Measure},
				As:     []string{in.Dims[0].Name, in.Measure}},
			Step{Name: "series", Type: SeriesCalc, Op: t.BB, Params: t.BBParams,
				TimeField: in.Dims[0].Name, ValueField: in.Measure},
			Step{Name: "out", Type: TableOutput, Table: t.Rhs.Rel,
				Fields: []string{in.Dims[0].Name, in.Measure},
				As:     []string{out.Dims[0].Name, out.Measure}},
		)
		f.Hops = []Hop{{From: "in", To: "series"}, {From: "series", To: "out"}}
		return f, nil
	}

	if t.Kind == mapping.PadVector {
		return translatePadJoin(t, schemas, f, out)
	}

	// One data source step per lhs atom, with variable naming, key shifts
	// and constant filters folded into the step metadata.
	var atomSteps []string
	atomCols := make([][]string, len(t.Lhs))
	for i, atom := range t.Lhs {
		sch, ok := schemas[atom.Rel]
		if !ok {
			return nil, fmt.Errorf("no schema for %s", atom.Rel)
		}
		st := Step{Name: fmt.Sprintf("in%d", i+1), Type: TableInput, Table: atom.Rel}
		seen := make(map[string]bool)
		for j, d := range atom.Dims {
			switch {
			case d.Const != nil:
				if st.FilterField != "" {
					return nil, fmt.Errorf("multiple constant dimensions in one atom are not supported")
				}
				st.FilterField = sch.Dims[j].Name
				st.FilterValue = d.Const.String()
				st.filterVal = *d.Const
			case d.Func != "":
				return nil, fmt.Errorf("dimension function %s in lhs is not translatable", d.Func)
			default:
				if seen[d.Var] {
					return nil, fmt.Errorf("repeated variable %s within an atom is not supported", d.Var)
				}
				seen[d.Var] = true
				st.Fields = append(st.Fields, sch.Dims[j].Name)
				st.As = append(st.As, d.Var)
				// Stored value is Var+Shift, so the key column Var is the
				// stored value shifted by -Shift.
				st.Shifts = append(st.Shifts, -d.Shift)
				atomCols[i] = append(atomCols[i], d.Var)
			}
		}
		if atom.MVar != "" {
			st.Fields = append(st.Fields, sch.Measure)
			st.As = append(st.As, atom.MVar)
			st.Shifts = append(st.Shifts, 0)
			atomCols[i] = append(atomCols[i], atom.MVar)
		}
		f.Steps = append(f.Steps, st)
		atomSteps = append(atomSteps, st.Name)
	}

	// Merge cascade on shared variables.
	cur := atomSteps[0]
	curCols := atomCols[0]
	for i := 1; i < len(atomSteps); i++ {
		var keys []string
		for _, c := range atomCols[i] {
			if containsStr(curCols, c) {
				keys = append(keys, c)
			}
		}
		mj := Step{Name: fmt.Sprintf("merge%d", i), Type: MergeJoin,
			Left: cur, Right: atomSteps[i], Keys: keys}
		f.Steps = append(f.Steps, mj)
		f.Hops = append(f.Hops, Hop{From: cur, To: mj.Name}, Hop{From: atomSteps[i], To: mj.Name})
		cur = mj.Name
		curCols = unionStr(curCols, atomCols[i])
	}

	// Calculation step: rhs dimension terms and the measure expression.
	// Calculated field names must not collide with the stream's variable
	// columns (e.g. a dimension variable literally named "m").
	taken := make(map[string]bool)
	for _, c := range curCols {
		taken[c] = true
	}
	fresh := func(base string) string {
		name := base
		for n := 2; taken[name]; n++ {
			name = fmt.Sprintf("%s%d", base, n)
		}
		taken[name] = true
		return name
	}
	calc := Step{Name: "calc", Type: Calculator}
	var dimFields []string
	for k, d := range t.Rhs.Dims {
		field := fresh(fmt.Sprintf("d%d", k+1))
		var e frame.Expr
		switch {
		case d.Const != nil:
			return nil, fmt.Errorf("constant rhs dimensions are not supported")
		case d.Func != "":
			e = frame.DimApply{Fn: d.Func, X: frame.Col{Name: d.Var}}
		case d.Shift != 0:
			e = frame.PShift{X: frame.Col{Name: d.Var}, N: d.Shift}
		default:
			e = frame.Col{Name: d.Var}
		}
		calc.Calcs = append(calc.Calcs, Calc{Field: field, Display: d.String(), expr: e})
		dimFields = append(dimFields, field)
	}
	me, err := measureExpr(t.Measure)
	if err != nil {
		return nil, err
	}
	mField := fresh("m")
	calc.Calcs = append(calc.Calcs, Calc{Field: mField, Display: t.Measure.String(), expr: me})
	f.Steps = append(f.Steps, calc)
	f.Hops = append(f.Hops, Hop{From: cur, To: "calc"})
	cur = "calc"

	if t.Kind == mapping.Aggregation {
		agg := Step{Name: "agg", Type: Aggregator, Keys: dimFields,
			Agg: t.Agg, ValueField: mField, OutField: mField}
		f.Steps = append(f.Steps, agg)
		f.Hops = append(f.Hops, Hop{From: cur, To: "agg"})
		cur = "agg"
	}

	outStep := Step{Name: "out", Type: TableOutput, Table: t.Rhs.Rel,
		Fields: append(append([]string(nil), dimFields...), mField),
		As:     append(append([]string(nil), out.DimNames()...), out.Measure)}
	f.Steps = append(f.Steps, outStep)
	f.Hops = append(f.Hops, Hop{From: cur, To: "out"})
	return f, nil
}

// translatePadJoin builds the flow for a padded vectorial tgd: two data
// source steps feed a pad_join step that ranges over the union of their
// dimension tuples.
func translatePadJoin(t *mapping.Tgd, schemas map[string]model.Schema, f *Flow, out model.Schema) (*Flow, error) {
	var atomSteps []string
	for i, atom := range t.Lhs {
		sch, ok := schemas[atom.Rel]
		if !ok {
			return nil, fmt.Errorf("no schema for %s", atom.Rel)
		}
		st := Step{Name: fmt.Sprintf("in%d", i+1), Type: TableInput, Table: atom.Rel}
		for j, d := range atom.Dims {
			if d.Const != nil || d.Func != "" || d.Shift != 0 {
				return nil, fmt.Errorf("padded tgds require plain variable atoms")
			}
			st.Fields = append(st.Fields, sch.Dims[j].Name)
			st.As = append(st.As, d.Var)
			st.Shifts = append(st.Shifts, 0)
		}
		st.Fields = append(st.Fields, sch.Measure)
		st.As = append(st.As, atom.MVar)
		st.Shifts = append(st.Shifts, 0)
		f.Steps = append(f.Steps, st)
		atomSteps = append(atomSteps, st.Name)
	}
	keys := make([]string, len(t.Rhs.Dims))
	for i, d := range t.Rhs.Dims {
		keys[i] = d.Var
	}
	pj := Step{Name: "pad", Type: PadJoin, Left: atomSteps[0], Right: atomSteps[1],
		Keys: keys, Op: t.PadOp, Default: t.PadDefault,
		ValueField: t.Lhs[0].MVar, RightField: t.Lhs[1].MVar, OutField: "m"}
	f.Steps = append(f.Steps, pj)
	f.Hops = append(f.Hops,
		Hop{From: atomSteps[0], To: "pad"}, Hop{From: atomSteps[1], To: "pad"})
	outStep := Step{Name: "out", Type: TableOutput, Table: t.Rhs.Rel,
		Fields: append(append([]string(nil), keys...), "m"),
		As:     append(append([]string(nil), out.DimNames()...), out.Measure)}
	f.Steps = append(f.Steps, outStep)
	f.Hops = append(f.Hops, Hop{From: "pad", To: "out"})
	return f, nil
}

func measureExpr(m *mapping.MTerm) (frame.Expr, error) {
	switch m.Kind {
	case mapping.MVar:
		return frame.Col{Name: m.Var}, nil
	case mapping.MConst:
		return frame.Const{V: m.Val}, nil
	case mapping.MApply:
		args := make([]frame.Expr, 0, len(m.Args))
		for _, a := range m.Args {
			e, err := measureExpr(a)
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		return frame.Apply{Op: m.Op, Args: args, Params: append([]float64(nil), m.Params...)}, nil
	default:
		return nil, fmt.Errorf("unknown measure term kind %d", m.Kind)
	}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func unionStr(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, s := range b {
		if !containsStr(out, s) {
			out = append(out, s)
		}
	}
	return out
}
