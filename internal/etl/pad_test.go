package etl

import (
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/model"
	"exlengine/internal/workload"
)

const padProgram = `
cube A(t: year) measure v
cube B(t: year) measure v
S := vsum0(A, B)
`

func padData(t *testing.T) workload.Data {
	t.Helper()
	mk := func(name string, from, to int, base float64) *model.Cube {
		c := model.NewCube(model.NewSchema(name, []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
		for y := from; y <= to; y++ {
			if err := c.Put([]model.Value{model.Per(model.NewAnnual(y))}, base+float64(y-from)); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	return workload.Data{"A": mk("A", 2000, 2004, 10), "B": mk("B", 2002, 2006, 100)}
}

func TestPadJoinFlowShape(t *testing.T) {
	m := compile(t, padProgram)
	job, err := Translate(m, "pad")
	if err != nil {
		t.Fatal(err)
	}
	sum := job.Summary()
	if !strings.Contains(sum, "pad_join(add)") {
		t.Errorf("summary missing pad_join:\n%s", sum)
	}
	flow := job.Flows[0]
	var pj *Step
	for i := range flow.Steps {
		if flow.Steps[i].Type == PadJoin {
			pj = &flow.Steps[i]
		}
	}
	if pj == nil {
		t.Fatal("no pad_join step")
	}
	if pj.Op != "add" || pj.Default != 0 || len(pj.Keys) != 1 {
		t.Errorf("pad step = %+v", pj)
	}
	// Metadata round trip.
	raw, err := job.MarshalMetadata()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"pad_join"`) {
		t.Errorf("metadata missing pad_join:\n%s", raw)
	}
}

func TestPadJoinRun(t *testing.T) {
	m := compile(t, padProgram)
	data := padData(t)
	ref, err := chase.New(m).Solve(chase.Instance(data))
	if err != nil {
		t.Fatal(err)
	}
	job, err := Translate(m, "pad")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(job, m, data)
	if err != nil {
		t.Fatal(err)
	}
	if !got["S"].Equal(ref["S"], 1e-9) {
		t.Errorf("ETL pad join differs from chase:\n%s",
			strings.Join(got["S"].Diff(ref["S"], 1e-9, 7), "\n"))
	}
	if got["S"].Len() != 7 {
		t.Errorf("S len = %d, want union support 7", got["S"].Len())
	}
}

func TestPadJoinEmptySides(t *testing.T) {
	m := compile(t, padProgram)
	data := padData(t)
	delete(data, "B") // missing -> empty cube
	job, err := Translate(m, "pad")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(job, m, data)
	if err != nil {
		t.Fatal(err)
	}
	// S = A + 0 everywhere.
	if got["S"].Len() != 5 {
		t.Errorf("S len = %d", got["S"].Len())
	}
	if v, _ := got["S"].Get([]model.Value{model.Per(model.NewAnnual(2000))}); v != 10 {
		t.Errorf("S(2000) = %v", v)
	}
}
