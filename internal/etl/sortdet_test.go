package etl

import (
	"context"
	"testing"

	"exlengine/internal/model"
)

// runCumsum pushes the rows through a SeriesCalc step and collects its
// output stream.
func runCumsum(t *testing.T, rows []Row) []Row {
	t.Helper()
	f := &Flow{
		Steps: []Step{
			{Name: "in", Type: TableInput, As: []string{"t", "v"}},
			{Name: "series", Type: SeriesCalc, Op: "cumsum", TimeField: "t", ValueField: "v"},
		},
		Hops: []Hop{{From: "in", To: "series"}},
	}
	cols := map[string][]string{"in": {"t", "v"}}
	in := make(chan Row, len(rows))
	out := make(chan Row, len(rows))
	chans := map[string]chan Row{"in": in, "series": out}
	for _, r := range rows {
		in <- r
	}
	close(in)
	if err := runStep(context.Background(), f, f.Step("series"), cols, chans, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	var got []Row
	for r := range out {
		got = append(got, r)
	}
	return got
}

// TestSeriesCalcDuplicatePeriodsDeterministic is the regression test for
// the unstable series sort: with duplicate periods in the stream (e.g. a
// panel projected down to its time dimension), the pre-fix sort ordered
// equal periods by input position, so upstream row order leaked into
// cumsum's running totals. The tie-break on value must make the output
// independent of input permutation.
func TestSeriesCalcDuplicatePeriodsDeterministic(t *testing.T) {
	const periods, dups = 8, 8
	var fwd, rev []Row
	for i := 0; i < periods*dups; i++ {
		q := model.NewQuarterly(2000, 1).Shift(int64(i % periods))
		fwd = append(fwd, Row{model.Per(q), model.Num(float64(i))})
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		rev = append(rev, fwd[i])
	}

	a := runCumsum(t, fwd)
	b := runCumsum(t, rev)
	if len(a) != len(b) || len(a) != periods*dups {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Fatalf("row %d differs between input orders: %v vs %v", i, a[i], b[i])
			}
		}
	}
}
