package etl

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/model"
)

// checkNoGoroutineLeak fails the test when the goroutine count does not
// return to (at most) its starting level shortly after the run — the
// leak-checking helper of the fault-tolerance work: a failed flow must
// not leave step goroutines parked on channels.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// bigYearCube returns a cube with well over chanCap tuples, so producers
// must block on channel sends if a consumer dies.
func bigYearCube(name string, n int) *model.Cube {
	c := model.NewCube(model.NewSchema(name, []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	for y := 0; y < n; y++ {
		_ = c.Put([]model.Value{model.Per(model.NewAnnual(1000 + y))}, float64(y+1))
	}
	return c
}

// TestNoGoroutineLeakOnDownstreamError: the output step fails immediately
// (unknown field) while the input step still has far more rows than the
// channel buffer holds. Without cancellation the producer would block on
// the full channel forever.
func TestNoGoroutineLeakOnDownstreamError(t *testing.T) {
	flow := &Flow{
		TgdID:  "t1",
		Target: "OUT",
		Steps: []Step{
			{Name: "in", Type: TableInput, Table: "A", Fields: []string{"t", "v"}, As: []string{"t", "v"}},
			{Name: "out", Type: TableOutput, Table: "OUT", Fields: []string{"t", "missing"}},
		},
		Hops: []Hop{{From: "in", To: "out"}},
	}
	store := map[string]*model.Cube{"A": bigYearCube("A", 5*chanCap)}
	schemas := map[string]model.Schema{
		"OUT": model.NewSchema("OUT", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
	}
	before := runtime.NumGoroutine()
	_, err := runFlow(context.Background(), flow, store, schemas)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v, want missing output field", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestNoGoroutineLeakOnStepPanic: a panicking step is recovered into a
// typed error, the flow is cancelled, and no goroutine is left behind —
// previously an unrecovered panic in a step goroutine killed the process.
func TestNoGoroutineLeakOnStepPanic(t *testing.T) {
	m := compile(t, "cube A(t: year) measure v\nB := A + 1")
	job, err := Translate(m, "leak")
	if err != nil {
		t.Fatal(err)
	}
	// Panic in the flow's calculator step, mid-stream.
	SetStepHook(func(flowID, step string) {
		if strings.HasPrefix(step, "calc") {
			panic("step exploded")
		}
	})
	defer SetStepHook(nil)

	before := runtime.NumGoroutine()
	out, err := Run(job, m, map[string]*model.Cube{"A": bigYearCube("A", 3*chanCap)})
	if err == nil {
		t.Fatal("panicking step must fail the run")
	}
	if !exlerr.IsPanic(err) {
		t.Errorf("panic not converted to a typed error: %v", err)
	}
	if exlerr.ClassOf(err) != exlerr.Fatal {
		t.Errorf("recovered panic must classify Fatal, got %v", exlerr.ClassOf(err))
	}
	if out != nil {
		t.Error("failed run must not return partial results")
	}
	checkNoGoroutineLeak(t, before)
}

// TestFlowErrFirstWins: under concurrent set calls the first error is
// kept, and later sets never replace it.
func TestFlowErrFirstWins(t *testing.T) {
	fe := &flowErr{}
	first := errors.New("first")
	fe.set(first)
	fe.set(errors.New("second"))
	if fe.get() != first {
		t.Fatalf("sequential: got %v, want first", fe.get())
	}

	fe = &flowErr{}
	const n = 64
	errs := make([]error, n)
	for i := range errs {
		errs[i] = fmt.Errorf("worker %d", i)
	}
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			fe.set(errs[i])
		}(i)
	}
	start.Done()
	done.Wait()
	won := fe.get()
	if won == nil {
		t.Fatal("no error recorded")
	}
	// The winner is one of the set errors, and it is stable.
	found := false
	for _, e := range errs {
		if won == e {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %v is not one of the set errors", won)
	}
	for i := 0; i < n; i++ {
		fe.set(errs[i])
	}
	if fe.get() != won {
		t.Error("first error was displaced by a later set")
	}
	fe.set(nil)
	if fe.get() != won {
		t.Error("set(nil) must not clear the error")
	}
}

// TestRunNoPartialResultsAfterFailedFlow: when a later flow fails, Run
// returns nil — cubes computed by earlier flows never escape, and the
// source map is untouched.
func TestRunNoPartialResultsAfterFailedFlow(t *testing.T) {
	m := compile(t, "cube A(t: year) measure v\nB := A + 1\nC := B * 2")
	job, err := Translate(m, "partial")
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Flows) < 2 {
		t.Fatalf("want at least two flows, got %d", len(job.Flows))
	}
	// Fail the last flow's output step.
	last := job.Flows[len(job.Flows)-1]
	SetStepHook(func(flowID, step string) {
		if flowID == last.TgdID && strings.HasPrefix(step, "out") {
			panic("late failure")
		}
	})
	defer SetStepHook(nil)

	source := map[string]*model.Cube{"A": bigYearCube("A", 50)}
	out, err := Run(job, m, source)
	if err == nil {
		t.Fatal("run must fail")
	}
	if out != nil {
		t.Errorf("failed run leaked partial results: %v", out)
	}
	if len(source) != 1 || source["A"] == nil {
		t.Errorf("source map mutated: %v", source)
	}
}

// TestRunContextCancellation: cancelling the context mid-run aborts the
// streaming goroutines promptly and leaks none of them.
func TestRunContextCancellation(t *testing.T) {
	m := compile(t, "cube A(t: year) measure v\nB := A + 1")
	job, err := Translate(m, "cancel")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel as soon as the first step starts.
	var once sync.Once
	SetStepHook(func(flowID, step string) { once.Do(cancel) })
	defer SetStepHook(nil)

	before := runtime.NumGoroutine()
	_, err = RunContext(ctx, job, m, map[string]*model.Cube{"A": bigYearCube("A", 5*chanCap)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestRunStillCorrectWithHookInstalled: a pass-through hook must not
// change results.
func TestRunStillCorrectWithHookInstalled(t *testing.T) {
	m := compile(t, "cube A(t: year) measure v\nB := A + 1")
	job, err := Translate(m, "hook")
	if err != nil {
		t.Fatal(err)
	}
	var calls int64
	var mu sync.Mutex
	SetStepHook(func(flowID, step string) { mu.Lock(); calls++; mu.Unlock() })
	defer SetStepHook(nil)

	out, err := Run(job, m, map[string]*model.Cube{"A": bigYearCube("A", 10)})
	if err != nil {
		t.Fatal(err)
	}
	if out["B"] == nil || out["B"].Len() != 10 {
		t.Errorf("unexpected result: %v", out)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls == 0 {
		t.Error("hook never invoked")
	}
}
