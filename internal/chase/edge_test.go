package chase

import (
	"strings"
	"testing"

	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// panelSchema builds A(t: year, r: string) with measure v.
func panelSchema(name string) model.Schema {
	return model.NewSchema(name,
		[]model.Dim{{Name: "t", Type: model.TYear}, {Name: "r", Type: model.TString}}, "v")
}

func panelCube(t *testing.T, vals map[int]map[string]float64) *model.Cube {
	t.Helper()
	c := model.NewCube(panelSchema("A"))
	for y, rs := range vals {
		for r, v := range rs {
			if err := c.Put([]model.Value{model.Per(model.NewAnnual(y)), model.Str(r)}, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// TestChaseConstantDimensionFilter exercises constant terms in lhs atoms
// (a selection), which the EXL generator never emits but the tgd language
// supports: A(t, "north", v) -> B(t, v).
func TestChaseConstantDimensionFilter(t *testing.T) {
	north := model.Str("north")
	m := &mapping.Mapping{
		Schemas: map[string]model.Schema{
			"A": panelSchema("A"),
			"B": model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
		},
		Elementary: []string{"A"},
		Tgds: []*mapping.Tgd{{
			ID:   "sel",
			Kind: mapping.TupleLevel,
			Lhs: []mapping.Atom{{Rel: "A",
				Dims: []mapping.DimTerm{mapping.V("t"), {Const: &north}}, MVar: "v"}},
			Rhs:     mapping.Atom{Rel: "B", Dims: []mapping.DimTerm{mapping.V("t")}},
			Measure: mapping.MV("v"),
		}},
	}
	a := panelCube(t, map[int]map[string]float64{
		2000: {"north": 1, "south": 2},
		2001: {"south": 3},
	})
	sol, err := New(m).Solve(Instance{"A": a})
	if err != nil {
		t.Fatal(err)
	}
	if sol["B"].Len() != 1 {
		t.Fatalf("B len = %d", sol["B"].Len())
	}
	if got, _ := sol["B"].Get([]model.Value{model.Per(model.NewAnnual(2000))}); got != 1 {
		t.Errorf("B(2000) = %v", got)
	}
}

// TestChaseLhsFunctionNotInvertible: dimension functions over unbound lhs
// variables are rejected rather than silently mis-evaluated.
func TestChaseLhsFunctionNotInvertible(t *testing.T) {
	m := &mapping.Mapping{
		Schemas: map[string]model.Schema{
			"A": model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TDay}}, "v"),
			"B": model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TDay}}, "v"),
		},
		Elementary: []string{"A"},
		Tgds: []*mapping.Tgd{{
			ID:   "bad",
			Kind: mapping.TupleLevel,
			Lhs: []mapping.Atom{{Rel: "A",
				Dims: []mapping.DimTerm{{Var: "t", Func: "quarter"}}, MVar: "v"}},
			Rhs:     mapping.Atom{Rel: "B", Dims: []mapping.DimTerm{mapping.V("t")}},
			Measure: mapping.MV("v"),
		}},
	}
	a := model.NewCube(m.Schemas["A"])
	_ = a.Put([]model.Value{model.Per(model.Period{Freq: model.Daily, Ord: 1})}, 1)
	_, err := New(m).Solve(Instance{"A": a})
	if err == nil || !strings.Contains(err.Error(), "not invertible") {
		t.Fatalf("want not-invertible error, got %v", err)
	}
}

// TestChaseMissingOperandRelation: a tgd reading an unknown relation fails
// cleanly.
func TestChaseMissingOperandRelation(t *testing.T) {
	m := &mapping.Mapping{
		Schemas: map[string]model.Schema{
			"B": model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
		},
		Tgds: []*mapping.Tgd{{
			ID:   "orphan",
			Kind: mapping.TupleLevel,
			Lhs: []mapping.Atom{{Rel: "GHOST",
				Dims: []mapping.DimTerm{mapping.V("t")}, MVar: "v"}},
			Rhs:     mapping.Atom{Rel: "B", Dims: []mapping.DimTerm{mapping.V("t")}},
			Measure: mapping.MV("v"),
		}},
	}
	if _, err := New(m).Solve(Instance{}); err == nil {
		t.Fatal("want missing-relation error")
	}
}

// TestChaseCrossProduct: two atoms with no shared variables produce the
// cartesian product of their bindings.
func TestChaseCrossProduct(t *testing.T) {
	mkSeries := func(name string, n int) (*model.Cube, model.Schema) {
		sch := model.NewSchema(name, []model.Dim{{Name: strings.ToLower(name), Type: model.TInt}}, "v")
		c := model.NewCube(sch)
		for i := 0; i < n; i++ {
			_ = c.Put([]model.Value{model.Int(int64(i))}, float64(i+1))
		}
		return c, sch
	}
	a, sa := mkSeries("A", 3)
	b, sb := mkSeries("B", 2)
	m := &mapping.Mapping{
		Schemas: map[string]model.Schema{
			"A": sa, "B": sb,
			"C": model.NewSchema("C", []model.Dim{{Name: "a", Type: model.TInt}, {Name: "b", Type: model.TInt}}, "v"),
		},
		Elementary: []string{"A", "B"},
		Tgds: []*mapping.Tgd{{
			ID:   "cross",
			Kind: mapping.TupleLevel,
			Lhs: []mapping.Atom{
				{Rel: "A", Dims: []mapping.DimTerm{mapping.V("x")}, MVar: "va"},
				{Rel: "B", Dims: []mapping.DimTerm{mapping.V("y")}, MVar: "vb"},
			},
			Rhs:     mapping.Atom{Rel: "C", Dims: []mapping.DimTerm{mapping.V("x"), mapping.V("y")}},
			Measure: mapping.MApp("mul", mapping.MV("va"), mapping.MV("vb")),
		}},
	}
	sol, err := New(m).Solve(Instance{"A": a, "B": b})
	if err != nil {
		t.Fatal(err)
	}
	if sol["C"].Len() != 6 {
		t.Fatalf("C len = %d, want 3x2", sol["C"].Len())
	}
	if got, _ := sol["C"].Get([]model.Value{model.Int(2), model.Int(1)}); got != 6 {
		t.Errorf("C(2,1) = %v", got)
	}
}
