// Package chase implements the data-exchange side of the paper (Section
// 4.2): given the schema mapping generated from an EXL program and a source
// instance, it computes the solution of the data exchange problem with a
// stratified variation of the chase.
//
// The tgds are full (no existential variables) and are applied in statement
// order, completely applying each one before the next, so aggregation and
// black-box dependencies always see fully computed operands. Termination
// follows from the finiteness of the source instance and the acyclicity of
// the program; the functionality egds are enforced during tuple insertion,
// and their violation (impossible for mappings generated from well-formed
// programs, but possible for hand-built ones) fails the chase as in the
// classical setting.
//
// The chase result is the reference against which every other target
// engine (SQL, ETL, frame) is validated.
package chase

import (
	"context"
	"errors"
	"fmt"

	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// Instance maps relation names to cube instances. It plays the role of
// both the source instance I and the target instance J.
type Instance map[string]*model.Cube

// Clone deep-copies the instance.
func (in Instance) Clone() Instance {
	out := make(Instance, len(in))
	for k, c := range in {
		out[k] = c.Clone()
	}
	return out
}

// Stats reports what a chase run did.
type Stats struct {
	Strata          int // tgds applied (one stratum each)
	TuplesGenerated int // tuples inserted into the target instance
	Bindings        int // lhs bindings enumerated across all tgds
}

// Solver chases a fixed mapping over varying source instances.
type Solver struct {
	m *mapping.Mapping
}

// New returns a Solver for the mapping.
func New(m *mapping.Mapping) *Solver { return &Solver{m: m} }

// Solve computes the solution J of the data exchange problem for source
// instance I. Relations missing from the source are treated as empty. The
// returned instance contains the copied elementary relations, every derived
// relation and any auxiliary relations of a normalized (unfused) mapping.
func (s *Solver) Solve(source Instance) (Instance, error) {
	target, _, err := s.solve(context.Background(), source)
	return target, err
}

// SolveContext is Solve under a context: cancellation aborts the chase
// between strata, and a tracer carried by the context records one span
// per tgd stratum (with binding and tuple counts).
func (s *Solver) SolveContext(ctx context.Context, source Instance) (Instance, error) {
	target, _, err := s.solve(ctx, source)
	return target, err
}

// SolveWithStats is Solve, additionally reporting chase statistics.
func (s *Solver) SolveWithStats(source Instance) (Instance, *Stats, error) {
	return s.solve(context.Background(), source)
}

func (s *Solver) solve(ctx context.Context, source Instance) (Instance, *Stats, error) {
	stats := &Stats{}
	target := make(Instance, len(s.m.Schemas))

	// Σst: copy each elementary relation into its target twin. The copy
	// would fail only if the source violates an egd, which Cube.Put makes
	// impossible by construction.
	for _, name := range s.m.Elementary {
		if c, ok := source[name]; ok {
			target[name] = c.Clone()
		} else {
			target[name] = model.NewCube(s.m.Schemas[name])
		}
		stats.TuplesGenerated += target[name].Len()
	}

	// Σt: apply the program tgds in stratification order.
	for _, t := range s.m.Tgds {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		_, span := obs.StartSpan(ctx, "chase.tgd",
			obs.String("id", t.ID), obs.String("cube", t.Target()), obs.String("kind", t.Kind.String()))
		b0, g0 := stats.Bindings, stats.TuplesGenerated
		err := s.applyTgd(t, target, stats)
		span.SetAttr(obs.Int("bindings", stats.Bindings-b0), obs.Int("tuples", stats.TuplesGenerated-g0))
		span.EndErr(err)
		if err != nil {
			return nil, nil, fmt.Errorf("chase: applying %s (%s): %w", t.ID, t.Target(), err)
		}
		stats.Strata++
	}
	return target, stats, nil
}

func (s *Solver) applyTgd(t *mapping.Tgd, target Instance, stats *Stats) error {
	out := model.NewCube(s.m.Schemas[t.Target()])
	target[t.Target()] = out

	switch t.Kind {
	case mapping.BlackBox:
		return s.applyBlackBox(t, target, out, stats)
	case mapping.TupleLevel:
		return s.applyTupleLevel(t, target, out, stats)
	case mapping.Aggregation:
		return s.applyAggregation(t, target, out, stats)
	case mapping.PadVector:
		return s.applyPadVector(t, target, out, stats)
	default:
		return fmt.Errorf("unsupported tgd kind %s", t.Kind)
	}
}

func (s *Solver) applyBlackBox(t *mapping.Tgd, target Instance, out *model.Cube, stats *Stats) error {
	in, ok := target[t.Lhs[0].Rel]
	if !ok {
		return fmt.Errorf("operand %s not computed before black box", t.Lhs[0].Rel)
	}
	periods, vals, err := in.SortedSeries()
	if err != nil {
		return err
	}
	f, err := ops.Series(t.BB)
	if err != nil {
		return err
	}
	seasonLen := ops.SeasonLength(in.Schema().Dims[0].Type.Freq)
	res, err := f(vals, seasonLen, t.BBParams)
	if err != nil {
		return err
	}
	if len(res) != len(vals) {
		return fmt.Errorf("black box %s returned %d values for %d inputs", t.BB, len(res), len(vals))
	}
	stats.Bindings += len(vals)
	for i, p := range periods {
		if err := out.Put([]model.Value{model.Per(p)}, res[i]); err != nil {
			return err
		}
		stats.TuplesGenerated++
	}
	return nil
}

func (s *Solver) applyTupleLevel(t *mapping.Tgd, target Instance, out *model.Cube, stats *Stats) error {
	bindings, vars, err := evalLhs(t, target)
	if err != nil {
		return err
	}
	stats.Bindings += len(bindings)
	dims := make([]model.Value, len(t.Rhs.Dims))
	for _, b := range bindings {
		if err := evalRhsDims(t.Rhs.Dims, vars, b, dims); err != nil {
			return err
		}
		mv, defined, err := evalMeasure(t.Measure, vars, b)
		if err != nil {
			return err
		}
		if !defined {
			continue
		}
		if err := out.Put(dims, mv); err != nil {
			return err
		}
		stats.TuplesGenerated++
	}
	return nil
}

func (s *Solver) applyAggregation(t *mapping.Tgd, target Instance, out *model.Cube, stats *Stats) error {
	bindings, vars, err := evalLhs(t, target)
	if err != nil {
		return err
	}
	stats.Bindings += len(bindings)
	type group struct {
		dims []model.Value
		agg  ops.Aggregator
	}
	groups := make(map[string]*group)
	dims := make([]model.Value, len(t.Rhs.Dims))
	for _, b := range bindings {
		if err := evalRhsDims(t.Rhs.Dims, vars, b, dims); err != nil {
			return err
		}
		mv, defined, err := evalMeasure(t.Measure, vars, b)
		if err != nil {
			return err
		}
		if !defined {
			// Undefined points simply contribute nothing to the bag.
			continue
		}
		key := model.EncodeKey(dims)
		g, ok := groups[key]
		if !ok {
			agg, err := ops.NewAggregator(t.Agg)
			if err != nil {
				return err
			}
			g = &group{dims: append([]model.Value(nil), dims...), agg: agg}
			groups[key] = g
		}
		g.agg.Add(mv)
	}
	for _, g := range groups {
		if err := out.Put(g.dims, g.agg.Result()); err != nil {
			return err
		}
		stats.TuplesGenerated++
	}
	return nil
}

// applyPadVector applies a padded vectorial tgd: the result is defined on
// the union of the operands' dimension tuples, with the default value
// standing in for a missing operand measure.
func (s *Solver) applyPadVector(t *mapping.Tgd, target Instance, out *model.Cube, stats *Stats) error {
	type entry struct {
		dims    []model.Value
		measure float64
	}
	collect := func(atom mapping.Atom) (map[string]entry, error) {
		rel, ok := target[atom.Rel]
		if !ok {
			return nil, fmt.Errorf("relation %s not available", atom.Rel)
		}
		pos := make(map[string]int, len(atom.Dims))
		for j, d := range atom.Dims {
			if d.Var == "" || d.Shift != 0 || d.Func != "" || d.Const != nil {
				return nil, fmt.Errorf("padded tgds require plain variable atoms")
			}
			pos[d.Var] = j
		}
		entries := make(map[string]entry, rel.Len())
		dims := make([]model.Value, len(t.Rhs.Dims))
		var err error
		_ = rel.ForEach(func(tu model.Tuple) error {
			for i, d := range t.Rhs.Dims {
				j, ok := pos[d.Var]
				if !ok {
					err = fmt.Errorf("rhs variable %s not bound by atom %s", d.Var, atom.Rel)
					return err
				}
				dims[i] = tu.Dims[j]
			}
			entries[model.EncodeKey(dims)] = entry{dims: append([]model.Value(nil), dims...), measure: tu.Measure}
			return nil
		})
		return entries, err
	}
	ex, err := collect(t.Lhs[0])
	if err != nil {
		return err
	}
	ey, err := collect(t.Lhs[1])
	if err != nil {
		return err
	}
	f, err := ops.Scalar(t.PadOp)
	if err != nil {
		return err
	}
	emit := func(dims []model.Value, x, y float64) error {
		v, err := f(x, y)
		if err != nil {
			if ops.ErrUndefined(err) {
				return nil
			}
			return err
		}
		stats.TuplesGenerated++
		return out.Put(dims, v)
	}
	for key, e := range ex {
		stats.Bindings++
		y := t.PadDefault
		if o, ok := ey[key]; ok {
			y = o.measure
		}
		if err := emit(e.dims, e.measure, y); err != nil {
			return err
		}
	}
	for key, e := range ey {
		if _, ok := ex[key]; ok {
			continue
		}
		stats.Bindings++
		if err := emit(e.dims, t.PadDefault, e.measure); err != nil {
			return err
		}
	}
	return nil
}

// ErrChaseFailure wraps egd violations surfaced during a chase run.
var ErrChaseFailure = model.ErrFunctional

// IsFailure reports whether the error is a chase failure (egd violation).
func IsFailure(err error) bool { return errors.Is(err, model.ErrFunctional) }
