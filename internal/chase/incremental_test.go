package chase

import (
	"context"
	"math/rand"
	"testing"

	"exlengine/internal/model"
	"exlengine/internal/workload"
)

// mutate returns a copy of src with a deterministic mix of value
// changes, deletions and insertions applied to the named cube.
func mutate(t *testing.T, src Instance, name string, seed int64) Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make(Instance, len(src))
	for k, c := range src {
		out[k] = c.Clone()
	}
	c := out[name]
	tuples := c.Tuples()
	if len(tuples) == 0 {
		t.Fatalf("cube %s empty", name)
	}
	for i, tu := range tuples {
		switch {
		case i%17 == 3: // value change
			if err := c.Replace(tu.Dims, tu.Measure*1.05+0.1); err != nil {
				t.Fatal(err)
			}
		case i%23 == 7: // deletion
			c.Delete(tu.Dims)
		}
	}
	// A few inserts at shifted coordinates that don't collide: reuse an
	// existing tuple's dims is impossible, so perturb the measure of a
	// random existing point instead when dims are not synthesizable.
	for i := 0; i < 3; i++ {
		tu := tuples[rng.Intn(len(tuples))]
		if err := c.Replace(tu.Dims, tu.Measure+float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// runIncr runs the full chase on base and cur, then the incremental
// chase on cur seeded from the base outputs, and requires exact
// (bit-for-bit) agreement with the full run on cur.
func runIncr(t *testing.T, src string, base, cur Instance) *IncrStats {
	t.Helper()
	m := compile(t, src)
	s := New(m)
	baseOut, err := s.Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Solve(cur)
	if err != nil {
		t.Fatal(err)
	}
	in := &DeltaInput{
		Deltas:  make(map[string]*model.CubeDelta),
		BaseOut: make(map[string]*model.Cube),
	}
	for _, name := range m.Elementary {
		in.Deltas[name] = model.DiffCubes(name, base[name], cur[name])
	}
	for name, c := range baseOut {
		in.BaseOut[name] = c.Freeze()
	}
	got, _, stats, err := s.SolveIncremental(context.Background(), cur, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("incremental output missing %s", name)
		}
		if lines := exactDiff(w, g); len(lines) > 0 {
			t.Errorf("cube %s diverges:\n  %s", name, lines[0])
		}
	}
	return stats
}

// exactDiff reports tuple-level differences with zero tolerance.
func exactDiff(want, got *model.Cube) []string {
	d := model.DiffCubes("", want, got)
	var out []string
	for _, tu := range d.Added {
		out = append(out, "extra: "+tu.Dims[0].String())
	}
	for range d.Changed {
		out = append(out, "changed measure")
	}
	for range d.Deleted {
		out = append(out, "missing tuple")
	}
	return out
}

func TestIncrementalGDPChurnExact(t *testing.T) {
	base := Instance(workload.GDPSource(workload.GDPConfig{Days: 120, Regions: 3, Seed: 1}))
	cur := mutate(t, base, "PDR", 7)
	stats := runIncr(t, workload.GDPProgram, base, cur)
	if stats.Incremental == 0 {
		t.Errorf("expected some incremental tgds, got %+v", stats)
	}
	// The GDP program ends in black boxes (stl_t) which always recompute
	// in full; the upstream aggregation and arithmetic must not.
	if stats.Skipped+stats.Incremental == 0 || stats.Tgds == 0 {
		t.Errorf("suspicious stats: %+v", stats)
	}
}

func TestIncrementalNoChangeSkipsEverything(t *testing.T) {
	src := Instance(workload.GDPSource(workload.GDPConfig{Days: 60, Regions: 2, Seed: 2}))
	stats := runIncr(t, workload.GDPProgram, src, src)
	if stats.Full != 0 || stats.Incremental != 0 {
		t.Errorf("no-op run should only skip: %+v", stats)
	}
	if stats.Skipped != stats.Tgds {
		t.Errorf("want all %d tgds skipped, got %+v", stats.Tgds, stats)
	}
}

func TestIncrementalSupervision(t *testing.T) {
	base := Instance(workload.SupervisionSource(5, 12, 3))
	cur := mutate(t, base, "ASSETS", 11)
	runIncr(t, workload.SupervisionProgram, base, cur)
}

func TestIncrementalDeletionRetracts(t *testing.T) {
	base := Instance(workload.GDPSource(workload.GDPConfig{Days: 40, Regions: 2, Seed: 4}))
	cur := make(Instance, len(base))
	for k, c := range base {
		cur[k] = c.Clone()
	}
	// Delete every tuple of one region: downstream per-region points must
	// be retracted, not left stale.
	for _, tu := range cur["RGDPPC"].Tuples() {
		if tu.Dims[len(tu.Dims)-1].String() == workload.RegionName(0) {
			cur["RGDPPC"].Delete(tu.Dims)
		}
	}
	runIncr(t, workload.GDPProgram, base, cur)
}

func TestIncrementalNormalizedMappingFallsBackSafely(t *testing.T) {
	base := Instance(workload.GDPSource(workload.GDPConfig{Days: 60, Regions: 2, Seed: 5}))
	cur := mutate(t, base, "PDR", 13)
	m := compileNormalized(t, workload.GDPProgram)
	s := New(m)
	baseOut, err := s.Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Solve(cur)
	if err != nil {
		t.Fatal(err)
	}
	in := &DeltaInput{Deltas: map[string]*model.CubeDelta{}, BaseOut: map[string]*model.Cube{}}
	for _, name := range m.Elementary {
		in.Deltas[name] = model.DiffCubes(name, base[name], cur[name])
	}
	for name, c := range baseOut {
		in.BaseOut[name] = c.Freeze()
	}
	got, _, _, err := s.SolveIncremental(context.Background(), cur, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if lines := exactDiff(w, got[name]); len(lines) > 0 {
			t.Errorf("cube %s diverges: %v", name, lines)
		}
	}
}

func TestIncrementalFullOnlyInputForcesFull(t *testing.T) {
	base := Instance(workload.GDPSource(workload.GDPConfig{Days: 40, Regions: 2, Seed: 6}))
	cur := mutate(t, base, "PDR", 17)
	m := compile(t, workload.GDPProgram)
	s := New(m)
	baseOut, err := s.Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Solve(cur)
	if err != nil {
		t.Fatal(err)
	}
	in := &DeltaInput{
		FullOnly: map[string]bool{"PDR": true},
		BaseOut:  map[string]*model.Cube{},
	}
	for name, c := range baseOut {
		in.BaseOut[name] = c.Freeze()
	}
	got, _, stats, err := s.SolveIncremental(context.Background(), cur, in)
	if err != nil {
		t.Fatal(err)
	}
	// Direct consumers of the full-only input must recompute in full;
	// their diffed outputs may legitimately re-enable incremental
	// maintenance further downstream.
	if stats.Full == 0 {
		t.Errorf("full-only input must force full recompute of its consumers: %+v", stats)
	}
	for name, w := range want {
		if lines := exactDiff(w, got[name]); len(lines) > 0 {
			t.Errorf("cube %s diverges: %v", name, lines)
		}
	}
}
