package chase

import (
	"context"
	"fmt"
	"sort"

	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// DeltaInput carries what an incremental chase knows about how the world
// moved since the outputs in BaseOut were computed.
type DeltaInput struct {
	// Deltas maps changed source relations to their tuple-level deltas.
	// Relations absent from both Deltas and FullOnly are unchanged. An
	// empty delta is treated as unchanged.
	Deltas map[string]*model.CubeDelta
	// FullOnly marks relations known to have changed without a usable
	// delta (e.g. the store could not reconstruct the old version).
	// Every tgd consuming one is recomputed in full.
	FullOnly map[string]bool
	// BaseOut holds the previous run's output cubes (derived and
	// auxiliary relations), keyed by name. A tgd with no base output
	// cannot be maintained and is recomputed in full.
	BaseOut map[string]*model.Cube
}

// IncrStats reports what an incremental chase did, tgd by tgd.
type IncrStats struct {
	Tgds        int // tgds considered
	Skipped     int // outputs reused untouched (no input changed)
	Incremental int // tgds maintained from input deltas
	Full        int // tgds recomputed from scratch

	DeltaTuplesIn  int // input delta tuples consumed by incremental tgds
	KeysRecomputed int // output points recomputed by incremental tgds
	OutputChanges  int // output tuples that actually changed, all tgds
}

// SolveIncremental computes the same solution as Solve over the current
// source instance, but semi-naively: a tgd none of whose inputs changed
// reuses its previous output; a tgd with known input deltas recomputes
// only the output points those deltas can affect, retracting points
// whose support vanished; everything else falls back to a full per-tgd
// recompute. Output deltas propagate down the stratification order, so
// a small elementary churn stays small through the whole tgd graph.
//
// The contract is byte-identical output: for every relation, the
// returned instance equals what Solve would produce on the same source,
// exactly (not merely within tolerance). Affected points are recomputed
// with the same evaluation code and fold order as the full chase, and
// unaffected points are provably untouched by the delta, so reusing
// their previous values is exact.
//
// The second return value maps every relation that changed — inputs as
// given, outputs as derived — to its delta; relations absent from it are
// unchanged (except those the input marked FullOnly, whose movement is
// unknown). Callers chaining solvers feed these to the next stage.
func (s *Solver) SolveIncremental(ctx context.Context, source Instance, in *DeltaInput) (Instance, map[string]*model.CubeDelta, *IncrStats, error) {
	stats := &IncrStats{}
	chaseStats := &Stats{}
	target := make(Instance, len(s.m.Schemas))
	deltas := make(map[string]*model.CubeDelta, len(in.Deltas))
	for name, d := range in.Deltas {
		if d != nil && !d.Empty() {
			deltas[name] = d
		}
	}
	fullOnly := make(map[string]bool, len(in.FullOnly))
	for name, v := range in.FullOnly {
		if v {
			fullOnly[name] = true
		}
	}

	// Σst: the target twins of the elementary relations are the current
	// source versions. Solve clones them; sharing is safe here because
	// nothing downstream mutates an input relation.
	for _, name := range s.m.Elementary {
		if c, ok := source[name]; ok {
			target[name] = c
		} else {
			target[name] = model.NewCube(s.m.Schemas[name])
		}
	}

	for _, t := range s.m.Tgds {
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		stats.Tgds++
		outName := t.Target()
		baseOut := in.BaseOut[outName]

		changed, unknown := false, false
		for _, a := range t.Lhs {
			if fullOnly[a.Rel] {
				unknown = true
			} else if d := deltas[a.Rel]; d != nil {
				changed = true
			}
		}

		_, span := obs.StartSpan(ctx, "chase.tgd.incr",
			obs.String("id", t.ID), obs.String("cube", outName), obs.String("kind", t.Kind.String()))

		mode, err := s.applyTgdIncr(t, target, deltas, baseOut, changed, unknown, stats, chaseStats)
		span.SetAttr(obs.String("mode", mode))
		span.EndErr(err)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("chase: applying %s (%s) incrementally: %w", t.ID, outName, err)
		}
		switch mode {
		case "skip":
			stats.Skipped++
		case "incremental":
			stats.Incremental++
		default:
			stats.Full++
			if mode == "full-unknown" {
				fullOnly[outName] = true
			}
		}
		if d := deltas[outName]; d != nil {
			stats.OutputChanges += d.Size()
		}
	}
	return target, deltas, stats, nil
}

// applyTgdIncr applies one tgd choosing among skip / incremental / full,
// records the tgd's output in target, and — when derivable — its output
// delta in deltas so downstream tgds can stay incremental. The returned
// mode is "skip", "incremental", "full", "full-unchanged" (recomputed,
// but inputs unchanged so the output provably equals the previous run's)
// or "full-unknown" (recomputed with no base to diff against).
func (s *Solver) applyTgdIncr(t *mapping.Tgd, target Instance, deltas map[string]*model.CubeDelta, baseOut *model.Cube, changed, unknown bool, stats *IncrStats, chaseStats *Stats) (string, error) {
	outName := t.Target()

	// Nothing this tgd reads moved: its output is exactly the previous
	// one. With no previous output to reuse (first run for this cube) it
	// must still be computed, but the result is known-unchanged.
	if !changed && !unknown {
		if baseOut != nil {
			target[outName] = baseOut
			return "skip", nil
		}
		if err := s.applyTgd(t, target, chaseStats); err != nil {
			return "", err
		}
		return "full-unchanged", nil
	}

	full := func() (string, error) {
		if err := s.applyTgd(t, target, chaseStats); err != nil {
			return "", err
		}
		if baseOut == nil {
			return "full-unknown", nil
		}
		d := model.DiffCubes(outName, baseOut, target[outName])
		if !d.Empty() {
			deltas[outName] = d
		}
		return "full", nil
	}

	if unknown || baseOut == nil {
		return full()
	}

	var (
		out *model.Cube
		od  *model.CubeDelta
		ok  bool
		err error
	)
	switch t.Kind {
	case mapping.TupleLevel:
		out, od, ok, err = s.incrTupleLevel(t, target, deltas, baseOut, stats)
	case mapping.Aggregation:
		out, od, ok, err = s.incrAggregation(t, target, deltas, baseOut, stats)
	case mapping.PadVector:
		out, od, ok, err = s.incrPadVector(t, target, deltas, baseOut, stats)
	default:
		// Black boxes consume a whole series; there is no smaller unit
		// of recomputation. Recomputing in full still yields an exact
		// output delta for downstream tgds via the diff above.
		ok = false
	}
	if err != nil {
		return "", err
	}
	if !ok {
		return full()
	}
	target[outName] = out
	if !od.Empty() {
		deltas[outName] = od
	}
	return "incremental", nil
}

// affectedKeys accumulates the distinct output dimension tuples an input
// delta can influence.
type affectedKeys struct {
	dims map[string][]model.Value
}

func newAffectedKeys() *affectedKeys { return &affectedKeys{dims: make(map[string][]model.Value)} }

func (a *affectedKeys) add(dims []model.Value) {
	k := model.EncodeKey(dims)
	if _, ok := a.dims[k]; !ok {
		a.dims[k] = append([]model.Value(nil), dims...)
	}
}

// sorted returns the affected dimension tuples in deterministic order.
func (a *affectedKeys) sorted() [][]model.Value {
	keys := make([]string, 0, len(a.dims))
	for k := range a.dims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]model.Value, len(keys))
	for i, k := range keys {
		out[i] = a.dims[k]
	}
	return out
}

// maintain rebuilds the tgd's output from its previous version by
// recomputing exactly the affected points: recompute returns the point's
// current value (or absent), and the old/new values decide Replace,
// Delete or no-op. The returned delta records what actually changed.
func maintain(name string, baseOut *model.Cube, affected *affectedKeys, stats *IncrStats, recompute func(dims []model.Value) (float64, bool, error)) (*model.Cube, *model.CubeDelta, error) {
	out := baseOut.Clone()
	od := &model.CubeDelta{Name: name, Base: baseOut, Current: nil}
	for _, dims := range affected.sorted() {
		stats.KeysRecomputed++
		mv, present, err := recompute(dims)
		if err != nil {
			return nil, nil, err
		}
		old, had := baseOut.Get(dims)
		switch {
		case present && !had:
			if err := out.Replace(dims, mv); err != nil {
				return nil, nil, err
			}
			od.Added = append(od.Added, model.Tuple{Dims: dims, Measure: mv})
		case present && had && mv != old:
			if err := out.Replace(dims, mv); err != nil {
				return nil, nil, err
			}
			od.Changed = append(od.Changed, model.Tuple{Dims: dims, Measure: mv})
		case !present && had:
			out.Delete(dims)
			od.Deleted = append(od.Deleted, model.Tuple{Dims: dims, Measure: old})
		}
	}
	od.Current = out
	return out, od, nil
}

// deltaTuples streams every tuple of the delta (added and changed as
// they are now, deleted as they were) into fn.
func deltaTuples(d *model.CubeDelta, fn func(model.Tuple) error) error {
	for _, t := range d.Added {
		if err := fn(t); err != nil {
			return err
		}
	}
	for _, t := range d.Changed {
		if err := fn(t); err != nil {
			return err
		}
	}
	for _, t := range d.Deleted {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// bindAtomTuple inverts one atom against one of its relation's tuples:
// constants must match, shifted variables are unshifted, repeated
// variables must agree. ok is false when the tuple cannot instantiate
// the atom (a constant or repeated-variable mismatch — the tuple simply
// matches no binding).
func bindAtomTuple(atom mapping.Atom, vars *varSet, tu model.Tuple, b binding) (bool, error) {
	for i := range b {
		b[i] = model.Value{}
	}
	for j, d := range atom.Dims {
		switch {
		case d.Const != nil:
			if !tu.Dims[j].Equal(*d.Const) {
				return false, nil
			}
		case d.Var != "" && d.Func == "":
			val := tu.Dims[j]
			if d.Shift != 0 {
				inv, err := ops.ShiftValue(val, -d.Shift)
				if err != nil {
					return false, err
				}
				val = inv
			}
			vi, _ := vars.lookup(d.Var)
			if b[vi].IsValid() {
				if !b[vi].Equal(val) {
					return false, nil
				}
				continue
			}
			b[vi] = val
		default:
			return false, fmt.Errorf("atom %s dim %d is not invertible", atom.Rel, j)
		}
	}
	if atom.MVar != "" {
		mi, _ := vars.lookup(atom.MVar)
		b[mi] = model.Num(tu.Measure)
	}
	return true, nil
}

// tgdVarSet collects the tgd's variables exactly as evalLhs does, so
// bindings built here and there agree on indexing.
func tgdVarSet(t *mapping.Tgd) *varSet {
	vars := newVarSet()
	for _, a := range t.Lhs {
		for _, d := range a.Dims {
			if d.Var != "" {
				vars.add(d.Var)
			}
		}
		if a.MVar != "" {
			vars.add(a.MVar)
		}
	}
	return vars
}

// incrTupleLevel maintains a tuple-level tgd per output point. It
// applies when the binding is key-determined: every right-hand-side
// dimension term is a constant or an invertible variable (shift, no
// dimension function), and every left-hand-side atom's variables are a
// subset of the right-hand-side variables. Then each output point has at
// most one binding — recovered by inverting the key — and recomputing a
// point is a constant number of hash probes. Affected points are found
// by inverting each changed atom over its delta tuples, which requires
// the changed atoms to bind the full variable set invertibly.
func (s *Solver) incrTupleLevel(t *mapping.Tgd, target Instance, deltas map[string]*model.CubeDelta, baseOut *model.Cube, stats *IncrStats) (*model.Cube, *model.CubeDelta, bool, error) {
	rhsVars := make(map[string]bool)
	for _, d := range t.Rhs.Dims {
		switch {
		case d.Const != nil:
		case d.Var != "" && d.Func == "":
			rhsVars[d.Var] = true
		default:
			return nil, nil, false, nil // rhs term not invertible
		}
	}
	// Per atom: all variables must be recoverable from the key, and
	// changed atoms must invertibly bind the whole key themselves so
	// affected points can be read off their delta tuples.
	var changedAtoms []int
	for ai, a := range t.Lhs {
		plain := make(map[string]bool) // vars invertible from this atom's tuples
		for _, d := range a.Dims {
			if d.Var != "" {
				if !rhsVars[d.Var] {
					return nil, nil, false, nil // binding not key-determined
				}
				if d.Func == "" {
					plain[d.Var] = true
				}
			}
		}
		if deltas[a.Rel] != nil {
			if len(plain) != len(rhsVars) {
				return nil, nil, false, nil // changed atom does not determine the key
			}
			changedAtoms = append(changedAtoms, ai)
		}
	}
	// Every rhs variable must occur in some atom, or the full evaluation
	// itself would fail on an unbound variable — let it.
	vars := tgdVarSet(t)
	for v := range rhsVars {
		if _, ok := vars.lookup(v); !ok {
			return nil, nil, false, nil
		}
	}

	affected := newAffectedKeys()
	b := make(binding, len(vars.names))
	keyBuf := make([]model.Value, len(t.Rhs.Dims))
	for _, ai := range changedAtoms {
		atom := t.Lhs[ai]
		err := deltaTuples(deltas[atom.Rel], func(tu model.Tuple) error {
			stats.DeltaTuplesIn++
			ok, err := bindAtomTuple(atom, vars, tu, b)
			if err != nil || !ok {
				return err
			}
			if err := evalRhsDims(t.Rhs.Dims, vars, b, keyBuf); err != nil {
				return err
			}
			affected.add(keyBuf)
			return nil
		})
		if err != nil {
			return nil, nil, false, err
		}
	}

	probeBufs := make([][]model.Value, len(t.Lhs))
	for i, a := range t.Lhs {
		probeBufs[i] = make([]model.Value, len(a.Dims))
	}
	recompute := func(dims []model.Value) (float64, bool, error) {
		// Invert the key into a binding…
		for i := range b {
			b[i] = model.Value{}
		}
		for i, d := range t.Rhs.Dims {
			if d.Const != nil {
				continue
			}
			val := dims[i]
			if d.Shift != 0 {
				inv, err := ops.ShiftValue(val, -d.Shift)
				if err != nil {
					return 0, false, err
				}
				val = inv
			}
			vi, _ := vars.lookup(d.Var)
			if b[vi].IsValid() && !b[vi].Equal(val) {
				return 0, false, nil
			}
			b[vi] = val
		}
		// …probe every atom for its unique witness…
		for ai, atom := range t.Lhs {
			rel, ok := target[atom.Rel]
			if !ok {
				return 0, false, fmt.Errorf("relation %s not available", atom.Rel)
			}
			pd := probeBufs[ai]
			for j, d := range atom.Dims {
				v, err := evalDimTerm(d, vars, b)
				if err != nil {
					return 0, false, err
				}
				pd[j] = v
			}
			m, ok := rel.Get(pd)
			if !ok {
				return 0, false, nil // support vanished: the point is retracted
			}
			if atom.MVar != "" {
				mi, _ := vars.lookup(atom.MVar)
				b[mi] = model.Num(m)
			}
		}
		// …and re-evaluate the measure with the full chase's arithmetic.
		return evalMeasure(t.Measure, vars, b)
	}

	out, od, err := maintain(t.Target(), baseOut, affected, stats, recompute)
	if err != nil {
		return nil, nil, false, err
	}
	return out, od, true, nil
}

// incrAggregation maintains a single-atom aggregation per output group:
// delta tuples identify the affected groups, and each affected group is
// re-aggregated from a scan of the full current relation in Tuples()
// order — the exact fold order the full chase uses — so even
// order-sensitive accumulations (stddev's running moments) reproduce the
// full result bit for bit. No differential aggregate state is kept,
// which is what makes min/max/median retraction work at all.
func (s *Solver) incrAggregation(t *mapping.Tgd, target Instance, deltas map[string]*model.CubeDelta, baseOut *model.Cube, stats *IncrStats) (*model.Cube, *model.CubeDelta, bool, error) {
	if len(t.Lhs) != 1 {
		return nil, nil, false, nil
	}
	atom := t.Lhs[0]
	for _, d := range atom.Dims {
		if d.Func != "" || (d.Const == nil && d.Var == "") {
			return nil, nil, false, nil
		}
	}
	// Group keys must be functions of dimensions only: a measure variable
	// in a key term would make the key change with the measure.
	for _, d := range t.Rhs.Dims {
		if d.Var != "" && d.Var == atom.MVar {
			return nil, nil, false, nil
		}
		if d.Var != "" {
			found := false
			for _, ad := range atom.Dims {
				if ad.Var == d.Var {
					found = true
					break
				}
			}
			if !found {
				return nil, nil, false, nil
			}
		}
	}
	vars := tgdVarSet(t)
	rel, ok := target[atom.Rel]
	if !ok {
		return nil, nil, false, fmt.Errorf("relation %s not available", atom.Rel)
	}

	affected := newAffectedKeys()
	b := make(binding, len(vars.names))
	keyBuf := make([]model.Value, len(t.Rhs.Dims))
	err := deltaTuples(deltas[atom.Rel], func(tu model.Tuple) error {
		stats.DeltaTuplesIn++
		ok, err := bindAtomTuple(atom, vars, tu, b)
		if err != nil || !ok {
			return err
		}
		if err := evalRhsDims(t.Rhs.Dims, vars, b, keyBuf); err != nil {
			return err
		}
		affected.add(keyBuf)
		return nil
	})
	if err != nil {
		return nil, nil, false, err
	}

	// One sorted scan re-aggregates every affected group.
	aggs := make(map[string]ops.Aggregator, len(affected.dims))
	for _, tu := range rel.Tuples() {
		ok, err := bindAtomTuple(atom, vars, tu, b)
		if err != nil {
			return nil, nil, false, err
		}
		if !ok {
			continue
		}
		if err := evalRhsDims(t.Rhs.Dims, vars, b, keyBuf); err != nil {
			return nil, nil, false, err
		}
		k := model.EncodeKey(keyBuf)
		if _, isAffected := affected.dims[k]; !isAffected {
			continue
		}
		mv, defined, err := evalMeasure(t.Measure, vars, b)
		if err != nil {
			return nil, nil, false, err
		}
		if !defined {
			continue
		}
		agg := aggs[k]
		if agg == nil {
			agg, err = ops.NewAggregator(t.Agg)
			if err != nil {
				return nil, nil, false, err
			}
			aggs[k] = agg
		}
		agg.Add(mv)
	}

	recompute := func(dims []model.Value) (float64, bool, error) {
		agg := aggs[model.EncodeKey(dims)]
		if agg == nil {
			return 0, false, nil // every contribution vanished: retract the group
		}
		return agg.Result(), true, nil
	}
	out, od, err := maintain(t.Target(), baseOut, affected, stats, recompute)
	if err != nil {
		return nil, nil, false, err
	}
	return out, od, true, nil
}

// incrPadVector maintains a padded vectorial tgd per output point: a
// point depends on exactly one tuple of each operand (present or
// padded), so delta tuples of either operand name the affected points
// directly and recomputing one is two hash probes plus the scalar op.
func (s *Solver) incrPadVector(t *mapping.Tgd, target Instance, deltas map[string]*model.CubeDelta, baseOut *model.Cube, stats *IncrStats) (*model.Cube, *model.CubeDelta, bool, error) {
	if len(t.Lhs) != 2 {
		return nil, nil, false, nil
	}
	// atomOrder[i][j] = rhs index of the variable at atom i's position j;
	// requires each atom to be a permutation of the rhs variables, which
	// is also what makes the full evaluation's entry map deterministic.
	rhsIdx := make(map[string]int, len(t.Rhs.Dims))
	for i, d := range t.Rhs.Dims {
		if d.Var == "" || d.Shift != 0 || d.Func != "" || d.Const != nil {
			return nil, nil, false, nil
		}
		rhsIdx[d.Var] = i
	}
	var atomOrder [2][]int
	for ai := 0; ai < 2; ai++ {
		atom := t.Lhs[ai]
		if len(atom.Dims) != len(t.Rhs.Dims) {
			return nil, nil, false, nil
		}
		atomOrder[ai] = make([]int, len(atom.Dims))
		seen := make(map[string]bool, len(atom.Dims))
		for j, d := range atom.Dims {
			if d.Var == "" || d.Shift != 0 || d.Func != "" || d.Const != nil || seen[d.Var] {
				return nil, nil, false, nil
			}
			i, ok := rhsIdx[d.Var]
			if !ok {
				return nil, nil, false, nil
			}
			seen[d.Var] = true
			atomOrder[ai][j] = i
		}
	}
	rels := [2]*model.Cube{}
	for ai := 0; ai < 2; ai++ {
		rel, ok := target[t.Lhs[ai].Rel]
		if !ok {
			return nil, nil, false, fmt.Errorf("relation %s not available", t.Lhs[ai].Rel)
		}
		rels[ai] = rel
	}
	f, err := ops.Scalar(t.PadOp)
	if err != nil {
		return nil, nil, false, err
	}

	affected := newAffectedKeys()
	keyBuf := make([]model.Value, len(t.Rhs.Dims))
	for ai := 0; ai < 2; ai++ {
		d := deltas[t.Lhs[ai].Rel]
		if d == nil {
			continue
		}
		err := deltaTuples(d, func(tu model.Tuple) error {
			stats.DeltaTuplesIn++
			for j, i := range atomOrder[ai] {
				keyBuf[i] = tu.Dims[j]
			}
			affected.add(keyBuf)
			return nil
		})
		if err != nil {
			return nil, nil, false, err
		}
	}

	probeBufs := [2][]model.Value{
		make([]model.Value, len(t.Rhs.Dims)),
		make([]model.Value, len(t.Rhs.Dims)),
	}
	recompute := func(dims []model.Value) (float64, bool, error) {
		var vals [2]float64
		var present [2]bool
		for ai := 0; ai < 2; ai++ {
			pd := probeBufs[ai]
			for j, i := range atomOrder[ai] {
				pd[j] = dims[i]
			}
			vals[ai], present[ai] = rels[ai].Get(pd)
			if !present[ai] {
				vals[ai] = t.PadDefault
			}
		}
		if !present[0] && !present[1] {
			return 0, false, nil
		}
		v, err := f(vals[0], vals[1])
		if err != nil {
			if ops.ErrUndefined(err) {
				return 0, false, nil
			}
			return 0, false, err
		}
		return v, true, nil
	}
	out, od, err := maintain(t.Target(), baseOut, affected, stats, recompute)
	if err != nil {
		return nil, nil, false, err
	}
	return out, od, true, nil
}
