package chase

import (
	"math"
	"strings"
	"testing"

	"exlengine/internal/model"
)

// padFixture builds two annual series with partially overlapping supports:
// A defined on 2000-2004, B on 2002-2006.
func padFixture(t *testing.T) Instance {
	t.Helper()
	mk := func(name string, from, to int, base float64) *model.Cube {
		c := model.NewCube(model.NewSchema(name, []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
		for y := from; y <= to; y++ {
			if err := c.Put([]model.Value{model.Per(model.NewAnnual(y))}, base+float64(y-from)); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	return Instance{"A": mk("A", 2000, 2004, 10), "B": mk("B", 2002, 2006, 100)}
}

const padProgram = `
cube A(t: year) measure v
cube B(t: year) measure v
S := vsum0(A, B)
D := vsub0(A, B)
I := A + B
`

func TestChasePadVector(t *testing.T) {
	m := compile(t, padProgram)
	out := solve(t, m, padFixture(t))

	s, d, inner := out["S"], out["D"], out["I"]
	// Union support: 2000-2006 = 7 years.
	if s.Len() != 7 || d.Len() != 7 {
		t.Fatalf("S len = %d, D len = %d, want 7", s.Len(), d.Len())
	}
	// Inner-join comparison: 2002-2004 only.
	if inner.Len() != 3 {
		t.Fatalf("I len = %d, want 3", inner.Len())
	}
	check := func(c *model.Cube, year int, want float64) {
		t.Helper()
		got, ok := c.Get([]model.Value{model.Per(model.NewAnnual(year))})
		if !ok || math.Abs(got-want) > 1e-12 {
			t.Errorf("%s(%d) = %v (%v), want %v", c.Schema().Name, year, got, ok, want)
		}
	}
	check(s, 2000, 10)      // A only: 10 + 0
	check(s, 2002, 12+100)  // both: A=12, B=100
	check(s, 2006, 104)     // B only: 0 + 104
	check(d, 2000, 10)      // 10 - 0
	check(d, 2002, 12-100)  // 12 - 100
	check(d, 2006, -104)    // 0 - 104
	check(inner, 2002, 112) // inner join agrees with pad on the overlap
}

func TestPadVectorMappingShape(t *testing.T) {
	m := compile(t, padProgram)
	s := m.TgdFor("S")
	if s == nil || s.Kind.String() != "pad-vector" {
		t.Fatalf("S tgd = %v", s)
	}
	if s.PadOp != "add" || s.PadDefault != 0 {
		t.Errorf("pad op = %s, default = %v", s.PadOp, s.PadDefault)
	}
	if !strings.Contains(s.String(), "[outer, default 0]") {
		t.Errorf("tgd rendering = %s", s)
	}
	d := m.TgdFor("D")
	if d.PadOp != "sub" {
		t.Errorf("D pad op = %s", d.PadOp)
	}
}

func TestPadVectorNotFusedInto(t *testing.T) {
	// The operand of a padded operator stays materialized: its tuple SET
	// matters, so inlining would change semantics.
	m := compile(t, `
cube A(t: year) measure v
cube B(t: year) measure v
S := vsum0(A * 2, B)
`)
	if aux := m.AuxRelations(); len(aux) != 1 {
		t.Errorf("aux = %v (pad operand must stay materialized)\n%s", aux, m)
	}
	out := solve(t, m, padFixture(t))
	got, ok := out["S"].Get([]model.Value{model.Per(model.NewAnnual(2000))})
	if !ok || got != 20 {
		t.Errorf("S(2000) = %v (%v), want 20", got, ok)
	}
}

func TestPadVectorWithDerivedOperands(t *testing.T) {
	// vsum0 over results of earlier statements; verified against the union
	// semantics computed by hand through the GDP data.
	m := compile(t, `
cube A(t: year) measure v
cube B(t: year) measure v
A2 := A * 2
B3 := B * 3
S  := vsum0(A2, B3)
`)
	out := solve(t, m, padFixture(t))
	got, _ := out["S"].Get([]model.Value{model.Per(model.NewAnnual(2006))})
	if got != (100+4)*3 {
		t.Errorf("S(2006) = %v", got)
	}
	got, _ = out["S"].Get([]model.Value{model.Per(model.NewAnnual(2002))})
	if got != 12*2+100*3 {
		t.Errorf("S(2002) = %v", got)
	}
}

func TestPadVectorMultiDim(t *testing.T) {
	mk := func(name string, rs ...string) *model.Cube {
		c := model.NewCube(model.NewSchema(name,
			[]model.Dim{{Name: "t", Type: model.TYear}, {Name: "r", Type: model.TString}}, "v"))
		for i, r := range rs {
			_ = c.Put([]model.Value{model.Per(model.NewAnnual(2000)), model.Str(r)}, float64(i+1))
		}
		return c
	}
	m := compile(t, `
cube A(t: year, r: string) measure v
cube B(t: year, r: string) measure v
S := vsum0(A, B)
`)
	out := solve(t, m, Instance{"A": mk("A", "x", "y"), "B": mk("B", "y", "z")})
	s := out["S"]
	if s.Len() != 3 {
		t.Fatalf("S len = %d", s.Len())
	}
	if got, _ := s.Get([]model.Value{model.Per(model.NewAnnual(2000)), model.Str("y")}); got != 2+1 {
		t.Errorf("S(y) = %v", got)
	}
	if got, _ := s.Get([]model.Value{model.Per(model.NewAnnual(2000)), model.Str("z")}); got != 2 {
		t.Errorf("S(z) = %v", got)
	}
}
