package chase

import (
	"fmt"

	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// varSet assigns dense indexes to the variables of a tgd so bindings can be
// flat slices instead of maps.
type varSet struct {
	idx   map[string]int
	names []string
}

func newVarSet() *varSet { return &varSet{idx: make(map[string]int)} }

func (v *varSet) add(name string) int {
	if i, ok := v.idx[name]; ok {
		return i
	}
	i := len(v.names)
	v.idx[name] = i
	v.names = append(v.names, name)
	return i
}

func (v *varSet) lookup(name string) (int, bool) {
	i, ok := v.idx[name]
	return i, ok
}

// binding is a partial assignment of values to variables, indexed by
// varSet position. Unassigned slots hold the invalid zero Value.
type binding []model.Value

// evalLhs enumerates all bindings of the tgd's lhs variables: the natural
// join of the lhs atoms on shared variables, with dimension terms (shifts,
// constants, functions of bound variables) acting as computed join keys.
// Atoms are joined left to right using a hash index per atom.
func evalLhs(t *mapping.Tgd, target Instance) ([]binding, *varSet, error) {
	vars := newVarSet()
	for _, a := range t.Lhs {
		for _, d := range a.Dims {
			if d.Var != "" {
				vars.add(d.Var)
			}
		}
		if a.MVar != "" {
			vars.add(a.MVar)
		}
	}

	bindings := []binding{make(binding, len(vars.names))}
	bound := make(map[string]bool)

	for _, atom := range t.Lhs {
		rel, ok := target[atom.Rel]
		if !ok {
			return nil, nil, fmt.Errorf("relation %s not available", atom.Rel)
		}

		// Positions whose term value is computable from the current
		// binding are probe positions; the rest bind new variables.
		var probePos, bindPos []int
		for j, d := range atom.Dims {
			switch {
			case d.Const != nil:
				probePos = append(probePos, j)
			case d.Var != "" && bound[d.Var]:
				probePos = append(probePos, j)
			case d.Func != "":
				return nil, nil, fmt.Errorf("dimension function %s over unbound variable %s in lhs is not invertible", d.Func, d.Var)
			default:
				bindPos = append(bindPos, j)
			}
		}

		// Hash index of the relation on the probe positions' raw values.
		// Built from Tuples() (sorted), not ForEach (map order), so the
		// binding enumeration — and with it the fold order of downstream
		// floating-point aggregation — is deterministic run-to-run. Map
		// order once made sum() results differ in the last ulp between
		// runs, which flipped exact-zero tests (x/x at x == 0) downstream.
		index := make(map[string][]model.Tuple)
		keyBuf := make([]model.Value, len(probePos))
		for _, tu := range rel.Tuples() {
			for i, p := range probePos {
				keyBuf[i] = tu.Dims[p]
			}
			k := model.EncodeKey(keyBuf)
			index[k] = append(index[k], tu)
		}

		var next []binding
		for _, b := range bindings {
			for i, p := range probePos {
				v, err := evalDimTerm(atom.Dims[p], vars, b)
				if err != nil {
					return nil, nil, err
				}
				keyBuf[i] = v
			}
			k := model.EncodeKey(keyBuf)
			for _, tu := range index[k] {
				nb := append(binding(nil), b...)
				ok := true
				for _, p := range bindPos {
					d := atom.Dims[p]
					val := tu.Dims[p]
					if d.Shift != 0 {
						// The term denotes Var+Shift, so Var = value-Shift.
						inv, err := ops.ShiftValue(val, -d.Shift)
						if err != nil {
							return nil, nil, err
						}
						val = inv
					}
					vi, _ := vars.lookup(d.Var)
					if nb[vi].IsValid() {
						// Repeated variable within the atom: must agree.
						if !nb[vi].Equal(val) {
							ok = false
							break
						}
						continue
					}
					nb[vi] = val
				}
				if !ok {
					continue
				}
				if atom.MVar != "" {
					mi, _ := vars.lookup(atom.MVar)
					nb[mi] = model.Num(tu.Measure)
				}
				next = append(next, nb)
			}
		}
		bindings = next

		for _, j := range bindPos {
			if atom.Dims[j].Var != "" {
				bound[atom.Dims[j].Var] = true
			}
		}
		if atom.MVar != "" {
			bound[atom.MVar] = true
		}
		if len(bindings) == 0 {
			break
		}
	}
	return bindings, vars, nil
}

// evalDimTerm computes the value of a dimension term under a binding.
func evalDimTerm(d mapping.DimTerm, vars *varSet, b binding) (model.Value, error) {
	if d.Const != nil {
		return *d.Const, nil
	}
	vi, ok := vars.lookup(d.Var)
	if !ok || !b[vi].IsValid() {
		return model.Value{}, fmt.Errorf("unbound variable %s in dimension term", d.Var)
	}
	v := b[vi]
	if d.Shift != 0 {
		return ops.ShiftValue(v, d.Shift)
	}
	if d.Func != "" {
		f, err := ops.Dimension(d.Func)
		if err != nil {
			return model.Value{}, err
		}
		return f.Apply(v)
	}
	return v, nil
}

// evalRhsDims fills dims with the rhs dimension-term values under b.
func evalRhsDims(terms []mapping.DimTerm, vars *varSet, b binding, dims []model.Value) error {
	for i, d := range terms {
		v, err := evalDimTerm(d, vars, b)
		if err != nil {
			return err
		}
		dims[i] = v
	}
	return nil
}

// evalMeasure evaluates a measure expression under a binding. defined is
// false when a scalar operator hit an undefined point (division by zero,
// log of a non-positive number): per the paper's semantics the result cube
// simply has no tuple there.
func evalMeasure(m *mapping.MTerm, vars *varSet, b binding) (val float64, defined bool, err error) {
	switch m.Kind {
	case mapping.MConst:
		return m.Val, true, nil
	case mapping.MVar:
		vi, ok := vars.lookup(m.Var)
		if !ok || !b[vi].IsValid() {
			return 0, false, fmt.Errorf("unbound measure variable %s", m.Var)
		}
		f, ok := b[vi].AsNumber()
		if !ok {
			return 0, false, fmt.Errorf("measure variable %s bound to non-numeric %v", m.Var, b[vi])
		}
		return f, true, nil
	case mapping.MApply:
		args := make([]float64, 0, len(m.Args)+len(m.Params))
		for _, a := range m.Args {
			v, def, err := evalMeasure(a, vars, b)
			if err != nil || !def {
				return 0, def, err
			}
			args = append(args, v)
		}
		args = append(args, m.Params...)
		f, err := ops.Scalar(m.Op)
		if err != nil {
			return 0, false, err
		}
		v, err := f(args...)
		if err != nil {
			if ops.ErrUndefined(err) {
				return 0, false, nil
			}
			return 0, false, err
		}
		return v, true, nil
	default:
		return 0, false, fmt.Errorf("unknown measure term kind %d", m.Kind)
	}
}
