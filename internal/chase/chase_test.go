package chase

import (
	"math"
	"strings"
	"testing"
	"time"

	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

func compile(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func compileNormalized(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.GenerateNormalized(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func solve(t *testing.T, m *mapping.Mapping, src Instance) Instance {
	t.Helper()
	out, err := New(m).Solve(src)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// tinyGDP builds a hand-checkable instance: 2 regions, the last 2 days of
// 2001-Q1 and the first 2 days of 2001-Q2.
func tinyGDP(t *testing.T) Instance {
	t.Helper()
	pdr := model.NewCube(model.NewSchema("PDR",
		[]model.Dim{{Name: "d", Type: model.TDay}, {Name: "r", Type: model.TString}}, "p"))
	rgdppc := model.NewCube(model.NewSchema("RGDPPC",
		[]model.Dim{{Name: "q", Type: model.TQuarter}, {Name: "r", Type: model.TString}}, "g"))
	days := []model.Period{
		model.NewDaily(2001, time.March, 30),
		model.NewDaily(2001, time.March, 31),
		model.NewDaily(2001, time.April, 1),
		model.NewDaily(2001, time.April, 2),
	}
	// north: 10, 20 in Q1; 30, 40 in Q2. south: 100, 200, 300, 400.
	for i, d := range days {
		if err := pdr.Put([]model.Value{model.Per(d), model.Str("north")}, float64((i+1)*10)); err != nil {
			t.Fatal(err)
		}
		if err := pdr.Put([]model.Value{model.Per(d), model.Str("south")}, float64((i+1)*100)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []struct {
		p model.Period
		n float64
		s float64
	}{
		{model.NewQuarterly(2001, 1), 2, 3},
		{model.NewQuarterly(2001, 2), 4, 5},
	} {
		if err := rgdppc.Put([]model.Value{model.Per(q.p), model.Str("north")}, q.n); err != nil {
			t.Fatal(err)
		}
		if err := rgdppc.Put([]model.Value{model.Per(q.p), model.Str("south")}, q.s); err != nil {
			t.Fatal(err)
		}
	}
	return Instance{"PDR": pdr, "RGDPPC": rgdppc}
}

func TestChaseGDPHandChecked(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	out := solve(t, m, tinyGDP(t))

	q1 := model.Per(model.NewQuarterly(2001, 1))
	q2 := model.Per(model.NewQuarterly(2001, 2))
	north := model.Str("north")
	south := model.Str("south")

	// PQR: averages per quarter and region.
	pqr := out["PQR"]
	if pqr.Len() != 4 {
		t.Fatalf("PQR len = %d", pqr.Len())
	}
	for _, c := range []struct {
		q, r model.Value
		want float64
	}{
		{q1, north, 15}, {q2, north, 35}, {q1, south, 150}, {q2, south, 350},
	} {
		got, ok := pqr.Get([]model.Value{c.q, c.r})
		if !ok || math.Abs(got-c.want) > 1e-9 {
			t.Errorf("PQR(%v,%v) = %v (%v), want %v", c.q, c.r, got, ok, c.want)
		}
	}

	// RGDP = RGDPPC * PQR.
	rgdp := out["RGDP"]
	if got, _ := rgdp.Get([]model.Value{q1, north}); got != 30 {
		t.Errorf("RGDP(q1,north) = %v", got)
	}
	if got, _ := rgdp.Get([]model.Value{q2, south}); got != 1750 {
		t.Errorf("RGDP(q2,south) = %v", got)
	}

	// GDP = sum over regions.
	gdp := out["GDP"]
	if got, _ := gdp.Get([]model.Value{q1}); got != 480 { // 30 + 450
		t.Errorf("GDP(q1) = %v", got)
	}
	if got, _ := gdp.Get([]model.Value{q2}); got != 1890 { // 140 + 1750
		t.Errorf("GDP(q2) = %v", got)
	}

	// GDPT is the trend component of the decomposition of the GDP series.
	_, vals, err := gdp.SortedSeries()
	if err != nil {
		t.Fatal(err)
	}
	trend, _, _ := ops.Decompose(vals, 4)
	gdpt := out["GDPT"]
	if got, _ := gdpt.Get([]model.Value{q1}); math.Abs(got-trend[0]) > 1e-9 {
		t.Errorf("GDPT(q1) = %v, want %v", got, trend[0])
	}

	// PCHNG(q) = (GDPT(q) - GDPT(q-1)) * 100 / GDPT(q): defined only for q2.
	pchng := out["PCHNG"]
	if pchng.Len() != 1 {
		t.Fatalf("PCHNG len = %d (no q-1 for the first quarter)", pchng.Len())
	}
	t1, _ := gdpt.Get([]model.Value{q1})
	t2, _ := gdpt.Get([]model.Value{q2})
	want := (t2 - t1) * 100 / t2
	if got, _ := pchng.Get([]model.Value{q2}); math.Abs(got-want) > 1e-9 {
		t.Errorf("PCHNG(q2) = %v, want %v", got, want)
	}

	// Elementary cubes are copied into the solution.
	if out["PDR"].Len() != 8 || out["RGDPPC"].Len() != 4 {
		t.Error("elementary relations missing from solution")
	}
}

func TestChaseFusedEqualsNormalized(t *testing.T) {
	// The paper's correctness argument: the solution is the same whether
	// statements are decomposed into single-operator tgds or fused.
	src := workload.GDPSource(workload.GDPConfig{Days: 200, Regions: 3})
	fused := compile(t, workload.GDPProgram)
	norm := compileNormalized(t, workload.GDPProgram)

	outF := solve(t, fused, Instance(src))
	outN := solve(t, norm, Instance(src))

	for _, rel := range fused.Derived {
		cf, cn := outF[rel], outN[rel]
		if cf == nil || cn == nil {
			t.Fatalf("missing %s", rel)
		}
		if !cf.Equal(cn, model.Eps) {
			t.Errorf("%s differs between fused and normalized:\n%s",
				rel, strings.Join(cf.Diff(cn, model.Eps, 5), "\n"))
		}
	}
	// Normalized solutions additionally contain the auxiliary relations.
	if len(norm.AuxRelations()) == 0 {
		t.Fatal("normalized mapping should have aux relations")
	}
	for _, aux := range norm.AuxRelations() {
		if outN[aux] == nil {
			t.Errorf("aux %s missing from normalized solution", aux)
		}
	}
}

func TestChaseStats(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	_, stats, err := New(m).SolveWithStats(tinyGDP(t))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Strata != 5 {
		t.Errorf("strata = %d", stats.Strata)
	}
	if stats.TuplesGenerated == 0 || stats.Bindings == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestChaseMissingSourceRelation(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	out := solve(t, m, Instance{}) // everything missing -> empty
	for _, rel := range m.Derived {
		if out[rel] == nil || out[rel].Len() != 0 {
			t.Errorf("derived %s should be empty", rel)
		}
	}
}

func TestChaseUndefinedPointsDropTuples(t *testing.T) {
	m := compile(t, `
cube A(t: year) measure v
B := 1 / A
C := ln(A)
`)
	a := model.NewCube(model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2000))}, 2)
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2001))}, 0)
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2002))}, -3)
	out := solve(t, m, Instance{"A": a})
	if out["B"].Len() != 2 { // 1/0 dropped
		t.Errorf("B len = %d", out["B"].Len())
	}
	if out["C"].Len() != 1 { // ln(0), ln(-3) dropped
		t.Errorf("C len = %d", out["C"].Len())
	}
	if got, _ := out["B"].Get([]model.Value{model.Per(model.NewAnnual(2000))}); got != 0.5 {
		t.Errorf("B(2000) = %v", got)
	}
}

func TestChaseVectorInnerJoin(t *testing.T) {
	// Vectorial ops produce tuples only for dimension tuples in both cubes.
	m := compile(t, `
cube A(t: year) measure v
cube B(t: year) measure w
C := A + B
`)
	a := model.NewCube(model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	b := model.NewCube(model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TYear}}, "w"))
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2000))}, 1)
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2001))}, 2)
	_ = b.Put([]model.Value{model.Per(model.NewAnnual(2001))}, 10)
	_ = b.Put([]model.Value{model.Per(model.NewAnnual(2002))}, 20)
	out := solve(t, m, Instance{"A": a, "B": b})
	if out["C"].Len() != 1 {
		t.Fatalf("C len = %d", out["C"].Len())
	}
	if got, _ := out["C"].Get([]model.Value{model.Per(model.NewAnnual(2001))}); got != 12 {
		t.Errorf("C(2001) = %v", got)
	}
}

func TestChaseBroadcast(t *testing.T) {
	m := compile(t, workload.SupervisionProgram)
	src := workload.SupervisionSource(5, 12, 1)
	out := solve(t, m, Instance(src))

	assets, sys, share := out["ASSETS"], out["SYS"], out["SHARE"]
	if share.Len() != assets.Len() {
		t.Fatalf("SHARE len = %d, want %d", share.Len(), assets.Len())
	}
	// Spot-check one share value and that shares sum to 100 per quarter.
	sums := make(map[string]float64)
	for _, tu := range share.Tuples() {
		sums[tu.Dims[0].String()] += tu.Measure
	}
	for q, s := range sums {
		if math.Abs(s-100) > 1e-6 {
			t.Errorf("shares at %s sum to %v", q, s)
		}
	}
	if sys.Len() != 12 {
		t.Errorf("SYS len = %d", sys.Len())
	}
	// GAP = SYS - SYSTREND must average ~0 by the OLS normal equations.
	var gapSum float64
	for _, tu := range out["GAP"].Tuples() {
		gapSum += tu.Measure
	}
	if math.Abs(gapSum) > 1e-4*1e9 {
		t.Errorf("GAP sum = %v", gapSum)
	}
}

func TestChaseShiftSemantics(t *testing.T) {
	// shift(e, s)(t) = e(t-s): the lag operator.
	m := compile(t, "cube A(t: year) measure v\nB := shift(A, 1)")
	a := model.NewCube(model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	_ = a.Put([]model.Value{model.Per(model.NewAnnual(2000))}, 42)
	out := solve(t, m, Instance{"A": a})
	got, ok := out["B"].Get([]model.Value{model.Per(model.NewAnnual(2001))})
	if !ok || got != 42 {
		t.Errorf("B(2001) = %v, %v; want 42 (the 2000 value)", got, ok)
	}
}

func TestChaseAggregationOperators(t *testing.T) {
	src := `
cube A(t: year, r: string) measure v
MN := min(A, group by t)
MX := max(A, group by t)
MD := median(A, group by t)
CT := count(A, group by t)
SD := stddev(A, group by t)
TOT := sum(A)
`
	m := compile(t, src)
	a := model.NewCube(model.NewSchema("A",
		[]model.Dim{{Name: "t", Type: model.TYear}, {Name: "r", Type: model.TString}}, "v"))
	y := model.Per(model.NewAnnual(2000))
	for i, v := range []float64{4, 1, 3, 2} {
		_ = a.Put([]model.Value{y, model.Str(string(rune('a' + i)))}, v)
	}
	out := solve(t, m, Instance{"A": a})
	checks := map[string]float64{"MN": 1, "MX": 4, "MD": 2.5, "CT": 4, "SD": math.Sqrt(1.25)}
	for rel, want := range checks {
		got, ok := out[rel].Get([]model.Value{y})
		if !ok || math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v (%v), want %v", rel, got, ok, want)
		}
	}
	// TOT is 0-dimensional: a single scalar tuple.
	if got, ok := out["TOT"].Get(nil); !ok || got != 10 {
		t.Errorf("TOT = %v (%v)", got, ok)
	}
}

func TestChaseEgdFailure(t *testing.T) {
	// A hand-built non-functional tgd: project away a dimension without
	// aggregating. The chase must fail with an egd violation.
	sch := model.NewSchema("A",
		[]model.Dim{{Name: "t", Type: model.TYear}, {Name: "r", Type: model.TString}}, "v")
	out := model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TYear}}, "v")
	m := &mapping.Mapping{
		Schemas:    map[string]model.Schema{"A": sch, "B": out},
		Elementary: []string{"A"},
		Tgds: []*mapping.Tgd{{
			ID:      "bad",
			Kind:    mapping.TupleLevel,
			Lhs:     []mapping.Atom{{Rel: "A", Dims: []mapping.DimTerm{mapping.V("t"), mapping.V("r")}, MVar: "v"}},
			Rhs:     mapping.Atom{Rel: "B", Dims: []mapping.DimTerm{mapping.V("t")}},
			Measure: mapping.MV("v"),
		}},
	}
	a := model.NewCube(sch)
	yr := model.Per(model.NewAnnual(2000))
	_ = a.Put([]model.Value{yr, model.Str("x")}, 1)
	_ = a.Put([]model.Value{yr, model.Str("y")}, 2)
	_, err := New(m).Solve(Instance{"A": a})
	if err == nil || !IsFailure(err) {
		t.Fatalf("want egd failure, got %v", err)
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("failure should name the tgd: %v", err)
	}
}

func TestChaseRepeatedVariableInAtom(t *testing.T) {
	// Hand-built tgd with a repeated variable: B(t) = A(t, t) diagonal.
	sch := model.NewSchema("A",
		[]model.Dim{{Name: "i", Type: model.TInt}, {Name: "j", Type: model.TInt}}, "v")
	out := model.NewSchema("B", []model.Dim{{Name: "i", Type: model.TInt}}, "v")
	m := &mapping.Mapping{
		Schemas:    map[string]model.Schema{"A": sch, "B": out},
		Elementary: []string{"A"},
		Tgds: []*mapping.Tgd{{
			ID:      "diag",
			Kind:    mapping.TupleLevel,
			Lhs:     []mapping.Atom{{Rel: "A", Dims: []mapping.DimTerm{mapping.V("x"), mapping.V("x")}, MVar: "v"}},
			Rhs:     mapping.Atom{Rel: "B", Dims: []mapping.DimTerm{mapping.V("x")}},
			Measure: mapping.MV("v"),
		}},
	}
	a := model.NewCube(sch)
	_ = a.Put([]model.Value{model.Int(1), model.Int(1)}, 11)
	_ = a.Put([]model.Value{model.Int(1), model.Int(2)}, 12)
	_ = a.Put([]model.Value{model.Int(2), model.Int(2)}, 22)
	sol := solve(t, m, Instance{"A": a})
	if sol["B"].Len() != 2 {
		t.Fatalf("B len = %d", sol["B"].Len())
	}
	if got, _ := sol["B"].Get([]model.Value{model.Int(2)}); got != 22 {
		t.Errorf("B(2) = %v", got)
	}
}

func TestChaseInstanceClone(t *testing.T) {
	src := Instance(workload.GDPSource(workload.GDPConfig{Days: 10, Regions: 1}))
	c := src.Clone()
	if len(c) != len(src) {
		t.Fatal("clone size")
	}
	day := model.NewDaily(2000, time.January, 1)
	_ = c["PDR"].Replace([]model.Value{model.Per(day), model.Str(workload.RegionName(0))}, -1)
	orig, _ := src["PDR"].Get([]model.Value{model.Per(day), model.Str(workload.RegionName(0))})
	if orig == -1 {
		t.Error("Clone must not share cubes")
	}
}

func TestChaseInflationProgram(t *testing.T) {
	m := compile(t, workload.InflationProgram)
	src := workload.InflationSource(8, 36, 1)
	out := solve(t, m, Instance(src))
	if out["CPI"].Len() != 36 {
		t.Errorf("CPI len = %d", out["CPI"].Len())
	}
	if out["CPIY"].Len() != 3 {
		t.Errorf("CPIY len = %d", out["CPIY"].Len())
	}
	// Year-over-year changes exist only from month 13 on.
	if out["INFL"].Len() != 24 {
		t.Errorf("INFL len = %d", out["INFL"].Len())
	}
	// Prices trend upward, so inflation should be positive everywhere.
	for _, tu := range out["INFL"].Tuples() {
		if tu.Measure <= 0 {
			t.Errorf("INFL%v = %v, want > 0", tu.Dims, tu.Measure)
		}
	}
}
