// Package frame implements the matrix-oriented execution target standing
// in for R and Matlab (Section 5.2). Schema mappings are translated into a
// small data-frame program IR — merges on dimension columns, element-wise
// column arithmetic, group aggregation and whole-series statistical calls —
// which this package executes directly and which internal/rgen and
// internal/matlabgen print as R and Matlab source text.
//
// Executing the IR (rather than only printing foreign code) is what makes
// the R/Matlab translation testable: the same program that is rendered as
// `merge(PQR, RGDPPC, by=c("q","r"))` runs here and is compared against the
// chase solution.
package frame

import (
	"fmt"
	"sort"

	"exlengine/internal/colbatch"
	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// Frame is a data frame: named columns over rows of dynamically typed
// values (R's data.frame, Matlab's matrix with column metadata).
type Frame struct {
	Cols []string
	Rows [][]model.Value
}

// NewFrame returns an empty frame with the given columns.
func NewFrame(cols ...string) *Frame {
	return &Frame{Cols: append([]string(nil), cols...)}
}

// ColIndex returns the position of the named column, or -1.
func (f *Frame) ColIndex(name string) int {
	for i, c := range f.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	out := &Frame{Cols: append([]string(nil), f.Cols...)}
	out.Rows = make([][]model.Value, len(f.Rows))
	for i, r := range f.Rows {
		out.Rows[i] = append([]model.Value(nil), r...)
	}
	return out
}

// FromCube converts a cube into a frame whose columns are the dimension
// names followed by the measure name. The conversion goes through the
// shared columnar batch representation (colbatch), the same layout the
// vectorized SQL executor reads, so cube↔frame and cube↔table transfers
// are the one column-major code path.
func FromCube(c *model.Cube) *Frame {
	sch := c.Schema()
	cols := append([]string(nil), sch.DimNames()...)
	cols = append(cols, sch.Measure)
	return &Frame{Cols: cols, Rows: colbatch.FromCube(c).Rows()}
}

// ToCube converts a frame back into a cube under the given schema. The
// frame must contain the schema's dimension and measure columns (by
// name, any order). Rows with invalid (NA) values are dropped, matching
// the partial-function semantics of cubes. Column reordering is a
// zero-copy batch projection.
func (f *Frame) ToCube(sch model.Schema) (*model.Cube, error) {
	idx := make([]int, 0, len(sch.Dims)+1)
	for _, d := range sch.Dims {
		j := f.ColIndex(d.Name)
		if j < 0 {
			return nil, fmt.Errorf("frame: missing dimension column %s", d.Name)
		}
		idx = append(idx, j)
	}
	mj := f.ColIndex(sch.Measure)
	if mj < 0 {
		return nil, fmt.Errorf("frame: missing measure column %s", sch.Measure)
	}
	idx = append(idx, mj)
	b := colbatch.FromRows(f.Rows, len(f.Cols)).Project(idx)
	c, err := colbatch.ToCube(b, sch)
	if err != nil {
		return nil, fmt.Errorf("frame: %w", err)
	}
	return c, nil
}

// Sort orders the rows by all columns left to right (deterministic output
// for tests and printing).
func (f *Frame) Sort() {
	sort.Slice(f.Rows, func(i, j int) bool {
		for k := range f.Cols {
			if c := f.Rows[i][k].Compare(f.Rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// Expr is a row-wise column expression (the element-wise arithmetic of
// Section 5.2: tmp$i <- tmp$p * tmp$g).
type Expr interface{ exprNode() }

// Col references a column of the current frame.
type Col struct{ Name string }

// Const is a numeric constant.
type Const struct{ V float64 }

// Apply applies a scalar operator from the ops registry to argument
// expressions, with trailing scalar parameters.
type Apply struct {
	Op     string
	Args   []Expr
	Params []float64
}

// PShift shifts a period (or integer) value by N steps.
type PShift struct {
	X Expr
	N int64
}

// DimApply applies a dimension function (quarter, month, year).
type DimApply struct {
	Fn string
	X  Expr
}

func (Col) exprNode()      {}
func (Const) exprNode()    {}
func (Apply) exprNode()    {}
func (PShift) exprNode()   {}
func (DimApply) exprNode() {}

// evalExpr evaluates a column expression on one row. An invalid Value with
// nil error is NA (an undefined operator point) and propagates.
func evalExpr(e Expr, f *Frame, row []model.Value) (model.Value, error) {
	switch e := e.(type) {
	case Col:
		j := f.ColIndex(e.Name)
		if j < 0 {
			return model.Value{}, fmt.Errorf("frame: unknown column %s", e.Name)
		}
		return row[j], nil
	case Const:
		return model.Num(e.V), nil
	case PShift:
		x, err := evalExpr(e.X, f, row)
		if err != nil || !x.IsValid() {
			return x, err
		}
		return ops.ShiftValue(x, e.N)
	case DimApply:
		x, err := evalExpr(e.X, f, row)
		if err != nil || !x.IsValid() {
			return x, err
		}
		fn, err := ops.Dimension(e.Fn)
		if err != nil {
			return model.Value{}, err
		}
		return fn.Apply(x)
	case Apply:
		args := make([]float64, 0, len(e.Args)+len(e.Params))
		for _, a := range e.Args {
			v, err := evalExpr(a, f, row)
			if err != nil || !v.IsValid() {
				return v, err
			}
			x, ok := v.AsNumber()
			if !ok {
				return model.Value{}, fmt.Errorf("frame: %s over non-numeric %v", e.Op, v)
			}
			args = append(args, x)
		}
		args = append(args, e.Params...)
		fn, err := ops.Scalar(e.Op)
		if err != nil {
			return model.Value{}, err
		}
		out, err := fn(args...)
		if err != nil {
			if ops.ErrUndefined(err) {
				return model.Value{}, nil // NA
			}
			return model.Value{}, err
		}
		return model.Num(out), nil
	default:
		return model.Value{}, fmt.Errorf("frame: unsupported expression %T", e)
	}
}

// Eval evaluates a column expression against a bare column list and row,
// for engines (such as the ETL runtime) that stream rows without
// materializing frames.
func Eval(e Expr, cols []string, row []model.Value) (model.Value, error) {
	return evalExpr(e, &Frame{Cols: cols}, row)
}
