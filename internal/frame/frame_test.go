package frame

import (
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/workload"
)

func compile(t *testing.T, src string) *mapping.Mapping {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func yearCube(t *testing.T, name string, vals map[int]float64) *model.Cube {
	t.Helper()
	c := model.NewCube(model.NewSchema(name, []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	for y, v := range vals {
		if err := c.Put([]model.Value{model.Per(model.NewAnnual(y))}, v); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestFrameCubeRoundTrip(t *testing.T) {
	c := yearCube(t, "A", map[int]float64{2000: 1, 2001: 2})
	f := FromCube(c)
	if len(f.Cols) != 2 || f.Cols[0] != "t" || f.Cols[1] != "v" {
		t.Fatalf("cols = %v", f.Cols)
	}
	back, err := f.ToCube(c.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c, model.Eps) {
		t.Error("round trip lost data")
	}
}

func TestToCubeDropsNA(t *testing.T) {
	f := NewFrame("t", "v")
	f.Rows = [][]model.Value{
		{model.Per(model.NewAnnual(2000)), model.Num(1)},
		{model.Per(model.NewAnnual(2001)), model.Value{}}, // NA measure
		{model.Value{}, model.Num(3)},                     // NA dim
	}
	c, err := f.ToCube(model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestMergeStep(t *testing.T) {
	env := Env{
		"X": &Frame{Cols: []string{"q", "r", "p"}, Rows: [][]model.Value{
			{model.Int(1), model.Str("n"), model.Num(10)},
			{model.Int(1), model.Str("s"), model.Num(20)},
			{model.Int(2), model.Str("n"), model.Num(30)},
		}},
		"Y": &Frame{Cols: []string{"q", "r", "g"}, Rows: [][]model.Value{
			{model.Int(1), model.Str("n"), model.Num(2)},
			{model.Int(2), model.Str("n"), model.Num(3)},
			{model.Int(3), model.Str("n"), model.Num(4)},
		}},
	}
	if err := runStep(Merge{Out: "Z", X: "X", Y: "Y", By: []string{"q", "r"}}, env); err != nil {
		t.Fatal(err)
	}
	z := env["Z"]
	if len(z.Rows) != 2 {
		t.Fatalf("merge rows = %d", len(z.Rows))
	}
	if len(z.Cols) != 4 || z.Cols[3] != "g" {
		t.Errorf("merge cols = %v", z.Cols)
	}
	// Cross join with empty By.
	if err := runStep(Merge{Out: "W", X: "X", Y: "Y", By: nil}, env); err != nil {
		t.Fatal(err)
	}
	if len(env["W"].Rows) != 9 {
		t.Errorf("cross join rows = %d", len(env["W"].Rows))
	}
}

func TestMapColAndFilter(t *testing.T) {
	env := Env{"F": &Frame{Cols: []string{"a", "b"}, Rows: [][]model.Value{
		{model.Num(1), model.Num(2)},
		{model.Num(3), model.Num(0)},
	}}}
	// c = a / b: NA where b = 0.
	if err := runStep(MapCol{Var: "F", Col: "c", E: Apply{Op: "div", Args: []Expr{Col{Name: "a"}, Col{Name: "b"}}}}, env); err != nil {
		t.Fatal(err)
	}
	f := env["F"]
	if v, _ := f.Rows[0][2].AsNumber(); v != 0.5 {
		t.Errorf("c[0] = %v", f.Rows[0][2])
	}
	if f.Rows[1][2].IsValid() {
		t.Error("division by zero must be NA")
	}
	// Overwrite an existing column.
	if err := runStep(MapCol{Var: "F", Col: "a", E: Const{V: 9}}, env); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Rows[0][0].AsNumber(); v != 9 {
		t.Error("overwrite failed")
	}
	// Filter.
	if err := runStep(Filter{Var: "F", Col: "b", V: model.Num(2)}, env); err != nil {
		t.Fatal(err)
	}
	if len(f.Rows) != 1 {
		t.Errorf("filter rows = %d", len(f.Rows))
	}
}

func TestGroupAggStep(t *testing.T) {
	env := Env{"F": &Frame{Cols: []string{"k", "v"}, Rows: [][]model.Value{
		{model.Str("a"), model.Num(1)},
		{model.Str("a"), model.Num(3)},
		{model.Str("b"), model.Num(5)},
		{model.Str("b"), model.Value{}}, // NA excluded from bag
	}}}
	if err := runStep(GroupAgg{Out: "G", In: "F", By: []string{"k"}, Agg: "avg", ValCol: "v", OutCol: "m"}, env); err != nil {
		t.Fatal(err)
	}
	g := env["G"]
	if len(g.Rows) != 2 {
		t.Fatalf("groups = %d", len(g.Rows))
	}
	g.Sort()
	if v, _ := g.Rows[0][1].AsNumber(); v != 2 {
		t.Errorf("avg a = %v", g.Rows[0][1])
	}
	if v, _ := g.Rows[1][1].AsNumber(); v != 5 {
		t.Errorf("avg b = %v", g.Rows[1][1])
	}
}

func TestSeriesOpStep(t *testing.T) {
	env := Env{"S": &Frame{Cols: []string{"t", "v"}, Rows: [][]model.Value{
		{model.Per(model.NewAnnual(2002)), model.Num(3)},
		{model.Per(model.NewAnnual(2000)), model.Num(1)},
		{model.Per(model.NewAnnual(2001)), model.Num(2)},
	}}}
	if err := runStep(SeriesOp{Out: "C", In: "S", Op: "cumsum", TimeCol: "t", ValCol: "v"}, env); err != nil {
		t.Fatal(err)
	}
	c := env["C"]
	if len(c.Rows) != 3 {
		t.Fatal("rows")
	}
	// Sorted chronologically before the cumulative sum.
	if v, _ := c.Rows[2][1].AsNumber(); v != 6 {
		t.Errorf("cumsum = %v", c.Rows)
	}
}

func TestStepErrors(t *testing.T) {
	env := Env{"F": NewFrame("a")}
	bad := []Step{
		Copy{Out: "X", In: "NOPE"},
		Rename{Out: "X", In: "F", From: []string{"zz"}, To: []string{"y"}},
		Filter{Var: "F", Col: "zz"},
		SelectCols{Out: "X", In: "F", Cols: []string{"zz"}},
		Merge{Out: "X", X: "F", Y: "F", By: []string{"zz"}},
		GroupAgg{Out: "X", In: "F", By: []string{"zz"}, Agg: "sum", ValCol: "a"},
		GroupAgg{Out: "X", In: "F", By: nil, Agg: "nosuch", ValCol: "a"},
		SeriesOp{Out: "X", In: "F", Op: "cumsum", TimeCol: "zz", ValCol: "a"},
		MapCol{Var: "F", Col: "x", E: Col{Name: "zz"}},
	}
	for i, s := range bad {
		// Row-wise failures (unknown agg, unknown expr column) only
		// surface when a row feeds them.
		env["F"].Rows = [][]model.Value{make([]model.Value, len(env["F"].Cols))}
		env["F"].Rows[0][0] = model.Num(1)
		if err := runStep(s, env); err == nil {
			t.Errorf("step %d: want error", i)
		}
		env["F"].Rows = nil
	}
}

// TestFrameMatchesChase validates the frame target against the chase on
// all three example programs.
func TestFrameMatchesChase(t *testing.T) {
	cases := []struct {
		name string
		prog string
		data workload.Data
	}{
		{"gdp", workload.GDPProgram, workload.GDPSource(workload.GDPConfig{Days: 400, Regions: 4})},
		{"inflation", workload.InflationProgram, workload.InflationSource(6, 30, 2)},
		{"supervision", workload.SupervisionProgram, workload.SupervisionSource(8, 16, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := compile(t, tc.prog)
			ref, err := chase.New(m).Solve(chase.Instance(tc.data))
			if err != nil {
				t.Fatal(err)
			}
			script, err := Translate(m)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Execute(script, m, tc.data)
			if err != nil {
				t.Fatal(err)
			}
			for _, rel := range m.Derived {
				if !got[rel].Equal(ref[rel], 1e-6) {
					t.Errorf("%s differs between frame and chase:\n%s",
						rel, strings.Join(got[rel].Diff(ref[rel], 1e-6, 5), "\n"))
				}
			}
		})
	}
}

func TestTranslateTgdShapes(t *testing.T) {
	m := compile(t, workload.GDPProgram)
	script, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Programs) != 5 {
		t.Fatalf("programs = %d", len(script.Programs))
	}
	// The vectorial product has a Merge step on q and r.
	var rgdp *Program
	for _, p := range script.Programs {
		if p.Target == "RGDP" {
			rgdp = p
		}
	}
	foundMerge := false
	for _, s := range rgdp.Steps {
		if mg, ok := s.(Merge); ok {
			foundMerge = true
			if len(mg.By) != 2 {
				t.Errorf("merge by = %v", mg.By)
			}
		}
	}
	if !foundMerge {
		t.Error("RGDP program must contain a Merge step")
	}
	// The black box becomes a SeriesOp.
	var gdpt *Program
	for _, p := range script.Programs {
		if p.Target == "GDPT" {
			gdpt = p
		}
	}
	if _, ok := gdpt.Steps[0].(SeriesOp); !ok {
		t.Errorf("GDPT program starts with %T", gdpt.Steps[0])
	}
}

func TestFrameExprErrors(t *testing.T) {
	f := NewFrame("a")
	row := []model.Value{model.Str("x")}
	f.Rows = append(f.Rows, row)
	if _, err := evalExpr(Apply{Op: "add", Args: []Expr{Col{Name: "a"}, Const{V: 1}}}, f, row); err == nil {
		t.Error("arithmetic over string must fail")
	}
	if _, err := evalExpr(Apply{Op: "nosuch", Args: []Expr{Const{V: 1}}}, f, row); err == nil {
		t.Error("unknown op must fail")
	}
	if _, err := evalExpr(DimApply{Fn: "quarter", X: Col{Name: "a"}}, f, row); err == nil {
		t.Error("quarter of string must fail")
	}
	if _, err := evalExpr(PShift{X: Col{Name: "a"}, N: 1}, f, row); err == nil {
		t.Error("shift of string must fail")
	}
}

func TestFrameSortAndClone(t *testing.T) {
	f := NewFrame("a")
	f.Rows = [][]model.Value{{model.Num(2)}, {model.Num(1)}}
	c := f.Clone()
	f.Sort()
	if v, _ := f.Rows[0][0].AsNumber(); v != 1 {
		t.Error("sort")
	}
	if v, _ := c.Rows[0][0].AsNumber(); v != 2 {
		t.Error("clone must be independent")
	}
}
