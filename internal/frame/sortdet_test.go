package frame

import (
	"testing"

	"exlengine/internal/model"
)

// TestSeriesOpDuplicatePeriodsDeterministic is the regression test for
// the unstable series sort: a frame with duplicate periods used to order
// equal periods by row position, so CUMSUM's running totals depended on
// upstream row order. The tie-break on value makes the output a pure
// function of the frame's contents.
func TestSeriesOpDuplicatePeriodsDeterministic(t *testing.T) {
	const periods, dups = 8, 8
	mkFrame := func(reverse bool) *Frame {
		fr := NewFrame("t", "v")
		n := periods * dups
		for i := 0; i < n; i++ {
			k := i
			if reverse {
				k = n - 1 - i
			}
			q := model.NewQuarterly(2000, 1).Shift(int64(k % periods))
			fr.Rows = append(fr.Rows, []model.Value{model.Per(q), model.Num(float64(k))})
		}
		return fr
	}
	op := SeriesOp{Out: "O", In: "S", Op: "cumsum", TimeCol: "t", ValCol: "v"}

	a, err := seriesOp(mkFrame(false), op)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seriesOp(mkFrame(true), op)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) || len(a.Rows) != periods*dups {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				t.Fatalf("row %d differs between input orders: %v vs %v", i, a.Rows[i], b.Rows[i])
			}
		}
	}
}
