package frame

import (
	"context"
	"fmt"

	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/obs"
)

// Translate renders a whole mapping as a frame script: one program per tgd
// in stratification order.
func Translate(m *mapping.Mapping) (*Script, error) {
	s := &Script{}
	for _, t := range m.Tgds {
		p, err := TranslateTgd(t, m.Schemas)
		if err != nil {
			return nil, fmt.Errorf("frame: tgd %s: %w", t.ID, err)
		}
		s.Programs = append(s.Programs, p)
	}
	return s, nil
}

// Execute runs the script over the source cubes and returns every computed
// relation (derived and auxiliary) as cubes.
func Execute(s *Script, m *mapping.Mapping, source map[string]*model.Cube) (map[string]*model.Cube, error) {
	return ExecuteContext(context.Background(), s, m, source)
}

// ExecuteContext is Execute under a context: cancellation aborts between
// programs, and a tracer carried by the context records one span per
// program (tgd) and per frame operation.
func ExecuteContext(ctx context.Context, s *Script, m *mapping.Mapping, source map[string]*model.Cube) (map[string]*model.Cube, error) {
	env := Env{}
	for _, name := range m.Elementary {
		if c, ok := source[name]; ok {
			env[name] = FromCube(c)
		} else {
			env[name] = FromCube(model.NewCube(m.Schemas[name]))
		}
	}
	out := make(map[string]*model.Cube)
	for _, p := range s.Programs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pctx, span := obs.StartSpan(ctx, "frame.program",
			obs.String("tgd", p.TgdID), obs.String("cube", p.Target), obs.Int("ops", len(p.Steps)))
		res, err := p.RunContext(pctx, env)
		if err != nil {
			span.EndErr(err)
			return nil, err
		}
		cube, err := res.ToCube(m.Schemas[p.Target])
		if err != nil {
			err = fmt.Errorf("frame: tgd %s result: %w", p.TgdID, err)
			span.EndErr(err)
			return nil, err
		}
		span.SetAttr(obs.Int("tuples", cube.Len()))
		span.End()
		out[p.Target] = cube
		env[p.Target] = FromCube(cube)
	}
	return out, nil
}

// TranslateTgd translates one tgd into a frame program. The generated
// steps follow the paper's R translation shape: per-operand key
// preparation, merge on shared variables, element-wise calculation of the
// result columns, optional group aggregation or whole-series call, and a
// final projection onto the target cube's columns.
func TranslateTgd(t *mapping.Tgd, schemas map[string]model.Schema) (*Program, error) {
	out, ok := schemas[t.Rhs.Rel]
	if !ok {
		return nil, fmt.Errorf("no schema for %s", t.Rhs.Rel)
	}
	p := &Program{TgdID: t.ID, Target: t.Target(), Result: t.Target()}

	if t.Kind == mapping.BlackBox {
		in, ok := schemas[t.Lhs[0].Rel]
		if !ok {
			return nil, fmt.Errorf("no schema for %s", t.Lhs[0].Rel)
		}
		tmp := "tmp_" + t.ID
		p.Steps = append(p.Steps,
			SeriesOp{Out: tmp, In: t.Lhs[0].Rel, Op: t.BB, Params: t.BBParams,
				TimeCol: in.Dims[0].Name, ValCol: in.Measure},
			SelectCols{Out: p.Result, In: tmp,
				Cols: []string{in.Dims[0].Name, in.Measure},
				As:   []string{out.Dims[0].Name, out.Measure}},
		)
		return p, nil
	}

	if t.Kind == mapping.PadVector {
		return translatePadVector(t, schemas, p, out)
	}

	// Build one frame per lhs atom with columns named after the tgd
	// variables.
	var atomVars []string // frame variable names
	varCols := make(map[string]bool)
	for i, atom := range t.Lhs {
		sch, ok := schemas[atom.Rel]
		if !ok {
			return nil, fmt.Errorf("no schema for %s", atom.Rel)
		}
		av := fmt.Sprintf("a%d_%s", i+1, t.ID)
		p.Steps = append(p.Steps, Copy{Out: av, In: atom.Rel})

		var selCols, selAs []string
		seen := make(map[string]bool)
		for j, d := range atom.Dims {
			dimCol := sch.Dims[j].Name
			switch {
			case d.Const != nil:
				p.Steps = append(p.Steps, Filter{Var: av, Col: dimCol, V: *d.Const})
			case d.Func != "":
				return nil, fmt.Errorf("dimension function %s in lhs is not translatable", d.Func)
			default:
				if seen[d.Var] {
					return nil, fmt.Errorf("repeated variable %s within an atom is not supported", d.Var)
				}
				seen[d.Var] = true
				src := dimCol
				if d.Shift != 0 {
					// The stored value is Var+Shift, so Var = value-Shift.
					tmpCol := "k_" + d.Var
					p.Steps = append(p.Steps, MapCol{Var: av, Col: tmpCol, E: PShift{X: Col{Name: dimCol}, N: -d.Shift}})
					src = tmpCol
				}
				selCols = append(selCols, src)
				selAs = append(selAs, d.Var)
				varCols[d.Var] = true
			}
		}
		if atom.MVar != "" {
			selCols = append(selCols, sch.Measure)
			selAs = append(selAs, atom.MVar)
			varCols[atom.MVar] = true
		}
		p.Steps = append(p.Steps, SelectCols{Out: av, In: av, Cols: selCols, As: selAs})
		atomVars = append(atomVars, av)
	}

	// Merge the atom frames on their shared variables.
	cur := atomVars[0]
	curCols := frameVarCols(t, 0)
	for i := 1; i < len(atomVars); i++ {
		next := frameVarCols(t, i)
		var by []string
		for _, c := range next {
			if containsStr(curCols, c) {
				by = append(by, c)
			}
		}
		merged := fmt.Sprintf("m%d_%s", i, t.ID)
		p.Steps = append(p.Steps, Merge{Out: merged, X: cur, Y: atomVars[i], By: by})
		cur = merged
		curCols = unionStr(curCols, next)
	}

	// Result dimension columns.
	var dimCols []string
	for k, d := range t.Rhs.Dims {
		col := fmt.Sprintf("d%d_%s", k+1, t.ID)
		var e Expr
		switch {
		case d.Const != nil:
			return nil, fmt.Errorf("constant rhs dimensions are not supported")
		case d.Func != "":
			e = DimApply{Fn: d.Func, X: Col{Name: d.Var}}
		case d.Shift != 0:
			e = PShift{X: Col{Name: d.Var}, N: d.Shift}
		default:
			e = Col{Name: d.Var}
		}
		p.Steps = append(p.Steps, MapCol{Var: cur, Col: col, E: e})
		dimCols = append(dimCols, col)
	}

	// Measure column.
	mcol := "v_" + t.ID
	me, err := mtermExpr(t.Measure)
	if err != nil {
		return nil, err
	}
	p.Steps = append(p.Steps, MapCol{Var: cur, Col: mcol, E: me})

	outDims := out.DimNames()
	if t.Kind == mapping.Aggregation {
		agg := "g_" + t.ID
		p.Steps = append(p.Steps,
			GroupAgg{Out: agg, In: cur, By: dimCols, Agg: t.Agg, ValCol: mcol, OutCol: mcol},
			SelectCols{Out: p.Result, In: agg,
				Cols: append(append([]string(nil), dimCols...), mcol),
				As:   append(append([]string(nil), outDims...), out.Measure)},
		)
		return p, nil
	}
	p.Steps = append(p.Steps, SelectCols{Out: p.Result, In: cur,
		Cols: append(append([]string(nil), dimCols...), mcol),
		As:   append(append([]string(nil), outDims...), out.Measure)})
	return p, nil
}

// translatePadVector builds the program for a padded vectorial tgd: the
// two operand frames are prepared with variable-named columns and combined
// by a PadMerge over the union of their dimension tuples.
func translatePadVector(t *mapping.Tgd, schemas map[string]model.Schema, p *Program, out model.Schema) (*Program, error) {
	var atomVars []string
	for i, atom := range t.Lhs {
		sch, ok := schemas[atom.Rel]
		if !ok {
			return nil, fmt.Errorf("no schema for %s", atom.Rel)
		}
		av := fmt.Sprintf("a%d_%s", i+1, t.ID)
		p.Steps = append(p.Steps, Copy{Out: av, In: atom.Rel})
		var selCols, selAs []string
		for j, d := range atom.Dims {
			if d.Const != nil || d.Func != "" || d.Shift != 0 {
				return nil, fmt.Errorf("padded tgds require plain variable atoms")
			}
			selCols = append(selCols, sch.Dims[j].Name)
			selAs = append(selAs, d.Var)
		}
		selCols = append(selCols, sch.Measure)
		selAs = append(selAs, atom.MVar)
		p.Steps = append(p.Steps, SelectCols{Out: av, In: av, Cols: selCols, As: selAs})
		atomVars = append(atomVars, av)
	}
	keys := make([]string, len(t.Rhs.Dims))
	for i, d := range t.Rhs.Dims {
		keys[i] = d.Var
	}
	mcol := "v_" + t.ID
	merged := "pm_" + t.ID
	p.Steps = append(p.Steps,
		PadMerge{Out: merged, X: atomVars[0], Y: atomVars[1], Keys: keys,
			XVal: t.Lhs[0].MVar, YVal: t.Lhs[1].MVar,
			Op: t.PadOp, Default: t.PadDefault, OutCol: mcol},
		SelectCols{Out: p.Result, In: merged,
			Cols: append(append([]string(nil), keys...), mcol),
			As:   append(append([]string(nil), out.DimNames()...), out.Measure)},
	)
	return p, nil
}

// frameVarCols lists the variable column names of atom i's prepared frame.
func frameVarCols(t *mapping.Tgd, i int) []string {
	var out []string
	for _, d := range t.Lhs[i].Dims {
		if d.Var != "" && d.Const == nil {
			out = append(out, d.Var)
		}
	}
	if t.Lhs[i].MVar != "" {
		out = append(out, t.Lhs[i].MVar)
	}
	return out
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func unionStr(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, s := range b {
		if !containsStr(out, s) {
			out = append(out, s)
		}
	}
	return out
}

func mtermExpr(m *mapping.MTerm) (Expr, error) {
	switch m.Kind {
	case mapping.MVar:
		return Col{Name: m.Var}, nil
	case mapping.MConst:
		return Const{V: m.Val}, nil
	case mapping.MApply:
		args := make([]Expr, 0, len(m.Args))
		for _, a := range m.Args {
			e, err := mtermExpr(a)
			if err != nil {
				return nil, err
			}
			args = append(args, e)
		}
		return Apply{Op: m.Op, Args: args, Params: append([]float64(nil), m.Params...)}, nil
	default:
		return nil, fmt.Errorf("unknown measure term kind %d", m.Kind)
	}
}
