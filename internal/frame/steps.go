package frame

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// Step is one statement of a frame program.
type Step interface{ stepNode() }

// Copy binds a fresh copy of frame In to variable Out.
type Copy struct{ Out, In string }

// Rename renames columns (parallel slices From → To) of frame In into Out.
type Rename struct {
	Out, In  string
	From, To []string
}

// MapCol adds (or overwrites) column Col of the frame bound to Var with
// the row-wise expression E.
type MapCol struct {
	Var string
	Col string
	E   Expr
}

// Filter keeps only the rows of Var whose column Col equals V.
type Filter struct {
	Var string
	Col string
	V   model.Value
}

// SelectCols projects In onto Cols (renamed to As when non-nil) into Out.
type SelectCols struct {
	Out, In string
	Cols    []string
	As      []string
}

// Merge joins frames X and Y on the shared columns By into Out (R's
// merge(x, y, by=c(...))). An empty By is a cross join.
type Merge struct {
	Out, X, Y string
	By        []string
}

// GroupAgg groups In by the By columns and aggregates column ValCol with
// operator Agg into a frame with columns By… + OutCol.
type GroupAgg struct {
	Out, In string
	By      []string
	Agg     string
	ValCol  string
	OutCol  string
}

// PadMerge is the outer-join step behind the padded vectorial operators:
// frames X and Y are joined on the Keys columns over the UNION of their
// key tuples, missing measures default to Default, and OutCol holds
// Op(xval, yval). The output columns are Keys… + OutCol.
type PadMerge struct {
	Out, X, Y  string
	Keys       []string
	XVal, YVal string
	Op         string // scalar operator name ("add", "sub")
	Default    float64
	OutCol     string
}

// SeriesOp applies a whole-series black box to In (columns TimeCol,
// ValCol, sorted chronologically) into Out with the same columns.
type SeriesOp struct {
	Out, In         string
	Op              string
	Params          []float64
	TimeCol, ValCol string
}

func (Copy) stepNode()       {}
func (Rename) stepNode()     {}
func (MapCol) stepNode()     {}
func (Filter) stepNode()     {}
func (SelectCols) stepNode() {}
func (Merge) stepNode()      {}
func (GroupAgg) stepNode()   {}
func (PadMerge) stepNode()   {}
func (SeriesOp) stepNode()   {}

// Program is the frame translation of a single tgd: steps that read the
// operand frames (bound by cube name) and leave the result bound to Result.
type Program struct {
	TgdID  string
	Target string // cube the program populates
	Result string // variable holding the final frame
	Steps  []Step
}

// Script is the frame translation of a whole mapping, one program per tgd
// in stratification order.
type Script struct {
	Programs []*Program
}

// Env binds frame variables during execution.
type Env map[string]*Frame

// Run executes a program in the environment; the result frame is bound to
// p.Result (and returned).
func (p *Program) Run(env Env) (*Frame, error) {
	return p.RunContext(context.Background(), env)
}

// RunContext is Run under a context: a tracer carried by the context
// records one span per frame operation.
func (p *Program) RunContext(ctx context.Context, env Env) (*Frame, error) {
	for _, s := range p.Steps {
		_, span := obs.StartSpan(ctx, "frame.op", obs.String("op", stepName(s)))
		err := runStep(s, env)
		span.EndErr(err)
		if err != nil {
			return nil, fmt.Errorf("frame: tgd %s: %w", p.TgdID, err)
		}
	}
	out, ok := env[p.Result]
	if !ok {
		return nil, fmt.Errorf("frame: tgd %s left no result %s", p.TgdID, p.Result)
	}
	return out, nil
}

// stepName names a frame operation for spans: the step's Go type without
// the package qualifier.
func stepName(s Step) string {
	return strings.TrimPrefix(fmt.Sprintf("%T", s), "frame.")
}

func get(env Env, name string) (*Frame, error) {
	f, ok := env[name]
	if !ok {
		return nil, fmt.Errorf("unknown frame %s", name)
	}
	return f, nil
}

func runStep(s Step, env Env) error {
	switch s := s.(type) {
	case Copy:
		in, err := get(env, s.In)
		if err != nil {
			return err
		}
		env[s.Out] = in.Clone()
		return nil

	case Rename:
		in, err := get(env, s.In)
		if err != nil {
			return err
		}
		out := in.Clone()
		for i, from := range s.From {
			j := out.ColIndex(from)
			if j < 0 {
				return fmt.Errorf("rename: unknown column %s", from)
			}
			out.Cols[j] = s.To[i]
		}
		env[s.Out] = out
		return nil

	case MapCol:
		f, err := get(env, s.Var)
		if err != nil {
			return err
		}
		j := f.ColIndex(s.Col)
		if j < 0 {
			f.Cols = append(f.Cols, s.Col)
			j = len(f.Cols) - 1
			for i := range f.Rows {
				f.Rows[i] = append(f.Rows[i], model.Value{})
			}
		}
		for i, row := range f.Rows {
			v, err := evalExpr(s.E, f, row)
			if err != nil {
				return err
			}
			f.Rows[i][j] = v
		}
		return nil

	case Filter:
		f, err := get(env, s.Var)
		if err != nil {
			return err
		}
		j := f.ColIndex(s.Col)
		if j < 0 {
			return fmt.Errorf("filter: unknown column %s", s.Col)
		}
		kept := f.Rows[:0:0]
		for _, row := range f.Rows {
			if row[j].IsValid() && row[j].Equal(s.V) {
				kept = append(kept, row)
			}
		}
		f.Rows = kept
		return nil

	case SelectCols:
		in, err := get(env, s.In)
		if err != nil {
			return err
		}
		idx := make([]int, len(s.Cols))
		for i, c := range s.Cols {
			j := in.ColIndex(c)
			if j < 0 {
				return fmt.Errorf("select: unknown column %s", c)
			}
			idx[i] = j
		}
		names := s.Cols
		if s.As != nil {
			names = s.As
		}
		out := &Frame{Cols: append([]string(nil), names...)}
		for _, row := range in.Rows {
			nr := make([]model.Value, len(idx))
			for i, j := range idx {
				nr[i] = row[j]
			}
			out.Rows = append(out.Rows, nr)
		}
		env[s.Out] = out
		return nil

	case Merge:
		x, err := get(env, s.X)
		if err != nil {
			return err
		}
		y, err := get(env, s.Y)
		if err != nil {
			return err
		}
		out, err := merge(x, y, s.By)
		if err != nil {
			return err
		}
		env[s.Out] = out
		return nil

	case GroupAgg:
		in, err := get(env, s.In)
		if err != nil {
			return err
		}
		out, err := groupAgg(in, s)
		if err != nil {
			return err
		}
		env[s.Out] = out
		return nil

	case PadMerge:
		x, err := get(env, s.X)
		if err != nil {
			return err
		}
		y, err := get(env, s.Y)
		if err != nil {
			return err
		}
		out, err := padMerge(x, y, s)
		if err != nil {
			return err
		}
		env[s.Out] = out
		return nil

	case SeriesOp:
		in, err := get(env, s.In)
		if err != nil {
			return err
		}
		out, err := seriesOp(in, s)
		if err != nil {
			return err
		}
		env[s.Out] = out
		return nil

	default:
		return fmt.Errorf("unknown step %T", s)
	}
}

// merge hash-joins two frames on the shared By columns; the output has
// X's columns followed by Y's non-join columns (R's merge layout).
func merge(x, y *Frame, by []string) (*Frame, error) {
	xIdx := make([]int, len(by))
	yIdx := make([]int, len(by))
	for i, c := range by {
		xi, yi := x.ColIndex(c), y.ColIndex(c)
		if xi < 0 || yi < 0 {
			return nil, fmt.Errorf("merge: join column %s missing", c)
		}
		xIdx[i], yIdx[i] = xi, yi
	}
	yKeep := make([]int, 0, len(y.Cols))
	for j, c := range y.Cols {
		shared := false
		for _, b := range by {
			if c == b {
				shared = true
				break
			}
		}
		if !shared {
			yKeep = append(yKeep, j)
		}
	}
	out := &Frame{Cols: append([]string(nil), x.Cols...)}
	for _, j := range yKeep {
		out.Cols = append(out.Cols, y.Cols[j])
	}

	index := make(map[string][][]model.Value, len(y.Rows))
	keyBuf := make([]model.Value, len(by))
	for _, r := range y.Rows {
		ok := true
		for i, j := range yIdx {
			if !r[j].IsValid() {
				ok = false
				break
			}
			keyBuf[i] = r[j]
		}
		if !ok {
			continue
		}
		k := model.EncodeKey(keyBuf)
		index[k] = append(index[k], r)
	}
	for _, rx := range x.Rows {
		ok := true
		for i, j := range xIdx {
			if !rx[j].IsValid() {
				ok = false
				break
			}
			keyBuf[i] = rx[j]
		}
		if !ok {
			continue
		}
		for _, ry := range index[model.EncodeKey(keyBuf)] {
			nr := make([]model.Value, 0, len(out.Cols))
			nr = append(nr, rx...)
			for _, j := range yKeep {
				nr = append(nr, ry[j])
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out, nil
}

func groupAgg(in *Frame, s GroupAgg) (*Frame, error) {
	byIdx := make([]int, len(s.By))
	for i, c := range s.By {
		j := in.ColIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("aggregate: unknown column %s", c)
		}
		byIdx[i] = j
	}
	vj := in.ColIndex(s.ValCol)
	if vj < 0 {
		return nil, fmt.Errorf("aggregate: unknown value column %s", s.ValCol)
	}
	type group struct {
		key []model.Value
		agg ops.Aggregator
	}
	groups := make(map[string]*group)
	var order []string
	keyBuf := make([]model.Value, len(byIdx))
	for _, row := range in.Rows {
		ok := true
		for i, j := range byIdx {
			if !row[j].IsValid() {
				ok = false
				break
			}
			keyBuf[i] = row[j]
		}
		if !ok || !row[vj].IsValid() {
			continue
		}
		v, okNum := row[vj].AsNumber()
		if !okNum {
			return nil, fmt.Errorf("aggregate: non-numeric value %v", row[vj])
		}
		k := model.EncodeKey(keyBuf)
		g, okG := groups[k]
		if !okG {
			agg, err := ops.NewAggregator(s.Agg)
			if err != nil {
				return nil, err
			}
			g = &group{key: append([]model.Value(nil), keyBuf...), agg: agg}
			groups[k] = g
			order = append(order, k)
		}
		g.agg.Add(v)
	}
	out := &Frame{Cols: append(append([]string(nil), s.By...), s.OutCol)}
	sort.Strings(order)
	for _, k := range order {
		g := groups[k]
		row := append(append([]model.Value(nil), g.key...), model.Num(g.agg.Result()))
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func padMerge(x, y *Frame, s PadMerge) (*Frame, error) {
	type side struct {
		f      *Frame
		keyIdx []int
		valIdx int
	}
	prepare := func(f *Frame, val string) (side, error) {
		sd := side{f: f, keyIdx: make([]int, len(s.Keys))}
		for i, k := range s.Keys {
			j := f.ColIndex(k)
			if j < 0 {
				return sd, fmt.Errorf("pad-merge: key column %s missing", k)
			}
			sd.keyIdx[i] = j
		}
		sd.valIdx = f.ColIndex(val)
		if sd.valIdx < 0 {
			return sd, fmt.Errorf("pad-merge: value column %s missing", val)
		}
		return sd, nil
	}
	sx, err := prepare(x, s.XVal)
	if err != nil {
		return nil, err
	}
	sy, err := prepare(y, s.YVal)
	if err != nil {
		return nil, err
	}
	fn, err := ops.Scalar(s.Op)
	if err != nil {
		return nil, err
	}

	type entry struct {
		key []model.Value
		v   float64
	}
	index := func(sd side) (map[string]entry, error) {
		out := make(map[string]entry, len(sd.f.Rows))
		keyBuf := make([]model.Value, len(sd.keyIdx))
		for _, row := range sd.f.Rows {
			ok := true
			for i, j := range sd.keyIdx {
				if !row[j].IsValid() {
					ok = false
					break
				}
				keyBuf[i] = row[j]
			}
			if !ok || !row[sd.valIdx].IsValid() {
				continue
			}
			v, isNum := row[sd.valIdx].AsNumber()
			if !isNum {
				return nil, fmt.Errorf("pad-merge: non-numeric value %v", row[sd.valIdx])
			}
			out[model.EncodeKey(keyBuf)] = entry{key: append([]model.Value(nil), keyBuf...), v: v}
		}
		return out, nil
	}
	mx, err := index(sx)
	if err != nil {
		return nil, err
	}
	my, err := index(sy)
	if err != nil {
		return nil, err
	}

	out := &Frame{Cols: append(append([]string(nil), s.Keys...), s.OutCol)}
	emit := func(key []model.Value, xv, yv float64) error {
		v, err := fn(xv, yv)
		if err != nil {
			if ops.ErrUndefined(err) {
				return nil
			}
			return err
		}
		out.Rows = append(out.Rows, append(append([]model.Value(nil), key...), model.Num(v)))
		return nil
	}
	for k, ev := range mx {
		yv := s.Default
		if o, ok := my[k]; ok {
			yv = o.v
		}
		if err := emit(ev.key, ev.v, yv); err != nil {
			return nil, err
		}
	}
	for k, ev := range my {
		if _, ok := mx[k]; ok {
			continue
		}
		if err := emit(ev.key, s.Default, ev.v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func seriesOp(in *Frame, s SeriesOp) (*Frame, error) {
	tj := in.ColIndex(s.TimeCol)
	vj := in.ColIndex(s.ValCol)
	if tj < 0 || vj < 0 {
		return nil, fmt.Errorf("series %s: columns %s, %s not found", s.Op, s.TimeCol, s.ValCol)
	}
	type point struct {
		p model.Period
		v float64
	}
	pts := make([]point, 0, len(in.Rows))
	for _, row := range in.Rows {
		p, ok := row[tj].AsPeriod()
		if !ok {
			return nil, fmt.Errorf("series %s: non-period time value %v", s.Op, row[tj])
		}
		v, ok := row[vj].AsNumber()
		if !ok {
			return nil, fmt.Errorf("series %s: non-numeric value %v", s.Op, row[vj])
		}
		pts = append(pts, point{p, v})
	}
	// Tie-break duplicate periods on value: sort.Slice is unstable and a
	// nondeterministic order would leak into the series output.
	sort.Slice(pts, func(i, j int) bool {
		if c := pts[i].p.Compare(pts[j].p); c != 0 {
			return c < 0
		}
		return pts[i].v < pts[j].v
	})
	vals := make([]float64, len(pts))
	for i, pt := range pts {
		vals[i] = pt.v
	}
	fn, err := ops.Series(s.Op)
	if err != nil {
		return nil, err
	}
	seasonLen := 1
	if len(pts) > 0 {
		seasonLen = ops.SeasonLength(pts[0].p.Freq)
	}
	res, err := fn(vals, seasonLen, s.Params)
	if err != nil {
		return nil, err
	}
	out := NewFrame(s.TimeCol, s.ValCol)
	for i, pt := range pts {
		out.Rows = append(out.Rows, []model.Value{model.Per(pt.p), model.Num(res[i])})
	}
	return out, nil
}
