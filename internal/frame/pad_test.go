package frame

import (
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/model"
)

func TestPadMergeStep(t *testing.T) {
	env := Env{
		"X": &Frame{Cols: []string{"t", "x"}, Rows: [][]model.Value{
			{model.Int(1), model.Num(10)},
			{model.Int(2), model.Num(20)},
		}},
		"Y": &Frame{Cols: []string{"t", "y"}, Rows: [][]model.Value{
			{model.Int(2), model.Num(200)},
			{model.Int(3), model.Num(300)},
		}},
	}
	err := runStep(PadMerge{Out: "Z", X: "X", Y: "Y", Keys: []string{"t"},
		XVal: "x", YVal: "y", Op: "add", Default: 0, OutCol: "v"}, env)
	if err != nil {
		t.Fatal(err)
	}
	z := env["Z"]
	z.Sort()
	if len(z.Rows) != 3 {
		t.Fatalf("rows = %d", len(z.Rows))
	}
	want := map[string]float64{"1": 10, "2": 220, "3": 300}
	for _, row := range z.Rows {
		if v, _ := row[1].AsNumber(); v != want[row[0].String()] {
			t.Errorf("Z(%s) = %v, want %v", row[0], v, want[row[0].String()])
		}
	}
}

func TestPadMergeErrors(t *testing.T) {
	env := Env{
		"X": NewFrame("t", "x"),
		"Y": NewFrame("t", "y"),
	}
	bad := []PadMerge{
		{Out: "Z", X: "X", Y: "Y", Keys: []string{"zz"}, XVal: "x", YVal: "y", Op: "add", OutCol: "v"},
		{Out: "Z", X: "X", Y: "Y", Keys: []string{"t"}, XVal: "zz", YVal: "y", Op: "add", OutCol: "v"},
		{Out: "Z", X: "X", Y: "Y", Keys: []string{"t"}, XVal: "x", YVal: "zz", Op: "add", OutCol: "v"},
		{Out: "Z", X: "X", Y: "Y", Keys: []string{"t"}, XVal: "x", YVal: "y", Op: "nosuch", OutCol: "v"},
		{Out: "Z", X: "NOPE", Y: "Y", Keys: []string{"t"}, XVal: "x", YVal: "y", Op: "add", OutCol: "v"},
	}
	for i, s := range bad {
		if err := runStep(s, env); err == nil {
			t.Errorf("pad case %d: want error", i)
		}
	}
}

func TestFramePadMatchesChase(t *testing.T) {
	m := compile(t, `
cube A(t: year) measure v
cube B(t: year) measure v
S := vsum0(A, B)
D := vsub0(B, A)
`)
	a := yearCube(t, "A", map[int]float64{2000: 1, 2001: 2})
	b := yearCube(t, "B", map[int]float64{2001: 10, 2002: 20})
	data := map[string]*model.Cube{"A": a, "B": b}

	ref, err := chase.New(m).Solve(chase.Instance(data))
	if err != nil {
		t.Fatal(err)
	}
	script, err := Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(script, m, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"S", "D"} {
		if !got[rel].Equal(ref[rel], 1e-9) {
			t.Errorf("%s differs:\n%s", rel, strings.Join(got[rel].Diff(ref[rel], 1e-9, 5), "\n"))
		}
	}
	if got["S"].Len() != 3 {
		t.Errorf("S len = %d", got["S"].Len())
	}
}
