package exl

import (
	"strings"
	"testing"
)

// gdpSource is the paper's running example (Section 2), in our concrete
// syntax with cube declarations for the elementary cubes.
const gdpSource = `
cube PDR(d: day, r: string) measure p
cube RGDPPC(q: quarter, r: string) measure g

PQR    := avg(PDR, group by quarter(d) as q, r)
RGDP   := RGDPPC * PQR
GDP    := sum(RGDP, group by q)
GDPT   := stl_t(GDP)
PCHNG  := (GDPT - shift(GDPT, 1)) * 100 / GDPT
`

func TestParseGDPProgram(t *testing.T) {
	prog, err := Parse(gdpSource)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Decls) != 2 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	if prog.Decls[0].Name != "PDR" || prog.Decls[0].Measure != "p" {
		t.Errorf("decl 0 = %+v", prog.Decls[0])
	}
	if prog.Decls[0].Dims[0].Name != "d" || prog.Decls[0].Dims[0].Type != "day" {
		t.Errorf("decl 0 dims = %+v", prog.Decls[0].Dims)
	}
	if len(prog.Stmts) != 5 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
	wantLhs := []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"}
	for i, s := range prog.Stmts {
		if s.Lhs != wantLhs[i] {
			t.Errorf("stmt %d lhs = %s, want %s", i, s.Lhs, wantLhs[i])
		}
	}
	// Round-trip: the printed program re-parses to the same shape.
	again, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, prog.String())
	}
	if again.String() != prog.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", prog.String(), again.String())
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("A + B * C")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(A + (B * C))" {
		t.Errorf("precedence: %s", e)
	}
	e, err = ParseExpr("(A + B) * C")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "((A + B) * C)" {
		t.Errorf("parens: %s", e)
	}
	e, err = ParseExpr("A - B - C")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "((A - B) - C)" {
		t.Errorf("left assoc: %s", e)
	}
	e, err = ParseExpr("-A * B")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "((-A) * B)" {
		t.Errorf("unary binds tighter: %s", e)
	}
	e, err = ParseExpr("+A")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "A" {
		t.Errorf("unary plus is identity: %s", e)
	}
}

func TestParseCalls(t *testing.T) {
	e, err := ParseExpr("log(2, EL * 3)")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*Call)
	if !ok || c.Name != "log" || len(c.Args) != 2 {
		t.Fatalf("call = %#v", e)
	}
	if c.Args[0].String() != "2" || c.Args[1].String() != "(EL * 3)" {
		t.Errorf("args = %v", c.Args)
	}
	e, err = ParseExpr("shift(GDPT, 1)")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "shift(GDPT, 1)" {
		t.Errorf("shift = %s", e)
	}
	// Empty call.
	e, err = ParseExpr("f()")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.(*Call).Args) != 0 {
		t.Error("empty call")
	}
}

func TestParseGroupBy(t *testing.T) {
	e, err := ParseExpr("avg(PDR, group by quarter(d) as q, r)")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*Call)
	if len(c.Args) != 1 || len(c.GroupBy) != 2 {
		t.Fatalf("call = %s", c)
	}
	if c.GroupBy[0].Alias != "q" {
		t.Errorf("alias = %q", c.GroupBy[0].Alias)
	}
	g0, ok := c.GroupBy[0].Expr.(*Call)
	if !ok || g0.Name != "quarter" {
		t.Errorf("group item 0 = %#v", c.GroupBy[0].Expr)
	}
	if id, ok := c.GroupBy[1].Expr.(*Ident); !ok || id.Name != "r" {
		t.Errorf("group item 1 = %#v", c.GroupBy[1].Expr)
	}
	// Group-by without alias and case-insensitive keywords.
	e, err = ParseExpr("SUM(X, GROUP BY a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.(*Call).GroupBy) != 2 {
		t.Error("uppercase GROUP BY")
	}
}

func TestParseStatementSeparators(t *testing.T) {
	prog, err := Parse("A := B; C := D\nE := F")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"A :=",                       // missing rhs
		"A = B",                      // wrong assignment token
		"A := (B",                    // unclosed paren
		"A := B +",                   // dangling operator
		"cube X",                     // missing dim list
		"cube X(a b)",                // missing colon
		"cube X(a: )",                // missing type name
		"A := f(x, group by g(a,b))", // group fn with two args
		"A := f(x, group by 3)",      // group item must be ident
		"A := f(x, group by a as )",  // missing alias
		":= B",                       // missing lhs
		"A := B) ",                   // trailing garbage becomes bad stmt
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
	if _, err := ParseExpr("A B"); err == nil {
		t.Error("ParseExpr with trailing token must fail")
	}
	if _, err := ParseExpr("@"); err == nil {
		t.Error("ParseExpr lexical error must propagate")
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("A := B\nC :=")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should carry line 2 position: %v", err)
	}
}

func TestParseCubeDeclNoMeasure(t *testing.T) {
	prog, err := Parse("cube X(a: string)")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Decls[0].Measure != "" {
		t.Error("measure should be empty")
	}
}

func TestCubeAsIdentifier(t *testing.T) {
	// "cube" not followed by a declaration shape is a plain identifier.
	prog, err := Parse("cube := A + 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 1 || prog.Stmts[0].Lhs != "cube" {
		t.Errorf("stmts = %+v", prog.Stmts)
	}
}
