package exl

import (
	"fmt"
	"math"
	"sort"

	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// AKind classifies typed expression nodes.
type AKind uint8

// Typed expression node kinds.
const (
	AConst      AKind = iota // numeric constant
	ACube                    // cube literal
	ABinary                  // algebraic operator over two operands (at least one cube)
	AScalarFunc              // scalar function over one cube operand
	AShift                   // time shift
	AAgg                     // aggregation with group-by
	ABlackBox                // whole-series black box
	APadVector               // vectorial operator padding missing tuples with a default
)

// AExpr is a type-checked EXL expression. Every node that yields a cube
// carries the inferred result schema (dimension names, types and order).
type AExpr struct {
	Kind   AKind
	At     Position
	Schema model.Schema // result schema; meaningless for AConst

	Val  float64 // AConst
	Cube string  // ACube: referenced cube name

	Op   string // ABinary: add/sub/mul/div; AScalarFunc: ln, log, …; AAgg: sum, …; ABlackBox: stl_t, …
	X, Y *AExpr // ABinary operands; either side may be AConst, not both
	Arg  *AExpr // operand for AScalarFunc, AShift, AAgg, ABlackBox

	Params   []float64 // folded scalar parameters, in ops-registry order
	GroupBy  []AGroup  // AAgg
	ShiftBy  int64     // AShift
	ShiftDim int       // AShift: index of the shifted dimension in Arg's schema
}

// AGroup is a resolved group-by item.
type AGroup struct {
	DimIndex int    // index of the source dimension in the operand schema
	Func     string // dimension function name, or "" for a plain dimension
	Name     string // result dimension name
	Type     model.DimType
}

// AStmt is a type-checked statement.
type AStmt struct {
	At     Position
	Lhs    string
	Schema model.Schema // schema of the derived cube
	Expr   *AExpr
}

// Analyzed is the result of semantic analysis of a program: the full cube
// catalog (declared elementary + inferred derived), the
// elementary/derived partitioning, and the typed statements in source
// order. Acyclicity holds by construction: a statement may reference only
// elementary cubes and cubes derived by earlier statements.
type Analyzed struct {
	Program    *Program
	Schemas    map[string]model.Schema
	Elementary []string // sorted
	Derived    []string // statement order
	Stmts      []*AStmt
}

// IsElementary reports whether name is an elementary (base) cube.
func (a *Analyzed) IsElementary(name string) bool {
	for _, e := range a.Elementary {
		if e == name {
			return true
		}
	}
	return false
}

// StatementFor returns the typed statement defining the derived cube, or
// nil for elementary/unknown cubes.
func (a *Analyzed) StatementFor(name string) *AStmt {
	for _, s := range a.Stmts {
		if s.Lhs == name {
			return s
		}
	}
	return nil
}

// Analyze type-checks a parsed program. external supplies schemas of
// elementary cubes declared outside the source text (the engine's metadata
// catalog); in-source `cube` declarations are added to it. Every cube
// referenced by an expression must be elementary or derived by an earlier
// statement; each derived cube must be defined exactly once.
func Analyze(prog *Program, external map[string]model.Schema) (*Analyzed, error) {
	a := &Analyzed{Program: prog, Schemas: make(map[string]model.Schema)}
	for name, s := range external {
		s.Name = name
		a.Schemas[name] = s
		a.Elementary = append(a.Elementary, name)
	}
	for _, d := range prog.Decls {
		if _, dup := a.Schemas[d.Name]; dup {
			return nil, errorf(d.Pos, "cube %s declared more than once", d.Name)
		}
		sch, err := declSchema(d)
		if err != nil {
			return nil, err
		}
		a.Schemas[d.Name] = sch
		a.Elementary = append(a.Elementary, d.Name)
	}
	sort.Strings(a.Elementary)

	for _, s := range prog.Stmts {
		if _, dup := a.Schemas[s.Lhs]; dup {
			return nil, errorf(s.Pos, "cube %s must not appear as lhs more than once", s.Lhs)
		}
		ae, err := a.analyzeExpr(s.Rhs)
		if err != nil {
			return nil, err
		}
		if ae.Kind == AConst {
			return nil, errorf(s.Pos, "statement %s defines a constant, not a cube", s.Lhs)
		}
		sch := ae.Schema.Rename(s.Lhs)
		// The derived measure keeps the name of the leftmost operand's
		// measure (the paper's GDP keeps RGDP's g), defaulting to "value".
		if mn := leftmostMeasure(ae, a.Schemas); mn != "" {
			sch.Measure = mn
		}
		a.Schemas[s.Lhs] = sch
		a.Derived = append(a.Derived, s.Lhs)
		a.Stmts = append(a.Stmts, &AStmt{At: s.Pos, Lhs: s.Lhs, Schema: sch, Expr: ae})
	}
	return a, nil
}

// leftmostMeasure returns the measure name of the leftmost cube literal in
// the expression, or "" if there is none.
func leftmostMeasure(e *AExpr, schemas map[string]model.Schema) string {
	switch e.Kind {
	case ACube:
		return schemas[e.Cube].Measure
	case ABinary, APadVector:
		if m := leftmostMeasure(e.X, schemas); m != "" {
			return m
		}
		return leftmostMeasure(e.Y, schemas)
	case AScalarFunc, AShift, AAgg, ABlackBox:
		return leftmostMeasure(e.Arg, schemas)
	default:
		return ""
	}
}

func declSchema(d *CubeDecl) (model.Schema, error) {
	dims := make([]model.Dim, 0, len(d.Dims))
	seen := make(map[string]bool)
	for _, dd := range d.Dims {
		if seen[dd.Name] {
			return model.Schema{}, errorf(dd.Pos, "duplicate dimension %s in cube %s", dd.Name, d.Name)
		}
		seen[dd.Name] = true
		t, err := model.ParseDimType(dd.Type)
		if err != nil {
			return model.Schema{}, errorf(dd.Pos, "dimension %s: %v", dd.Name, err)
		}
		dims = append(dims, model.Dim{Name: dd.Name, Type: t})
	}
	return model.NewSchema(d.Name, dims, d.Measure), nil
}

func (a *Analyzed) analyzeExpr(e Expr) (*AExpr, error) {
	switch e := e.(type) {
	case *NumberLit:
		return &AExpr{Kind: AConst, At: e.At, Val: e.Value}, nil
	case *Ident:
		sch, ok := a.Schemas[e.Name]
		if !ok {
			return nil, errorf(e.At, "unknown cube %s (not elementary, not derived by an earlier statement)", e.Name)
		}
		return &AExpr{Kind: ACube, At: e.At, Cube: e.Name, Schema: sch}, nil
	case *UnaryExpr:
		x, err := a.analyzeExpr(e.X)
		if err != nil {
			return nil, err
		}
		if x.Kind == AConst {
			return &AExpr{Kind: AConst, At: e.At, Val: -x.Val}, nil
		}
		return &AExpr{Kind: AScalarFunc, At: e.At, Op: "neg", Arg: x, Schema: x.Schema}, nil
	case *BinaryExpr:
		return a.analyzeBinary(e)
	case *Call:
		return a.analyzeCall(e)
	default:
		return nil, errorf(e.Pos(), "unsupported expression form %T", e)
	}
}

var binOps = map[string]string{"+": "add", "-": "sub", "*": "mul", "/": "div"}

func (a *Analyzed) analyzeBinary(e *BinaryExpr) (*AExpr, error) {
	x, err := a.analyzeExpr(e.X)
	if err != nil {
		return nil, err
	}
	y, err := a.analyzeExpr(e.Y)
	if err != nil {
		return nil, err
	}
	op := binOps[e.Op]
	if x.Kind == AConst && y.Kind == AConst {
		f, _ := ops.Scalar(op)
		v, err := f(x.Val, y.Val)
		if err != nil {
			return nil, errorf(e.At, "constant expression is undefined: %v", err)
		}
		return &AExpr{Kind: AConst, At: e.At, Val: v}, nil
	}
	if op == "div" && y.Kind == AConst && y.Val == 0 {
		return nil, errorf(e.At, "division by the constant zero is everywhere undefined")
	}
	var sch model.Schema
	switch {
	case x.Kind == AConst:
		sch = y.Schema
	case y.Kind == AConst:
		sch = x.Schema
	default:
		// Vectorial: operands join on dimension names. Equal dimension
		// sets give the paper's basic vectorial operators; when one
		// operand's dimensions are a subset of the other's, the smaller
		// cube broadcasts over the missing dimensions (the paper's
		// "versions that operate on cubes with different dimensions"),
		// which is what ratios-to-totals like ASSETS/SYS need.
		s, err := broadcastSchema(e.At, x.Schema, y.Schema)
		if err != nil {
			return nil, err
		}
		sch = s
	}
	sch = model.NewSchema("", sch.Dims, "")
	return &AExpr{Kind: ABinary, At: e.At, Op: op, X: x, Y: y, Schema: sch}, nil
}

// broadcastSchema checks vectorial compatibility and returns the result
// schema: the operand with the superset of dimensions. Dimension names
// shared by both operands must agree in type.
func broadcastSchema(at Position, x, y model.Schema) (model.Schema, error) {
	contains := func(big, small model.Schema) bool {
		for _, d := range small.Dims {
			j := big.DimIndex(d.Name)
			if j < 0 || !d.Type.Matches(big.Dims[j].Type) {
				return false
			}
		}
		return true
	}
	// Shared names must agree in type regardless of direction, so a pure
	// type conflict reports as such rather than as a shape error.
	for _, d := range x.Dims {
		if j := y.DimIndex(d.Name); j >= 0 && !d.Type.Matches(y.Dims[j].Type) {
			return model.Schema{}, errorf(at, "vectorial operator: dimension %s has type %s vs %s", d.Name, d.Type, y.Dims[j].Type)
		}
	}
	switch {
	case len(x.Dims) >= len(y.Dims) && contains(x, y):
		return x, nil
	case contains(y, x):
		return y, nil
	default:
		return model.Schema{}, errorf(at, "vectorial operator needs operands with the same dimensions (or one a subset of the other): %s vs %s", x, y)
	}
}

func (a *Analyzed) analyzeCall(e *Call) (*AExpr, error) {
	info, ok := ops.Lookup(e.Name)
	if !ok {
		return nil, errorf(e.At, "unknown operator %s", e.Name)
	}
	switch info.Class {
	case ops.ClassScalar:
		return a.analyzeScalarCall(e, info)
	case ops.ClassVector:
		return a.analyzePadVector(e)
	case ops.ClassShift:
		return a.analyzeShift(e)
	case ops.ClassAggregation:
		return a.analyzeAgg(e)
	case ops.ClassBlackBox:
		return a.analyzeBlackBox(e, info)
	case ops.ClassDimension:
		return nil, errorf(e.At, "dimension function %s is only allowed inside group-by lists", e.Name)
	default:
		return nil, errorf(e.At, "operator %s cannot be used here", e.Name)
	}
}

// scalarCubeArg gives, per scalar function, the position of the cube
// operand among the EXL call arguments; remaining arguments are scalar
// parameters. The paper's log takes the base first: log(2, el*3).
func scalarCubeArg(name string, nargs int) int {
	if name == "log" && nargs == 2 {
		return 1
	}
	return 0
}

func (a *Analyzed) analyzeScalarCall(e *Call, info ops.Info) (*AExpr, error) {
	want := 1 + info.Params
	if len(e.Args) != want {
		return nil, errorf(e.At, "%s expects %d argument(s), got %d", e.Name, want, len(e.Args))
	}
	if len(e.GroupBy) > 0 {
		return nil, errorf(e.At, "%s does not take a group-by clause", e.Name)
	}
	cubePos := scalarCubeArg(e.Name, len(e.Args))
	var arg *AExpr
	var params []float64
	allConst := true
	var constArgs []float64
	for i, raw := range e.Args {
		ae, err := a.analyzeExpr(raw)
		if err != nil {
			return nil, err
		}
		if i == cubePos {
			arg = ae
			if ae.Kind == AConst {
				constArgs = append([]float64{ae.Val}, constArgs...)
			} else {
				allConst = false
			}
			continue
		}
		if ae.Kind != AConst {
			return nil, errorf(raw.Pos(), "%s: parameter %d must be a constant", e.Name, i+1)
		}
		params = append(params, ae.Val)
		constArgs = append(constArgs, ae.Val)
	}
	if allConst {
		f, _ := ops.Scalar(e.Name)
		v, err := f(constArgs...)
		if err != nil {
			return nil, errorf(e.At, "constant expression is undefined: %v", err)
		}
		return &AExpr{Kind: AConst, At: e.At, Val: v}, nil
	}
	sch := model.NewSchema("", arg.Schema.Dims, "")
	return &AExpr{Kind: AScalarFunc, At: e.At, Op: e.Name, Arg: arg, Params: params, Schema: sch}, nil
}

// analyzePadVector handles the padded vectorial variants vsum0/vsub0:
// both operands must be cube expressions with identical dimension sets
// (broadcasting would make the padding ambiguous); the result is defined
// on the union of their dimension tuples, missing values defaulting to 0.
func (a *Analyzed) analyzePadVector(e *Call) (*AExpr, error) {
	if len(e.Args) != 2 || len(e.GroupBy) > 0 {
		return nil, errorf(e.At, "%s expects two cube operands", e.Name)
	}
	x, err := a.analyzeExpr(e.Args[0])
	if err != nil {
		return nil, err
	}
	y, err := a.analyzeExpr(e.Args[1])
	if err != nil {
		return nil, err
	}
	if x.Kind == AConst || y.Kind == AConst {
		return nil, errorf(e.At, "%s operands must be cube expressions", e.Name)
	}
	if len(x.Schema.Dims) != len(y.Schema.Dims) {
		return nil, errorf(e.At, "%s needs operands with identical dimensions: %s vs %s", e.Name, x.Schema, y.Schema)
	}
	for _, d := range x.Schema.Dims {
		j := y.Schema.DimIndex(d.Name)
		if j < 0 || !d.Type.Matches(y.Schema.Dims[j].Type) {
			return nil, errorf(e.At, "%s needs operands with identical dimensions: %s vs %s", e.Name, x.Schema, y.Schema)
		}
	}
	sch := model.NewSchema("", x.Schema.Dims, "")
	return &AExpr{Kind: APadVector, At: e.At, Op: e.Name, X: x, Y: y, Schema: sch}, nil
}

func (a *Analyzed) analyzeShift(e *Call) (*AExpr, error) {
	if len(e.Args) != 2 || len(e.GroupBy) > 0 {
		return nil, errorf(e.At, "shift expects (expression, steps)")
	}
	arg, err := a.analyzeExpr(e.Args[0])
	if err != nil {
		return nil, err
	}
	if arg.Kind == AConst {
		return nil, errorf(e.Args[0].Pos(), "shift operand must be a cube expression")
	}
	s, err := a.analyzeExpr(e.Args[1])
	if err != nil {
		return nil, err
	}
	if s.Kind != AConst || s.Val != math.Trunc(s.Val) {
		return nil, errorf(e.Args[1].Pos(), "shift steps must be an integer constant")
	}
	dim, err := shiftDim(arg.Schema)
	if err != nil {
		return nil, errorf(e.At, "%v", err)
	}
	sch := model.NewSchema("", arg.Schema.Dims, "")
	return &AExpr{Kind: AShift, At: e.At, Op: "shift", Arg: arg, ShiftBy: int64(s.Val), ShiftDim: dim, Schema: sch}, nil
}

// shiftDim picks the dimension the shift applies to: the unique time
// dimension, or, failing that, the unique integer dimension (the paper
// allows shifts "on the values of a numeric dimension").
func shiftDim(s model.Schema) (int, error) {
	td := s.TimeDims()
	if len(td) == 1 {
		return td[0], nil
	}
	if len(td) > 1 {
		return 0, fmt.Errorf("shift is ambiguous: operand has %d time dimensions", len(td))
	}
	idx := -1
	for i, d := range s.Dims {
		if d.Type.Kind == model.DimInt {
			if idx >= 0 {
				return 0, fmt.Errorf("shift is ambiguous: operand has several numeric dimensions")
			}
			idx = i
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("shift needs a time or numeric dimension")
	}
	return idx, nil
}

func (a *Analyzed) analyzeAgg(e *Call) (*AExpr, error) {
	if len(e.Args) != 1 {
		return nil, errorf(e.At, "%s expects one cube operand (plus an optional group-by clause)", e.Name)
	}
	arg, err := a.analyzeExpr(e.Args[0])
	if err != nil {
		return nil, err
	}
	if arg.Kind == AConst {
		return nil, errorf(e.Args[0].Pos(), "%s operand must be a cube expression", e.Name)
	}
	groups := make([]AGroup, 0, len(e.GroupBy))
	seen := make(map[string]bool)
	dims := make([]model.Dim, 0, len(e.GroupBy))
	for _, item := range e.GroupBy {
		g, err := resolveGroupItem(item, arg.Schema)
		if err != nil {
			return nil, err
		}
		if seen[g.Name] {
			return nil, errorf(item.At, "duplicate result dimension %s in group-by (use 'as' to rename)", g.Name)
		}
		seen[g.Name] = true
		groups = append(groups, g)
		dims = append(dims, model.Dim{Name: g.Name, Type: g.Type})
	}
	sch := model.NewSchema("", dims, "")
	return &AExpr{Kind: AAgg, At: e.At, Op: e.Name, Arg: arg, GroupBy: groups, Schema: sch}, nil
}

func resolveGroupItem(item GroupItem, operand model.Schema) (AGroup, error) {
	switch ex := item.Expr.(type) {
	case *Ident:
		idx := operand.DimIndex(ex.Name)
		if idx < 0 {
			return AGroup{}, errorf(ex.At, "group-by dimension %s not found in operand %s", ex.Name, operand)
		}
		name := item.Alias
		if name == "" {
			name = ex.Name
		}
		return AGroup{DimIndex: idx, Name: name, Type: operand.Dims[idx].Type}, nil
	case *Call:
		if len(ex.Args) != 1 {
			return AGroup{}, errorf(ex.At, "group-by function %s takes one dimension", ex.Name)
		}
		id, ok := ex.Args[0].(*Ident)
		if !ok {
			return AGroup{}, errorf(ex.At, "group-by function argument must be a dimension name")
		}
		idx := operand.DimIndex(id.Name)
		if idx < 0 {
			return AGroup{}, errorf(id.At, "group-by dimension %s not found in operand %s", id.Name, operand)
		}
		df, err := ops.Dimension(ex.Name)
		if err != nil {
			return AGroup{}, errorf(ex.At, "%v", err)
		}
		rt, err := df.ResultType(operand.Dims[idx].Type)
		if err != nil {
			return AGroup{}, errorf(ex.At, "%s(%s): %v", ex.Name, id.Name, err)
		}
		name := item.Alias
		if name == "" {
			name = id.Name
		}
		return AGroup{DimIndex: idx, Func: ex.Name, Name: name, Type: rt}, nil
	default:
		return AGroup{}, errorf(item.At, "group-by item must be a dimension or a function of one")
	}
}

func (a *Analyzed) analyzeBlackBox(e *Call, info ops.Info) (*AExpr, error) {
	want := 1 + info.Params
	if len(e.Args) != want {
		return nil, errorf(e.At, "%s expects %d argument(s), got %d", e.Name, want, len(e.Args))
	}
	if len(e.GroupBy) > 0 {
		return nil, errorf(e.At, "%s does not take a group-by clause", e.Name)
	}
	arg, err := a.analyzeExpr(e.Args[0])
	if err != nil {
		return nil, err
	}
	if arg.Kind == AConst {
		return nil, errorf(e.Args[0].Pos(), "%s operand must be a cube expression", e.Name)
	}
	if !arg.Schema.IsTimeSeries() {
		return nil, errorf(e.At, "%s operates on time series (one time dimension), operand has dimensions %v", e.Name, arg.Schema.DimNames())
	}
	var params []float64
	for _, raw := range e.Args[1:] {
		ae, err := a.analyzeExpr(raw)
		if err != nil {
			return nil, err
		}
		if ae.Kind != AConst {
			return nil, errorf(raw.Pos(), "%s: parameters must be constants", e.Name)
		}
		params = append(params, ae.Val)
	}
	sch := model.NewSchema("", arg.Schema.Dims, "")
	return &AExpr{Kind: ABlackBox, At: e.At, Op: e.Name, Arg: arg, Params: params, Schema: sch}, nil
}
