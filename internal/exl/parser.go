package exl

// Parser is a recursive-descent parser for EXL programs.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete EXL source text.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

// ParseExpr parses a single EXL expression (used by tests and tools).
func ParseExpr(src string) (Expr, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, errorf(p.cur().Pos, "unexpected %s after expression", p.cur().Kind)
	}
	return e, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(k TokenKind) bool { return p.cur().Kind == k }

func (p *Parser) expect(k TokenKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errorf(p.cur().Pos, "expected %s, found %s %q", k, p.cur().Kind, p.cur().Lexeme)
	}
	return p.next(), nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.peekKind(TokEOF) {
		if p.peekKind(TokSemi) {
			p.next()
			continue
		}
		if isKeyword(p.cur(), "cube") && p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokIdent {
			d, err := p.parseCubeDecl()
			if err != nil {
				return nil, err
			}
			prog.Decls = append(prog.Decls, d)
			continue
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		prog.Stmts = append(prog.Stmts, s)
	}
	return prog, nil
}

func (p *Parser) parseCubeDecl() (*CubeDecl, error) {
	kw := p.next() // "cube"
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	d := &CubeDecl{Pos: kw.Pos, Name: name.Lexeme}
	for {
		dn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		dt, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, DimDecl{Pos: dn.Pos, Name: dn.Lexeme, Type: dt.Lexeme})
		if p.peekKind(TokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if isKeyword(p.cur(), "measure") {
		p.next()
		m, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d.Measure = m.Lexeme
	}
	return d, nil
}

func (p *Parser) parseStatement() (*Statement, error) {
	lhs, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peekKind(TokSemi) {
		p.next()
	}
	return &Statement{Pos: lhs.Pos, Lhs: lhs.Lexeme, Rhs: rhs}, nil
}

// parseExpr parses addition-level expressions.
func (p *Parser) parseExpr() (Expr, error) {
	x, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.peekKind(TokPlus) || p.peekKind(TokMinus) {
		op := p.next()
		y, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{At: op.Pos, Op: op.Lexeme, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseTerm() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekKind(TokStar) || p.peekKind(TokSlash) {
		op := p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{At: op.Pos, Op: op.Lexeme, X: x, Y: y}
	}
	return x, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		t := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{At: t.Pos, X: x}, nil
	case TokPlus:
		p.next()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case TokNumber:
		t := p.next()
		return &NumberLit{At: t.Pos, Value: t.Num}, nil
	case TokIdent:
		t := p.next()
		if p.peekKind(TokLParen) {
			return p.parseCallArgs(t)
		}
		return &Ident{At: t.Pos, Name: t.Lexeme}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, errorf(p.cur().Pos, "expected expression, found %s %q", p.cur().Kind, p.cur().Lexeme)
	}
}

func (p *Parser) parseCallArgs(name Token) (Expr, error) {
	p.next() // '('
	call := &Call{At: name.Pos, Name: name.Lexeme}
	if p.peekKind(TokRParen) {
		p.next()
		return call, nil
	}
	for {
		if isKeyword(p.cur(), "group") && p.pos+1 < len(p.toks) && isKeyword(p.toks[p.pos+1], "by") {
			p.next() // group
			p.next() // by
			items, err := p.parseGroupList()
			if err != nil {
				return nil, err
			}
			call.GroupBy = items
			break
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.peekKind(TokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return call, nil
}

func (p *Parser) parseGroupList() ([]GroupItem, error) {
	var items []GroupItem
	for {
		e, err := p.parseGroupItemExpr()
		if err != nil {
			return nil, err
		}
		item := GroupItem{At: e.Pos(), Expr: e}
		if isKeyword(p.cur(), "as") {
			p.next()
			alias, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			item.Alias = alias.Lexeme
		}
		items = append(items, item)
		if p.peekKind(TokComma) {
			p.next()
			continue
		}
		return items, nil
	}
}

// parseGroupItemExpr parses a group-by item: a dimension identifier or a
// one-argument dimension function applied to an identifier.
func (p *Parser) parseGroupItemExpr() (Expr, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if !p.peekKind(TokLParen) {
		return &Ident{At: t.Pos, Name: t.Lexeme}, nil
	}
	p.next() // '('
	arg, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return &Call{At: t.Pos, Name: t.Lexeme, Args: []Expr{&Ident{At: arg.Pos, Name: arg.Lexeme}}}, nil
}
