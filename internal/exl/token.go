// Package exl implements the EXL (EXpression Language) front end: lexer,
// parser, abstract syntax tree and semantic analysis.
//
// EXL, defined by the Bank of Italy, specifies statistical programs over
// cubes: a program is a sequence of assignment statements whose right-hand
// sides are expressions over cube identifiers, built from algebraic
// operators, scalar functions, aggregations with group-by lists, and
// multi-tuple black-box operators such as seasonal decomposition.
//
// The paper shows programs but no declaration grammar; this implementation
// adds `cube NAME(dim: type, …) [measure NAME]` declarations as the
// concrete syntax for the Matrix metadata of elementary cubes, plus
// optional `as` aliases in group-by lists.
package exl

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokAssign // :=
	TokColon
	TokComma
	TokSemi
	TokLParen
	TokRParen
	TokPlus
	TokMinus
	TokStar
	TokSlash
)

// String returns a display name for the token kind.
func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokAssign:
		return "':='"
	case TokColon:
		return "':'"
	case TokComma:
		return "','"
	case TokSemi:
		return "';'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokStar:
		return "'*'"
	case TokSlash:
		return "'/'"
	default:
		return "unknown token"
	}
}

// Position is a line/column location in an EXL source text (1-based).
type Position struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token with its source position.
type Token struct {
	Kind   TokenKind
	Lexeme string
	Num    float64 // valid when Kind == TokNumber
	Pos    Position
}

// Error is a syntax or semantic error with a source position.
type Error struct {
	Pos Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("exl: %s: %s", e.Pos, e.Msg) }

func errorf(pos Position, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
