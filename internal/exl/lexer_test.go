package exl

import "testing"

func kinds(ts []Token) []TokenKind {
	out := make([]TokenKind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	ts, err := Tokenize("PQR := avg(PDR, group by quarter(d) as q, r)")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{
		TokIdent, TokAssign, TokIdent, TokLParen, TokIdent, TokComma,
		TokIdent, TokIdent, TokIdent, TokLParen, TokIdent, TokRParen,
		TokIdent, TokIdent, TokComma, TokIdent, TokRParen, TokEOF,
	}
	got := kinds(ts)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), ts)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeNumbers(t *testing.T) {
	tests := map[string]float64{
		"0":      0,
		"42":     42,
		"3.5":    3.5,
		".5":     0.5,
		"1e3":    1000,
		"2.5e-1": 0.25,
		"1E+2":   100,
	}
	for src, want := range tests {
		ts, err := Tokenize(src)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", src, err)
			continue
		}
		if ts[0].Kind != TokNumber || ts[0].Num != want {
			t.Errorf("Tokenize(%q) = %+v, want %v", src, ts[0], want)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := "A := B // trailing comment\n# full line\nC := D"
	ts, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 7 { // A := B C := D EOF
		t.Fatalf("got %d tokens: %v", len(ts), ts)
	}
}

func TestTokenizePositions(t *testing.T) {
	ts, err := Tokenize("A :=\n  B")
	if err != nil {
		t.Fatal(err)
	}
	if ts[0].Pos != (Position{Line: 1, Col: 1}) {
		t.Errorf("A at %v", ts[0].Pos)
	}
	if ts[2].Pos != (Position{Line: 2, Col: 3}) {
		t.Errorf("B at %v", ts[2].Pos)
	}
	if ts[2].Pos.String() != "2:3" {
		t.Errorf("Position.String = %q", ts[2].Pos.String())
	}
}

func TestTokenizeOperators(t *testing.T) {
	ts, err := Tokenize("a + b - c * d / e ; f : g")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokIdent, TokPlus, TokIdent, TokMinus, TokIdent, TokStar,
		TokIdent, TokSlash, TokIdent, TokSemi, TokIdent, TokColon, TokIdent, TokEOF}
	for i, k := range want {
		if ts[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, ts[i].Kind, k)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, src := range []string{"a @ b", "x & y", "?"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q): want error", src)
		}
	}
}

func TestTokenKindString(t *testing.T) {
	for k := TokEOF; k <= TokSlash; k++ {
		if k.String() == "unknown token" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	tok := Token{Kind: TokIdent, Lexeme: "GROUP"}
	if !isKeyword(tok, "group") {
		t.Error("keyword match must be case-insensitive")
	}
	if isKeyword(Token{Kind: TokNumber, Lexeme: "group"}, "group") {
		t.Error("non-ident cannot be a keyword")
	}
}
