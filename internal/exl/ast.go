package exl

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is a parsed EXL source file: elementary cube declarations plus
// assignment statements, in source order.
type Program struct {
	Decls []*CubeDecl
	Stmts []*Statement
}

// CubeDecl declares an elementary cube: `cube PDR(d: day, r: string)
// measure p`.
type CubeDecl struct {
	Pos     Position
	Name    string
	Dims    []DimDecl
	Measure string // optional; empty means "value"
}

// DimDecl is one `name: type` dimension declaration.
type DimDecl struct {
	Pos  Position
	Name string
	Type string
}

// Statement is one assignment `LHS := expr`.
type Statement struct {
	Pos Position
	Lhs string
	Rhs Expr
}

// Expr is an EXL expression node.
type Expr interface {
	// Pos returns the source position of the expression.
	Pos() Position
	// String renders the expression in EXL concrete syntax.
	String() string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	At    Position
	Value float64
}

// Ident is an identifier in expression position: a cube literal, or inside
// a group-by list, a dimension reference.
type Ident struct {
	At   Position
	Name string
}

// BinaryExpr is an application of the algebraic operators + - * /.
type BinaryExpr struct {
	At   Position
	Op   string // "+", "-", "*", "/"
	X, Y Expr
}

// UnaryExpr is unary minus.
type UnaryExpr struct {
	At Position
	X  Expr
}

// Call is function-notation operator application, possibly with a group-by
// clause: `avg(PDR, group by quarter(d) as q, r)`.
type Call struct {
	At      Position
	Name    string
	Args    []Expr
	GroupBy []GroupItem
}

// GroupItem is one entry of a group-by list: a dimension or a scalar
// function of a dimension, with an optional alias.
type GroupItem struct {
	At    Position
	Expr  Expr   // Ident or Call of a dimension function
	Alias string // optional result dimension name
}

// Pos implements Expr.
func (e *NumberLit) Pos() Position { return e.At }

// Pos implements Expr.
func (e *Ident) Pos() Position { return e.At }

// Pos implements Expr.
func (e *BinaryExpr) Pos() Position { return e.At }

// Pos implements Expr.
func (e *UnaryExpr) Pos() Position { return e.At }

// Pos implements Expr.
func (e *Call) Pos() Position { return e.At }

// String implements Expr.
func (e *NumberLit) String() string { return strconv.FormatFloat(e.Value, 'g', -1, 64) }

// String implements Expr.
func (e *Ident) String() string { return e.Name }

// String implements Expr.
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.X, e.Op, e.Y)
}

// String implements Expr.
func (e *UnaryExpr) String() string { return fmt.Sprintf("(-%s)", e.X) }

// String implements Expr.
func (e *Call) String() string {
	var b strings.Builder
	b.WriteString(e.Name)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	if len(e.GroupBy) > 0 {
		b.WriteString(", group by ")
		for i, g := range e.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.Expr.String())
			if g.Alias != "" {
				b.WriteString(" as ")
				b.WriteString(g.Alias)
			}
		}
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the whole program in EXL concrete syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Decls {
		b.WriteString("cube ")
		b.WriteString(d.Name)
		b.WriteByte('(')
		for i, dim := range d.Dims {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", dim.Name, dim.Type)
		}
		b.WriteByte(')')
		if d.Measure != "" {
			b.WriteString(" measure ")
			b.WriteString(d.Measure)
		}
		b.WriteByte('\n')
	}
	for _, s := range p.Stmts {
		fmt.Fprintf(&b, "%s := %s\n", s.Lhs, s.Rhs)
	}
	return b.String()
}
