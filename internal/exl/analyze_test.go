package exl

import (
	"strings"
	"testing"

	"exlengine/internal/model"
)

func analyzeSrc(t *testing.T, src string) *Analyzed {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse of %q failed before analysis: %v", src, err)
	}
	_, err = Analyze(prog, nil)
	if err == nil {
		t.Fatalf("Analyze(%q): want error", src)
	}
	return err
}

func TestAnalyzeGDP(t *testing.T) {
	a := analyzeSrc(t, gdpSource)

	if len(a.Elementary) != 2 || a.Elementary[0] != "PDR" || a.Elementary[1] != "RGDPPC" {
		t.Errorf("elementary = %v", a.Elementary)
	}
	wantDerived := []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"}
	if len(a.Derived) != len(wantDerived) {
		t.Fatalf("derived = %v", a.Derived)
	}
	for i, d := range wantDerived {
		if a.Derived[i] != d {
			t.Errorf("derived[%d] = %s, want %s", i, a.Derived[i], d)
		}
	}

	// Schema inference.
	cases := map[string]string{
		"PQR":   "PQR(q: quarter, r: string)",
		"RGDP":  "RGDP(q: quarter, r: string)",
		"GDP":   "GDP(q: quarter)",
		"GDPT":  "GDPT(q: quarter)",
		"PCHNG": "PCHNG(q: quarter)",
	}
	for name, want := range cases {
		if got := a.Schemas[name].String(); got != want {
			t.Errorf("schema %s = %s, want %s", name, got, want)
		}
	}

	if !a.IsElementary("PDR") || a.IsElementary("GDP") || a.IsElementary("NOPE") {
		t.Error("IsElementary misbehaves")
	}
	if a.StatementFor("GDP") == nil || a.StatementFor("PDR") != nil {
		t.Error("StatementFor misbehaves")
	}

	// Typed tree shape for PQR: aggregation over PDR with quarter(d)->q, r.
	pqr := a.Stmts[0].Expr
	if pqr.Kind != AAgg || pqr.Op != "avg" || pqr.Arg.Kind != ACube || pqr.Arg.Cube != "PDR" {
		t.Fatalf("PQR tree = %+v", pqr)
	}
	if pqr.GroupBy[0].Func != "quarter" || pqr.GroupBy[0].Name != "q" || pqr.GroupBy[0].DimIndex != 0 {
		t.Errorf("group item 0 = %+v", pqr.GroupBy[0])
	}
	if pqr.GroupBy[1].Func != "" || pqr.GroupBy[1].Name != "r" || pqr.GroupBy[1].DimIndex != 1 {
		t.Errorf("group item 1 = %+v", pqr.GroupBy[1])
	}

	// RGDP: vectorial product of two cubes.
	rgdp := a.Stmts[1].Expr
	if rgdp.Kind != ABinary || rgdp.Op != "mul" || rgdp.X.Cube != "RGDPPC" || rgdp.Y.Cube != "PQR" {
		t.Fatalf("RGDP tree = %+v", rgdp)
	}

	// GDPT: black box over a time series.
	gdpt := a.Stmts[3].Expr
	if gdpt.Kind != ABlackBox || gdpt.Op != "stl_t" {
		t.Fatalf("GDPT tree = %+v", gdpt)
	}

	// PCHNG: ((GDPT - shift(GDPT,1)) * 100) / GDPT.
	pchng := a.Stmts[4].Expr
	if pchng.Kind != ABinary || pchng.Op != "div" {
		t.Fatalf("PCHNG tree = %+v", pchng)
	}
	mul := pchng.X
	if mul.Kind != ABinary || mul.Op != "mul" || mul.Y.Kind != AConst || mul.Y.Val != 100 {
		t.Fatalf("PCHNG mul = %+v", mul)
	}
	sub := mul.X
	if sub.Kind != ABinary || sub.Op != "sub" {
		t.Fatalf("PCHNG sub = %+v", sub)
	}
	sh := sub.Y
	if sh.Kind != AShift || sh.ShiftBy != 1 || sh.ShiftDim != 0 {
		t.Fatalf("shift = %+v", sh)
	}
}

func TestAnalyzeExternalSchemas(t *testing.T) {
	prog, err := Parse("B := A * 2")
	if err != nil {
		t.Fatal(err)
	}
	ext := map[string]model.Schema{
		"A": model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TMonth}}, "v"),
	}
	a, err := Analyze(prog, ext)
	if err != nil {
		t.Fatal(err)
	}
	if a.Schemas["B"].String() != "B(t: month)" {
		t.Errorf("B schema = %s", a.Schemas["B"])
	}
	if !a.IsElementary("A") {
		t.Error("external cube must be elementary")
	}
}

func TestAnalyzeConstantFolding(t *testing.T) {
	a := analyzeSrc(t, `
cube A(t: year)
B := A * (2 + 3 * 4)
C := A + log(2, 8)
D := -A
`)
	b := a.Stmts[0].Expr
	if b.Y.Kind != AConst || b.Y.Val != 14 {
		t.Errorf("folded const = %+v", b.Y)
	}
	c := a.Stmts[1].Expr
	if c.Y.Kind != AConst || c.Y.Val != 3 {
		t.Errorf("log(2,8) should fold to 3: %+v", c.Y)
	}
	d := a.Stmts[2].Expr
	if d.Kind != AScalarFunc || d.Op != "neg" {
		t.Errorf("unary minus = %+v", d)
	}
}

func TestAnalyzeScalarParams(t *testing.T) {
	a := analyzeSrc(t, `
cube EL(t: year)
X := log(2, EL * 3)
Y := pow(EL, 2)
`)
	x := a.Stmts[0].Expr
	if x.Kind != AScalarFunc || x.Op != "log" || len(x.Params) != 1 || x.Params[0] != 2 {
		t.Fatalf("log tree = %+v", x)
	}
	if x.Arg.Kind != ABinary {
		t.Errorf("log operand = %+v", x.Arg)
	}
	y := a.Stmts[1].Expr
	if y.Op != "pow" || y.Params[0] != 2 {
		t.Errorf("pow tree = %+v", y)
	}
}

func TestAnalyzeVectorDimMatching(t *testing.T) {
	// Same dimensions in different order are fine (joined by name).
	a := analyzeSrc(t, `
cube A(x: string, y: int)
cube B(y: int, x: string)
C := A + B
`)
	if got := a.Schemas["C"].String(); got != "C(x: string, y: int)" {
		t.Errorf("C schema = %s", got)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"A := B", "unknown cube B"},
		{"cube A(t: year)\nA := A + 1", "more than once"},
		{"cube A(t: year)\nB := A\nB := A", "more than once"},
		{"B := 3 + 4", "defines a constant"},
		{"cube A(t: year)\nB := A / 0", "undefined"},
		{"cube A(t: nonsense)\nB := A", "unknown dimension type"},
		{"cube A(t: year, t: year)\nB := A", "duplicate dimension"},
		{"cube A(t: year)\ncube B(s: year)\nC := A + B", "same dimensions"},
		{"cube A(t: year)\ncube B(t: month)\nC := A + B", "has type"},
		{"cube A(t: year, r: string)\ncube B(t: year, s: string)\nC := A + B", "same dimensions"},
		{"cube A(t: year)\nB := ln(A, 3)", "expects 1 argument"},
		{"cube A(t: year)\nB := log(A, A)", "must be a constant"},
		{"cube A(t: year)\nB := shift(A, 1.5)", "integer constant"},
		{"cube A(t: year)\nB := shift(A)", "expects (expression, steps)"},
		{"cube A(t: year)\nB := shift(3, 1)", "must be a cube"},
		{"cube A(r: string)\nB := shift(A, 1)", "time or numeric dimension"},
		{"cube A(t: year, s: year)\nB := shift(A, 1)", "ambiguous"},
		{"cube A(x: int, y: int)\nB := shift(A, 1)", "ambiguous"},
		{"cube A(t: year)\nB := sum(A, A)", "expects one cube operand"},
		{"cube A(t: year)\nB := sum(3, group by t)", "must be a cube"},
		{"cube A(t: year)\nB := sum(A, group by z)", "not found"},
		{"cube A(t: year)\nB := sum(A, group by quarter(t))", "finer frequency"},
		{"cube A(r: string)\nB := sum(A, group by year(r))", "needs a time dimension"},
		{"cube A(t: year)\nB := sum(A, group by t, t)", "duplicate result dimension"},
		{"cube A(t: year)\nB := sum(A, group by nosuch(t))", "unknown dimension operator"},
		{"cube A(t: year, r: string)\nB := stl_t(A)", "operates on time series"},
		{"cube A(t: year)\nB := stl_t(3)", "must be a cube"},
		{"cube A(t: year)\nB := stl_t(A, 1)", "expects 1 argument"},
		{"cube A(t: year)\nB := movavg(A, A)", "must be constants"},
		{"cube A(t: year)\nB := frobnicate(A)", "unknown operator"},
		{"cube A(t: year)\nB := quarter(A)", "only allowed inside group-by"},
		{"cube A(t: year)\nB := vsum0(A)", "expects two cube operands"},
		{"cube A(t: year)\nB := vsum0(A, 3)", "must be cube expressions"},
		{"cube A(t: year)\ncube C(t: year, r: string)\nB := vsum0(A, C)", "identical dimensions"},
		{"cube A(t: year)\ncube C(s: year)\nB := vsub0(A, C)", "identical dimensions"},
		{"cube A(t: year)\nB := ln(-A * 0 - 1) * A", ""},
	}
	for _, c := range cases {
		if c.wantSub == "" {
			// Marked cases must analyze fine (regression guards).
			analyzeSrc(t, c.src)
			continue
		}
		err := analyzeErr(t, c.src)
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Analyze(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestAnalyzeBroadcast(t *testing.T) {
	// A smaller cube broadcasts over the missing dimensions; the result
	// has the superset schema, whichever side it is on.
	a := analyzeSrc(t, `
cube ASSETS(q: quarter, b: string)
SYS   := sum(ASSETS, group by q)
SHARE := ASSETS / SYS * 100
INV   := SYS / ASSETS
`)
	if got := a.Schemas["SHARE"].String(); got != "SHARE(q: quarter, b: string)" {
		t.Errorf("SHARE schema = %s", got)
	}
	if got := a.Schemas["INV"].String(); got != "INV(q: quarter, b: string)" {
		t.Errorf("INV schema = %s", got)
	}
}

func TestAnalyzeAggWithoutGroupBy(t *testing.T) {
	a := analyzeSrc(t, "cube A(t: year, r: string)\nTOT := sum(A)")
	if got := len(a.Schemas["TOT"].Dims); got != 0 {
		t.Errorf("TOT should be 0-dimensional, has %d dims", got)
	}
}

func TestAnalyzeShiftOnIntDimension(t *testing.T) {
	a := analyzeSrc(t, "cube A(i: int)\nB := shift(A, 2)")
	e := a.Stmts[0].Expr
	if e.Kind != AShift || e.ShiftDim != 0 || e.ShiftBy != 2 {
		t.Errorf("int shift = %+v", e)
	}
}

func TestAnalyzeNestedAggregationOperand(t *testing.T) {
	// Aggregating a compound expression (not just a cube literal).
	a := analyzeSrc(t, `
cube A(t: year, r: string)
B := sum(A * 2, group by t)
`)
	e := a.Stmts[0].Expr
	if e.Kind != AAgg || e.Arg.Kind != ABinary {
		t.Fatalf("tree = %+v", e)
	}
	if a.Schemas["B"].String() != "B(t: year)" {
		t.Errorf("B schema = %s", a.Schemas["B"])
	}
}

func TestAnalyzeGroupByDefaultName(t *testing.T) {
	a := analyzeSrc(t, "cube A(d: day, r: string)\nB := avg(A, group by quarter(d), r)")
	sch := a.Schemas["B"]
	if sch.String() != "B(d: quarter, r: string)" {
		t.Errorf("default group name: %s", sch)
	}
}
