package exl

import (
	"strconv"
	"strings"
	"unicode"
)

// Lexer turns EXL source text into tokens. Line comments start with "//"
// or "#" and run to end of line; whitespace (including newlines) only
// separates tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over the source text.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokenize scans the whole input, returning the token stream terminated by
// a TokEOF token, or the first lexical error.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#' || (c == '/' && l.peek2() == '/'):
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := Position{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokIdent, Lexeme: l.src[start:l.pos], Pos: pos}, nil
	case unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(l.peek2()))):
		start := l.pos
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			c := l.peek()
			switch {
			case unicode.IsDigit(rune(c)):
				l.advance()
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				l.advance()
			case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
				seenExp = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
			default:
				goto done
			}
		}
	done:
		lit := l.src[start:l.pos]
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return Token{}, errorf(pos, "invalid number literal %q", lit)
		}
		return Token{Kind: TokNumber, Lexeme: lit, Num: f, Pos: pos}, nil
	}
	l.advance()
	switch c {
	case ':':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokAssign, Lexeme: ":=", Pos: pos}, nil
		}
		return Token{Kind: TokColon, Lexeme: ":", Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Lexeme: ",", Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Lexeme: ";", Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Lexeme: "(", Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Lexeme: ")", Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Lexeme: "+", Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Lexeme: "-", Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Lexeme: "*", Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Lexeme: "/", Pos: pos}, nil
	}
	return Token{}, errorf(pos, "unexpected character %q", string(c))
}

// isKeyword reports whether the identifier token matches the contextual
// keyword kw (case-insensitive). EXL keywords are contextual: "cube",
// "measure", "group", "by", "as" are only special where the grammar expects
// them.
func isKeyword(t Token, kw string) bool {
	return t.Kind == TokIdent && strings.EqualFold(t.Lexeme, kw)
}
