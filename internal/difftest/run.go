package difftest

import (
	"fmt"
	"math"
	"strings"

	"exlengine/internal/chase"
	"exlengine/internal/etl"
	"exlengine/internal/exl"
	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/sqlengine"
	"exlengine/internal/sqlgen"
)

// DefaultTol is the relative comparison tolerance: engines evaluate the
// same real-valued expressions in different association orders (SQL
// aggregates stream, frame vectorizes), so bit-exact equality is not the
// contract — agreement within floating-point noise is.
const DefaultTol = 1e-6

// Divergence is one engine disagreeing with the chase reference on one
// derived cube (or failing outright where the chase succeeded).
type Divergence struct {
	Engine string   // "sql", "frame" or "etl"
	Rel    string   // derived cube, or "" for whole-engine failures
	Lines  []string // human-readable tuple diffs or the error message
}

func (d Divergence) String() string {
	rel := d.Rel
	if rel == "" {
		rel = "<execution>"
	}
	return fmt.Sprintf("%s/%s:\n  %s", d.Engine, rel, strings.Join(d.Lines, "\n  "))
}

// Result is the outcome of one differential run.
type Result struct {
	Mapping     *mapping.Mapping
	SQLSkipped  bool // program uses padded operators the SQL dialect cannot express
	Divergences []Divergence
}

// Run compiles the case once (parse → analyze → mapping generation),
// executes the chase as the reference, then every target engine, and
// diffs each derived cube tuple by tuple. A non-nil error means the case
// itself is broken (it does not compile, or the reference fails) —
// engine disagreements are reported as Divergences, not errors.
func Run(c *Case, tol float64) (*Result, error) {
	if tol <= 0 {
		tol = DefaultTol
	}
	src := c.Source()
	prog, err := exl.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("difftest: parse: %w", err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		return nil, fmt.Errorf("difftest: analyze: %w", err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		return nil, fmt.Errorf("difftest: mapping: %w", err)
	}

	ref, err := chase.New(m).Solve(chase.Instance(c.Data))
	if err != nil {
		return nil, fmt.Errorf("difftest: chase reference: %w", err)
	}

	res := &Result{Mapping: m}
	record := func(engine string, got map[string]*model.Cube, execErr error) {
		if execErr != nil {
			res.Divergences = append(res.Divergences, Divergence{
				Engine: engine, Lines: []string{"engine failed where chase succeeded: " + execErr.Error()},
			})
			return
		}
		for _, rel := range m.Derived {
			if got[rel] == nil {
				res.Divergences = append(res.Divergences, Divergence{
					Engine: engine, Rel: rel, Lines: []string{"derived cube missing from engine output"},
				})
				continue
			}
			if lines := DiffCubes(ref[rel], got[rel], tol, 8); len(lines) > 0 {
				res.Divergences = append(res.Divergences, Divergence{Engine: engine, Rel: rel, Lines: lines})
			}
		}
	}

	// Frame engine.
	fres, err := func() (map[string]*model.Cube, error) {
		fs, err := frame.Translate(m)
		if err != nil {
			return nil, err
		}
		return frame.Execute(fs, m, c.Data)
	}()
	record("frame", fres, err)

	// ETL engine.
	eres, err := func() (map[string]*model.Cube, error) {
		job, err := etl.Translate(m, "difftest")
		if err != nil {
			return nil, err
		}
		return etl.Run(job, m, c.Data)
	}()
	record("etl", eres, err)

	// SQL engine — unless the program uses padded vectorial operators,
	// which the emitted dialect cannot express (no outer joins).
	if hasPadVector(m) {
		res.SQLSkipped = true
		return res, nil
	}
	sres, err := func() (map[string]*model.Cube, error) {
		db := sqlengine.NewDB()
		for _, name := range m.Elementary {
			if err := db.LoadCube(c.Data[name]); err != nil {
				return nil, err
			}
		}
		script, err := sqlgen.Translate(m)
		if err != nil {
			return nil, err
		}
		if err := sqlgen.Execute(script, db); err != nil {
			return nil, err
		}
		out := make(map[string]*model.Cube)
		for _, rel := range m.Derived {
			cube, err := db.ExtractCube(m.Schemas[rel])
			if err != nil {
				return nil, fmt.Errorf("extract %s: %w", rel, err)
			}
			out[rel] = cube
		}
		return out, nil
	}()
	record("sql", sres, err)
	return res, nil
}

func hasPadVector(m *mapping.Mapping) bool {
	for _, t := range m.Tgds {
		if t.Kind == mapping.PadVector {
			return true
		}
	}
	return false
}

// MeasuresAgree compares two measures with a relative tolerance and
// NaN/Inf awareness: NaN agrees only with NaN and an infinity only with
// the same infinity, so non-finite values can never silently pass as
// "close enough" — and never falsely diverge when both engines produce
// the same one.
func MeasuresAgree(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// DiffCubes diffs an engine result against the reference tuple by tuple
// and returns human-readable mismatch lines (nil when the cubes agree).
// At most max lines are returned, with a trailer counting the rest.
func DiffCubes(ref, got *model.Cube, tol float64, max int) []string {
	var lines []string
	extra := 0
	add := func(format string, args ...any) {
		if len(lines) >= max {
			extra++
			return
		}
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for _, tu := range ref.Tuples() {
		gm, ok := got.Get(tu.Dims)
		if !ok {
			add("missing tuple %v (chase has measure %g)", tu.Dims, tu.Measure)
			continue
		}
		if !MeasuresAgree(tu.Measure, gm, tol) {
			add("tuple %v: measure %g, chase has %g", tu.Dims, gm, tu.Measure)
		}
	}
	for _, tu := range got.Tuples() {
		if _, ok := ref.Get(tu.Dims); !ok {
			add("extra tuple %v (measure %g) not produced by the chase", tu.Dims, tu.Measure)
		}
	}
	if extra > 0 {
		lines = append(lines, fmt.Sprintf("… and %d more mismatches", extra))
	}
	return lines
}
