package difftest

import (
	"math"
	"testing"
)

// TestFuzzProgramsAgree is the in-tree smoke slice of the fuzzer: every
// engine must agree with the chase on a batch of random programs. The
// exlfuzz CLI runs bigger sweeps; this keeps `go test ./...` honest.
func TestFuzzProgramsAgree(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		c := GenerateCase(seed, 6)
		res, err := Run(c, DefaultTol)
		if err != nil {
			t.Fatalf("seed %d: case does not run: %v\nprogram:\n%s", seed, err, c.Source())
		}
		if len(res.Divergences) == 0 {
			continue
		}
		min := Shrink(c, Diverges(DefaultTol))
		t.Errorf("seed %d: %d divergence(s); first: %s\nminimized:\n%s",
			seed, len(res.Divergences), res.Divergences[0], FormatKnownCase("from TestFuzzProgramsAgree", min))
	}
}

// TestExprFuzzNullSemantics checks the SQL dialect's three-valued logic
// against the independent reference evaluator.
func TestExprFuzzNullSemantics(t *testing.T) {
	divs, err := FuzzNullExprs(1, 400)
	if err != nil {
		t.Fatalf("expression fuzz aborted: %v", err)
	}
	for _, d := range divs {
		t.Errorf("NULL-semantics divergence: %s", d)
	}
}

// TestGeneratorDeterministic: a seed is a full reproduction recipe, so
// the same seed must yield the identical program and data.
func TestGeneratorDeterministic(t *testing.T) {
	a := GenerateCase(42, 8)
	b := GenerateCase(42, 8)
	if a.Source() != b.Source() {
		t.Fatalf("same seed produced different programs:\n%s\nvs\n%s", a.Source(), b.Source())
	}
	if a.DataCSV() != b.DataCSV() {
		t.Fatalf("same seed produced different data:\n%s\nvs\n%s", a.DataCSV(), b.DataCSV())
	}
	c := GenerateCase(43, 8)
	if a.Source() == c.Source() && a.DataCSV() == c.DataCSV() {
		t.Fatal("different seeds produced identical cases")
	}
}

// TestMeasuresAgree pins the NaN/Inf-aware comparator: non-finite values
// agree only with themselves, finite values within relative tolerance.
func TestMeasuresAgree(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		a, b  float64
		agree bool
	}{
		{1, 1 + 1e-9, true},
		{1, 1.1, false},
		{1e12, 1e12 * (1 + 1e-8), true},
		{nan, nan, true},
		{nan, 1, false},
		{1, nan, false},
		{inf, inf, true},
		{inf, -inf, false},
		{inf, 1, false},
		{0, 0, true},
	}
	for _, c := range cases {
		if got := MeasuresAgree(c.a, c.b, 1e-6); got != c.agree {
			t.Errorf("MeasuresAgree(%v, %v) = %v, want %v", c.a, c.b, got, c.agree)
		}
	}
}

// TestKnownDivergences re-runs every checked-in divergence: each must
// still reproduce (otherwise it has been fixed and the file must be
// deleted), and then the test skips with the tracking note — a skipped
// regression, visible in -v output, that can never silently rot.
func TestKnownDivergences(t *testing.T) {
	known, err := LoadKnownCases("testdata/known")
	if err != nil {
		t.Fatalf("loading known cases: %v", err)
	}
	for _, kc := range known {
		kc := kc
		t.Run(kc.Name, func(t *testing.T) {
			res, err := Run(kc.Case, DefaultTol)
			if err != nil {
				t.Fatalf("known case no longer runs: %v", err)
			}
			if len(res.Divergences) == 0 {
				t.Fatalf("known divergence no longer reproduces — it has been fixed; delete testdata/known/%s.case and add a regular regression test", kc.Name)
			}
			t.Skipf("known divergence (tracked, not yet fixed): %s — %s", kc.Note, res.Divergences[0])
		})
	}
}
