package difftest

import (
	"fmt"
	"math"
	"math/rand"

	"exlengine/internal/sqlengine"
)

// This file fuzzes the SQL dialect's three-valued logic directly. EXL
// itself has no booleans — comparisons, AND/OR/NOT and NULL literals
// only exist inside the generated SQL (join conditions, WHERE residues)
// — so random EXL programs exercise them indirectly at best. Here random
// boolean and arithmetic expression trees over NULL, constants and a
// column are evaluated by the engine and checked against an independent
// Kleene-3VL reference evaluator.
//
// The engine has no IS NULL operator, so a boolean expression B is
// decided with two queries over a one-row table: WHERE B keeps the row
// iff B is TRUE, and WHERE NOT B keeps it iff B is FALSE; if neither
// keeps it, B is NULL. A numeric expression N is projected as an output
// column: a NULL output drops the row, anything else returns the value.

// tri is a three-valued truth value.
type tri int8

const (
	triFalse tri = iota
	triTrue
	triNull
)

func (t tri) String() string {
	switch t {
	case triTrue:
		return "TRUE"
	case triFalse:
		return "FALSE"
	default:
		return "NULL"
	}
}

// numv is a nullable float: the reference counterpart of a SQL DOUBLE.
type numv struct {
	val  float64
	null bool
}

// ExprDivergence reports the engine disagreeing with the reference
// evaluator on one expression.
type ExprDivergence struct {
	SQL  string
	Want string
	Got  string
}

func (d ExprDivergence) String() string {
	return fmt.Sprintf("%s: engine says %s, reference says %s", d.SQL, d.Got, d.Want)
}

// colA is the value of the one-row table's single column.
const colA = 7

// exprGen builds random expression trees, computing the reference value
// alongside the SQL text so both derive from the same tree.
type exprGen struct {
	rng *rand.Rand
}

// num generates a numeric expression.
func (g *exprGen) num(depth int) (string, numv) {
	if depth <= 0 || g.rng.Float64() < 0.3 {
		switch g.rng.Intn(6) {
		case 0:
			return "NULL", numv{null: true}
		case 1:
			return "a", numv{val: colA}
		case 2:
			return "0", numv{}
		case 3:
			return "-2", numv{val: -2}
		case 4:
			return "1.5", numv{val: 1.5}
		default:
			return "3", numv{val: 3}
		}
	}
	switch g.rng.Intn(6) {
	case 0: // unary minus
		s, v := g.num(depth - 1)
		return "(- " + s + ")", numv{val: -v.val, null: v.null}
	case 1: // abs
		s, v := g.num(depth - 1)
		return "abs(" + s + ")", numv{val: math.Abs(v.val), null: v.null}
	default:
		ls, lv := g.num(depth - 1)
		rs, rv := g.num(depth - 1)
		op := []string{"+", "-", "*", "/"}[g.rng.Intn(4)]
		out := numv{null: lv.null || rv.null}
		if !out.null {
			switch op {
			case "+":
				out.val = lv.val + rv.val
			case "-":
				out.val = lv.val - rv.val
			case "*":
				out.val = lv.val * rv.val
			case "/":
				if rv.val == 0 {
					out = numv{null: true} // undefined point → NULL
				} else {
					out.val = lv.val / rv.val
				}
			}
		}
		return "(" + ls + " " + op + " " + rs + ")", out
	}
}

// boolean generates a boolean expression.
func (g *exprGen) boolean(depth int) (string, tri) {
	if depth <= 0 || g.rng.Float64() < 0.2 {
		if g.rng.Intn(4) == 0 {
			return "NULL", triNull
		}
		// Comparison atom.
		ls, lv := g.num(1)
		rs, rv := g.num(1)
		op := []string{"=", "<>", "<", "<=", ">", ">="}[g.rng.Intn(6)]
		return "(" + ls + " " + op + " " + rs + ")", compareRef(op, lv, rv)
	}
	switch g.rng.Intn(3) {
	case 0:
		s, v := g.boolean(depth - 1)
		return "(NOT " + s + ")", notRef(v)
	case 1:
		ls, lv := g.boolean(depth - 1)
		rs, rv := g.boolean(depth - 1)
		return "(" + ls + " AND " + rs + ")", andRef(lv, rv)
	default:
		ls, lv := g.boolean(depth - 1)
		rs, rv := g.boolean(depth - 1)
		return "(" + ls + " OR " + rs + ")", orRef(lv, rv)
	}
}

// Reference Kleene semantics: NULL is "unknown", comparisons and
// arithmetic are NULL-strict, and a dominant known operand decides
// and/or.
func compareRef(op string, l, r numv) tri {
	if l.null || r.null {
		return triNull
	}
	var b bool
	switch op {
	case "=":
		b = l.val == r.val
	case "<>":
		b = l.val != r.val
	case "<":
		b = l.val < r.val
	case "<=":
		b = l.val <= r.val
	case ">":
		b = l.val > r.val
	case ">=":
		b = l.val >= r.val
	}
	if b {
		return triTrue
	}
	return triFalse
}

func notRef(v tri) tri {
	switch v {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	default:
		return triNull
	}
}

func andRef(l, r tri) tri {
	if l == triFalse || r == triFalse {
		return triFalse
	}
	if l == triTrue && r == triTrue {
		return triTrue
	}
	return triNull
}

func orRef(l, r tri) tri {
	if l == triTrue || r == triTrue {
		return triTrue
	}
	if l == triFalse && r == triFalse {
		return triFalse
	}
	return triNull
}

// FuzzNullExprs runs n random expression cases (alternating boolean and
// numeric) against a fresh engine and returns every divergence from the
// reference evaluator. The error return is for engine malfunctions
// (query errors), which abort the run.
func FuzzNullExprs(seed int64, n int) ([]ExprDivergence, error) {
	db := sqlengine.NewDB()
	if err := db.Exec("CREATE TABLE ONE (a DOUBLE); INSERT INTO ONE(a) VALUES (7);"); err != nil {
		return nil, fmt.Errorf("difftest: seeding expr table: %w", err)
	}
	g := &exprGen{rng: rand.New(rand.NewSource(seed))}
	var out []ExprDivergence
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s, want := g.boolean(3)
			got, err := evalBool(db, s)
			if err != nil {
				return out, err
			}
			if got != want {
				out = append(out, ExprDivergence{SQL: s, Want: want.String(), Got: got.String()})
			}
		} else {
			s, want := g.num(3)
			got, err := evalNum(db, s)
			if err != nil {
				return out, err
			}
			if !numAgree(got, want) {
				out = append(out, ExprDivergence{SQL: s, Want: fmtNum(want), Got: fmtNum(got)})
			}
		}
	}
	return out, nil
}

// evalBool decides a boolean expression with the WHERE/WHERE NOT pair.
func evalBool(db *sqlengine.DB, s string) (tri, error) {
	pos, err := db.Query("SELECT a FROM ONE WHERE " + s)
	if err != nil {
		return triNull, fmt.Errorf("difftest: WHERE %s: %w", s, err)
	}
	if len(pos.Rows) == 1 {
		return triTrue, nil
	}
	neg, err := db.Query("SELECT a FROM ONE WHERE NOT " + s)
	if err != nil {
		return triNull, fmt.Errorf("difftest: WHERE NOT %s: %w", s, err)
	}
	if len(neg.Rows) == 1 {
		return triFalse, nil
	}
	return triNull, nil
}

// evalNum projects a numeric expression; a dropped row means NULL.
func evalNum(db *sqlengine.DB, s string) (numv, error) {
	res, err := db.Query("SELECT a, " + s + " AS x FROM ONE")
	if err != nil {
		return numv{}, fmt.Errorf("difftest: SELECT %s: %w", s, err)
	}
	if len(res.Rows) == 0 {
		return numv{null: true}, nil
	}
	f, ok := res.Rows[0][1].AsNumber()
	if !ok {
		return numv{}, fmt.Errorf("difftest: SELECT %s returned non-numeric %v", s, res.Rows[0][1])
	}
	return numv{val: f}, nil
}

func numAgree(a, b numv) bool {
	if a.null || b.null {
		return a.null == b.null
	}
	// The engine evaluates the identical tree with identical float64
	// operations, so exact equality is the contract.
	return a.val == b.val || (math.IsNaN(a.val) && math.IsNaN(b.val))
}

func fmtNum(v numv) string {
	if v.null {
		return "NULL"
	}
	return fmt.Sprintf("%g", v.val)
}
