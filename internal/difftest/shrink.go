package difftest

import (
	"sort"

	"exlengine/internal/model"
)

// Pred reports whether a candidate case still exhibits the failure being
// minimized. Candidates that no longer compile should return false.
type Pred func(*Case) bool

// Diverges is the standard shrinking predicate: the case compiles, the
// chase succeeds, and at least one engine disagrees.
func Diverges(tol float64) Pred {
	return func(c *Case) bool {
		res, err := Run(c, tol)
		return err == nil && len(res.Divergences) > 0
	}
}

// Shrink greedily minimizes a failing case while pred keeps holding:
// statements are dropped last-to-first (a statement referenced by a
// later one fails analysis, so pred rejects that candidate and it is
// restored), then source tuples are removed one at a time. The passes
// repeat until a full sweep removes nothing, so the result is 1-minimal:
// removing any single statement or tuple makes the failure disappear.
func Shrink(c *Case, pred Pred) *Case {
	cur := c.Clone()
	if !pred(cur) {
		return cur // not failing — nothing to minimize
	}
	for changed := true; changed; {
		changed = false
		// Statements, last to first so dependents go before dependencies.
		for i := len(cur.Stmts) - 1; i >= 0; i-- {
			if len(cur.Stmts) == 1 {
				break
			}
			cand := cur.Clone()
			cand.Stmts = append(cand.Stmts[:i], cand.Stmts[i+1:]...)
			if pred(cand) {
				cur = cand
				changed = true
			}
		}
		// Source tuples, cube by cube in stable order.
		names := make([]string, 0, len(cur.Data))
		for n := range cur.Data {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			for i := 0; i < len(cur.Data[name].Tuples()); i++ {
				cand := cur.Clone()
				cand.Data[name] = cubeWithout(cur.Data[name], i)
				if pred(cand) {
					cur = cand
					changed = true
					i-- // the tuple at this index is now a different one
				}
			}
		}
	}
	return cur
}

// cubeWithout rebuilds the cube minus the tuple at index i (in Tuples()
// order).
func cubeWithout(c *model.Cube, i int) *model.Cube {
	out := model.NewCube(c.Schema())
	for j, tu := range c.Tuples() {
		if j == i {
			continue
		}
		_ = out.Put(tu.Dims, tu.Measure)
	}
	return out
}
