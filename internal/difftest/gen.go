// Package difftest is a differential fuzzer for the four execution
// backends: it generates random EXL programs and random cube instances,
// compiles each program once, executes it on sqlengine, frame, etl and
// the chase reference, and diffs the results tuple by tuple. Divergences
// are minimized by shrinking the program and its data. A second fuzzer
// (exprfuzz.go) targets the SQL dialect's NULL semantics directly with
// random three-valued boolean and arithmetic expressions.
//
// Everything is seeded and deterministic: the same seed always produces
// the same case, so a failing seed is a complete reproduction recipe.
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"exlengine/internal/model"
)

// Case is one differential test case: an EXL program (declarations plus
// derived-cube statements) and a source instance for its elementary
// cubes.
type Case struct {
	Decls []string
	Stmts []string
	Data  map[string]*model.Cube
}

// Source renders the complete EXL program.
func (c *Case) Source() string {
	return strings.Join(c.Decls, "\n") + "\n" + strings.Join(c.Stmts, "\n") + "\n"
}

// Clone returns a deep copy; the shrinker mutates candidates freely.
func (c *Case) Clone() *Case {
	out := &Case{
		Decls: append([]string(nil), c.Decls...),
		Stmts: append([]string(nil), c.Stmts...),
		Data:  make(map[string]*model.Cube, len(c.Data)),
	}
	for name, cube := range c.Data {
		out.Data[name] = cube.Clone()
	}
	return out
}

// DataCSV renders the source instance as per-cube CSV-ish blocks, for
// human-readable reproduction reports.
func (c *Case) DataCSV() string {
	names := make([]string, 0, len(c.Data))
	for n := range c.Data {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		cube := c.Data[n]
		fmt.Fprintf(&b, "== data %s ==\n", n)
		for _, tu := range cube.Tuples() {
			parts := make([]string, 0, len(tu.Dims)+1)
			for _, d := range tu.Dims {
				parts = append(parts, d.String())
			}
			parts = append(parts, fmt.Sprintf("%g", tu.Measure))
			b.WriteString(strings.Join(parts, ","))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Generator produces random but well-formed EXL programs over a fixed
// set of elementary cubes, together with adversarial source data: gaps
// (NULL-producing missing tuples), exact zeros (division-by-zero and
// undefined-point fodder), negative values (ln/sqrt undefined points)
// and duplicate-period write attempts (egd pressure).
type Generator struct {
	rng     *rand.Rand
	decls   []string
	stmts   []string
	names   []string
	schemas map[string]model.Schema
	counter int
}

// NewGenerator returns a generator with the three elementary cubes of
// the crosscheck suite: a quarterly series SQ, a quarterly panel PQ and
// an annual series SY.
func NewGenerator(seed int64) *Generator {
	g := &Generator{rng: rand.New(rand.NewSource(seed)), schemas: make(map[string]model.Schema)}
	g.declare("SQ", model.NewSchema("SQ", []model.Dim{{Name: "t", Type: model.TQuarter}}, "v"),
		"cube SQ(t: quarter) measure v")
	g.declare("PQ", model.NewSchema("PQ", []model.Dim{{Name: "t", Type: model.TQuarter}, {Name: "r", Type: model.TString}}, "v"),
		"cube PQ(t: quarter, r: string) measure v")
	g.declare("SY", model.NewSchema("SY", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
		"cube SY(t: year) measure v")
	return g
}

// GenerateCase builds a full case: nStmts random statements plus random
// data for the elementary cubes.
func GenerateCase(seed int64, nStmts int) *Case {
	g := NewGenerator(seed)
	for i := 0; i < nStmts; i++ {
		g.AddStmt()
	}
	return &Case{
		Decls: append([]string(nil), g.decls...),
		Stmts: append([]string(nil), g.stmts...),
		Data:  g.Data(),
	}
}

func (g *Generator) declare(name string, sch model.Schema, decl string) {
	g.names = append(g.names, name)
	g.schemas[name] = sch
	g.decls = append(g.decls, decl)
}

func (g *Generator) fresh() string {
	g.counter++
	return fmt.Sprintf("D%02d", g.counter)
}

func (g *Generator) pick() string {
	return g.names[g.rng.Intn(len(g.names))]
}

// pickWhere returns a random cube satisfying pred, or "".
func (g *Generator) pickWhere(pred func(model.Schema) bool) string {
	var candidates []string
	for _, n := range g.names {
		if pred(g.schemas[n]) {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	return candidates[g.rng.Intn(len(candidates))]
}

// expr builds a random nested arithmetic expression whose cube operands
// all share the given schema's dimensions (so every binary operator is a
// plain vectorial join). At least one operand is a cube, keeping the
// analyzer's constant-folding rules satisfied.
func (g *Generator) expr(depth int, base string) string {
	sch := g.schemas[base]
	cube := func() string {
		if c := g.pickWhere(func(s model.Schema) bool { return s.SameDims(sch) }); c != "" {
			return c
		}
		return base
	}
	if depth <= 0 || g.rng.Float64() < 0.3 {
		return cube()
	}
	op := []string{"+", "-", "*", "/"}[g.rng.Intn(4)]
	// The left side recursively bottoms out in a cube leaf, so the whole
	// expression always references at least one cube; the right side may
	// be a small integer constant, another cube, or a deeper subtree.
	left := g.expr(depth-1, base)
	var right string
	switch g.rng.Intn(3) {
	case 0:
		right = fmt.Sprintf("%d", g.rng.Intn(4)+1)
	case 1:
		right = cube()
	default:
		right = g.expr(depth-1, base)
	}
	e := fmt.Sprintf("(%s %s %s)", left, op, right)
	if g.rng.Float64() < 0.2 {
		e = "abs" + e
	}
	return e
}

// AddStmt appends one random statement and registers the derived schema.
func (g *Generator) AddStmt() {
	name := g.fresh()
	for tries := 0; tries < 20; tries++ {
		switch g.rng.Intn(11) {
		case 0: // scalar arithmetic with a constant
			op := []string{"*", "+", "-", "/"}[g.rng.Intn(4)]
			k := g.rng.Intn(4) + 1
			src := g.pick()
			g.emit(name, fmt.Sprintf("%s := %s %s %d", name, src, op, k), g.schemas[src])
			return
		case 1: // total scalar function
			src := g.pick()
			fn := []string{"abs", "round"}[g.rng.Intn(2)]
			if g.rng.Intn(4) == 0 {
				// Keep magnitudes bounded: exp(v/10).
				g.emit(name, fmt.Sprintf("%s := exp(%s / 10)", name, src), g.schemas[src])
				return
			}
			g.emit(name, fmt.Sprintf("%s := %s(%s)", name, fn, src), g.schemas[src])
			return
		case 2: // partial scalar function: undefined on zero/negative points
			src := g.pick()
			switch g.rng.Intn(3) {
			case 0:
				g.emit(name, fmt.Sprintf("%s := ln(%s)", name, src), g.schemas[src])
			case 1:
				g.emit(name, fmt.Sprintf("%s := sqrt(%s)", name, src), g.schemas[src])
			default:
				g.emit(name, fmt.Sprintf("%s := log(2, %s)", name, src), g.schemas[src])
			}
			return
		case 3: // nested arithmetic expression tree
			base := g.pick()
			g.emit(name, fmt.Sprintf("%s := %s", name, g.expr(2, base)), g.schemas[base])
			return
		case 4: // aggregation dropping the non-time dimensions
			src := g.pickWhere(func(s model.Schema) bool {
				return len(s.Dims) == 2 && len(s.TimeDims()) == 1
			})
			if src == "" {
				continue
			}
			agg := []string{"sum", "avg", "min", "max", "median"}[g.rng.Intn(5)]
			sch := g.schemas[src]
			td := sch.Dims[sch.TimeDims()[0]]
			g.emit(name, fmt.Sprintf("%s := %s(%s, group by %s)", name, agg, src, td.Name),
				model.NewSchema(name, []model.Dim{td}, "v"))
			return
		case 5: // coarsening aggregation via a dimension function
			src := g.pickWhere(func(s model.Schema) bool {
				td := s.TimeDims()
				return len(td) == 1 && s.Dims[td[0]].Type == model.TQuarter &&
					s.DimIndex("y") < 0 // "y" must be free for the result dim
			})
			if src == "" {
				continue
			}
			agg := []string{"sum", "avg", "min", "max"}[g.rng.Intn(4)]
			sch := g.schemas[src]
			td := sch.Dims[sch.TimeDims()[0]]
			dims := []model.Dim{{Name: "y", Type: model.TYear}}
			groupBy := fmt.Sprintf("year(%s) as y", td.Name)
			for _, d := range sch.Dims {
				if d.Name != td.Name {
					dims = append(dims, d)
					groupBy += ", " + d.Name
				}
			}
			g.emit(name, fmt.Sprintf("%s := %s(%s, group by %s)", name, agg, src, groupBy),
				model.NewSchema(name, dims, "v"))
			return
		case 6: // shift along the unique time dimension
			src := g.pickWhere(func(s model.Schema) bool { return len(s.TimeDims()) == 1 })
			if src == "" {
				continue
			}
			s := g.rng.Intn(3) + 1
			if g.rng.Intn(2) == 0 {
				s = -s
			}
			g.emit(name, fmt.Sprintf("%s := shift(%s, %d)", name, src, s), g.schemas[src])
			return
		case 7: // whole-series black box
			src := g.pickWhere(func(s model.Schema) bool { return s.IsTimeSeries() })
			if src == "" {
				continue
			}
			switch g.rng.Intn(6) {
			case 0:
				g.emit(name, fmt.Sprintf("%s := movavg(%s, %d)", name, src, g.rng.Intn(3)+2), g.schemas[src])
			case 1:
				g.emit(name, fmt.Sprintf("%s := stl_i(%s)", name, src), g.schemas[src])
			default:
				bb := []string{"stl_t", "stl_s", "cumsum", "lintrend"}[g.rng.Intn(4)]
				g.emit(name, fmt.Sprintf("%s := %s(%s)", name, bb, src), g.schemas[src])
			}
			return
		case 8: // padded vectorial op (outer join semantics; SQL skips these)
			if g.rng.Intn(3) != 0 {
				continue // keep pad ops rare so most programs exercise SQL
			}
			a := g.pick()
			b := g.pickWhere(func(s model.Schema) bool { return s.SameDims(g.schemas[a]) })
			if b == "" {
				continue
			}
			op := []string{"vsum0", "vsub0"}[g.rng.Intn(2)]
			g.emit(name, fmt.Sprintf("%s := %s(%s, %s)", name, op, a, b), g.schemas[a])
			return
		case 9: // broadcast: a panel combined with a series over shared dims
			big := g.pickWhere(func(s model.Schema) bool { return len(s.Dims) == 2 })
			if big == "" {
				continue
			}
			small := g.pickWhere(func(s model.Schema) bool {
				if len(s.Dims) != 1 {
					return false
				}
				j := g.schemas[big].DimIndex(s.Dims[0].Name)
				return j >= 0 && g.schemas[big].Dims[j].Type.Matches(s.Dims[0].Type)
			})
			if small == "" {
				continue
			}
			op := []string{"+", "-", "*", "/"}[g.rng.Intn(4)]
			g.emit(name, fmt.Sprintf("%s := %s %s %s", name, big, op, small), g.schemas[big])
			return
		case 10: // global aggregate to a 0-dimensional cube
			src := g.pick()
			agg := []string{"sum", "avg", "count"}[g.rng.Intn(3)]
			g.emit(name, fmt.Sprintf("%s := %s(%s)", name, agg, src),
				model.NewSchema(name, nil, "v"))
			return
		}
	}
	// Fallback: always possible.
	src := g.pick()
	g.emit(name, fmt.Sprintf("%s := %s + 1", name, src), g.schemas[src])
}

func (g *Generator) emit(name, stmt string, sch model.Schema) {
	g.stmts = append(g.stmts, stmt)
	g.names = append(g.names, name)
	g.schemas[name] = sch.Rename(name)
}

// value draws an adversarial measure: ~12% exact zeros, ~38% negatives,
// the rest positive, all bounded in [-2, 2].
func (g *Generator) value() float64 {
	switch r := g.rng.Float64(); {
	case r < 0.12:
		return 0
	case r < 0.5:
		return -2 * g.rng.Float64()
	default:
		return 2 * g.rng.Float64()
	}
}

// Data builds sparse adversarial instances for the elementary cubes:
// ~25% of tuples are missing (gaps become NULLs / absent join partners),
// and ~10% of filled points get a second conflicting write at the same
// period, which the cube's functional dependency rejects (first write
// wins) — exercising the egd path without corrupting the instance.
func (g *Generator) Data() map[string]*model.Cube {
	out := make(map[string]*model.Cube)
	quarters := make([]model.Period, 12)
	for i := range quarters {
		quarters[i] = model.NewQuarterly(2000, 1).Shift(int64(i))
	}
	regions := []string{"a", "b", "c"}

	put := func(c *model.Cube, dims []model.Value) {
		if g.rng.Float64() < 0.25 {
			return // gap
		}
		_ = c.Put(dims, g.value())
		if g.rng.Float64() < 0.1 {
			_ = c.Put(dims, g.value()) // duplicate period: egd rejects it
		}
	}

	sq := model.NewCube(g.schemas["SQ"])
	for _, q := range quarters {
		put(sq, []model.Value{model.Per(q)})
	}
	out["SQ"] = sq

	pq := model.NewCube(g.schemas["PQ"])
	for _, q := range quarters {
		for _, r := range regions {
			put(pq, []model.Value{model.Per(q), model.Str(r)})
		}
	}
	out["PQ"] = pq

	sy := model.NewCube(g.schemas["SY"])
	for y := 2000; y < 2006; y++ {
		put(sy, []model.Value{model.Per(model.NewAnnual(y))})
	}
	out["SY"] = sy
	return out
}
