package difftest

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// KnownCase is a checked-in divergence reproduction from
// testdata/known/: a case the fuzzer found that is deliberately not
// fixed yet. The regression test re-runs each one, asserts it still
// diverges (so the corpus never rots into dead files) and then skips
// with the tracking note.
type KnownCase struct {
	Name string // file name without extension
	Note string // leading # comment lines: the tracking comment
	Case *Case
}

// LoadKnownCases reads every *.case file in dir. The format is
// line-oriented:
//
//	# tracking comment (may repeat)
//	== program ==
//	<EXL source lines>
//	== data CUBE ==
//	dim[,dim…],measure        (one tuple per line)
//
// Data rows are typed against the compiled program's elementary schemas,
// so a case file is self-contained and survives renames of internal
// representations. A missing directory is an empty corpus, not an error.
func LoadKnownCases(dir string) ([]KnownCase, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".case") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []KnownCase
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		kc, err := parseKnownCase(strings.TrimSuffix(name, ".case"), string(raw))
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: %w", name, err)
		}
		out = append(out, kc)
	}
	return out, nil
}

func parseKnownCase(name, raw string) (KnownCase, error) {
	kc := KnownCase{Name: name}
	var notes []string
	var program []string
	dataRows := map[string][]string{} // cube → raw tuple lines
	section := ""                     // "", "program", or a cube name
	for _, line := range strings.Split(raw, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "#"):
			notes = append(notes, strings.TrimSpace(strings.TrimPrefix(trimmed, "#")))
		case strings.HasPrefix(trimmed, "==") && strings.HasSuffix(trimmed, "=="):
			header := strings.TrimSpace(strings.Trim(trimmed, "="))
			if header == "program" {
				section = "program"
			} else if cube, ok := strings.CutPrefix(header, "data "); ok {
				section = strings.TrimSpace(cube)
			} else {
				return kc, fmt.Errorf("unknown section header %q", trimmed)
			}
		case trimmed == "":
		case section == "program":
			program = append(program, line)
		case section != "":
			dataRows[section] = append(dataRows[section], trimmed)
		default:
			return kc, fmt.Errorf("content before any section header: %q", line)
		}
	}
	kc.Note = strings.Join(notes, " ")
	if len(program) == 0 {
		return kc, fmt.Errorf("no program section")
	}

	// Split the program into declarations and statements, compile it to
	// learn the elementary schemas, then type the data rows against them.
	var decls, stmts []string
	for _, line := range program {
		if strings.HasPrefix(strings.TrimSpace(line), "cube ") {
			decls = append(decls, line)
		} else {
			stmts = append(stmts, line)
		}
	}
	c := &Case{Decls: decls, Stmts: stmts, Data: map[string]*model.Cube{}}
	prog, err := exl.Parse(c.Source())
	if err != nil {
		return kc, fmt.Errorf("program does not parse: %w", err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		return kc, fmt.Errorf("program does not analyze: %w", err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		return kc, fmt.Errorf("mapping generation: %w", err)
	}
	for _, el := range m.Elementary {
		sch := m.Schemas[el]
		cube := model.NewCube(sch)
		for _, row := range dataRows[el] {
			if err := putRow(cube, sch, row); err != nil {
				return kc, fmt.Errorf("data %s row %q: %w", el, row, err)
			}
		}
		c.Data[el] = cube
	}
	for cube := range dataRows {
		if _, ok := c.Data[cube]; !ok {
			return kc, fmt.Errorf("data section for undeclared cube %s", cube)
		}
	}
	kc.Case = c
	return kc, nil
}

func putRow(cube *model.Cube, sch model.Schema, row string) error {
	parts := strings.Split(row, ",")
	if len(parts) != len(sch.Dims)+1 {
		return fmt.Errorf("want %d fields, got %d", len(sch.Dims)+1, len(parts))
	}
	dims := make([]model.Value, len(sch.Dims))
	for i, d := range sch.Dims {
		v, err := model.ParseValue(strings.TrimSpace(parts[i]), d.Type)
		if err != nil {
			return err
		}
		dims[i] = v
	}
	var measure float64
	if _, err := fmt.Sscanf(strings.TrimSpace(parts[len(parts)-1]), "%g", &measure); err != nil {
		return fmt.Errorf("bad measure %q: %w", parts[len(parts)-1], err)
	}
	return cube.Put(dims, measure)
}

// FormatKnownCase renders a case in the testdata/known/ file format, so
// the fuzzer CLI can emit ready-to-commit reproductions.
func FormatKnownCase(note string, c *Case) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(note), "\n") {
		fmt.Fprintf(&b, "# %s\n", strings.TrimSpace(line))
	}
	b.WriteString("== program ==\n")
	b.WriteString(c.Source())
	b.WriteString(c.DataCSV())
	return b.String()
}
