package difftest

import (
	"strings"
	"testing"

	"exlengine/internal/model"
)

// TestShrinkMinimizes drives the shrinker with a synthetic failure
// predicate: the "bug" needs statement D02 and the 2001 SY tuple. The
// minimized case must contain exactly those and nothing else.
func TestShrinkMinimizes(t *testing.T) {
	c := GenerateCase(7, 8)
	if len(c.Stmts) != 8 {
		t.Fatalf("generator produced %d statements, want 8", len(c.Stmts))
	}
	needTuple := []model.Value{model.Per(model.NewAnnual(2001))}
	if _, ok := c.Data["SY"].Get(needTuple); !ok {
		// The seed's random gaps removed 2001; put it back so the
		// predicate is satisfiable.
		if err := c.Data["SY"].Put(needTuple, 1); err != nil {
			t.Fatal(err)
		}
	}
	pred := func(cand *Case) bool {
		hasStmt := false
		for _, s := range cand.Stmts {
			if strings.HasPrefix(s, "D02 ") {
				hasStmt = true
			}
		}
		_, hasTuple := cand.Data["SY"].Get(needTuple)
		return hasStmt && hasTuple
	}
	min := Shrink(c, pred)
	if len(min.Stmts) != 1 || !strings.HasPrefix(min.Stmts[0], "D02 ") {
		t.Fatalf("shrinker kept statements %v, want only D02", min.Stmts)
	}
	total := 0
	for _, cube := range min.Data {
		total += len(cube.Tuples())
	}
	if total != 1 {
		t.Fatalf("shrinker kept %d tuples, want 1:\n%s", total, min.DataCSV())
	}
	if _, ok := min.Data["SY"].Get(needTuple); !ok {
		t.Fatal("shrinker removed the tuple the predicate requires")
	}
	if !pred(min) {
		t.Fatal("minimized case no longer satisfies the predicate")
	}
}

// TestShrinkNonFailing: a passing case is returned untouched.
func TestShrinkNonFailing(t *testing.T) {
	c := GenerateCase(9, 4)
	min := Shrink(c, func(*Case) bool { return false })
	if min.Source() != c.Source() {
		t.Fatal("shrinker modified a non-failing case")
	}
}

// TestKnownCaseFormatRoundTrip: FormatKnownCase output parses back into
// an equivalent case, so CLI-emitted reproductions are directly
// committable.
func TestKnownCaseFormatRoundTrip(t *testing.T) {
	c := GenerateCase(11, 5)
	text := FormatKnownCase("tracking note line", c)
	kc, err := parseKnownCase("rt", text)
	if err != nil {
		t.Fatalf("formatted case does not parse back: %v\n%s", err, text)
	}
	if kc.Note != "tracking note line" {
		t.Fatalf("note round trip: %q", kc.Note)
	}
	if kc.Case.Source() != c.Source() {
		t.Fatalf("source round trip:\n%s\nvs\n%s", kc.Case.Source(), c.Source())
	}
	for name, cube := range c.Data {
		got := kc.Case.Data[name]
		if got == nil {
			t.Fatalf("cube %s lost in round trip", name)
		}
		if !cube.Equal(got, 1e-12) {
			t.Fatalf("cube %s changed in round trip:\n%s", name, strings.Join(cube.Diff(got, 1e-12, 5), "\n"))
		}
	}
}
