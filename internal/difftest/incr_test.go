package difftest

import (
	"testing"

	"exlengine/internal/model"
)

// TestIncrementalParity is the in-tree slice of the full-vs-incremental
// fuzzer: over a batch of random programs, each with a deterministic
// churn of its data, the incremental chase must reproduce the full
// solution byte for byte. The exlfuzz CLI (-incremental) runs bigger
// sweeps.
func TestIncrementalParity(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		c := GenerateCase(seed, 6)
		churnSeed := seed*1000003 + 1
		res, err := RunIncremental(c, churnSeed)
		if err != nil {
			t.Fatalf("seed %d: case does not run: %v\nprogram:\n%s", seed, err, c.Source())
		}
		if len(res.Divergences) == 0 {
			continue
		}
		min := Shrink(c, IncrDiverges(churnSeed))
		t.Errorf("seed %d (churn %d): %d divergence(s); first: %s\nminimized:\n%s",
			seed, churnSeed, len(res.Divergences), res.Divergences[0],
			FormatKnownCase("from TestIncrementalParity", min))
	}
}

// TestChurnBaseDeterministic: the churn is part of the reproduction
// recipe, so the same seed must derive the identical base instance.
func TestChurnBaseDeterministic(t *testing.T) {
	c := GenerateCase(11, 6)
	a := ChurnBase(c.Data, 99)
	b := ChurnBase(c.Data, 99)
	for name := range a {
		if !a[name].Equal(b[name], 0) {
			t.Fatalf("churn of %s not deterministic", name)
		}
	}
	other := ChurnBase(c.Data, 100)
	same := true
	for name := range a {
		if !a[name].Equal(other[name], 0) {
			same = false
		}
	}
	if same {
		t.Fatal("different churn seeds produced identical base instances")
	}
}

// TestChurnBaseCoversAllDeltaSpecies: across a handful of seeds the
// derived deltas must include insertions, updates and retractions, so
// the parity fuzz genuinely exercises the retraction path.
func TestChurnBaseCoversAllDeltaSpecies(t *testing.T) {
	var adds, changes, dels int
	c := GenerateCase(5, 4)
	for s := int64(0); s < 8; s++ {
		base := ChurnBase(c.Data, s)
		for name, cur := range c.Data {
			d := model.DiffCubes(name, base[name], cur)
			adds += len(d.Added)
			changes += len(d.Changed)
			dels += len(d.Deleted)
		}
	}
	if adds == 0 || changes == 0 || dels == 0 {
		t.Fatalf("churn species coverage: %d added, %d changed, %d deleted", adds, changes, dels)
	}
}
