package difftest

import "testing"

// TestFixedCasesAgree replays testdata/fixed/: divergences the fuzzer
// once found and that were then fixed. Unlike testdata/known/ (tracked,
// still-diverging, skipped), a fixed case must NEVER diverge again — any
// divergence here is a semantic regression and fails plain `go test`.
// To promote a known case after fixing it, move its file from known/ to
// fixed/ and reword the comment from tracking to fixed.
func TestFixedCasesAgree(t *testing.T) {
	fixed, err := LoadKnownCases("testdata/fixed")
	if err != nil {
		t.Fatalf("loading fixed cases: %v", err)
	}
	if len(fixed) == 0 {
		t.Fatal("fixed corpus is empty; testdata/fixed/*.case missing")
	}
	for _, kc := range fixed {
		kc := kc
		t.Run(kc.Name, func(t *testing.T) {
			res, err := Run(kc.Case, DefaultTol)
			if err != nil {
				t.Fatalf("fixed case no longer runs: %v\nprogram:\n%s", err, kc.Case.Source())
			}
			for _, d := range res.Divergences {
				t.Errorf("regression — fixed divergence reproduces again: %s (%s)", d, kc.Note)
			}
		})
	}
}
