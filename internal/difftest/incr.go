// Full-vs-incremental differential testing: the incremental chase
// promises byte-identical output to a full solve over the same current
// instance. This harness derives a deterministic "previous" version of a
// generated case's data, solves it fully to obtain maintenance bases,
// diffs previous vs current into per-relation deltas, and then requires
// SolveIncremental to reproduce the full solution exactly — zero
// tolerance, every relation, including auxiliary ones.
package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"exlengine/internal/chase"
	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// IncrResult is the outcome of one full-vs-incremental differential run.
type IncrResult struct {
	Stats       *chase.IncrStats
	Divergences []Divergence
}

// ChurnBase derives the "previous" version of a source instance from the
// current one, deterministically in the seed. Tuples removed from the
// base show up as insertions in the delta, tuples with a perturbed old
// value as updates, and tuples present only in the base as retractions —
// all three delta species every run, so the retraction path cannot rot
// unexercised.
func ChurnBase(cur map[string]*model.Cube, seed int64) map[string]*model.Cube {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)

	base := make(map[string]*model.Cube, len(cur))
	changed := false
	for _, name := range names {
		src := cur[name]
		out := src.Clone()
		for _, tu := range src.Tuples() {
			switch r := rng.Float64(); {
			case r < 0.20: // insertion: absent from the base
				out.Delete(tu.Dims)
				changed = true
			case r < 0.45: // update: base holds a different old value
				_ = out.Replace(tu.Dims, tu.Measure+rng.Float64()*4-2)
				changed = true
			case r < 0.55: // retraction: a base-only tuple at a fresh key
				if dims := shiftedDims(tu.Dims, 997+rng.Int63n(100)); dims != nil {
					if _, exists := src.Get(dims); !exists {
						if err := out.Put(dims, rng.Float64()*10-5); err == nil {
							changed = true
						}
					}
				}
			}
		}
		base[name] = out
	}
	// A no-op churn would only exercise the skip path; force at least one
	// real movement so every case tests maintenance proper.
	if !changed {
		for _, name := range names {
			if tus := base[name].Tuples(); len(tus) > 0 {
				base[name].Delete(tus[0].Dims)
				break
			}
		}
	}
	return base
}

// shiftedDims returns a copy of dims with the first period dimension
// shifted by off, producing a key outside the generated data's range; nil
// when there is no period dimension to shift.
func shiftedDims(dims []model.Value, off int64) []model.Value {
	for i, d := range dims {
		if p, ok := d.AsPeriod(); ok {
			out := append([]model.Value(nil), dims...)
			out[i] = model.Per(p.Shift(off))
			return out
		}
	}
	return nil
}

// RunIncremental compiles the case, solves the churned base instance and
// the current instance fully, then solves the current instance
// incrementally from the base outputs plus the input deltas, and diffs
// every relation with zero tolerance. A non-nil error means the case
// itself is broken; incremental disagreements are Divergences.
func RunIncremental(c *Case, churnSeed int64) (*IncrResult, error) {
	prog, err := exl.Parse(c.Source())
	if err != nil {
		return nil, fmt.Errorf("difftest: parse: %w", err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		return nil, fmt.Errorf("difftest: analyze: %w", err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		return nil, fmt.Errorf("difftest: mapping: %w", err)
	}

	base := ChurnBase(c.Data, churnSeed)
	baseOut, err := chase.New(m).Solve(chase.Instance(base))
	if err != nil {
		return nil, fmt.Errorf("difftest: chase on base instance: %w", err)
	}
	ref, err := chase.New(m).Solve(chase.Instance(c.Data))
	if err != nil {
		return nil, fmt.Errorf("difftest: chase reference: %w", err)
	}

	deltas := make(map[string]*model.CubeDelta)
	for _, name := range m.Elementary {
		if d := model.DiffCubes(name, base[name], c.Data[name]); !d.Empty() {
			deltas[name] = d
		}
	}
	got, _, stats, err := chase.New(m).SolveIncremental(context.Background(),
		chase.Instance(c.Data), &chase.DeltaInput{Deltas: deltas, BaseOut: baseOut})
	if err != nil {
		return nil, fmt.Errorf("difftest: incremental chase: %w", err)
	}

	res := &IncrResult{Stats: stats}
	rels := make([]string, 0, len(ref))
	for rel := range ref {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		if got[rel] == nil {
			res.Divergences = append(res.Divergences, Divergence{
				Engine: "chase-incr", Rel: rel, Lines: []string{"relation missing from incremental output"},
			})
			continue
		}
		// Zero tolerance: the incremental contract is exact equality, not
		// floating-point agreement.
		if lines := DiffCubes(ref[rel], got[rel], 0, 8); len(lines) > 0 {
			res.Divergences = append(res.Divergences, Divergence{Engine: "chase-incr", Rel: rel, Lines: lines})
		}
	}
	return res, nil
}

// IncrDiverges is the shrinking predicate for full-vs-incremental
// failures: the case compiles, both full solves succeed, and the
// incremental solve disagrees somewhere.
func IncrDiverges(churnSeed int64) Pred {
	return func(c *Case) bool {
		res, err := RunIncremental(c, churnSeed)
		return err == nil && len(res.Divergences) > 0
	}
}
