// Package mapping implements the paper's central device: the generation of
// executable schema mappings from EXL statistical programs (Section 4).
//
// A mapping M = (S, T, Σst, Σt) has a source relation per cube, a renamed
// copy in the target, source-to-target copy tgds, extended target tgds (one
// or more per EXL statement) and egds enforcing the functional nature of
// cubes. The tgds extend the classical language with scalar expressions
// over measures, dimension terms (shifts and frequency conversions),
// aggregation operators and whole-relation black boxes.
package mapping

import (
	"fmt"
	"strconv"
	"strings"

	"exlengine/internal/model"
)

// DimTerm is a term in a dimension position of an atom: a variable,
// optionally shifted by a constant (q-1) or wrapped in a dimension function
// (quarter(t)), or a constant value. Shift and Func are mutually exclusive.
type DimTerm struct {
	Var   string
	Shift int64        // term denotes Var + Shift
	Func  string       // term denotes Func(Var)
	Const *model.Value // constant term; Var empty
}

// V returns a plain variable term.
func V(name string) DimTerm { return DimTerm{Var: name} }

// String renders the term as in the paper's tgds ("q", "q-1",
// "quarter(t)").
func (t DimTerm) String() string {
	if t.Const != nil {
		return t.Const.String()
	}
	if t.Func != "" {
		return t.Func + "(" + t.Var + ")"
	}
	if t.Shift > 0 {
		return t.Var + "+" + strconv.FormatInt(t.Shift, 10)
	}
	if t.Shift < 0 {
		return t.Var + strconv.FormatInt(t.Shift, 10)
	}
	return t.Var
}

// MKind classifies measure terms.
type MKind uint8

// Measure term kinds.
const (
	MVar MKind = iota
	MConst
	MApply
)

// MTerm is a term in the measure position of a rhs atom: a variable bound
// in the lhs, a constant, or a scalar operator applied to sub-terms (with
// trailing scalar parameters, e.g. the base of log).
type MTerm struct {
	Kind   MKind
	Var    string
	Val    float64
	Op     string
	Args   []*MTerm
	Params []float64
}

// MV returns a measure variable term.
func MV(name string) *MTerm { return &MTerm{Kind: MVar, Var: name} }

// MC returns a measure constant term.
func MC(v float64) *MTerm { return &MTerm{Kind: MConst, Val: v} }

// MApp returns an operator application term.
func MApp(op string, args ...*MTerm) *MTerm {
	return &MTerm{Kind: MApply, Op: op, Args: args}
}

// Vars appends the variables occurring in the term to dst and returns it.
func (m *MTerm) Vars(dst []string) []string {
	switch m.Kind {
	case MVar:
		return append(dst, m.Var)
	case MApply:
		for _, a := range m.Args {
			dst = a.Vars(dst)
		}
	}
	return dst
}

// Clone returns a deep copy of the term.
func (m *MTerm) Clone() *MTerm {
	out := &MTerm{Kind: m.Kind, Var: m.Var, Val: m.Val, Op: m.Op}
	out.Params = append([]float64(nil), m.Params...)
	for _, a := range m.Args {
		out.Args = append(out.Args, a.Clone())
	}
	return out
}

// Substitute replaces every occurrence of variable name with repl and
// returns the (possibly new) term.
func (m *MTerm) Substitute(name string, repl *MTerm) *MTerm {
	switch m.Kind {
	case MVar:
		if m.Var == name {
			return repl.Clone()
		}
		return m
	case MApply:
		for i, a := range m.Args {
			m.Args[i] = a.Substitute(name, repl)
		}
	}
	return m
}

// Rename renames variable old to new in place.
func (m *MTerm) Rename(old, new string) {
	m.RenameAll(map[string]string{old: new})
}

// RenameAll applies a simultaneous variable renaming in place (no
// chaining: each original variable is looked up exactly once).
func (m *MTerm) RenameAll(rename map[string]string) {
	switch m.Kind {
	case MVar:
		if n, ok := rename[m.Var]; ok {
			m.Var = n
		}
	case MApply:
		for _, a := range m.Args {
			a.RenameAll(rename)
		}
	}
}

var infixOps = map[string]string{"add": "+", "sub": "-", "mul": "*", "div": "/"}

// String renders the measure expression as in the paper,
// e.g. "(r1 - r2) * 100 / r1".
func (m *MTerm) String() string {
	switch m.Kind {
	case MVar:
		return m.Var
	case MConst:
		return strconv.FormatFloat(m.Val, 'g', -1, 64)
	case MApply:
		if sym, ok := infixOps[m.Op]; ok && len(m.Args) == 2 {
			return "(" + m.Args[0].String() + " " + sym + " " + m.Args[1].String() + ")"
		}
		if m.Op == "neg" && len(m.Args) == 1 {
			return "(-" + m.Args[0].String() + ")"
		}
		parts := make([]string, 0, len(m.Args)+len(m.Params))
		for _, a := range m.Args {
			parts = append(parts, a.String())
		}
		for _, p := range m.Params {
			parts = append(parts, strconv.FormatFloat(p, 'g', -1, 64))
		}
		return m.Op + "(" + strings.Join(parts, ", ") + ")"
	default:
		return "?"
	}
}

func fmtParams(ps []float64) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = strconv.FormatFloat(p, 'g', -1, 64)
	}
	return strings.Join(parts, ", ")
}

var _ = fmt.Sprintf
