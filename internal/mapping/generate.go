package mapping

import (
	"fmt"

	"exlengine/internal/exl"
	"exlengine/internal/model"
)

// Generate translates an analyzed EXL program into its schema mapping and
// then simplifies it with the fusion pass, recombining chains of
// tuple-level tgds over auxiliary cubes into single complex tgds — the
// behaviour the paper describes for EXLEngine ("our tool is able to
// simplify them", producing tgd (5) from statement (5)).
func Generate(a *exl.Analyzed) (*Mapping, error) {
	m, err := GenerateNormalized(a)
	if err != nil {
		return nil, err
	}
	Fuse(m)
	return m, nil
}

// GenerateNormalized translates an analyzed EXL program into a schema
// mapping in fully normalized form: every statement is first decomposed
// into single-operator statements over auxiliary cubes (the paper's
// (5a)-(5d)), and each of those yields exactly one tgd.
func GenerateNormalized(a *exl.Analyzed) (*Mapping, error) {
	g := &generator{
		m: &Mapping{
			Schemas:  make(map[string]model.Schema, len(a.Schemas)),
			Analyzed: a,
		},
	}
	for _, name := range a.Elementary {
		g.m.Schemas[name] = a.Schemas[name]
	}
	g.m.Elementary = append([]string(nil), a.Elementary...)
	for _, s := range a.Stmts {
		g.stmt = s.Lhs
		g.auxN = 0
		if err := g.emit(s.Expr, s.Lhs, false); err != nil {
			return nil, err
		}
		g.m.Derived = append(g.m.Derived, s.Lhs)
	}
	g.m.restratify()
	g.m.rebuildEgds()
	return g.m, nil
}

type generator struct {
	m    *Mapping
	stmt string // lhs of the statement being translated
	auxN int    // auxiliary cube counter within the statement
	tgdN int    // tgd id counter
}

// materialize returns the relation name holding the value of e, generating
// tgds for auxiliary cubes as needed. Cube literals are used directly.
func (g *generator) materialize(e *exl.AExpr) (string, error) {
	if e.Kind == exl.ACube {
		return e.Cube, nil
	}
	g.auxN++
	name := fmt.Sprintf("_%s_%d", g.stmt, g.auxN)
	if err := g.emit(e, name, true); err != nil {
		return "", err
	}
	return name, nil
}

// emit generates the tgd(s) that populate relation out from expression e.
func (g *generator) emit(e *exl.AExpr, out string, aux bool) error {
	sch := e.Schema.Rename(out)
	if aux {
		sch.Measure = "value"
	} else {
		// Statement roots use the analyzer's schema, which carries the
		// inherited measure name (GDP keeps RGDP's g).
		sch = g.m.Analyzed.Schemas[out]
	}
	switch e.Kind {
	case exl.ACube:
		// A bare copy statement: identity tuple-level tgd.
		lhs := g.atomFor(e.Cube, nil)
		g.add(&Tgd{Kind: TupleLevel, Lhs: []Atom{lhs}, Rhs: g.rhsAtom(sch), Measure: MV(lhs.MVar), Auxiliary: aux}, sch)
		return nil

	case exl.ABinary:
		return g.emitBinary(e, out, sch, aux)

	case exl.APadVector:
		return g.emitPadVector(e, out, sch, aux)

	case exl.AScalarFunc:
		rel, err := g.materialize(e.Arg)
		if err != nil {
			return err
		}
		lhs := g.atomFor(rel, nil)
		measure := &MTerm{Kind: MApply, Op: e.Op, Args: []*MTerm{MV(lhs.MVar)}, Params: e.Params}
		g.add(&Tgd{Kind: TupleLevel, Lhs: []Atom{lhs}, Rhs: g.rhsAtom(sch), Measure: measure, Auxiliary: aux}, sch)
		return nil

	case exl.AShift:
		rel, err := g.materialize(e.Arg)
		if err != nil {
			return err
		}
		lhs := g.atomFor(rel, nil)
		rhs := g.rhsAtom(sch)
		// shift(e, s)(t) = e(t-s): the lhs tuple at t contributes the rhs
		// tuple at t+s.
		rhs.Dims[e.ShiftDim].Shift = e.ShiftBy
		g.add(&Tgd{Kind: TupleLevel, Lhs: []Atom{lhs}, Rhs: rhs, Measure: MV(lhs.MVar), Auxiliary: aux}, sch)
		return nil

	case exl.AAgg:
		rel, err := g.materialize(e.Arg)
		if err != nil {
			return err
		}
		lhs := g.atomFor(rel, nil)
		rhs := Atom{Rel: out}
		for _, grp := range e.GroupBy {
			rhs.Dims = append(rhs.Dims, DimTerm{Var: lhs.Dims[grp.DimIndex].Var, Func: grp.Func})
		}
		g.add(&Tgd{Kind: Aggregation, Agg: e.Op, Lhs: []Atom{lhs}, Rhs: rhs, Measure: MV(lhs.MVar), Auxiliary: aux}, sch)
		return nil

	case exl.ABlackBox:
		rel, err := g.materialize(e.Arg)
		if err != nil {
			return err
		}
		g.add(&Tgd{
			Kind: BlackBox, BB: e.Op, BBParams: e.Params,
			Lhs: []Atom{{Rel: rel}}, Rhs: Atom{Rel: out},
			Auxiliary: aux,
		}, sch)
		return nil

	default:
		return fmt.Errorf("mapping: cannot translate expression kind %d", e.Kind)
	}
}

func (g *generator) emitBinary(e *exl.AExpr, out string, sch model.Schema, aux bool) error {
	xConst := e.X.Kind == exl.AConst
	yConst := e.Y.Kind == exl.AConst

	if xConst || yConst {
		// Scalar application: one cube operand, one constant.
		cubeSide := e.X
		if xConst {
			cubeSide = e.Y
		}
		rel, err := g.materialize(cubeSide)
		if err != nil {
			return err
		}
		lhs := g.atomFor(rel, nil)
		var args []*MTerm
		if xConst {
			args = []*MTerm{MC(e.X.Val), MV(lhs.MVar)}
		} else {
			args = []*MTerm{MV(lhs.MVar), MC(e.Y.Val)}
		}
		g.add(&Tgd{Kind: TupleLevel, Lhs: []Atom{lhs}, Rhs: g.rhsAtom(sch), Measure: MApp(e.Op, args...), Auxiliary: aux}, sch)
		return nil
	}

	// Vectorial application: two cube operands joined on dimension names.
	relX, err := g.materialize(e.X)
	if err != nil {
		return err
	}
	relY, err := g.materialize(e.Y)
	if err != nil {
		return err
	}
	// Measure variables must not clash with each other or with any join
	// variable of either atom, or the natural-join semantics would be
	// corrupted.
	dimVars := make(map[string]bool)
	for _, d := range g.m.Schemas[relX].Dims {
		dimVars[d.Name] = true
	}
	for _, d := range g.m.Schemas[relY].Dims {
		dimVars[d.Name] = true
	}
	lhsX := g.atomFor(relX, dimVars)
	dimVars[lhsX.MVar] = true
	lhsY := g.atomFor(relY, dimVars)
	g.add(&Tgd{
		Kind: TupleLevel,
		Lhs:  []Atom{lhsX, lhsY},
		Rhs:  g.rhsAtom(sch),
		// Dimension names match by construction, so shared variables give
		// the natural join of the operands.
		Measure:   MApp(e.Op, MV(lhsX.MVar), MV(lhsY.MVar)),
		Auxiliary: aux,
	}, sch)
	return nil
}

// emitPadVector generates the tgd for vsum0/vsub0: two atoms whose
// bindings are combined on the union of their dimension tuples, with the
// default value standing in for missing measures.
func (g *generator) emitPadVector(e *exl.AExpr, out string, sch model.Schema, aux bool) error {
	relX, err := g.materialize(e.X)
	if err != nil {
		return err
	}
	relY, err := g.materialize(e.Y)
	if err != nil {
		return err
	}
	dimVars := make(map[string]bool)
	for _, d := range g.m.Schemas[relX].Dims {
		dimVars[d.Name] = true
	}
	lhsX := g.atomFor(relX, dimVars)
	dimVars[lhsX.MVar] = true
	lhsY := g.atomFor(relY, dimVars)
	padOp := "add"
	if e.Op == "vsub0" {
		padOp = "sub"
	}
	g.add(&Tgd{
		Kind:    PadVector,
		PadOp:   padOp,
		Lhs:     []Atom{lhsX, lhsY},
		Rhs:     g.rhsAtom(sch),
		Measure: MApp(padOp, MV(lhsX.MVar), MV(lhsY.MVar)),
	}, sch)
	g.m.Tgds[len(g.m.Tgds)-1].Auxiliary = aux
	return nil
}

// atomFor builds the lhs atom for a relation: one variable per dimension,
// named after the dimension, plus a measure variable named after the
// measure (with "y" standing in for the default "value").
func (g *generator) atomFor(rel string, takenMVars map[string]bool) Atom {
	sch := g.m.Schemas[rel]
	a := Atom{Rel: rel}
	for _, d := range sch.Dims {
		a.Dims = append(a.Dims, V(d.Name))
	}
	mv := sch.Measure
	if mv == "value" || mv == "" {
		mv = "y"
	}
	if sch.DimIndex(mv) >= 0 || takenMVars[mv] {
		// Suffix until the name clashes with neither a dimension nor a
		// variable already taken by a sibling atom.
		base := mv
		for i := 2; ; i++ {
			mv = fmt.Sprintf("%s%d", base, i)
			if sch.DimIndex(mv) < 0 && !takenMVars[mv] {
				break
			}
		}
	}
	a.MVar = mv
	return a
}

// rhsAtom builds the rhs atom of a tuple-level tgd: result dimensions in
// schema order, each referencing the operand variable of the same name.
func (g *generator) rhsAtom(sch model.Schema) Atom {
	a := Atom{Rel: sch.Name}
	for _, d := range sch.Dims {
		a.Dims = append(a.Dims, V(d.Name))
	}
	return a
}

func (g *generator) add(t *Tgd, sch model.Schema) {
	g.tgdN++
	t.ID = fmt.Sprintf("t%d", g.tgdN)
	t.Stmt = g.stmt
	t.Rhs.Rel = sch.Name
	g.m.Schemas[sch.Name] = sch
	g.m.Tgds = append(g.m.Tgds, t)
}
