package mapping

import (
	"fmt"
	"strings"
)

// Fuse simplifies a normalized mapping in place by inlining auxiliary
// tuple-level tgds into their (single) consumers, reproducing the paper's
// simplification step: statement (5), first normalized into (5a)-(5d), ends
// up as the single tgd
//
//	GDPT(q, y1) ∧ GDPT(q-1, y2) → PCHNG(q, (y1 - y2) * 100 / y1)
//
// Shift tgds fuse by inverting the dimension arithmetic into the consumer's
// lhs atom (the q-1 above); scalar and vectorial tgds fuse by substituting
// their measure expression for the consumed measure variable. Atoms that
// become identical after fusion are merged. Black-box tgds and their
// operands are never fused: a black box needs its whole operand
// materialized.
func Fuse(m *Mapping) {
	changed := make(map[*Tgd]bool)
	for fuseOnce(m, changed) {
	}
	dedupAtoms(m)
	for t := range changed {
		canonicalizeMeasureVars(t)
	}
	m.restratify()
	m.rebuildEgds()
}

// fuseOnce performs one inlining step; it reports whether anything changed.
func fuseOnce(m *Mapping, changed map[*Tgd]bool) bool {
	uses := make(map[string]int)
	blackBoxOperand := make(map[string]bool)
	for _, t := range m.Tgds {
		for _, a := range t.Lhs {
			uses[a.Rel]++
			if t.Kind == BlackBox {
				blackBoxOperand[a.Rel] = true
			}
		}
	}
	for i, t := range m.Tgds {
		rel := t.Target()
		if !t.Auxiliary || t.Kind != TupleLevel || uses[rel] != 1 || blackBoxOperand[rel] {
			continue
		}
		consumer, atomIdx := findConsumer(m, rel)
		if consumer == nil || consumer.Kind == BlackBox || consumer.Kind == Copy || consumer.Kind == PadVector {
			// Padded tgds need both operands materialized: their semantics
			// ranges over each operand's whole tuple set.
			continue
		}
		if inline(t, consumer, atomIdx) {
			changed[consumer] = true
			m.Tgds = append(m.Tgds[:i], m.Tgds[i+1:]...)
			delete(m.Schemas, rel)
			return true
		}
	}
	return false
}

func findConsumer(m *Mapping, rel string) (*Tgd, int) {
	for _, t := range m.Tgds {
		for k, a := range t.Lhs {
			if a.Rel == rel {
				return t, k
			}
		}
	}
	return nil, -1
}

// inline replaces consumer's atom at atomIdx (referencing t's target) with
// t's lhs atoms, substituting t's rhs terms against the consumer's atom
// terms. It reports whether the fusion was applicable.
func inline(t *Tgd, consumer *Tgd, atomIdx int) bool {
	atom := consumer.Lhs[atomIdx]

	// Build the variable substitution by unifying t's rhs dimension terms
	// with the consumer atom's terms. Only variable(+shift) terms are
	// invertible; function terms and constants block fusion.
	subst := make(map[string]DimTerm)
	for j, rt := range t.Rhs.Dims {
		ct := atom.Dims[j]
		if rt.Func != "" || rt.Const != nil || ct.Func != "" || ct.Const != nil {
			return false
		}
		// Unify rt.Var + rt.Shift = ct.Var + ct.Shift, so
		// rt.Var = ct.Var + (ct.Shift - rt.Shift).
		want := DimTerm{Var: ct.Var, Shift: ct.Shift - rt.Shift}
		if prev, ok := subst[rt.Var]; ok && prev != want {
			return false
		}
		subst[rt.Var] = want
	}

	// Fresh-rename t's remaining variables (measure variables, plus any lhs
	// dimension variable that does not reach the rhs) against the
	// consumer's variables.
	taken := consumer.Vars()
	rename := make(map[string]string)
	freshen := func(v string) string {
		if v == "" {
			return v
		}
		if _, isSubst := subst[v]; isSubst {
			return v
		}
		if r, ok := rename[v]; ok {
			return r
		}
		name := v
		for n := 2; taken[name]; n++ {
			name = fmt.Sprintf("%s%d", v, n)
		}
		taken[name] = true
		rename[v] = name
		return name
	}

	newAtoms := make([]Atom, 0, len(t.Lhs))
	for _, a := range t.Lhs {
		na := a.Clone()
		for j, d := range na.Dims {
			if s, ok := subst[d.Var]; ok {
				na.Dims[j] = DimTerm{Var: s.Var, Shift: s.Shift + d.Shift, Func: d.Func}
			} else {
				na.Dims[j].Var = freshen(d.Var)
			}
		}
		na.MVar = freshen(na.MVar)
		newAtoms = append(newAtoms, na)
	}

	measure := t.Measure.Clone()
	measure.RenameAll(rename)
	// Dimension substitutions never appear in measure expressions: measure
	// variables and dimension variables live in disjoint positions by
	// construction.

	lhs := make([]Atom, 0, len(consumer.Lhs)+len(newAtoms)-1)
	lhs = append(lhs, consumer.Lhs[:atomIdx]...)
	lhs = append(lhs, newAtoms...)
	lhs = append(lhs, consumer.Lhs[atomIdx+1:]...)
	consumer.Lhs = lhs
	consumer.Measure = consumer.Measure.Substitute(atom.MVar, measure)
	return true
}

// dedupAtoms merges lhs atoms that are syntactically identical on relation
// and dimension terms, unifying their measure variables. This turns the
// three-atom fusion result for PCHNG into the paper's two-atom tgd (5).
func dedupAtoms(m *Mapping) {
	for _, t := range m.Tgds {
		if t.Kind == BlackBox || t.Kind == Copy || t.Kind == PadVector || len(t.Lhs) < 2 {
			continue
		}
		kept := t.Lhs[:0:0]
		for _, a := range t.Lhs {
			dup := -1
			for k, b := range kept {
				if sameAtomKey(a, b) {
					dup = k
					break
				}
			}
			if dup < 0 {
				kept = append(kept, a)
				continue
			}
			if a.MVar != "" && kept[dup].MVar != "" && a.MVar != kept[dup].MVar && t.Measure != nil {
				t.Measure.Rename(a.MVar, kept[dup].MVar)
			}
		}
		t.Lhs = kept
	}
}

// canonicalizeMeasureVars renames the measure variables of a fused tgd to
// y1, …, yk (in order of first occurrence across lhs atoms), undoing the
// arbitrary fresh names introduced while inlining. Dimension variables are
// left untouched; clashes with them are avoided by switching to an m
// prefix.
func canonicalizeMeasureVars(t *Tgd) {
	if t.Kind == BlackBox || t.Kind == Copy {
		return
	}
	dimVars := make(map[string]bool)
	for _, a := range t.Lhs {
		for _, d := range a.Dims {
			dimVars[d.Var] = true
		}
	}
	prefix := "y"
	for prefixCollides(prefix, dimVars) {
		prefix = "m" + prefix
	}
	rename := make(map[string]string)
	n := 0
	for _, a := range t.Lhs {
		if a.MVar == "" {
			continue
		}
		if _, ok := rename[a.MVar]; !ok {
			n++
			rename[a.MVar] = fmt.Sprintf("%s%d", prefix, n)
		}
	}
	if n == 1 {
		// A single measure variable reads best unnumbered.
		for old := range rename {
			if !dimVars[prefix] {
				rename[old] = prefix
			}
		}
	}
	for i := range t.Lhs {
		if t.Lhs[i].MVar != "" {
			t.Lhs[i].MVar = rename[t.Lhs[i].MVar]
		}
	}
	if t.Measure != nil {
		t.Measure.RenameAll(rename)
	}
}

// prefixCollides reports whether any dimension variable is the prefix
// itself or the prefix followed by digits, which would clash with the
// canonical names prefix1…prefixN.
func prefixCollides(prefix string, dimVars map[string]bool) bool {
	for v := range dimVars {
		if !strings.HasPrefix(v, prefix) {
			continue
		}
		rest := v[len(prefix):]
		numeric := true
		for _, c := range rest {
			if c < '0' || c > '9' {
				numeric = false
				break
			}
		}
		if numeric {
			return true
		}
	}
	return false
}

func sameAtomKey(a, b Atom) bool {
	if a.Rel != b.Rel || len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	return true
}
