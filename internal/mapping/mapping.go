package mapping

import (
	"fmt"
	"sort"
	"strings"

	"exlengine/internal/exl"
	"exlengine/internal/model"
)

// Mapping is the schema mapping M = (S, T, Σst, Σt) generated from an EXL
// program. Source and target schemas contain one relation per cube (the
// target additionally holds derived and auxiliary cubes); Σst is the set of
// copy tgds (represented implicitly, one per elementary cube); Σt holds the
// program tgds in stratification order plus the functionality egds.
type Mapping struct {
	// Schemas maps every relation name (elementary, derived and auxiliary)
	// to its schema.
	Schemas map[string]model.Schema
	// Elementary lists the source relations, sorted.
	Elementary []string
	// Derived lists the program-visible derived cubes in statement order.
	Derived []string
	// Tgds holds the target dependencies in stratified order. Tgd.Stratum
	// is the index in this slice.
	Tgds []*Tgd
	// Egds holds one functionality egd per target relation.
	Egds []Egd
	// Analyzed is the program the mapping was generated from.
	Analyzed *exl.Analyzed
}

// CopyTgds renders the source-to-target copy dependencies of Σst, one per
// elementary cube (Section 4.1: F_S,i(x…, y) → F_T,i(x…, y)).
func (m *Mapping) CopyTgds() []*Tgd {
	out := make([]*Tgd, 0, len(m.Elementary))
	for _, name := range m.Elementary {
		sch := m.Schemas[name]
		lhs := Atom{Rel: name + "_S", MVar: "y"}
		rhs := Atom{Rel: name + "_T"}
		for _, d := range sch.Dims {
			lhs.Dims = append(lhs.Dims, V(d.Name))
			rhs.Dims = append(rhs.Dims, V(d.Name))
		}
		out = append(out, &Tgd{ID: "copy_" + name, Kind: Copy, Lhs: []Atom{lhs}, Rhs: rhs, Measure: MV("y")})
	}
	return out
}

// TgdFor returns the tgd populating the named relation, or nil.
func (m *Mapping) TgdFor(rel string) *Tgd {
	for _, t := range m.Tgds {
		if t.Target() == rel {
			return t
		}
	}
	return nil
}

// AuxRelations returns the auxiliary relation names in stratification
// order (empty after a successful full fusion pass).
func (m *Mapping) AuxRelations() []string {
	var out []string
	for _, t := range m.Tgds {
		if t.Auxiliary {
			out = append(out, t.Target())
		}
	}
	return out
}

// String renders the whole mapping: tgds in order, then egds.
func (m *Mapping) String() string {
	var b strings.Builder
	for i, t := range m.Tgds {
		fmt.Fprintf(&b, "(%d) %s\n", i+1, t)
	}
	if len(m.Egds) > 0 {
		b.WriteString("egds:\n")
		for _, e := range m.Egds {
			fmt.Fprintf(&b, "    %s\n", e)
		}
	}
	return b.String()
}

func (m *Mapping) rebuildEgds() {
	m.Egds = m.Egds[:0]
	names := make([]string, 0, len(m.Schemas))
	for name := range m.Schemas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Egds = append(m.Egds, Egd{Rel: name, Dims: len(m.Schemas[name].Dims)})
	}
}

func (m *Mapping) restratify() {
	for i, t := range m.Tgds {
		t.Stratum = i
	}
}
