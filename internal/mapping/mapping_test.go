package mapping

import (
	"strings"
	"testing"

	"exlengine/internal/exl"
	"exlengine/internal/model"
)

// gdpSource is the paper's running example (Section 2).
const gdpSource = `
cube PDR(d: day, r: string) measure p
cube RGDPPC(q: quarter, r: string) measure g

PQR    := avg(PDR, group by quarter(d) as q, r)
RGDP   := RGDPPC * PQR
GDP    := sum(RGDP, group by q)
GDPT   := stl_t(GDP)
PCHNG  := (GDPT - shift(GDPT, 1)) * 100 / GDPT
`

func analyze(t *testing.T, src string) *exl.Analyzed {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func generate(t *testing.T, src string) *Mapping {
	t.Helper()
	m, err := Generate(analyze(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestGenerateGDPFused(t *testing.T) {
	m := generate(t, gdpSource)

	// After fusion the mapping has exactly one tgd per paper statement.
	if len(m.Tgds) != 5 {
		t.Fatalf("tgds = %d:\n%s", len(m.Tgds), m)
	}
	if aux := m.AuxRelations(); len(aux) != 0 {
		t.Errorf("auxiliary relations must be fully fused away, got %v", aux)
	}

	want := []string{
		"PDR(d, r, p) → PQR(quarter(d), r, avg(p))",
		"RGDPPC(q, r, g) ∧ PQR(q, r, p) → RGDP(q, r, (g * p))",
		"RGDP(q, r, g) → GDP(q, sum(g))",
		"GDP → GDPT(stl_t(GDP))",
		"GDPT(q, y1) ∧ GDPT(q-1, y2) → PCHNG(q, (((y1 - y2) * 100) / y1))",
	}
	for i, w := range want {
		if got := m.Tgds[i].String(); got != w {
			t.Errorf("tgd %d:\n got  %s\n want %s", i+1, got, w)
		}
	}

	// Kinds and targets.
	kinds := []TgdKind{Aggregation, TupleLevel, Aggregation, BlackBox, TupleLevel}
	targets := []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"}
	for i, tg := range m.Tgds {
		if tg.Kind != kinds[i] {
			t.Errorf("tgd %d kind = %s, want %s", i+1, tg.Kind, kinds[i])
		}
		if tg.Target() != targets[i] {
			t.Errorf("tgd %d target = %s, want %s", i+1, tg.Target(), targets[i])
		}
		if tg.Stratum != i {
			t.Errorf("tgd %d stratum = %d", i+1, tg.Stratum)
		}
	}
}

func TestGenerateGDPNormalized(t *testing.T) {
	m, err := GenerateNormalized(analyze(t, gdpSource))
	if err != nil {
		t.Fatal(err)
	}
	// PCHNG decomposes into shift, sub, mul, div: 3 auxiliary cubes.
	if len(m.Tgds) != 8 {
		t.Fatalf("normalized tgds = %d:\n%s", len(m.Tgds), m)
	}
	aux := m.AuxRelations()
	if len(aux) != 3 {
		t.Fatalf("aux = %v", aux)
	}
	for _, name := range aux {
		if !strings.HasPrefix(name, "_PCHNG_") {
			t.Errorf("aux name %q", name)
		}
		if _, ok := m.Schemas[name]; !ok {
			t.Errorf("aux %s has no schema", name)
		}
	}
	// The shift tgd materializes the +1 on the rhs. Auxiliary cubes are
	// numbered in materialization order, so the innermost shift is _PCHNG_3.
	sh := m.TgdFor("_PCHNG_3")
	if sh == nil || sh.Kind != TupleLevel {
		t.Fatalf("shift tgd = %+v", sh)
	}
	if got := sh.String(); got != "GDPT(q, g) → _PCHNG_3(q+1, g)" {
		t.Errorf("shift tgd = %s", got)
	}
}

func TestCopyTgds(t *testing.T) {
	m := generate(t, gdpSource)
	copies := m.CopyTgds()
	if len(copies) != 2 {
		t.Fatalf("copies = %d", len(copies))
	}
	if got := copies[0].String(); got != "PDR_S(d, r, y) → PDR_T(d, r, y)" {
		t.Errorf("copy tgd = %s", got)
	}
	if copies[0].Kind != Copy {
		t.Error("kind must be Copy")
	}
}

func TestEgds(t *testing.T) {
	m := generate(t, gdpSource)
	if len(m.Egds) != len(m.Schemas) {
		t.Fatalf("egds = %d, schemas = %d", len(m.Egds), len(m.Schemas))
	}
	var gdp *Egd
	for i := range m.Egds {
		if m.Egds[i].Rel == "GDP" {
			gdp = &m.Egds[i]
		}
	}
	if gdp == nil {
		t.Fatal("no egd for GDP")
	}
	if got := gdp.String(); got != "GDP(x1, y1) ∧ GDP(x1, y2) → (y1 = y2)" {
		t.Errorf("egd = %s", got)
	}
}

func TestGenerateScalarVariants(t *testing.T) {
	m := generate(t, `
cube A(t: year) measure v
B := 3 * A
C := A / 2
D := log(2, A)
E := -A
F := pow(A, 3)
`)
	want := map[string]string{
		"B": "A(t, v) → B(t, (3 * v))",
		"C": "A(t, v) → C(t, (v / 2))",
		"D": "A(t, v) → D(t, log(v, 2))",
		"E": "A(t, v) → E(t, (-v))",
		"F": "A(t, v) → F(t, pow(v, 3))",
	}
	for rel, w := range want {
		tg := m.TgdFor(rel)
		if tg == nil {
			t.Errorf("no tgd for %s", rel)
			continue
		}
		if got := tg.String(); got != w {
			t.Errorf("%s:\n got  %s\n want %s", rel, got, w)
		}
	}
}

func TestGenerateCopyStatement(t *testing.T) {
	m := generate(t, "cube A(t: year) measure v\nB := A")
	tg := m.TgdFor("B")
	if tg == nil || tg.Kind != TupleLevel {
		t.Fatalf("tgd = %+v", tg)
	}
	if got := tg.String(); got != "A(t, v) → B(t, v)" {
		t.Errorf("copy stmt tgd = %s", got)
	}
}

func TestGenerateMeasureVarDisambiguation(t *testing.T) {
	// Both operands have measure named v: variables must not collide.
	m := generate(t, `
cube A(t: year) measure v
cube B(t: year) measure v
C := A + B
`)
	tg := m.TgdFor("C")
	if tg.Lhs[0].MVar == tg.Lhs[1].MVar {
		t.Errorf("measure variables collide: %s", tg)
	}
	// A measure named like a dimension must also be disambiguated.
	m = generate(t, `
cube D(t: year) measure t
E := D * 2
`)
	tg = m.TgdFor("E")
	if tg.Lhs[0].MVar == "t" {
		t.Errorf("measure variable shadows dimension: %s", tg)
	}
}

func TestFusionStopsAtBlackBox(t *testing.T) {
	// The operand of a black box is materialized even when auxiliary.
	m := generate(t, `
cube A(t: year) measure v
B := stl_t(A * 2)
`)
	if len(m.Tgds) != 2 {
		t.Fatalf("tgds:\n%s", m)
	}
	if aux := m.AuxRelations(); len(aux) != 1 {
		t.Errorf("black-box operand must stay auxiliary: %v", aux)
	}
	bb := m.TgdFor("B")
	if bb.Kind != BlackBox || bb.Lhs[0].Rel != "_B_1" {
		t.Errorf("blackbox tgd = %s", bb)
	}
}

func TestFusionIntoAggregation(t *testing.T) {
	m := generate(t, `
cube A(t: year, r: string) measure v
B := sum(A * 2, group by t)
`)
	if len(m.Tgds) != 1 {
		t.Fatalf("tgds:\n%s", m)
	}
	tg := m.Tgds[0]
	if tg.Kind != Aggregation || tg.Agg != "sum" {
		t.Fatalf("tgd = %s", tg)
	}
	if got := tg.String(); got != "A(t, r, y) → B(t, sum((y * 2)))" {
		t.Errorf("fused agg tgd = %s", got)
	}
}

func TestFusionSharedAuxNotInlined(t *testing.T) {
	// An auxiliary cube consumed twice must stay materialized.
	m := generate(t, `
cube A(t: year) measure v
B := (A * 2) / (A * 2 + 1)
`)
	// _B_1 := A*2 is used once; _B_2 := _B_1 + 1? No: normalization
	// materializes each subtree separately, so A*2 appears twice as two
	// distinct aux cubes which each fuse away.
	if aux := m.AuxRelations(); len(aux) != 0 {
		t.Errorf("aux = %v\n%s", aux, m)
	}
	tg := m.TgdFor("B")
	if len(tg.Lhs) != 1 {
		t.Errorf("expected single deduped atom, got %s", tg)
	}
}

func TestBlackBoxParamsPrinted(t *testing.T) {
	m := generate(t, "cube A(t: year) measure v\nB := movavg(A, 3)")
	if got := m.TgdFor("B").String(); got != "A → B(movavg(A, 3))" {
		t.Errorf("movavg tgd = %s", got)
	}
}

func TestMappingString(t *testing.T) {
	m := generate(t, gdpSource)
	s := m.String()
	if !strings.Contains(s, "(5) GDPT(q, y1)") {
		t.Errorf("mapping string misses numbered tgds:\n%s", s)
	}
	if !strings.Contains(s, "egds:") {
		t.Errorf("mapping string misses egds:\n%s", s)
	}
}

func TestDimTermString(t *testing.T) {
	v := model.Str("x")
	tests := []struct {
		term DimTerm
		want string
	}{
		{V("q"), "q"},
		{DimTerm{Var: "q", Shift: -1}, "q-1"},
		{DimTerm{Var: "q", Shift: 2}, "q+2"},
		{DimTerm{Var: "t", Func: "quarter"}, "quarter(t)"},
		{DimTerm{Const: &v}, "x"},
	}
	for _, tt := range tests {
		if got := tt.term.String(); got != tt.want {
			t.Errorf("DimTerm = %q, want %q", got, tt.want)
		}
	}
}

func TestMTermHelpers(t *testing.T) {
	m := MApp("div", MApp("mul", MApp("sub", MV("y1"), MV("y2")), MC(100)), MV("y1"))
	if got := m.String(); got != "(((y1 - y2) * 100) / y1)" {
		t.Errorf("MTerm string = %s", got)
	}
	vars := m.Vars(nil)
	if len(vars) != 3 {
		t.Errorf("vars = %v", vars)
	}
	c := m.Clone()
	c.Rename("y1", "z")
	if strings.Contains(m.String(), "z") {
		t.Error("Clone must not share structure")
	}
	got := m.Substitute("y2", MC(7))
	if !strings.Contains(got.String(), "7") {
		t.Errorf("Substitute = %s", got)
	}
	// Simultaneous rename must not chain.
	sw := MApp("sub", MV("a"), MV("b"))
	sw.RenameAll(map[string]string{"a": "b", "b": "a"})
	if got := sw.String(); got != "(b - a)" {
		t.Errorf("swap rename = %s", got)
	}
	// Params render after args.
	lg := &MTerm{Kind: MApply, Op: "log", Args: []*MTerm{MV("y")}, Params: []float64{2}}
	if got := lg.String(); got != "log(y, 2)" {
		t.Errorf("log term = %s", got)
	}
}

func TestTgdClone(t *testing.T) {
	m := generate(t, gdpSource)
	orig := m.TgdFor("PCHNG")
	c := orig.Clone()
	c.Lhs[0].Dims[0].Var = "zzz"
	c.Measure.Rename("y1", "zzz")
	if strings.Contains(orig.String(), "zzz") {
		t.Error("Clone must be deep")
	}
}

func TestTgdKindString(t *testing.T) {
	for k := Copy; k <= BlackBox; k++ {
		if k.String() == "invalid" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
