package mapping

import (
	"fmt"
	"strings"
)

// TgdKind classifies the generated dependencies.
type TgdKind uint8

// Tgd kinds, mirroring the statement classes of Section 4.1.
const (
	Copy        TgdKind = iota // source-to-target copy F_S -> F_T
	TupleLevel                 // scalar/vectorial/shift operators
	Aggregation                // group-by + aggregation operator
	BlackBox                   // whole-relation operator (stl, movavg, …)
	PadVector                  // vectorial operator over the union of tuples, padding with a default
)

// String returns the kind name.
func (k TgdKind) String() string {
	switch k {
	case Copy:
		return "copy"
	case TupleLevel:
		return "tuple-level"
	case Aggregation:
		return "aggregation"
	case BlackBox:
		return "blackbox"
	case PadVector:
		return "pad-vector"
	default:
		return "invalid"
	}
}

// Atom is a relational atom R(t1, …, tn, y): dimension terms plus a
// measure variable. Black-box tgds use atoms with no terms at all (the
// paper's tgd (4) has no variables).
type Atom struct {
	Rel  string
	Dims []DimTerm
	MVar string
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	out := Atom{Rel: a.Rel, MVar: a.MVar}
	out.Dims = append([]DimTerm(nil), a.Dims...)
	return out
}

// String renders the atom, e.g. "GDPT(q-1, r2)".
func (a Atom) String() string {
	if len(a.Dims) == 0 && a.MVar == "" {
		return a.Rel
	}
	parts := make([]string, 0, len(a.Dims)+1)
	for _, d := range a.Dims {
		parts = append(parts, d.String())
	}
	if a.MVar != "" {
		parts = append(parts, a.MVar)
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Tgd is an extended tuple-generating dependency. All tgds here are full
// (no existential variables): values in generated tuples are uniquely
// defined. Depending on Kind:
//
//   - TupleLevel: Lhs atoms join on shared variables; the Rhs tuple's
//     dimension terms and the Measure expression are computed per binding.
//   - Aggregation: Lhs atoms join; bindings are grouped by the Rhs
//     dimension terms; Agg is applied to the bag of Measure values.
//   - BlackBox: the whole Lhs relation is transformed by operator BB.
//   - Copy: the source relation is copied into its target twin.
type Tgd struct {
	ID      string // "t1", "t2", … in statement order
	Stratum int    // position in the stratified application order
	Kind    TgdKind
	Lhs     []Atom
	Rhs     Atom

	Measure *MTerm // TupleLevel: rhs measure; Aggregation: aggregated expression

	Agg string // Aggregation: operator name

	BB       string    // BlackBox: operator name
	BBParams []float64 // BlackBox: scalar parameters

	// PadVector: the underlying scalar operator ("add" or "sub") and the
	// default value substituted for missing operand tuples.
	PadOp      string
	PadDefault float64

	// Stmt is the lhs cube of the EXL statement this tgd was generated
	// from (auxiliary tgds carry their root statement), letting the
	// determination engine regroup tgds by statement.
	Stmt string

	// Auxiliary marks tgds whose target cube was introduced by
	// normalization of a multi-operator statement (5a)-(5d) and is not part
	// of the program's visible output.
	Auxiliary bool
}

// Target returns the name of the relation the tgd populates.
func (t *Tgd) Target() string { return t.Rhs.Rel }

// Clone returns a deep copy of the tgd.
func (t *Tgd) Clone() *Tgd {
	out := *t
	out.Lhs = make([]Atom, len(t.Lhs))
	for i, a := range t.Lhs {
		out.Lhs[i] = a.Clone()
	}
	out.Rhs = t.Rhs.Clone()
	if t.Measure != nil {
		out.Measure = t.Measure.Clone()
	}
	out.BBParams = append([]float64(nil), t.BBParams...)
	return &out
}

// Vars returns the set of variable names used anywhere in the tgd.
func (t *Tgd) Vars() map[string]bool {
	vars := make(map[string]bool)
	for _, a := range t.Lhs {
		for _, d := range a.Dims {
			if d.Var != "" {
				vars[d.Var] = true
			}
		}
		if a.MVar != "" {
			vars[a.MVar] = true
		}
	}
	for _, d := range t.Rhs.Dims {
		if d.Var != "" {
			vars[d.Var] = true
		}
	}
	if t.Measure != nil {
		for _, v := range t.Measure.Vars(nil) {
			vars[v] = true
		}
	}
	return vars
}

// String renders the tgd in the paper's logic notation, e.g.
//
//	GDPT(q, r1) ∧ GDPT(q-1, r2) → PCHNG(q, (r1 - r2) * 100 / r1)
//	RGDP(q, r, g) → GDP(q, sum(g))
//	GDP → GDPT(stl_t(GDP))
func (t *Tgd) String() string {
	var b strings.Builder
	switch t.Kind {
	case BlackBox:
		b.WriteString(t.Lhs[0].Rel)
		b.WriteString(" → ")
		b.WriteString(t.Rhs.Rel)
		b.WriteByte('(')
		b.WriteString(t.BB)
		b.WriteByte('(')
		b.WriteString(t.Lhs[0].Rel)
		if len(t.BBParams) > 0 {
			b.WriteString(", ")
			b.WriteString(fmtParams(t.BBParams))
		}
		b.WriteString("))")
	default:
		for i, a := range t.Lhs {
			if i > 0 {
				b.WriteString(" ∧ ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(" → ")
		b.WriteString(t.Rhs.Rel)
		b.WriteByte('(')
		parts := make([]string, 0, len(t.Rhs.Dims)+1)
		for _, d := range t.Rhs.Dims {
			parts = append(parts, d.String())
		}
		switch t.Kind {
		case Aggregation:
			parts = append(parts, t.Agg+"("+t.Measure.String()+")")
		default:
			parts = append(parts, t.Measure.String())
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteByte(')')
		if t.Kind == PadVector {
			fmt.Fprintf(&b, "  [outer, default %g]", t.PadDefault)
		}
	}
	return b.String()
}

// Egd is an equality-generating dependency asserting the functional nature
// of a cube: F(x1,…,xn,y1) ∧ F(x1,…,xn,y2) → y1 = y2.
type Egd struct {
	Rel  string
	Dims int
}

// String renders the egd in logic notation.
func (e Egd) String() string {
	xs := make([]string, e.Dims)
	for i := range xs {
		xs[i] = fmt.Sprintf("x%d", i+1)
	}
	head := e.Rel + "(" + strings.Join(append(append([]string{}, xs...), "y1"), ", ") + ")"
	head2 := e.Rel + "(" + strings.Join(append(append([]string{}, xs...), "y2"), ", ") + ")"
	return head + " ∧ " + head2 + " → (y1 = y2)"
}
