package governor

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/obs"
)

// TestAdmitImmediate: under capacity, Admit grants without queueing.
func TestAdmitImmediate(t *testing.T) {
	g := New(Config{MaxConcurrent: 2})
	t1, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.InFlight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	t1.Release()
	t2.Release()
	t2.Release() // idempotent
	if got := g.InFlight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

// TestAdmitQueuesFIFO: over capacity, waiters queue and are granted in
// order as slots free.
func TestAdmitQueuesFIFO(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 8})
	first, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := g.Admit(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			tk.Release()
		}()
		// Give each goroutine time to enqueue so FIFO order is
		// deterministic.
		waitFor(t, func() bool { return queueLen(g) == i+1 })
	}
	first.Release()
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

func queueLen(g *Governor) int {
	g.lock()
	defer g.unlock()
	return g.queue.Len()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in 5s")
}

// TestQueueFullSheds: a full wait queue rejects immediately with a typed
// overload error.
func TestQueueFullSheds(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	tk, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release()
	done := make(chan struct{})
	go func() {
		defer close(done)
		tk2, err := g.Admit(context.Background(), 1)
		if err == nil {
			tk2.Release()
		}
	}()
	waitFor(t, func() bool { return queueLen(g) == 1 })
	_, err = g.Admit(context.Background(), 1)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if !exlerr.IsOverload(err) {
		t.Fatalf("queue-full error is not typed Overload: %v", err)
	}
	tk.Release()
	<-done
}

// TestNoQueue: MaxQueue < 0 rejects as soon as capacity is exhausted.
func TestNoQueue(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: -1})
	tk, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release()
	if _, err := g.Admit(context.Background(), 1); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

// TestDeadlineAwareShedding: a run whose deadline cannot be met by the
// estimated queue wait is rejected immediately instead of queued.
func TestDeadlineAwareShedding(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 8, AvgRunHint: time.Minute})
	tk, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.Admit(ctx, 1)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !exlerr.IsOverload(err) {
		t.Fatalf("deadline shed is not typed Overload: %v", err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("deadline shed waited %v; must reject immediately", d)
	}
	// A deadline the estimate can meet queues normally.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel2()
	done := make(chan error, 1)
	go func() {
		tk2, err := g.Admit(ctx2, 1)
		if err == nil {
			tk2.Release()
		}
		done <- err
	}()
	waitFor(t, func() bool { return queueLen(g) == 1 })
	tk.Release()
	if err := <-done; err != nil {
		t.Fatalf("meetable deadline was shed: %v", err)
	}
}

// TestAdmitCancelledWhileQueued: cancelling a queued waiter removes it
// from the queue and returns the context error.
func TestAdmitCancelledWhileQueued(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	tk, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		tk2, err := g.Admit(ctx, 1)
		if err == nil {
			tk2.Release()
		}
		done <- err
	}()
	waitFor(t, func() bool { return queueLen(g) == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := queueLen(g); got != 0 {
		t.Fatalf("queue length after cancel = %d, want 0", got)
	}
	tk.Release()
	// Capacity must not have leaked: the slot is immediately grantable.
	tk3, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatalf("slot leaked after queued cancel: %v", err)
	}
	tk3.Release()
}

// TestMemoryBudget: per-run and process-wide budgets reject with typed
// overload errors, and releases return the reservation.
func TestMemoryBudget(t *testing.T) {
	g := New(Config{MemoryBudget: 1000, PerRunBudget: 600})
	t1, _ := g.Admit(context.Background(), 1)
	if err := t1.Reserve(500); err != nil {
		t.Fatal(err)
	}
	if err := t1.Reserve(200); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("per-run overrun: err = %v, want ErrMemoryBudget", err)
	}
	t2, _ := g.Admit(context.Background(), 1)
	if err := t2.Reserve(600); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("process overrun: err = %v, want ErrMemoryBudget", err)
	}
	if err := t2.Reserve(400); err != nil {
		t.Fatal(err)
	}
	if got := g.MemUsed(); got != 900 {
		t.Fatalf("MemUsed = %d, want 900", got)
	}
	t1.Release()
	if got := g.MemUsed(); got != 400 {
		t.Fatalf("MemUsed after release = %d, want 400", got)
	}
	t2.Release()
	if got, peak := g.MemUsed(), g.MemPeak(); got != 0 || peak != 900 {
		t.Fatalf("MemUsed = %d (want 0), MemPeak = %d (want 900)", got, peak)
	}
}

// TestShutdownDrains: Shutdown rejects queued and new work, waits for
// in-flight releases, and is idempotent.
func TestShutdownDrains(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	tk, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	queuedErr := make(chan error, 1)
	go func() {
		tk2, err := g.Admit(context.Background(), 1)
		if err == nil {
			tk2.Release()
		}
		queuedErr <- err
	}()
	waitFor(t, func() bool { return queueLen(g) == 1 })

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- g.Shutdown(context.Background()) }()
	if err := <-queuedErr; !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("queued waiter err = %v, want ErrShuttingDown", err)
	}
	if _, err := g.Admit(context.Background(), 1); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("new admit err = %v, want ErrShuttingDown", err)
	}
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned with a run still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	tk.Release()
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v, want nil", err)
	}
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("repeated Shutdown = %v, want nil", err)
	}
}

// TestShutdownTimeout: a deadline that expires before the drain finishes
// surfaces the context error; runs keep running.
func TestShutdownTimeout(t *testing.T) {
	g := New(Config{MaxConcurrent: 1})
	tk, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := g.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	tk.Release()
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown retry after drain = %v, want nil", err)
	}
}

// TestNilGovernor: every method no-ops on a nil governor and tickets.
func TestNilGovernor(t *testing.T) {
	var g *Governor
	tk, err := g.Admit(context.Background(), 1)
	if err != nil || tk != nil {
		t.Fatalf("nil governor Admit = (%v, %v)", tk, err)
	}
	if err := tk.Reserve(1 << 40); err != nil {
		t.Fatalf("nil ticket Reserve = %v", err)
	}
	tk.Release()
	if err := g.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if g.InFlight() != 0 || g.MemUsed() != 0 || g.Breakers() != nil {
		t.Fatal("nil governor leaked state")
	}
}

// TestUnlimitedTracksInflight: with no concurrency bound, admission
// never blocks but Shutdown still drains.
func TestUnlimitedTracksInflight(t *testing.T) {
	g := New(Config{})
	var tks []*Ticket
	for i := 0; i < 32; i++ {
		tk, err := g.Admit(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		tks = append(tks, tk)
	}
	if got := g.InFlight(); got != 32 {
		t.Fatalf("inflight = %d, want 32", got)
	}
	done := make(chan error, 1)
	go func() { done <- g.Shutdown(context.Background()) }()
	for _, tk := range tks {
		tk.Release()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionUnderContention hammers Admit/Release from many
// goroutines and asserts the inflight gauge never exceeds capacity and
// everything drains.
func TestAdmissionUnderContention(t *testing.T) {
	const capacity = 4
	mx := obs.NewRegistry()
	g := New(Config{MaxConcurrent: capacity, MaxQueue: 1000})
	g.SetMetrics(mx)
	var running, maxRunning atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := g.Admit(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			n := running.Add(1)
			for {
				old := maxRunning.Load()
				if n <= old || maxRunning.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			tk.Release()
		}()
	}
	wg.Wait()
	if got := maxRunning.Load(); got > capacity {
		t.Fatalf("observed %d concurrent holders, capacity %d", got, capacity)
	}
	if got := g.InFlight(); got != 0 {
		t.Fatalf("inflight after drain = %d", got)
	}
	if got := mx.Counter(obs.MetricAdmitted).Value(); got != 64 {
		t.Fatalf("admitted counter = %d, want 64", got)
	}
}

// TestEWMAColdStartGuard: with no AvgRunHint, deadline shedding must not
// trust the run-duration EWMA until ewmaMinSamples runs have completed.
// One anomalously slow first run (e.g. cold caches) would otherwise shed
// every deadline-bearing request that follows it.
func TestEWMAColdStartGuard(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 8})
	cur := time.Now()
	g.now = func() time.Time { return cur }

	// Two hour-long runs: the estimator has data, but is still cold
	// (fewer than ewmaMinSamples), so a tight deadline must queue
	// instead of being shed on the evidence of the slow starts.
	for i := 0; i < 2; i++ {
		tk, err := g.Admit(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		cur = cur.Add(time.Hour)
		tk.Release()
	}
	holder, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Deadline anchored to the (advanced) fake clock: far in the real
	// future, so the context itself never fires during the test, but
	// hopeless if the 1h EWMA were trusted.
	ctx, cancel := context.WithDeadline(context.Background(), cur.Add(50*time.Millisecond))
	done := make(chan error, 1)
	go func() {
		tk, err := g.Admit(ctx, 1)
		if err == nil {
			tk.Release()
		}
		done <- err
	}()
	waitFor(t, func() bool { return queueLen(g) == 1 }) // queued, not shed
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cold-estimator waiter: err = %v, want context.Canceled (queued)", err)
	}

	// The third completed run warms the estimator; the same tight
	// deadline is now shed immediately.
	cur = cur.Add(time.Hour)
	holder.Release()
	holder2, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer holder2.Release()
	ctx2, cancel2 := context.WithDeadline(context.Background(), cur.Add(50*time.Millisecond))
	defer cancel2()
	if _, err := g.Admit(ctx2, 1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("warm-estimator waiter: err = %v, want ErrDeadline", err)
	}
}

// TestEWMANegativeHeldClamped: a run whose hold duration comes out
// negative (system clock stepped backwards mid-run) must not be folded
// into the EWMA as-is — a negative average would silently disable wait
// estimation. It is clamped to zero and counted as a sample.
func TestEWMANegativeHeldClamped(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 8})
	cur := time.Now()
	g.now = func() time.Time { return cur }

	tk, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cur = cur.Add(time.Minute)
	tk.Release() // ewmaRun = 1m

	tk2, err := g.Admit(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cur = cur.Add(-time.Hour) // clock stepped backwards mid-run
	tk2.Release()

	g.lock()
	ewma, samples := g.ewmaRun, g.ewmaSamples
	g.unlock()
	if samples != 2 {
		t.Fatalf("ewmaSamples = %d, want 2 (clamped run still counts)", samples)
	}
	if want := time.Minute - time.Minute/4; ewma != want {
		t.Fatalf("ewmaRun = %v, want %v (negative hold folded as zero)", ewma, want)
	}
}
