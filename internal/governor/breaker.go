package governor

import (
	"sync"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// BreakerState is the state of one backend's circuit breaker.
type BreakerState int

// Breaker states. The gauge values exported to metrics match these
// constants (0 closed, 1 half-open, 2 open).
const (
	// BreakerClosed: the backend is healthy; every attempt is allowed.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; a bounded number of probe
	// attempts decide whether the backend has recovered.
	BreakerHalfOpen
	// BreakerOpen: the backend failed too often; attempts are skipped
	// until the cooldown elapses.
	BreakerOpen
)

// String renders the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig parameterizes the per-backend circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive recorded failures
	// that trips a closed breaker open. Zero means 5; negative disables
	// the breakers entirely (Allow always true).
	FailureThreshold int
	// Cooldown is how long an open breaker rejects before moving to
	// half-open. Zero means 1s.
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probe attempts a half-open
	// breaker admits. Zero means 1.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// breaker is one backend's state machine.
type breaker struct {
	state     BreakerState
	failures  int       // consecutive failures while closed
	openUntil time.Time // when an open breaker may half-open
	probes    int       // probe attempts remaining while half-open
}

// BreakerSet holds one circuit breaker per backend target. It implements
// dispatch.BreakerGate: the dispatcher consults Allow before trying a
// target and feeds every attempt outcome back through Record, so a
// backend that keeps failing is skipped by every run — sparing its retry
// budget — until a probe succeeds. All methods are safe for concurrent
// use and no-op on a nil set.
type BreakerSet struct {
	mu      sync.Mutex
	cfg     BreakerConfig
	m       map[ops.Target]*breaker
	now     func() time.Time
	metrics *obs.Registry
}

// NewBreakerSet builds a standalone breaker set (the governor builds one
// internally; standalone construction is for tests and direct dispatcher
// wiring).
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return newBreakerSet(cfg, time.Now)
}

func newBreakerSet(cfg BreakerConfig, now func() time.Time) *BreakerSet {
	// withDefaults leaves a negative (disabled) threshold untouched.
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[ops.Target]*breaker), now: now}
}

// SetClock injects the clock (tests).
func (s *BreakerSet) SetClock(now func() time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

func (s *BreakerSet) get(t ops.Target) *breaker {
	b := s.m[t]
	if b == nil {
		b = &breaker{}
		s.m[t] = b
	}
	return b
}

func (s *BreakerSet) setStateGauge(t ops.Target, st BreakerState) {
	s.metrics.Gauge(obs.Label(obs.MetricBreakerState, "target", string(t))).Set(int64(st))
}

// Allow reports whether an attempt on the target may proceed. An open
// breaker past its cooldown transitions to half-open and admits a
// bounded number of probes; a half-open breaker with no probe slots left
// rejects. A nil set allows everything.
func (s *BreakerSet) Allow(t ops.Target) bool {
	if s == nil || s.cfg.FailureThreshold < 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(t)
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if s.now().Before(b.openUntil) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes = s.cfg.HalfOpenProbes
		s.setStateGauge(t, BreakerHalfOpen)
		fallthrough
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
			return true
		}
		return false
	default:
		return true
	}
}

// Record feeds one attempt outcome into the target's breaker. A nil err
// is a success and closes the breaker. Cancellation and egd violations
// are not backend failures — the first is the caller's doing, the second
// the data's — and are ignored; overload errors are the governor's own
// shedding and are likewise ignored. Everything else (transient or
// fatal, including reclassified fragment timeouts) counts toward the
// failure threshold: a half-open breaker reopens immediately, a closed
// one trips once the threshold of consecutive failures is reached.
func (s *BreakerSet) Record(t ops.Target, err error) {
	if s == nil || s.cfg.FailureThreshold < 0 {
		return
	}
	if err != nil {
		if exlerr.IsCancellation(err) {
			return
		}
		if c := exlerr.ClassOf(err); c == exlerr.EgdViolation || c == exlerr.Overload {
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(t)
	if err == nil {
		if b.state != BreakerClosed || b.failures > 0 {
			b.state = BreakerClosed
			b.failures = 0
			b.probes = 0
			s.setStateGauge(t, BreakerClosed)
		}
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		s.trip(t, b)
	case BreakerClosed:
		b.failures++
		if b.failures >= s.cfg.FailureThreshold {
			s.trip(t, b)
		}
	case BreakerOpen:
		// A straggler attempt admitted before the trip; the breaker is
		// already open, just extend the cooldown from now.
		b.openUntil = s.now().Add(s.cfg.Cooldown)
	}
}

// trip opens the breaker. Caller holds s.mu.
func (s *BreakerSet) trip(t ops.Target, b *breaker) {
	b.state = BreakerOpen
	b.failures = 0
	b.probes = 0
	b.openUntil = s.now().Add(s.cfg.Cooldown)
	s.setStateGauge(t, BreakerOpen)
	s.metrics.Counter(obs.Label(obs.MetricBreakerTrips, "target", string(t))).Inc()
}

// State returns the target's current breaker state (an open breaker past
// its cooldown still reads open until the next Allow probes it).
func (s *BreakerSet) State(t ops.Target) BreakerState {
	if s == nil {
		return BreakerClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[t]
	if !ok {
		return BreakerClosed
	}
	return b.state
}

// Reset closes every breaker (tests, admin).
func (s *BreakerSet) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for t, b := range s.m {
		b.state = BreakerClosed
		b.failures = 0
		b.probes = 0
		s.setStateGauge(t, BreakerClosed)
	}
}
