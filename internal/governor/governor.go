// Package governor is EXLEngine's resource-governance and
// overload-protection layer: every run passes through it before touching
// the dispatcher or the store. It bounds three things the rest of the
// engine deliberately leaves unbounded —
//
//   - concurrency, through a weighted admission semaphore with a bounded
//     FIFO wait queue and deadline-aware shedding (a run whose context
//     deadline cannot be met by the estimated queue wait is rejected
//     immediately instead of queued to die);
//   - memory, through per-run and process-wide budgets charged at cube
//     materialization and released on run completion, so a run too large
//     for the budget is rejected or degraded rather than OOM-ing the
//     process;
//   - failure amplification, through per-backend circuit breakers (see
//     breaker.go) fed by the dispatch error taxonomy, so a flapping
//     backend is probed by one run instead of hammered by all of them.
//
// Every rejection is a typed exlerr.Overload error: callers can
// distinguish "the engine shed this" from "this failed" mechanically.
// Shutdown stops admission and drains in-flight runs, the first half of
// the engine's graceful-shutdown path.
package governor

import (
	"container/list"
	"context"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/obs"
)

// Sentinel shed errors. Each is wrapped in a typed exlerr.Overload error
// by Admit, so both errors.Is against the sentinel and
// exlerr.IsOverload work.
var (
	// ErrQueueFull is returned when the admission wait queue is at
	// capacity: the engine is past the load it is configured to absorb.
	ErrQueueFull = exlerr.Overloadf("governor: admission queue full")
	// ErrDeadline is returned when the run's context deadline cannot be
	// met by the estimated queue wait; rejecting immediately beats
	// queueing work that is already dead.
	ErrDeadline = exlerr.Overloadf("governor: deadline unmeetable given queue depth")
	// ErrShuttingDown is returned once Shutdown has been called: the
	// engine no longer admits work.
	ErrShuttingDown = exlerr.Overloadf("governor: engine is shutting down")
	// ErrMemoryBudget is returned when a run's estimated materialization
	// does not fit the per-run or process-wide memory budget.
	ErrMemoryBudget = exlerr.Overloadf("governor: memory budget exceeded")
)

// Config parameterizes a Governor. The zero value governs nothing: every
// run is admitted immediately, no budget is enforced, and the breakers
// use their defaults — but in-flight runs are still tracked, so Shutdown
// drains correctly even on an unconfigured engine.
type Config struct {
	// MaxConcurrent is the admission capacity in weight units (a plain
	// run has weight 1). Zero or negative: unlimited.
	MaxConcurrent int
	// MaxQueue bounds how many runs may wait for admission. Zero means
	// 4×MaxConcurrent; negative means no queue (full capacity rejects
	// immediately). Ignored when MaxConcurrent is unlimited.
	MaxQueue int
	// MemoryBudget is the process-wide materialization budget in bytes.
	// Zero or negative: unlimited.
	MemoryBudget int64
	// PerRunBudget bounds a single run's reservation. Zero means
	// MemoryBudget (a run may use the whole budget); it is only a
	// distinct bound when set below MemoryBudget.
	PerRunBudget int64
	// AvgRunHint seeds the run-duration estimate the deadline-aware
	// queue check uses before any run has completed. Zero: no estimate,
	// so early runs are only shed on already-expired deadlines.
	AvgRunHint time.Duration
	// Breaker configures the per-backend circuit breakers.
	Breaker BreakerConfig
}

// waiter is one queued admission request.
type waiter struct {
	weight int64
	ready  chan struct{} // closed on grant or rejection
	err    error         // set before close when rejected
}

// Governor implements admission control and memory budgeting. All
// methods are safe for concurrent use. A nil Governor admits everything
// and budgets nothing (every method no-ops), so callers need not branch.
type Governor struct {
	cfg      Config
	breakers *BreakerSet

	mu          chan struct{} // 1-buffered semaphore used as the state lock
	avail       int64         // remaining admission capacity
	inflight    int64         // admitted, unreleased weight (tracked even when unlimited)
	queue       *list.List    // of *waiter, FIFO
	draining    bool
	drained     chan struct{} // closed when draining and inflight reaches 0
	drainClosed bool          // guards the close (decided under the lock)

	memUsed int64 // reserved bytes against MemoryBudget
	memPeak int64

	// ewmaRun is the exponentially-weighted average run duration,
	// updated at Release; the deadline-aware queue check multiplies it
	// by the queue position to estimate wait. ewmaSamples counts the
	// completed runs folded in: until it reaches ewmaMinSamples the
	// estimate is considered cold and (absent an AvgRunHint) does not
	// shed anybody — one unrepresentative first run must not start
	// rejecting deadlines on its own.
	ewmaRun     time.Duration
	ewmaSamples int

	metrics *obs.Registry
	now     func() time.Time // injectable clock (tests)
}

// New builds a Governor from the config.
func New(cfg Config) *Governor {
	g := &Governor{
		cfg:     cfg,
		mu:      make(chan struct{}, 1),
		queue:   list.New(),
		drained: make(chan struct{}),
		ewmaRun: cfg.AvgRunHint,
		now:     time.Now,
	}
	if cfg.MaxConcurrent > 0 {
		g.avail = int64(cfg.MaxConcurrent)
	}
	g.breakers = newBreakerSet(cfg.Breaker, func() time.Time { return g.now() })
	return g
}

// SetMetrics attaches a metrics registry; admission, queue-depth, memory
// and breaker-state instruments accumulate there. Nil records nothing.
func (g *Governor) SetMetrics(m *obs.Registry) {
	if g == nil {
		return
	}
	g.metrics = m
	g.breakers.metrics = m
}

// Breakers returns the governor's per-backend circuit breakers (never
// nil on a non-nil governor).
func (g *Governor) Breakers() *BreakerSet {
	if g == nil {
		return nil
	}
	return g.breakers
}

// lock/unlock implement the state mutex. A channel-based mutex (instead
// of sync.Mutex) keeps the invariant simple: everything that mutates
// admission state holds it, including the grant path in release.
func (g *Governor) lock()   { g.mu <- struct{}{} }
func (g *Governor) unlock() { <-g.mu }

// maxQueue resolves the configured queue bound.
func (g *Governor) maxQueue() int {
	if g.cfg.MaxQueue < 0 {
		return 0
	}
	if g.cfg.MaxQueue == 0 {
		return 4 * g.cfg.MaxConcurrent
	}
	return g.cfg.MaxQueue
}

// limited reports whether admission capacity is bounded.
func (g *Governor) limited() bool { return g.cfg.MaxConcurrent > 0 }

// ewmaMinSamples is how many completed runs the duration EWMA needs
// before deadline shedding trusts it (unless AvgRunHint seeded it).
const ewmaMinSamples = 3

// estimatedWait predicts how long a new waiter at queue position pos
// (0-based) will wait for a slot, from the EWMA run duration. Zero when
// no estimate exists yet, or while the estimator is cold (fewer than
// ewmaMinSamples runs observed and no operator hint) — a zero estimate
// admits, so cold starts queue optimistically instead of shedding on
// the evidence of a single run. Only called when capacity is bounded
// (queueing cannot happen otherwise).
func (g *Governor) estimatedWait(pos int) time.Duration {
	if g.ewmaRun <= 0 {
		return 0
	}
	if g.cfg.AvgRunHint <= 0 && g.ewmaSamples < ewmaMinSamples {
		return 0
	}
	// Slots free at roughly capacity per ewmaRun; the waiter at position
	// pos is granted in wave pos/capacity + 1 (pessimistically assuming
	// every current holder is mid-run).
	waves := int64(pos)/int64(g.cfg.MaxConcurrent) + 1
	return time.Duration(waves) * g.ewmaRun
}

// Ticket is one admitted run's claim on the governor: an admission slot
// plus any memory reserved through it. Release returns both; it is
// idempotent and must be called exactly when the run completes (success
// or failure).
type Ticket struct {
	g        *Governor
	weight   int64
	queued   time.Duration
	admitted time.Time
	reserved int64
	released bool
}

// Admit blocks until the run is granted an admission slot, the context
// is done, or the governor sheds it. Weight scales the slot (weight<=0
// is treated as 1; a plain run is 1). Shed paths — queue full, deadline
// unmeetable, shutting down — return typed exlerr.Overload errors
// without waiting. A nil Governor admits immediately with a no-op
// ticket.
func (g *Governor) Admit(ctx context.Context, weight int64) (*Ticket, error) {
	if g == nil {
		return nil, nil
	}
	if weight <= 0 {
		weight = 1
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g.lock()
	if g.draining {
		g.unlock()
		g.metrics.Counter(obs.Label(obs.MetricShed, "reason", "shutdown")).Inc()
		return nil, ErrShuttingDown
	}
	if !g.limited() || (g.avail >= weight && g.queue.Len() == 0) {
		if g.limited() {
			g.avail -= weight
		}
		g.inflight += weight
		g.metrics.Gauge(obs.MetricInFlight).Set(g.inflight)
		g.unlock()
		g.metrics.Counter(obs.MetricAdmitted).Inc()
		return &Ticket{g: g, weight: weight, admitted: g.now()}, nil
	}
	// Must queue. Reject fast when the queue is full or the deadline
	// cannot be met by the estimated wait.
	if g.queue.Len() >= g.maxQueue() {
		g.unlock()
		g.metrics.Counter(obs.Label(obs.MetricShed, "reason", "queue_full")).Inc()
		return nil, ErrQueueFull
	}
	if dl, ok := ctx.Deadline(); ok {
		if wait := g.estimatedWait(g.queue.Len()); wait > 0 && g.now().Add(wait).After(dl) {
			g.unlock()
			g.metrics.Counter(obs.Label(obs.MetricShed, "reason", "deadline")).Inc()
			return nil, ErrDeadline
		}
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := g.queue.PushBack(w)
	g.metrics.Gauge(obs.MetricQueueDepth).Set(int64(g.queue.Len()))
	g.unlock()

	start := g.now()
	select {
	case <-w.ready:
		if w.err != nil {
			// Rejected while queued (shutdown).
			g.metrics.Counter(obs.Label(obs.MetricShed, "reason", "shutdown")).Inc()
			return nil, w.err
		}
		queued := g.now().Sub(start)
		g.metrics.Counter(obs.MetricAdmitted).Inc()
		g.metrics.Histogram(obs.MetricQueueWait).ObserveDuration(queued)
		return &Ticket{g: g, weight: weight, queued: queued, admitted: g.now()}, nil
	case <-ctx.Done():
		g.lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: the slot is ours,
			// give it back (or fail if the grant was a rejection).
			g.unlock()
			if w.err == nil {
				t := &Ticket{g: g, weight: weight, admitted: g.now()}
				t.Release()
			}
		default:
			g.queue.Remove(elem)
			g.metrics.Gauge(obs.MetricQueueDepth).Set(int64(g.queue.Len()))
			g.unlock()
		}
		return nil, ctx.Err()
	}
}

// grantLocked hands free capacity to queued waiters in FIFO order.
// Caller holds the state lock.
func (g *Governor) grantLocked() {
	for g.queue.Len() > 0 {
		w := g.queue.Front().Value.(*waiter)
		if w.weight > g.avail {
			return
		}
		g.queue.Remove(g.queue.Front())
		g.avail -= w.weight
		g.inflight += w.weight
		g.metrics.Gauge(obs.MetricInFlight).Set(g.inflight)
		close(w.ready)
	}
}

// Release returns the ticket's slot and memory reservation and feeds the
// run's hold time into the wait estimator. Idempotent; safe on a nil
// ticket (the nil-governor admission path).
func (t *Ticket) Release() {
	if t == nil || t.released {
		return
	}
	t.released = true
	g := t.g
	held := g.now().Sub(t.admitted)

	g.lock()
	if t.reserved > 0 {
		g.memUsed -= t.reserved
		g.metrics.Gauge(obs.MetricMemReserved).Set(g.memUsed)
	}
	g.inflight -= t.weight
	if g.limited() {
		g.avail += t.weight
		g.grantLocked()
		g.metrics.Gauge(obs.MetricQueueDepth).Set(int64(g.queue.Len()))
	}
	g.metrics.Gauge(obs.MetricInFlight).Set(g.inflight)
	// EWMA with alpha 1/4: responsive enough to track load shifts,
	// smooth enough that one outlier does not flip deadline shedding.
	// A negative hold (the injectable clock moved backwards, or system
	// time was stepped) is clamped to zero rather than folded in — a
	// negative average would silently disable wait estimation and could
	// never be ruled out by the arithmetic below.
	if held < 0 {
		held = 0
	}
	g.ewmaSamples++
	if g.ewmaRun == 0 {
		g.ewmaRun = held
	} else {
		g.ewmaRun += (held - g.ewmaRun) / 4
	}
	doClose := g.draining && g.inflight == 0 && !g.drainClosed
	if doClose {
		g.drainClosed = true
	}
	g.unlock()
	if doClose {
		close(g.drained)
	}
}

// Queued returns how long the run waited for admission.
func (t *Ticket) Queued() time.Duration {
	if t == nil {
		return 0
	}
	return t.queued
}

// Reserved returns the bytes currently reserved by this ticket.
func (t *Ticket) Reserved() int64 {
	if t == nil {
		return 0
	}
	return t.reserved
}

// Reserve charges bytes against the per-run and process-wide memory
// budgets, on top of whatever the ticket already holds. It returns
// ErrMemoryBudget (typed Overload) when the charge does not fit, leaving
// the existing reservation unchanged. A nil ticket accepts everything.
func (t *Ticket) Reserve(bytes int64) error {
	if t == nil || bytes <= 0 {
		return nil
	}
	g := t.g
	perRun := g.cfg.PerRunBudget
	if perRun <= 0 {
		perRun = g.cfg.MemoryBudget
	}
	g.lock()
	defer g.unlock()
	if perRun > 0 && t.reserved+bytes > perRun {
		return ErrMemoryBudget
	}
	if g.cfg.MemoryBudget > 0 && g.memUsed+bytes > g.cfg.MemoryBudget {
		return ErrMemoryBudget
	}
	t.reserved += bytes
	g.memUsed += bytes
	if g.memUsed > g.memPeak {
		g.memPeak = g.memUsed
		g.metrics.Gauge(obs.MetricMemPeak).Set(g.memPeak)
	}
	g.metrics.Gauge(obs.MetricMemReserved).Set(g.memUsed)
	return nil
}

// MemUsed returns the bytes currently reserved across all runs.
func (g *Governor) MemUsed() int64 {
	if g == nil {
		return 0
	}
	g.lock()
	defer g.unlock()
	return g.memUsed
}

// MemPeak returns the reservation high-water mark.
func (g *Governor) MemPeak() int64 {
	if g == nil {
		return 0
	}
	g.lock()
	defer g.unlock()
	return g.memPeak
}

// InFlight returns the admitted, unreleased weight.
func (g *Governor) InFlight() int64 {
	if g == nil {
		return 0
	}
	g.lock()
	defer g.unlock()
	return g.inflight
}

// Draining reports whether Shutdown has been initiated.
func (g *Governor) Draining() bool {
	if g == nil {
		return false
	}
	g.lock()
	defer g.unlock()
	return g.draining
}

// Shutdown stops admission — every queued waiter and every later Admit
// is rejected with ErrShuttingDown — and waits for in-flight runs to
// release their tickets. It returns nil once drained, or the context's
// error if the deadline expires first (in-flight runs keep running; the
// caller may retry Shutdown or abandon them). Idempotent and safe to
// call concurrently; a nil Governor returns nil.
func (g *Governor) Shutdown(ctx context.Context) error {
	if g == nil {
		return nil
	}
	g.lock()
	g.draining = true
	for g.queue.Len() > 0 {
		w := g.queue.Remove(g.queue.Front()).(*waiter)
		w.err = ErrShuttingDown
		close(w.ready)
	}
	g.metrics.Gauge(obs.MetricQueueDepth).Set(0)
	doClose := g.inflight == 0 && !g.drainClosed
	if doClose {
		g.drainClosed = true
	}
	g.unlock()
	if doClose {
		close(g.drained)
	}
	select {
	case <-g.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
