package governor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// fakeClock is a settable clock for breaker cooldown tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreakers(cfg BreakerConfig) (*BreakerSet, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return newBreakerSet(cfg, clk.now), clk
}

var errBackend = exlerr.Transientf("backend down")

// TestBreakerTripsAndRecovers drives the full closed → open → half-open
// → closed cycle.
func TestBreakerTripsAndRecovers(t *testing.T) {
	s, clk := newTestBreakers(BreakerConfig{FailureThreshold: 3, Cooldown: time.Second})
	tgt := ops.TargetSQL

	for i := 0; i < 2; i++ {
		if !s.Allow(tgt) {
			t.Fatalf("closed breaker rejected attempt %d", i)
		}
		s.Record(tgt, errBackend)
	}
	if s.State(tgt) != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", s.State(tgt))
	}
	s.Record(tgt, errBackend) // third consecutive failure trips
	if s.State(tgt) != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", s.State(tgt))
	}
	if s.Allow(tgt) {
		t.Fatal("open breaker allowed an attempt inside the cooldown")
	}

	clk.advance(1100 * time.Millisecond)
	if !s.Allow(tgt) {
		t.Fatal("breaker past cooldown rejected the probe")
	}
	if s.State(tgt) != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", s.State(tgt))
	}
	if s.Allow(tgt) {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	s.Record(tgt, nil) // probe succeeds
	if s.State(tgt) != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", s.State(tgt))
	}
	if !s.Allow(tgt) {
		t.Fatal("recovered breaker rejected an attempt")
	}
}

// TestBreakerFailedProbeReopens: a failed half-open probe reopens the
// breaker for a fresh cooldown.
func TestBreakerFailedProbeReopens(t *testing.T) {
	s, clk := newTestBreakers(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	tgt := ops.TargetFrame
	s.Record(tgt, errBackend)
	if s.State(tgt) != BreakerOpen {
		t.Fatal("threshold-1 breaker did not trip on first failure")
	}
	clk.advance(1100 * time.Millisecond)
	if !s.Allow(tgt) {
		t.Fatal("probe rejected after cooldown")
	}
	s.Record(tgt, errBackend)
	if s.State(tgt) != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", s.State(tgt))
	}
	if s.Allow(tgt) {
		t.Fatal("reopened breaker allowed an attempt before the new cooldown")
	}
	clk.advance(1100 * time.Millisecond)
	if !s.Allow(tgt) {
		t.Fatal("second probe rejected after second cooldown")
	}
}

// TestBreakerIgnoresNonBackendFailures: cancellation, egd violations and
// overload sheds must not trip a breaker — they say nothing about the
// backend's health.
func TestBreakerIgnoresNonBackendFailures(t *testing.T) {
	s, _ := newTestBreakers(BreakerConfig{FailureThreshold: 1})
	tgt := ops.TargetETL
	s.Record(tgt, errors.New("ctx: "+"ignored?")) // plain error: counts (fatal)
	if s.State(tgt) != BreakerOpen {
		t.Fatal("plain (fatal-classified) error must count")
	}
	s.Reset()
	for _, err := range []error{
		wrapCancel(),
		exlerr.New(exlerr.EgdViolation, errors.New("dup measure")),
		exlerr.Overloadf("shed"),
	} {
		s.Record(tgt, err)
	}
	if s.State(tgt) != BreakerClosed {
		t.Fatalf("state = %v after non-backend failures, want closed", s.State(tgt))
	}
}

func wrapCancel() error {
	return exlerr.New(exlerr.Transient, context.Canceled)
}

// TestBreakerSuccessResetsFailureStreak: the threshold counts
// consecutive failures, so interleaved successes keep the breaker
// closed.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	s, _ := newTestBreakers(BreakerConfig{FailureThreshold: 3})
	tgt := ops.TargetSQL
	for i := 0; i < 10; i++ {
		s.Record(tgt, errBackend)
		s.Record(tgt, errBackend)
		s.Record(tgt, nil)
	}
	if s.State(tgt) != BreakerClosed {
		t.Fatalf("state = %v, want closed (no 3-failure streak occurred)", s.State(tgt))
	}
}

// TestBreakerDisabled: a negative threshold disables the breakers.
func TestBreakerDisabled(t *testing.T) {
	s, _ := newTestBreakers(BreakerConfig{FailureThreshold: -1})
	tgt := ops.TargetChase
	for i := 0; i < 100; i++ {
		s.Record(tgt, errBackend)
	}
	if !s.Allow(tgt) || s.State(tgt) != BreakerClosed {
		t.Fatal("disabled breakers must always allow")
	}
}

// TestBreakerMetrics: trips and state transitions land in the registry.
func TestBreakerMetrics(t *testing.T) {
	s, clk := newTestBreakers(BreakerConfig{FailureThreshold: 1, Cooldown: time.Second})
	mx := obs.NewRegistry()
	s.metrics = mx
	tgt := ops.TargetSQL
	s.Record(tgt, errBackend)
	if got := mx.Counter(obs.Label(obs.MetricBreakerTrips, "target", "sql")).Value(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}
	if got := mx.Gauge(obs.Label(obs.MetricBreakerState, "target", "sql")).Value(); got != int64(BreakerOpen) {
		t.Fatalf("state gauge = %d, want open", got)
	}
	clk.advance(2 * time.Second)
	s.Allow(tgt)
	s.Record(tgt, nil)
	if got := mx.Gauge(obs.Label(obs.MetricBreakerState, "target", "sql")).Value(); got != int64(BreakerClosed) {
		t.Fatalf("state gauge after recovery = %d, want closed", got)
	}
}

// TestNilBreakerSet: nil set allows everything and records nothing.
func TestNilBreakerSet(t *testing.T) {
	var s *BreakerSet
	if !s.Allow(ops.TargetSQL) {
		t.Fatal("nil set must allow")
	}
	s.Record(ops.TargetSQL, errBackend)
	if s.State(ops.TargetSQL) != BreakerClosed {
		t.Fatal("nil set state must read closed")
	}
	s.Reset()
	s.SetClock(time.Now)
}
