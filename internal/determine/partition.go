package determine

import (
	"exlengine/internal/exl"
	"exlengine/internal/ops"
)

// Subgraph is a maximal run of consecutive plan statements assigned to the
// same target system. Each subgraph is "coherently delegated to a single
// target system" (Section 6).
type Subgraph struct {
	Target ops.Target
	Stmts  []StmtRef
}

// Assigner picks the execution target for one statement.
type Assigner func(StmtRef) ops.Target

// Partition splits a plan into per-target subgraphs, greedily grouping
// consecutive statements with the same assigned target so each dispatch
// carries as much work as possible.
func Partition(plan []StmtRef, assign Assigner) []Subgraph {
	var out []Subgraph
	for _, ref := range plan {
		target := assign(ref)
		if n := len(out); n > 0 && out[n-1].Target == target {
			out[n-1].Stmts = append(out[n-1].Stmts, ref)
			continue
		}
		out = append(out, Subgraph{Target: target, Stmts: []StmtRef{ref}})
	}
	return out
}

// PartitionByComponent splits the plan by connected component of the
// dependency graph first and by target second: statements of independent
// programs land in separate subgraphs even when they share a target, so a
// parallel dispatcher can run them concurrently (the paper's "applying
// parallelization and optimization patterns", Section 6). Within a
// component, consecutive same-target statements still group.
func PartitionByComponent(plan []StmtRef, assign Assigner, g *Graph) []Subgraph {
	// Union-find over the plan's derived cubes: two statements are in the
	// same component when one consumes the other's output (directly or
	// transitively through plan members).
	parent := make(map[string]string, len(plan))
	inPlan := make(map[string]bool, len(plan))
	for _, ref := range plan {
		parent[ref.Cube()] = ref.Cube()
		inPlan[ref.Cube()] = true
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for _, ref := range plan {
		for _, op := range g.deps[ref.Cube()] {
			if inPlan[op] {
				union(ref.Cube(), op)
			}
		}
	}

	type key struct {
		component string
		target    ops.Target
	}
	var out []Subgraph
	index := make(map[key]int)
	lastKey := make(map[string]key) // component -> key of its latest subgraph
	for _, ref := range plan {
		k := key{component: find(ref.Cube()), target: assign(ref)}
		// Group with an existing subgraph only when it is the component's
		// most recent one; otherwise execution order within the component
		// would be violated.
		if i, ok := index[k]; ok && lastKey[k.component] == k {
			out[i].Stmts = append(out[i].Stmts, ref)
			continue
		}
		index[k] = len(out)
		lastKey[k.component] = k
		out = append(out, Subgraph{Target: k.target, Stmts: []StmtRef{ref}})
	}
	return out
}

// AssignByPreference is the default Assigner: it collects the operators of
// the statement and picks the first target in the dominant operator's
// preference list that supports every operator involved — the technical
// metadata rule of Section 6 ("the most suitable target system … according
// to the specificity of the involved operators").
func AssignByPreference(ref StmtRef) ops.Target {
	opNames := stmtOps(ref.Stmt.Expr, nil)
	if len(opNames) == 0 {
		return ops.TargetETL // a bare copy statement
	}
	dominant := dominantOp(opNames)
	for _, t := range ops.Preference(dominant) {
		if supportsAll(t, opNames) {
			return t
		}
	}
	return ops.TargetChase // the chase supports everything
}

// FixedAssigner assigns every statement to one target, for forced runs.
func FixedAssigner(t ops.Target) Assigner {
	return func(StmtRef) ops.Target { return t }
}

// stmtOps collects the operator names used by an expression.
func stmtOps(e *exl.AExpr, out []string) []string {
	switch e.Kind {
	case exl.ABinary, exl.APadVector, exl.AScalarFunc, exl.AAgg, exl.ABlackBox:
		if e.Op != "" && !containsStr(out, e.Op) {
			out = append(out, e.Op)
		}
	case exl.AShift:
		if !containsStr(out, "shift") {
			out = append(out, "shift")
		}
	}
	switch e.Kind {
	case exl.ABinary, exl.APadVector:
		out = stmtOps(e.X, out)
		out = stmtOps(e.Y, out)
	case exl.AScalarFunc, exl.AShift, exl.AAgg, exl.ABlackBox:
		out = stmtOps(e.Arg, out)
	}
	return out
}

// dominantOp picks the operator that should drive the target choice: a
// black box if present, else an aggregation, else a shift, else the first
// operator.
func dominantOp(names []string) string {
	best := names[0]
	rank := func(n string) int {
		info, ok := ops.Lookup(n)
		if !ok {
			return 0
		}
		switch info.Class {
		case ops.ClassBlackBox:
			return 3
		case ops.ClassAggregation:
			return 2
		case ops.ClassShift:
			return 1
		default:
			return 0
		}
	}
	for _, n := range names[1:] {
		if rank(n) > rank(best) {
			best = n
		}
	}
	return best
}

func supportsAll(t ops.Target, names []string) bool {
	for _, n := range names {
		if !ops.Supports(t, n) {
			return false
		}
	}
	return true
}
