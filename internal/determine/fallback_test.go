package determine

import (
	"testing"

	"exlengine/internal/ops"
)

// subgraphFor partitions the program's full plan with the default assigner
// and returns the subgraph computing the named cube.
func subgraphFor(t *testing.T, src, cube string) Subgraph {
	t.Helper()
	g := build(t, map[string]string{"p": src})
	for _, sub := range Partition(g.FullPlan(), AssignByPreference) {
		for _, ref := range sub.Stmts {
			if ref.Cube() == cube {
				return sub
			}
		}
	}
	t.Fatalf("no subgraph computes %s", cube)
	return Subgraph{}
}

func TestFallbackOrderArithmetic(t *testing.T) {
	sub := subgraphFor(t, "cube S(t: year) measure v\nA := S * 2", "A")
	if sub.Target != ops.TargetETL {
		t.Fatalf("primary = %v, want etl", sub.Target)
	}
	got := FallbackOrder(sub)
	want := []ops.Target{ops.TargetSQL, ops.TargetFrame, ops.TargetChase}
	if len(got) != len(want) {
		t.Fatalf("fallbacks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallbacks = %v, want %v", got, want)
		}
	}
}

func TestFallbackOrderBlackBoxSkipsETL(t *testing.T) {
	// movavg is a black-box operator: the ETL streamer has no native
	// whole-series step, so degradation must never route it there.
	sub := subgraphFor(t, "cube S(t: month) measure v\nB := movavg(S, 3)", "B")
	if sub.Target != ops.TargetFrame {
		t.Fatalf("primary = %v, want frame", sub.Target)
	}
	got := FallbackOrder(sub)
	for _, tg := range got {
		if tg == ops.TargetETL {
			t.Errorf("black-box subgraph offered unsupported etl fallback: %v", got)
		}
		if tg == sub.Target {
			t.Errorf("fallback order contains the failing primary: %v", got)
		}
	}
	if len(got) == 0 || got[len(got)-1] != ops.TargetChase {
		t.Errorf("chase must be the universal last resort: %v", got)
	}
}

func TestFallbackOrderVectorSkipsSQL(t *testing.T) {
	// Padded vectorial operators have no outer-join translation in the
	// emitted SQL dialect.
	sub := subgraphFor(t, `
cube S(t: year) measure v
cube R(t: year) measure v
C := vsum0(S, R)
`, "C")
	got := FallbackOrder(sub)
	for _, tg := range got {
		if tg == ops.TargetSQL {
			t.Errorf("vector subgraph offered unsupported sql fallback: %v", got)
		}
	}
	if len(got) == 0 || got[len(got)-1] != ops.TargetChase {
		t.Errorf("chase must be last: %v", got)
	}
}

func TestFallbackOrderNeverRepeatsAndExcludesPrimary(t *testing.T) {
	g := build(t, map[string]string{"p": `
cube S(t: month) measure v
A := S * 2
B := movavg(A, 3)
C := sum(B, group by t)
D := shift(C, 1)
`})
	for _, sub := range Partition(g.FullPlan(), AssignByPreference) {
		got := FallbackOrder(sub)
		seen := map[ops.Target]bool{}
		for _, tg := range got {
			if tg == sub.Target {
				t.Errorf("subgraph %v: fallback contains primary: %v", sub.Target, got)
			}
			if seen[tg] {
				t.Errorf("subgraph %v: duplicate fallback: %v", sub.Target, got)
			}
			seen[tg] = true
		}
		if len(got) == 0 {
			t.Errorf("subgraph %v: no fallback at all", sub.Target)
		}
	}
}

func TestFallbackOrderChasePrimaryExcluded(t *testing.T) {
	sub := subgraphFor(t, "cube S(t: year) measure v\nA := S * 2", "A")
	sub.Target = ops.TargetChase // forced chase run that failed
	got := FallbackOrder(sub)
	for _, tg := range got {
		if tg == ops.TargetChase {
			t.Errorf("chase primary re-offered as fallback: %v", got)
		}
	}
	if len(got) == 0 {
		t.Error("degrading away from the chase must still offer the real engines")
	}
}
