// Package determine implements EXLEngine's determination engine (Section
// 6): it maintains the global dependency DAG over all cubes of all
// registered programs, detects which derived cubes must be recalculated
// when elementary cubes change, builds the dynamic EXL program to run
// (topologically sorted), and partitions it into subgraphs, each delegated
// to the single most suitable target system according to the technical
// metadata (the operator-support and preference tables of internal/ops).
package determine

import (
	"fmt"
	"sort"

	"exlengine/internal/exl"
	"exlengine/internal/model"
)

// StmtRef identifies one derived-cube definition within the registered
// program set.
type StmtRef struct {
	Program string
	Stmt    *exl.AStmt
}

// Cube returns the derived cube the statement defines.
func (r StmtRef) Cube() string { return r.Stmt.Lhs }

// Graph is the global cube-dependency DAG: nodes are cubes, and there is
// an edge from A to C when C is calculated from A by some statement.
type Graph struct {
	defs       map[string]StmtRef  // derived cube -> defining statement
	deps       map[string][]string // cube -> operand cubes
	consumers  map[string][]string // cube -> cubes derived from it
	elementary map[string]bool
	order      []string // all derived cubes, topologically sorted
	schemas    map[string]model.Schema
}

// Build constructs the graph from a set of analyzed programs (keyed by
// program name, iterated deterministically). A cube may be derived by at
// most one statement across all programs; a cube derived in one program
// may feed statements of another.
func Build(programs map[string]*exl.Analyzed) (*Graph, error) {
	g := &Graph{
		defs:       make(map[string]StmtRef),
		deps:       make(map[string][]string),
		consumers:  make(map[string][]string),
		elementary: make(map[string]bool),
		schemas:    make(map[string]model.Schema),
	}
	names := make([]string, 0, len(programs))
	for n := range programs {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, pn := range names {
		a := programs[pn]
		for _, s := range a.Stmts {
			if prev, dup := g.defs[s.Lhs]; dup {
				return nil, fmt.Errorf("determine: cube %s is derived by both %s and %s", s.Lhs, prev.Program, pn)
			}
			g.defs[s.Lhs] = StmtRef{Program: pn, Stmt: s}
			operands := operandCubes(s.Expr, nil)
			g.deps[s.Lhs] = operands
			for _, op := range operands {
				g.consumers[op] = append(g.consumers[op], s.Lhs)
			}
		}
		for name, sch := range a.Schemas {
			if old, ok := g.schemas[name]; ok && !old.SameDims(sch) {
				return nil, fmt.Errorf("determine: cube %s has conflicting schemas across programs (%s vs %s)", name, old, sch)
			}
			g.schemas[name] = sch
		}
	}
	// Elementary = referenced or declared but never derived.
	for name := range g.schemas {
		if _, derived := g.defs[name]; !derived {
			g.elementary[name] = true
		}
	}
	// Any operand of a statement must be elementary or derived somewhere.
	for cube, operands := range g.deps {
		for _, op := range operands {
			if !g.elementary[op] {
				if _, ok := g.defs[op]; !ok {
					return nil, fmt.Errorf("determine: cube %s (operand of %s) is neither elementary nor derived", op, cube)
				}
			}
		}
	}
	order, err := g.topoSort()
	if err != nil {
		return nil, err
	}
	g.order = order
	return g, nil
}

// operandCubes collects the cube literals of an expression.
func operandCubes(e *exl.AExpr, out []string) []string {
	switch e.Kind {
	case exl.ACube:
		if !containsStr(out, e.Cube) {
			out = append(out, e.Cube)
		}
	case exl.ABinary, exl.APadVector:
		out = operandCubes(e.X, out)
		out = operandCubes(e.Y, out)
	case exl.AScalarFunc, exl.AShift, exl.AAgg, exl.ABlackBox:
		out = operandCubes(e.Arg, out)
	}
	return out
}

// topoSort orders all derived cubes so every cube follows its operands
// (Kahn's algorithm with deterministic tie-breaking). Cross-program cycles
// are reported as errors: within a program acyclicity holds by
// construction, but two programs could feed each other.
func (g *Graph) topoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.defs))
	for cube, operands := range g.deps {
		n := 0
		for _, op := range operands {
			if !g.elementary[op] {
				n++
			}
		}
		indeg[cube] = n
	}
	var ready []string
	for cube, n := range indeg {
		if n == 0 {
			ready = append(ready, cube)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		cube := ready[0]
		ready = ready[1:]
		order = append(order, cube)
		var newly []string
		for _, c := range g.consumers[cube] {
			indeg[c]--
			if indeg[c] == 0 {
				newly = append(newly, c)
			}
		}
		sort.Strings(newly)
		ready = append(ready, newly...)
		sort.Strings(ready)
	}
	if len(order) != len(g.defs) {
		return nil, fmt.Errorf("determine: dependency cycle across programs involving %d cube(s)", len(g.defs)-len(order))
	}
	return order, nil
}

// Elementary reports whether the cube is a leaf of the graph.
func (g *Graph) Elementary(name string) bool { return g.elementary[name] }

// Schemas returns the merged cube schemas of all programs.
func (g *Graph) Schemas() map[string]model.Schema { return g.schemas }

// Derived returns all derived cubes in topological order.
func (g *Graph) Derived() []string { return append([]string(nil), g.order...) }

// Deps returns the operand cubes a derived cube is calculated from.
func (g *Graph) Deps(cube string) []string {
	return append([]string(nil), g.deps[cube]...)
}

// Def returns the statement deriving the cube.
func (g *Graph) Def(cube string) (StmtRef, bool) {
	r, ok := g.defs[cube]
	return r, ok
}

// Affected performs the determination step: given the cubes whose values
// changed (usually elementary leaves), it returns the derived cubes that
// must be recalculated, in topological order — the dynamic EXL program of
// Section 6.
func (g *Graph) Affected(changed []string) ([]StmtRef, error) {
	seen := make(map[string]bool)
	var visit func(string)
	visit = func(cube string) {
		for _, c := range g.consumers[cube] {
			if !seen[c] {
				seen[c] = true
				visit(c)
			}
		}
	}
	for _, c := range changed {
		if _, isDerived := g.defs[c]; !isDerived && !g.elementary[c] {
			return nil, fmt.Errorf("determine: unknown cube %s", c)
		}
		if _, isDerived := g.defs[c]; isDerived {
			// Recalculating a derived cube also recalculates it itself.
			seen[c] = true
		}
		visit(c)
	}
	var plan []StmtRef
	for _, cube := range g.order {
		if seen[cube] {
			plan = append(plan, g.defs[cube])
		}
	}
	return plan, nil
}

// FullPlan returns the plan recalculating every derived cube.
func (g *Graph) FullPlan() []StmtRef {
	plan := make([]StmtRef, 0, len(g.order))
	for _, cube := range g.order {
		plan = append(plan, g.defs[cube])
	}
	return plan
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
