package determine

import (
	"fmt"
	"strings"
	"testing"

	"exlengine/internal/exl"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

func analyze(t *testing.T, src string) *exl.Analyzed {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func build(t *testing.T, programs map[string]string) *Graph {
	t.Helper()
	as := make(map[string]*exl.Analyzed, len(programs))
	for n, src := range programs {
		as[n] = analyze(t, src)
	}
	g, err := Build(as)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func cubes(plan []StmtRef) []string {
	out := make([]string, len(plan))
	for i, r := range plan {
		out[i] = r.Cube()
	}
	return out
}

func TestGraphGDP(t *testing.T) {
	g := build(t, map[string]string{"gdp": workload.GDPProgram})
	if !g.Elementary("PDR") || !g.Elementary("RGDPPC") || g.Elementary("GDP") {
		t.Error("elementary classification")
	}
	order := g.Derived()
	want := []string{"PQR", "RGDP", "GDP", "GDPT", "PCHNG"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("topo order = %v", order)
	}
	if ref, ok := g.Def("GDP"); !ok || ref.Program != "gdp" {
		t.Errorf("Def(GDP) = %+v, %v", ref, ok)
	}
	if _, ok := g.Def("PDR"); ok {
		t.Error("elementary cube has no definition")
	}
}

func TestAffected(t *testing.T) {
	g := build(t, map[string]string{"gdp": workload.GDPProgram})

	// Changing RGDPPC affects RGDP and everything downstream, but not PQR.
	plan, err := g.Affected([]string{"RGDPPC"})
	if err != nil {
		t.Fatal(err)
	}
	got := cubes(plan)
	if strings.Join(got, ",") != "RGDP,GDP,GDPT,PCHNG" {
		t.Errorf("affected by RGDPPC = %v", got)
	}

	// Changing PDR affects the whole chain.
	plan, _ = g.Affected([]string{"PDR"})
	if len(plan) != 5 {
		t.Errorf("affected by PDR = %v", cubes(plan))
	}

	// Asking to recalculate a derived cube includes it and its downstream.
	plan, _ = g.Affected([]string{"GDP"})
	if strings.Join(cubes(plan), ",") != "GDP,GDPT,PCHNG" {
		t.Errorf("affected by GDP = %v", cubes(plan))
	}

	// Unknown cube.
	if _, err := g.Affected([]string{"NOPE"}); err == nil {
		t.Error("unknown cube must fail")
	}

	// FullPlan covers everything.
	if len(g.FullPlan()) != 5 {
		t.Error("FullPlan")
	}
}

func TestCrossProgramGraph(t *testing.T) {
	// Program B consumes a cube derived by program A. The analyzer of B
	// sees GDP as external.
	progA := workload.GDPProgram
	srcB := "GDP2 := GDP * 2"
	aA := analyze(t, progA)
	progB, err := exl.Parse(srcB)
	if err != nil {
		t.Fatal(err)
	}
	// Program B is analyzed against program A's schemas as externals.
	aB, err := exl.Analyze(progB, aA.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(map[string]*exl.Analyzed{"a": aA, "b": aB})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := g.Affected([]string{"RGDPPC"})
	if err != nil {
		t.Fatal(err)
	}
	got := cubes(plan)
	if !containsStr(got, "GDP2") {
		t.Errorf("cross-program propagation missing GDP2: %v", got)
	}
	// GDP2 must come after GDP.
	gi, g2i := -1, -1
	for i, c := range got {
		if c == "GDP" {
			gi = i
		}
		if c == "GDP2" {
			g2i = i
		}
	}
	if gi < 0 || g2i < gi {
		t.Errorf("order violated: %v", got)
	}
}

func TestDuplicateDerivedAcrossPrograms(t *testing.T) {
	aA := analyze(t, "cube X(t: year)\nY := X * 1")
	aB := analyze(t, "cube X2(t: year)\nY := X2 * 2")
	if _, err := Build(map[string]*exl.Analyzed{"a": aA, "b": aB}); err == nil {
		t.Error("duplicate derived cube must fail")
	}
}

func TestConflictingSchemasAcrossPrograms(t *testing.T) {
	aA := analyze(t, "cube X(t: year)\nA1 := X * 1")
	aB := analyze(t, "cube X(t: year, r: string)\nB1 := X * 2")
	if _, err := Build(map[string]*exl.Analyzed{"a": aA, "b": aB}); err == nil {
		t.Error("conflicting cube schemas must fail")
	}
}

func TestPartitionByPreference(t *testing.T) {
	g := build(t, map[string]string{"gdp": workload.GDPProgram})
	subs := Partition(g.FullPlan(), AssignByPreference)
	if len(subs) < 2 {
		t.Fatalf("expected several subgraphs, got %+v", subs)
	}
	// Reassemble and check per-cube assignment.
	byCube := make(map[string]ops.Target)
	for _, s := range subs {
		for _, ref := range s.Stmts {
			byCube[ref.Cube()] = s.Target
		}
	}
	// Aggregations prefer SQL; the stl black box prefers the frame engine;
	// PCHNG (shift + arithmetic) prefers SQL.
	if byCube["PQR"] != ops.TargetSQL || byCube["GDP"] != ops.TargetSQL {
		t.Errorf("aggregation assignment = %v", byCube)
	}
	if byCube["GDPT"] != ops.TargetFrame {
		t.Errorf("blackbox assignment = %v", byCube)
	}
	if byCube["PCHNG"] != ops.TargetSQL {
		t.Errorf("shift assignment = %v", byCube)
	}
	// Consecutive same-target statements group.
	for i := 1; i < len(subs); i++ {
		if subs[i].Target == subs[i-1].Target {
			t.Error("adjacent subgraphs with equal targets must merge")
		}
	}
}

func TestFixedAssigner(t *testing.T) {
	g := build(t, map[string]string{"gdp": workload.GDPProgram})
	subs := Partition(g.FullPlan(), FixedAssigner(ops.TargetChase))
	if len(subs) != 1 || subs[0].Target != ops.TargetChase || len(subs[0].Stmts) != 5 {
		t.Errorf("fixed partition = %+v", subs)
	}
}

func TestAssignRespectsSupport(t *testing.T) {
	// A statement mixing a black box is never assigned to ETL even if
	// arithmetic dominates elsewhere; here stl dominates and prefers frame.
	g := build(t, map[string]string{"p": "cube A(t: quarter)\nB := stl_t(A) * 2"})
	subs := Partition(g.FullPlan(), AssignByPreference)
	if subs[0].Target == ops.TargetETL {
		t.Errorf("black-box statement assigned to ETL: %+v", subs)
	}
}

// TestDeepCrossProgramChain: ten programs, each deriving from the previous
// one's output; a change at the root propagates through all of them in
// order.
func TestDeepCrossProgramChain(t *testing.T) {
	as := make(map[string]*exl.Analyzed)
	schemas := analyze(t, "cube C00(t: year)\nC01 := C00 * 2").Schemas
	as["p01"] = analyze(t, "cube C00(t: year)\nC01 := C00 * 2")
	for i := 2; i <= 10; i++ {
		src := fmt.Sprintf("C%02d := C%02d + 1", i, i-1)
		prog, err := exl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		a, err := exl.Analyze(prog, schemas)
		if err != nil {
			t.Fatal(err)
		}
		for n, s := range a.Schemas {
			schemas[n] = s
		}
		as[fmt.Sprintf("p%02d", i)] = a
	}
	g, err := Build(as)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := g.Affected([]string{"C00"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 10 {
		t.Fatalf("plan = %v", cubes(plan))
	}
	for i, ref := range plan {
		want := fmt.Sprintf("C%02d", i+1)
		if ref.Cube() != want {
			t.Errorf("plan[%d] = %s, want %s", i, ref.Cube(), want)
		}
	}
	// A change in the middle touches only the downstream half.
	plan, _ = g.Affected([]string{"C05"})
	if len(plan) != 6 { // C05..C10
		t.Errorf("mid-chain plan = %v", cubes(plan))
	}
}
