package determine

import (
	"fmt"
	"testing"

	"exlengine/internal/exl"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

// chainCatalog builds n independent A->B->C chains as separate programs.
func chainCatalog(t *testing.T, n int) *Graph {
	t.Helper()
	as := make(map[string]*exl.Analyzed, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`
cube S%02d(t: month) measure v
A%02d := S%02d * 2
B%02d := movavg(A%02d, 3)
C%02d := shift(B%02d, 1)
`, i, i, i, i, i, i, i)
		as[fmt.Sprintf("p%02d", i)] = analyze(t, src)
	}
	g, err := Build(as)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionByComponentSeparatesPrograms(t *testing.T) {
	g := chainCatalog(t, 4)
	plan := g.FullPlan()

	// Greedy consecutive partitioning merges across programs: the plan is
	// A00..A03, B00..B03, C00..C03 and all A statements share a target.
	greedy := Partition(plan, AssignByPreference)
	if len(greedy) != 3 {
		t.Fatalf("greedy partition = %d subgraphs, want 3", len(greedy))
	}

	// Component-aware partitioning keeps the 4 programs separate: three
	// per-target fragments per chain.
	subs := PartitionByComponent(plan, AssignByPreference, g)
	if len(subs) != 12 {
		t.Fatalf("component partition = %d subgraphs, want 12: %+v", len(subs), subs)
	}
	// Every subgraph's statements belong to one chain.
	for _, s := range subs {
		suffix := s.Stmts[0].Cube()[1:]
		for _, ref := range s.Stmts {
			if ref.Cube()[1:] != suffix {
				t.Errorf("subgraph mixes chains: %+v", s.Stmts)
			}
		}
	}
	// Plan coverage is preserved, in order per component.
	total := 0
	for _, s := range subs {
		total += len(s.Stmts)
	}
	if total != len(plan) {
		t.Errorf("coverage = %d, want %d", total, len(plan))
	}
}

func TestPartitionByComponentRespectsOrderWithinComponent(t *testing.T) {
	// One chain alternating targets: etl (mul), frame (movavg), etl-ish
	// shift -> sql. A later same-target statement must NOT merge into an
	// earlier subgraph across an intervening dependency.
	g := build(t, map[string]string{"p": `
cube S(t: month) measure v
A := S * 2
B := movavg(A, 3)
C := B * 2
`})
	subs := PartitionByComponent(g.FullPlan(), AssignByPreference, g)
	if len(subs) != 3 {
		t.Fatalf("subgraphs = %+v", subs)
	}
	if subs[0].Stmts[0].Cube() != "A" || subs[1].Stmts[0].Cube() != "B" || subs[2].Stmts[0].Cube() != "C" {
		t.Errorf("order violated: %+v", subs)
	}
	if subs[0].Target != ops.TargetETL || subs[1].Target != ops.TargetFrame || subs[2].Target != ops.TargetETL {
		t.Errorf("targets = %v %v %v", subs[0].Target, subs[1].Target, subs[2].Target)
	}
}

func TestPartitionByComponentSingleProgramMatchesGreedy(t *testing.T) {
	g := build(t, map[string]string{"gdp": workload.GDPProgram})
	plan := g.FullPlan()
	a := Partition(plan, AssignByPreference)
	b := PartitionByComponent(plan, AssignByPreference, g)
	if len(a) != len(b) {
		t.Fatalf("single-component partitions differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Target != b[i].Target || len(a[i].Stmts) != len(b[i].Stmts) {
			t.Errorf("subgraph %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
