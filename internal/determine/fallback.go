package determine

import "exlengine/internal/ops"

// FallbackOrder returns every target able to execute the whole subgraph —
// each target natively supports every operator of every statement — in
// decreasing preference order of the subgraph's dominant operator, with
// the chase (which supports everything) always last as the universal
// fallback. The subgraph's currently assigned target is excluded: callers
// degrade *away* from a failing engine, never back onto it.
func FallbackOrder(sub Subgraph) []ops.Target {
	var opNames []string
	for _, ref := range sub.Stmts {
		opNames = stmtOps(ref.Stmt.Expr, opNames)
	}
	var prefs []ops.Target
	if len(opNames) == 0 {
		prefs = ops.Preference("")
	} else {
		prefs = ops.Preference(dominantOp(opNames))
	}
	var out []ops.Target
	add := func(t ops.Target) {
		if t == sub.Target {
			return
		}
		for _, seen := range out {
			if seen == t {
				return
			}
		}
		out = append(out, t)
	}
	for _, t := range prefs {
		if supportsAll(t, opNames) {
			add(t)
		}
	}
	// Preference lists may omit targets that nevertheless support the
	// operators involved; sweep the full matrix so degradation has every
	// permitted option.
	for _, t := range ops.AllTargets {
		if t != ops.TargetChase && supportsAll(t, opNames) {
			add(t)
		}
	}
	add(ops.TargetChase)
	return out
}
