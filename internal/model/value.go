package model

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// Value kinds. Measures are always numbers; dimensions may be strings,
// integers or periods. Booleans appear only as intermediate results of
// comparisons inside the target engines.
const (
	KindInvalid Kind = iota
	KindNumber
	KindInt
	KindString
	KindPeriod
	KindBool
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindNumber:
		return "number"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindPeriod:
		return "period"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed scalar: a dimension coordinate or a measure.
// The zero Value is invalid.
type Value struct {
	kind Kind
	num  float64
	i    int64
	str  string
	per  Period
}

// Num returns a numeric (float) value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Per returns a period value.
func Per(p Period) Value { return Value{kind: KindPeriod, per: p} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value has been initialized.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsNumber returns the value as a float64. Integers convert losslessly;
// other kinds report ok=false.
func (v Value) AsNumber() (float64, bool) {
	switch v.kind {
	case KindNumber:
		return v.num, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsInt returns the value as an int64. Numbers convert only when integral.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindNumber:
		if v.num == float64(int64(v.num)) {
			return int64(v.num), true
		}
		return 0, false
	default:
		return 0, false
	}
}

// AsString returns the string payload of a string value.
func (v Value) AsString() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.str, true
}

// AsPeriod returns the period payload of a period value.
func (v Value) AsPeriod() (Period, bool) {
	if v.kind != KindPeriod {
		return Period{}, false
	}
	return v.per, true
}

// AsBool returns the boolean payload of a bool value.
func (v Value) AsBool() (bool, bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.i != 0, true
}

// String formats the value for display and for CSV export.
func (v Value) String() string {
	switch v.kind {
	case KindNumber:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.str
	case KindPeriod:
		return v.per.String()
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// Equal reports exact equality of kind and payload. Integers and numbers
// compare equal when they denote the same number, so that dimension values
// computed in different engines (one typed, one numeric) still join.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		a, okA := v.AsNumber()
		b, okB := o.AsNumber()
		return okA && okB && a == b
	}
	switch v.kind {
	case KindNumber:
		return v.num == o.num
	case KindInt, KindBool:
		return v.i == o.i
	case KindString:
		return v.str == o.str
	case KindPeriod:
		return v.per == o.per
	default:
		return true
	}
}

// Compare defines a total order across values: by kind first (numbers and
// ints compare numerically against each other), then by payload. It is used
// to give cubes a deterministic iteration order.
func (v Value) Compare(o Value) int {
	va, okA := v.AsNumber()
	vb, okB := o.AsNumber()
	if okA && okB {
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.str, o.str)
	case KindPeriod:
		return v.per.Compare(o.per)
	case KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
	}
	return 0
}

// appendKey appends a canonical, injective encoding of the value to b. It
// is used to build hash keys for dimension tuples. Numeric payloads are
// encoded as raw fixed-width bits rather than formatted text — keys are
// opaque (only ever compared for equality), and the binary form keeps
// strconv off the hash-join and grouping hot paths.
func (v Value) appendKey(b []byte) []byte {
	switch v.kind {
	case KindNumber, KindInt:
		// One tag for both: 3 and 3.0 must collide (Equal compares them
		// numerically). Ints go through the same float64 conversion that
		// Equal uses, so int/float collisions match Equal exactly.
		f := v.num
		if v.kind == KindInt {
			f = float64(v.i)
		}
		if f == 0 {
			f = 0 // collapse -0.0 and +0.0, which Equal treats as equal
		}
		b = append(b, 'n')
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	case KindString:
		b = append(b, 's')
		b = binary.LittleEndian.AppendUint32(b, uint32(len(v.str)))
		b = append(b, v.str...)
	case KindPeriod:
		b = append(b, 'p', byte(v.per.Freq))
		b = binary.LittleEndian.AppendUint64(b, uint64(v.per.Ord))
	case KindBool:
		b = append(b, 'b', byte('0'+v.i))
	default:
		b = append(b, '?')
	}
	return b
}

// EncodeKey builds a canonical string key for a dimension tuple. Two tuples
// encode to the same key exactly when all their values are Equal.
func EncodeKey(dims []Value) string {
	return string(AppendKey(make([]byte, 0, 16*len(dims)), dims))
}

// AppendKey appends the EncodeKey encoding of the tuple to b and returns
// the extended buffer. Hash-heavy paths (joins, grouping, dedup) use it
// with a reused buffer and map[string(...)] lookups to avoid allocating a
// string per probed row.
func AppendKey(b []byte, dims []Value) []byte {
	for _, v := range dims {
		b = v.appendKey(b)
		b = append(b, '|')
	}
	return b
}

// AppendOrderedKey appends an order-preserving binary encoding of the
// value to b: for any two valid values x and y, bytes.Compare of their
// encodings equals x.Compare(y) (up to ties — values that Compare equal,
// such as 3 and 3.0, encode identically). Invalid values encode as a
// single 0xFF byte and sort after every valid value — the engines'
// NULLS LAST rule, not Compare's kind order. Sort-heavy paths use this
// to replace repeated Compare calls with one key build and memcmp.
func AppendOrderedKey(b []byte, v Value) []byte {
	switch v.kind {
	case KindNumber, KindInt:
		// One tag for both numeric kinds: Compare orders them jointly by
		// numeric value (ints via the same float64 conversion).
		f := v.num
		if v.kind == KindInt {
			f = float64(v.i)
		}
		if f == 0 {
			f = 0 // collapse -0.0 and +0.0 into one key
		}
		u := math.Float64bits(f)
		if u&(1<<63) != 0 {
			u = ^u
		} else {
			u |= 1 << 63
		}
		b = append(b, 0x01)
		b = binary.BigEndian.AppendUint64(b, u)
	case KindString:
		// 0x00 bytes escape to (0x00,0x01) and the terminator is
		// (0x00,0x00), so a string that is a prefix of another sorts first
		// and embedded NULs cannot collide with the terminator.
		b = append(b, 0x02)
		s := v.str
		for i := 0; i < len(s); i++ {
			if s[i] == 0x00 {
				b = append(b, 0x00, 0x01)
			} else {
				b = append(b, s[i])
			}
		}
		b = append(b, 0x00, 0x00)
	case KindPeriod:
		b = append(b, 0x03, byte(v.per.Freq))
		b = binary.BigEndian.AppendUint64(b, uint64(v.per.Ord)^(1<<63))
	case KindBool:
		b = append(b, 0x04, byte(v.i))
	default:
		b = append(b, 0xFF)
	}
	return b
}

// ParseValue parses a textual representation into a Value of the given
// dimension type. It is used by the CSV loader.
func ParseValue(s string, t DimType) (Value, error) {
	switch t.Kind {
	case DimString:
		return Str(s), nil
	case DimInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("model: invalid int %q: %v", s, err)
		}
		return Int(i), nil
	case DimPeriod:
		p, err := ParsePeriod(s)
		if err != nil {
			return Value{}, err
		}
		if t.Freq != FreqInvalid && p.Freq != t.Freq {
			return Value{}, fmt.Errorf("model: period %q has frequency %s, want %s", s, p.Freq, t.Freq)
		}
		return Per(p), nil
	default:
		return Value{}, fmt.Errorf("model: cannot parse value for dimension kind %v", t.Kind)
	}
}
