package model

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// Value kinds. Measures are always numbers; dimensions may be strings,
// integers or periods. Booleans appear only as intermediate results of
// comparisons inside the target engines.
const (
	KindInvalid Kind = iota
	KindNumber
	KindInt
	KindString
	KindPeriod
	KindBool
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case KindNumber:
		return "number"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindPeriod:
		return "period"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a dynamically typed scalar: a dimension coordinate or a measure.
// The zero Value is invalid.
type Value struct {
	kind Kind
	num  float64
	i    int64
	str  string
	per  Period
}

// Num returns a numeric (float) value.
func Num(f float64) Value { return Value{kind: KindNumber, num: f} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Per returns a period value.
func Per(p Period) Value { return Value{kind: KindPeriod, per: p} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value has been initialized.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsNumber returns the value as a float64. Integers convert losslessly;
// other kinds report ok=false.
func (v Value) AsNumber() (float64, bool) {
	switch v.kind {
	case KindNumber:
		return v.num, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsInt returns the value as an int64. Numbers convert only when integral.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindNumber:
		if v.num == float64(int64(v.num)) {
			return int64(v.num), true
		}
		return 0, false
	default:
		return 0, false
	}
}

// AsString returns the string payload of a string value.
func (v Value) AsString() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.str, true
}

// AsPeriod returns the period payload of a period value.
func (v Value) AsPeriod() (Period, bool) {
	if v.kind != KindPeriod {
		return Period{}, false
	}
	return v.per, true
}

// AsBool returns the boolean payload of a bool value.
func (v Value) AsBool() (bool, bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.i != 0, true
}

// String formats the value for display and for CSV export.
func (v Value) String() string {
	switch v.kind {
	case KindNumber:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindString:
		return v.str
	case KindPeriod:
		return v.per.String()
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// Equal reports exact equality of kind and payload. Integers and numbers
// compare equal when they denote the same number, so that dimension values
// computed in different engines (one typed, one numeric) still join.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		a, okA := v.AsNumber()
		b, okB := o.AsNumber()
		return okA && okB && a == b
	}
	switch v.kind {
	case KindNumber:
		return v.num == o.num
	case KindInt, KindBool:
		return v.i == o.i
	case KindString:
		return v.str == o.str
	case KindPeriod:
		return v.per == o.per
	default:
		return true
	}
}

// Compare defines a total order across values: by kind first (numbers and
// ints compare numerically against each other), then by payload. It is used
// to give cubes a deterministic iteration order.
func (v Value) Compare(o Value) int {
	va, okA := v.AsNumber()
	vb, okB := o.AsNumber()
	if okA && okB {
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.str, o.str)
	case KindPeriod:
		return v.per.Compare(o.per)
	case KindBool:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
	}
	return 0
}

// appendKey appends a canonical, injective encoding of the value to b. It
// is used to build hash keys for dimension tuples.
func (v Value) appendKey(b []byte) []byte {
	switch v.kind {
	case KindNumber:
		b = append(b, 'n')
		b = strconv.AppendFloat(b, v.num, 'g', -1, 64)
	case KindInt:
		b = append(b, 'n') // same tag as number: 3 and 3.0 must collide
		b = strconv.AppendFloat(b, float64(v.i), 'g', -1, 64)
	case KindString:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(v.str)), 10)
		b = append(b, ':')
		b = append(b, v.str...)
	case KindPeriod:
		b = append(b, 'p', byte('0'+v.per.Freq))
		b = strconv.AppendInt(b, v.per.Ord, 10)
	case KindBool:
		b = append(b, 'b', byte('0'+v.i))
	default:
		b = append(b, '?')
	}
	return b
}

// EncodeKey builds a canonical string key for a dimension tuple. Two tuples
// encode to the same key exactly when all their values are Equal.
func EncodeKey(dims []Value) string {
	b := make([]byte, 0, 16*len(dims))
	for _, v := range dims {
		b = v.appendKey(b)
		b = append(b, '|')
	}
	return string(b)
}

// ParseValue parses a textual representation into a Value of the given
// dimension type. It is used by the CSV loader.
func ParseValue(s string, t DimType) (Value, error) {
	switch t.Kind {
	case DimString:
		return Str(s), nil
	case DimInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("model: invalid int %q: %v", s, err)
		}
		return Int(i), nil
	case DimPeriod:
		p, err := ParsePeriod(s)
		if err != nil {
			return Value{}, err
		}
		if t.Freq != FreqInvalid && p.Freq != t.Freq {
			return Value{}, fmt.Errorf("model: period %q has frequency %s, want %s", s, p.Freq, t.Freq)
		}
		return Per(p), nil
	default:
		return Value{}, fmt.Errorf("model: cannot parse value for dimension kind %v", t.Kind)
	}
}
