package model

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPeriodString(t *testing.T) {
	tests := []struct {
		p    Period
		want string
	}{
		{NewDaily(2001, time.March, 15), "2001-03-15"},
		{NewDaily(1969, time.December, 31), "1969-12-31"},
		{NewMonthly(2001, time.March), "2001-03"},
		{NewQuarterly(2001, 1), "2001-Q1"},
		{NewQuarterly(2001, 4), "2001-Q4"},
		{NewAnnual(2001), "2001"},
		{NewDaily(2000, time.February, 29), "2000-02-29"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.p, got, tt.want)
		}
	}
}

func TestParsePeriodRoundTrip(t *testing.T) {
	inputs := []string{"2001-03-15", "2001-03", "2001-Q2", "2001", "1969-12-31", "0004-Q4"}
	for _, in := range inputs {
		p, err := ParsePeriod(in)
		if err != nil {
			t.Fatalf("ParsePeriod(%q): %v", in, err)
		}
		if got := p.String(); got != in {
			t.Errorf("round trip %q -> %q", in, got)
		}
	}
}

func TestParsePeriodErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "2001-13-40", "2001-Q5", "2001-Q0", "20o1"} {
		if _, err := ParsePeriod(in); err == nil {
			t.Errorf("ParsePeriod(%q): want error", in)
		}
	}
}

func TestShift(t *testing.T) {
	tests := []struct {
		p    Period
		s    int64
		want string
	}{
		{NewDaily(2001, time.March, 1), -1, "2001-02-28"},
		{NewDaily(2000, time.February, 28), 1, "2000-02-29"},
		{NewDaily(2001, time.December, 31), 1, "2002-01-01"},
		{NewMonthly(2001, time.January), -1, "2000-12"},
		{NewMonthly(2001, time.December), 1, "2002-01"},
		{NewQuarterly(2001, 1), -1, "2000-Q4"},
		{NewQuarterly(2001, 4), 1, "2002-Q1"},
		{NewAnnual(2001), 10, "2011"},
	}
	for _, tt := range tests {
		if got := tt.p.Shift(tt.s).String(); got != tt.want {
			t.Errorf("%s.Shift(%d) = %s, want %s", tt.p, tt.s, got, tt.want)
		}
	}
}

func TestShiftInverse(t *testing.T) {
	// shift(s) then shift(-s) is the identity for any frequency.
	f := func(ord int64, s int32, freq uint8) bool {
		fr := Frequency(freq%4 + 1)
		p := Period{Freq: fr, Ord: ord % 1000000}
		return p.Shift(int64(s)).Shift(-int64(s)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConvert(t *testing.T) {
	d := NewDaily(2001, time.May, 17)
	tests := []struct {
		to   Frequency
		want string
	}{
		{Monthly, "2001-05"},
		{Quarterly, "2001-Q2"},
		{Annual, "2001"},
		{Daily, "2001-05-17"},
	}
	for _, tt := range tests {
		got, err := d.Convert(tt.to)
		if err != nil {
			t.Fatalf("Convert(%s): %v", tt.to, err)
		}
		if got.String() != tt.want {
			t.Errorf("Convert(%s) = %s, want %s", tt.to, got, tt.want)
		}
	}
	m := NewMonthly(2001, time.November)
	q, err := m.Convert(Quarterly)
	if err != nil || q.String() != "2001-Q4" {
		t.Errorf("monthly->quarterly: got %v, %v", q, err)
	}
	if _, err := NewAnnual(2001).Convert(Daily); err == nil {
		t.Error("annual->daily: want error")
	}
	if _, err := NewQuarterly(2001, 1).Convert(Monthly); err == nil {
		t.Error("quarterly->monthly: want error")
	}
}

func TestConvertConsistentWithShift(t *testing.T) {
	// Converting a day to a quarter commutes with the calendar: every day
	// within a quarter converts to the same quarter.
	start := NewDaily(1999, time.January, 1)
	prev, _ := start.Convert(Quarterly)
	count := 0
	for i := int64(1); i < 365*3; i++ {
		q, err := start.Shift(i).Convert(Quarterly)
		if err != nil {
			t.Fatal(err)
		}
		if q.Ord < prev.Ord {
			t.Fatalf("quarter went backwards at day %s", start.Shift(i))
		}
		if q.Ord > prev.Ord {
			count++
			prev = q
		}
	}
	if count != 11 {
		t.Errorf("expected 11 quarter boundaries over 3 years, got %d", count)
	}
}

func TestYearMonthQuarter(t *testing.T) {
	d := NewDaily(2003, time.August, 9)
	if d.Year() != 2003 {
		t.Errorf("Year = %d", d.Year())
	}
	if m, _ := d.Month(); m != 8 {
		t.Errorf("Month = %d", m)
	}
	if q, _ := d.Quarter(); q != 3 {
		t.Errorf("Quarter = %d", q)
	}
	if q, _ := NewMonthly(2003, time.October).Quarter(); q != 4 {
		t.Errorf("monthly Quarter = %d", q)
	}
	if _, err := NewAnnual(2003).Quarter(); err == nil {
		t.Error("annual Quarter: want error")
	}
	if _, err := NewQuarterly(2003, 2).Month(); err == nil {
		t.Error("quarterly Month: want error")
	}
}

func TestPeriodCompare(t *testing.T) {
	a := NewQuarterly(2001, 1)
	b := NewQuarterly(2001, 2)
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 || a.Compare(a) != 0 {
		t.Error("quarterly ordering wrong")
	}
	d := NewDaily(2001, time.January, 1)
	if d.Compare(a) >= 0 { // finer frequency sorts first
		t.Error("cross-frequency ordering wrong")
	}
}

func TestParseFrequency(t *testing.T) {
	for in, want := range map[string]Frequency{
		"day": Daily, "DAILY": Daily, "month": Monthly, "quarter": Quarterly,
		"year": Annual, "annual": Annual,
	} {
		got, err := ParseFrequency(in)
		if err != nil || got != want {
			t.Errorf("ParseFrequency(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFrequency("fortnight"); err == nil {
		t.Error("want error for unknown frequency")
	}
}

func TestNegativeYearMath(t *testing.T) {
	p := NewMonthly(0, time.January).Shift(-1)
	if p.Year() != -1 {
		t.Errorf("year before epoch: got %d", p.Year())
	}
	q := NewQuarterly(0, 1).Shift(-1)
	if q.Year() != -1 {
		t.Errorf("quarter before epoch: got year %d", q.Year())
	}
}
