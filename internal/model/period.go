// Package model implements the Matrix data model described in the paper:
// statistical data as dimensional cubes, i.e. partial functions
// F: X1 × … × Xn → Y from typed dimension tuples to a numeric measure.
// Time series are cubes with a single time dimension.
//
// The package provides typed dimension values (strings, integers and time
// periods at several frequencies), cube schemas, and in-memory cube
// instances with functional-dependency (egd) semantics: a cube holds at
// most one measure value per dimension tuple.
package model

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Frequency is the sampling frequency of a time period. The paper's Matrix
// model distinguishes time dimensions by frequency; frequency conversion
// (e.g. the quarter() function applied to a daily dimension) and the shift
// operator are defined in terms of it.
type Frequency uint8

// Supported frequencies, from finest to coarsest.
const (
	FreqInvalid Frequency = iota
	Daily
	Monthly
	Quarterly
	Annual
)

// String returns the lowercase name of the frequency ("day", "month",
// "quarter", "year").
func (f Frequency) String() string {
	switch f {
	case Daily:
		return "day"
	case Monthly:
		return "month"
	case Quarterly:
		return "quarter"
	case Annual:
		return "year"
	default:
		return "invalid"
	}
}

// ParseFrequency converts a frequency name as used in EXL cube declarations
// ("day", "month", "quarter", "year") into a Frequency.
func ParseFrequency(s string) (Frequency, error) {
	switch strings.ToLower(s) {
	case "day", "daily":
		return Daily, nil
	case "month", "monthly":
		return Monthly, nil
	case "quarter", "quarterly":
		return Quarterly, nil
	case "year", "annual", "yearly":
		return Annual, nil
	default:
		return FreqInvalid, fmt.Errorf("model: unknown frequency %q", s)
	}
}

// Period is a point on a time axis at a given frequency. Internally it is
// an ordinal count since a fixed epoch (1970-01-01 for days, year 0 for
// months, quarters and years), which makes the shift operator a plain
// integer addition regardless of calendar irregularities.
type Period struct {
	Freq Frequency
	Ord  int64
}

const daySeconds = 86400

// NewDaily returns the daily period for the given civil date.
func NewDaily(year int, month time.Month, day int) Period {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Period{Freq: Daily, Ord: t.Unix() / daySeconds}
}

// NewMonthly returns the monthly period for the given year and month.
func NewMonthly(year int, month time.Month) Period {
	return Period{Freq: Monthly, Ord: int64(year)*12 + int64(month) - 1}
}

// NewQuarterly returns the quarterly period for the given year and quarter
// (1 through 4).
func NewQuarterly(year, quarter int) Period {
	return Period{Freq: Quarterly, Ord: int64(year)*4 + int64(quarter) - 1}
}

// NewAnnual returns the annual period for the given year.
func NewAnnual(year int) Period {
	return Period{Freq: Annual, Ord: int64(year)}
}

// Date returns the civil date of a daily period. It panics if the period is
// not daily.
func (p Period) Date() time.Time {
	if p.Freq != Daily {
		panic("model: Date called on non-daily period")
	}
	return time.Unix(p.Ord*daySeconds, 0).UTC()
}

// Year returns the calendar year the period falls in.
func (p Period) Year() int {
	switch p.Freq {
	case Daily:
		return p.Date().Year()
	case Monthly:
		y := p.Ord / 12
		if p.Ord%12 < 0 {
			y--
		}
		return int(y)
	case Quarterly:
		y := p.Ord / 4
		if p.Ord%4 < 0 {
			y--
		}
		return int(y)
	case Annual:
		return int(p.Ord)
	default:
		panic("model: Year on invalid period")
	}
}

// Shift returns the period s steps later at the same frequency. Negative s
// shifts backwards. This is the dimension arithmetic used by the EXL shift
// operator and by fused tgds such as GDPT(q-1, r2).
func (p Period) Shift(s int64) Period {
	return Period{Freq: p.Freq, Ord: p.Ord + s}
}

// Convert maps the period to a coarser frequency (the scalar functions
// quarter(), month() and year() of EXL group-by lists). Converting to the
// same frequency is the identity; converting to a finer frequency is an
// error because it is not a function.
func (p Period) Convert(to Frequency) (Period, error) {
	if to == p.Freq {
		return p, nil
	}
	if to < p.Freq {
		return Period{}, fmt.Errorf("model: cannot convert %s period to finer frequency %s", p.Freq, to)
	}
	switch p.Freq {
	case Daily:
		d := p.Date()
		switch to {
		case Monthly:
			return NewMonthly(d.Year(), d.Month()), nil
		case Quarterly:
			return NewQuarterly(d.Year(), (int(d.Month())-1)/3+1), nil
		case Annual:
			return NewAnnual(d.Year()), nil
		}
	case Monthly:
		y, m := p.Year(), int(p.Ord-int64(p.Year())*12)+1
		switch to {
		case Quarterly:
			return NewQuarterly(y, (m-1)/3+1), nil
		case Annual:
			return NewAnnual(y), nil
		}
	case Quarterly:
		if to == Annual {
			return NewAnnual(p.Year()), nil
		}
	}
	return Period{}, fmt.Errorf("model: unsupported period conversion %s -> %s", p.Freq, to)
}

// Month returns the month (1-12) of a daily or monthly period.
func (p Period) Month() (int, error) {
	switch p.Freq {
	case Daily:
		return int(p.Date().Month()), nil
	case Monthly:
		m := int(p.Ord - int64(p.Year())*12)
		return m + 1, nil
	default:
		return 0, fmt.Errorf("model: Month undefined for %s period", p.Freq)
	}
}

// Quarter returns the quarter (1-4) of a daily, monthly or quarterly period.
func (p Period) Quarter() (int, error) {
	switch p.Freq {
	case Daily:
		return (int(p.Date().Month())-1)/3 + 1, nil
	case Monthly:
		m, _ := p.Month()
		return (m-1)/3 + 1, nil
	case Quarterly:
		return int(p.Ord-int64(p.Year())*4) + 1, nil
	default:
		return 0, fmt.Errorf("model: Quarter undefined for %s period", p.Freq)
	}
}

// String formats the period in the conventional statistical notation:
// "2006-01-02" (daily), "2006-01" (monthly), "2006-Q1" (quarterly),
// "2006" (annual).
func (p Period) String() string {
	switch p.Freq {
	case Daily:
		return p.Date().Format("2006-01-02")
	case Monthly:
		m, _ := p.Month()
		return fmt.Sprintf("%04d-%02d", p.Year(), m)
	case Quarterly:
		q, _ := p.Quarter()
		return fmt.Sprintf("%04d-Q%d", p.Year(), q)
	case Annual:
		return fmt.Sprintf("%04d", p.Year())
	default:
		return "invalid-period"
	}
}

// ParsePeriod parses the String representation back into a Period.
func ParsePeriod(s string) (Period, error) {
	switch {
	case strings.Contains(s, "-Q"):
		parts := strings.SplitN(s, "-Q", 2)
		y, err1 := strconv.Atoi(parts[0])
		q, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || q < 1 || q > 4 {
			return Period{}, fmt.Errorf("model: invalid quarterly period %q", s)
		}
		return NewQuarterly(y, q), nil
	case strings.Count(s, "-") == 2:
		t, err := time.Parse("2006-01-02", s)
		if err != nil {
			return Period{}, fmt.Errorf("model: invalid daily period %q: %v", s, err)
		}
		return NewDaily(t.Year(), t.Month(), t.Day()), nil
	case strings.Count(s, "-") == 1:
		t, err := time.Parse("2006-01", s)
		if err != nil {
			return Period{}, fmt.Errorf("model: invalid monthly period %q: %v", s, err)
		}
		return NewMonthly(t.Year(), t.Month()), nil
	default:
		y, err := strconv.Atoi(s)
		if err != nil {
			return Period{}, fmt.Errorf("model: invalid annual period %q", s)
		}
		return NewAnnual(y), nil
	}
}

// Compare orders periods first by frequency, then chronologically.
func (p Period) Compare(o Period) int {
	if p.Freq != o.Freq {
		if p.Freq < o.Freq {
			return -1
		}
		return 1
	}
	switch {
	case p.Ord < o.Ord:
		return -1
	case p.Ord > o.Ord:
		return 1
	default:
		return 0
	}
}
