package model

import "sort"

// CubeDelta describes how a cube changed between two versions: the
// tuples added, the tuples whose measure changed, and the tuples
// deleted. Both endpoint cubes are carried by reference (zero-copy on
// the unchanged side — for frozen cubes these are the shared store
// instances), so consumers can probe either version directly.
//
// Added and Changed carry the tuple as it appears in Current; Deleted
// carries the tuple as it appeared in Base. All three lists are sorted
// by dimension values so delta consumers enumerate work in the same
// deterministic order as a full Tuples() scan.
type CubeDelta struct {
	Name    string
	Base    *Cube // version at the older generation (may be empty, never nil)
	Current *Cube // version now
	Added   []Tuple
	Changed []Tuple
	Deleted []Tuple
}

// Empty reports whether the delta carries no tuple-level changes.
func (d *CubeDelta) Empty() bool {
	return len(d.Added) == 0 && len(d.Changed) == 0 && len(d.Deleted) == 0
}

// Size returns the number of changed tuples the delta carries.
func (d *CubeDelta) Size() int {
	return len(d.Added) + len(d.Changed) + len(d.Deleted)
}

// PureInsert reports whether the delta only adds tuples — the condition
// under which a monotone mapping can be maintained by INSERT-delta SQL.
func (d *CubeDelta) PureInsert() bool {
	return len(d.Changed) == 0 && len(d.Deleted) == 0
}

// Touched returns the dimension tuples affected by the delta (added,
// changed or deleted), sorted. Each entry appears once.
func (d *CubeDelta) Touched() [][]Value {
	out := make([][]Value, 0, d.Size())
	for _, t := range d.Added {
		out = append(out, t.Dims)
	}
	for _, t := range d.Changed {
		out = append(out, t.Dims)
	}
	for _, t := range d.Deleted {
		out = append(out, t.Dims)
	}
	sort.Slice(out, func(i, j int) bool { return compareDims(out[i], out[j]) < 0 })
	return out
}

// DiffCubes computes the exact tuple-level delta from base to cur.
// Measures are compared with ==, not a tolerance: the incremental
// evaluator's contract is byte-identical output, so even a last-ulp
// drift must propagate. Either cube may be nil, which is treated as
// empty (the returned delta substitutes a fresh empty cube so Base and
// Current are always non-nil).
func DiffCubes(name string, base, cur *Cube) *CubeDelta {
	d := &CubeDelta{Name: name, Base: base, Current: cur}
	if cur == nil {
		sch := Schema{Name: name}
		if base != nil {
			sch = base.schema
		}
		d.Current = NewCube(sch).Freeze()
	}
	if base == nil {
		sch := d.Current.schema
		d.Base = NewCube(sch).Freeze()
	}
	// Probe map against map directly: the diff is usually a small
	// fraction of the cubes, so sorting only the changed tuples (below)
	// beats the full Tuples() sort of both versions by orders of
	// magnitude on large cubes.
	for k, t := range d.Current.rows {
		old, ok := d.Base.rows[k]
		switch {
		case !ok:
			d.Added = append(d.Added, t)
		case old.Measure != t.Measure:
			d.Changed = append(d.Changed, t)
		}
	}
	for k, t := range d.Base.rows {
		if _, ok := d.Current.rows[k]; !ok {
			d.Deleted = append(d.Deleted, t)
		}
	}
	sortTuples(d.Added)
	sortTuples(d.Changed)
	sortTuples(d.Deleted)
	return d
}

func sortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return compareDims(ts[i].Dims, ts[j].Dims) < 0 })
}
