package model

import (
	"fmt"
	"strings"
)

// DimKind classifies a dimension's domain.
type DimKind uint8

// Dimension domains supported by the Matrix model as implemented here.
const (
	DimInvalid DimKind = iota
	DimString
	DimInt
	DimPeriod
)

// String returns the EXL type name of the kind ("string", "int"; period
// kinds are named by frequency, see DimType.String).
func (k DimKind) String() string {
	switch k {
	case DimString:
		return "string"
	case DimInt:
		return "int"
	case DimPeriod:
		return "period"
	default:
		return "invalid"
	}
}

// DimType is the full type of a dimension: its kind, plus the frequency for
// time dimensions. A DimType with Kind DimPeriod and FreqInvalid matches
// periods of any frequency (used by generic operators).
type DimType struct {
	Kind DimKind
	Freq Frequency
}

// Convenience dimension types.
var (
	TString    = DimType{Kind: DimString}
	TInt       = DimType{Kind: DimInt}
	TDay       = DimType{Kind: DimPeriod, Freq: Daily}
	TMonth     = DimType{Kind: DimPeriod, Freq: Monthly}
	TQuarter   = DimType{Kind: DimPeriod, Freq: Quarterly}
	TYear      = DimType{Kind: DimPeriod, Freq: Annual}
	TAnyPeriod = DimType{Kind: DimPeriod}
)

// IsTime reports whether the dimension is a time dimension.
func (t DimType) IsTime() bool { return t.Kind == DimPeriod }

// String returns the EXL declaration name of the type.
func (t DimType) String() string {
	if t.Kind == DimPeriod {
		if t.Freq == FreqInvalid {
			return "period"
		}
		return t.Freq.String()
	}
	return t.Kind.String()
}

// ParseDimType parses an EXL declaration type name ("string", "int", "day",
// "month", "quarter", "year").
func ParseDimType(s string) (DimType, error) {
	switch strings.ToLower(s) {
	case "string", "text":
		return TString, nil
	case "int", "integer":
		return TInt, nil
	}
	f, err := ParseFrequency(s)
	if err != nil {
		return DimType{}, fmt.Errorf("model: unknown dimension type %q", s)
	}
	return DimType{Kind: DimPeriod, Freq: f}, nil
}

// Matches reports whether a value of type o can flow into a slot of type t.
// An unspecified period frequency matches any period.
func (t DimType) Matches(o DimType) bool {
	if t.Kind != o.Kind {
		return false
	}
	if t.Kind == DimPeriod && t.Freq != FreqInvalid && o.Freq != FreqInvalid {
		return t.Freq == o.Freq
	}
	return true
}

// Dim is a named, typed dimension of a cube.
type Dim struct {
	Name string
	Type DimType
}

// Schema describes a cube: its identifier, ordered dimensions and the
// measure name. As in the paper, every cube has exactly one numeric
// measure.
type Schema struct {
	Name    string
	Dims    []Dim
	Measure string
}

// NewSchema builds a schema; if measure is empty it defaults to "value".
func NewSchema(name string, dims []Dim, measure string) Schema {
	if measure == "" {
		measure = "value"
	}
	return Schema{Name: name, Dims: dims, Measure: measure}
}

// DimIndex returns the position of the named dimension, or -1.
func (s Schema) DimIndex(name string) int {
	for i, d := range s.Dims {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// DimNames returns the dimension names in order.
func (s Schema) DimNames() []string {
	out := make([]string, len(s.Dims))
	for i, d := range s.Dims {
		out[i] = d.Name
	}
	return out
}

// TimeDims returns the indexes of the time dimensions.
func (s Schema) TimeDims() []int {
	var out []int
	for i, d := range s.Dims {
		if d.Type.IsTime() {
			out = append(out, i)
		}
	}
	return out
}

// IsTimeSeries reports whether the cube is a time series: exactly one
// dimension, and it is a time dimension.
func (s Schema) IsTimeSeries() bool {
	return len(s.Dims) == 1 && s.Dims[0].Type.IsTime()
}

// SameDims reports whether two schemas have the same dimensions (names and
// types, in order). This is the compatibility condition for vectorial
// operators.
func (s Schema) SameDims(o Schema) bool {
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for i := range s.Dims {
		if s.Dims[i].Name != o.Dims[i].Name || !s.Dims[i].Type.Matches(o.Dims[i].Type) {
			return false
		}
	}
	return true
}

// String renders the schema as an EXL cube declaration,
// e.g. "PDR(d: day, r: string)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, d := range s.Dims {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", d.Name, d.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Rename returns a copy of the schema under a new cube name.
func (s Schema) Rename(name string) Schema {
	out := Schema{Name: name, Dims: make([]Dim, len(s.Dims)), Measure: s.Measure}
	copy(out.Dims, s.Dims)
	return out
}
