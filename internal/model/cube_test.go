package model

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func gdpSchema() Schema {
	return NewSchema("GDP", []Dim{{Name: "q", Type: TQuarter}}, "g")
}

func rgdpSchema() Schema {
	return NewSchema("RGDP", []Dim{{Name: "q", Type: TQuarter}, {Name: "r", Type: TString}}, "g")
}

func TestCubePutGet(t *testing.T) {
	c := NewCube(rgdpSchema())
	dims := []Value{Per(NewQuarterly(2001, 1)), Str("north")}
	if err := c.Put(dims, 12.5); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(dims)
	if !ok || got != 12.5 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := c.Get([]Value{Per(NewQuarterly(2001, 2)), Str("north")}); ok {
		t.Error("Get of absent tuple must fail")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCubePutEgd(t *testing.T) {
	c := NewCube(gdpSchema())
	dims := []Value{Per(NewQuarterly(2001, 1))}
	if err := c.Put(dims, 10); err != nil {
		t.Fatal(err)
	}
	// Same value again: fine (idempotent chase step).
	if err := c.Put(dims, 10); err != nil {
		t.Fatal(err)
	}
	// Different value: egd violation.
	err := c.Put(dims, 11)
	if !errors.Is(err, ErrFunctional) {
		t.Fatalf("want ErrFunctional, got %v", err)
	}
	// Replace overrides.
	if err := c.Replace(dims, 11); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(dims); got != 11 {
		t.Errorf("after Replace: %v", got)
	}
}

func TestCubeArityCheck(t *testing.T) {
	c := NewCube(rgdpSchema())
	if err := c.Put([]Value{Str("north")}, 1); err == nil {
		t.Error("wrong arity Put must fail")
	}
	if err := c.Replace([]Value{Str("north")}, 1); err == nil {
		t.Error("wrong arity Replace must fail")
	}
}

func TestCubePutCopiesDims(t *testing.T) {
	c := NewCube(gdpSchema())
	dims := []Value{Per(NewQuarterly(2001, 1))}
	if err := c.Put(dims, 1); err != nil {
		t.Fatal(err)
	}
	dims[0] = Per(NewQuarterly(2099, 1)) // mutate caller slice
	ts := c.Tuples()
	if p, _ := ts[0].Dims[0].AsPeriod(); p.Year() != 2001 {
		t.Error("cube must copy dimension slices")
	}
}

func TestTuplesSorted(t *testing.T) {
	c := NewCube(rgdpSchema())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		q := NewQuarterly(2000+rng.Intn(5), rng.Intn(4)+1)
		r := []string{"north", "south", "centre"}[rng.Intn(3)]
		_ = c.Replace([]Value{Per(q), Str(r)}, float64(i))
	}
	ts := c.Tuples()
	for i := 1; i < len(ts); i++ {
		if compareDims(ts[i-1].Dims, ts[i].Dims) >= 0 {
			t.Fatalf("tuples not strictly sorted at %d", i)
		}
	}
}

func TestCubeEqualAndDiff(t *testing.T) {
	a := NewCube(gdpSchema())
	b := NewCube(gdpSchema().Rename("GDP_T"))
	q1 := []Value{Per(NewQuarterly(2001, 1))}
	q2 := []Value{Per(NewQuarterly(2001, 2))}
	_ = a.Put(q1, 1)
	_ = a.Put(q2, 2)
	_ = b.Put(q1, 1)
	_ = b.Put(q2, 2+1e-12)
	if !a.Equal(b, Eps) {
		t.Error("cubes should be equal within tolerance; renaming is irrelevant")
	}
	_ = b.Replace(q2, 3)
	if a.Equal(b, Eps) {
		t.Error("cubes with different measures should differ")
	}
	if d := a.Diff(b, Eps, 10); len(d) != 1 {
		t.Errorf("Diff = %v", d)
	}
	_ = b.Put([]Value{Per(NewQuarterly(2001, 3))}, 9)
	if d := a.Diff(b, Eps, 10); len(d) != 2 {
		t.Errorf("Diff with extra tuple = %v", d)
	}
	c := NewCube(rgdpSchema())
	if a.Equal(c, Eps) {
		t.Error("different dimensionality must not be equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewCube(gdpSchema())
	_ = a.Put([]Value{Per(NewQuarterly(2001, 1))}, 1)
	b := a.Clone()
	_ = b.Replace([]Value{Per(NewQuarterly(2001, 1))}, 99)
	if got, _ := a.Get([]Value{Per(NewQuarterly(2001, 1))}); got != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestSortedSeries(t *testing.T) {
	c := NewCube(gdpSchema())
	for q := 4; q >= 1; q-- {
		_ = c.Put([]Value{Per(NewQuarterly(2001, q))}, float64(q))
	}
	periods, vals, err := c.SortedSeries()
	if err != nil {
		t.Fatal(err)
	}
	for i := range periods {
		if vals[i] != float64(i+1) {
			t.Fatalf("series not chronological: %v %v", periods, vals)
		}
	}
	if _, _, err := NewCube(rgdpSchema()).SortedSeries(); err == nil {
		t.Error("2-dim cube is not a series")
	}
	s := NewCube(NewSchema("X", []Dim{{Name: "r", Type: TString}}, ""))
	if _, _, err := s.SortedSeries(); err == nil {
		t.Error("non-time 1-dim cube is not a series")
	}
}

func TestCheckFunctional(t *testing.T) {
	c := NewCube(gdpSchema())
	_ = c.Put([]Value{Per(NewQuarterly(2001, 1))}, 1)
	if err := c.CheckFunctional(); err != nil {
		t.Fatal(err)
	}
}

func TestCubeForEach(t *testing.T) {
	c := NewCube(gdpSchema())
	for q := 1; q <= 4; q++ {
		_ = c.Put([]Value{Per(NewQuarterly(2001, q))}, float64(q))
	}
	sum := 0.0
	if err := c.ForEach(func(tp Tuple) error { sum += tp.Measure; return nil }); err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Errorf("sum = %v", sum)
	}
	stop := errors.New("stop")
	if err := c.ForEach(func(Tuple) error { return stop }); !errors.Is(err, stop) {
		t.Error("ForEach must propagate errors")
	}
}

func TestCubePutGetQuick(t *testing.T) {
	// Property: after Replace(dims, m), Get(dims) returns m, for arbitrary
	// string/int dimension values.
	sch := NewSchema("Q", []Dim{{Name: "a", Type: TString}, {Name: "b", Type: TInt}}, "")
	c := NewCube(sch)
	f := func(a string, b int64, m float64) bool {
		dims := []Value{Str(a), Int(b)}
		if err := c.Replace(dims, m); err != nil {
			return false
		}
		got, ok := c.Get(dims)
		return ok && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := NewSchema("PDR", []Dim{{Name: "d", Type: TDay}, {Name: "r", Type: TString}}, "p")
	if s.String() != "PDR(d: day, r: string)" {
		t.Errorf("String = %q", s.String())
	}
	if s.DimIndex("r") != 1 || s.DimIndex("zz") != -1 {
		t.Error("DimIndex")
	}
	if got := s.DimNames(); len(got) != 2 || got[0] != "d" {
		t.Errorf("DimNames = %v", got)
	}
	if td := s.TimeDims(); len(td) != 1 || td[0] != 0 {
		t.Errorf("TimeDims = %v", td)
	}
	if s.IsTimeSeries() {
		t.Error("2-dim cube is not a time series")
	}
	if !NewSchema("GDP", []Dim{{Name: "q", Type: TQuarter}}, "").IsTimeSeries() {
		t.Error("GDP(q) is a time series")
	}
	if !s.SameDims(s.Rename("X")) {
		t.Error("rename preserves dims")
	}
	def := NewSchema("X", nil, "")
	if def.Measure != "value" {
		t.Error("default measure")
	}
}

func TestDimTypeMatches(t *testing.T) {
	if !TAnyPeriod.Matches(TDay) || !TDay.Matches(TAnyPeriod) {
		t.Error("any-period must match day")
	}
	if TDay.Matches(TQuarter) {
		t.Error("day must not match quarter")
	}
	if TString.Matches(TInt) {
		t.Error("string must not match int")
	}
	if got, err := ParseDimType("quarter"); err != nil || got != TQuarter {
		t.Errorf("ParseDimType quarter = %v, %v", got, err)
	}
	if got, err := ParseDimType("text"); err != nil || got != TString {
		t.Errorf("ParseDimType text = %v, %v", got, err)
	}
	if _, err := ParseDimType("blob"); err == nil {
		t.Error("unknown type must fail")
	}
}

func BenchmarkCubePut(b *testing.B) {
	sch := rgdpSchema()
	regions := []Value{Str("north"), Str("south"), Str("centre"), Str("islands")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCube(sch)
		for q := 0; q < 40; q++ {
			for _, r := range regions {
				_ = c.Put([]Value{Per(Period{Freq: Quarterly, Ord: int64(q)}), r}, float64(q))
			}
		}
	}
	_ = time.Now
}

func TestFreezeRejectsMutation(t *testing.T) {
	c := NewCube(rgdpSchema())
	dims := []Value{Per(Period{Freq: Quarterly, Ord: 1}), Str("north")}
	if err := c.Put(dims, 1); err != nil {
		t.Fatal(err)
	}
	if c.Frozen() {
		t.Fatal("new cube is frozen")
	}
	if got := c.Freeze(); got != c {
		t.Error("Freeze must return its receiver")
	}
	if !c.Frozen() {
		t.Fatal("Freeze did not mark the cube")
	}
	if err := c.Put(dims, 2); !errors.Is(err, ErrFrozen) {
		t.Errorf("Put on frozen cube: err = %v, want ErrFrozen", err)
	}
	if err := c.Replace(dims, 2); !errors.Is(err, ErrFrozen) {
		t.Errorf("Replace on frozen cube: err = %v, want ErrFrozen", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Delete on frozen cube must panic")
			}
		}()
		c.Delete(dims)
	}()
	// Reads still work, and the frozen tuple is intact.
	if v, ok := c.Get(dims); !ok || v != 1 {
		t.Errorf("Get after rejected mutations = %v, %v", v, ok)
	}
	if cl := c.Clone(); cl.Frozen() {
		t.Error("Clone inherits frozen flag")
	}
}
