package model

import (
	"errors"
	"fmt"
	"maps"
	"math"
	"sort"
	"sync/atomic"
)

// Eps is the default tolerance used when comparing measures produced by
// different target engines.
const Eps = 1e-9

// ErrFunctional is returned by Cube.Put when a second, different measure
// value is asserted for an existing dimension tuple — the violation of the
// egd F(x…,y1) ∧ F(x…,y2) → y1 = y2 that the paper's mappings enforce.
var ErrFunctional = errors.New("model: functional dependency violation (egd)")

// ErrFrozen is returned by mutating cube methods after Freeze: frozen
// cubes are shared by reference between the store and every reader, so
// in-place mutation would be a data race. Mutate a Clone instead.
var ErrFrozen = errors.New("model: cube is frozen (shared); mutate a Clone instead")

// Tuple is one cube tuple (x1, …, xn, y): the dimension coordinates plus
// the measure.
type Tuple struct {
	Dims    []Value
	Measure float64
}

// Cube is an in-memory cube instance: a schema plus a sparse, functional
// set of tuples keyed by dimension tuple.
type Cube struct {
	schema Schema
	rows   map[string]Tuple
	frozen bool
	// memEst caches MemEstimate once the cube is frozen (0 = uncached);
	// frozen cubes are shared across goroutines, so the cache is atomic.
	memEst atomic.Int64
	// sorted caches the Tuples() sort order (nil = uncached). Mutating
	// methods clear it before touching rows, so a stale cache can never
	// be observed; the pointer is atomic because frozen cubes are read
	// from many goroutines at once.
	sorted atomic.Pointer[[]Tuple]
}

// NewCube returns an empty cube instance for the schema.
func NewCube(schema Schema) *Cube {
	return &Cube{schema: schema, rows: make(map[string]Tuple)}
}

// Schema returns the cube's schema.
func (c *Cube) Schema() Schema { return c.schema }

// Freeze marks the cube immutable and returns it. A frozen cube can be
// shared by reference across goroutines without synchronization: every
// mutating method fails with ErrFrozen, so readers see a stable value.
// Freezing is one-way; Clone returns a mutable copy.
func (c *Cube) Freeze() *Cube {
	c.frozen = true
	return c
}

// Frozen reports whether the cube has been frozen.
func (c *Cube) Frozen() bool { return c.frozen }

// Len returns the number of tuples in the cube.
func (c *Cube) Len() int { return len(c.rows) }

// Put asserts the measure for the dimension tuple. Asserting the same value
// twice is a no-op (up to Eps); asserting a different value returns
// ErrFunctional, mirroring chase failure on an egd involving constants.
func (c *Cube) Put(dims []Value, measure float64) error {
	if c.frozen {
		return fmt.Errorf("%w: %s", ErrFrozen, c.schema.Name)
	}
	if len(dims) != len(c.schema.Dims) {
		return fmt.Errorf("model: cube %s expects %d dimensions, got %d", c.schema.Name, len(c.schema.Dims), len(dims))
	}
	key := EncodeKey(dims)
	if old, ok := c.rows[key]; ok {
		if almostEqual(old.Measure, measure) {
			return nil
		}
		return fmt.Errorf("%w: %s%v has values %v and %v", ErrFunctional, c.schema.Name, dims, old.Measure, measure)
	}
	d := make([]Value, len(dims))
	copy(d, dims)
	c.sorted.Store(nil)
	c.rows[key] = Tuple{Dims: d, Measure: measure}
	return nil
}

// Replace sets the measure for the dimension tuple, overwriting any
// previous value. It is used by the store when new versions of elementary
// cubes arrive.
func (c *Cube) Replace(dims []Value, measure float64) error {
	if c.frozen {
		return fmt.Errorf("%w: %s", ErrFrozen, c.schema.Name)
	}
	if len(dims) != len(c.schema.Dims) {
		return fmt.Errorf("model: cube %s expects %d dimensions, got %d", c.schema.Name, len(c.schema.Dims), len(dims))
	}
	d := make([]Value, len(dims))
	copy(d, dims)
	c.sorted.Store(nil)
	c.rows[EncodeKey(dims)] = Tuple{Dims: d, Measure: measure}
	return nil
}

// Get returns the measure for the dimension tuple, if present.
func (c *Cube) Get(dims []Value) (float64, bool) {
	t, ok := c.rows[EncodeKey(dims)]
	if !ok {
		return 0, false
	}
	return t.Measure, true
}

// Delete removes the tuple for the dimension tuple, reporting whether it
// was present. Delete panics on a frozen cube (its signature cannot carry
// ErrFrozen).
func (c *Cube) Delete(dims []Value) bool {
	if c.frozen {
		panic(fmt.Sprintf("%v: %s", ErrFrozen, c.schema.Name))
	}
	key := EncodeKey(dims)
	_, ok := c.rows[key]
	c.sorted.Store(nil)
	delete(c.rows, key)
	return ok
}

// Tuples returns all tuples sorted by dimension values. Sorting gives every
// engine the same deterministic iteration order, which keeps generated
// artifacts and test expectations stable. The sort order is cached until
// the next mutation, so repeated scans of the same version (the common
// case for frozen store cubes) cost a copy, not a sort; the returned
// slice is always the caller's to mutate.
func (c *Cube) Tuples() []Tuple {
	if p := c.sorted.Load(); p != nil {
		out := make([]Tuple, len(*p))
		copy(out, *p)
		return out
	}
	cached := make([]Tuple, 0, len(c.rows))
	for _, t := range c.rows {
		cached = append(cached, t)
	}
	sort.Slice(cached, func(i, j int) bool { return compareDims(cached[i].Dims, cached[j].Dims) < 0 })
	c.sorted.Store(&cached)
	out := make([]Tuple, len(cached))
	copy(out, cached)
	return out
}

// ForEach calls fn on every tuple in unspecified order; it stops early and
// returns the first non-nil error.
func (c *Cube) ForEach(fn func(Tuple) error) error {
	for _, t := range c.rows {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a mutable copy of the cube (frozen or not). The row map
// is copied wholesale; the Dims slices inside the tuples are shared with
// the original. That sharing is safe because the cube never mutates a
// stored Dims slice in place (Put and Replace copy their argument), and
// it is the same sharing every Tuples()/ForEach caller already gets.
func (c *Cube) Clone() *Cube {
	out := NewCube(c.schema)
	out.rows = maps.Clone(c.rows)
	if out.rows == nil {
		out.rows = make(map[string]Tuple)
	}
	return out
}

// Equal reports whether two cubes contain the same tuples, with measures
// compared within tol. Schemas are compared on dimensions only, so a cube
// and its renamed copy in the target schema compare equal.
func (c *Cube) Equal(o *Cube, tol float64) bool {
	if c.Len() != o.Len() || !c.schema.SameDims(o.schema) {
		return false
	}
	for k, t := range c.rows {
		ot, ok := o.rows[k]
		if !ok || math.Abs(t.Measure-ot.Measure) > tol*(1+math.Abs(t.Measure)) {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of up to max differences
// between the cubes, for test failure messages.
func (c *Cube) Diff(o *Cube, tol float64, max int) []string {
	var out []string
	add := func(s string) bool {
		if len(out) < max {
			out = append(out, s)
		}
		return len(out) < max
	}
	for _, t := range c.Tuples() {
		om, ok := o.Get(t.Dims)
		if !ok {
			if !add(fmt.Sprintf("missing in other: %v -> %v", formatDims(t.Dims), t.Measure)) {
				return out
			}
			continue
		}
		if math.Abs(t.Measure-om) > tol*(1+math.Abs(t.Measure)) {
			if !add(fmt.Sprintf("measure mismatch at %v: %v vs %v", formatDims(t.Dims), t.Measure, om)) {
				return out
			}
		}
	}
	for _, t := range o.Tuples() {
		if _, ok := c.Get(t.Dims); !ok {
			if !add(fmt.Sprintf("extra in other: %v -> %v", formatDims(t.Dims), t.Measure)) {
				return out
			}
		}
	}
	return out
}

// Per-entry accounting constants for MemEstimate: Go map bucket share,
// two string headers (map key + Value.str), slice header and Tuple
// shell, plus the Value shell per dimension. Deliberately rounded up —
// the estimate feeds admission budgets, where over-counting degrades
// gracefully and under-counting OOMs.
const (
	tupleOverheadBytes = 120
	valueShellBytes    = 56
)

// MemEstimate returns a conservative estimate of the cube's resident
// size in bytes: per-tuple map and header overhead, key bytes, and the
// dimension values with their string payloads. The result is cached on
// frozen cubes (which are immutable and shared), so repeated budgeting
// of the same snapshot is O(1).
func (c *Cube) MemEstimate() int64 {
	if c == nil {
		return 0
	}
	if c.frozen {
		if v := c.memEst.Load(); v > 0 {
			return v
		}
	}
	n := int64(tupleOverheadBytes) // the Cube shell and map header
	for k, t := range c.rows {
		n += tupleOverheadBytes + int64(len(k))
		for _, v := range t.Dims {
			n += valueShellBytes + int64(len(v.str))
		}
	}
	if c.frozen {
		c.memEst.Store(n)
	}
	return n
}

// CheckFunctional verifies the egd on the cube. It always succeeds for
// cubes built through Put, and exists so engines that bulk-load tuples can
// assert the invariant.
func (c *Cube) CheckFunctional() error {
	seen := make(map[string]float64, len(c.rows))
	for _, t := range c.rows {
		k := EncodeKey(t.Dims)
		if prev, ok := seen[k]; ok && !almostEqual(prev, t.Measure) {
			return fmt.Errorf("%w: %s", ErrFunctional, c.schema.Name)
		}
		seen[k] = t.Measure
	}
	return nil
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= Eps*(1+math.Abs(a)+math.Abs(b))
}

func compareDims(a, b []Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return len(a) - len(b)
}

func formatDims(dims []Value) string {
	s := "("
	for i, d := range dims {
		if i > 0 {
			s += ", "
		}
		s += d.String()
	}
	return s + ")"
}

// SortedSeries extracts a time series (ordered by time) from a cube with a
// single time dimension. It returns the periods and measures in
// chronological order. It fails if the cube is not a time series.
func (c *Cube) SortedSeries() ([]Period, []float64, error) {
	if !c.schema.IsTimeSeries() {
		return nil, nil, fmt.Errorf("model: cube %s is not a time series", c.schema.Name)
	}
	ts := c.Tuples()
	periods := make([]Period, len(ts))
	vals := make([]float64, len(ts))
	for i, t := range ts {
		p, ok := t.Dims[0].AsPeriod()
		if !ok {
			return nil, nil, fmt.Errorf("model: cube %s has non-period time value %v", c.schema.Name, t.Dims[0])
		}
		periods[i] = p
		vals[i] = t.Measure
	}
	return periods, vals, nil
}
