package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestValueAccessors(t *testing.T) {
	if f, ok := Num(2.5).AsNumber(); !ok || f != 2.5 {
		t.Error("Num accessor")
	}
	if i, ok := Int(7).AsInt(); !ok || i != 7 {
		t.Error("Int accessor")
	}
	if f, ok := Int(7).AsNumber(); !ok || f != 7 {
		t.Error("Int as number")
	}
	if i, ok := Num(7).AsInt(); !ok || i != 7 {
		t.Error("integral Num as int")
	}
	if _, ok := Num(7.5).AsInt(); ok {
		t.Error("fractional Num must not convert to int")
	}
	if s, ok := Str("x").AsString(); !ok || s != "x" {
		t.Error("Str accessor")
	}
	p := NewQuarterly(2001, 3)
	if got, ok := Per(p).AsPeriod(); !ok || got != p {
		t.Error("Per accessor")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("Bool accessor")
	}
	if _, ok := Str("x").AsNumber(); ok {
		t.Error("string as number must fail")
	}
	var zero Value
	if zero.IsValid() {
		t.Error("zero Value must be invalid")
	}
}

func TestValueEqualAcrossNumericKinds(t *testing.T) {
	if !Int(3).Equal(Num(3)) || !Num(3).Equal(Int(3)) {
		t.Error("3 and 3.0 must be equal")
	}
	if Int(3).Equal(Num(3.5)) {
		t.Error("3 and 3.5 must differ")
	}
	if Str("3").Equal(Int(3)) {
		t.Error("string \"3\" must not equal int 3")
	}
}

func TestEncodeKeyInjective(t *testing.T) {
	// Distinct tuples encode differently; numerically equal int/float
	// collide on purpose.
	a := EncodeKey([]Value{Str("ab"), Str("c")})
	b := EncodeKey([]Value{Str("a"), Str("bc")})
	if a == b {
		t.Error("string boundary collision")
	}
	if EncodeKey([]Value{Int(3)}) != EncodeKey([]Value{Num(3)}) {
		t.Error("3 and 3.0 must share a key")
	}
	if EncodeKey([]Value{Per(NewAnnual(3))}) == EncodeKey([]Value{Int(3)}) {
		t.Error("period 3 and int 3 must not share a key")
	}
	if EncodeKey([]Value{Per(NewAnnual(3))}) == EncodeKey([]Value{Per(NewQuarterly(0, 4))}) {
		t.Error("periods of different frequency must not share a key")
	}
}

func TestEncodeKeyQuick(t *testing.T) {
	f := func(a, b string, x, y int64) bool {
		ka := EncodeKey([]Value{Str(a), Int(x)})
		kb := EncodeKey([]Value{Str(b), Int(y)})
		return (ka == kb) == (a == b && x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAppendOrderedKeyMatchesCompare(t *testing.T) {
	vals := []Value{
		{}, // invalid (NULL): must sort after everything
		Num(math.Inf(-1)), Num(-3.5), Num(-0.0), Num(0), Int(0), Num(2.5),
		Int(3), Num(3), Num(1e18), Num(math.Inf(1)),
		Str(""), Str("a"), Str("ab"), Str("a\x00b"), Str("b"),
		Per(NewDaily(2001, time.January, 1)), Per(NewMonthly(2001, time.March)),
		Per(NewQuarterly(2001, 2)), Per(NewAnnual(1999)), Per(NewAnnual(2001)),
		Bool(false), Bool(true),
	}
	key := func(v Value) string { return string(AppendOrderedKey(nil, v)) }
	cmpRef := func(a, b Value) int {
		switch {
		case !a.IsValid() && !b.IsValid():
			return 0
		case !a.IsValid():
			return 1
		case !b.IsValid():
			return -1
		default:
			return a.Compare(b)
		}
	}
	for _, a := range vals {
		for _, b := range vals {
			got := strings.Compare(key(a), key(b))
			want := cmpRef(a, b)
			if got != want {
				t.Errorf("ordered key Compare(%v, %v) = %d, want %d", a, b, got, want)
			}
		}
	}
	f := func(x, y float64, s, u string) bool {
		return strings.Compare(key(Num(x)), key(Num(y))) == Num(x).Compare(Num(y)) &&
			strings.Compare(key(Str(s)), key(Str(u))) == Str(s).Compare(Str(u))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareTotalOrder(t *testing.T) {
	vals := []Value{Num(1), Int(2), Num(2.5), Str("a"), Str("b"),
		Per(NewDaily(2001, time.January, 1)), Per(NewAnnual(2001)), Bool(false), Bool(true)}
	for i, a := range vals {
		if a.Compare(a) != 0 {
			t.Errorf("Compare(self) != 0 for %v", a)
		}
		for j, b := range vals {
			if i == j {
				continue
			}
			if a.Compare(b) != -b.Compare(a) {
				t.Errorf("antisymmetry violated for %v vs %v", a, b)
			}
		}
	}
	if Num(1).Compare(Int(2)) != -1 || Int(2).Compare(Num(1)) != 1 {
		t.Error("cross-kind numeric comparison wrong")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Num(2.5), "2.5"},
		{Num(3), "3"},
		{Int(-7), "-7"},
		{Str("roma"), "roma"},
		{Per(NewQuarterly(2020, 2)), "2020-Q2"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.v.Kind(), got, tt.want)
		}
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue("42", TInt)
	if err != nil {
		t.Fatal(err)
	}
	if i, _ := v.AsInt(); i != 42 {
		t.Errorf("ParseValue int = %v", v)
	}
	v, err = ParseValue("2001-Q3", TQuarter)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := v.AsPeriod(); p != NewQuarterly(2001, 3) {
		t.Errorf("ParseValue period = %v", v)
	}
	if _, err := ParseValue("2001-Q3", TDay); err == nil {
		t.Error("frequency mismatch must fail")
	}
	if _, err := ParseValue("abc", TInt); err == nil {
		t.Error("bad int must fail")
	}
	v, err = ParseValue("north", TString)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "north" {
		t.Errorf("ParseValue string = %v", v)
	}
}
