package dispatch

import (
	"fmt"
	"strings"
	"time"

	"exlengine/internal/exlerr"
	"exlengine/internal/ops"
)

// Attempt records one execution attempt of a fragment on a target.
type Attempt struct {
	Target  ops.Target
	Attempt int // 1-based, counted per target
	// Err and Class describe the failure; Err is empty on success.
	Err     string
	Class   exlerr.Class
	Panic   bool
	Backoff time.Duration // backoff slept after this failed attempt
}

// FragmentReport describes everything that happened to one fragment:
// every attempt, every fallback target tried, and where it finally ran.
type FragmentReport struct {
	Index     int
	Cubes     []string
	Primary   ops.Target   // the target the determination engine assigned
	Final     ops.Target   // the target that succeeded; empty if the fragment failed
	Attempts  []Attempt    // in execution order, across all targets
	Fallbacks []ops.Target // fallback targets tried after the primary, in order
	// SkippedOpen lists targets never attempted because their circuit
	// breaker was open, in the order they would have been tried.
	SkippedOpen []ops.Target
	Elapsed     time.Duration
	// Incremental reports that the fragment ran under an incremental plan
	// and was maintained from input deltas (or reused outright).
	Incremental bool
	// FellBackFull reports that the fragment ran under an incremental plan
	// but recomputed in full; FallbackReason says why ("non-monotone
	// delta", "no base output", "target cannot maintain deltas", …).
	FellBackFull   bool
	FallbackReason string
}

// Retries counts the same-target retry attempts of the fragment.
func (f *FragmentReport) Retries() int {
	n := len(f.Attempts) - 1 - len(f.Fallbacks)
	if n < 0 {
		return 0
	}
	return n
}

// Degraded reports whether the fragment completed on a non-primary target.
func (f *FragmentReport) Degraded() bool { return f.Final != "" && f.Final != f.Primary }

// Report describes a whole dispatch run, one entry per fragment.
type Report struct {
	Fragments []FragmentReport
	Elapsed   time.Duration
}

// Retries totals same-target retries across all fragments.
func (r *Report) Retries() int {
	n := 0
	for i := range r.Fragments {
		n += r.Fragments[i].Retries()
	}
	return n
}

// Fallbacks totals fallback targets tried across all fragments.
func (r *Report) Fallbacks() int {
	n := 0
	for i := range r.Fragments {
		n += len(r.Fragments[i].Fallbacks)
	}
	return n
}

// String renders the report as the table `exlrun --report` prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dispatch: %d fragment(s), %d retry(s), %d fallback(s), %v\n",
		len(r.Fragments), r.Retries(), r.Fallbacks(), r.Elapsed)
	for i := range r.Fragments {
		f := &r.Fragments[i]
		status := string(f.Final)
		if f.Final == "" {
			status = "FAILED"
		} else if f.Degraded() {
			status = fmt.Sprintf("%s (degraded from %s)", f.Final, f.Primary)
		}
		if f.Incremental {
			status += " (incremental)"
		} else if f.FellBackFull {
			status += fmt.Sprintf(" (full: %s)", f.FallbackReason)
		}
		fmt.Fprintf(&b, "  fragment %d %v: planned %s, ran on %s, %d attempt(s), %v\n",
			f.Index, f.Cubes, f.Primary, status, len(f.Attempts), f.Elapsed)
		if len(f.SkippedOpen) > 0 {
			fmt.Fprintf(&b, "    skipped (breaker open): %v\n", f.SkippedOpen)
		}
		for _, a := range f.Attempts {
			if a.Err == "" {
				fmt.Fprintf(&b, "    %s attempt %d: ok\n", a.Target, a.Attempt)
				continue
			}
			kind := a.Class.String()
			if a.Panic {
				kind += ", panic"
			}
			fmt.Fprintf(&b, "    %s attempt %d: %s (%s)", a.Target, a.Attempt, a.Err, kind)
			if a.Backoff > 0 {
				fmt.Fprintf(&b, " [backoff %v]", a.Backoff)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
