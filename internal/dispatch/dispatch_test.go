package dispatch

import (
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/determine"
	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

type fixture struct {
	graph   *determine.Graph
	mapping *mapping.Mapping
	schemas map[string]model.Schema
	data    workload.Data
}

func setup(t *testing.T, prog string, data workload.Data) *fixture {
	t.Helper()
	p, err := exl.Parse(prog)
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	g, err := determine.Build(map[string]*exl.Analyzed{"p": a})
	if err != nil {
		t.Fatal(err)
	}
	schemas := make(map[string]model.Schema)
	for n, sch := range g.Schemas() {
		schemas[n] = sch
	}
	for n, sch := range m.Schemas {
		if _, ok := schemas[n]; !ok {
			schemas[n] = sch
		}
	}
	return &fixture{graph: g, mapping: m, schemas: schemas, data: data}
}

func (f *fixture) tgds(cube string) []*mapping.Tgd {
	var out []*mapping.Tgd
	for _, t := range f.mapping.Tgds {
		if t.Stmt == cube {
			out = append(out, t)
		}
	}
	return out
}

func reference(t *testing.T, f *fixture) chase.Instance {
	t.Helper()
	ref, err := chase.New(f.mapping).Solve(chase.Instance(f.data))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestDispatchMixedTargets runs the GDP plan with preference-based
// assignment: the plan spans SQL, frame and ETL fragments, and the final
// cubes must match the pure chase solution.
func TestDispatchMixedTargets(t *testing.T) {
	f := setup(t, workload.GDPProgram, workload.GDPSource(workload.GDPConfig{Days: 380, Regions: 3}))
	ref := reference(t, f)

	subs := determine.Partition(f.graph.FullPlan(), determine.AssignByPreference)
	if len(subs) < 2 {
		t.Fatalf("expected a mixed-target plan, got %+v", subs)
	}
	d := &Dispatcher{}
	got, err := d.Run(subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range f.mapping.Derived {
		if got[rel] == nil {
			t.Fatalf("missing result %s", rel)
		}
		if !got[rel].Equal(ref[rel], 1e-6) {
			t.Errorf("%s differs from chase:\n%s", rel, strings.Join(got[rel].Diff(ref[rel], 1e-6, 5), "\n"))
		}
	}
}

// TestDispatchEveryFixedTarget runs the full plan pinned to each target in
// turn; all must agree with the chase.
func TestDispatchEveryFixedTarget(t *testing.T) {
	f := setup(t, workload.GDPProgram, workload.GDPSource(workload.GDPConfig{Days: 380, Regions: 3}))
	ref := reference(t, f)
	for _, target := range ops.AllTargets {
		t.Run(string(target), func(t *testing.T) {
			subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(target))
			d := &Dispatcher{}
			got, err := d.Run(subs, f.tgds, f.schemas, f.data)
			if err != nil {
				t.Fatal(err)
			}
			for _, rel := range f.mapping.Derived {
				if !got[rel].Equal(ref[rel], 1e-6) {
					t.Errorf("%s differs on %s", rel, target)
				}
			}
		})
	}
}

// TestDispatchParallel exercises the wave scheduler with two independent
// programs that can run concurrently.
func TestDispatchParallel(t *testing.T) {
	// Two independent chains from independent sources, plus a join of both.
	prog := `
cube A(t: year) measure v
cube B(t: year) measure v
A2 := A * 2
B2 := B * 3
C  := A2 + B2
`
	a := model.NewCube(model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	b := model.NewCube(model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	for y := 2000; y < 2020; y++ {
		_ = a.Put([]model.Value{model.Per(model.NewAnnual(y))}, float64(y))
		_ = b.Put([]model.Value{model.Per(model.NewAnnual(y))}, float64(y)/2)
	}
	f := setup(t, prog, workload.Data{"A": a, "B": b})
	ref := reference(t, f)

	// Force one fragment per statement on alternating targets so the wave
	// scheduler has real work.
	i := 0
	alternating := func(determine.StmtRef) ops.Target {
		i++
		if i%2 == 0 {
			return ops.TargetSQL
		}
		return ops.TargetFrame
	}
	subs := determine.Partition(f.graph.FullPlan(), alternating)
	d := &Dispatcher{Parallel: true}
	got, err := d.Run(subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"A2", "B2", "C"} {
		if !got[rel].Equal(ref[rel], 1e-6) {
			t.Errorf("%s differs under parallel dispatch", rel)
		}
	}
}

func TestDispatchMissingInput(t *testing.T) {
	f := setup(t, "cube A(t: year) measure v\nB := A * 2", workload.Data{})
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetChase))
	d := &Dispatcher{}
	if _, err := d.Run(subs, f.tgds, f.schemas, map[string]*model.Cube{}); err == nil {
		t.Error("missing input cube must fail")
	}
}

func TestDispatchUnknownCube(t *testing.T) {
	f := setup(t, "cube A(t: year) measure v\nB := A * 2", workload.Data{})
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetChase))
	d := &Dispatcher{}
	// A TgdSource that knows nothing.
	empty := func(string) []*mapping.Tgd { return nil }
	if _, err := d.Run(subs, empty, f.schemas, f.data); err == nil {
		t.Error("missing tgds must fail")
	}
}
