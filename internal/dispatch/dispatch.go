// Package dispatch implements EXLEngine's dispatcher (Section 6): it
// assigns every determination subgraph to its target engine, runs the
// generated executables there — "each target engine then only executes its
// native code" — and moves cube data between engines through a shared
// snapshot, applying parallelization where the dependency DAG allows
// (independent subgraphs run concurrently, in waves).
package dispatch

import (
	"fmt"
	"sync"

	"exlengine/internal/chase"
	"exlengine/internal/determine"
	"exlengine/internal/etl"
	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/ops"
	"exlengine/internal/sqlengine"
	"exlengine/internal/sqlgen"
)

// Dispatcher executes determination plans against the target engines.
type Dispatcher struct {
	// Parallel enables wave-based concurrent execution of independent
	// subgraphs. Sequential execution gives the same results.
	Parallel bool
}

// TgdSource resolves the tgds generated for one derived cube (its
// statement's tgds, auxiliaries included, in stratification order).
type TgdSource func(cube string) []*mapping.Tgd

// Run executes the subgraphs over the snapshot (cube name -> instance),
// returning every derived cube computed. The snapshot must contain all
// elementary cubes the plan needs; derived cubes produced by one subgraph
// become inputs of later ones.
func (d *Dispatcher) Run(subs []determine.Subgraph, tgds TgdSource,
	schemas map[string]model.Schema, snap map[string]*model.Cube) (map[string]*model.Cube, error) {

	// Working snapshot shared across subgraphs.
	work := make(map[string]*model.Cube, len(snap))
	for k, v := range snap {
		work[k] = v
	}
	results := make(map[string]*model.Cube)

	frags := make([]*fragment, len(subs))
	for i, sub := range subs {
		f, err := buildFragment(sub, tgds, schemas)
		if err != nil {
			return nil, err
		}
		frags[i] = f
	}

	if !d.Parallel {
		for _, f := range frags {
			out, err := f.run(work)
			if err != nil {
				return nil, err
			}
			for k, v := range out {
				work[k] = v
				results[k] = v
			}
		}
		return results, nil
	}

	// Wave-based parallel execution: a fragment is ready when every input
	// produced by the plan is already available.
	produced := make(map[string]int) // cube -> fragment index
	for i, f := range frags {
		for _, c := range f.produces {
			produced[c] = i
		}
	}
	done := make([]bool, len(frags))
	for {
		var wave []int
		for i, f := range frags {
			if done[i] {
				continue
			}
			ready := true
			for _, in := range f.inputs {
				if j, ok := produced[in]; ok && !done[j] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, i)
			}
		}
		if len(wave) == 0 {
			break
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error
		for _, i := range wave {
			f := frags[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := f.run(work)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				for k, v := range out {
					results[k] = v
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		// Publish the wave's outputs to the shared snapshot.
		for _, i := range wave {
			for _, c := range frags[i].produces {
				if v, ok := results[c]; ok {
					work[c] = v
				}
			}
			done[i] = true
		}
	}
	for i := range frags {
		if !done[i] {
			return nil, fmt.Errorf("dispatch: unresolvable fragment dependencies")
		}
	}
	return results, nil
}

// fragment is one subgraph compiled into a self-contained mapping.
type fragment struct {
	target   ops.Target
	m        *mapping.Mapping
	produces []string // the subgraph's visible derived cubes
	inputs   []string // relations read from the shared snapshot
}

// buildFragment assembles the sub-mapping for a subgraph: the tgds of its
// statements in order, with the relations they read (and do not produce)
// acting as the fragment's elementary relations.
func buildFragment(sub determine.Subgraph, tgds TgdSource, schemas map[string]model.Schema) (*fragment, error) {
	f := &fragment{target: sub.Target}
	m := &mapping.Mapping{Schemas: make(map[string]model.Schema)}

	producedHere := make(map[string]bool)
	for _, ref := range sub.Stmts {
		ts := tgds(ref.Cube())
		if len(ts) == 0 {
			return nil, fmt.Errorf("dispatch: no tgds for cube %s", ref.Cube())
		}
		for _, t := range ts {
			m.Tgds = append(m.Tgds, t)
			producedHere[t.Target()] = true
			if sch, ok := schemas[t.Target()]; ok {
				m.Schemas[t.Target()] = sch
			} else {
				return nil, fmt.Errorf("dispatch: no schema for %s", t.Target())
			}
		}
		f.produces = append(f.produces, ref.Cube())
		m.Derived = append(m.Derived, ref.Cube())
	}
	seen := make(map[string]bool)
	for _, t := range m.Tgds {
		for _, a := range t.Lhs {
			if producedHere[a.Rel] || seen[a.Rel] {
				continue
			}
			seen[a.Rel] = true
			f.inputs = append(f.inputs, a.Rel)
			sch, ok := schemas[a.Rel]
			if !ok {
				return nil, fmt.Errorf("dispatch: no schema for input %s", a.Rel)
			}
			m.Schemas[a.Rel] = sch
			m.Elementary = append(m.Elementary, a.Rel)
		}
	}
	for i, t := range m.Tgds {
		t.Stratum = i
	}
	f.m = m
	return f, nil
}

// run executes the fragment on its target engine over the snapshot.
func (f *fragment) run(snap map[string]*model.Cube) (map[string]*model.Cube, error) {
	input := make(map[string]*model.Cube, len(f.inputs))
	for _, in := range f.inputs {
		c, ok := snap[in]
		if !ok {
			return nil, fmt.Errorf("dispatch: input cube %s not available for %s fragment", in, f.target)
		}
		input[in] = c
	}

	derived := make(map[string]bool, len(f.produces))
	for _, c := range f.produces {
		derived[c] = true
	}
	keep := func(all map[string]*model.Cube) map[string]*model.Cube {
		out := make(map[string]*model.Cube, len(f.produces))
		for name, c := range all {
			if derived[name] {
				out[name] = c
			}
		}
		return out
	}

	switch f.target {
	case ops.TargetChase:
		sol, err := chase.New(f.m).Solve(chase.Instance(input))
		if err != nil {
			return nil, err
		}
		return keep(sol), nil

	case ops.TargetSQL:
		db := sqlengine.NewDB()
		for _, in := range f.inputs {
			if err := db.LoadCube(input[in]); err != nil {
				return nil, err
			}
		}
		script, err := sqlgen.Translate(f.m)
		if err != nil {
			return nil, err
		}
		if err := sqlgen.Execute(script, db); err != nil {
			return nil, err
		}
		out := make(map[string]*model.Cube, len(f.produces))
		for _, name := range f.produces {
			c, err := db.ExtractCube(f.m.Schemas[name])
			if err != nil {
				return nil, err
			}
			out[name] = c
		}
		return out, nil

	case ops.TargetETL:
		job, err := etl.Translate(f.m, "dispatch")
		if err != nil {
			return nil, err
		}
		res, err := etl.Run(job, f.m, input)
		if err != nil {
			return nil, err
		}
		return keep(res), nil

	case ops.TargetFrame:
		script, err := frame.Translate(f.m)
		if err != nil {
			return nil, err
		}
		res, err := frame.Execute(script, f.m, input)
		if err != nil {
			return nil, err
		}
		return keep(res), nil

	default:
		return nil, fmt.Errorf("dispatch: unknown target %s", f.target)
	}
}
