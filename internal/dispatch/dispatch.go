// Package dispatch implements EXLEngine's dispatcher (Section 6): it
// assigns every determination subgraph to its target engine, runs the
// generated executables there — "each target engine then only executes its
// native code" — and moves cube data between engines through a shared
// snapshot, applying parallelization where the dependency DAG allows
// (independent subgraphs run concurrently, in waves).
//
// The dispatcher is fault-tolerant: runs are cancellable through a
// context, panics inside target engines are recovered into typed errors
// (exlerr), transient failures are retried with capped exponential
// backoff, and a fragment whose target keeps failing is re-routed to a
// fallback target permitted by the operator-support matrix, the chase
// being the universal last resort. Every attempt, retry and fallback is
// recorded in a Report.
package dispatch

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"exlengine/internal/chase"
	"exlengine/internal/determine"
	"exlengine/internal/etl"
	"exlengine/internal/exlerr"
	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
	"exlengine/internal/sqlengine"
	"exlengine/internal/sqlgen"
)

// Dispatcher executes determination plans against the target engines.
type Dispatcher struct {
	// Parallel enables wave-based concurrent execution of independent
	// subgraphs. Sequential execution gives the same results.
	Parallel bool
	// Retry governs same-target retries of transient failures. The zero
	// value performs a single attempt.
	Retry RetryPolicy
	// Sleep waits out retry backoffs; nil uses the real clock.
	Sleep Sleeper
	// Degrade enables fallback re-routing: a fragment whose target fails
	// (after retries) is re-run on the next target the operator-support
	// matrix permits, chase last.
	Degrade bool
	// FragmentTimeout bounds each fragment attempt; zero means no bound.
	FragmentTimeout time.Duration
	// Middleware wraps fragment execution, outermost first. Fault
	// injection (internal/faults) hooks in here.
	Middleware []Middleware
	// Breakers, when set, gates every target: a target whose breaker is
	// open is skipped (recorded in FragmentReport.SkippedOpen) and every
	// attempt outcome is fed back. governor.BreakerSet implements it.
	Breakers BreakerGate
}

// BreakerGate is the dispatcher's view of per-backend circuit breakers.
// Allow is consulted once per target per fragment before any attempt on
// it; Record receives every attempt outcome (nil for success). The
// dispatcher never reports run-level cancellation to the gate — the
// caller's deadline says nothing about the backend's health.
type BreakerGate interface {
	Allow(t ops.Target) bool
	Record(t ops.Target, err error)
}

// record feeds an attempt outcome to the breaker gate, if any.
func (d *Dispatcher) record(t ops.Target, err error) {
	if d.Breakers != nil {
		d.Breakers.Record(t, err)
	}
}

// Fragment describes one fragment attempt to middleware.
type Fragment struct {
	Index   int // fragment position in the plan
	Attempt int // 1-based attempt number on the current target
	Target  ops.Target
	Cubes   []string // the derived cubes the fragment produces
}

// Runner executes a fragment attempt over a snapshot.
type Runner func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error)

// Middleware wraps a Runner, observing or perturbing fragment execution.
type Middleware func(Runner) Runner

// TgdSource resolves the tgds generated for one derived cube (its
// statement's tgds, auxiliaries included, in stratification order).
type TgdSource func(cube string) []*mapping.Tgd

// Run executes the subgraphs over the snapshot (cube name -> instance),
// returning every derived cube computed. The snapshot must contain all
// elementary cubes the plan needs; derived cubes produced by one subgraph
// become inputs of later ones. Run is RunContext without cancellation,
// discarding the report.
func (d *Dispatcher) Run(subs []determine.Subgraph, tgds TgdSource,
	schemas map[string]model.Schema, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
	out, _, err := d.RunContext(context.Background(), subs, tgds, schemas, snap)
	return out, err
}

// RunContext executes the plan under a context: cancelling the context
// aborts the run between (and during) fragment attempts. The returned
// Report lists every attempt, retry and fallback, even when the run
// fails.
func (d *Dispatcher) RunContext(ctx context.Context, subs []determine.Subgraph, tgds TgdSource,
	schemas map[string]model.Schema, snap map[string]*model.Cube) (map[string]*model.Cube, *Report, error) {

	ctx, span := obs.StartSpan(ctx, "dispatch",
		obs.Int("fragments", len(subs)), obs.Bool("parallel", d.Parallel))
	out, rep, err := d.runPlan(ctx, subs, tgds, schemas, snap, nil)
	span.EndErr(err)
	return out, rep, err
}

// runPlan is RunContext behind the dispatch span. A non-nil incr puts
// the run in incremental mode: fragments consume the delta front and
// publish their outputs' movement back into it.
func (d *Dispatcher) runPlan(ctx context.Context, subs []determine.Subgraph, tgds TgdSource,
	schemas map[string]model.Schema, snap map[string]*model.Cube, incr *incrState) (map[string]*model.Cube, *Report, error) {

	start := time.Now()
	rep := &Report{Fragments: make([]FragmentReport, len(subs))}

	// Working snapshot shared across subgraphs.
	work := make(map[string]*model.Cube, len(snap))
	for k, v := range snap {
		work[k] = v
	}
	results := make(map[string]*model.Cube)

	frags := make([]*fragment, len(subs))
	for i, sub := range subs {
		f, err := buildFragment(sub, tgds, schemas)
		if err != nil {
			rep.Elapsed = time.Since(start)
			return nil, rep, err
		}
		frags[i] = f
	}

	if !d.Parallel {
		for i, f := range frags {
			out, fr, err := d.runFragment(ctx, i, subs[i], f, work, incr)
			rep.Fragments[i] = fr
			if err != nil {
				rep.Elapsed = time.Since(start)
				return nil, rep, err
			}
			for k, v := range out {
				work[k] = v
				results[k] = v
			}
		}
		rep.Elapsed = time.Since(start)
		return results, rep, nil
	}

	// Wave-based parallel execution: a fragment is ready when every input
	// produced by the plan is already available.
	produced := make(map[string]int) // cube -> fragment index
	for i, f := range frags {
		for _, c := range f.produces {
			produced[c] = i
		}
	}
	done := make([]bool, len(frags))
	for {
		var wave []int
		for i, f := range frags {
			if done[i] {
				continue
			}
			ready := true
			for _, in := range f.inputs {
				if j, ok := produced[in]; ok && !done[j] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, i)
			}
		}
		if len(wave) == 0 {
			break
		}
		var mu sync.Mutex
		var wg sync.WaitGroup
		var firstErr error
		for _, i := range wave {
			i := i
			f := frags[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, fr, err := d.runFragment(ctx, i, subs[i], f, work, incr)
				mu.Lock()
				defer mu.Unlock()
				rep.Fragments[i] = fr
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				for k, v := range out {
					results[k] = v
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			rep.Elapsed = time.Since(start)
			return nil, rep, firstErr
		}
		// Publish the wave's outputs to the shared snapshot. Fragments of
		// the wave that produced nothing (impossible today) would simply
		// publish nothing: failed attempts never reach this point, so the
		// shared snapshot only ever sees complete fragment outputs.
		for _, i := range wave {
			for _, c := range frags[i].produces {
				if v, ok := results[c]; ok {
					work[c] = v
				}
			}
			done[i] = true
		}
	}
	for i := range frags {
		if !done[i] {
			rep.Elapsed = time.Since(start)
			return nil, rep, fmt.Errorf("dispatch: unresolvable fragment dependencies")
		}
	}
	rep.Elapsed = time.Since(start)
	return results, rep, nil
}

// runFragment executes one fragment with retries and fallback
// degradation, recording every attempt in the report, in the span tree
// and in the metrics registry carried by the context.
func (d *Dispatcher) runFragment(ctx context.Context, idx int, sub determine.Subgraph,
	f *fragment, snap map[string]*model.Cube, incr *incrState) (map[string]*model.Cube, FragmentReport, error) {

	ctx, span := obs.StartSpan(ctx, "fragment",
		obs.Int("index", idx), obs.Strings("cubes", f.produces), obs.String("target", string(f.target)))
	out, fr, err := d.runFragmentAttempts(ctx, idx, sub, f, snap, incr)
	if fr.Final != "" {
		span.SetAttr(obs.String("final", string(fr.Final)))
	}
	span.EndErr(err)
	return out, fr, err
}

// runFragmentAttempts is runFragment behind the fragment span.
func (d *Dispatcher) runFragmentAttempts(ctx context.Context, idx int, sub determine.Subgraph,
	f *fragment, snap map[string]*model.Cube, incr *incrState) (map[string]*model.Cube, FragmentReport, error) {

	start := time.Now()
	met := obs.MetricsFrom(ctx)
	fr := FragmentReport{Index: idx, Cubes: append([]string(nil), f.produces...), Primary: f.target}

	targets := []ops.Target{f.target}
	if d.Degrade {
		targets = append(targets, determine.FallbackOrder(sub)...)
	}

	var oc incrOutcome
	runner := Runner(func(ctx context.Context, info Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
		if incr != nil {
			return f.runOnIncr(ctx, info.Target, snap, incr, &oc)
		}
		return f.runOn(ctx, info.Target, snap)
	})
	for i := len(d.Middleware) - 1; i >= 0; i-- {
		runner = d.Middleware[i](runner)
	}
	sleep := d.Sleep
	if sleep == nil {
		sleep = realSleep
	}

	var lastErr error
	tried := false // whether any target was actually attempted
	for _, target := range targets {
		if d.Breakers != nil && !d.Breakers.Allow(target) {
			// The target's circuit breaker is open: skip it without
			// spending the retry budget, and let the fallback order
			// provide the next candidate.
			fr.SkippedOpen = append(fr.SkippedOpen, target)
			met.Counter(obs.Label(obs.MetricBreakerSkips, "target", string(target))).Add(1)
			continue
		}
		if tried {
			fr.Fallbacks = append(fr.Fallbacks, target)
			met.Counter(obs.Label(obs.MetricFallbacks, "target", string(target))).Add(1)
		}
		tried = true
		for attempt := 1; ; attempt++ {
			actx, aspan := obs.StartSpan(ctx, "attempt",
				obs.String("target", string(target)), obs.Int("n", attempt))
			out, err := d.exec(actx, runner, Fragment{Index: idx, Attempt: attempt, Target: target, Cubes: fr.Cubes}, snap)
			aspan.EndErr(err)
			if err == nil {
				d.record(target, nil)
				fr.Attempts = append(fr.Attempts, Attempt{Target: target, Attempt: attempt})
				fr.Final = target
				fr.Incremental = oc.incremental
				fr.FellBackFull = oc.fellBack
				fr.FallbackReason = oc.reason
				fr.Elapsed = time.Since(start)
				met.Counter(obs.Label(obs.MetricFragments, "target", string(target))).Add(1)
				return out, fr, nil
			}
			lastErr = err
			rec := Attempt{Target: target, Attempt: attempt, Err: err.Error(),
				Class: exlerr.ClassOf(err), Panic: exlerr.IsPanic(err)}
			if rec.Panic {
				met.Counter(obs.MetricPanics).Add(1)
			}
			if exlerr.IsCancellation(err) {
				if ctx.Err() != nil {
					// The run itself was cancelled: stop, don't degrade —
					// and don't blame the backend.
					fr.Attempts = append(fr.Attempts, rec)
					fr.Elapsed = time.Since(start)
					return nil, fr, err
				}
				// Only the per-fragment timeout expired: the target is
				// slow, which is a transient target failure — retry, then
				// degrade like any other. The breaker must see it under
				// the reclassified class, or it would ignore the timeout
				// as caller cancellation.
				rec.Class = exlerr.Transient
				d.record(target, exlerr.New(exlerr.Transient, err))
			} else {
				d.record(target, err)
			}
			if rec.Class == exlerr.Transient && attempt < d.Retry.attempts() {
				backoff := d.Retry.Delay(attempt)
				if dl, ok := ctx.Deadline(); ok && backoff > 0 && time.Now().Add(backoff).After(dl) {
					// The run's deadline lands inside the backoff: sleeping
					// would only convert this typed failure into a context
					// timeout at the deadline. Fail fast instead.
					fr.Attempts = append(fr.Attempts, rec)
					fr.Elapsed = time.Since(start)
					return nil, fr, fmt.Errorf("dispatch: fragment %d %v: %v backoff exceeds the run deadline: %w",
						idx, fr.Cubes, backoff, lastErr)
				}
				rec.Backoff = backoff
				fr.Attempts = append(fr.Attempts, rec)
				met.Counter(obs.Label(obs.MetricRetries, "target", string(target))).Add(1)
				_, bspan := obs.StartSpan(ctx, "backoff", obs.Dur("delay", rec.Backoff))
				serr := sleep(ctx, rec.Backoff)
				bspan.EndErr(serr)
				if serr != nil {
					fr.Elapsed = time.Since(start)
					return nil, fr, serr
				}
				continue
			}
			fr.Attempts = append(fr.Attempts, rec)
			if rec.Class == exlerr.EgdViolation {
				// The data itself is inconsistent; every target computes
				// the same data-exchange semantics, so degradation would
				// only repeat the violation.
				met.Counter(obs.MetricEgdViolations).Add(1)
				fr.Elapsed = time.Since(start)
				return nil, fr, err
			}
			break // exhausted this target; degrade to the next
		}
	}
	fr.Elapsed = time.Since(start)
	if !tried {
		return nil, fr, exlerr.Overloadf("dispatch: fragment %d %v: every permitted target's circuit breaker is open",
			idx, fr.Cubes)
	}
	return nil, fr, fmt.Errorf("dispatch: fragment %d %v failed on every permitted target: %w", idx, fr.Cubes, lastErr)
}

// exec performs a single attempt: it applies the fragment timeout,
// isolates panics from the target engine (and any middleware) into typed
// errors, and refuses to start under a cancelled context.
func (d *Dispatcher) exec(ctx context.Context, runner Runner, fr Fragment,
	snap map[string]*model.Cube) (out map[string]*model.Cube, err error) {

	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	if d.FragmentTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.FragmentTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, exlerr.Recovered(r, debug.Stack())
		}
	}()
	return runner(ctx, fr, snap)
}

// fragment is one subgraph compiled into a self-contained mapping.
type fragment struct {
	target   ops.Target
	m        *mapping.Mapping
	produces []string // the subgraph's visible derived cubes
	inputs   []string // relations read from the shared snapshot
}

// buildFragment assembles the sub-mapping for a subgraph: the tgds of its
// statements in order, with the relations they read (and do not produce)
// acting as the fragment's elementary relations.
func buildFragment(sub determine.Subgraph, tgds TgdSource, schemas map[string]model.Schema) (*fragment, error) {
	f := &fragment{target: sub.Target}
	m := &mapping.Mapping{Schemas: make(map[string]model.Schema)}

	producedHere := make(map[string]bool)
	for _, ref := range sub.Stmts {
		ts := tgds(ref.Cube())
		if len(ts) == 0 {
			return nil, fmt.Errorf("dispatch: no tgds for cube %s", ref.Cube())
		}
		for _, t := range ts {
			// Shallow-copy the tgd: the source mapping is shared read-only
			// (between engines, via the compile cache), while the fragment
			// restratifies its private copies below.
			tc := *t
			m.Tgds = append(m.Tgds, &tc)
			producedHere[t.Target()] = true
			if sch, ok := schemas[t.Target()]; ok {
				m.Schemas[t.Target()] = sch
			} else {
				return nil, fmt.Errorf("dispatch: no schema for %s", t.Target())
			}
		}
		f.produces = append(f.produces, ref.Cube())
		m.Derived = append(m.Derived, ref.Cube())
	}
	seen := make(map[string]bool)
	for _, t := range m.Tgds {
		for _, a := range t.Lhs {
			if producedHere[a.Rel] || seen[a.Rel] {
				continue
			}
			seen[a.Rel] = true
			f.inputs = append(f.inputs, a.Rel)
			sch, ok := schemas[a.Rel]
			if !ok {
				return nil, fmt.Errorf("dispatch: no schema for input %s", a.Rel)
			}
			m.Schemas[a.Rel] = sch
			m.Elementary = append(m.Elementary, a.Rel)
		}
	}
	for i, t := range m.Tgds {
		t.Stratum = i
	}
	f.m = m
	return f, nil
}

// runOn executes the fragment on the given target engine over the
// snapshot. The target may differ from the fragment's assigned one when
// the dispatcher degrades. Each attempt reads the shared snapshot and
// returns a fresh output map, so a failed attempt leaves no trace.
func (f *fragment) runOn(ctx context.Context, target ops.Target, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
	input := make(map[string]*model.Cube, len(f.inputs))
	for _, in := range f.inputs {
		c, ok := snap[in]
		if !ok {
			return nil, fmt.Errorf("dispatch: input cube %s not available for %s fragment", in, target)
		}
		input[in] = c
	}

	derived := make(map[string]bool, len(f.produces))
	for _, c := range f.produces {
		derived[c] = true
	}
	keep := func(all map[string]*model.Cube) map[string]*model.Cube {
		out := make(map[string]*model.Cube, len(f.produces))
		for name, c := range all {
			if derived[name] {
				out[name] = c
			}
		}
		return out
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start := time.Now()
	out, err := f.execOn(ctx, target, input, keep)
	if err != nil {
		return nil, err
	}

	// Account for data movement and latency: tuples read from the shared
	// snapshot, tuples written back, and the target's wall-clock time
	// (successful attempts only, so latency histograms describe real work).
	var read, written int
	for _, c := range input {
		read += c.Len()
	}
	for _, c := range out {
		written += c.Len()
	}
	if sp := obs.CurrentSpan(ctx); sp != nil {
		sp.SetAttr(obs.Int("tuples_in", read))
		sp.SetAttr(obs.Int("tuples_out", written))
	}
	met := obs.MetricsFrom(ctx)
	met.Counter(obs.Label(obs.MetricTuplesRead, "target", string(target))).Add(int64(read))
	met.Counter(obs.Label(obs.MetricTuplesWritten, "target", string(target))).Add(int64(written))
	met.Histogram(obs.Label(obs.MetricTargetLatency, "target", string(target))).ObserveDuration(time.Since(start))
	return out, nil
}

// execOn runs the fragment's mapping on one concrete target engine.
func (f *fragment) execOn(ctx context.Context, target ops.Target, input map[string]*model.Cube,
	keep func(map[string]*model.Cube) map[string]*model.Cube) (map[string]*model.Cube, error) {

	switch target {
	case ops.TargetChase:
		sol, err := chase.New(f.m).SolveContext(ctx, chase.Instance(input))
		if err != nil {
			return nil, err
		}
		return keep(sol), nil

	case ops.TargetSQL:
		db := sqlengine.NewDB()
		for _, in := range f.inputs {
			if err := db.LoadCube(input[in]); err != nil {
				return nil, err
			}
		}
		script, err := sqlgen.Translate(f.m)
		if err != nil {
			return nil, err
		}
		if err := sqlgen.ExecuteContext(ctx, script, db); err != nil {
			return nil, err
		}
		out := make(map[string]*model.Cube, len(f.produces))
		for _, name := range f.produces {
			c, err := db.ExtractCube(f.m.Schemas[name])
			if err != nil {
				return nil, err
			}
			out[name] = c
		}
		return out, nil

	case ops.TargetETL:
		job, err := etl.Translate(f.m, "dispatch")
		if err != nil {
			return nil, err
		}
		res, err := etl.RunContext(ctx, job, f.m, input)
		if err != nil {
			return nil, err
		}
		return keep(res), nil

	case ops.TargetFrame:
		script, err := frame.Translate(f.m)
		if err != nil {
			return nil, err
		}
		res, err := frame.ExecuteContext(ctx, script, f.m, input)
		if err != nil {
			return nil, err
		}
		return keep(res), nil

	default:
		return nil, fmt.Errorf("dispatch: unknown target %s", target)
	}
}
