package dispatch

import (
	"context"
	"math"
	"time"
)

// RetryPolicy governs how transient fragment failures are retried on the
// same target before the dispatcher degrades to a fallback target.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per target; values
	// below 1 behave as 1 (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means no cap.
	MaxDelay time.Duration
}

// DefaultRetry is the policy the engine installs: three attempts with
// 10ms/20ms backoff, capped at one second.
var DefaultRetry = RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second}

// attempts normalizes MaxAttempts.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Delay returns the capped exponential backoff to sleep after the given
// failed attempt (1-based): BaseDelay * 2^(attempt-1), at most MaxDelay.
// With no explicit cap the doubling still saturates at the maximum
// Duration instead of overflowing: a wrapped-negative delay would make
// realSleep return immediately and turn a long backoff into a hot retry
// loop.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = time.Duration(math.MaxInt64)
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		if d > maxD/2 {
			return maxD
		}
		d *= 2
	}
	if d > maxD {
		return maxD
	}
	return d
}

// Sleeper waits out a backoff delay, returning early with the context
// error on cancellation. Tests inject a fake sleeper so no wall-clock
// time passes.
type Sleeper func(ctx context.Context, d time.Duration) error

// realSleep is the production Sleeper.
func realSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
