package dispatch

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"exlengine/internal/determine"
	"exlengine/internal/exlerr"
	"exlengine/internal/model"
	"exlengine/internal/ops"
	"exlengine/internal/workload"
)

// fakeSleep records backoff delays without consuming wall-clock time.
type fakeSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *fakeSleep) fn(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
	return ctx.Err()
}

// failN is middleware failing the first n attempts it sees with the
// given classified error, then passing through.
func failN(n int, class exlerr.Class) Middleware {
	var mu sync.Mutex
	return func(next Runner) Runner {
		return func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
			mu.Lock()
			fire := n > 0
			if fire {
				n--
			}
			mu.Unlock()
			if fire {
				return nil, exlerr.New(class, errors.New("injected"))
			}
			return next(ctx, fr, snap)
		}
	}
}

// panicOnTarget is middleware that panics every attempt on one target.
func panicOnTarget(target ops.Target) Middleware {
	return func(next Runner) Runner {
		return func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
			if fr.Target == target {
				panic("engine crashed")
			}
			return next(ctx, fr, snap)
		}
	}
}

func yearCube(name string, n int) *model.Cube {
	c := model.NewCube(model.NewSchema(name, []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
	for y := 2000; y < 2000+n; y++ {
		_ = c.Put([]model.Value{model.Per(model.NewAnnual(y))}, float64(y-1999))
	}
	return c
}

func simpleFixture(t *testing.T) *fixture {
	t.Helper()
	return setup(t, "cube A(t: year) measure v\nB := A * 2", workload.Data{"A": yearCube("A", 10)})
}

// TestRetryTransient: a transient failure on the first attempt retries on
// the same target with backoff and succeeds; the report records both
// attempts and the backoff, and the fake sleeper sees the delay.
func TestRetryTransient(t *testing.T) {
	f := simpleFixture(t)
	ref := reference(t, f)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	sl := &fakeSleep{}
	d := &Dispatcher{
		Retry:      RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond},
		Sleep:      sl.fn,
		Middleware: []Middleware{failN(1, exlerr.Transient)},
	}
	got, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	if !got["B"].Equal(ref["B"], 1e-9) {
		t.Error("retried run differs from chase")
	}
	fr := rep.Fragments[0]
	if len(fr.Attempts) != 2 || fr.Attempts[0].Err == "" || fr.Attempts[1].Err != "" {
		t.Fatalf("attempts = %+v, want fail then success", fr.Attempts)
	}
	if fr.Attempts[0].Class != exlerr.Transient || fr.Attempts[0].Backoff != 10*time.Millisecond {
		t.Errorf("first attempt = %+v", fr.Attempts[0])
	}
	if fr.Final != ops.TargetETL || fr.Degraded() {
		t.Errorf("fragment should succeed on its primary target: %+v", fr)
	}
	if rep.Retries() != 1 || rep.Fallbacks() != 0 {
		t.Errorf("retries=%d fallbacks=%d", rep.Retries(), rep.Fallbacks())
	}
	if len(sl.delays) != 1 || sl.delays[0] != 10*time.Millisecond {
		t.Errorf("sleeper saw %v", sl.delays)
	}
}

// TestFallbackAfterRetriesExhausted: transient failures exhaust the retry
// budget on the primary target, then the fragment degrades to a fallback
// target and completes with the chase-identical result.
func TestFallbackAfterRetriesExhausted(t *testing.T) {
	f := simpleFixture(t)
	ref := reference(t, f)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetSQL))

	sl := &fakeSleep{}
	d := &Dispatcher{
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Sleep:   sl.fn,
		Degrade: true,
		// Fail every sql attempt; the fallback target is untouched.
		Middleware: []Middleware{func(next Runner) Runner {
			return func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
				if fr.Target == ops.TargetSQL {
					return nil, exlerr.Transientf("sql down")
				}
				return next(ctx, fr, snap)
			}
		}},
	}
	got, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	if !got["B"].Equal(ref["B"], 1e-9) {
		t.Error("degraded run differs from chase")
	}
	fr := rep.Fragments[0]
	if !fr.Degraded() || fr.Primary != ops.TargetSQL || fr.Final == ops.TargetSQL {
		t.Fatalf("fragment should have degraded away from sql: %+v", fr)
	}
	if len(fr.Fallbacks) == 0 || fr.Fallbacks[0] != fr.Final {
		t.Errorf("fallbacks = %v, final = %v", fr.Fallbacks, fr.Final)
	}
	if fr.Retries() != 1 {
		t.Errorf("retries = %d, want 1 (two sql attempts)", fr.Retries())
	}
	if !strings.Contains(rep.String(), "degraded from sql") {
		t.Errorf("report rendering lost the degradation:\n%s", rep)
	}
}

// TestFallbackOnPanic: a panicking target engine is isolated — the panic
// becomes a typed Fatal error, no retry happens on that target, and the
// fragment re-routes.
func TestFallbackOnPanic(t *testing.T) {
	f := simpleFixture(t)
	ref := reference(t, f)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetFrame))

	d := &Dispatcher{
		Retry:      RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Sleep:      (&fakeSleep{}).fn,
		Degrade:    true,
		Middleware: []Middleware{panicOnTarget(ops.TargetFrame)},
	}
	got, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	if !got["B"].Equal(ref["B"], 1e-9) {
		t.Error("degraded run differs from chase")
	}
	fr := rep.Fragments[0]
	if len(fr.Attempts) < 2 || !fr.Attempts[0].Panic || fr.Attempts[0].Class != exlerr.Fatal {
		t.Fatalf("panic not recorded: %+v", fr.Attempts)
	}
	// Fatal errors must not be retried on the same target.
	if fr.Attempts[1].Target == ops.TargetFrame {
		t.Errorf("fatal panic retried on the same target: %+v", fr.Attempts)
	}
}

// TestEgdViolationNoFallback: an egd violation is a property of the data,
// so the dispatcher fails fast — no retry, no fallback.
func TestEgdViolationNoFallback(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetChase))

	d := &Dispatcher{
		Retry:      RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Sleep:      (&fakeSleep{}).fn,
		Degrade:    true,
		Middleware: []Middleware{failN(1, exlerr.EgdViolation)},
	}
	_, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err == nil {
		t.Fatal("egd violation must fail the run")
	}
	if exlerr.ClassOf(err) != exlerr.EgdViolation {
		t.Errorf("error class = %v", exlerr.ClassOf(err))
	}
	fr := rep.Fragments[0]
	if len(fr.Attempts) != 1 || len(fr.Fallbacks) != 0 {
		t.Errorf("egd violation retried or degraded: %+v", fr)
	}
}

// TestAllTargetsFail: when every permitted target fails, the run errors
// and the report shows the chase as the last resort tried.
func TestAllTargetsFail(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	d := &Dispatcher{
		Degrade: true,
		Middleware: []Middleware{func(Runner) Runner {
			return func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
				return nil, exlerr.Fatalf("target %s broken", fr.Target)
			}
		}},
	}
	_, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err == nil {
		t.Fatal("run must fail when every target fails")
	}
	fr := rep.Fragments[0]
	if fr.Final != "" {
		t.Errorf("no target succeeded but Final = %s", fr.Final)
	}
	if n := len(fr.Fallbacks); n == 0 || fr.Fallbacks[n-1] != ops.TargetChase {
		t.Errorf("chase must be the last resort: %v", fr.Fallbacks)
	}
}

// TestCancellation: a cancelled context aborts the run without retrying
// or degrading.
func TestCancellation(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := &Dispatcher{Retry: DefaultRetry, Degrade: true, Sleep: (&fakeSleep{}).fn}
	_, _, err := d.RunContext(ctx, subs, f.tgds, f.schemas, f.data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCancellationDuringBackoff: cancelling while the dispatcher sleeps
// between retries aborts promptly.
func TestCancellationDuringBackoff(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	ctx, cancel := context.WithCancel(context.Background())
	d := &Dispatcher{
		Retry: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond},
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel() // the user cancels mid-backoff
			return ctx.Err()
		},
		Middleware: []Middleware{failN(10, exlerr.Transient)},
	}
	_, _, err := d.RunContext(ctx, subs, f.tgds, f.schemas, f.data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFragmentTimeoutDegrades: a per-fragment timeout expiring on a slow
// target counts as a transient target failure and degrades instead of
// killing the run.
func TestFragmentTimeoutDegrades(t *testing.T) {
	f := simpleFixture(t)
	ref := reference(t, f)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	d := &Dispatcher{
		Retry:           RetryPolicy{MaxAttempts: 1},
		Degrade:         true,
		FragmentTimeout: 20 * time.Millisecond,
		// The primary target stalls past the timeout; fallbacks run free.
		Middleware: []Middleware{func(next Runner) Runner {
			return func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
				if fr.Target == ops.TargetETL {
					<-ctx.Done()
					return nil, ctx.Err()
				}
				return next(ctx, fr, snap)
			}
		}},
	}
	got, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	if !got["B"].Equal(ref["B"], 1e-9) {
		t.Error("degraded run differs from chase")
	}
	if fr := rep.Fragments[0]; !fr.Degraded() {
		t.Errorf("timeout should degrade: %+v", fr)
	}
}

// TestParallelPanicIsolation: panics inside parallel wave goroutines are
// recovered and degraded per fragment; the whole run still completes.
func TestParallelPanicIsolation(t *testing.T) {
	prog := `
cube A(t: year) measure v
cube B(t: year) measure v
A2 := A * 2
B2 := B * 3
C  := A2 + B2
`
	f := setup(t, prog, workload.Data{"A": yearCube("A", 15), "B": yearCube("B", 15)})
	ref := reference(t, f)

	i := 0
	alternating := func(determine.StmtRef) ops.Target {
		i++
		if i%2 == 0 {
			return ops.TargetSQL
		}
		return ops.TargetFrame
	}
	subs := determine.Partition(f.graph.FullPlan(), alternating)
	d := &Dispatcher{
		Parallel:   true,
		Degrade:    true,
		Retry:      RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Sleep:      (&fakeSleep{}).fn,
		Middleware: []Middleware{panicOnTarget(ops.TargetFrame)},
	}
	got, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"A2", "B2", "C"} {
		if !got[rel].Equal(ref[rel], 1e-9) {
			t.Errorf("%s differs after degraded parallel run", rel)
		}
	}
	if rep.Fallbacks() == 0 {
		t.Error("expected at least one fallback from the panicking frame target")
	}
}

// TestZeroValueDispatcherFailsFast: the zero-value dispatcher keeps the
// historical behaviour — no retry, no fallback, first error aborts.
func TestZeroValueDispatcherFailsFast(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	d := &Dispatcher{Middleware: []Middleware{failN(1, exlerr.Transient)}}
	_, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err == nil {
		t.Fatal("zero-value dispatcher must not retry")
	}
	if len(rep.Fragments[0].Attempts) != 1 {
		t.Errorf("attempts = %+v", rep.Fragments[0].Attempts)
	}
}

// TestBackoffSchedule checks the capped exponential backoff computation.
func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	want := []time.Duration{10, 20, 40, 50, 50}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if (RetryPolicy{}).Delay(3) != 0 {
		t.Error("zero policy must have zero delay")
	}
}

// TestBackoffNoOverflow is the regression test for the uncapped doubling
// bug: with MaxDelay zero (no cap), enough attempts made the delay wrap
// to a negative Duration, which realSleep treats as "don't sleep" — the
// retry loop went hot. The schedule must saturate instead, and stay
// monotonically non-decreasing along the way.
func TestBackoffNoOverflow(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 100, BaseDelay: time.Second}
	prev := time.Duration(0)
	for attempt := 1; attempt <= 100; attempt++ {
		d := p.Delay(attempt)
		if d <= 0 {
			t.Fatalf("Delay(%d) = %v; overflowed to non-positive", attempt, d)
		}
		if d < prev {
			t.Fatalf("Delay(%d) = %v < Delay(%d) = %v; schedule not monotone", attempt, d, attempt-1, prev)
		}
		prev = d
	}
	// Saturation point: 1s << 62 overflows int64; attempt 63 and beyond
	// must pin at MaxInt64 rather than wrap.
	if d := p.Delay(80); d != time.Duration(math.MaxInt64) {
		t.Errorf("Delay(80) = %v, want saturation at MaxInt64", d)
	}
	// An explicit cap still wins.
	capped := RetryPolicy{MaxAttempts: 100, BaseDelay: time.Second, MaxDelay: time.Minute}
	if d := capped.Delay(80); d != time.Minute {
		t.Errorf("capped Delay(80) = %v, want 1m", d)
	}
}
