package dispatch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"exlengine/internal/determine"
	"exlengine/internal/exlerr"
	"exlengine/internal/governor"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
)

// fakeGate is a scripted BreakerGate recording every Record call.
type fakeGate struct {
	mu     sync.Mutex
	open   map[ops.Target]bool
	record []error
	target []ops.Target
}

func (g *fakeGate) Allow(t ops.Target) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return !g.open[t]
}

func (g *fakeGate) Record(t ops.Target, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.target = append(g.target, t)
	g.record = append(g.record, err)
}

// TestBreakerSkipsOpenTarget: a fragment whose primary target's breaker
// is open never attempts it — the fallback order supplies the target, the
// skip lands in the report, and no fallback is charged (nothing was
// tried before it).
func TestBreakerSkipsOpenTarget(t *testing.T) {
	f := simpleFixture(t)
	ref := reference(t, f)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetSQL))

	gate := &fakeGate{open: map[ops.Target]bool{ops.TargetSQL: true}}
	d := &Dispatcher{Degrade: true, Breakers: gate}
	got, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	if !got["B"].Equal(ref["B"], 1e-9) {
		t.Error("re-routed run differs from chase")
	}
	fr := rep.Fragments[0]
	if len(fr.SkippedOpen) != 1 || fr.SkippedOpen[0] != ops.TargetSQL {
		t.Fatalf("SkippedOpen = %v, want [sql]", fr.SkippedOpen)
	}
	if fr.Final == ops.TargetSQL || fr.Final == "" {
		t.Fatalf("fragment ran on %q, want a non-sql target", fr.Final)
	}
	if len(fr.Fallbacks) != 0 {
		t.Errorf("fallbacks = %v; a skipped target must not charge a fallback", fr.Fallbacks)
	}
	if len(gate.record) != 1 || gate.record[0] != nil {
		t.Errorf("gate saw %v, want one success", gate.record)
	}
}

// TestBreakerAllOpen: when every permitted target's breaker is open the
// fragment fails immediately with a typed overload error and zero
// attempts.
func TestBreakerAllOpen(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	gate := &fakeGate{open: map[ops.Target]bool{
		ops.TargetSQL: true, ops.TargetETL: true, ops.TargetFrame: true, ops.TargetChase: true,
	}}
	d := &Dispatcher{Degrade: true, Breakers: gate}
	_, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err == nil {
		t.Fatal("run must fail when every breaker is open")
	}
	if !exlerr.IsOverload(err) {
		t.Fatalf("error class = %v (%v), want overload", exlerr.ClassOf(err), err)
	}
	fr := rep.Fragments[0]
	if len(fr.Attempts) != 0 {
		t.Errorf("attempts = %v, want none", fr.Attempts)
	}
	if len(fr.SkippedOpen) == 0 {
		t.Error("report lost the skipped targets")
	}
	if len(gate.record) != 0 {
		t.Errorf("gate recorded %v for never-attempted targets", gate.record)
	}
}

// TestBreakerRecordsOutcomes drives a real governor.BreakerSet through
// the dispatcher: repeated failures on the primary trip its breaker, the
// fragment degrades, and the fallback's success is recorded too.
func TestBreakerRecordsOutcomes(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	set := governor.NewBreakerSet(governor.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour})
	d := &Dispatcher{
		Retry:   RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond},
		Sleep:   (&fakeSleep{}).fn,
		Degrade: true,
		Middleware: []Middleware{func(next Runner) Runner {
			return func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
				if fr.Target == ops.TargetETL {
					return nil, exlerr.Transientf("etl down")
				}
				return next(ctx, fr, snap)
			}
		}},
	}
	d.Breakers = set
	_, rep, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fragments[0].Degraded() {
		t.Fatalf("fragment should have degraded: %+v", rep.Fragments[0])
	}
	if set.State(ops.TargetETL) != governor.BreakerOpen {
		t.Errorf("etl breaker state = %v after 2 failures, want open", set.State(ops.TargetETL))
	}
	if st := set.State(rep.Fragments[0].Final); st != governor.BreakerClosed {
		t.Errorf("fallback %s breaker state = %v, want closed", rep.Fragments[0].Final, st)
	}

	// The next run skips etl without attempting it: the breaker is open.
	mx := obs.NewRegistry()
	_, rep2, err := d.RunContext(obs.ContextWithMetrics(context.Background(), mx), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	fr := rep2.Fragments[0]
	if len(fr.SkippedOpen) != 1 || fr.SkippedOpen[0] != ops.TargetETL {
		t.Fatalf("second run SkippedOpen = %v, want [etl]", fr.SkippedOpen)
	}
	if got := mx.Counter(obs.Label(obs.MetricBreakerSkips, "target", "etl")).Value(); got != 1 {
		t.Errorf("skip counter = %d, want 1", got)
	}
}

// TestBreakerIgnoresRunCancellation: a run cancelled by its caller must
// not be reported to the gate — the backend did nothing wrong.
func TestBreakerIgnoresRunCancellation(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	gate := &fakeGate{}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Dispatcher{
		Degrade:  true,
		Breakers: gate,
		Middleware: []Middleware{func(next Runner) Runner {
			return func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
				cancel()
				<-ctx.Done()
				return nil, ctx.Err()
			}
		}},
	}
	_, _, err := d.RunContext(ctx, subs, f.tgds, f.schemas, f.data)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(gate.record) != 0 {
		t.Errorf("gate saw %v for a caller-cancelled run", gate.record)
	}
}

// TestBreakerSeesFragmentTimeout: a fragment-timeout expiry is a backend
// slowness signal and must reach the gate as a transient failure, not be
// swallowed as cancellation.
func TestBreakerSeesFragmentTimeout(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	gate := &fakeGate{}
	d := &Dispatcher{
		Retry:           RetryPolicy{MaxAttempts: 1},
		Degrade:         true,
		FragmentTimeout: 10 * time.Millisecond,
		Breakers:        gate,
		Middleware: []Middleware{func(next Runner) Runner {
			return func(ctx context.Context, fr Fragment, snap map[string]*model.Cube) (map[string]*model.Cube, error) {
				if fr.Target == ops.TargetETL {
					<-ctx.Done()
					return nil, ctx.Err()
				}
				return next(ctx, fr, snap)
			}
		}},
	}
	_, _, err := d.RunContext(context.Background(), subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	var sawTimeout bool
	for i, rec := range gate.record {
		if gate.target[i] == ops.TargetETL && rec != nil && exlerr.ClassOf(rec) == exlerr.Transient {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Errorf("gate never saw the etl timeout as a transient failure: %v", gate.record)
	}
}

// TestBackoffDeadlineFailFast: when the computed backoff overshoots the
// run's deadline, the dispatcher fails immediately with the underlying
// typed error instead of sleeping into the deadline.
func TestBackoffDeadlineFailFast(t *testing.T) {
	f := simpleFixture(t)
	subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(ops.TargetETL))

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	d := &Dispatcher{
		// The first retry would back off for 10 minutes — far past the
		// 200ms deadline. No fake sleeper: sleeping for real would hang
		// the test, which is the point.
		Retry:      RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Minute},
		Middleware: []Middleware{failN(5, exlerr.Transient)},
	}
	start := time.Now()
	_, rep, err := d.RunContext(ctx, subs, f.tgds, f.schemas, f.data)
	if err == nil {
		t.Fatal("run must fail")
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("dispatcher slept %v toward the deadline instead of failing fast", elapsed)
	}
	if exlerr.ClassOf(err) != exlerr.Transient {
		t.Errorf("error class = %v, want the underlying transient failure", exlerr.ClassOf(err))
	}
	fr := rep.Fragments[0]
	if len(fr.Attempts) != 1 || fr.Attempts[0].Backoff != 0 {
		t.Errorf("attempts = %+v, want one attempt with no backoff slept", fr.Attempts)
	}
}
