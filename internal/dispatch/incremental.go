// Incremental dispatch: fragments are executed against the deltas of
// their inputs instead of from scratch. The chase maintains its output
// per affected point (chase.SolveIncremental); the SQL engine runs
// INSERT-delta scripts when the fragment's mapping is monotone over the
// changed relations (sqlgen.TranslateDelta); every other target — and
// every non-maintainable shape — recomputes in full, which is recorded
// as FellBackFull in the fragment report. Either way the fragment's
// produced cubes are diffed against their previous versions, so the
// delta front keeps propagating to downstream fragments even across a
// full recompute.
package dispatch

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"exlengine/internal/chase"
	"exlengine/internal/determine"
	"exlengine/internal/model"
	"exlengine/internal/obs"
	"exlengine/internal/ops"
	"exlengine/internal/sqlengine"
	"exlengine/internal/sqlgen"
)

// IncrPlan seeds an incremental dispatch run with what is known about
// how the inputs moved since the previous run.
type IncrPlan struct {
	// Deltas maps changed relations to their tuple-level deltas.
	// Relations absent from Deltas and FullOnly are unchanged.
	Deltas map[string]*model.CubeDelta
	// FullOnly marks relations known to have changed without a usable
	// delta; fragments reading one recompute in full.
	FullOnly map[string]bool
	// Bases holds the previous output version of every derived cube the
	// plan produces. A fragment whose produced cube has no base here is
	// recomputed in full and marked FullOnly for its consumers.
	Bases map[string]*model.Cube
}

// RunContextIncr is RunContext under an incremental plan: fragments
// consume the input deltas, reuse or maintain their previous outputs
// where the mapping shape permits, and fall back to full recomputation
// where it does not — the results are byte-identical to RunContext
// either way.
func (d *Dispatcher) RunContextIncr(ctx context.Context, subs []determine.Subgraph, tgds TgdSource,
	schemas map[string]model.Schema, snap map[string]*model.Cube, plan *IncrPlan) (map[string]*model.Cube, *Report, error) {

	ctx, span := obs.StartSpan(ctx, "dispatch",
		obs.Int("fragments", len(subs)), obs.Bool("parallel", d.Parallel), obs.Bool("incremental", true))
	out, rep, err := d.runPlan(ctx, subs, tgds, schemas, snap, newIncrState(plan))
	span.EndErr(err)
	return out, rep, err
}

// incrState is the delta front shared by the fragments of one run:
// input deltas seed it, and every completed fragment publishes its
// output deltas for the fragments downstream. Fragments of one wave
// read it concurrently while never racing a publish for a cube they
// consume (a consumer is only scheduled after its producer's wave), so
// the mutex alone is enough.
type incrState struct {
	mu       sync.Mutex
	deltas   map[string]*model.CubeDelta
	fullOnly map[string]bool
	bases    map[string]*model.Cube
}

func newIncrState(p *IncrPlan) *incrState {
	s := &incrState{
		deltas:   make(map[string]*model.CubeDelta),
		fullOnly: make(map[string]bool),
		bases:    make(map[string]*model.Cube),
	}
	if p == nil {
		return s
	}
	for name, d := range p.Deltas {
		if d != nil && !d.Empty() {
			s.deltas[name] = d
		}
	}
	for name, v := range p.FullOnly {
		if v {
			s.fullOnly[name] = true
		}
	}
	for name, c := range p.Bases {
		if c != nil {
			s.bases[name] = c
		}
	}
	return s
}

// fragView is one fragment's consistent view of the delta front.
type fragView struct {
	deltas   map[string]*model.CubeDelta // changed fragment inputs
	fullOnly map[string]bool             // fragment inputs changed without a delta
	bases    map[string]*model.Cube      // previous outputs of the fragment's produces
}

func (s *incrState) view(f *fragment) *fragView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := &fragView{
		deltas:   make(map[string]*model.CubeDelta),
		fullOnly: make(map[string]bool),
		bases:    make(map[string]*model.Cube),
	}
	for _, in := range f.inputs {
		if s.fullOnly[in] {
			v.fullOnly[in] = true
		} else if d := s.deltas[in]; d != nil {
			v.deltas[in] = d
		}
	}
	for _, name := range f.produces {
		if b := s.bases[name]; b != nil {
			v.bases[name] = b
		}
	}
	return v
}

// reuse returns the previous outputs verbatim, possible only when every
// produced cube has a base.
func (v *fragView) reuse(f *fragment) (map[string]*model.Cube, bool) {
	out := make(map[string]*model.Cube, len(f.produces))
	for _, name := range f.produces {
		b := v.bases[name]
		if b == nil {
			return nil, false
		}
		out[name] = b
	}
	return out, true
}

// publish records the movement of a completed fragment's outputs.
// outDeltas carries exact deltas when the target derived them (absent
// entry: unchanged); nil means "not derived", and the outputs are
// diffed against their bases here. A produced cube without a base
// becomes FullOnly for its consumers.
func (s *incrState) publish(f *fragment, out map[string]*model.Cube, outDeltas map[string]*model.CubeDelta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range f.produces {
		cur := out[name]
		base := s.bases[name]
		if cur == nil || base == nil {
			s.fullOnly[name] = true
			continue
		}
		if cur == base { // reused untouched
			continue
		}
		var d *model.CubeDelta
		if outDeltas != nil {
			d = outDeltas[name]
		} else {
			d = model.DiffCubes(name, base, cur)
		}
		if d != nil && !d.Empty() {
			s.deltas[name] = d
		}
	}
}

// incrOutcome captures how the last attempt of a fragment ran; the
// successful attempt's value lands in the fragment report.
type incrOutcome struct {
	incremental bool
	fellBack    bool
	reason      string
	outDeltas   map[string]*model.CubeDelta
}

// runOnIncr is runOn under an incremental plan: it executes the
// fragment against its delta view and publishes the movement of its
// outputs for downstream fragments.
func (f *fragment) runOnIncr(ctx context.Context, target ops.Target, snap map[string]*model.Cube,
	st *incrState, oc *incrOutcome) (map[string]*model.Cube, error) {

	*oc = incrOutcome{}
	input := make(map[string]*model.Cube, len(f.inputs))
	for _, in := range f.inputs {
		c, ok := snap[in]
		if !ok {
			return nil, fmt.Errorf("dispatch: input cube %s not available for %s fragment", in, target)
		}
		input[in] = c
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v := st.view(f)

	start := time.Now()
	out, err := f.execOnIncr(ctx, target, input, v, oc)
	if err != nil {
		return nil, err
	}
	st.publish(f, out, oc.outDeltas)

	met := obs.MetricsFrom(ctx)
	met.Histogram(obs.Label(obs.MetricTargetLatency, "target", string(target))).ObserveDuration(time.Since(start))
	if oc.fellBack {
		met.Counter(obs.Label(obs.MetricIncrFellBack, "target", string(target))).Add(1)
		return out, nil
	}
	met.Counter(obs.Label(obs.MetricIncrFragments, "target", string(target))).Add(1)
	var din, full int
	for name, d := range v.deltas {
		din += d.Size()
		if c := input[name]; c != nil {
			full += c.Len()
		}
	}
	met.Counter(obs.MetricIncrDeltaTuples).Add(int64(din))
	met.Counter(obs.MetricIncrFullTuples).Add(int64(full))
	if sp := obs.CurrentSpan(ctx); sp != nil {
		sp.SetAttr(obs.Int("delta_tuples_in", din))
	}
	return out, nil
}

// execOnIncr executes the fragment incrementally on one target, falling
// back to the target's full execution path when the shape cannot be
// maintained.
func (f *fragment) execOnIncr(ctx context.Context, target ops.Target, input map[string]*model.Cube,
	v *fragView, oc *incrOutcome) (map[string]*model.Cube, error) {

	derived := make(map[string]bool, len(f.produces))
	for _, c := range f.produces {
		derived[c] = true
	}
	keep := func(all map[string]*model.Cube) map[string]*model.Cube {
		out := make(map[string]*model.Cube, len(f.produces))
		for name, c := range all {
			if derived[name] {
				out[name] = c
			}
		}
		return out
	}

	// Nothing this fragment reads moved and every output has a previous
	// version: reuse them without running any target at all.
	if len(v.deltas) == 0 && len(v.fullOnly) == 0 {
		if out, ok := v.reuse(f); ok {
			oc.incremental = true
			oc.outDeltas = map[string]*model.CubeDelta{}
			return out, nil
		}
	}

	switch target {
	case ops.TargetChase:
		din := &chase.DeltaInput{Deltas: v.deltas, FullOnly: v.fullOnly, BaseOut: v.bases}
		sol, od, stats, err := chase.New(f.m).SolveIncremental(ctx, chase.Instance(input), din)
		if err != nil {
			return nil, err
		}
		if stats.Full > 0 {
			oc.fellBack = true
			oc.reason = fmt.Sprintf("%d of %d tgds recomputed in full", stats.Full, stats.Tgds)
		} else {
			oc.incremental = true
		}
		oc.outDeltas = od
		return keep(sol), nil

	case ops.TargetSQL:
		out, od, ok, err := f.execSQLIncr(ctx, input, v)
		if err != nil {
			return nil, err
		}
		if ok {
			oc.incremental = true
			oc.outDeltas = od
			return out, nil
		}
		oc.fellBack = true
		oc.reason = "mapping not monotone over the changed relations"
		return f.execOn(ctx, target, input, keep)

	default:
		// Frame and ETL evaluate whole relations; there is no delta entry
		// point. Their outputs are still diffed at publish, so downstream
		// fragments stay incremental.
		oc.fellBack = true
		oc.reason = fmt.Sprintf("target %s cannot maintain deltas", target)
		return f.execOn(ctx, target, input, keep)
	}
}

// execSQLIncr maintains the fragment with an INSERT-delta SQL script.
// ok is false when the shape disqualifies it: a non-pure-insert delta,
// a full-only input, a missing base, auxiliary relations (their previous
// contents are not stored anywhere), or a non-monotone mapping.
func (f *fragment) execSQLIncr(ctx context.Context, input map[string]*model.Cube,
	v *fragView) (map[string]*model.Cube, map[string]*model.CubeDelta, bool, error) {

	if len(v.fullOnly) > 0 {
		return nil, nil, false, nil
	}
	changed := make(map[string]bool, len(v.deltas))
	for name, d := range v.deltas {
		if !d.PureInsert() {
			return nil, nil, false, nil
		}
		changed[name] = true
	}
	produced := make(map[string]bool, len(f.produces))
	for _, name := range f.produces {
		if v.bases[name] == nil {
			return nil, nil, false, nil
		}
		produced[name] = true
	}
	for _, t := range f.m.Tgds {
		if !produced[t.Target()] {
			return nil, nil, false, nil // auxiliary relation: no stored base
		}
	}

	script, affected, err := sqlgen.TranslateDelta(f.m, changed)
	if err != nil {
		// Non-monotone (or otherwise untranslatable): full refresh.
		return nil, nil, false, nil
	}

	db := sqlengine.NewDB()
	for _, in := range f.inputs {
		if err := db.LoadCube(input[in]); err != nil {
			return nil, nil, false, err
		}
	}
	for _, name := range f.produces {
		if err := db.LoadCube(v.bases[name]); err != nil {
			return nil, nil, false, err
		}
	}
	for _, name := range sortedNames(changed) {
		dc, err := sqlgen.DeltaCube(f.m.Schemas[name], v.deltas[name])
		if err != nil {
			return nil, nil, false, err
		}
		if err := db.LoadCube(dc); err != nil {
			return nil, nil, false, err
		}
	}
	if err := sqlgen.ExecuteContext(ctx, script, db); err != nil {
		return nil, nil, false, err
	}

	affectedSet := make(map[string]bool, len(affected))
	for _, name := range affected {
		affectedSet[name] = true
	}
	out := make(map[string]*model.Cube, len(f.produces))
	outDeltas := make(map[string]*model.CubeDelta, len(affected))
	for _, name := range f.produces {
		if !affectedSet[name] {
			out[name] = v.bases[name]
			continue
		}
		cur, err := db.ExtractCube(f.m.Schemas[name])
		if err != nil {
			return nil, nil, false, err
		}
		out[name] = cur
		// The delta side table holds the inserted bindings; rows whose key
		// already existed carry the same value (the chase's egd) and are
		// not additions.
		sch := f.m.Schemas[name]
		sch.Name = sqlgen.DeltaTable(name)
		dcube, err := db.ExtractCube(sch)
		if err != nil {
			return nil, nil, false, err
		}
		base := v.bases[name]
		od := &model.CubeDelta{Name: name, Base: base, Current: cur}
		for _, tu := range dcube.Tuples() {
			if _, had := base.Get(tu.Dims); !had {
				od.Added = append(od.Added, tu)
			}
		}
		outDeltas[name] = od
	}
	return out, outDeltas, true, nil
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
