package dispatch

import (
	"strings"
	"testing"

	"exlengine/internal/determine"
	"exlengine/internal/model"
	"exlengine/internal/ops"
	"exlengine/internal/sqlgen"
	"exlengine/internal/workload"
)

const padProgram = `
cube A(t: year) measure v
cube B(t: year) measure v
S := vsum0(A, B)
D := vsub0(A, B) * 2
`

func padData(t *testing.T) workload.Data {
	t.Helper()
	mk := func(name string, from, to int, base float64) *model.Cube {
		c := model.NewCube(model.NewSchema(name, []model.Dim{{Name: "t", Type: model.TYear}}, "v"))
		for y := from; y <= to; y++ {
			if err := c.Put([]model.Value{model.Per(model.NewAnnual(y))}, base+float64(y-from)); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	return workload.Data{"A": mk("A", 2000, 2004, 10), "B": mk("B", 2002, 2006, 100)}
}

// TestPadVectorAcrossEngines validates vsum0/vsub0 on every target that
// supports them (all but SQL) against the chase.
func TestPadVectorAcrossEngines(t *testing.T) {
	f := setup(t, padProgram, padData(t))
	ref := reference(t, f)
	for _, target := range []ops.Target{ops.TargetChase, ops.TargetETL, ops.TargetFrame} {
		t.Run(string(target), func(t *testing.T) {
			subs := determine.Partition(f.graph.FullPlan(), determine.FixedAssigner(target))
			d := &Dispatcher{}
			got, err := d.Run(subs, f.tgds, f.schemas, f.data)
			if err != nil {
				t.Fatal(err)
			}
			for _, rel := range []string{"S", "D"} {
				if !got[rel].Equal(ref[rel], 1e-9) {
					t.Errorf("%s differs on %s:\n%s", rel, target,
						strings.Join(got[rel].Diff(ref[rel], 1e-9, 5), "\n"))
				}
			}
		})
	}
}

// TestPadVectorSQLUnsupported: the SQL translator refuses padded tgds, and
// the preference-based assigner therefore never routes them to SQL.
func TestPadVectorSQLUnsupported(t *testing.T) {
	f := setup(t, padProgram, padData(t))
	if _, err := sqlgen.Translate(f.mapping); err == nil {
		t.Error("SQL translation of vsum0 must fail")
	}
	subs := determine.Partition(f.graph.FullPlan(), determine.AssignByPreference)
	for _, s := range subs {
		if s.Target == ops.TargetSQL {
			t.Errorf("pad statements routed to SQL: %+v", subs)
		}
	}
	// The preference-based run still succeeds end to end.
	d := &Dispatcher{}
	ref := reference(t, f)
	got, err := d.Run(subs, f.tgds, f.schemas, f.data)
	if err != nil {
		t.Fatal(err)
	}
	if !got["S"].Equal(ref["S"], 1e-9) {
		t.Error("preference-routed pad program differs from chase")
	}
}
