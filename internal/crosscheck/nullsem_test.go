package crosscheck

import (
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/etl"
	"exlengine/internal/exl"
	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/sqlengine"
	"exlengine/internal/sqlgen"
)

// TestNullSemanticsAcrossEngines pins down how undefined points flow
// through every target engine. The program divides by a series that is
// zero at some periods, so D1 has holes exactly there; cubes derived from
// D1 inherit the holes. On the SQL target those holes are NULLs moving
// through predicates, which makes this a cross-engine regression test for
// the three-valued logic fix: all targets must agree with the chase on
// which tuples exist at all.
func TestNullSemanticsAcrossEngines(t *testing.T) {
	const src = `
cube A(t: quarter) measure v
cube B(t: quarter) measure v
D1 := A / B
D2 := D1 + A
D3 := D1 - B
D4 := sum(D1)
D5 := D1 * B
D6 := abs(D1)
`
	schemaA := model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TQuarter}}, "v")
	schemaB := model.NewSchema("B", []model.Dim{{Name: "t", Type: model.TQuarter}}, "v")
	a := model.NewCube(schemaA)
	bb := model.NewCube(schemaB)
	for i := 0; i < 8; i++ {
		q := model.NewQuarterly(2000, 1).Shift(int64(i))
		if err := a.Put([]model.Value{model.Per(q)}, float64(i+1)); err != nil {
			t.Fatal(err)
		}
		// B is zero on every other quarter: A/B is undefined there.
		if err := bb.Put([]model.Value{model.Per(q)}, float64(i%2)); err != nil {
			t.Fatal(err)
		}
	}
	data := map[string]*model.Cube{"A": a, "B": bb}

	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	an, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(an)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chase.New(m).Solve(chase.Instance(data))
	if err != nil {
		t.Fatal(err)
	}
	// The holes are real: D1 keeps only the odd quarters.
	if got := ref["D1"].Len(); got != 4 {
		t.Fatalf("chase D1 has %d points, want 4 (B=0 rows undefined)", got)
	}

	compare := func(engineName string, got map[string]*model.Cube) {
		t.Helper()
		for _, rel := range m.Derived {
			if got[rel] == nil {
				t.Fatalf("%s: missing %s", engineName, rel)
			}
			if !got[rel].Equal(ref[rel], 1e-9) {
				t.Errorf("%s: %s differs from chase\n%s", engineName, rel,
					strings.Join(got[rel].Diff(ref[rel], 1e-9, 5), "\n"))
			}
		}
	}

	fs, err := frame.Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := frame.Execute(fs, m, data)
	if err != nil {
		t.Fatal(err)
	}
	compare("frame", fres)

	job, err := etl.Translate(m, "nullsem")
	if err != nil {
		t.Fatal(err)
	}
	eres, err := etl.Run(job, m, data)
	if err != nil {
		t.Fatal(err)
	}
	compare("etl", eres)

	db := sqlengine.NewDB()
	for _, name := range m.Elementary {
		if err := db.LoadCube(data[name]); err != nil {
			t.Fatal(err)
		}
	}
	script, err := sqlgen.Translate(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sqlgen.Execute(script, db); err != nil {
		t.Fatal(err)
	}
	sres := make(map[string]*model.Cube)
	for _, rel := range m.Derived {
		c, err := db.ExtractCube(m.Schemas[rel])
		if err != nil {
			t.Fatal(err)
		}
		sres[rel] = c
	}
	compare("sql", sres)
}
