package crosscheck

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"exlengine/internal/chase"
	"exlengine/internal/engine"
	"exlengine/internal/exl"
	"exlengine/internal/exlerr"
	"exlengine/internal/faults"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// noSleep is the fake backoff sleeper: tests never touch the wall clock.
func noSleep(context.Context, time.Duration) error { return nil }

// degradedRun registers the program, loads the data, and runs the engine
// with the injector installed, returning the engine and its report.
func degradedRun(t *testing.T, src string, data map[string]*model.Cube, in *faults.Injector) (*engine.Engine, *engine.Report) {
	t.Helper()
	opts := []engine.Option{engine.WithSleeper(noSleep)}
	if in != nil {
		opts = append(opts, engine.WithDispatchMiddleware(in.Middleware()))
	}
	e := engine.New(opts...)
	if err := e.RegisterProgram("p", src); err != nil {
		t.Fatalf("register: %v\n%s", err, src)
	}
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, c := range data {
		if err := e.PutCube(c, t0); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatalf("degraded run failed: %v\n%s", err, src)
	}
	return e, rep
}

// chaseRef solves the generated mapping with the chase.
func chaseRef(t *testing.T, src string, data map[string]*model.Cube) (*mapping.Mapping, chase.Instance) {
	t.Helper()
	prog, err := exl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatalf("analyze: %v\n%s", err, src)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatalf("mapping: %v\n%s", err, src)
	}
	ref, err := chase.New(m).Solve(chase.Instance(data))
	if err != nil {
		t.Fatalf("chase: %v\n%s", err, src)
	}
	return m, ref
}

// TestRandomProgramsOneTransientFault runs random programs through the
// full engine with exactly one transient fault injected per run — on the
// first attempt of a seed-chosen fragment — and checks that the recovered
// run's cubes equal the chase solution exactly.
func TestRandomProgramsOneTransientFault(t *testing.T) {
	const programs = 25
	for seed := int64(300); seed < 300+programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := newGenerator(seed)
			for i := 0; i < 6; i++ {
				g.addStmt()
			}
			src := g.source()
			data := g.data()
			m, ref := chaseRef(t, src, data)

			// A clean run tells us how many fragments the plan dispatches,
			// so the fault lands on a seed-chosen one.
			_, clean := degradedRun(t, src, data, nil)
			n := len(clean.Fragments)
			if n == 0 {
				t.Fatalf("no fragments dispatched\n%s", src)
			}
			in := faults.TransientOnce(int(seed) % n)

			e, rep := degradedRun(t, src, data, in)
			if len(in.Fired()) != 1 {
				t.Fatalf("injector fired %d times, want 1", len(in.Fired()))
			}
			if rep.Retries != 1 {
				t.Errorf("Retries = %d, want 1\n%+v", rep.Retries, rep.Fragments)
			}
			for _, rel := range m.Derived {
				got, ok := e.Cube(rel)
				if !ok {
					t.Fatalf("missing %s after recovered run\n%s", rel, src)
				}
				if !got.Equal(ref[rel], 1e-6) {
					t.Errorf("%s differs from chase after retry\nprogram:\n%s\ndiff:\n%s",
						rel, src, strings.Join(got.Diff(ref[rel], 1e-6, 5), "\n"))
				}
			}
		})
	}
}

// TestRandomProgramsOneFatalFault is the degradation variant: a fatal
// error on the first attempt of a seed-chosen fragment forces a fallback
// target, and the degraded run must still equal the chase exactly.
func TestRandomProgramsOneFatalFault(t *testing.T) {
	const programs = 25
	for seed := int64(400); seed < 400+programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := newGenerator(seed)
			for i := 0; i < 6; i++ {
				g.addStmt()
			}
			src := g.source()
			data := g.data()
			m, ref := chaseRef(t, src, data)

			_, clean := degradedRun(t, src, data, nil)
			n := len(clean.Fragments)
			if n == 0 {
				t.Fatalf("no fragments dispatched\n%s", src)
			}
			frag := int(seed) % n
			in := faults.NewInjector(faults.Fault{
				Fragment: frag, Attempt: 1, Kind: faults.Error, Class: exlerr.Fatal,
			})

			e, rep := degradedRun(t, src, data, in)
			if len(in.Fired()) != 1 {
				t.Fatalf("injector fired %d times, want 1", len(in.Fired()))
			}
			if rep.Fallbacks != 1 {
				t.Errorf("Fallbacks = %d, want 1\n%+v", rep.Fallbacks, rep.Fragments)
			}
			fr := rep.Fragments[frag]
			if !fr.Degraded() || fr.Final == fr.Primary {
				t.Errorf("fragment %d not degraded: %+v", frag, fr)
			}
			for _, rel := range m.Derived {
				got, ok := e.Cube(rel)
				if !ok {
					t.Fatalf("missing %s after degraded run\n%s", rel, src)
				}
				if !got.Equal(ref[rel], 1e-6) {
					t.Errorf("%s differs from chase after degradation to %v\nprogram:\n%s\ndiff:\n%s",
						rel, fr.Final, src, strings.Join(got.Diff(ref[rel], 1e-6, 5), "\n"))
				}
			}
		})
	}
}
