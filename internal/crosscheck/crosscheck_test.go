// Package crosscheck randomly generates EXL programs and source instances
// and verifies the paper's central correctness property at scale: the
// chase solution of the generated schema mapping equals the result of
// executing the translated mapping on every target engine.
package crosscheck

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/etl"
	"exlengine/internal/exl"
	"exlengine/internal/frame"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
	"exlengine/internal/sqlengine"
	"exlengine/internal/sqlgen"
)

// generator produces random but well-formed EXL programs over a fixed set
// of elementary cubes.
type generator struct {
	rng   *rand.Rand
	decls []string
	stmts []string
	// cubes tracks every available cube's schema, in creation order.
	names   []string
	schemas map[string]model.Schema
	counter int
	hasPad  bool
}

func newGenerator(seed int64) *generator {
	g := &generator{rng: rand.New(rand.NewSource(seed)), schemas: make(map[string]model.Schema)}
	// Elementary cubes: a quarterly series, a quarterly panel, and an
	// annual series.
	g.declare("SQ", model.NewSchema("SQ", []model.Dim{{Name: "t", Type: model.TQuarter}}, "v"),
		"cube SQ(t: quarter) measure v")
	g.declare("PQ", model.NewSchema("PQ", []model.Dim{{Name: "t", Type: model.TQuarter}, {Name: "r", Type: model.TString}}, "v"),
		"cube PQ(t: quarter, r: string) measure v")
	g.declare("SY", model.NewSchema("SY", []model.Dim{{Name: "t", Type: model.TYear}}, "v"),
		"cube SY(t: year) measure v")
	return g
}

func (g *generator) declare(name string, sch model.Schema, decl string) {
	g.names = append(g.names, name)
	g.schemas[name] = sch
	g.decls = append(g.decls, decl)
}

func (g *generator) fresh() string {
	g.counter++
	return fmt.Sprintf("D%02d", g.counter)
}

func (g *generator) pick() string {
	return g.names[g.rng.Intn(len(g.names))]
}

// pickWhere returns a random cube satisfying pred, or "".
func (g *generator) pickWhere(pred func(model.Schema) bool) string {
	var candidates []string
	for _, n := range g.names {
		if pred(g.schemas[n]) {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	return candidates[g.rng.Intn(len(candidates))]
}

// addStmt appends one random statement and registers the derived schema.
func (g *generator) addStmt() {
	name := g.fresh()
	for tries := 0; tries < 20; tries++ {
		kind := g.rng.Intn(9)
		switch kind {
		case 0: // scalar arithmetic with a constant
			op := []string{"*", "+", "-", "/"}[g.rng.Intn(4)]
			k := g.rng.Intn(4) + 1
			src := g.pick()
			g.emit(name, fmt.Sprintf("%s := %s %s %d", name, src, op, k), g.schemas[src])
			return
		case 1: // scalar function
			src := g.pick()
			fn := []string{"abs", "exp", "round"}[g.rng.Intn(3)]
			if fn == "exp" {
				// Keep magnitudes bounded: exp(v/10).
				g.emit(name, fmt.Sprintf("%s := exp(%s / 10)", name, src), g.schemas[src])
				return
			}
			g.emit(name, fmt.Sprintf("%s := %s(%s)", name, fn, src), g.schemas[src])
			return
		case 2: // vectorial op between same-dim cubes
			a := g.pick()
			b := g.pickWhere(func(s model.Schema) bool { return s.SameDims(g.schemas[a]) })
			if b == "" {
				continue
			}
			// Division included deliberately: subtraction can produce
			// zeros, so the undefined-point semantics (drop the tuple)
			// must agree across engines.
			op := []string{"+", "-", "*", "/"}[g.rng.Intn(4)]
			g.emit(name, fmt.Sprintf("%s := %s %s %s", name, a, op, b), g.schemas[a])
			return
		case 3: // aggregation dropping the non-time dimensions
			src := g.pickWhere(func(s model.Schema) bool { return len(s.Dims) == 2 })
			if src == "" {
				continue
			}
			agg := []string{"sum", "avg", "min", "max", "median"}[g.rng.Intn(5)]
			sch := g.schemas[src]
			g.emit(name, fmt.Sprintf("%s := %s(%s, group by t)", name, agg, src),
				model.NewSchema(name, []model.Dim{sch.Dims[0]}, "v"))
			return
		case 4: // shift
			src := g.pickWhere(func(s model.Schema) bool { return len(s.TimeDims()) == 1 })
			if src == "" {
				continue
			}
			s := g.rng.Intn(3) + 1
			if g.rng.Intn(2) == 0 {
				s = -s
			}
			g.emit(name, fmt.Sprintf("%s := shift(%s, %d)", name, src, s), g.schemas[src])
			return
		case 5: // whole-series black box
			src := g.pickWhere(func(s model.Schema) bool { return s.IsTimeSeries() })
			if src == "" {
				continue
			}
			bb := []string{"stl_t", "stl_s", "cumsum", "lintrend"}[g.rng.Intn(4)]
			g.emit(name, fmt.Sprintf("%s := %s(%s)", name, bb, src), g.schemas[src])
			return
		case 7: // broadcast: a panel combined with a series over the shared dims
			big := g.pickWhere(func(s model.Schema) bool { return len(s.Dims) == 2 })
			if big == "" {
				continue
			}
			small := g.pickWhere(func(s model.Schema) bool {
				if len(s.Dims) != 1 {
					return false
				}
				j := g.schemas[big].DimIndex(s.Dims[0].Name)
				return j >= 0 && g.schemas[big].Dims[j].Type.Matches(s.Dims[0].Type)
			})
			if small == "" {
				continue
			}
			op := []string{"+", "*", "/"}[g.rng.Intn(3)]
			g.emit(name, fmt.Sprintf("%s := %s %s %s", name, big, op, small), g.schemas[big])
			return
		case 8: // global aggregate to a 0-dimensional cube
			src := g.pick()
			agg := []string{"sum", "avg", "count"}[g.rng.Intn(3)]
			g.emit(name, fmt.Sprintf("%s := %s(%s)", name, agg, src),
				model.NewSchema(name, nil, "v"))
			return
		case 6: // padded vectorial op
			a := g.pick()
			b := g.pickWhere(func(s model.Schema) bool { return s.SameDims(g.schemas[a]) })
			if b == "" {
				continue
			}
			op := []string{"vsum0", "vsub0"}[g.rng.Intn(2)]
			g.hasPad = true
			g.emit(name, fmt.Sprintf("%s := %s(%s, %s)", name, op, a, b), g.schemas[a])
			return
		}
	}
	// Fallback: always possible.
	src := g.pick()
	g.emit(name, fmt.Sprintf("%s := %s + 1", name, src), g.schemas[src])
}

func (g *generator) emit(name, stmt string, sch model.Schema) {
	g.stmts = append(g.stmts, stmt)
	g.names = append(g.names, name)
	g.schemas[name] = sch.Rename(name)
}

func (g *generator) source() string {
	return strings.Join(g.decls, "\n") + "\n" + strings.Join(g.stmts, "\n") + "\n"
}

// data builds sparse random instances for the elementary cubes: values in
// [1, 2] (avoiding exact zeros) with ~20% of tuples missing.
func (g *generator) data() map[string]*model.Cube {
	out := make(map[string]*model.Cube)
	quarters := make([]model.Period, 12)
	for i := range quarters {
		quarters[i] = model.NewQuarterly(2000, 1).Shift(int64(i))
	}
	regions := []string{"a", "b", "c"}

	sq := model.NewCube(g.schemas["SQ"])
	for _, q := range quarters {
		if g.rng.Float64() < 0.2 {
			continue
		}
		_ = sq.Put([]model.Value{model.Per(q)}, 1+g.rng.Float64())
	}
	out["SQ"] = sq

	pq := model.NewCube(g.schemas["PQ"])
	for _, q := range quarters {
		for _, r := range regions {
			if g.rng.Float64() < 0.2 {
				continue
			}
			_ = pq.Put([]model.Value{model.Per(q), model.Str(r)}, 1+g.rng.Float64())
		}
	}
	out["PQ"] = pq

	sy := model.NewCube(g.schemas["SY"])
	for y := 2000; y < 2006; y++ {
		if g.rng.Float64() < 0.2 {
			continue
		}
		_ = sy.Put([]model.Value{model.Per(model.NewAnnual(y))}, 1+g.rng.Float64())
	}
	out["SY"] = sy
	return out
}

// TestRandomProgramsAllEngines generates random programs and checks that
// every engine agrees with the chase on every derived cube.
func TestRandomProgramsAllEngines(t *testing.T) {
	const programs = 60
	const stmtsPerProgram = 8
	for seed := int64(1); seed <= programs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := newGenerator(seed)
			for i := 0; i < stmtsPerProgram; i++ {
				g.addStmt()
			}
			src := g.source()

			prog, err := exl.Parse(src)
			if err != nil {
				t.Fatalf("generated program does not parse: %v\n%s", err, src)
			}
			a, err := exl.Analyze(prog, nil)
			if err != nil {
				t.Fatalf("generated program does not analyze: %v\n%s", err, src)
			}
			m, err := mapping.Generate(a)
			if err != nil {
				t.Fatalf("mapping generation failed: %v\n%s", err, src)
			}
			data := g.data()

			ref, err := chase.New(m).Solve(chase.Instance(data))
			if err != nil {
				t.Fatalf("chase failed: %v\n%s", err, src)
			}

			compare := func(engineName string, got map[string]*model.Cube) {
				t.Helper()
				for _, rel := range m.Derived {
					if got[rel] == nil {
						t.Fatalf("%s: missing %s\n%s", engineName, rel, src)
					}
					if !got[rel].Equal(ref[rel], 1e-6) {
						t.Errorf("%s: %s differs from chase\nprogram:\n%s\ndiff:\n%s",
							engineName, rel, src, strings.Join(got[rel].Diff(ref[rel], 1e-6, 5), "\n"))
					}
				}
			}

			// Frame engine.
			fs, err := frame.Translate(m)
			if err != nil {
				t.Fatalf("frame translate: %v\n%s", err, src)
			}
			fres, err := frame.Execute(fs, m, data)
			if err != nil {
				t.Fatalf("frame execute: %v\n%s", err, src)
			}
			compare("frame", fres)

			// ETL engine.
			job, err := etl.Translate(m, "crosscheck")
			if err != nil {
				t.Fatalf("etl translate: %v\n%s", err, src)
			}
			eres, err := etl.Run(job, m, data)
			if err != nil {
				t.Fatalf("etl run: %v\n%s", err, src)
			}
			compare("etl", eres)

			// SQL engine (only when the program avoids padded operators,
			// which the dialect cannot express).
			if !g.hasPad {
				db := sqlengine.NewDB()
				for _, name := range m.Elementary {
					if err := db.LoadCube(data[name]); err != nil {
						t.Fatal(err)
					}
				}
				script, err := sqlgen.Translate(m)
				if err != nil {
					t.Fatalf("sql translate: %v\n%s", err, src)
				}
				if err := sqlgen.Execute(script, db); err != nil {
					t.Fatalf("sql execute: %v\n%s\n%s", err, src, script)
				}
				sres := make(map[string]*model.Cube)
				for _, rel := range m.Derived {
					c, err := db.ExtractCube(m.Schemas[rel])
					if err != nil {
						t.Fatalf("sql extract %s: %v", rel, err)
					}
					sres[rel] = c
				}
				compare("sql", sres)
			}
		})
	}
}

// TestRandomProgramsFusedVsNormalized checks the fusion pass on the same
// random programs: both mapping forms must chase to identical derived
// cubes.
func TestRandomProgramsFusedVsNormalized(t *testing.T) {
	for seed := int64(100); seed < 125; seed++ {
		g := newGenerator(seed)
		for i := 0; i < 6; i++ {
			g.addStmt()
		}
		src := g.source()
		prog, err := exl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		a, err := exl.Analyze(prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := mapping.Generate(a)
		if err != nil {
			t.Fatal(err)
		}
		norm, err := mapping.GenerateNormalized(a)
		if err != nil {
			t.Fatal(err)
		}
		data := g.data()
		refF, err := chase.New(fused).Solve(chase.Instance(data))
		if err != nil {
			t.Fatalf("fused chase: %v\n%s", err, src)
		}
		refN, err := chase.New(norm).Solve(chase.Instance(data))
		if err != nil {
			t.Fatalf("normalized chase: %v\n%s", err, src)
		}
		for _, rel := range fused.Derived {
			if !refF[rel].Equal(refN[rel], 1e-9) {
				t.Errorf("seed %d: %s differs between fused and normalized\n%s", seed, rel, src)
			}
		}
	}
}

// TestRandomProgramsPrintParseRoundTrip: the printed form of a random
// program re-parses and re-analyzes to a mapping with the same rendering.
func TestRandomProgramsPrintParseRoundTrip(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		g := newGenerator(seed)
		for i := 0; i < 6; i++ {
			g.addStmt()
		}
		src := g.source()
		p1, err := exl.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		printed := p1.String()
		p2, err := exl.Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v\n%s", seed, err, printed)
		}
		a1, err := exl.Analyze(p1, nil)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := exl.Analyze(p2, nil)
		if err != nil {
			t.Fatalf("seed %d: re-analysis failed: %v\n%s", seed, err, printed)
		}
		m1, err := mapping.Generate(a1)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := mapping.Generate(a2)
		if err != nil {
			t.Fatal(err)
		}
		if m1.String() != m2.String() {
			t.Errorf("seed %d: mappings differ after print/parse round trip:\n%s\nvs\n%s",
				seed, m1, m2)
		}
	}
}
