package crosscheck

import (
	"testing"

	"exlengine/internal/chase"
	"exlengine/internal/difftest"
	"exlengine/internal/exl"
	"exlengine/internal/mapping"
	"exlengine/internal/model"
)

// chaseSolve compiles a difftest case and returns the chase solution.
func chaseSolve(t *testing.T, c *difftest.Case) map[string]*model.Cube {
	t.Helper()
	prog, err := exl.Parse(c.Source())
	if err != nil {
		t.Fatal(err)
	}
	a, err := exl.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Generate(a)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chase.New(m).Solve(chase.Instance(c.Data))
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestUndefinedPointSemanticsAcrossEngines pins the unified semantics
// documented in DESIGN.md: a scalar operator that is undefined at a
// point (ln/log of a non-positive value, sqrt of a negative, division
// by zero) produces NO tuple there — in every backend. The frame engine
// represents the hole as NA and drops it on materialization, the chase
// skips the binding, SQL carries a NULL that drops the row, and ETL
// skips the row in its calculator step; all four must converge on the
// same set of existing tuples, including downstream of arithmetic and
// aggregations over the holes.
func TestUndefinedPointSemanticsAcrossEngines(t *testing.T) {
	c := &difftest.Case{
		Decls: []string{"cube A(t: quarter) measure v"},
		Stmts: []string{
			"U1 := ln(A)",      // undefined for v <= 0
			"U2 := sqrt(A)",    // undefined for v < 0
			"U3 := log(2, A)",  // undefined for v <= 0
			"U4 := A / A",      // undefined at v = 0 (0/0)
			"U5 := U1 + A",     // holes propagate through arithmetic
			"U6 := U1 - U2",    // intersection of two hole patterns
			"U7 := sum(U1)",    // aggregation ignores the holes entirely
			"U8 := avg(U4)",    // aggregate over a cube with a hole at 0
			"U9 := cumsum(U2)", // black box sees only the defined points
		},
		Data: map[string]*model.Cube{},
	}
	sch := model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TQuarter}}, "v")
	a := model.NewCube(sch)
	for i, v := range []float64{-1.5, -1, 0, 0.5, 1, 2} {
		q := model.NewQuarterly(2000, 1).Shift(int64(i))
		if err := a.Put([]model.Value{model.Per(q)}, v); err != nil {
			t.Fatal(err)
		}
	}
	c.Data["A"] = a

	res, err := difftest.Run(c, 1e-9)
	if err != nil {
		t.Fatalf("case does not run: %v", err)
	}
	if res.SQLSkipped {
		t.Fatal("SQL must participate: the program has no padded operators")
	}
	for _, d := range res.Divergences {
		t.Errorf("undefined-point divergence: %s", d)
	}
}

// TestUndefinedPointCounts asserts the exact hole pattern on the chase
// reference, so the semantics cannot drift in lockstep across all four
// engines without this test noticing.
func TestUndefinedPointCounts(t *testing.T) {
	c := &difftest.Case{
		Decls: []string{"cube A(t: quarter) measure v"},
		Stmts: []string{"U1 := ln(A)", "U2 := sqrt(A)", "U4 := A / A"},
		Data:  map[string]*model.Cube{},
	}
	sch := model.NewSchema("A", []model.Dim{{Name: "t", Type: model.TQuarter}}, "v")
	a := model.NewCube(sch)
	for i, v := range []float64{-1.5, -1, 0, 0.5, 1, 2} {
		q := model.NewQuarterly(2000, 1).Shift(int64(i))
		if err := a.Put([]model.Value{model.Per(q)}, v); err != nil {
			t.Fatal(err)
		}
	}
	c.Data["A"] = a
	res, err := difftest.Run(c, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergences) > 0 {
		t.Fatalf("engines diverge: %v", res.Divergences)
	}
	// difftest.Run already compared everything against the chase; solving
	// again for counts keeps this test independent of Run internals.
	ref := chaseSolve(t, c)
	for rel, want := range map[string]int{
		"U1": 3, // 0.5, 1, 2
		"U2": 4, // 0, 0.5, 1, 2
		"U4": 5, // all but the 0 point
	} {
		if got := ref[rel].Len(); got != want {
			t.Errorf("chase %s has %d tuples, want %d (undefined points must be absent)", rel, got, want)
		}
	}
}
