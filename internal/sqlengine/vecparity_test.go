package sqlengine

import (
	"context"
	"strings"
	"testing"
	"time"

	"exlengine/internal/model"
)

// parityDB builds a small panel-and-rates fixture exercising joins,
// period arithmetic, grouping and views.
func parityDB(t *testing.T, mode ExecMode) *DB {
	t.Helper()
	db := NewDB()
	db.SetExecMode(mode)
	mustExec(t, db, `
CREATE TABLE PDR (d MONTH, r VARCHAR, v DOUBLE);
CREATE TABLE RATE (q QUARTER, r VARCHAR, x DOUBLE);
`)
	for y := 2000; y < 2003; y++ {
		for m := 1; m <= 12; m++ {
			for _, r := range []string{"north", "south", "west"} {
				mv := float64(y-2000)*12 + float64(m) + float64(len(r))
				mustExec(t, db, insertMonthly("PDR", y, m, r, mv))
			}
		}
		for q := 1; q <= 4; q++ {
			for _, r := range []string{"north", "south", "west"} {
				mustExec(t, db, insertQuarterly("RATE", y, q, r, float64(q)+float64(len(r))/10))
			}
		}
	}
	mustExec(t, db, `CREATE VIEW PQ AS SELECT quarter(d) AS q, r, avg(v) AS a FROM PDR GROUP BY quarter(d), r`)
	return db
}

func insertMonthly(table string, y, m int, r string, v float64) string {
	p := model.NewMonthly(y, time.Month(m))
	return "INSERT INTO " + table + " VALUES ('" + p.String() + "', '" + r + "', " + model.Num(v).String() + ")"
}

func insertQuarterly(table string, y, q int, r string, v float64) string {
	p := model.NewQuarterly(y, q)
	return "INSERT INTO " + table + " VALUES ('" + p.String() + "', '" + r + "', " + model.Num(v).String() + ")"
}

// parityQueries is the cross-executor suite: each query must produce an
// identical table (schema, rows, order) under both executors.
var parityQueries = []string{
	`SELECT * FROM PDR`,
	`SELECT r, v FROM PDR WHERE v > 20`,
	`SELECT d, v * 2 AS w FROM PDR WHERE r = 'north'`,
	`SELECT quarter(d) AS q, sum(v) AS s FROM PDR GROUP BY quarter(d)`,
	`SELECT r, count(*) AS n, avg(v) AS a FROM PDR GROUP BY r`,
	`SELECT p.r AS r, p.v AS v, t.x AS x FROM PDR p, RATE t WHERE quarter(p.d) = t.q AND p.r = t.r`,
	`SELECT p.r AS r, sum(p.v * t.x) AS s FROM PDR p, RATE t WHERE quarter(p.d) = t.q AND p.r = t.r GROUP BY p.r`,
	`SELECT a.q AS q, a.a AS cur, b.a AS prev FROM PQ a, PQ b WHERE a.r = b.r AND a.q = b.q - 1`,
	`SELECT DISTINCT r FROM PDR`,
	`SELECT DISTINCT quarter(d) AS q FROM PDR ORDER BY q`,
	`SELECT q, a FROM PQ WHERE a IS NOT NULL ORDER BY a`,
	`SELECT year(d) AS y, min(v) AS lo, max(v) AS hi FROM PDR GROUP BY year(d) ORDER BY y`,
	`SELECT r FROM PDR WHERE v > 10 AND (r = 'north' OR r = 'west')`,
	`SELECT t.r AS r, count(p.v) AS n FROM RATE t, PDR p WHERE t.r = p.r AND t.q = quarter(p.d) GROUP BY t.r`,
	`SELECT count(*) AS n FROM PDR WHERE v < 0`,
}

// TestExecutorParity runs the suite through the legacy tree-walker and
// the vectorized executor and requires byte-identical results. With
// full-row deterministic ordering, any divergence is a semantics bug,
// not an ordering artifact.
func TestExecutorParity(t *testing.T) {
	legacy := parityDB(t, ExecLegacy)
	vector := parityDB(t, ExecVector)
	for _, q := range parityQueries {
		lt := mustQuery(t, legacy, q)
		vt := mustQuery(t, vector, q)
		if ls, vs := lt.String(), vt.String(); ls != vs {
			t.Errorf("executors disagree on %q:\nlegacy:\n%s\nvector:\n%s", q, ls, vs)
		}
	}
}

// TestOrderByNullsLast pins the single NULL placement rule: NULLS LAST,
// in both executors, for ORDER BY keys and for the default all-column
// sort — and full-column tie-breaking makes the order independent of
// input row order.
func TestOrderByNullsLast(t *testing.T) {
	forBothExecs(t, func(t *testing.T, mode ExecMode) {
		mk := func(reverse bool) *DB {
			db := NewDB()
			db.SetExecMode(mode)
			rows := [][]model.Value{
				{model.Str("a"), model.Num(2)},
				{model.Str("b"), {}},
				{model.Str("c"), model.Num(1)},
				{model.Str("d"), {}},
			}
			if reverse {
				for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
					rows[i], rows[j] = rows[j], rows[i]
				}
			}
			db.tables["n"] = &Table{
				Name: "n",
				Cols: []Column{
					{Name: "k", Type: ColType{Kind: KVarchar}},
					{Name: "v", Type: ColType{Kind: KDouble}},
				},
				Rows: rows,
			}
			return db
		}

		// NULL v cannot reach SELECT output (the row would drop), so order
		// the base table itself via a view-free projection of k only after
		// sorting by v: use IS NULL to keep NULL rows observable.
		q := `SELECT k, v IS NULL AS missing FROM n ORDER BY missing`
		a := mustQuery(t, mk(false), q)
		b := mustQuery(t, mk(true), q)
		if a.String() != b.String() {
			t.Fatalf("order depends on input row order:\n%s\nvs\n%s", a.String(), b.String())
		}

		// Direct check of the shared sort: NULLs land last, and the two
		// NULL rows tie-break on the remaining column (b before d).
		tbl := mk(false).tables["n"]
		sortRowsBy(tbl.Rows, 2, []int{1})
		if !tbl.Rows[0][1].IsValid() || !tbl.Rows[1][1].IsValid() {
			t.Fatalf("NULL sorted before values: %v", tbl.Rows)
		}
		if tbl.Rows[2][1].IsValid() || tbl.Rows[3][1].IsValid() {
			t.Fatalf("values sorted after NULLs: %v", tbl.Rows)
		}
		if k2, _ := tbl.Rows[2][0].AsString(); k2 != "b" {
			t.Fatalf("NULL-row tie-break: got %v, want b before d", tbl.Rows[2][0])
		}
	})
}

// TestViewDiamondEvaluatesOnce is the regression test for exponential
// view re-evaluation: with a diamond-shaped view graph (TOP references
// MID1 and MID2, both referencing BASE), BASE used to be evaluated once
// per reference — 2^depth times in a deep diamond. The per-statement
// resolver memo must evaluate each view exactly once per statement.
func TestViewDiamondEvaluatesOnce(t *testing.T) {
	forBothExecs(t, func(t *testing.T, mode ExecMode) {
		db := NewDB()
		db.SetExecMode(mode)
		calls := 0
		db.RegisterTabular("probe", func(args []*Table, params []float64) (*Table, error) {
			calls++
			return &Table{
				Name: "probe",
				Cols: []Column{{Name: "v", Type: ColType{Kind: KDouble}}},
				Rows: [][]model.Value{{model.Num(1)}, {model.Num(2)}},
			}, nil
		})
		mustExec(t, db, `
CREATE TABLE SEED (v DOUBLE);
CREATE VIEW BASE AS SELECT v FROM PROBE(SEED);
CREATE VIEW MID1 AS SELECT v * 2 AS v FROM BASE;
CREATE VIEW MID2 AS SELECT v * 3 AS v FROM BASE;
CREATE VIEW TOP AS SELECT a.v AS x, b.v AS y FROM MID1 a, MID2 b WHERE a.v = a.v`)

		res := mustQuery(t, db, `SELECT x, y FROM TOP`)
		if len(res.Rows) != 4 {
			t.Fatalf("TOP rows = %d, want 4", len(res.Rows))
		}
		if calls != 1 {
			t.Fatalf("BASE evaluated %d times in one statement, want 1 (memoized)", calls)
		}

		// A second statement re-evaluates (views see fresh data).
		mustQuery(t, db, `SELECT x FROM TOP`)
		if calls != 2 {
			t.Fatalf("BASE evaluated %d times across two statements, want 2", calls)
		}
	})
}

// TestAnalyzerPlanShape pins what the analyzer rules actually do to a
// representative join-aggregate query: filters pushed below the join,
// the smaller (filtered) side chosen as hash-join build input, scans
// pruned to live columns.
func TestAnalyzerPlanShape(t *testing.T) {
	db := parityDB(t, ExecVector)
	stmts, err := parseScript(`SELECT p.r AS r, sum(p.v * t.x) AS s FROM PDR p, RATE t WHERE quarter(p.d) = t.q AND p.r = t.r AND t.x > 1 GROUP BY p.r`)
	if err != nil {
		t.Fatal(err)
	}
	s := stmts[0].(*selectStmt)
	r := db.newResolver(context.Background())
	p, err := db.prepareSelect(s, r)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := db.buildPlan(s, p.sc, p.exprs, p.names, p.types)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = db.analyze(context.Background(), plan, p.sc)
	if err != nil {
		t.Fatal(err)
	}
	rendered := renderPlan(plan)
	if strings.Contains(rendered, "multijoin") {
		t.Fatalf("multi-join survived analysis:\n%s", rendered)
	}
	if !strings.Contains(rendered, "hashjoin") {
		t.Fatalf("no hash join in plan:\n%s", rendered)
	}
	if !strings.Contains(rendered, "filter((t.x > 1))") {
		t.Fatalf("single-table filter not pushed down:\n%s", rendered)
	}
	// PDR has columns d, r, v — all referenced; RATE has q, r, x — all
	// referenced too. Re-check pruning with a narrow query instead.
	stmts, _ = parseScript(`SELECT r FROM PDR`)
	s = stmts[0].(*selectStmt)
	p, err = db.prepareSelect(s, db.newResolver(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	plan, err = db.buildPlan(s, p.sc, p.exprs, p.names, p.types)
	if err != nil {
		t.Fatal(err)
	}
	plan, err = db.analyze(context.Background(), plan, p.sc)
	if err != nil {
		t.Fatal(err)
	}
	var scan *scanNode
	var find func(n planNode)
	find = func(n planNode) {
		if sn, ok := n.(*scanNode); ok {
			scan = sn
		}
		for _, c := range planChildren(n) {
			find(c)
		}
	}
	find(plan)
	if scan == nil {
		t.Fatal("no scan in plan")
	}
	if len(scan.proj) != 1 {
		t.Fatalf("scan not pruned to 1 column: proj=%v\n%s", scan.proj, renderPlan(plan))
	}
}
