package sqlengine

import (
	"math"
	"strings"
	"testing"

	"exlengine/internal/model"
)

func mustExec(t *testing.T, db *DB, sql string) {
	t.Helper()
	if err := db.Exec(sql); err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
}

func mustQuery(t *testing.T, db *DB, sql string) *Table {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func seedGDP(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE PQR (q QUARTER, r VARCHAR, p DOUBLE);
CREATE TABLE RGDPPC (q QUARTER, r VARCHAR, g DOUBLE);
INSERT INTO PQR(q, r, p) VALUES
  ('2001-Q1', 'north', 15), ('2001-Q2', 'north', 35),
  ('2001-Q1', 'south', 150), ('2001-Q2', 'south', 350);
INSERT INTO RGDPPC(q, r, g) VALUES
  ('2001-Q1', 'north', 2), ('2001-Q2', 'north', 4),
  ('2001-Q1', 'south', 3), ('2001-Q2', 'south', 5);
`)
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := seedGDP(t)
	res := mustQuery(t, db, "SELECT q, r, p FROM PQR ORDER BY q, r")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Cols[0].Type.Kind != KPeriod || res.Cols[1].Type.Kind != KVarchar || res.Cols[2].Type.Kind != KDouble {
		t.Errorf("column types = %v", res.Cols)
	}
	if res.Rows[0][0].String() != "2001-Q1" || res.Rows[0][1].String() != "north" {
		t.Errorf("first row = %v", res.Rows[0])
	}
}

// TestPaperJoinQuery runs the exact SQL shape the paper generates for tgd
// (2): a join on dimensions with a tuple-level measure combination.
func TestPaperJoinQuery(t *testing.T) {
	db := seedGDP(t)
	mustExec(t, db, "CREATE TABLE RGDP (q QUARTER, r VARCHAR, g DOUBLE)")
	mustExec(t, db, `
INSERT INTO RGDP(q, r, g)
SELECT C2.q AS q, C2.r AS r, C1.p * C2.g AS g
FROM PQR C1, RGDPPC C2
WHERE C1.q = C2.q AND C1.r = C2.r`)
	res := mustQuery(t, db, "SELECT g FROM RGDP WHERE q = '2001-Q1' AND r = 'north'")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if f, _ := res.Rows[0][0].AsNumber(); f != 30 {
		t.Errorf("RGDP = %v", f)
	}
}

// TestPaperShiftJoin runs the paper's PCHNG query: a self-join with period
// arithmetic in the join condition.
func TestPaperShiftJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE GDPT (q QUARTER, g DOUBLE);
INSERT INTO GDPT(q, g) VALUES ('2001-Q1', 480), ('2001-Q2', 1890), ('2001-Q3', 2000);
CREATE TABLE PCHNG (q QUARTER, g DOUBLE);
INSERT INTO PCHNG(q, g)
SELECT C1.q AS q, (C1.g - C2.g) * 100 / C1.g AS g
FROM GDPT C1, GDPT C2
WHERE C2.q = C1.q - 1`)
	res := mustQuery(t, db, "SELECT q, g FROM PCHNG ORDER BY q")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d: %s", len(res.Rows), res)
	}
	want := (1890.0 - 480.0) * 100 / 1890.0
	if f, _ := res.Rows[0][1].AsNumber(); math.Abs(f-want) > 1e-9 {
		t.Errorf("PCHNG(2001-Q2) = %v, want %v", f, want)
	}
}

func TestGroupByWithDimensionFunction(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE PDR (d DAY, r VARCHAR, p DOUBLE);
INSERT INTO PDR(d, r, p) VALUES
  ('2001-03-30', 'north', 10), ('2001-03-31', 'north', 20),
  ('2001-04-01', 'north', 30), ('2001-04-02', 'north', 40)`)
	res := mustQuery(t, db, `
SELECT QUARTER(d) AS q, r, AVG(p) AS p
FROM PDR
GROUP BY QUARTER(d), r
ORDER BY q`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].String() != "2001-Q1" {
		t.Errorf("q = %v", res.Rows[0][0])
	}
	if f, _ := res.Rows[0][2].AsNumber(); f != 15 {
		t.Errorf("avg Q1 = %v", f)
	}
	if f, _ := res.Rows[1][2].AsNumber(); f != 35 {
		t.Errorf("avg Q2 = %v", f)
	}
}

func TestAggregates(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE T (k VARCHAR, v DOUBLE);
INSERT INTO T(k, v) VALUES ('a', 4), ('a', 1), ('a', 3), ('a', 2), ('b', 10)`)
	res := mustQuery(t, db, `
SELECT k, SUM(v) s, AVG(v) a, MIN(v) mn, MAX(v) mx, COUNT(*) c, MEDIAN(v) md, STDDEV(v) sd
FROM T GROUP BY k ORDER BY k`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	get := func(r, c int) float64 {
		f, _ := res.Rows[r][c].AsNumber()
		return f
	}
	if get(0, 1) != 10 || get(0, 2) != 2.5 || get(0, 3) != 1 || get(0, 4) != 4 || get(0, 5) != 4 || get(0, 6) != 2.5 {
		t.Errorf("aggregates row a = %v", res.Rows[0])
	}
	if math.Abs(get(0, 7)-math.Sqrt(1.25)) > 1e-9 {
		t.Errorf("stddev = %v", get(0, 7))
	}
	if get(1, 5) != 1 {
		t.Errorf("count b = %v", get(1, 5))
	}
}

func TestGlobalAggregateEmptyTable(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE)")
	res := mustQuery(t, db, "SELECT SUM(v) FROM T")
	if len(res.Rows) != 0 {
		t.Errorf("sum over empty table must give no rows (empty bag), got %d", len(res.Rows))
	}
}

func TestTabularFunctions(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE S (t YEAR, v DOUBLE);
INSERT INTO S(t, v) VALUES ('2000', 1), ('2001', 2), ('2002', 3), ('2003', 4)`)
	res := mustQuery(t, db, "SELECT t, v FROM CUMSUM(S) ORDER BY t")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if f, _ := res.Rows[3][1].AsNumber(); f != 10 {
		t.Errorf("cumsum last = %v", f)
	}
	res = mustQuery(t, db, "SELECT t, v FROM MOVAVG(S, 2) ORDER BY t")
	if f, _ := res.Rows[3][1].AsNumber(); f != 3.5 {
		t.Errorf("movavg last = %v", f)
	}
	res = mustQuery(t, db, "SELECT t, v FROM LINTREND(S) ORDER BY t")
	if f, _ := res.Rows[0][1].AsNumber(); math.Abs(f-1) > 1e-9 {
		t.Errorf("lintrend first = %v", f)
	}
	// stl components reconstruct the series.
	tr := mustQuery(t, db, "SELECT t, v FROM STL_T(S) ORDER BY t")
	se := mustQuery(t, db, "SELECT t, v FROM STL_S(S) ORDER BY t")
	ir := mustQuery(t, db, "SELECT t, v FROM STL_I(S) ORDER BY t")
	for i := 0; i < 4; i++ {
		a, _ := tr.Rows[i][1].AsNumber()
		b, _ := se.Rows[i][1].AsNumber()
		c, _ := ir.Rows[i][1].AsNumber()
		if math.Abs(a+b+c-float64(i+1)) > 1e-9 {
			t.Errorf("stl additivity at %d", i)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE T (k VARCHAR, v DOUBLE);
INSERT INTO T(k, v) VALUES ('a', 2), ('b', 0), ('c', -1)`)
	// 1/0 is NULL: its row disappears from the output.
	res := mustQuery(t, db, "SELECT k, 1 / v FROM T")
	if len(res.Rows) != 2 {
		t.Errorf("rows with defined 1/v = %d", len(res.Rows))
	}
	// LN of non-positive values is NULL too.
	res = mustQuery(t, db, "SELECT k, LN(v) FROM T")
	if len(res.Rows) != 1 {
		t.Errorf("rows with defined ln = %d", len(res.Rows))
	}
	// NULLs are excluded from aggregate bags.
	res = mustQuery(t, db, "SELECT COUNT(1 / v) FROM T")
	if f, _ := res.Rows[0][0].AsNumber(); f != 2 {
		t.Errorf("count non-null = %v", f)
	}
}

// TestKleeneThreeValuedLogic is the regression test for the NULL
// short-circuit bug in and/or: any NULL operand used to make the whole
// predicate NULL, but SQL's three-valued logic says a dominant known
// operand decides — TRUE OR NULL is TRUE and FALSE AND NULL is FALSE.
// 1/v is NULL for the v=0 row, giving each case a genuinely NULL operand.
func TestKleeneThreeValuedLogic(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE T (k VARCHAR, v DOUBLE);
INSERT INTO T(k, v) VALUES ('pos', 2), ('zero', 0), ('neg', -1)`)

	// NULL OR TRUE = TRUE: the 'zero' row survives a tautological right
	// disjunct. Before the fix it was dropped (1 row instead of 2).
	res := mustQuery(t, db, "SELECT k FROM T WHERE 1 / v > 0 OR v >= 0")
	if len(res.Rows) != 2 {
		t.Errorf("TRUE-dominant OR kept %d rows, want 2 (pos, zero)", len(res.Rows))
	}
	// Symmetric: the known operand on the left.
	res = mustQuery(t, db, "SELECT k FROM T WHERE v >= 0 OR 1 / v > 0")
	if len(res.Rows) != 2 {
		t.Errorf("left-dominant OR kept %d rows, want 2", len(res.Rows))
	}
	// FALSE AND NULL = FALSE, visible through NOT: NOT(FALSE) keeps the
	// row where NOT(NULL) would drop it.
	res = mustQuery(t, db, "SELECT k FROM T WHERE NOT (v > 0 AND 1 / v > 0)")
	if len(res.Rows) != 2 {
		t.Errorf("negated FALSE-dominant AND kept %d rows, want 2 (zero, neg)", len(res.Rows))
	}
	// Genuinely undecidable combinations stay NULL and drop the row.
	res = mustQuery(t, db, "SELECT k FROM T WHERE 1 / v > 0 OR v < 0")
	if len(res.Rows) != 2 {
		t.Errorf("NULL OR FALSE kept %d rows, want 2 (pos, neg)", len(res.Rows))
	}
	res = mustQuery(t, db, "SELECT k FROM T WHERE 1 / v > 0 AND v >= 0")
	if len(res.Rows) != 1 {
		t.Errorf("NULL AND TRUE kept %d rows, want 1 (pos)", len(res.Rows))
	}
	// In the select list the Kleene result is a value: TRUE OR NULL
	// emits true rather than a dropped row.
	res = mustQuery(t, db, "SELECT k, v >= 0 OR 1 / v > 0 FROM T")
	if len(res.Rows) != 3 {
		t.Errorf("select-list OR produced %d rows, want 3 (no NULL output)", len(res.Rows))
	}
	for _, row := range res.Rows {
		want := row[0].String() != "neg"
		if b, ok := row[1].AsBool(); !ok || b != want {
			t.Errorf("row %v: OR value = %v, want %v", row[0], row[1], want)
		}
	}
}

func TestScalarFunctions(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE); INSERT INTO T(v) VALUES (8)")
	res := mustQuery(t, db, "SELECT LOG(v, 2), LN(EXP(v)), SQRT(v * 2), ABS(-v), POW(v, 2), ROUND(v / 3) FROM T")
	want := []float64{3, 8, 4, 8, 64, 3}
	for i, w := range want {
		if f, _ := res.Rows[0][i].AsNumber(); math.Abs(f-w) > 1e-9 {
			t.Errorf("col %d = %v, want %v", i, f, w)
		}
	}
}

func TestShiftFunction(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (q QUARTER, v DOUBLE); INSERT INTO T(q, v) VALUES ('2001-Q1', 1)")
	res := mustQuery(t, db, "SELECT SHIFT(q, 2), q + 1, q - 1 FROM T")
	if res.Rows[0][0].String() != "2001-Q3" || res.Rows[0][1].String() != "2001-Q2" || res.Rows[0][2].String() != "2000-Q4" {
		t.Errorf("shift results = %v", res.Rows[0])
	}
}

// TestPeriodArithmeticCommutes: a period on either side of + is the same
// shift (1 + Q used to fall into the numeric path and error out), its
// inferred column type is a period, and 1 - Q stays a clear error rather
// than a confusing "non-numeric values" one.
func TestPeriodArithmeticCommutes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (q QUARTER, v DOUBLE); INSERT INTO T(q, v) VALUES ('2001-Q1', 1)")
	res := mustQuery(t, db, "SELECT 1 + q, q + 1 FROM T")
	if res.Rows[0][0].String() != "2001-Q2" || res.Rows[0][1].String() != "2001-Q2" {
		t.Errorf("1 + q results = %v", res.Rows[0])
	}
	if res.Cols[0].Type.Kind != KPeriod || res.Cols[0].Type.Freq != model.Quarterly {
		t.Errorf("inferred type of 1 + q = %v, want quarterly period", res.Cols[0].Type)
	}
	// Period shifts join symmetrically: the paper's G1.Q = G2.Q - 1
	// condition can equally be written G1.Q + 1 = G2.Q or 1 + G1.Q = G2.Q.
	res = mustQuery(t, db, "SELECT a.q FROM T a, T b WHERE 1 + a.q = SHIFT(b.q, 1)")
	if len(res.Rows) != 1 {
		t.Errorf("commuted shift join rows = %d, want 1", len(res.Rows))
	}
	if _, err := db.Query("SELECT 1 - q FROM T"); err == nil ||
		!strings.Contains(err.Error(), "cannot subtract a period") {
		t.Errorf("1 - q error = %v, want explicit period-subtraction error", err)
	}
	if _, err := db.Query("SELECT 1.5 + q FROM T"); err == nil ||
		!strings.Contains(err.Error(), "integer offset") {
		t.Errorf("1.5 + q error = %v, want integer-offset error", err)
	}
}

func TestDeleteAndDrop(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE); INSERT INTO T(v) VALUES (1), (2), (3)")
	mustExec(t, db, "DELETE FROM T WHERE v >= 2")
	tab, _ := db.Table("t")
	if len(tab.Rows) != 1 {
		t.Errorf("rows after delete = %d", len(tab.Rows))
	}
	mustExec(t, db, "DELETE FROM T")
	if len(tab.Rows) != 0 {
		t.Error("delete all")
	}
	mustExec(t, db, "DROP TABLE T")
	if _, ok := db.Table("t"); ok {
		t.Error("table still exists after drop")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS T")
	if err := db.Exec("DROP TABLE T"); err == nil {
		t.Error("drop of missing table must fail")
	}
}

func TestErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE)")
	bad := []string{
		"CREATE TABLE T (v DOUBLE)",                 // duplicate table
		"CREATE TABLE U (v BLOB)",                   // unknown type
		"SELECT v FROM NOPE",                        // unknown table
		"SELECT nope FROM T",                        // unknown column
		"SELECT v FROM T WHERE",                     // syntax
		"INSERT INTO T(nope) VALUES (1)",            // unknown column
		"INSERT INTO T(v) VALUES (1, 2)",            // arity
		"SELECT v FROM NOFN(T)",                     // unknown tabular function
		"INSERT INTO T(v) VALUES ('abc')",           // coercion failure
		"SELECT SUM(v) + v FROM T WHERE SUM(v) = 1", // aggregate in WHERE
		"FROB TABLE T",                              // unknown statement
		"SELECT v FROM T ORDER BY v + 1",            // unsupported order expr
	}
	for _, sql := range bad {
		if err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q): want error", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE A (x DOUBLE); CREATE TABLE B (x DOUBLE);
INSERT INTO A(x) VALUES (1); INSERT INTO B(x) VALUES (2)`)
	if _, err := db.Query("SELECT x FROM A, B"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("want ambiguity error, got %v", err)
	}
	res := mustQuery(t, db, "SELECT A.x, B.x FROM A, B")
	if len(res.Rows) != 1 {
		t.Errorf("cross join rows = %d", len(res.Rows))
	}
}

func TestCubeBridge(t *testing.T) {
	sch := model.NewSchema("GDP", []model.Dim{{Name: "q", Type: model.TQuarter}}, "g")
	c := model.NewCube(sch)
	_ = c.Put([]model.Value{model.Per(model.NewQuarterly(2001, 1))}, 480)
	_ = c.Put([]model.Value{model.Per(model.NewQuarterly(2001, 2))}, 1890)

	db := NewDB()
	if err := db.LoadCube(c); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, "SELECT q, g FROM GDP ORDER BY q")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	back, err := db.ExtractCube(sch)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c, model.Eps) {
		t.Error("round trip through SQL table lost data")
	}
}

func TestInsertWithoutColumnList(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (a DOUBLE, b VARCHAR); INSERT INTO T VALUES (1, 'x')")
	tab, _ := db.Table("t")
	if len(tab.Rows) != 1 || tab.Rows[0][1].String() != "x" {
		t.Errorf("rows = %v", tab.Rows)
	}
}

func TestStringEscapes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (s VARCHAR); INSERT INTO T(s) VALUES ('it''s')")
	res := mustQuery(t, db, "SELECT s FROM T")
	if res.Rows[0][0].String() != "it's" {
		t.Errorf("escape = %q", res.Rows[0][0])
	}
}

func TestQuotedIdentifiersAndComments(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `-- a comment
CREATE TABLE "Mixed" ("Col" DOUBLE); -- trailing
INSERT INTO Mixed(col) VALUES (7)`)
	res := mustQuery(t, db, `SELECT "Col" FROM "Mixed"`)
	if f, _ := res.Rows[0][0].AsNumber(); f != 7 {
		t.Errorf("quoted ident = %v", res.Rows[0][0])
	}
}

func TestTableNames(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE B (v DOUBLE); CREATE TABLE A (v DOUBLE)")
	names := db.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
}

func TestCountStarVsCountExpr(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE); INSERT INTO T(v) VALUES (0), (1), (2)")
	res := mustQuery(t, db, "SELECT COUNT(*) FROM T")
	if f, _ := res.Rows[0][0].AsNumber(); f != 3 {
		t.Errorf("count(*) = %v", f)
	}
}

func TestQueryRejectsMultipleStatements(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE)")
	if _, err := db.Query("SELECT v FROM T; SELECT v FROM T"); err == nil {
		t.Error("Query with two statements must fail")
	}
	if _, err := db.Query("DROP TABLE T"); err == nil {
		t.Error("Query with non-select must fail")
	}
}
