package sqlengine

import (
	"math"
	"testing"
)

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE A (x DOUBLE); CREATE TABLE B (y DOUBLE);
INSERT INTO A(x) VALUES (1), (2), (3);
INSERT INTO B(y) VALUES (2), (3)`)
	res := mustQuery(t, db, "SELECT A.x, B.y FROM A, B WHERE A.x < B.y ORDER BY x, y")
	if len(res.Rows) != 3 { // (1,2), (1,3), (2,3)
		t.Fatalf("rows = %d: %s", len(res.Rows), res)
	}
	if res.Rows[0][0].String() != "1" || res.Rows[0][1].String() != "2" {
		t.Errorf("first row = %v", res.Rows[0])
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE A (k DOUBLE, a DOUBLE);
CREATE TABLE B (k DOUBLE, b DOUBLE);
CREATE TABLE C (k DOUBLE, c DOUBLE);
INSERT INTO A(k, a) VALUES (1, 10), (2, 20);
INSERT INTO B(k, b) VALUES (1, 100), (2, 200);
INSERT INTO C(k, c) VALUES (1, 1000), (3, 3000)`)
	res := mustQuery(t, db, `
SELECT A.k, a + b + c AS s
FROM A, B, C
WHERE A.k = B.k AND B.k = C.k`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if f, _ := res.Rows[0][1].AsNumber(); f != 1110 {
		t.Errorf("s = %v", f)
	}
}

func TestOrderByMultipleColumns(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE T (a VARCHAR, b DOUBLE);
INSERT INTO T(a, b) VALUES ('x', 2), ('x', 1), ('a', 9)`)
	res := mustQuery(t, db, "SELECT a, b FROM T ORDER BY a, b")
	if res.Rows[0][0].String() != "a" || res.Rows[1][1].String() != "1" {
		t.Errorf("order = %v", res.Rows)
	}
}

func TestComparisonOperators(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE); INSERT INTO T(v) VALUES (1), (2), (3)")
	cases := map[string]int{
		"v = 2":            1,
		"v <> 2":           2,
		"v < 2":            1,
		"v <= 2":           2,
		"v > 2":            1,
		"v >= 2":           2,
		"v != 2":           2,
		"NOT v = 2":        2,
		"v = 1 OR v = 3":   2,
		"v >= 1 AND v < 3": 2,
	}
	for cond, want := range cases {
		res := mustQuery(t, db, "SELECT v FROM T WHERE "+cond)
		if len(res.Rows) != want {
			t.Errorf("WHERE %s: %d rows, want %d", cond, len(res.Rows), want)
		}
	}
}

func TestGroupByMultipleAndHaving(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE T (a VARCHAR, b VARCHAR, v DOUBLE);
INSERT INTO T(a, b, v) VALUES ('x','p',1), ('x','p',2), ('x','q',3), ('y','p',4)`)
	res := mustQuery(t, db, "SELECT a, b, SUM(v) s FROM T GROUP BY a, b ORDER BY a, b")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if f, _ := res.Rows[0][2].AsNumber(); f != 3 {
		t.Errorf("sum(x,p) = %v", f)
	}
}

func TestScalarOverAggregate(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE T (k VARCHAR, v DOUBLE);
INSERT INTO T(k, v) VALUES ('a', 3), ('a', 4)`)
	// Arithmetic over aggregates, and a scalar function of an aggregate.
	res := mustQuery(t, db, "SELECT k, SUM(v) * 2, SQRT(MAX(v) * MAX(v)) FROM T GROUP BY k")
	if f, _ := res.Rows[0][1].AsNumber(); f != 14 {
		t.Errorf("sum*2 = %v", f)
	}
	if f, _ := res.Rows[0][2].AsNumber(); math.Abs(f-4) > 1e-12 {
		t.Errorf("sqrt(max^2) = %v", f)
	}
}

func TestPeriodColumnsAcrossFrequencies(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE D (d DAY, v DOUBLE);
CREATE TABLE M (m MONTH, v DOUBLE);
CREATE TABLE Y (y YEAR, v DOUBLE);
INSERT INTO D(d, v) VALUES ('2001-06-15', 1);
INSERT INTO M(m, v) VALUES ('2001-06', 2);
INSERT INTO Y(y, v) VALUES ('2001', 3)`)
	res := mustQuery(t, db, "SELECT MONTH(d), YEAR(d) FROM D")
	if res.Rows[0][0].String() != "2001-06" || res.Rows[0][1].String() != "2001" {
		t.Errorf("conversions = %v", res.Rows[0])
	}
	// Joining a day-derived month against the month table.
	res = mustQuery(t, db, "SELECT D.v + M.v FROM D, M WHERE M.m = MONTH(D.d)")
	if len(res.Rows) != 1 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	if f, _ := res.Rows[0][0].AsNumber(); f != 3 {
		t.Errorf("sum = %v", f)
	}
	// Frequency mismatch on insert is rejected.
	if err := db.Exec("INSERT INTO Y(y, v) VALUES ('2001-06', 9)"); err == nil {
		t.Error("monthly literal into YEAR column must fail")
	}
}

func TestInsertSelectArityMismatch(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE A (v DOUBLE); CREATE TABLE B (x DOUBLE, y DOUBLE); INSERT INTO B(x,y) VALUES (1,2)")
	if err := db.Exec("INSERT INTO A(v) SELECT x, y FROM B"); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestIntegerColumnCoercion(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (i INTEGER, v DOUBLE); INSERT INTO T(i, v) VALUES (3, 1.5)")
	tab, _ := db.Table("t")
	if tab.Rows[0][0].Kind().String() != "int" {
		t.Errorf("column kind = %v", tab.Rows[0][0].Kind())
	}
	if err := db.Exec("INSERT INTO T(i, v) VALUES (3.5, 1)"); err == nil {
		t.Error("fractional into INTEGER must fail")
	}
	// Integral float is accepted.
	mustExec(t, db, "INSERT INTO T(i, v) VALUES (4.0, 1)")
}

func TestSelectLiteralOnly(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE T (v DOUBLE); INSERT INTO T(v) VALUES (1), (2)")
	res := mustQuery(t, db, "SELECT 7 FROM T")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	if f, _ := res.Rows[0][0].AsNumber(); f != 7 {
		t.Errorf("literal = %v", f)
	}
}

func TestColTypeStrings(t *testing.T) {
	cases := map[string]string{
		"double": "DOUBLE", "integer": "INTEGER", "varchar": "VARCHAR",
		"day": "DAY", "month": "MONTH", "quarter": "QUARTER", "year": "YEAR",
	}
	for in, want := range cases {
		ct, err := parseColType(in)
		if err != nil {
			t.Fatalf("parseColType(%s): %v", in, err)
		}
		if ct.String() != want {
			t.Errorf("%s -> %s, want %s", in, ct, want)
		}
	}
}
