package sqlengine

import (
	"fmt"

	"exlengine/internal/model"
)

type sqlParser struct {
	toks []token
	pos  int
}

// parseScript parses a semicolon-separated sequence of statements.
func parseScript(src string) ([]stmt, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	var out []stmt
	for {
		for p.isSymbol(";") {
			p.pos++
		}
		if p.cur().kind == tEOF {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *sqlParser) cur() token  { return p.toks[p.pos] }
func (p *sqlParser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) isKw(kw string) bool {
	return p.cur().kind == tIdent && p.cur().text == kw
}

func (p *sqlParser) isSymbol(s string) bool {
	return p.cur().kind == tSymbol && p.cur().text == s
}

func (p *sqlParser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return fmt.Errorf("sql: expected %s, found %q", kw, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *sqlParser) expectSymbol(s string) error {
	if !p.isSymbol(s) {
		return fmt.Errorf("sql: expected %q, found %q", s, p.cur().text)
	}
	p.pos++
	return nil
}

func (p *sqlParser) ident() (string, error) {
	if p.cur().kind != tIdent {
		return "", fmt.Errorf("sql: expected identifier, found %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *sqlParser) parseStmt() (stmt, error) {
	switch {
	case p.isKw("create"):
		return p.parseCreate()
	case p.isKw("insert"):
		return p.parseInsert()
	case p.isKw("drop"):
		return p.parseDrop()
	case p.isKw("delete"):
		return p.parseDelete()
	case p.isKw("select"):
		return p.parseSelect()
	default:
		return nil, fmt.Errorf("sql: unexpected statement start %q", p.cur().text)
	}
}

func (p *sqlParser) parseCreate() (stmt, error) {
	p.pos++ // create
	if p.isKw("view") {
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		if !p.isKw("select") {
			return nil, fmt.Errorf("sql: CREATE VIEW needs a SELECT body")
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &createViewStmt{name: name, sel: sel.(*selectStmt)}, nil
	}
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cn, err := p.ident()
		if err != nil {
			return nil, err
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		ct, err := parseColType(tn)
		if err != nil {
			return nil, err
		}
		cols = append(cols, Column{Name: cn, Type: ct})
		if p.isSymbol(",") {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &createStmt{table: name, cols: cols}, nil
}

func (p *sqlParser) parseInsert() (stmt, error) {
	p.pos++ // insert
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.isSymbol("(") {
		p.pos++
		for {
			cn, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, cn)
			if p.isSymbol(",") {
				p.pos++
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if p.isKw("values") {
		p.pos++
		var rows [][]expr
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.isSymbol(",") {
					p.pos++
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if p.isSymbol(",") {
				p.pos++
				continue
			}
			break
		}
		return &insertValuesStmt{table: name, cols: cols, rows: rows}, nil
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &insertSelectStmt{table: name, cols: cols, sel: sel.(*selectStmt)}, nil
}

func (p *sqlParser) parseDrop() (stmt, error) {
	p.pos++ // drop
	d := &dropStmt{}
	if p.isKw("view") {
		p.pos++
		d.view = true
	} else if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	if p.isKw("if") {
		p.pos++
		if err := p.expectKw("exists"); err != nil {
			return nil, err
		}
		d.ifExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d.table = name
	return d, nil
}

func (p *sqlParser) parseDelete() (stmt, error) {
	p.pos++ // delete
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &deleteStmt{table: name}
	if p.isKw("where") {
		p.pos++
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.where = w
	}
	return d, nil
}

func (p *sqlParser) parseSelect() (stmt, error) {
	p.pos++ // select
	s := &selectStmt{}
	if p.isKw("distinct") {
		p.pos++
		s.distinct = true
	}
	for {
		if p.isSymbol("*") {
			p.pos++
			s.exprs = append(s.exprs, selectExpr{star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			se := selectExpr{e: e}
			if p.isKw("as") {
				p.pos++
				a, err := p.ident()
				if err != nil {
					return nil, err
				}
				se.alias = a
			} else if p.cur().kind == tIdent && !p.selectKeywordNext() {
				se.alias = p.next().text
			}
			s.exprs = append(s.exprs, se)
		}
		if p.isSymbol(",") {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		fi, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		s.from = append(s.from, fi)
		if p.isSymbol(",") {
			p.pos++
			continue
		}
		break
	}
	if p.isKw("where") {
		p.pos++
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.where = w
	}
	if p.isKw("group") {
		p.pos++
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.groupBy = append(s.groupBy, e)
			if p.isSymbol(",") {
				p.pos++
				continue
			}
			break
		}
	}
	if p.isKw("order") {
		p.pos++
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.orderBy = append(s.orderBy, e)
			if p.isSymbol(",") {
				p.pos++
				continue
			}
			break
		}
	}
	return s, nil
}

// selectKeywordNext reports whether the current identifier is a clause
// keyword rather than an implicit alias.
func (p *sqlParser) selectKeywordNext() bool {
	switch p.cur().text {
	case "from", "where", "group", "order", "as":
		return true
	}
	return false
}

func (p *sqlParser) parseFromItem() (fromItem, error) {
	name, err := p.ident()
	if err != nil {
		return fromItem{}, err
	}
	fi := fromItem{}
	if p.isSymbol("(") {
		// Tabular function: FN(table [, table]* [, number]*).
		p.pos++
		fi.fn = name
		for {
			switch {
			case p.cur().kind == tIdent:
				fi.args = append(fi.args, p.next().text)
			case p.cur().kind == tNumber:
				fi.params = append(fi.params, p.next().num)
			case p.isSymbol("-"):
				p.pos++
				if p.cur().kind != tNumber {
					return fromItem{}, fmt.Errorf("sql: expected number after '-' in tabular function args")
				}
				fi.params = append(fi.params, -p.next().num)
			default:
				return fromItem{}, fmt.Errorf("sql: bad tabular function argument %q", p.cur().text)
			}
			if p.isSymbol(",") {
				p.pos++
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return fromItem{}, err
		}
	} else {
		fi.table = name
	}
	if p.cur().kind == tIdent && !p.fromKeywordNext() {
		fi.alias = p.next().text
	}
	if fi.alias == "" {
		if fi.table != "" {
			fi.alias = fi.table
		} else {
			fi.alias = fi.fn
		}
	}
	return fi, nil
}

func (p *sqlParser) fromKeywordNext() bool {
	switch p.cur().text {
	case "where", "group", "order", "on":
		return true
	}
	return false
}

// Expression grammar: or > and > not > comparison > additive >
// multiplicative > unary > primary.
func (p *sqlParser) parseExpr() (expr, error) { return p.parseOr() }

func (p *sqlParser) parseOr() (expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("or") {
		p.pos++
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: "or", l: x, r: y}
	}
	return x, nil
}

func (p *sqlParser) parseAnd() (expr, error) {
	x, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKw("and") {
		p.pos++
		y, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: "and", l: x, r: y}
	}
	return x, nil
}

func (p *sqlParser) parseNot() (expr, error) {
	if p.isKw("not") {
		p.pos++
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "not", x: x}, nil
	}
	return p.parseComparison()
}

func (p *sqlParser) parseComparison() (expr, error) {
	x, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.isKw("is") {
		p.pos++
		not := false
		if p.isKw("not") {
			p.pos++
			not = true
		}
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return &isNullExpr{x: x, not: not}, nil
	}
	if p.cur().kind == tSymbol {
		switch p.cur().text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.next().text
			y, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &binExpr{op: op, l: x, r: y}, nil
		}
	}
	return x, nil
}

func (p *sqlParser) parseAdditive() (expr, error) {
	x, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("+") || p.isSymbol("-") {
		op := p.next().text
		y, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: op, l: x, r: y}
	}
	return x, nil
}

func (p *sqlParser) parseMultiplicative() (expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isSymbol("*") || p.isSymbol("/") {
		op := p.next().text
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &binExpr{op: op, l: x, r: y}
	}
	return x, nil
}

func (p *sqlParser) parseUnary() (expr, error) {
	if p.isSymbol("-") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: "-", x: x}, nil
	}
	if p.isSymbol("+") {
		p.pos++
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *sqlParser) parsePrimary() (expr, error) {
	switch {
	case p.cur().kind == tNumber:
		t := p.next()
		return &lit{v: model.Num(t.num)}, nil
	case p.cur().kind == tString:
		t := p.next()
		return &lit{v: model.Str(t.text)}, nil
	case p.isSymbol("("):
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.isKw("null"):
		p.pos++
		return &lit{v: model.Value{}}, nil
	case p.cur().kind == tIdent:
		name := p.next().text
		if p.isSymbol("(") {
			p.pos++
			c := &callExpr{name: name}
			if p.isSymbol("*") {
				p.pos++
				c.star = true
			} else if !p.isSymbol(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					c.args = append(c.args, a)
					if p.isSymbol(",") {
						p.pos++
						continue
					}
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return c, nil
		}
		if p.isSymbol(".") {
			p.pos++
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &colRef{qual: name, name: col}, nil
		}
		return &colRef{name: name}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected token %q in expression", p.cur().text)
	}
}
