package sqlengine

import (
	"testing"

	"exlengine/internal/model"
)

// TestSeriesTabularDuplicatePeriodsDeterministic is the regression test
// for the unstable series sort in tabular functions: a table with
// duplicate periods (reachable by projecting a panel onto its time
// column) used to order equal periods by row position, so CUMSUM output
// depended on upstream row order. The tie-break on value makes it a pure
// function of the table's contents.
func TestSeriesTabularDuplicatePeriodsDeterministic(t *testing.T) {
	const periods, dups = 8, 8
	mkTable := func(reverse bool) *Table {
		tbl := &Table{
			Name: "S",
			Cols: []Column{
				{Name: "t", Type: ColType{Kind: KPeriod, Freq: model.Quarterly}},
				{Name: "v", Type: ColType{Kind: KDouble}},
			},
		}
		n := periods * dups
		for i := 0; i < n; i++ {
			k := i
			if reverse {
				k = n - 1 - i
			}
			q := model.NewQuarterly(2000, 1).Shift(int64(k % periods))
			tbl.Rows = append(tbl.Rows, []model.Value{model.Per(q), model.Num(float64(k))})
		}
		return tbl
	}

	a, err := seriesTabular("cumsum", []*Table{mkTable(false)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := seriesTabular("cumsum", []*Table{mkTable(true)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) || len(a.Rows) != periods*dups {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				t.Fatalf("row %d differs between input orders: %v vs %v", i, a.Rows[i], b.Rows[i])
			}
		}
	}
}
