package sqlengine

import (
	"fmt"
	"testing"
	"time"

	"exlengine/internal/model"
)

// benchDB builds a monthly panel PDR (rows rows) and a quarterly rate
// table RATE sized to join against it, bypassing the SQL INSERT path so
// setup cost stays out of the measured loop.
func benchDB(mode ExecMode, rows int) *DB {
	db := NewDB()
	db.SetExecMode(mode)
	regions := []string{"north", "south", "east", "west"}
	pdr := &Table{
		Name: "pdr",
		Cols: []Column{
			{Name: "d", Type: ColType{Kind: KPeriod, Freq: model.Monthly}},
			{Name: "r", Type: ColType{Kind: KVarchar}},
			{Name: "v", Type: ColType{Kind: KDouble}},
		},
	}
	for i := 0; i < rows; i++ {
		y, m := 2000+i/(12*len(regions)), 1+(i/len(regions))%12
		r := regions[i%len(regions)]
		pdr.Rows = append(pdr.Rows, []model.Value{
			model.Per(model.NewMonthly(y, time.Month(m))),
			model.Str(r),
			model.Num(float64(i%97) + 0.5),
		})
	}
	db.tables["pdr"] = pdr

	rate := &Table{
		Name: "rate",
		Cols: []Column{
			{Name: "q", Type: ColType{Kind: KPeriod, Freq: model.Quarterly}},
			{Name: "r", Type: ColType{Kind: KVarchar}},
			{Name: "x", Type: ColType{Kind: KDouble}},
		},
	}
	years := rows/(12*len(regions)) + 1
	for y := 0; y < years; y++ {
		for q := 1; q <= 4; q++ {
			for _, r := range regions {
				rate.Rows = append(rate.Rows, []model.Value{
					model.Per(model.NewQuarterly(2000+y, q)),
					model.Str(r),
					model.Num(1 + float64(q)/10),
				})
			}
		}
	}
	db.tables["rate"] = rate
	return db
}

func benchQuery(b *testing.B, mode ExecMode, rows int, query string) {
	b.Helper()
	db := benchDB(mode, rows)
	// Warm once: fills the columnar batch cache and catches errors.
	if _, err := db.Query(query); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLJoin measures a two-table hash join with a dimension
// function on the join key, legacy tree-walker vs vectorized executor.
func BenchmarkSQLJoin(b *testing.B) {
	const query = `SELECT p.r AS r, p.v AS v, t.x AS x FROM PDR p, RATE t WHERE quarter(p.d) = t.q AND p.r = t.r`
	for _, rows := range []int{1000, 10000} {
		for _, m := range []struct {
			name string
			mode ExecMode
		}{{"legacy", ExecLegacy}, {"vector", ExecVector}} {
			b.Run(fmt.Sprintf("%s/rows=%d", m.name, rows), func(b *testing.B) {
				benchQuery(b, m.mode, rows, query)
			})
		}
	}
}

// BenchmarkSQLGroupBy measures hash aggregation with a computed group
// key and three aggregates, legacy vs vectorized.
func BenchmarkSQLGroupBy(b *testing.B) {
	const query = `SELECT quarter(d) AS q, r, sum(v) AS s, avg(v) AS a, count(*) AS n FROM PDR GROUP BY quarter(d), r`
	for _, rows := range []int{1000, 10000} {
		for _, m := range []struct {
			name string
			mode ExecMode
		}{{"legacy", ExecLegacy}, {"vector", ExecVector}} {
			b.Run(fmt.Sprintf("%s/rows=%d", m.name, rows), func(b *testing.B) {
				benchQuery(b, m.mode, rows, query)
			})
		}
	}
}

// BenchmarkSQLJoinAggregate is the e5-class shape: join then group, the
// dominant pattern in generated mapping scripts (RGDP/GDP tgds).
func BenchmarkSQLJoinAggregate(b *testing.B) {
	const query = `SELECT p.r AS r, sum(p.v * t.x) AS s FROM PDR p, RATE t WHERE quarter(p.d) = t.q AND p.r = t.r GROUP BY p.r`
	for _, m := range []struct {
		name string
		mode ExecMode
	}{{"legacy", ExecLegacy}, {"vector", ExecVector}} {
		b.Run(m.name, func(b *testing.B) {
			benchQuery(b, m.mode, 10000, query)
		})
	}
}
