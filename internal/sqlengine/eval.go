package sqlengine

import (
	"bytes"
	"context"
	"fmt"
	"slices"
	"strings"

	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// scope resolves column references over a row assembled from one or more
// from-items laid out side by side.
type scope struct {
	aliases []string
	tables  []*Table
	offsets []int
	width   int
}

func newScope() *scope { return &scope{} }

func (sc *scope) add(alias string, t *Table) {
	sc.aliases = append(sc.aliases, alias)
	sc.tables = append(sc.tables, t)
	sc.offsets = append(sc.offsets, sc.width)
	sc.width += len(t.Cols)
}

// resolve returns the row offset and type of a column reference.
func (sc *scope) resolve(qual, name string) (int, ColType, error) {
	found := -1
	var typ ColType
	for i, a := range sc.aliases {
		if qual != "" && a != qual {
			continue
		}
		if j := sc.tables[i].ColIndex(name); j >= 0 {
			if found >= 0 {
				return 0, ColType{}, fmt.Errorf("sql: ambiguous column %s", name)
			}
			found = sc.offsets[i] + j
			typ = sc.tables[i].Cols[j].Type
		}
	}
	if found < 0 {
		if qual != "" {
			return 0, ColType{}, fmt.Errorf("sql: unknown column %s.%s", qual, name)
		}
		return 0, ColType{}, fmt.Errorf("sql: unknown column %s", name)
	}
	return found, typ, nil
}

// aliasSet returns the set of aliases referenced by an expression.
func exprAliases(e expr, sc *scope, out map[string]bool) {
	switch e := e.(type) {
	case *colRef:
		if e.qual != "" {
			out[e.qual] = true
			return
		}
		// Unqualified: attribute to whichever table has the column.
		for i, t := range sc.tables {
			if t.ColIndex(e.name) >= 0 {
				out[sc.aliases[i]] = true
			}
		}
	case *binExpr:
		exprAliases(e.l, sc, out)
		exprAliases(e.r, sc, out)
	case *unaryExpr:
		exprAliases(e.x, sc, out)
	case *callExpr:
		for _, a := range e.args {
			exprAliases(a, sc, out)
		}
	case *isNullExpr:
		exprAliases(e.x, sc, out)
	}
}

func splitAnd(e expr) []expr {
	if b, ok := e.(*binExpr); ok && b.op == "and" {
		return append(splitAnd(b.l), splitAnd(b.r)...)
	}
	if e == nil {
		return nil
	}
	return []expr{e}
}

// resolver materializes relations for one statement: base tables
// directly, views by evaluating their definition through whichever
// executor the engine is configured with (the paper's relational views
// for temporary cubes). Expanded views are memoized for the lifetime of
// the statement, so a view referenced N times — in particular diamond-
// shaped view graphs, where each layer used to multiply the work —
// evaluates exactly once. expanding guards against cyclic definitions.
type resolver struct {
	db        *DB
	ctx       context.Context
	expanding map[string]bool
	memo      map[string]*Table
}

func (db *DB) newResolver(ctx context.Context) *resolver {
	return &resolver{
		db:        db,
		ctx:       ctx,
		expanding: make(map[string]bool),
		memo:      make(map[string]*Table),
	}
}

// relation returns the named table, or evaluates (and memoizes) the
// named view.
func (r *resolver) relation(name string) (*Table, error) {
	if t, ok := r.db.Table(name); ok {
		return t, nil
	}
	if t, ok := r.memo[name]; ok {
		return t, nil
	}
	r.db.mu.RLock()
	sel, ok := r.db.views[name]
	r.db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %s", name)
	}
	if r.expanding[name] {
		return nil, fmt.Errorf("sql: cyclic view definition involving %s", name)
	}
	r.expanding[name] = true
	t, err := r.db.evalSelectWith(r.ctx, sel, r)
	delete(r.expanding, name)
	if err != nil {
		return nil, fmt.Errorf("sql: evaluating view %s: %w", name, err)
	}
	t.Name = name
	r.memo[name] = t
	return t, nil
}

// scopeFor materializes the from-items (tables, views and tabular
// functions) into a scope.
func (r *resolver) scopeFor(items []fromItem) (*scope, error) {
	sc := newScope()
	for _, fi := range items {
		var t *Table
		if fi.table != "" {
			tt, err := r.relation(fi.table)
			if err != nil {
				return nil, err
			}
			t = tt
		} else {
			r.db.mu.RLock()
			fn, ok := r.db.tabfns[fi.fn]
			r.db.mu.RUnlock()
			if !ok {
				return nil, fmt.Errorf("sql: unknown tabular function %s", fi.fn)
			}
			var args []*Table
			for _, an := range fi.args {
				at, err := r.relation(an)
				if err != nil {
					return nil, fmt.Errorf("sql: argument of %s: %w", fi.fn, err)
				}
				args = append(args, at)
			}
			tt, err := fn(args, fi.params)
			if err != nil {
				return nil, fmt.Errorf("sql: tabular function %s: %w", fi.fn, err)
			}
			t = tt
		}
		sc.add(fi.alias, t)
	}
	return sc, nil
}

// selectPrep is the executor-independent front half of a SELECT: the
// materialized scope, the star-expanded output expressions and the
// inferred output schema. Both the legacy tree-walker and the vectorized
// executor start from the same prep, which is what keeps their
// name-resolution and typing rules identical.
type selectPrep struct {
	sc    *scope
	exprs []selectExpr
	names []string
	types []ColType
}

func (db *DB) prepareSelect(s *selectStmt, r *resolver) (*selectPrep, error) {
	if len(s.from) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires a FROM clause")
	}
	sc, err := r.scopeFor(s.from)
	if err != nil {
		return nil, err
	}
	if err := db.validateSelect(s, sc); err != nil {
		return nil, err
	}

	// Expand SELECT *.
	var exprs []selectExpr
	for _, se := range s.exprs {
		if !se.star {
			exprs = append(exprs, se)
			continue
		}
		for i, t := range sc.tables {
			for _, c := range t.Cols {
				exprs = append(exprs, selectExpr{e: &colRef{qual: sc.aliases[i], name: c.Name}, alias: c.Name})
			}
		}
	}

	p := &selectPrep{sc: sc, exprs: exprs}
	for i, se := range exprs {
		name := se.alias
		if name == "" {
			if cr, ok := se.e.(*colRef); ok {
				name = cr.name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		p.names = append(p.names, name)
		p.types = append(p.types, db.inferType(se.e, sc))
	}
	return p, nil
}

func (db *DB) evalSelect(s *selectStmt) (*Table, error) {
	return db.evalSelectCtx(context.Background(), s)
}

func (db *DB) evalSelectCtx(ctx context.Context, s *selectStmt) (*Table, error) {
	return db.evalSelectWith(ctx, s, db.newResolver(ctx))
}

// evalSelectWith dispatches a SELECT to the configured executor. Views
// referenced by the statement run under the same executor and share the
// statement's resolver (and so its view memo).
func (db *DB) evalSelectWith(ctx context.Context, s *selectStmt, r *resolver) (*Table, error) {
	if db.mode() == ExecLegacy {
		return db.evalSelectLegacy(ctx, s, r)
	}
	return db.evalSelectVec(ctx, s, r)
}

// evalSelectLegacy is the original tuple-at-a-time tree-walking
// executor. It is kept, behind ExecLegacy, as the differential reference
// for the vectorized executor: exlfuzz runs the same programs through
// both and any disagreement is a bug in one of them.
func (db *DB) evalSelectLegacy(_ context.Context, s *selectStmt, r *resolver) (*Table, error) {
	p, err := db.prepareSelect(s, r)
	if err != nil {
		return nil, err
	}
	sc, exprs := p.sc, p.exprs
	rows, err := db.joinFrom(s, sc)
	if err != nil {
		return nil, err
	}

	out := &Table{}
	for i := range exprs {
		out.Cols = append(out.Cols, Column{Name: p.names[i], Type: p.types[i]})
	}

	grouping := len(s.groupBy) > 0
	for _, se := range exprs {
		if hasAggregate(se.e) {
			grouping = true
		}
	}

	if grouping {
		if err := db.evalGrouped(s, sc, rows, exprs, out); err != nil {
			return nil, err
		}
	} else {
		for _, row := range rows {
			vals := make([]model.Value, len(exprs))
			null := false
			for i, se := range exprs {
				v, err := db.evalExpr(se.e, sc, row)
				if err != nil {
					return nil, err
				}
				if !v.IsValid() {
					null = true
					break
				}
				vals[i] = v
			}
			if null {
				continue
			}
			out.Rows = append(out.Rows, vals)
		}
	}

	if s.distinct {
		out.Rows = distinctRows(out.Rows)
	}

	if len(s.orderBy) > 0 {
		idx, err := orderByIndexes(s, p.names)
		if err != nil {
			return nil, err
		}
		sortRowsBy(out.Rows, len(out.Cols), idx)
	} else {
		out.SortRows()
	}
	return out, nil
}

// distinctRows removes duplicate rows, keeping first occurrences.
func distinctRows(rows [][]model.Value) [][]model.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := model.EncodeKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// joinFrom joins the from-items left to right. Equality conjuncts whose
// sides partition into "already joined aliases" vs "the next item" become
// hash-join keys (this covers the generated WHERE C1.Q = C2.Q AND … and
// the shifted G1.Q = G2.Q - 1); everything else is filtered afterwards.
func (db *DB) joinFrom(s *selectStmt, sc *scope) ([][]model.Value, error) {
	conjuncts := splitAnd(s.where)
	used := make([]bool, len(conjuncts))

	rows := make([][]model.Value, 0, len(sc.tables[0].Rows))
	for _, r := range sc.tables[0].Rows {
		row := make([]model.Value, sc.width)
		copy(row, r)
		rows = append(rows, row)
	}
	done := map[string]bool{sc.aliases[0]: true}

	for k := 1; k < len(sc.tables); k++ {
		alias := sc.aliases[k]
		var probeExprs, buildExprs []expr
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			b, ok := c.(*binExpr)
			if !ok || b.op != "=" {
				continue
			}
			la, ra := map[string]bool{}, map[string]bool{}
			exprAliases(b.l, sc, la)
			exprAliases(b.r, sc, ra)
			switch {
			case subset(la, done) && onlyAlias(ra, alias):
				probeExprs = append(probeExprs, b.l)
				buildExprs = append(buildExprs, b.r)
				used[ci] = true
			case subset(ra, done) && onlyAlias(la, alias):
				probeExprs = append(probeExprs, b.r)
				buildExprs = append(buildExprs, b.l)
				used[ci] = true
			}
		}

		t := sc.tables[k]
		off := sc.offsets[k]
		var next [][]model.Value
		if len(buildExprs) > 0 {
			// Hash join: index the new table on the build expressions.
			index := make(map[string][][]model.Value, len(t.Rows))
			keyBuf := make([]model.Value, len(buildExprs))
			tmp := make([]model.Value, sc.width)
			for _, r := range t.Rows {
				copy(tmp[off:], r)
				null := false
				for i, be := range buildExprs {
					v, err := db.evalExpr(be, sc, tmp)
					if err != nil {
						return nil, err
					}
					if !v.IsValid() {
						null = true
						break
					}
					keyBuf[i] = v
				}
				if null {
					continue
				}
				key := model.EncodeKey(keyBuf)
				index[key] = append(index[key], r)
			}
			for _, row := range rows {
				null := false
				for i, pe := range probeExprs {
					v, err := db.evalExpr(pe, sc, row)
					if err != nil {
						return nil, err
					}
					if !v.IsValid() {
						null = true
						break
					}
					keyBuf[i] = v
				}
				if null {
					continue
				}
				for _, r := range index[model.EncodeKey(keyBuf)] {
					nr := make([]model.Value, sc.width)
					copy(nr, row)
					copy(nr[off:], r)
					next = append(next, nr)
				}
			}
		} else {
			// No usable equi-condition: nested-loop cross product.
			for _, row := range rows {
				for _, r := range t.Rows {
					nr := make([]model.Value, sc.width)
					copy(nr, row)
					copy(nr[off:], r)
					next = append(next, nr)
				}
			}
		}
		rows = next
		done[alias] = true
	}

	// Residual filter.
	var filtered [][]model.Value
	for _, row := range rows {
		keep := true
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			v, err := db.evalExpr(c, sc, row)
			if err != nil {
				return nil, err
			}
			b, ok := v.AsBool()
			if !ok || !b {
				keep = false
				break
			}
		}
		if keep {
			filtered = append(filtered, row)
		}
	}
	return filtered, nil
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func onlyAlias(a map[string]bool, alias string) bool {
	return len(a) == 1 && a[alias]
}

func (db *DB) evalGrouped(s *selectStmt, sc *scope, rows [][]model.Value, exprs []selectExpr, out *Table) error {
	type group struct {
		rep  []model.Value // representative row for group-expr evaluation
		rows [][]model.Value
	}
	groups := make(map[string]*group)
	var order []string
	keyBuf := make([]model.Value, len(s.groupBy))
	for _, row := range rows {
		null := false
		for i, ge := range s.groupBy {
			v, err := db.evalExpr(ge, sc, row)
			if err != nil {
				return err
			}
			if !v.IsValid() {
				null = true
				break
			}
			keyBuf[i] = v
		}
		if null {
			continue
		}
		key := model.EncodeKey(keyBuf)
		g, ok := groups[key]
		if !ok {
			g = &group{rep: row}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}
	// A global aggregate (no GROUP BY) always has exactly one group, even
	// over zero input rows: SELECT count(*) FROM empty is (0). The empty
	// group's representative row is all-NULL, so sum/avg/min/max come out
	// NULL there and the row is dropped — only COUNT survives with 0.
	if len(s.groupBy) == 0 && len(order) == 0 {
		groups[""] = &group{rep: make([]model.Value, sc.width)}
		order = append(order, "")
	}
	for _, key := range order {
		g := groups[key]
		vals := make([]model.Value, len(exprs))
		null := false
		for i, se := range exprs {
			v, err := db.evalAggExpr(se.e, sc, g.rep, g.rows)
			if err != nil {
				return err
			}
			if !v.IsValid() {
				null = true
				break
			}
			vals[i] = v
		}
		if null {
			continue
		}
		out.Rows = append(out.Rows, vals)
	}
	return nil
}

// aggEmptyResult is the value of an aggregate over an empty bag (no rows,
// or every argument NULL): COUNT is 0 — counting nothing is a defined
// answer — while SUM/AVG/MIN/MAX have no value and yield NULL, which then
// drops the row under the cube partial-function contract.
func aggEmptyResult(name string) model.Value {
	if name == "count" {
		return model.Num(0)
	}
	return model.Value{}
}

// evalAggExpr evaluates a select expression in a grouped context:
// aggregate calls consume the group's rows, everything else is evaluated
// on the representative row.
func (db *DB) evalAggExpr(e expr, sc *scope, rep []model.Value, rows [][]model.Value) (model.Value, error) {
	switch e := e.(type) {
	case *callExpr:
		if ops.IsAggregation(e.name) || e.name == "count" {
			agg, err := ops.NewAggregator(e.name)
			if err != nil {
				return model.Value{}, err
			}
			n := 0
			for _, row := range rows {
				if e.star {
					agg.Add(0)
					n++
					continue
				}
				if len(e.args) != 1 {
					return model.Value{}, fmt.Errorf("sql: aggregate %s takes one argument", e.name)
				}
				v, err := db.evalExpr(e.args[0], sc, row)
				if err != nil {
					return model.Value{}, err
				}
				if !v.IsValid() {
					continue // nulls are not part of the bag
				}
				f, ok := v.AsNumber()
				if !ok {
					return model.Value{}, fmt.Errorf("sql: aggregate %s over non-numeric value %v", e.name, v)
				}
				agg.Add(f)
				n++
			}
			if n == 0 {
				return aggEmptyResult(e.name), nil
			}
			return model.Num(agg.Result()), nil
		}
		// Scalar call over aggregated arguments.
		args := make([]expr, len(e.args))
		copy(args, e.args)
		vals := make([]model.Value, len(args))
		for i, a := range args {
			v, err := db.evalAggExpr(a, sc, rep, rows)
			if err != nil || !v.IsValid() {
				return v, err
			}
			vals[i] = v
		}
		return db.applyScalarCall(e.name, vals)
	case *binExpr:
		l, err := db.evalAggExpr(e.l, sc, rep, rows)
		if err != nil {
			return l, err
		}
		if e.op == "and" || e.op == "or" {
			// Same Kleene rule as evalExpr: a dominant known operand
			// decides even when the other side is NULL.
			r, err := db.evalAggExpr(e.r, sc, rep, rows)
			if err != nil {
				return r, err
			}
			return kleeneLogic(e.op, l, r)
		}
		r, err := db.evalAggExpr(e.r, sc, rep, rows)
		if err != nil {
			return r, err
		}
		return applyBinary(e.op, l, r)
	case *unaryExpr:
		x, err := db.evalAggExpr(e.x, sc, rep, rows)
		if err != nil {
			return x, err
		}
		return applyUnary(e.op, x)
	case *isNullExpr:
		x, err := db.evalAggExpr(e.x, sc, rep, rows)
		if err != nil {
			return x, err
		}
		return applyIsNull(x, e.not), nil
	default:
		return db.evalExpr(e, sc, rep)
	}
}

// validateSelect statically checks column references and aggregate
// placement, so malformed queries fail even over empty tables.
func (db *DB) validateSelect(s *selectStmt, sc *scope) error {
	for _, se := range s.exprs {
		if se.star {
			continue
		}
		if err := validateExpr(se.e, sc); err != nil {
			return err
		}
	}
	if s.where != nil {
		if hasAggregate(s.where) {
			return fmt.Errorf("sql: aggregates are not allowed in WHERE")
		}
		if err := validateExpr(s.where, sc); err != nil {
			return err
		}
	}
	for _, ge := range s.groupBy {
		if hasAggregate(ge) {
			return fmt.Errorf("sql: aggregates are not allowed in GROUP BY")
		}
		if err := validateExpr(ge, sc); err != nil {
			return err
		}
	}
	return nil
}

func validateExpr(e expr, sc *scope) error {
	switch e := e.(type) {
	case *colRef:
		_, _, err := sc.resolve(e.qual, e.name)
		return err
	case *binExpr:
		if err := validateExpr(e.l, sc); err != nil {
			return err
		}
		return validateExpr(e.r, sc)
	case *unaryExpr:
		return validateExpr(e.x, sc)
	case *callExpr:
		for _, a := range e.args {
			if err := validateExpr(a, sc); err != nil {
				return err
			}
		}
	case *isNullExpr:
		return validateExpr(e.x, sc)
	}
	return nil
}

func hasAggregate(e expr) bool {
	switch e := e.(type) {
	case *callExpr:
		if ops.IsAggregation(e.name) || e.name == "count" {
			return true
		}
		for _, a := range e.args {
			if hasAggregate(a) {
				return true
			}
		}
	case *binExpr:
		return hasAggregate(e.l) || hasAggregate(e.r)
	case *unaryExpr:
		return hasAggregate(e.x)
	case *isNullExpr:
		return hasAggregate(e.x)
	}
	return false
}

// compareNullsLast is the engine's one ordering rule for NULL: every
// NULL sorts after every non-NULL value, and NULLs compare equal to each
// other. Both executors (and Table.SortRows) sort through this, so a
// query's output order never depends on which executor ran it.
func compareNullsLast(a, b model.Value) int {
	switch {
	case !a.IsValid() && !b.IsValid():
		return 0
	case !a.IsValid():
		return 1
	case !b.IsValid():
		return -1
	default:
		return a.Compare(b)
	}
}

// sortRowsBy sorts rows of the given width by the column indexes in by
// (nil means all columns left to right), breaking ties by the remaining
// columns in schema order. With full-row tie-breaking the order is a pure
// function of the result set — independent of input order, join order and
// executor — which is what the cross-engine determinism tests pin.
func sortRowsBy(rows [][]model.Value, width int, by []int) {
	if len(rows) < 2 {
		return
	}
	keys := make([]int, 0, width)
	inKey := make([]bool, width)
	for _, j := range by {
		if !inKey[j] {
			keys = append(keys, j)
			inKey[j] = true
		}
	}
	for j := 0; j < width; j++ {
		if !inKey[j] {
			keys = append(keys, j)
		}
	}
	// Encode each row once into an order-preserving byte key (NULLS LAST
	// built into the encoding) and sort key/row pairs by memcmp: one pass
	// of key building replaces O(n log n) polymorphic Compare calls.
	buf := make([]byte, 0, len(rows)*10*len(keys))
	type rowKey struct {
		key []byte
		row []model.Value
	}
	pairs := make([]rowKey, len(rows))
	lo := 0
	for i, r := range rows {
		for _, j := range keys {
			buf = model.AppendOrderedKey(buf, r[j])
		}
		pairs[i] = rowKey{key: buf[lo:len(buf):len(buf)], row: r}
		lo = len(buf)
	}
	slices.SortFunc(pairs, func(a, b rowKey) int { return bytes.Compare(a.key, b.key) })
	for i := range pairs {
		rows[i] = pairs[i].row
	}
}

// evalExpr evaluates a scalar expression over a row. An invalid Value with
// nil error is SQL NULL: it arises from undefined operator points and
// propagates upward; rows with NULL outputs are dropped, matching the cube
// semantics of partial functions.
func (db *DB) evalExpr(e expr, sc *scope, row []model.Value) (model.Value, error) {
	switch e := e.(type) {
	case *lit:
		return e.v, nil
	case *colRef:
		off, _, err := sc.resolve(e.qual, e.name)
		if err != nil {
			return model.Value{}, err
		}
		return row[off], nil
	case *unaryExpr:
		x, err := db.evalExpr(e.x, sc, row)
		if err != nil {
			return x, err
		}
		return applyUnary(e.op, x)
	case *binExpr:
		l, err := db.evalExpr(e.l, sc, row)
		if err != nil {
			return l, err
		}
		if e.op == "and" || e.op == "or" {
			// No NULL short-circuit: FALSE AND NULL is FALSE and
			// TRUE OR NULL is TRUE, so the right side must be seen.
			r, err := db.evalExpr(e.r, sc, row)
			if err != nil {
				return r, err
			}
			return kleeneLogic(e.op, l, r)
		}
		r, err := db.evalExpr(e.r, sc, row)
		if err != nil {
			return r, err
		}
		// applyBinary owns NULL propagation (comparisons and arithmetic
		// are NULL-strict), so NULL operands flow through unguarded.
		return applyBinary(e.op, l, r)
	case *isNullExpr:
		x, err := db.evalExpr(e.x, sc, row)
		if err != nil {
			return x, err
		}
		return applyIsNull(x, e.not), nil
	case *callExpr:
		if ops.IsAggregation(e.name) || e.name == "count" {
			return model.Value{}, fmt.Errorf("sql: aggregate %s outside grouped context", e.name)
		}
		vals := make([]model.Value, len(e.args))
		for i, a := range e.args {
			v, err := db.evalExpr(a, sc, row)
			if err != nil || !v.IsValid() {
				return v, err
			}
			vals[i] = v
		}
		return db.applyScalarCall(e.name, vals)
	default:
		return model.Value{}, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

// applyIsNull is x IS [NOT] NULL: the only operator that maps unknown to
// a known boolean instead of propagating it.
func applyIsNull(x model.Value, not bool) model.Value {
	return model.Bool(x.IsValid() == not)
}

// scalarCallFunc applies a resolved scalar function to argument values.
type scalarCallFunc func(vals []model.Value) (model.Value, error)

// resolveScalarCall resolves a scalar function name once and returns its
// applier: the vectorized executor calls this at compile time and reuses
// the closure per row, the legacy evaluator per call. Either way the
// semantics — period functions, undefined-point → NULL, type errors —
// live here exactly once.
func resolveScalarCall(name string) (scalarCallFunc, error) {
	switch name {
	case "quarter", "month", "year":
		f, err := ops.Dimension(name)
		if err != nil {
			return nil, err
		}
		return func(vals []model.Value) (model.Value, error) {
			if len(vals) != 1 {
				return model.Value{}, fmt.Errorf("sql: %s takes one argument", name)
			}
			v, err := f.Apply(vals[0])
			if err != nil {
				return model.Value{}, err
			}
			return v, nil
		}, nil
	case "shift":
		return func(vals []model.Value) (model.Value, error) {
			if len(vals) != 2 {
				return model.Value{}, fmt.Errorf("sql: shift takes (period, steps)")
			}
			n, ok := vals[1].AsInt()
			if !ok {
				return model.Value{}, fmt.Errorf("sql: shift steps must be an integer")
			}
			return ops.ShiftValue(vals[0], n)
		}, nil
	}
	// Numeric scalar functions from the operator library.
	f, err := ops.Scalar(name)
	if err != nil {
		return nil, fmt.Errorf("sql: unknown function %s", name)
	}
	return func(vals []model.Value) (model.Value, error) {
		args := make([]float64, len(vals))
		for i, v := range vals {
			x, ok := v.AsNumber()
			if !ok {
				return model.Value{}, fmt.Errorf("sql: %s over non-numeric value %v", name, v)
			}
			args[i] = x
		}
		out, err := f(args...)
		if err != nil {
			if ops.ErrUndefined(err) {
				return model.Value{}, nil // NULL
			}
			return model.Value{}, err
		}
		return model.Num(out), nil
	}, nil
}

func (db *DB) applyScalarCall(name string, vals []model.Value) (model.Value, error) {
	f, err := resolveScalarCall(name)
	if err != nil {
		return model.Value{}, err
	}
	return f(vals)
}

// kleeneLogic is SQL's three-valued and/or (Kleene's strong logic): NULL
// means "unknown", yet a dominant known operand still decides — FALSE
// AND NULL is FALSE, TRUE OR NULL is TRUE; only genuinely undecidable
// combinations stay NULL. A NULL result then drops the row like every
// other NULL predicate.
func kleeneLogic(op string, l, r model.Value) (model.Value, error) {
	lb, lok := l.AsBool()
	rb, rok := r.AsBool()
	if (l.IsValid() && !lok) || (r.IsValid() && !rok) {
		return model.Value{}, fmt.Errorf("sql: boolean operator over non-booleans")
	}
	switch op {
	case "and":
		if (lok && !lb) || (rok && !rb) {
			return model.Bool(false), nil
		}
		if lok && rok {
			return model.Bool(true), nil
		}
	case "or":
		if (lok && lb) || (rok && rb) {
			return model.Bool(true), nil
		}
		if lok && rok {
			return model.Bool(false), nil
		}
	}
	return model.Value{}, nil // NULL: unknown
}

func applyUnary(op string, x model.Value) (model.Value, error) {
	// NULL-strict under Kleene 3VL: the negation (numeric or logical) of
	// an unknown value is unknown, never an error.
	if !x.IsValid() {
		return model.Value{}, nil
	}
	switch op {
	case "-":
		f, ok := x.AsNumber()
		if !ok {
			return model.Value{}, fmt.Errorf("sql: unary minus over non-numeric %v", x)
		}
		return model.Num(-f), nil
	case "not":
		b, ok := x.AsBool()
		if !ok {
			return model.Value{}, fmt.Errorf("sql: NOT over non-boolean %v", x)
		}
		return model.Bool(!b), nil
	default:
		return model.Value{}, fmt.Errorf("sql: unknown unary operator %s", op)
	}
}

// The four arithmetic operators are resolved from the operator library
// once at package init instead of per row: ops.Scalar is a map lookup,
// and the tree-walking evaluator used to pay it for every cell.
var arithFns = map[string]ops.ScalarFunc{
	"+": mustScalarFn("add"),
	"-": mustScalarFn("sub"),
	"*": mustScalarFn("mul"),
	"/": mustScalarFn("div"),
}

func mustScalarFn(name string) ops.ScalarFunc {
	f, err := ops.Scalar(name)
	if err != nil {
		panic(err)
	}
	return f
}

func applyBinary(op string, l, r model.Value) (model.Value, error) {
	if op == "and" || op == "or" {
		// Kleene and/or must see NULL operands: a dominant known side
		// still decides (FALSE AND NULL = FALSE, TRUE OR NULL = TRUE).
		return kleeneLogic(op, l, r)
	}
	// Every other operator is NULL-strict: comparing against or computing
	// with an unknown value yields unknown, so NULL = x is NULL (not
	// FALSE) and NULL + x is NULL (not an error). WHERE then filters the
	// NULL predicate and SELECT drops the NULL output row.
	if !l.IsValid() || !r.IsValid() {
		return model.Value{}, nil
	}
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		l, r = coercePair(l, r)
		c := l.Compare(r)
		eq := l.Equal(r)
		var res bool
		switch op {
		case "=":
			res = eq
		case "<>":
			res = !eq
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return model.Bool(res), nil
	case "+", "-":
		// Period arithmetic: Q - 1 shifts a period, as in the paper's
		// generated join condition G1.Q = G2.Q - 1. Addition commutes, so
		// 1 + Q is the same shift; 1 - Q has no period meaning and is
		// rejected explicitly rather than falling through to the numeric
		// path's confusing "non-numeric values" error.
		if p, ok := l.AsPeriod(); ok {
			n, ok := r.AsInt()
			if !ok {
				return model.Value{}, fmt.Errorf("sql: period arithmetic needs an integer offset")
			}
			if op == "-" {
				n = -n
			}
			return model.Per(p.Shift(n)), nil
		}
		if p, ok := r.AsPeriod(); ok {
			if op == "-" {
				return model.Value{}, fmt.Errorf("sql: cannot subtract a period from a number")
			}
			n, ok := l.AsInt()
			if !ok {
				return model.Value{}, fmt.Errorf("sql: period arithmetic needs an integer offset")
			}
			return model.Per(p.Shift(n)), nil
		}
		fallthrough
	case "*", "/":
		lf, ok1 := l.AsNumber()
		rf, ok2 := r.AsNumber()
		if !ok1 || !ok2 {
			return model.Value{}, fmt.Errorf("sql: arithmetic over non-numeric values %v, %v", l, r)
		}
		f := arithFns[op]
		out, err := f(lf, rf)
		if err != nil {
			if ops.ErrUndefined(err) {
				return model.Value{}, nil // NULL
			}
			return model.Value{}, err
		}
		return model.Num(out), nil
	default:
		return model.Value{}, fmt.Errorf("sql: unknown binary operator %s", op)
	}
}

// coercePair aligns a string literal with a period operand so that
// comparisons like q = '2001-Q1' work.
func coercePair(l, r model.Value) (model.Value, model.Value) {
	if _, ok := l.AsPeriod(); ok {
		if s, isStr := r.AsString(); isStr {
			if p, err := model.ParsePeriod(s); err == nil {
				return l, model.Per(p)
			}
		}
	}
	if _, ok := r.AsPeriod(); ok {
		if s, isStr := l.AsString(); isStr {
			if p, err := model.ParsePeriod(s); err == nil {
				return model.Per(p), r
			}
		}
	}
	return l, r
}

func (db *DB) inferType(e expr, sc *scope) ColType {
	switch e := e.(type) {
	case *lit:
		switch e.v.Kind() {
		case model.KindString:
			return ColType{Kind: KVarchar}
		case model.KindInt:
			return ColType{Kind: KInteger}
		default:
			return ColType{Kind: KDouble}
		}
	case *colRef:
		if _, t, err := sc.resolve(e.qual, e.name); err == nil {
			return t
		}
		return ColType{Kind: KDouble}
	case *binExpr:
		lt := db.inferType(e.l, sc)
		if lt.Kind == KPeriod && (e.op == "+" || e.op == "-") {
			return lt
		}
		// Commutative period shift: 1 + Q is a period too.
		if e.op == "+" {
			if rt := db.inferType(e.r, sc); rt.Kind == KPeriod {
				return rt
			}
		}
		return ColType{Kind: KDouble}
	case *callExpr:
		switch e.name {
		case "quarter":
			return ColType{Kind: KPeriod, Freq: model.Quarterly}
		case "month":
			return ColType{Kind: KPeriod, Freq: model.Monthly}
		case "year":
			return ColType{Kind: KPeriod, Freq: model.Annual}
		case "shift":
			if len(e.args) > 0 {
				return db.inferType(e.args[0], sc)
			}
		}
		return ColType{Kind: KDouble}
	default:
		return ColType{Kind: KDouble}
	}
}

func (db *DB) evalInsertValues(ctx context.Context, s *insertValuesStmt) error {
	t, ok := db.Table(s.table)
	if !ok {
		return fmt.Errorf("sql: unknown table %s", s.table)
	}
	perm, err := insertPermutation(t, s.cols)
	if err != nil {
		return err
	}
	sc := newScope()
	for _, rowExprs := range s.rows {
		if len(rowExprs) != len(perm) {
			return fmt.Errorf("sql: INSERT row has %d values, want %d", len(rowExprs), len(perm))
		}
		row := make([]model.Value, len(t.Cols))
		for i, e := range rowExprs {
			v, err := db.evalExpr(e, sc, nil)
			if err != nil {
				return err
			}
			cv, err := coerceToColumn(v, t.Cols[perm[i]].Type)
			if err != nil {
				return fmt.Errorf("sql: column %s: %w", t.Cols[perm[i]].Name, err)
			}
			row[perm[i]] = cv
		}
		db.mu.Lock()
		t.Rows = append(t.Rows, row)
		db.mu.Unlock()
	}
	t.Invalidate()
	return nil
}

func (db *DB) evalInsertSelect(ctx context.Context, s *insertSelectStmt) error {
	t, ok := db.Table(s.table)
	if !ok {
		return fmt.Errorf("sql: unknown table %s", s.table)
	}
	perm, err := insertPermutation(t, s.cols)
	if err != nil {
		return err
	}
	res, err := db.evalSelectCtx(ctx, s.sel)
	if err != nil {
		return err
	}
	if len(res.Cols) != len(perm) {
		return fmt.Errorf("sql: INSERT SELECT arity mismatch: %d vs %d", len(res.Cols), len(perm))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range res.Rows {
		row := make([]model.Value, len(t.Cols))
		for i, v := range r {
			cv, err := coerceToColumn(v, t.Cols[perm[i]].Type)
			if err != nil {
				return fmt.Errorf("sql: column %s: %w", t.Cols[perm[i]].Name, err)
			}
			row[perm[i]] = cv
		}
		t.Rows = append(t.Rows, row)
	}
	t.Invalidate()
	return nil
}

func (db *DB) evalDelete(s *deleteStmt) error {
	t, ok := db.Table(s.table)
	if !ok {
		return fmt.Errorf("sql: unknown table %s", s.table)
	}
	defer t.Invalidate()
	if s.where == nil {
		db.mu.Lock()
		t.Rows = nil
		db.mu.Unlock()
		return nil
	}
	sc := newScope()
	sc.add(t.Name, t)
	var kept [][]model.Value
	for _, row := range t.Rows {
		v, err := db.evalExpr(s.where, sc, row)
		if err != nil {
			return err
		}
		if b, ok := v.AsBool(); ok && b {
			continue
		}
		kept = append(kept, row)
	}
	db.mu.Lock()
	t.Rows = kept
	db.mu.Unlock()
	return nil
}

func insertPermutation(t *Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		perm := make([]int, len(t.Cols))
		for i := range perm {
			perm[i] = i
		}
		return perm, nil
	}
	perm := make([]int, len(cols))
	for i, c := range cols {
		j := t.ColIndex(strings.ToLower(c))
		if j < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %s", t.Name, c)
		}
		perm[i] = j
	}
	return perm, nil
}

// coerceToColumn converts an inserted value to the column type.
func coerceToColumn(v model.Value, t ColType) (model.Value, error) {
	if !v.IsValid() {
		return model.Value{}, fmt.Errorf("cannot insert NULL")
	}
	switch t.Kind {
	case KDouble:
		f, ok := v.AsNumber()
		if !ok {
			return model.Value{}, fmt.Errorf("cannot coerce %v to DOUBLE", v)
		}
		return model.Num(f), nil
	case KInteger:
		i, ok := v.AsInt()
		if !ok {
			return model.Value{}, fmt.Errorf("cannot coerce %v to INTEGER", v)
		}
		return model.Int(i), nil
	case KVarchar:
		if s, ok := v.AsString(); ok {
			return model.Str(s), nil
		}
		return model.Str(v.String()), nil
	case KPeriod:
		if p, ok := v.AsPeriod(); ok {
			if t.Freq != model.FreqInvalid && p.Freq != t.Freq {
				return model.Value{}, fmt.Errorf("period %v has frequency %s, column wants %s", v, p.Freq, t.Freq)
			}
			return v, nil
		}
		if s, ok := v.AsString(); ok {
			p, err := model.ParsePeriod(s)
			if err != nil {
				return model.Value{}, err
			}
			if t.Freq != model.FreqInvalid && p.Freq != t.Freq {
				return model.Value{}, fmt.Errorf("period %q has frequency %s, column wants %s", s, p.Freq, t.Freq)
			}
			return model.Per(p), nil
		}
		return model.Value{}, fmt.Errorf("cannot coerce %v to %s", v, t)
	default:
		return model.Value{}, fmt.Errorf("unknown column type")
	}
}
