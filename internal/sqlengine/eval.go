package sqlengine

import (
	"fmt"
	"sort"
	"strings"

	"exlengine/internal/model"
	"exlengine/internal/ops"
)

// scope resolves column references over a row assembled from one or more
// from-items laid out side by side.
type scope struct {
	aliases []string
	tables  []*Table
	offsets []int
	width   int
}

func newScope() *scope { return &scope{} }

func (sc *scope) add(alias string, t *Table) {
	sc.aliases = append(sc.aliases, alias)
	sc.tables = append(sc.tables, t)
	sc.offsets = append(sc.offsets, sc.width)
	sc.width += len(t.Cols)
}

// resolve returns the row offset and type of a column reference.
func (sc *scope) resolve(qual, name string) (int, ColType, error) {
	found := -1
	var typ ColType
	for i, a := range sc.aliases {
		if qual != "" && a != qual {
			continue
		}
		if j := sc.tables[i].ColIndex(name); j >= 0 {
			if found >= 0 {
				return 0, ColType{}, fmt.Errorf("sql: ambiguous column %s", name)
			}
			found = sc.offsets[i] + j
			typ = sc.tables[i].Cols[j].Type
		}
	}
	if found < 0 {
		if qual != "" {
			return 0, ColType{}, fmt.Errorf("sql: unknown column %s.%s", qual, name)
		}
		return 0, ColType{}, fmt.Errorf("sql: unknown column %s", name)
	}
	return found, typ, nil
}

// aliasSet returns the set of aliases referenced by an expression.
func exprAliases(e expr, sc *scope, out map[string]bool) {
	switch e := e.(type) {
	case *colRef:
		if e.qual != "" {
			out[e.qual] = true
			return
		}
		// Unqualified: attribute to whichever table has the column.
		for i, t := range sc.tables {
			if t.ColIndex(e.name) >= 0 {
				out[sc.aliases[i]] = true
			}
		}
	case *binExpr:
		exprAliases(e.l, sc, out)
		exprAliases(e.r, sc, out)
	case *unaryExpr:
		exprAliases(e.x, sc, out)
	case *callExpr:
		for _, a := range e.args {
			exprAliases(a, sc, out)
		}
	}
}

func splitAnd(e expr) []expr {
	if b, ok := e.(*binExpr); ok && b.op == "and" {
		return append(splitAnd(b.l), splitAnd(b.r)...)
	}
	if e == nil {
		return nil
	}
	return []expr{e}
}

// resolveRelation returns the named table, or evaluates the named view on
// the fly (the paper's relational views for temporary cubes). expanding
// guards against cyclic view definitions.
func (db *DB) resolveRelation(name string, expanding map[string]bool) (*Table, error) {
	if t, ok := db.Table(name); ok {
		return t, nil
	}
	db.mu.RLock()
	sel, ok := db.views[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %s", name)
	}
	if expanding[name] {
		return nil, fmt.Errorf("sql: cyclic view definition involving %s", name)
	}
	expanding[name] = true
	defer delete(expanding, name)
	t, err := db.evalSelectExpanding(sel, expanding)
	if err != nil {
		return nil, fmt.Errorf("sql: evaluating view %s: %w", name, err)
	}
	t.Name = name
	return t, nil
}

// resolveFrom materializes the from-items (tables, views and tabular
// functions).
func (db *DB) resolveFrom(items []fromItem, expanding map[string]bool) (*scope, error) {
	sc := newScope()
	for _, fi := range items {
		var t *Table
		if fi.table != "" {
			tt, err := db.resolveRelation(fi.table, expanding)
			if err != nil {
				return nil, err
			}
			t = tt
		} else {
			db.mu.RLock()
			fn, ok := db.tabfns[fi.fn]
			db.mu.RUnlock()
			if !ok {
				return nil, fmt.Errorf("sql: unknown tabular function %s", fi.fn)
			}
			var args []*Table
			for _, an := range fi.args {
				at, err := db.resolveRelation(an, expanding)
				if err != nil {
					return nil, fmt.Errorf("sql: argument of %s: %w", fi.fn, err)
				}
				args = append(args, at)
			}
			tt, err := fn(args, fi.params)
			if err != nil {
				return nil, fmt.Errorf("sql: tabular function %s: %w", fi.fn, err)
			}
			t = tt
		}
		sc.add(fi.alias, t)
	}
	return sc, nil
}

// joinFrom joins the from-items left to right. Equality conjuncts whose
// sides partition into "already joined aliases" vs "the next item" become
// hash-join keys (this covers the generated WHERE C1.Q = C2.Q AND … and
// the shifted G1.Q = G2.Q - 1); everything else is filtered afterwards.
func (db *DB) joinFrom(s *selectStmt, sc *scope) ([][]model.Value, error) {
	conjuncts := splitAnd(s.where)
	used := make([]bool, len(conjuncts))

	rows := make([][]model.Value, 0, len(sc.tables[0].Rows))
	for _, r := range sc.tables[0].Rows {
		row := make([]model.Value, sc.width)
		copy(row, r)
		rows = append(rows, row)
	}
	done := map[string]bool{sc.aliases[0]: true}

	for k := 1; k < len(sc.tables); k++ {
		alias := sc.aliases[k]
		var probeExprs, buildExprs []expr
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			b, ok := c.(*binExpr)
			if !ok || b.op != "=" {
				continue
			}
			la, ra := map[string]bool{}, map[string]bool{}
			exprAliases(b.l, sc, la)
			exprAliases(b.r, sc, ra)
			switch {
			case subset(la, done) && onlyAlias(ra, alias):
				probeExprs = append(probeExprs, b.l)
				buildExprs = append(buildExprs, b.r)
				used[ci] = true
			case subset(ra, done) && onlyAlias(la, alias):
				probeExprs = append(probeExprs, b.r)
				buildExprs = append(buildExprs, b.l)
				used[ci] = true
			}
		}

		t := sc.tables[k]
		off := sc.offsets[k]
		var next [][]model.Value
		if len(buildExprs) > 0 {
			// Hash join: index the new table on the build expressions.
			index := make(map[string][][]model.Value, len(t.Rows))
			keyBuf := make([]model.Value, len(buildExprs))
			tmp := make([]model.Value, sc.width)
			for _, r := range t.Rows {
				copy(tmp[off:], r)
				null := false
				for i, be := range buildExprs {
					v, err := db.evalExpr(be, sc, tmp)
					if err != nil {
						return nil, err
					}
					if !v.IsValid() {
						null = true
						break
					}
					keyBuf[i] = v
				}
				if null {
					continue
				}
				key := model.EncodeKey(keyBuf)
				index[key] = append(index[key], r)
			}
			for _, row := range rows {
				null := false
				for i, pe := range probeExprs {
					v, err := db.evalExpr(pe, sc, row)
					if err != nil {
						return nil, err
					}
					if !v.IsValid() {
						null = true
						break
					}
					keyBuf[i] = v
				}
				if null {
					continue
				}
				for _, r := range index[model.EncodeKey(keyBuf)] {
					nr := make([]model.Value, sc.width)
					copy(nr, row)
					copy(nr[off:], r)
					next = append(next, nr)
				}
			}
		} else {
			// No usable equi-condition: nested-loop cross product.
			for _, row := range rows {
				for _, r := range t.Rows {
					nr := make([]model.Value, sc.width)
					copy(nr, row)
					copy(nr[off:], r)
					next = append(next, nr)
				}
			}
		}
		rows = next
		done[alias] = true
	}

	// Residual filter.
	var filtered [][]model.Value
	for _, row := range rows {
		keep := true
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			v, err := db.evalExpr(c, sc, row)
			if err != nil {
				return nil, err
			}
			b, ok := v.AsBool()
			if !ok || !b {
				keep = false
				break
			}
		}
		if keep {
			filtered = append(filtered, row)
		}
	}
	return filtered, nil
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func onlyAlias(a map[string]bool, alias string) bool {
	return len(a) == 1 && a[alias]
}

func (db *DB) evalSelect(s *selectStmt) (*Table, error) {
	return db.evalSelectExpanding(s, make(map[string]bool))
}

func (db *DB) evalSelectExpanding(s *selectStmt, expanding map[string]bool) (*Table, error) {
	if len(s.from) == 0 {
		return nil, fmt.Errorf("sql: SELECT requires a FROM clause")
	}
	sc, err := db.resolveFrom(s.from, expanding)
	if err != nil {
		return nil, err
	}
	if err := db.validateSelect(s, sc); err != nil {
		return nil, err
	}
	rows, err := db.joinFrom(s, sc)
	if err != nil {
		return nil, err
	}

	// Expand SELECT *.
	var exprs []selectExpr
	for _, se := range s.exprs {
		if !se.star {
			exprs = append(exprs, se)
			continue
		}
		for i, t := range sc.tables {
			for _, c := range t.Cols {
				exprs = append(exprs, selectExpr{e: &colRef{qual: sc.aliases[i], name: c.Name}, alias: c.Name})
			}
		}
	}

	out := &Table{}
	for i, se := range exprs {
		name := se.alias
		if name == "" {
			if cr, ok := se.e.(*colRef); ok {
				name = cr.name
			} else {
				name = fmt.Sprintf("col%d", i+1)
			}
		}
		out.Cols = append(out.Cols, Column{Name: name, Type: db.inferType(se.e, sc)})
	}

	grouping := len(s.groupBy) > 0
	for _, se := range exprs {
		if hasAggregate(se.e) {
			grouping = true
		}
	}

	if grouping {
		if err := db.evalGrouped(s, sc, rows, exprs, out); err != nil {
			return nil, err
		}
	} else {
		for _, row := range rows {
			vals := make([]model.Value, len(exprs))
			null := false
			for i, se := range exprs {
				v, err := db.evalExpr(se.e, sc, row)
				if err != nil {
					return nil, err
				}
				if !v.IsValid() {
					null = true
					break
				}
				vals[i] = v
			}
			if null {
				continue
			}
			out.Rows = append(out.Rows, vals)
		}
	}

	if len(s.orderBy) > 0 {
		if err := db.orderRows(s, sc, out, exprs); err != nil {
			return nil, err
		}
	} else {
		out.SortRows()
	}
	return out, nil
}

func (db *DB) evalGrouped(s *selectStmt, sc *scope, rows [][]model.Value, exprs []selectExpr, out *Table) error {
	type group struct {
		rep  []model.Value // representative row for group-expr evaluation
		rows [][]model.Value
	}
	groups := make(map[string]*group)
	var order []string
	keyBuf := make([]model.Value, len(s.groupBy))
	for _, row := range rows {
		null := false
		for i, ge := range s.groupBy {
			v, err := db.evalExpr(ge, sc, row)
			if err != nil {
				return err
			}
			if !v.IsValid() {
				null = true
				break
			}
			keyBuf[i] = v
		}
		if null {
			continue
		}
		key := model.EncodeKey(keyBuf)
		g, ok := groups[key]
		if !ok {
			g = &group{rep: row}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}
	// A global aggregate over zero rows yields no row, matching the cube
	// semantics (the tuple exists only if the bag is non-empty).
	for _, key := range order {
		g := groups[key]
		vals := make([]model.Value, len(exprs))
		null := false
		for i, se := range exprs {
			v, err := db.evalAggExpr(se.e, sc, g.rep, g.rows)
			if err != nil {
				return err
			}
			if !v.IsValid() {
				null = true
				break
			}
			vals[i] = v
		}
		if null {
			continue
		}
		out.Rows = append(out.Rows, vals)
	}
	return nil
}

// evalAggExpr evaluates a select expression in a grouped context:
// aggregate calls consume the group's rows, everything else is evaluated
// on the representative row.
func (db *DB) evalAggExpr(e expr, sc *scope, rep []model.Value, rows [][]model.Value) (model.Value, error) {
	switch e := e.(type) {
	case *callExpr:
		if ops.IsAggregation(e.name) || e.name == "count" {
			agg, err := ops.NewAggregator(e.name)
			if err != nil {
				return model.Value{}, err
			}
			n := 0
			for _, row := range rows {
				if e.star {
					agg.Add(0)
					n++
					continue
				}
				if len(e.args) != 1 {
					return model.Value{}, fmt.Errorf("sql: aggregate %s takes one argument", e.name)
				}
				v, err := db.evalExpr(e.args[0], sc, row)
				if err != nil {
					return model.Value{}, err
				}
				if !v.IsValid() {
					continue // nulls are not part of the bag
				}
				f, ok := v.AsNumber()
				if !ok {
					return model.Value{}, fmt.Errorf("sql: aggregate %s over non-numeric value %v", e.name, v)
				}
				agg.Add(f)
				n++
			}
			if n == 0 {
				return model.Value{}, nil
			}
			return model.Num(agg.Result()), nil
		}
		// Scalar call over aggregated arguments.
		args := make([]expr, len(e.args))
		copy(args, e.args)
		vals := make([]model.Value, len(args))
		for i, a := range args {
			v, err := db.evalAggExpr(a, sc, rep, rows)
			if err != nil || !v.IsValid() {
				return v, err
			}
			vals[i] = v
		}
		return db.applyScalarCall(e.name, vals)
	case *binExpr:
		l, err := db.evalAggExpr(e.l, sc, rep, rows)
		if err != nil {
			return l, err
		}
		if e.op == "and" || e.op == "or" {
			// Same Kleene rule as evalExpr: a dominant known operand
			// decides even when the other side is NULL.
			r, err := db.evalAggExpr(e.r, sc, rep, rows)
			if err != nil {
				return r, err
			}
			return kleeneLogic(e.op, l, r)
		}
		r, err := db.evalAggExpr(e.r, sc, rep, rows)
		if err != nil {
			return r, err
		}
		return applyBinary(e.op, l, r)
	case *unaryExpr:
		x, err := db.evalAggExpr(e.x, sc, rep, rows)
		if err != nil {
			return x, err
		}
		return applyUnary(e.op, x)
	default:
		return db.evalExpr(e, sc, rep)
	}
}

// validateSelect statically checks column references and aggregate
// placement, so malformed queries fail even over empty tables.
func (db *DB) validateSelect(s *selectStmt, sc *scope) error {
	for _, se := range s.exprs {
		if se.star {
			continue
		}
		if err := validateExpr(se.e, sc); err != nil {
			return err
		}
	}
	if s.where != nil {
		if hasAggregate(s.where) {
			return fmt.Errorf("sql: aggregates are not allowed in WHERE")
		}
		if err := validateExpr(s.where, sc); err != nil {
			return err
		}
	}
	for _, ge := range s.groupBy {
		if hasAggregate(ge) {
			return fmt.Errorf("sql: aggregates are not allowed in GROUP BY")
		}
		if err := validateExpr(ge, sc); err != nil {
			return err
		}
	}
	return nil
}

func validateExpr(e expr, sc *scope) error {
	switch e := e.(type) {
	case *colRef:
		_, _, err := sc.resolve(e.qual, e.name)
		return err
	case *binExpr:
		if err := validateExpr(e.l, sc); err != nil {
			return err
		}
		return validateExpr(e.r, sc)
	case *unaryExpr:
		return validateExpr(e.x, sc)
	case *callExpr:
		for _, a := range e.args {
			if err := validateExpr(a, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

func hasAggregate(e expr) bool {
	switch e := e.(type) {
	case *callExpr:
		if ops.IsAggregation(e.name) || e.name == "count" {
			return true
		}
		for _, a := range e.args {
			if hasAggregate(a) {
				return true
			}
		}
	case *binExpr:
		return hasAggregate(e.l) || hasAggregate(e.r)
	case *unaryExpr:
		return hasAggregate(e.x)
	}
	return false
}

func (db *DB) orderRows(s *selectStmt, sc *scope, out *Table, exprs []selectExpr) error {
	// ORDER BY expressions must reference output columns by name.
	idx := make([]int, len(s.orderBy))
	for i, oe := range s.orderBy {
		cr, ok := oe.(*colRef)
		if !ok {
			return fmt.Errorf("sql: ORDER BY supports output column names only")
		}
		j := out.ColIndex(cr.name)
		if j < 0 {
			return fmt.Errorf("sql: ORDER BY column %s not in output", cr.name)
		}
		idx[i] = j
	}
	sort.SliceStable(out.Rows, func(a, b int) bool {
		for _, j := range idx {
			if c := out.Rows[a][j].Compare(out.Rows[b][j]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	return nil
}

// evalExpr evaluates a scalar expression over a row. An invalid Value with
// nil error is SQL NULL: it arises from undefined operator points and
// propagates upward; rows with NULL outputs are dropped, matching the cube
// semantics of partial functions.
func (db *DB) evalExpr(e expr, sc *scope, row []model.Value) (model.Value, error) {
	switch e := e.(type) {
	case *lit:
		return e.v, nil
	case *colRef:
		off, _, err := sc.resolve(e.qual, e.name)
		if err != nil {
			return model.Value{}, err
		}
		return row[off], nil
	case *unaryExpr:
		x, err := db.evalExpr(e.x, sc, row)
		if err != nil {
			return x, err
		}
		return applyUnary(e.op, x)
	case *binExpr:
		l, err := db.evalExpr(e.l, sc, row)
		if err != nil {
			return l, err
		}
		if e.op == "and" || e.op == "or" {
			// No NULL short-circuit: FALSE AND NULL is FALSE and
			// TRUE OR NULL is TRUE, so the right side must be seen.
			r, err := db.evalExpr(e.r, sc, row)
			if err != nil {
				return r, err
			}
			return kleeneLogic(e.op, l, r)
		}
		r, err := db.evalExpr(e.r, sc, row)
		if err != nil {
			return r, err
		}
		// applyBinary owns NULL propagation (comparisons and arithmetic
		// are NULL-strict), so NULL operands flow through unguarded.
		return applyBinary(e.op, l, r)
	case *callExpr:
		if ops.IsAggregation(e.name) || e.name == "count" {
			return model.Value{}, fmt.Errorf("sql: aggregate %s outside grouped context", e.name)
		}
		vals := make([]model.Value, len(e.args))
		for i, a := range e.args {
			v, err := db.evalExpr(a, sc, row)
			if err != nil || !v.IsValid() {
				return v, err
			}
			vals[i] = v
		}
		return db.applyScalarCall(e.name, vals)
	default:
		return model.Value{}, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func (db *DB) applyScalarCall(name string, vals []model.Value) (model.Value, error) {
	// Period functions.
	switch name {
	case "quarter", "month", "year":
		if len(vals) != 1 {
			return model.Value{}, fmt.Errorf("sql: %s takes one argument", name)
		}
		f, err := ops.Dimension(name)
		if err != nil {
			return model.Value{}, err
		}
		v, err := f.Apply(vals[0])
		if err != nil {
			return model.Value{}, err
		}
		return v, nil
	case "shift":
		if len(vals) != 2 {
			return model.Value{}, fmt.Errorf("sql: shift takes (period, steps)")
		}
		n, ok := vals[1].AsInt()
		if !ok {
			return model.Value{}, fmt.Errorf("sql: shift steps must be an integer")
		}
		return ops.ShiftValue(vals[0], n)
	}
	// Numeric scalar functions from the operator library.
	f, err := ops.Scalar(name)
	if err != nil {
		return model.Value{}, fmt.Errorf("sql: unknown function %s", name)
	}
	args := make([]float64, len(vals))
	for i, v := range vals {
		x, ok := v.AsNumber()
		if !ok {
			return model.Value{}, fmt.Errorf("sql: %s over non-numeric value %v", name, v)
		}
		args[i] = x
	}
	out, err := f(args...)
	if err != nil {
		if ops.ErrUndefined(err) {
			return model.Value{}, nil // NULL
		}
		return model.Value{}, err
	}
	return model.Num(out), nil
}

// kleeneLogic is SQL's three-valued and/or (Kleene's strong logic): NULL
// means "unknown", yet a dominant known operand still decides — FALSE
// AND NULL is FALSE, TRUE OR NULL is TRUE; only genuinely undecidable
// combinations stay NULL. A NULL result then drops the row like every
// other NULL predicate.
func kleeneLogic(op string, l, r model.Value) (model.Value, error) {
	lb, lok := l.AsBool()
	rb, rok := r.AsBool()
	if (l.IsValid() && !lok) || (r.IsValid() && !rok) {
		return model.Value{}, fmt.Errorf("sql: boolean operator over non-booleans")
	}
	switch op {
	case "and":
		if (lok && !lb) || (rok && !rb) {
			return model.Bool(false), nil
		}
		if lok && rok {
			return model.Bool(true), nil
		}
	case "or":
		if (lok && lb) || (rok && rb) {
			return model.Bool(true), nil
		}
		if lok && rok {
			return model.Bool(false), nil
		}
	}
	return model.Value{}, nil // NULL: unknown
}

func applyUnary(op string, x model.Value) (model.Value, error) {
	// NULL-strict under Kleene 3VL: the negation (numeric or logical) of
	// an unknown value is unknown, never an error.
	if !x.IsValid() {
		return model.Value{}, nil
	}
	switch op {
	case "-":
		f, ok := x.AsNumber()
		if !ok {
			return model.Value{}, fmt.Errorf("sql: unary minus over non-numeric %v", x)
		}
		return model.Num(-f), nil
	case "not":
		b, ok := x.AsBool()
		if !ok {
			return model.Value{}, fmt.Errorf("sql: NOT over non-boolean %v", x)
		}
		return model.Bool(!b), nil
	default:
		return model.Value{}, fmt.Errorf("sql: unknown unary operator %s", op)
	}
}

func applyBinary(op string, l, r model.Value) (model.Value, error) {
	if op == "and" || op == "or" {
		// Kleene and/or must see NULL operands: a dominant known side
		// still decides (FALSE AND NULL = FALSE, TRUE OR NULL = TRUE).
		return kleeneLogic(op, l, r)
	}
	// Every other operator is NULL-strict: comparing against or computing
	// with an unknown value yields unknown, so NULL = x is NULL (not
	// FALSE) and NULL + x is NULL (not an error). WHERE then filters the
	// NULL predicate and SELECT drops the NULL output row.
	if !l.IsValid() || !r.IsValid() {
		return model.Value{}, nil
	}
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		l, r = coercePair(l, r)
		c := l.Compare(r)
		eq := l.Equal(r)
		var res bool
		switch op {
		case "=":
			res = eq
		case "<>":
			res = !eq
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return model.Bool(res), nil
	case "+", "-":
		// Period arithmetic: Q - 1 shifts a period, as in the paper's
		// generated join condition G1.Q = G2.Q - 1. Addition commutes, so
		// 1 + Q is the same shift; 1 - Q has no period meaning and is
		// rejected explicitly rather than falling through to the numeric
		// path's confusing "non-numeric values" error.
		if p, ok := l.AsPeriod(); ok {
			n, ok := r.AsInt()
			if !ok {
				return model.Value{}, fmt.Errorf("sql: period arithmetic needs an integer offset")
			}
			if op == "-" {
				n = -n
			}
			return model.Per(p.Shift(n)), nil
		}
		if p, ok := r.AsPeriod(); ok {
			if op == "-" {
				return model.Value{}, fmt.Errorf("sql: cannot subtract a period from a number")
			}
			n, ok := l.AsInt()
			if !ok {
				return model.Value{}, fmt.Errorf("sql: period arithmetic needs an integer offset")
			}
			return model.Per(p.Shift(n)), nil
		}
		fallthrough
	case "*", "/":
		lf, ok1 := l.AsNumber()
		rf, ok2 := r.AsNumber()
		if !ok1 || !ok2 {
			return model.Value{}, fmt.Errorf("sql: arithmetic over non-numeric values %v, %v", l, r)
		}
		var name string
		switch op {
		case "+":
			name = "add"
		case "-":
			name = "sub"
		case "*":
			name = "mul"
		case "/":
			name = "div"
		}
		f, _ := ops.Scalar(name)
		out, err := f(lf, rf)
		if err != nil {
			if ops.ErrUndefined(err) {
				return model.Value{}, nil // NULL
			}
			return model.Value{}, err
		}
		return model.Num(out), nil
	default:
		return model.Value{}, fmt.Errorf("sql: unknown binary operator %s", op)
	}
}

// coercePair aligns a string literal with a period operand so that
// comparisons like q = '2001-Q1' work.
func coercePair(l, r model.Value) (model.Value, model.Value) {
	if _, ok := l.AsPeriod(); ok {
		if s, isStr := r.AsString(); isStr {
			if p, err := model.ParsePeriod(s); err == nil {
				return l, model.Per(p)
			}
		}
	}
	if _, ok := r.AsPeriod(); ok {
		if s, isStr := l.AsString(); isStr {
			if p, err := model.ParsePeriod(s); err == nil {
				return model.Per(p), r
			}
		}
	}
	return l, r
}

func (db *DB) inferType(e expr, sc *scope) ColType {
	switch e := e.(type) {
	case *lit:
		switch e.v.Kind() {
		case model.KindString:
			return ColType{Kind: KVarchar}
		case model.KindInt:
			return ColType{Kind: KInteger}
		default:
			return ColType{Kind: KDouble}
		}
	case *colRef:
		if _, t, err := sc.resolve(e.qual, e.name); err == nil {
			return t
		}
		return ColType{Kind: KDouble}
	case *binExpr:
		lt := db.inferType(e.l, sc)
		if lt.Kind == KPeriod && (e.op == "+" || e.op == "-") {
			return lt
		}
		// Commutative period shift: 1 + Q is a period too.
		if e.op == "+" {
			if rt := db.inferType(e.r, sc); rt.Kind == KPeriod {
				return rt
			}
		}
		return ColType{Kind: KDouble}
	case *callExpr:
		switch e.name {
		case "quarter":
			return ColType{Kind: KPeriod, Freq: model.Quarterly}
		case "month":
			return ColType{Kind: KPeriod, Freq: model.Monthly}
		case "year":
			return ColType{Kind: KPeriod, Freq: model.Annual}
		case "shift":
			if len(e.args) > 0 {
				return db.inferType(e.args[0], sc)
			}
		}
		return ColType{Kind: KDouble}
	default:
		return ColType{Kind: KDouble}
	}
}

func (db *DB) evalInsertValues(s *insertValuesStmt) error {
	t, ok := db.Table(s.table)
	if !ok {
		return fmt.Errorf("sql: unknown table %s", s.table)
	}
	perm, err := insertPermutation(t, s.cols)
	if err != nil {
		return err
	}
	sc := newScope()
	for _, rowExprs := range s.rows {
		if len(rowExprs) != len(perm) {
			return fmt.Errorf("sql: INSERT row has %d values, want %d", len(rowExprs), len(perm))
		}
		row := make([]model.Value, len(t.Cols))
		for i, e := range rowExprs {
			v, err := db.evalExpr(e, sc, nil)
			if err != nil {
				return err
			}
			cv, err := coerceToColumn(v, t.Cols[perm[i]].Type)
			if err != nil {
				return fmt.Errorf("sql: column %s: %w", t.Cols[perm[i]].Name, err)
			}
			row[perm[i]] = cv
		}
		db.mu.Lock()
		t.Rows = append(t.Rows, row)
		db.mu.Unlock()
	}
	return nil
}

func (db *DB) evalInsertSelect(s *insertSelectStmt) error {
	t, ok := db.Table(s.table)
	if !ok {
		return fmt.Errorf("sql: unknown table %s", s.table)
	}
	perm, err := insertPermutation(t, s.cols)
	if err != nil {
		return err
	}
	res, err := db.evalSelect(s.sel)
	if err != nil {
		return err
	}
	if len(res.Cols) != len(perm) {
		return fmt.Errorf("sql: INSERT SELECT arity mismatch: %d vs %d", len(res.Cols), len(perm))
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range res.Rows {
		row := make([]model.Value, len(t.Cols))
		for i, v := range r {
			cv, err := coerceToColumn(v, t.Cols[perm[i]].Type)
			if err != nil {
				return fmt.Errorf("sql: column %s: %w", t.Cols[perm[i]].Name, err)
			}
			row[perm[i]] = cv
		}
		t.Rows = append(t.Rows, row)
	}
	return nil
}

func (db *DB) evalDelete(s *deleteStmt) error {
	t, ok := db.Table(s.table)
	if !ok {
		return fmt.Errorf("sql: unknown table %s", s.table)
	}
	if s.where == nil {
		db.mu.Lock()
		t.Rows = nil
		db.mu.Unlock()
		return nil
	}
	sc := newScope()
	sc.add(t.Name, t)
	var kept [][]model.Value
	for _, row := range t.Rows {
		v, err := db.evalExpr(s.where, sc, row)
		if err != nil {
			return err
		}
		if b, ok := v.AsBool(); ok && b {
			continue
		}
		kept = append(kept, row)
	}
	db.mu.Lock()
	t.Rows = kept
	db.mu.Unlock()
	return nil
}

func insertPermutation(t *Table, cols []string) ([]int, error) {
	if len(cols) == 0 {
		perm := make([]int, len(t.Cols))
		for i := range perm {
			perm[i] = i
		}
		return perm, nil
	}
	perm := make([]int, len(cols))
	for i, c := range cols {
		j := t.ColIndex(strings.ToLower(c))
		if j < 0 {
			return nil, fmt.Errorf("sql: table %s has no column %s", t.Name, c)
		}
		perm[i] = j
	}
	return perm, nil
}

// coerceToColumn converts an inserted value to the column type.
func coerceToColumn(v model.Value, t ColType) (model.Value, error) {
	if !v.IsValid() {
		return model.Value{}, fmt.Errorf("cannot insert NULL")
	}
	switch t.Kind {
	case KDouble:
		f, ok := v.AsNumber()
		if !ok {
			return model.Value{}, fmt.Errorf("cannot coerce %v to DOUBLE", v)
		}
		return model.Num(f), nil
	case KInteger:
		i, ok := v.AsInt()
		if !ok {
			return model.Value{}, fmt.Errorf("cannot coerce %v to INTEGER", v)
		}
		return model.Int(i), nil
	case KVarchar:
		if s, ok := v.AsString(); ok {
			return model.Str(s), nil
		}
		return model.Str(v.String()), nil
	case KPeriod:
		if p, ok := v.AsPeriod(); ok {
			if t.Freq != model.FreqInvalid && p.Freq != t.Freq {
				return model.Value{}, fmt.Errorf("period %v has frequency %s, column wants %s", v, p.Freq, t.Freq)
			}
			return v, nil
		}
		if s, ok := v.AsString(); ok {
			p, err := model.ParsePeriod(s)
			if err != nil {
				return model.Value{}, err
			}
			if t.Freq != model.FreqInvalid && p.Freq != t.Freq {
				return model.Value{}, fmt.Errorf("period %q has frequency %s, column wants %s", s, p.Freq, t.Freq)
			}
			return model.Per(p), nil
		}
		return model.Value{}, fmt.Errorf("cannot coerce %v to %s", v, t)
	default:
		return model.Value{}, fmt.Errorf("unknown column type")
	}
}
