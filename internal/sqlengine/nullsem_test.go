package sqlengine

import (
	"testing"

	"exlengine/internal/model"
)

// nullDB builds a one-row table so scalar expressions can be evaluated
// through the full Query path. SELECT outputs that evaluate to NULL drop
// the row, so "expression is NULL" is observed as zero result rows with
// no error.
func nullDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE ONE (a DOUBLE);
INSERT INTO ONE(a) VALUES (7);
`)
	return db
}

// queryRows runs a SELECT and returns the number of result rows, failing
// the test on any error.
func queryRows(t *testing.T, db *DB, sql string) int {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return len(res.Rows)
}

// TestNotNullIsNull: NOT NULL must be NULL under Kleene 3VL, not the
// historical "NOT over non-boolean" error.
func TestNotNullIsNull(t *testing.T) {
	v, err := applyUnary("not", model.Value{})
	if err != nil {
		t.Fatalf("applyUnary(not, NULL): unexpected error %v", err)
	}
	if v.IsValid() {
		t.Fatalf("applyUnary(not, NULL) = %v, want NULL", v)
	}

	db := nullDB(t)
	// NULL predicate in WHERE filters the row; no error.
	if n := queryRows(t, db, `SELECT a FROM ONE WHERE NOT NULL`); n != 0 {
		t.Fatalf("WHERE NOT NULL kept %d rows, want 0", n)
	}
	// NOT over a NULL comparison is still NULL.
	if n := queryRows(t, db, `SELECT a FROM ONE WHERE NOT (a = NULL)`); n != 0 {
		t.Fatalf("WHERE NOT (a = NULL) kept %d rows, want 0", n)
	}
}

// TestUnaryMinusNullIsNull: -NULL propagates NULL rather than erroring.
func TestUnaryMinusNullIsNull(t *testing.T) {
	v, err := applyUnary("-", model.Value{})
	if err != nil {
		t.Fatalf("applyUnary(-, NULL): unexpected error %v", err)
	}
	if v.IsValid() {
		t.Fatalf("applyUnary(-, NULL) = %v, want NULL", v)
	}
	db := nullDB(t)
	if n := queryRows(t, db, `SELECT a, -NULL AS x FROM ONE`); n != 0 {
		t.Fatalf("SELECT -NULL kept %d rows, want 0 (NULL output drops the row)", n)
	}
}

// TestComparisonsWithNullAreNull: all six comparators are NULL-strict —
// NULL = x is NULL (unknown), never TRUE or FALSE.
func TestComparisonsWithNullAreNull(t *testing.T) {
	null := model.Value{}
	seven := model.Num(7)
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		for _, pair := range [][2]model.Value{{null, seven}, {seven, null}, {null, null}} {
			v, err := applyBinary(op, pair[0], pair[1])
			if err != nil {
				t.Fatalf("applyBinary(%s, %v, %v): unexpected error %v", op, pair[0], pair[1], err)
			}
			if v.IsValid() {
				t.Fatalf("applyBinary(%s, %v, %v) = %v, want NULL", op, pair[0], pair[1], v)
			}
		}
	}

	db := nullDB(t)
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		// The NULL comparison filters the row: non-TRUE means filtered.
		if n := queryRows(t, db, `SELECT a FROM ONE WHERE a `+op+` NULL`); n != 0 {
			t.Fatalf("WHERE a %s NULL kept %d rows, want 0", op, n)
		}
		// NULL = NULL is also unknown, not TRUE.
		if n := queryRows(t, db, `SELECT a FROM ONE WHERE NULL `+op+` NULL`); n != 0 {
			t.Fatalf("WHERE NULL %s NULL kept %d rows, want 0", op, n)
		}
	}
	// A dominant known operand still decides through Kleene or/and.
	if n := queryRows(t, db, `SELECT a FROM ONE WHERE a = NULL OR a = 7`); n != 1 {
		t.Fatalf("WHERE a = NULL OR a = 7 kept %d rows, want 1", n)
	}
	if n := queryRows(t, db, `SELECT a FROM ONE WHERE a = NULL AND a = 7`); n != 0 {
		t.Fatalf("WHERE a = NULL AND a = 7 kept %d rows, want 0", n)
	}
}

// TestArithmeticWithNullIsNull: + - * / over a NULL operand yields NULL,
// aligning the SQL backend with frame NA and ETL dropped-row semantics.
func TestArithmeticWithNullIsNull(t *testing.T) {
	null := model.Value{}
	seven := model.Num(7)
	for _, op := range []string{"+", "-", "*", "/"} {
		for _, pair := range [][2]model.Value{{null, seven}, {seven, null}, {null, null}} {
			v, err := applyBinary(op, pair[0], pair[1])
			if err != nil {
				t.Fatalf("applyBinary(%s, %v, %v): unexpected error %v", op, pair[0], pair[1], err)
			}
			if v.IsValid() {
				t.Fatalf("applyBinary(%s, %v, %v) = %v, want NULL", op, pair[0], pair[1], v)
			}
		}
	}

	db := nullDB(t)
	for _, op := range []string{"+", "-", "*", "/"} {
		if n := queryRows(t, db, `SELECT a, a `+op+` NULL AS x FROM ONE`); n != 0 {
			t.Fatalf("SELECT a %s NULL kept %d rows, want 0 (NULL output drops the row)", op, n)
		}
	}
	// NULL inside a scalar function call also propagates.
	if n := queryRows(t, db, `SELECT a, abs(NULL) AS x FROM ONE`); n != 0 {
		t.Fatalf("SELECT abs(NULL) kept %d rows, want 0", n)
	}
	// Aggregates skip NULLs: sum over the one non-NULL value is still 7.
	res := mustQuery(t, db, `SELECT sum(a + NULL - NULL) AS s FROM ONE GROUP BY a`)
	if len(res.Rows) != 0 {
		t.Fatalf("sum over all-NULL bag should yield no row, got %d rows", len(res.Rows))
	}
}

// TestJoinKeysNeverMatchNull: hash-join equality is not Kleene TRUE for
// NULL = NULL — a NULL key matches nothing on either side. Base tables
// reject NULL inserts, so the tables are assembled directly.
func TestJoinKeysNeverMatchNull(t *testing.T) {
	db := NewDB()
	strCol := ColType{Kind: KVarchar}
	numCol := ColType{Kind: KDouble}
	db.tables["l"] = &Table{
		Name: "l",
		Cols: []Column{{Name: "k", Type: strCol}, {Name: "x", Type: numCol}},
		Rows: [][]model.Value{
			{model.Str("a"), model.Num(1)},
			{model.Value{}, model.Num(2)}, // NULL key
		},
	}
	db.tables["r"] = &Table{
		Name: "r",
		Cols: []Column{{Name: "k", Type: strCol}, {Name: "y", Type: numCol}},
		Rows: [][]model.Value{
			{model.Str("a"), model.Num(10)},
			{model.Value{}, model.Num(20)}, // NULL key
		},
	}
	res := mustQuery(t, db, `SELECT l.x AS x, r.y AS y FROM l, r WHERE l.k = r.k`)
	if len(res.Rows) != 1 {
		t.Fatalf("join matched %d rows, want 1 (NULL keys must not match)", len(res.Rows))
	}
	if x, _ := res.Rows[0][0].AsNumber(); x != 1 {
		t.Fatalf("join kept wrong row: x = %v, want 1", res.Rows[0][0])
	}
}

// TestNullLiteralParses pins the parser-level NULL keyword: it must be a
// literal, not a column reference.
func TestNullLiteralParses(t *testing.T) {
	db := nullDB(t)
	if _, err := db.Query(`SELECT a FROM ONE WHERE NULL`); err != nil {
		t.Fatalf("NULL literal did not parse: %v", err)
	}
}
