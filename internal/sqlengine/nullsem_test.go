package sqlengine

import (
	"testing"

	"exlengine/internal/model"
)

// nullDB builds a one-row table so scalar expressions can be evaluated
// through the full Query path. SELECT outputs that evaluate to NULL drop
// the row, so "expression is NULL" is observed as zero result rows with
// no error.
func nullDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `
CREATE TABLE ONE (a DOUBLE);
INSERT INTO ONE(a) VALUES (7);
`)
	return db
}

// queryRows runs a SELECT and returns the number of result rows, failing
// the test on any error.
func queryRows(t *testing.T, db *DB, sql string) int {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return len(res.Rows)
}

// TestNotNullIsNull: NOT NULL must be NULL under Kleene 3VL, not the
// historical "NOT over non-boolean" error.
func TestNotNullIsNull(t *testing.T) {
	v, err := applyUnary("not", model.Value{})
	if err != nil {
		t.Fatalf("applyUnary(not, NULL): unexpected error %v", err)
	}
	if v.IsValid() {
		t.Fatalf("applyUnary(not, NULL) = %v, want NULL", v)
	}

	db := nullDB(t)
	// NULL predicate in WHERE filters the row; no error.
	if n := queryRows(t, db, `SELECT a FROM ONE WHERE NOT NULL`); n != 0 {
		t.Fatalf("WHERE NOT NULL kept %d rows, want 0", n)
	}
	// NOT over a NULL comparison is still NULL.
	if n := queryRows(t, db, `SELECT a FROM ONE WHERE NOT (a = NULL)`); n != 0 {
		t.Fatalf("WHERE NOT (a = NULL) kept %d rows, want 0", n)
	}
}

// TestUnaryMinusNullIsNull: -NULL propagates NULL rather than erroring.
func TestUnaryMinusNullIsNull(t *testing.T) {
	v, err := applyUnary("-", model.Value{})
	if err != nil {
		t.Fatalf("applyUnary(-, NULL): unexpected error %v", err)
	}
	if v.IsValid() {
		t.Fatalf("applyUnary(-, NULL) = %v, want NULL", v)
	}
	db := nullDB(t)
	if n := queryRows(t, db, `SELECT a, -NULL AS x FROM ONE`); n != 0 {
		t.Fatalf("SELECT -NULL kept %d rows, want 0 (NULL output drops the row)", n)
	}
}

// TestComparisonsWithNullAreNull: all six comparators are NULL-strict —
// NULL = x is NULL (unknown), never TRUE or FALSE.
func TestComparisonsWithNullAreNull(t *testing.T) {
	null := model.Value{}
	seven := model.Num(7)
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		for _, pair := range [][2]model.Value{{null, seven}, {seven, null}, {null, null}} {
			v, err := applyBinary(op, pair[0], pair[1])
			if err != nil {
				t.Fatalf("applyBinary(%s, %v, %v): unexpected error %v", op, pair[0], pair[1], err)
			}
			if v.IsValid() {
				t.Fatalf("applyBinary(%s, %v, %v) = %v, want NULL", op, pair[0], pair[1], v)
			}
		}
	}

	db := nullDB(t)
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		// The NULL comparison filters the row: non-TRUE means filtered.
		if n := queryRows(t, db, `SELECT a FROM ONE WHERE a `+op+` NULL`); n != 0 {
			t.Fatalf("WHERE a %s NULL kept %d rows, want 0", op, n)
		}
		// NULL = NULL is also unknown, not TRUE.
		if n := queryRows(t, db, `SELECT a FROM ONE WHERE NULL `+op+` NULL`); n != 0 {
			t.Fatalf("WHERE NULL %s NULL kept %d rows, want 0", op, n)
		}
	}
	// A dominant known operand still decides through Kleene or/and.
	if n := queryRows(t, db, `SELECT a FROM ONE WHERE a = NULL OR a = 7`); n != 1 {
		t.Fatalf("WHERE a = NULL OR a = 7 kept %d rows, want 1", n)
	}
	if n := queryRows(t, db, `SELECT a FROM ONE WHERE a = NULL AND a = 7`); n != 0 {
		t.Fatalf("WHERE a = NULL AND a = 7 kept %d rows, want 0", n)
	}
}

// TestArithmeticWithNullIsNull: + - * / over a NULL operand yields NULL,
// aligning the SQL backend with frame NA and ETL dropped-row semantics.
func TestArithmeticWithNullIsNull(t *testing.T) {
	null := model.Value{}
	seven := model.Num(7)
	for _, op := range []string{"+", "-", "*", "/"} {
		for _, pair := range [][2]model.Value{{null, seven}, {seven, null}, {null, null}} {
			v, err := applyBinary(op, pair[0], pair[1])
			if err != nil {
				t.Fatalf("applyBinary(%s, %v, %v): unexpected error %v", op, pair[0], pair[1], err)
			}
			if v.IsValid() {
				t.Fatalf("applyBinary(%s, %v, %v) = %v, want NULL", op, pair[0], pair[1], v)
			}
		}
	}

	db := nullDB(t)
	for _, op := range []string{"+", "-", "*", "/"} {
		if n := queryRows(t, db, `SELECT a, a `+op+` NULL AS x FROM ONE`); n != 0 {
			t.Fatalf("SELECT a %s NULL kept %d rows, want 0 (NULL output drops the row)", op, n)
		}
	}
	// NULL inside a scalar function call also propagates.
	if n := queryRows(t, db, `SELECT a, abs(NULL) AS x FROM ONE`); n != 0 {
		t.Fatalf("SELECT abs(NULL) kept %d rows, want 0", n)
	}
	// Aggregates skip NULLs: sum over the one non-NULL value is still 7.
	res := mustQuery(t, db, `SELECT sum(a + NULL - NULL) AS s FROM ONE GROUP BY a`)
	if len(res.Rows) != 0 {
		t.Fatalf("sum over all-NULL bag should yield no row, got %d rows", len(res.Rows))
	}
}

// TestJoinKeysNeverMatchNull: hash-join equality is not Kleene TRUE for
// NULL = NULL — a NULL key matches nothing on either side. Base tables
// reject NULL inserts, so the tables are assembled directly.
func TestJoinKeysNeverMatchNull(t *testing.T) {
	db := NewDB()
	strCol := ColType{Kind: KVarchar}
	numCol := ColType{Kind: KDouble}
	db.tables["l"] = &Table{
		Name: "l",
		Cols: []Column{{Name: "k", Type: strCol}, {Name: "x", Type: numCol}},
		Rows: [][]model.Value{
			{model.Str("a"), model.Num(1)},
			{model.Value{}, model.Num(2)}, // NULL key
		},
	}
	db.tables["r"] = &Table{
		Name: "r",
		Cols: []Column{{Name: "k", Type: strCol}, {Name: "y", Type: numCol}},
		Rows: [][]model.Value{
			{model.Str("a"), model.Num(10)},
			{model.Value{}, model.Num(20)}, // NULL key
		},
	}
	res := mustQuery(t, db, `SELECT l.x AS x, r.y AS y FROM l, r WHERE l.k = r.k`)
	if len(res.Rows) != 1 {
		t.Fatalf("join matched %d rows, want 1 (NULL keys must not match)", len(res.Rows))
	}
	if x, _ := res.Rows[0][0].AsNumber(); x != 1 {
		t.Fatalf("join kept wrong row: x = %v, want 1", res.Rows[0][0])
	}
}

// TestNullLiteralParses pins the parser-level NULL keyword: it must be a
// literal, not a column reference.
func TestNullLiteralParses(t *testing.T) {
	db := nullDB(t)
	if _, err := db.Query(`SELECT a FROM ONE WHERE NULL`); err != nil {
		t.Fatalf("NULL literal did not parse: %v", err)
	}
}

// forBothExecs runs a subtest under the vectorized and the legacy
// executor, so semantics pinned here are pinned for both.
func forBothExecs(t *testing.T, f func(t *testing.T, mode ExecMode)) {
	t.Helper()
	for _, m := range []struct {
		name string
		mode ExecMode
	}{{"vector", ExecVector}, {"legacy", ExecLegacy}} {
		t.Run(m.name, func(t *testing.T) { f(t, m.mode) })
	}
}

// TestAggregatesOverEmptyInput pins the empty-bag rule for global
// aggregates: SUM/AVG/MIN/MAX have no value over zero rows, so the NULL
// output drops the row; COUNT answers 0 and the row survives. With a
// GROUP BY there are no groups at all, so even COUNT yields no row —
// which is exactly the chase's behavior, where a group exists only if
// some defined point created it.
func TestAggregatesOverEmptyInput(t *testing.T) {
	forBothExecs(t, func(t *testing.T, mode ExecMode) {
		db := NewDB()
		db.SetExecMode(mode)
		mustExec(t, db, `CREATE TABLE E (g VARCHAR, v DOUBLE);`)
		for _, fn := range []string{"sum", "avg", "min", "max"} {
			if n := queryRows(t, db, `SELECT `+fn+`(v) AS s FROM E`); n != 0 {
				t.Fatalf("%s over empty table kept %d rows, want 0", fn, n)
			}
		}
		for _, q := range []string{`SELECT count(*) AS c FROM E`, `SELECT count(v) AS c FROM E`} {
			res := mustQuery(t, db, q)
			if len(res.Rows) != 1 {
				t.Fatalf("%s: got %d rows, want 1", q, len(res.Rows))
			}
			if c, _ := res.Rows[0][0].AsNumber(); c != 0 {
				t.Fatalf("%s = %v, want 0", q, res.Rows[0][0])
			}
		}
		if n := queryRows(t, db, `SELECT g, count(v) AS c FROM E GROUP BY g`); n != 0 {
			t.Fatalf("grouped count over empty table kept %d rows, want 0 (no groups)", n)
		}
	})
}

// TestAggregatesOverAllNullBag pins the all-NULL-bag rule: NULL
// arguments are not part of the bag, so a group whose every argument is
// NULL behaves like an empty bag — SUM/AVG/MIN/MAX yield NULL (row
// dropped), COUNT(v) yields 0, and COUNT(*) still counts the rows.
func TestAggregatesOverAllNullBag(t *testing.T) {
	forBothExecs(t, func(t *testing.T, mode ExecMode) {
		db := NewDB()
		db.SetExecMode(mode)
		// Base tables reject NULL inserts, so assemble the table directly.
		db.tables["an"] = &Table{
			Name: "an",
			Cols: []Column{
				{Name: "g", Type: ColType{Kind: KVarchar}},
				{Name: "v", Type: ColType{Kind: KDouble}},
			},
			Rows: [][]model.Value{
				{model.Str("x"), {}},
				{model.Str("x"), {}},
				{model.Str("y"), model.Num(5)},
			},
		}
		for _, fn := range []string{"sum", "avg", "min", "max"} {
			res := mustQuery(t, db, `SELECT g, `+fn+`(v) AS s FROM an GROUP BY g`)
			if len(res.Rows) != 1 {
				t.Fatalf("%s: got %d rows, want 1 (all-NULL group drops)", fn, len(res.Rows))
			}
			if g, _ := res.Rows[0][0].AsString(); g != "y" {
				t.Fatalf("%s kept group %v, want y", fn, res.Rows[0][0])
			}
		}
		res := mustQuery(t, db, `SELECT g, count(v) AS c FROM an GROUP BY g ORDER BY g`)
		if len(res.Rows) != 2 {
			t.Fatalf("count(v): got %d rows, want 2", len(res.Rows))
		}
		if c, _ := res.Rows[0][1].AsNumber(); c != 0 {
			t.Fatalf("count(v) over all-NULL bag = %v, want 0", res.Rows[0][1])
		}
		if c, _ := res.Rows[1][1].AsNumber(); c != 1 {
			t.Fatalf("count(v) over {5} = %v, want 1", res.Rows[1][1])
		}
		res = mustQuery(t, db, `SELECT g, count(*) AS c FROM an GROUP BY g ORDER BY g`)
		if c, _ := res.Rows[0][1].AsNumber(); c != 2 {
			t.Fatalf("count(*) over all-NULL bag = %v, want 2 (stars count rows)", res.Rows[0][1])
		}
	})
}

// TestIsNullPredicate pins x IS [NOT] NULL: the one operator that maps
// unknown to a known boolean, letting queries observe undefined points
// instead of silently dropping them.
func TestIsNullPredicate(t *testing.T) {
	forBothExecs(t, func(t *testing.T, mode ExecMode) {
		db := NewDB()
		db.SetExecMode(mode)
		db.tables["n"] = &Table{
			Name: "n",
			Cols: []Column{
				{Name: "k", Type: ColType{Kind: KVarchar}},
				{Name: "v", Type: ColType{Kind: KDouble}},
			},
			Rows: [][]model.Value{
				{model.Str("a"), model.Num(1)},
				{model.Str("b"), {}},
			},
		}
		res := mustQuery(t, db, `SELECT k FROM n WHERE v IS NULL`)
		if len(res.Rows) != 1 || res.Rows[0][0].String() != "b" {
			t.Fatalf("IS NULL = %v, want [b]", res.Rows)
		}
		res = mustQuery(t, db, `SELECT k FROM n WHERE v IS NOT NULL`)
		if len(res.Rows) != 1 || res.Rows[0][0].String() != "a" {
			t.Fatalf("IS NOT NULL = %v, want [a]", res.Rows)
		}
		// IS NULL of a computed NULL (undefined point) is TRUE too.
		res = mustQuery(t, db, `SELECT k FROM n WHERE ln(0 - 1) IS NULL`)
		if len(res.Rows) != 2 {
			t.Fatalf("ln(-1) IS NULL kept %d rows, want 2", len(res.Rows))
		}
	})
}
