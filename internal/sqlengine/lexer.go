// Package sqlengine implements an in-memory relational database executing
// the SQL dialect that EXLEngine's translator emits (Section 5.1): CREATE
// TABLE, INSERT … VALUES, INSERT … SELECT with joins derived from repeated
// tgd variables, GROUP BY aggregations, scalar functions on measures,
// period arithmetic on time dimensions (G1.Q = G2.Q - 1), and tabular
// functions in FROM position (SELECT Q, G FROM STL_T(GDP)) for black-box
// operators.
//
// The engine stands in for the commercial DBMS of the paper's deployment:
// it is complete enough that every generated statement parses, plans and
// runs, so the SQL translation is validated end to end rather than only
// printed.
package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tString
	tSymbol // ( ) , ; * = < > <= >= <> + - / .
)

type token struct {
	kind tokKind
	text string // idents lowercased; symbols verbatim
	num  float64
	pos  int // byte offset, for error messages
}

type sqlLexer struct {
	src string
	pos int
}

func lexSQL(src string) ([]token, error) {
	lx := &sqlLexer{src: src}
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}

func (l *sqlLexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		return token{kind: tEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tString, text: b.String(), pos: start}, nil
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
	case unicode.IsLetter(rune(c)) || c == '_' || c == '"':
		if c == '"' { // quoted identifier
			l.pos++
			s := l.pos
			for l.pos < len(l.src) && l.src[l.pos] != '"' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
			}
			id := l.src[s:l.pos]
			l.pos++
			return token{kind: tIdent, text: strings.ToLower(id), pos: start}, nil
		}
		for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tIdent, text: strings.ToLower(l.src[start:l.pos]), pos: start}, nil
	case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if unicode.IsDigit(rune(c)) || c == '.' {
				l.pos++
				continue
			}
			if (c == 'e' || c == 'E') && l.pos > start {
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		text := l.src[start:l.pos]
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, fmt.Errorf("sql: bad number %q at offset %d", text, start)
		}
		return token{kind: tNumber, text: text, num: f, pos: start}, nil
	}
	// Multi-character symbols.
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		return token{kind: tSymbol, text: two, pos: start}, nil
	}
	switch c {
	case '(', ')', ',', ';', '*', '=', '<', '>', '+', '-', '/', '.':
		l.pos++
		return token{kind: tSymbol, text: string(c), pos: start}, nil
	}
	return token{}, fmt.Errorf("sql: unexpected character %q at offset %d", string(c), start)
}
